//! The Gordon Bell seismic loop (§7 of the paper).
//!
//! "The computation in the code that won the Gordon Bell prize consisted
//! of a nine-point cross stencil plus an additional term from two time
//! steps before the current one." The paper times two variants of the
//! main loop:
//!
//! * **v1** — stencil, add the tenth term, then two assignment statements
//!   to shift the time-step data (sustained 11.62 Gflops);
//! * **v2** — the loop unrolled by three "so that the three variables
//!   could exchange roles without any need to copy data from place to
//!   place" (sustained 14.88 Gflops).
//!
//! This example runs a synthetic finite-difference wave propagation with
//! both variants on the same subgrid geometry (64×128 per node),
//! validates that they produce identical wavefields, and reports the
//! modeled full-machine rates.
//!
//! ```sh
//! cargo run --release --example seismic
//! ```

use cmcc::baseline::{elementwise_copy, elementwise_multiply_add};
use cmcc::prelude::*;

/// One time step of variant 1: `R = stencil(P) + C10·P2; P2 = P; P = R`.
#[allow(clippy::too_many_arguments)]
fn step_v1(
    session: &mut Session,
    compiled: &CompiledStencil,
    r: &CmArray,
    p: &CmArray,
    p2: &CmArray,
    c10: &CmArray,
    coeffs: &[&CmArray],
    timed: bool,
) -> Result<Measurement, Box<dyn std::error::Error>> {
    let opts = if timed {
        ExecOptions::default()
    } else {
        ExecOptions::fast()
    };
    let mut total = session.run_with(compiled, r, p, coeffs, &opts)?;
    total = total.combine(&elementwise_multiply_add(
        &mut session.machine_mut(),
        r,
        c10,
        p2,
    )?);
    total = total.combine(&elementwise_copy(&mut session.machine_mut(), p2, p)?);
    total = total.combine(&elementwise_copy(&mut session.machine_mut(), p, r)?);
    Ok(total)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut session = Session::test_board()?;

    // The nine-point cross of the seismic kernel.
    let statement = "P_NEXT = C1 * CSHIFT (P, DIM=1, SHIFT=-2) \
                            + C2 * CSHIFT (P, DIM=1, SHIFT=-1) \
                            + C3 * CSHIFT (P, DIM=2, SHIFT=-2) \
                            + C4 * CSHIFT (P, DIM=2, SHIFT=-1) \
                            + C5 * P \
                            + C6 * CSHIFT (P, DIM=2, SHIFT=+1) \
                            + C7 * CSHIFT (P, DIM=2, SHIFT=+2) \
                            + C8 * CSHIFT (P, DIM=1, SHIFT=+1) \
                            + C9 * CSHIFT (P, DIM=1, SHIFT=+2)";
    let compiled = session.compile(statement)?;

    // The Gordon Bell geometry: 64×128 subgrid per node.
    let (rows, cols) = (4 * 64, 4 * 128);
    println!(
        "seismic model: {rows}x{cols} grid on 16 nodes (64x128 per node), \
         9-point cross + tenth term\n"
    );

    // Wavefield arrays: P (current), P2 (two steps ago), R (next).
    let p = session.array(rows, cols)?;
    let p2 = session.array(rows, cols)?;
    let r = session.array(rows, cols)?;
    // An initial Gaussian-ish pulse at the center.
    p.fill_with(&mut session.machine_mut(), |i, j| {
        let dr = i as f32 - rows as f32 / 2.0;
        let dc = j as f32 - cols as f32 / 2.0;
        (-(dr * dr + dc * dc) / 64.0).exp()
    });
    p2.fill(&mut session.machine_mut(), 0.0);

    // Finite-difference coefficients of a 4th-order laplacian-style
    // update (velocity folded in), plus the tenth term's -1 from two
    // steps before.
    let weights = [
        -1.0 / 12.0,
        4.0 / 3.0,
        -1.0 / 12.0,
        4.0 / 3.0,
        2.0 - 2.0 * (2.0 * (4.0 / 3.0) - 2.0 / 12.0) * 0.2,
        4.0 / 3.0,
        -1.0 / 12.0,
        4.0 / 3.0,
        -1.0 / 12.0,
    ];
    let coeffs: Vec<CmArray> = weights
        .iter()
        .map(|&w| {
            let a = session.array(rows, cols).unwrap();
            a.fill(&mut session.machine_mut(), w * 0.2);
            a
        })
        .collect();
    let coeff_refs: Vec<&CmArray> = coeffs.iter().collect();
    let c10 = session.array(rows, cols)?;
    c10.fill(&mut session.machine_mut(), -1.0);

    // ---- Variant 1: copies each step. Time one step cycle-accurately,
    // then scale (the machine is synchronous; every step costs the same).
    let per_step_v1 = step_v1(
        &mut session,
        &compiled,
        &r,
        &p,
        &p2,
        &c10,
        &coeff_refs,
        true,
    )?;

    // Run more (fast) steps to propagate the wave and snapshot energy.
    let steps = 48u64;
    for _ in 1..steps {
        step_v1(
            &mut session,
            &compiled,
            &r,
            &p,
            &p2,
            &c10,
            &coeff_refs,
            false,
        )?;
    }
    let v1_field = p.gather(&session.machine());
    let energy: f32 = v1_field.iter().map(|v| v * v).sum();
    println!("v1 after {steps} steps: wavefield energy {energy:.4}");

    // ---- Variant 2: unrolled by three, roles rotate, no copies.
    // Reset the wavefield.
    p.fill_with(&mut session.machine_mut(), |i, j| {
        let dr = i as f32 - rows as f32 / 2.0;
        let dc = j as f32 - cols as f32 / 2.0;
        (-(dr * dr + dc * dc) / 64.0).exp()
    });
    p2.fill(&mut session.machine_mut(), 0.0);
    r.fill(&mut session.machine_mut(), 0.0);

    // One unrolled iteration = three time steps over the rotating triple
    // (p, p2, r). Time the first step; the other two cost the same.
    let mut bufs = [&p, &p2, &r]; // [current, two-ago, next]
    let mut per_step_v2 = None;
    for step in 0..steps {
        let [cur, two_ago, next] = bufs;
        let opts = if step == 0 {
            ExecOptions::default()
        } else {
            ExecOptions::fast()
        };
        let mut m = session.run_with(&compiled, next, cur, &coeff_refs, &opts)?;
        m = m.combine(&elementwise_multiply_add(
            &mut session.machine_mut(),
            next,
            &c10,
            two_ago,
        )?);
        if per_step_v2.is_none() {
            per_step_v2 = Some(m);
        }
        // Rotate roles instead of copying: two_ago <- cur, cur <- next,
        // next <- (old two_ago buffer, now free).
        bufs = [next, cur, two_ago];
    }
    let per_step_v2 = per_step_v2.expect("at least one step ran");
    let v2_field = bufs[0].gather(&session.machine());
    let energy2: f32 = v2_field.iter().map(|v| v * v).sum();
    println!("v2 after {steps} steps: wavefield energy {energy2:.4}");

    // The two variants compute the same physics.
    let identical = v1_field
        .iter()
        .zip(&v2_field)
        .all(|(a, b)| a.to_bits() == b.to_bits());
    println!("v1 and v2 wavefields identical bit-for-bit: {identical}\n");
    assert!(identical);

    // ---- Variant 3 (the paper's future work, §9/§7: "Future versions
    // of the compiler should be able to handle all ten terms as one
    // stencil pattern"): the tenth term fused into the stencil via the
    // multi-source extension — one kernel, one halo pass, no separate
    // elementwise operation.
    let fused_statement = format!("{statement} + C10 * CSHIFT(P2, DIM=1, SHIFT=0)");
    let fused = session
        .compiler()
        .compile_assignment_extended(&fused_statement)
        .expect("fused ten-term statement compiles");
    // Reset and rerun the rotating loop with the fused kernel.
    p.fill_with(&mut session.machine_mut(), |i, j| {
        let dr = i as f32 - rows as f32 / 2.0;
        let dc = j as f32 - cols as f32 / 2.0;
        (-(dr * dr + dc * dc) / 64.0).exp()
    });
    p2.fill(&mut session.machine_mut(), 0.0);
    r.fill(&mut session.machine_mut(), 0.0);
    let mut coeffs10: Vec<&CmArray> = coeff_refs.clone();
    coeffs10.push(&c10);
    let mut bufs = [&p, &p2, &r];
    let mut per_step_v3 = None;
    for step in 0..steps {
        let [cur, two_ago, next] = bufs;
        let opts = if step == 0 {
            ExecOptions::default()
        } else {
            ExecOptions::fast()
        };
        let m = session.run_with_multi(&fused, next, &[cur, two_ago], &coeffs10, &opts)?;
        if per_step_v3.is_none() {
            per_step_v3 = Some(m);
        }
        bufs = [next, cur, two_ago];
    }
    let per_step_v3 = per_step_v3.expect("at least one step ran");
    let v3_field = bufs[0].gather(&session.machine());
    let identical3 = v2_field
        .iter()
        .zip(&v3_field)
        .all(|(a, b)| a.to_bits() == b.to_bits());
    println!("fused ten-term wavefield identical to v1/v2: {identical3}");
    assert!(identical3);

    // Rotating the buffer roles never invalidated the cached execution
    // plans: each variant's steps after the first rebind the same plan
    // to the rotated arrays instead of rebuilding it.
    let stats = session.plan_cache_stats();
    println!(
        "plan cache: {} hits, {} misses across all three variants\n",
        stats.hits, stats.misses
    );

    // ---- Performance report, paper style.
    let cfg = session.config();
    for (name, per_step, paper) in [
        ("v1 (copy time-step data)", per_step_v1, 11.62),
        ("v2 (unrolled by three)", per_step_v2, 14.88),
    ] {
        let run = per_step.repeated(1000);
        let full = run.extrapolate(2048);
        println!(
            "{name}: {:.1} Mflops on 16 nodes -> {:.2} Gflops on 2,048 nodes \
             (paper measured {paper})",
            run.mflops(cfg),
            full.gflops(cfg),
        );
    }
    let v3 = per_step_v3.repeated(1000);
    println!(
        "v3 (ten terms fused, one kernel — the paper's future work): {:.1} Mflops \
         -> {:.2} Gflops on 2,048 nodes",
        v3.mflops(cfg),
        v3.extrapolate(2048).gflops(cfg),
    );
    let speedup = per_step_v1.cycles.total() as f64 / per_step_v2.cycles.total() as f64;
    println!(
        "\nunrolling speedup: {speedup:.2}x (paper: {:.2}x)",
        14.88 / 11.62
    );
    let fusion_speedup = per_step_v2.cycles.total() as f64 / per_step_v3.cycles.total() as f64;
    println!("fusing the tenth term: a further {fusion_speedup:.2}x");
    Ok(())
}
