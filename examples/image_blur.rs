//! Gaussian blur: the 3×3 separable kernel as a nine-point square
//! stencil — the paper's §2 nested-`CSHIFT` pattern with binomial
//! weights 1-2-1 ⊗ 1-2-1.
//!
//! Renders a synthetic test image before and after blurring, and shows
//! the corner-exchange step firing (the square pattern has diagonal taps,
//! so the halo protocol's third step cannot be skipped).
//!
//! ```sh
//! cargo run --release --example image_blur
//! ```

use cmcc::prelude::*;

const SHADES: &[u8] = b" .:-=+*#%@";

fn render(label: &str, data: &[f32], rows: usize, cols: usize) {
    println!("{label}:");
    // Downsample to an ~32-wide ASCII thumbnail.
    let step = (cols / 32).max(1);
    for r in (0..rows).step_by(step) {
        let mut line = String::new();
        for c in (0..cols).step_by(step) {
            let v = data[r * cols + c].clamp(0.0, 1.0);
            let idx = (v * (SHADES.len() - 1) as f32).round() as usize;
            line.push(SHADES[idx] as char);
        }
        println!("  {line}");
    }
    println!();
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut session = Session::test_board()?;

    // 1-2-1 ⊗ 1-2-1 binomial kernel, normalized by 16 — written exactly
    // in the paper's nested-shift style.
    let statement = "BLURRED = 0.0625 * CSHIFT(CSHIFT(IMG, 1, -1), 2, -1) \
                             + 0.125  * CSHIFT(IMG, 1, -1) \
                             + 0.0625 * CSHIFT(CSHIFT(IMG, 1, -1), 2, +1) \
                             + 0.125  * CSHIFT(IMG, 2, -1) \
                             + 0.25   * IMG \
                             + 0.125  * CSHIFT(IMG, 2, +1) \
                             + 0.0625 * CSHIFT(CSHIFT(IMG, 1, +1), 2, -1) \
                             + 0.125  * CSHIFT(IMG, 1, +1) \
                             + 0.0625 * CSHIFT(CSHIFT(IMG, 1, +1), 2, +1)";
    let compiled = session.compile(statement)?;
    println!(
        "blur kernel: {} taps, needs corner exchange: {}\n",
        compiled.stencil().taps().len(),
        compiled.stencil().needs_corner_exchange()
    );
    assert!(compiled.stencil().needs_corner_exchange());

    let (rows, cols) = (64usize, 64usize);
    let img = session.array(rows, cols)?;
    let blurred = session.array(rows, cols)?;

    // A synthetic test card: a bright ring plus a diagonal stripe.
    img.fill_with(&mut session.machine_mut(), |r, c| {
        let dr = r as f32 - 32.0;
        let dc = c as f32 - 32.0;
        let radius = (dr * dr + dc * dc).sqrt();
        let ring: f32 = if (14.0..19.0).contains(&radius) {
            1.0
        } else {
            0.0
        };
        let stripe: f32 = if (r + c) % 16 < 2 { 0.8 } else { 0.0 };
        (ring + stripe).min(1.0)
    });

    render("input", &img.gather(&session.machine()), rows, cols);

    // Blur three times to make the smoothing obvious.
    let mut measurement = session.run(&compiled, &blurred, &img, &[])?;
    for _ in 0..2 {
        measurement = measurement.combine(&session.run(&compiled, &img, &blurred, &[])?);
        measurement = measurement.combine(&session.run(&compiled, &blurred, &img, &[])?);
    }

    let out = blurred.gather(&session.machine());
    render("after 5 blur passes", &out, rows, cols);

    // Blurring is an averaging filter with unit weight sum: total
    // brightness is conserved under the circular boundary.
    let sum_in: f64 = img
        .gather(&session.machine())
        .iter()
        .map(|&v| f64::from(v))
        .sum();
    let sum_out: f64 = out.iter().map(|&v| f64::from(v)).sum();
    let peak_in = 1.0f32;
    let peak_out = out.iter().fold(0.0f32, |a, &b| a.max(b));
    println!("peak value: {peak_in} -> {peak_out:.3} (smoothing)");
    assert!(peak_out < peak_in);
    assert!(sum_out > 0.0 && (sum_in / sum_out - 1.0).abs() < 0.05);

    println!(
        "5 passes: {} cycles total, {:.1} Mflops on 16 nodes",
        measurement.cycles.total(),
        measurement.mflops(session.config())
    );
    Ok(())
}
