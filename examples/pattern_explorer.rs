//! Pattern explorer: walk every stencil pattern the paper draws and show
//! what the compiler decides for each — footprints, multistencil widths,
//! ring buffers, register budgets, unroll factors, and the predicted
//! sustained rates.
//!
//! This is the compiler-engineer's view of §5: you can watch the
//! 13-point diamond lose its width-8 kernel (48 registers > 31) and see
//! the LCM-15 unroll its 5/3/1 rings force.
//!
//! ```sh
//! cargo run --release --example pattern_explorer
//! ```

use cmcc::core::pictogram::{render_multistencil, render_stencil};
use cmcc::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut session = Session::test_board()?;

    for pattern in PaperPattern::ALL {
        let compiled = session.compiler().compile_assignment(&pattern.fortran())?;
        let stencil = compiled.stencil().clone();

        println!("=== {pattern} ===");
        println!("{}", render_stencil(&stencil));
        println!(
            "taps: {}   flops/point: {}   borders: {}   corners needed: {}",
            stencil.taps().len(),
            stencil.useful_flops_per_point(),
            stencil.borders(),
            stencil.needs_corner_exchange(),
        );

        for kernel in compiled.kernels() {
            println!(
                "  width {:>2}: {:>2} cells, {:>2} registers, rings {:?} (unroll x{}), \
                 per line {:>2} loads + {:>3} MACs + {} stores",
                kernel.width,
                kernel.info.cells,
                kernel.info.registers_used,
                kernel.info.ring_sizes,
                kernel.info.unroll,
                kernel.info.loads_per_line,
                kernel.info.macs_per_line,
                kernel.info.stores_per_line,
            );
        }
        let attempted = [8usize, 4, 2, 1];
        for width in attempted {
            if !compiled.widths().contains(&width) {
                println!("  width {width:>2}: rejected (register file exhausted)");
            }
        }

        // Show the widest multistencil.
        let widest = compiled.widths()[0];
        println!("\nwidth-{widest} multistencil:");
        println!("{}", render_multistencil(&stencil, widest));

        // Measure one iteration at the paper's largest subgrid.
        let (rows, cols) = (4 * 256, 4 * 256);
        let x = session.array(rows, cols)?;
        x.fill_with(&mut session.machine_mut(), |r, c| {
            ((r ^ c) % 17) as f32 * 0.1
        });
        let coeffs: Vec<CmArray> = (0..compiled.spec().coeffs.len())
            .map(|i| {
                let a = session.array(rows, cols).unwrap();
                a.fill(&mut session.machine_mut(), 0.03 * (i + 1) as f32);
                a
            })
            .collect();
        let refs: Vec<&CmArray> = coeffs.iter().collect();
        let r = session.array(rows, cols)?;
        let m = session.run(&compiled, &r, &x, &refs)?;
        println!(
            "256x256 subgrid: {:.1} Mflops on 16 nodes -> {:.2} Gflops extrapolated to 2,048 nodes",
            m.mflops(session.config()),
            m.extrapolate(2048).gflops(session.config())
        );
        println!(
            "cycle split: {:.0}% compute, {:.0}% front end, {:.0}% communication\n",
            100.0 * m.cycles.compute as f64 / m.cycles.total() as f64,
            100.0 * m.cycles.frontend as f64 / m.cycles.total() as f64,
            100.0 * m.cycles.comm as f64 / m.cycles.total() as f64,
        );
    }
    Ok(())
}
