//! Three-dimensional acoustic wave propagation — the full extension
//! stack in one program.
//!
//! The paper's seismic applications were fundamentally 3-D; its run-time
//! library "provides the outer loop structure for strip-mining and for
//! handling multidimensional arrays" (§1). This example builds a 3-D
//! 7-point stencil from the pieces this reproduction adds on top of the
//! published system:
//!
//! * the **multi-source extension** (§9 future work) fuses the planes
//!   above and below into one 2-D kernel, and
//! * the **volume runtime** iterates that kernel across planes, with the
//!   depth boundary following the stencil's own `CSHIFT` discipline.
//!
//! ```sh
//! cargo run --release --example seismic3d
//! ```

use cmcc::prelude::*;
use cmcc::runtime::CmVolume;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut session = Session::test_board()?;

    // 2·P - P2 + v²·dt²·laplacian(P), with the 3-D laplacian's
    // plane-above/plane-below terms fused in as extra sources and the
    // P2 (two-steps-ago) term fused as a fourth source: a single
    // 9-term, 4-source kernel per plane.
    let c = 0.15f32; // v²·dt²/dx²
    let center = 2.0 - 6.0 * c;
    let statement = format!(
        "R = {c} * CSHIFT(PDOWN, 1, 0) \
           + {c} * CSHIFT(P, 1, -1) \
           + {c} * CSHIFT(P, 2, -1) \
           + {center} * P \
           + {c} * CSHIFT(P, 2, +1) \
           + {c} * CSHIFT(P, 1, +1) \
           + {c} * CSHIFT(PUP, 1, 0) \
           + -1.0 * CSHIFT(P2, 1, 0)"
    );
    let compiled = session.compiler().compile_assignment_extended(&statement)?;
    println!(
        "fused 3-D kernel: {} taps over sources {:?}, widths {:?}\n",
        compiled.stencil().taps().len(),
        compiled.spec().sources,
        compiled.widths()
    );
    assert_eq!(compiled.spec().sources, vec!["PDOWN", "P", "PUP", "P2"]);

    let (depth, rows, cols) = (8usize, 64, 64);
    let p = CmVolume::new(&mut session.machine_mut(), depth, rows, cols)?;
    let p2 = CmVolume::new(&mut session.machine_mut(), depth, rows, cols)?;
    let r = CmVolume::new(&mut session.machine_mut(), depth, rows, cols)?;

    // A point source in the middle of the volume.
    let init = |vol: &CmVolume, machine: &mut Machine| {
        vol.fill_with(machine, |pp, i, j| {
            let dp = pp as f32 - depth as f32 / 2.0;
            let dr = i as f32 - rows as f32 / 2.0;
            let dc = j as f32 - cols as f32 / 2.0;
            (-(dp * dp + dr * dr + dc * dc) / 8.0).exp()
        });
    };
    init(&p, &mut session.machine_mut());
    p2.fill_with(&mut session.machine_mut(), |_, _, _| 0.0);

    // Source order in the statement: PDOWN, P, PUP, P2. The first three
    // are planes of the current wavefield at depth offsets -1, 0, +1; P2
    // is the two-steps-ago wavefield at offset 0 — but convolve_volume
    // binds all sources to ONE volume, so the P2 term is handled by a
    // rotating triple of volumes with P2 bound via its own offset-0 pass…
    // Simplest faithful loop: rotate three volumes and bind
    // [PDOWN, P, PUP] from the current one and P2 from the older one by
    // interleaving two half-updates is overkill here — instead we treat
    // P2 as a plane of the PREVIOUS volume by running the fused kernel
    // with a per-plane source list built by hand.
    let steps = 24u64;
    let mut timing: Option<Measurement> = None;
    let mut cur = p;
    let mut old = p2;
    let mut next = r;
    for step in 0..steps {
        let opts = if step == 0 {
            ExecOptions::default()
        } else {
            ExecOptions::fast()
        };
        let mut step_m: Option<Measurement> = None;
        for plane in 0..depth {
            let below = cur.plane((plane + depth - 1) % depth);
            let here = cur.plane(plane);
            let above = cur.plane((plane + 1) % depth);
            let two_ago = old.plane(plane);
            let m = session.run_with_multi(
                &compiled,
                next.plane(plane),
                &[below, here, above, two_ago],
                &[],
                &opts,
            )?;
            step_m = Some(match step_m {
                None => m,
                Some(t) => t.combine(&m),
            });
        }
        if step == 0 {
            timing = step_m;
        }
        // Rotate roles, v2-style: no copies.
        let recycled = std::mem::replace(&mut old, cur);
        cur = std::mem::replace(&mut next, recycled);
    }

    let field = cur.gather(&session.machine());
    let energy: f64 = field.iter().map(|&v| f64::from(v) * f64::from(v)).sum();
    let peak = field.iter().fold(0.0f32, |a, &b| a.max(b.abs()));
    println!("after {steps} steps: energy {energy:.3}, peak |amplitude| {peak:.4}");
    assert!(energy.is_finite() && energy > 0.0);
    assert!(peak < 1.5, "the scheme should stay stable at c = {c}");

    let timing = timing.expect("first step timed");
    println!(
        "\nper time step ({depth} planes): {} | {:.1} Mflops on 16 nodes -> {:.2} Gflops on 2,048",
        timing.cycles,
        timing.mflops(session.config()),
        timing.extrapolate(2048).gflops(session.config()),
    );
    println!(
        "flops per point per step: {} (8 multiplies + 7 adds, one fused kernel)",
        compiled.stencil().useful_flops_per_point()
    );
    Ok(())
}
