//! Two-dimensional heat diffusion with fixed (cold) boundaries.
//!
//! Demonstrates two features beyond the quickstart: **scalar literal
//! coefficients** (the diffusion weights are compile-time constants, so
//! no coefficient arrays need to be allocated) and **`EOSHIFT`
//! boundaries** (zeros shift in at the array edges, giving an absorbing /
//! cold-wall boundary instead of the torus wraparound of `CSHIFT`).
//!
//! ```sh
//! cargo run --release --example heat_diffusion
//! ```

use cmcc::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut session = Session::test_board()?;

    // Explicit Euler step for the heat equation with alpha·dt/dx² = 0.2:
    // T' = 0.2·(north + south + east + west) + 0.2·T  … with EOSHIFT the
    // missing neighbors beyond the walls contribute zero, i.e. the walls
    // are held at temperature 0.
    let statement = "T_NEXT = 0.2 * EOSHIFT(T, DIM=1, SHIFT=-1) \
                           + 0.2 * EOSHIFT(T, DIM=2, SHIFT=-1) \
                           + 0.2 * T \
                           + 0.2 * EOSHIFT(T, DIM=2, SHIFT=+1) \
                           + 0.2 * EOSHIFT(T, DIM=1, SHIFT=+1)";
    let compiled = session.compile(statement)?;
    println!(
        "compiled heat kernel: widths {:?}, boundary {:?}, \
         0 coefficient arrays needed (all literal)\n",
        compiled.widths(),
        compiled.stencil().boundary()
    );
    assert!(compiled.spec().coeffs.len() == 1); // the deduplicated 0.2

    let (rows, cols) = (64usize, 64usize);
    let t = session.array(rows, cols)?;
    let t_next = session.array(rows, cols)?;

    // A hot square plate in the middle of a cold domain.
    t.fill_with(&mut session.machine_mut(), |r, c| {
        if (24..40).contains(&r) && (24..40).contains(&c) {
            100.0
        } else {
            0.0
        }
    });

    let total_heat = |session: &Session, a: &CmArray| -> f64 {
        a.gather(&session.machine())
            .iter()
            .map(|&v| f64::from(v))
            .sum()
    };
    let initial = total_heat(&session, &t);
    println!("initial heat: {initial:.1}");

    let mut timing: Option<Measurement> = None;
    let steps = 200;
    let mut cur = t;
    let mut next = t_next;
    for step in 0..steps {
        // Time the first step cycle-accurately; the rest run in the fast
        // functional mode (the machine is synchronous, every step costs
        // the same).
        let opts = if step == 0 {
            ExecOptions::default()
        } else {
            ExecOptions::fast()
        };
        let m = session.run_with(&compiled, &next, &cur, &[], &opts)?;
        if step == 0 {
            timing = Some(m);
        }
        std::mem::swap(&mut cur, &mut next);
    }

    // The session caches one ExecutionPlan per (statement, shape,
    // options) key, so the ping-pong buffer swap above costs a plan
    // rebind, not a rebuild: every step after the first two was a cache
    // hit (the timed first step and the fast steps use different
    // options, hence two plans).
    let stats = session.plan_cache_stats();
    println!(
        "plan cache: {} hits, {} misses over {steps} steps",
        stats.hits, stats.misses
    );

    let remaining = total_heat(&session, &cur);
    let center = cur.get(&session.machine(), 32, 32);
    let corner = cur.get(&session.machine(), 0, 0);
    println!(
        "after {steps} steps: heat {remaining:.1} ({:.1}% lost through the cold walls)",
        100.0 * (initial - remaining) / initial
    );
    println!("center temperature {center:.2}, corner temperature {corner:.6}");

    // Physics sanity: diffusion smooths and the cold walls absorb.
    assert!(remaining < initial);
    assert!(remaining > 0.0);
    assert!(center > corner);
    assert!(center < 100.0);
    assert_eq!(stats.misses, 2);
    assert_eq!(stats.hits as usize, steps - 2);

    let timing = timing.expect("first step was timed");
    println!(
        "\nper step: {} | {:.1} Mflops on 16 nodes",
        timing.cycles,
        timing.mflops(session.config())
    );
    Ok(())
}
