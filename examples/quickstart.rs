//! Quickstart: compile the paper's five-point cross and run it on the
//! simulated 16-node CM-2 test board.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use cmcc::core::pictogram::render_stencil;
use cmcc::prelude::*;
use cmcc::runtime::reference::{reference_convolve, CoeffValue};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's 16-node single-board machine: 4×4 floating-point nodes
    // at 7 MHz.
    let mut session = Session::test_board()?;

    // The statement, exactly as §2 of the paper writes it.
    let statement = "R = C1 * CSHIFT (X, DIM=1, SHIFT=-1) \
                       + C2 * CSHIFT (X, DIM=2, SHIFT=-1) \
                       + C3 * X \
                       + C4 * CSHIFT (X, DIM=2, SHIFT=+1) \
                       + C5 * CSHIFT (X, DIM=1, SHIFT=+1)";
    let compiled = session.compile(statement)?;

    println!(
        "statement:\n  {}\n",
        statement.split_whitespace().collect::<Vec<_>>().join(" ")
    );
    println!(
        "recognized stencil:\n{}",
        render_stencil(compiled.stencil())
    );
    println!(
        "workable strip widths: {:?} (useful flops per point: {})",
        compiled.widths(),
        compiled.stencil().useful_flops_per_point()
    );
    for k in compiled.kernels() {
        println!(
            "  width {}: {} multistencil cells, {} registers, unroll x{}, \
             {} loads / {} multiply-adds / {} stores per line",
            k.width,
            k.info.cells,
            k.info.registers_used,
            k.info.unroll,
            k.info.loads_per_line,
            k.info.macs_per_line,
            k.info.stores_per_line,
        );
    }

    // A 256×256 global array: each node holds a 64×64 subgrid (Figure 1).
    let (rows, cols) = (256usize, 256usize);
    let x = session.array(rows, cols)?;
    let r = session.array(rows, cols)?;
    x.fill_with(&mut session.machine_mut(), |r, c| {
        ((r * 37 + c * 11) % 101) as f32 * 0.01
    });
    let coeffs: Vec<CmArray> = (0..5)
        .map(|i| {
            let a = session.array(rows, cols).unwrap();
            a.fill(&mut session.machine_mut(), [0.05, 0.1, 0.6, 0.1, 0.05][i]);
            a
        })
        .collect();
    let coeff_refs: Vec<&CmArray> = coeffs.iter().collect();

    let measurement = session.run(&compiled, &r, &x, &coeff_refs)?;

    // Validate against the host-side golden model, bit for bit.
    let x_host = x.gather(&session.machine());
    let coeff_host: Vec<Vec<f32>> = coeffs
        .iter()
        .map(|c| c.gather(&session.machine()))
        .collect();
    let values: Vec<CoeffValue<'_>> = coeff_host.iter().map(|c| CoeffValue::Array(c)).collect();
    let expected = reference_convolve(compiled.stencil(), rows, cols, &x_host, &values);
    let got = r.gather(&session.machine());
    assert_eq!(got.len(), expected.len());
    let exact = got
        .iter()
        .zip(&expected)
        .all(|(a, b)| a.to_bits() == b.to_bits());
    println!("\nresult matches the reference evaluator bit-for-bit: {exact}");
    assert!(exact);

    println!(
        "one iteration: {} ({:.2} ms at 7 MHz)",
        measurement.cycles,
        measurement.cycles.seconds(session.config()) * 1e3
    );
    println!(
        "sustained rate on 16 nodes: {:.1} Mflops",
        measurement.mflops(session.config())
    );
    let full = measurement.extrapolate(2048);
    println!(
        "extrapolated to a full 2,048-node CM-2: {:.2} Gflops",
        full.gflops(session.config())
    );
    Ok(())
}
