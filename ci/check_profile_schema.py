#!/usr/bin/env python3
"""Validate the stability of the `cmcc --profile=json` schema.

Reads driver output on stdin, finds the single-line JSON profile object
(the line opening with ``{"schema":"cmcc-profile-v1"``), and checks every
documented key of the cmcc-profile-v1 schema (DESIGN.md §13) is present
with a sane type. Exits non-zero with a diagnostic on any missing or
mistyped field, so CI fails when the schema drifts without a version
bump.

With ``--bench-parallel FILE`` it instead validates the schema of the
``repro_parallel`` bench output (``BENCH_parallel.json``), including the
``oversubscribed`` flag that marks single-core curves as non-scaling
measurements.

Usage:
    cmcc --run --iters 3 --profile=json five.f90 | python3 ci/check_profile_schema.py
    python3 ci/check_profile_schema.py --bench-parallel BENCH_parallel.json
"""

import json
import numbers
import sys

SCHEMA = "cmcc-profile-v1"

# (dotted path, expected type) for every key the schema promises.
EXPECTED = [
    ("schema", str),
    ("statement", numbers.Integral),
    ("engine", str),
    ("mode", str),
    ("nodes", numbers.Integral),
    ("iters", numbers.Integral),
    ("measurement.useful_flops", numbers.Integral),
    ("measurement.cycles.comm", numbers.Integral),
    ("measurement.cycles.compute", numbers.Integral),
    ("measurement.cycles.frontend", numbers.Integral),
    ("measurement.cycles.total", numbers.Integral),
    ("measurement.nodes", numbers.Integral),
    ("derived.effective_gflops", numbers.Real),
    ("derived.model_fraction", numbers.Real),
    ("derived.wall_gflops", numbers.Real),
    ("derived.bytes_per_iter_observed", numbers.Real),
    ("derived.bytes_per_iter_predicted", numbers.Real),
    ("plan_cache.hits", numbers.Integral),
    ("plan_cache.misses", numbers.Integral),
    ("plan_cache.evictions", numbers.Integral),
    ("plan_cache.capacity", numbers.Integral),
    ("report.enabled", bool),
    ("report.compile.recognize_ns", numbers.Integral),
    ("report.compile.recognize_calls", numbers.Integral),
    ("report.compile.multistencil_ns", numbers.Integral),
    ("report.compile.multistencil_calls", numbers.Integral),
    ("report.compile.regalloc_ns", numbers.Integral),
    ("report.compile.regalloc_calls", numbers.Integral),
    ("report.compile.unroll_ns", numbers.Integral),
    ("report.compile.unroll_calls", numbers.Integral),
    ("report.plan.build_ns", numbers.Integral),
    ("report.plan.builds", numbers.Integral),
    ("report.plan.rebind_ns", numbers.Integral),
    ("report.plan.rebinds", numbers.Integral),
    ("report.plan.cache_hits", numbers.Integral),
    ("report.plan.cache_misses", numbers.Integral),
    ("report.plan.cache_evictions", numbers.Integral),
    ("report.exchange.edge_words", numbers.Integral),
    ("report.exchange.corner_words", numbers.Integral),
    ("report.exchange.interior_words", numbers.Integral),
    ("report.exchange.gather_words", numbers.Integral),
    ("report.exchange.scatter_words", numbers.Integral),
    ("report.strips.width8", numbers.Integral),
    ("report.strips.width4", numbers.Integral),
    ("report.strips.width2", numbers.Integral),
    ("report.strips.width1", numbers.Integral),
    ("report.exec.execute_ns", numbers.Integral),
    ("report.exec.executes", numbers.Integral),
    ("report.exec.scalar_runs", numbers.Integral),
    ("report.exec.lockstep_runs", numbers.Integral),
    ("report.exec.lane_resident_runs", numbers.Integral),
    ("report.exec.scalar_steps", numbers.Integral),
    ("report.exec.lockstep_steps", numbers.Integral),
    ("report.exec.kernelized_steps", numbers.Integral),
    ("report.exec.interpreted_steps", numbers.Integral),
    ("report.exec.mirror_allocations", numbers.Integral),
    ("report.exec.useful_flops", numbers.Integral),
    ("report.exec.total_flops", numbers.Integral),
]


def lookup(obj, path):
    for part in path.split("."):
        if not isinstance(obj, dict) or part not in obj:
            return None, False
        obj = obj[part]
    return obj, True


# (dotted path, expected type) for every key BENCH_parallel.json promises.
BENCH_PARALLEL_EXPECTED = [
    ("pattern", str),
    ("global_grid", list),
    ("subgrid", list),
    ("host_cores", numbers.Integral),
    ("oversubscribed", bool),
    ("warmup", numbers.Integral),
    ("iters", numbers.Integral),
    ("curve", list),
    ("max_threads_speedup", numbers.Real),
    ("bit_identical", bool),
    ("measurement_equal", bool),
]


def check_bench_parallel(path):
    with open(path) as f:
        bench = json.load(f)
    errors = []
    for key, kind in BENCH_PARALLEL_EXPECTED:
        value, found = lookup(bench, key)
        if not found:
            errors.append("%s: missing key %s" % (path, key))
        elif kind is not bool and isinstance(value, bool):
            errors.append("%s: %s is a bool, expected %s" % (path, key, kind))
        elif not isinstance(value, kind):
            errors.append(
                "%s: %s has type %s, expected %s"
                % (path, key, type(value).__name__, kind)
            )
    for i, point in enumerate(bench.get("curve", [])):
        for key, kind in [
            ("threads", numbers.Integral),
            ("secs_per_iter", numbers.Real),
            ("speedup", numbers.Real),
        ]:
            value, found = lookup(point, key)
            if not found or not isinstance(value, kind):
                errors.append("%s: curve[%d].%s missing or mistyped" % (path, i, key))
    if bench.get("oversubscribed") and bench.get("host_cores", 0) > 1:
        errors.append("%s: oversubscribed set on a multi-core host" % path)
    if errors:
        sys.exit("\n".join(errors))
    print("ok: %s matches the repro_parallel bench schema" % path)


def main():
    if len(sys.argv) >= 2 and sys.argv[1] == "--bench-parallel":
        if len(sys.argv) != 3:
            sys.exit("usage: check_profile_schema.py --bench-parallel FILE")
        check_bench_parallel(sys.argv[2])
        return

    profiles = []
    for line in sys.stdin:
        line = line.strip()
        if line.startswith('{"schema":"%s"' % SCHEMA):
            profiles.append(json.loads(line))
    if not profiles:
        sys.exit("no %s line found on stdin" % SCHEMA)

    errors = []
    for i, profile in enumerate(profiles):
        for path, kind in EXPECTED:
            value, found = lookup(profile, path)
            if not found:
                errors.append("profile %d: missing key %s" % (i, path))
            elif kind is not bool and isinstance(value, bool):
                # bool is an int subclass; only report.enabled may be one.
                errors.append("profile %d: %s is a bool, expected %s" % (i, path, kind))
            elif not isinstance(value, kind):
                errors.append(
                    "profile %d: %s has type %s, expected %s"
                    % (i, path, type(value).__name__, kind)
                )
        if profile.get("schema") != SCHEMA:
            errors.append("profile %d: schema key mismatch" % i)

    if errors:
        sys.exit("\n".join(errors))
    print("ok: %d profile(s) match %s" % (len(profiles), SCHEMA))


if __name__ == "__main__":
    main()
