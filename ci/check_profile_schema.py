#!/usr/bin/env python3
"""Validate the stability of the `cmcc --profile=json` schema.

Reads driver output on stdin, finds the single-line JSON profile object
(the line opening with ``{"schema":"cmcc-profile-v5"``), and checks every
documented key of the cmcc-profile-v5 schema (DESIGN.md §13/§18) is
present with a sane type — including the region-lease block
(``leases.*``), the lease and trace counters under ``report.exec``, the
model-drift cross-check under ``derived``, and the flight-recorder
latency histograms under ``latency.phases``. Exits non-zero with a
diagnostic on any missing or mistyped field, so CI fails when the schema
drifts without a version bump.

With ``--serve`` it instead validates the ``cmcc --serve --profile=json``
output: the single ``cmcc-serve-v3`` line with per-tenant stats and
latency histograms, the sharded plan-cache aggregate, the lease totals
and contention attribution (``latency.lease.*``, whose
``waits_consistent`` flag must be true — the traced conflicted waits
agree with the lease table's conflict counter), the build-once flag
(which must be true — one build per distinct plan however many tenants
race), the drained flag (which must be true — zero live or queued
leases after the pool exits), and each tenant's blocked + executing
split staying within its wall time.

With ``--trace FILE`` it instead validates a Chrome trace-event file
written by ``cmcc --trace=FILE``: well-formed JSON with a
``traceEvents`` list, integral pid/tid on every event, non-decreasing
timestamps, balanced B/E duration pairs per thread and name, and
balanced b/e async pairs per (name, id). With ``--expect-conflict`` it
additionally requires at least one conflicted ``lease_acquire`` end
event (``args.arg == 1``) — proof the run induced a lease overlap.

With ``--bench-parallel FILE`` it instead validates the schema of the
``repro_parallel`` bench output (``BENCH_parallel.json``), including the
``scaling_gate`` string that records whether the ≥2× assertion was
asserted, recorded only, or skipped on a single-core host.

With ``--bench-temporal FILE`` it instead validates the schema of the
``repro_temporal`` bench output (``BENCH_temporal.json``) and re-checks
its recorded correctness gates: every depth bit-identical to the
iterated scalar oracle, halo exchanges reduced by exactly the fused
depth, and observed copy words equal to the analytic prediction.

With ``--bench-serve FILE`` it instead validates the schema of the
``repro_serve`` bench output (``BENCH_serve.json``) and re-checks its
recorded gates: concurrent results bit-identical to the serialized
baseline, zero live leases after the pool drains, at least one region
grant, and — when the speedup gate was asserted (2+ cores) — ≥1.5×
throughput with the overlap probe having counted an exclusive fallback.

Usage:
    cmcc --run --iters 3 --profile=json five.f90 | python3 ci/check_profile_schema.py
    cmcc --serve --profile=json - < batch.txt | python3 ci/check_profile_schema.py --serve
    python3 ci/check_profile_schema.py --trace trace.json [--expect-conflict]
    python3 ci/check_profile_schema.py --bench-parallel BENCH_parallel.json
    python3 ci/check_profile_schema.py --bench-temporal BENCH_temporal.json
    python3 ci/check_profile_schema.py --bench-serve BENCH_serve.json
"""

import json
import numbers
import sys

SCHEMA = "cmcc-profile-v5"
SERVE_SCHEMA = "cmcc-serve-v3"

# The operations latency.phases keys (crates/obs/src/trace.rs order).
LATENCY_PHASES = [
    "plan_build",
    "plan_rebind",
    "execute",
    "execute_workers",
    "halo_exchange",
    "interior_refresh",
    "kernel_sweep",
    "region_commit",
    "lease_acquire",
    "lease_held",
]

# Every histogram summary carries exactly these keys.
HIST_EXPECTED = [
    ("count", numbers.Integral),
    ("p50_ns", numbers.Integral),
    ("p95_ns", numbers.Integral),
    ("p99_ns", numbers.Integral),
    ("max_ns", numbers.Integral),
]


def check_hist(obj, label, errors):
    """Appends an error per missing/mistyped key of a histogram summary."""
    if not isinstance(obj, dict):
        errors.append("%s: histogram summary is not an object" % label)
        return
    for key, kind in HIST_EXPECTED:
        value = obj.get(key)
        if isinstance(value, bool) or not isinstance(value, kind):
            errors.append("%s.%s: missing or mistyped" % (label, key))


def check_latency_phases(obj, label, errors):
    """Validates a ``latency.phases`` object: one histogram per phase."""
    if not isinstance(obj, dict):
        errors.append("%s: latency.phases is not an object" % label)
        return
    for phase in LATENCY_PHASES:
        if phase not in obj:
            errors.append("%s: latency.phases missing %s" % (label, phase))
        else:
            check_hist(obj[phase], "%s.latency.phases.%s" % (label, phase), errors)

# (dotted path, expected type) for every key the schema promises.
EXPECTED = [
    ("schema", str),
    ("statement", numbers.Integral),
    ("engine", str),
    ("mode", str),
    ("nodes", numbers.Integral),
    ("iters", numbers.Integral),
    ("measurement.useful_flops", numbers.Integral),
    ("measurement.cycles.comm", numbers.Integral),
    ("measurement.cycles.compute", numbers.Integral),
    ("measurement.cycles.frontend", numbers.Integral),
    ("measurement.cycles.total", numbers.Integral),
    ("measurement.nodes", numbers.Integral),
    ("derived.effective_gflops", numbers.Real),
    ("derived.model_fraction", numbers.Real),
    ("derived.wall_gflops", numbers.Real),
    ("derived.cpu_gflops", numbers.Real),
    ("derived.temporal_depth", numbers.Integral),
    ("derived.bytes_per_iter_observed", numbers.Real),
    ("derived.bytes_per_iter_predicted", numbers.Real),
    ("derived.bytes_per_step_amortized", numbers.Real),
    ("derived.model_drift", numbers.Real),
    ("derived.model_drift_ok", bool),
    ("plan_cache.hits", numbers.Integral),
    ("plan_cache.misses", numbers.Integral),
    ("plan_cache.evictions", numbers.Integral),
    ("plan_cache.capacity", numbers.Integral),
    ("plan_cache.shards", list),
    ("plan_cache.shard_evictions", list),
    ("plan_cache.shared_in_flight", numbers.Integral),
    ("leases.region_grants", numbers.Integral),
    ("leases.conflicts", numbers.Integral),
    ("leases.peak_concurrent", numbers.Integral),
    ("leases.live", numbers.Integral),
    ("latency.phases", dict),
    ("report.enabled", bool),
    ("report.compile.recognize_ns", numbers.Integral),
    ("report.compile.recognize_calls", numbers.Integral),
    ("report.compile.multistencil_ns", numbers.Integral),
    ("report.compile.multistencil_calls", numbers.Integral),
    ("report.compile.regalloc_ns", numbers.Integral),
    ("report.compile.regalloc_calls", numbers.Integral),
    ("report.compile.unroll_ns", numbers.Integral),
    ("report.compile.unroll_calls", numbers.Integral),
    ("report.plan.build_ns", numbers.Integral),
    ("report.plan.builds", numbers.Integral),
    ("report.plan.rebind_ns", numbers.Integral),
    ("report.plan.rebinds", numbers.Integral),
    ("report.plan.cache_hits", numbers.Integral),
    ("report.plan.cache_misses", numbers.Integral),
    ("report.plan.cache_evictions", numbers.Integral),
    ("report.exchange.edge_words", numbers.Integral),
    ("report.exchange.corner_words", numbers.Integral),
    ("report.exchange.interior_words", numbers.Integral),
    ("report.exchange.gather_words", numbers.Integral),
    ("report.exchange.scatter_words", numbers.Integral),
    ("report.strips.width8", numbers.Integral),
    ("report.strips.width4", numbers.Integral),
    ("report.strips.width2", numbers.Integral),
    ("report.strips.width1", numbers.Integral),
    ("report.exec.execute_ns", numbers.Integral),
    ("report.exec.executes", numbers.Integral),
    ("report.exec.execute_workers_ns", numbers.Integral),
    ("report.exec.execute_workers_calls", numbers.Integral),
    ("report.exec.halo_exchanges", numbers.Integral),
    ("report.exec.fused_steps", numbers.Integral),
    ("report.exec.temporal_fallbacks", numbers.Integral),
    ("report.exec.scalar_runs", numbers.Integral),
    ("report.exec.lockstep_runs", numbers.Integral),
    ("report.exec.lane_resident_runs", numbers.Integral),
    ("report.exec.scalar_steps", numbers.Integral),
    ("report.exec.lockstep_steps", numbers.Integral),
    ("report.exec.kernelized_steps", numbers.Integral),
    ("report.exec.interpreted_steps", numbers.Integral),
    ("report.exec.mirror_allocations", numbers.Integral),
    ("report.exec.mirror_pool_misses", numbers.Integral),
    ("report.exec.region_leases", numbers.Integral),
    ("report.exec.lease_conflicts", numbers.Integral),
    ("report.exec.concurrent_executes_peak", numbers.Integral),
    ("report.exec.trace_drops", numbers.Integral),
    ("report.exec.useful_flops", numbers.Integral),
    ("report.exec.total_flops", numbers.Integral),
]


def lookup(obj, path):
    for part in path.split("."):
        if not isinstance(obj, dict) or part not in obj:
            return None, False
        obj = obj[part]
    return obj, True


# (dotted path, expected type) for every key BENCH_parallel.json promises.
BENCH_PARALLEL_EXPECTED = [
    ("pattern", str),
    ("global_grid", list),
    ("subgrid", list),
    ("host_cores", numbers.Integral),
    ("scaling_gate", str),
    ("warmup", numbers.Integral),
    ("iters", numbers.Integral),
    ("curve", list),
    ("max_threads_speedup", numbers.Real),
    ("bit_identical", bool),
    ("measurement_equal", bool),
]


def check_bench_parallel(path):
    with open(path) as f:
        bench = json.load(f)
    errors = []
    for key, kind in BENCH_PARALLEL_EXPECTED:
        value, found = lookup(bench, key)
        if not found:
            errors.append("%s: missing key %s" % (path, key))
        elif kind is not bool and isinstance(value, bool):
            errors.append("%s: %s is a bool, expected %s" % (path, key, kind))
        elif not isinstance(value, kind):
            errors.append(
                "%s: %s has type %s, expected %s"
                % (path, key, type(value).__name__, kind)
            )
    for i, point in enumerate(bench.get("curve", [])):
        for key, kind in [
            ("threads", numbers.Integral),
            ("secs_per_iter", numbers.Real),
            ("speedup", numbers.Real),
        ]:
            value, found = lookup(point, key)
            if not found or not isinstance(value, kind):
                errors.append("%s: curve[%d].%s missing or mistyped" % (path, i, key))
    gate = bench.get("scaling_gate", "")
    if not gate.startswith(("asserted", "recorded only", "skipped")):
        errors.append("%s: scaling_gate %r is not a recognized disposition" % (path, gate))
    if gate.startswith("asserted") and bench.get("max_threads_speedup", 0.0) < 2.0:
        errors.append("%s: scaling gate asserted but speedup < 2x" % path)
    if errors:
        sys.exit("\n".join(errors))
    print("ok: %s matches the repro_parallel bench schema" % path)


# (dotted path, expected type) for every key BENCH_temporal.json promises.
BENCH_TEMPORAL_EXPECTED = [
    ("workload", str),
    ("global_grid", list),
    ("host_cores", numbers.Integral),
    ("scaling_gate", str),
    ("subgrid", list),
    ("threads", numbers.Integral),
    ("steps", numbers.Integral),
    ("interleave_rounds", numbers.Integral),
    ("scalar_secs", numbers.Real),
    ("depths", list),
    ("speedup_at_depth_4", numbers.Real),
    ("bit_identical", bool),
    ("copy_model_exact", bool),
    ("exchange_reduction_exact", bool),
]

# (dotted path, expected type) for each element of ``depths``.
BENCH_TEMPORAL_DEPTH_EXPECTED = [
    ("depth", numbers.Integral),
    ("min_cycle_us", numbers.Real),
    ("speedup", numbers.Real),
    ("loop_secs", numbers.Real),
    ("timed_steps", numbers.Integral),
    ("halo_exchanges", numbers.Integral),
    ("copy_words_observed", numbers.Integral),
    ("copy_words_predicted", numbers.Integral),
    ("bit_identical", bool),
]


def check_bench_temporal(path):
    with open(path) as f:
        bench = json.load(f)
    errors = []
    for key, kind in BENCH_TEMPORAL_EXPECTED:
        value, found = lookup(bench, key)
        if not found:
            errors.append("%s: missing key %s" % (path, key))
        elif kind is not bool and isinstance(value, bool):
            errors.append("%s: %s is a bool, expected %s" % (path, key, kind))
        elif not isinstance(value, kind):
            errors.append(
                "%s: %s has type %s, expected %s"
                % (path, key, type(value).__name__, kind)
            )
    for i, point in enumerate(bench.get("depths", [])):
        for key, kind in BENCH_TEMPORAL_DEPTH_EXPECTED:
            value, found = lookup(point, key)
            if not found:
                errors.append("%s: depths[%d].%s missing" % (path, i, key))
            elif (kind is bool) != isinstance(value, bool) or not isinstance(
                value, kind
            ):
                errors.append("%s: depths[%d].%s mistyped" % (path, i, key))
        if point.get("copy_words_observed") != point.get("copy_words_predicted"):
            errors.append(
                "%s: depths[%d] observed copy words diverge from the model" % (path, i)
            )
    # The bench asserts these before writing the file; re-check so a
    # stale or hand-edited artifact cannot pass CI.
    for gate in ("bit_identical", "copy_model_exact", "exchange_reduction_exact"):
        if bench.get(gate) is not True:
            errors.append("%s: correctness gate %s is not true" % (path, gate))
    if errors:
        sys.exit("\n".join(errors))
    print(
        "ok: %s matches the repro_temporal bench schema (%d depths, gates held)"
        % (path, len(bench.get("depths", [])))
    )


# (dotted path, expected type) for every key BENCH_serve.json promises.
BENCH_SERVE_EXPECTED = [
    ("workers", numbers.Integral),
    ("subgrid", list),
    ("host_cores", numbers.Integral),
    ("iters", numbers.Integral),
    ("concurrent_secs", numbers.Real),
    ("serialized_secs", numbers.Real),
    ("concurrent_runs_per_sec", numbers.Real),
    ("serialized_runs_per_sec", numbers.Real),
    ("speedup", numbers.Real),
    ("region_grants", numbers.Integral),
    ("peak_concurrent", numbers.Integral),
    ("overlap_conflicts", numbers.Integral),
    ("live_leases_after", numbers.Integral),
    ("lane_resident", list),
    ("bit_identical", bool),
    ("gate", str),
    ("scaling_gate", str),
]


def check_bench_serve(path):
    with open(path) as f:
        bench = json.load(f)
    errors = []
    for key, kind in BENCH_SERVE_EXPECTED:
        value, found = lookup(bench, key)
        if not found:
            errors.append("%s: missing key %s" % (path, key))
        elif kind is not bool and isinstance(value, bool):
            errors.append("%s: %s is a bool, expected %s" % (path, key, kind))
        elif not isinstance(value, kind):
            errors.append(
                "%s: %s has type %s, expected %s"
                % (path, key, type(value).__name__, kind)
            )
    # The bench asserts these before writing the file; re-check so a
    # stale or hand-edited artifact cannot pass CI.
    if bench.get("bit_identical") is not True:
        errors.append("%s: concurrent results diverged from the baseline" % path)
    if bench.get("live_leases_after") != 0:
        errors.append("%s: leases leaked after the pool drained" % path)
    if not bench.get("region_grants", 0) > 0:
        errors.append("%s: no execute ever took the region-lease path" % path)
    gate = bench.get("gate", "")
    if not gate.startswith(("asserted", "skipped")):
        errors.append("%s: gate %r is not a recognized disposition" % (path, gate))
    if gate.startswith("asserted"):
        if bench.get("speedup", 0.0) < 1.5:
            errors.append("%s: gate asserted but speedup < 1.5x" % path)
        if not bench.get("overlap_conflicts", 0) > 0:
            errors.append(
                "%s: gate asserted but the overlap probe counted no exclusive fallback"
                % path
            )
    if errors:
        sys.exit("\n".join(errors))
    print(
        "ok: %s matches the repro_serve bench schema (%s, %.2fx)"
        % (path, gate.split(" (")[0], bench.get("speedup", 0.0))
    )


# (dotted path, expected type) for the aggregate half of cmcc-serve-v2.
SERVE_EXPECTED = [
    ("schema", str),
    ("workers", numbers.Integral),
    ("quota", numbers.Integral),
    ("statements", numbers.Integral),
    ("iters", numbers.Integral),
    ("build_once", bool),
    ("drained", bool),
    ("tenants", list),
    ("leases.region_grants", numbers.Integral),
    ("leases.conflicts", numbers.Integral),
    ("leases.peak_concurrent", numbers.Integral),
    ("leases.live", numbers.Integral),
    ("plan_cache.hits", numbers.Integral),
    ("plan_cache.misses", numbers.Integral),
    ("plan_cache.evictions", numbers.Integral),
    ("plan_cache.capacity", numbers.Integral),
    ("plan_cache.shards", list),
    ("plan_cache.shard_evictions", list),
    ("plan_cache.shared_in_flight", numbers.Integral),
    ("latency.phases", dict),
    ("latency.lease.time_to_grant", dict),
    ("latency.lease.conflicted_waits", numbers.Integral),
    ("latency.lease.waits_consistent", bool),
    ("trace_drops", numbers.Integral),
]

# (dotted path, expected type) for each element of ``tenants``.
SERVE_TENANT_EXPECTED = [
    ("tenant", numbers.Integral),
    ("statements", numbers.Integral),
    ("runs", numbers.Integral),
    ("plan_builds", numbers.Integral),
    ("cache_hits", numbers.Integral),
    ("cache_misses", numbers.Integral),
    ("kernelized_steps", numbers.Integral),
    ("interpreted_steps", numbers.Integral),
    ("scalar_steps", numbers.Integral),
    ("latency", dict),
    ("blocked_ns", numbers.Integral),
    ("executing_ns", numbers.Integral),
    ("wall_ns", numbers.Integral),
    ("errors", numbers.Integral),
]


def check_serve():
    batch = None
    for line in sys.stdin:
        line = line.strip()
        if line.startswith('{"schema":"%s"' % SERVE_SCHEMA):
            batch = json.loads(line)
    if batch is None:
        sys.exit("no %s line found on stdin" % SERVE_SCHEMA)

    errors = []
    for path, kind in SERVE_EXPECTED:
        value, found = lookup(batch, path)
        if not found:
            errors.append("serve: missing key %s" % path)
        elif kind is not bool and isinstance(value, bool):
            errors.append("serve: %s is a bool, expected %s" % (path, kind))
        elif not isinstance(value, kind):
            errors.append(
                "serve: %s has type %s, expected %s"
                % (path, type(value).__name__, kind)
            )
    tenants = batch.get("tenants", [])
    if len(tenants) != batch.get("workers"):
        errors.append("serve: tenants length != workers")
    for i, tenant in enumerate(tenants):
        for path, kind in SERVE_TENANT_EXPECTED:
            value, found = lookup(tenant, path)
            if not found or isinstance(value, bool) or not isinstance(value, kind):
                errors.append("serve: tenants[%d].%s missing or mistyped" % (i, path))
        if tenant.get("errors", 0):
            errors.append("serve: tenants[%d] reported errors" % i)
        check_hist(tenant.get("latency"), "serve: tenants[%d].latency" % i, errors)
        blocked = tenant.get("blocked_ns", 0)
        executing = tenant.get("executing_ns", 0)
        wall = tenant.get("wall_ns", 0)
        if blocked + executing > wall:
            errors.append(
                "serve: tenants[%d] blocked %s + executing %s exceeds wall %s"
                % (i, blocked, executing, wall)
            )
    phases, found = lookup(batch, "latency.phases")
    if found:
        check_latency_phases(phases, "serve", errors)
    grant, found = lookup(batch, "latency.lease.time_to_grant")
    if found:
        check_hist(grant, "serve: latency.lease.time_to_grant", errors)
    consistent, found = lookup(batch, "latency.lease.waits_consistent")
    if found and consistent is not True:
        errors.append(
            "serve: traced conflicted waits diverge from the lease conflict counter"
        )
    if batch.get("build_once") is not True:
        errors.append("serve: build-once violated (builds != misses)")
    if batch.get("drained") is not True:
        errors.append("serve: lease table not drained (live or queued leases remain)")
    builds = sum(t.get("plan_builds", 0) for t in tenants)
    misses, _ = lookup(batch, "plan_cache.misses")
    if builds != misses:
        errors.append(
            "serve: tenant plan_builds sum %s != cache misses %s" % (builds, misses)
        )
    for key in ("plan_cache.shards", "plan_cache.shard_evictions"):
        value, found = lookup(batch, key)
        if found and isinstance(value, list):
            if not all(isinstance(v, numbers.Integral) for v in value):
                errors.append("serve: %s has non-integer entries" % key)
    if errors:
        sys.exit("\n".join(errors))
    print(
        "ok: serve batch matches %s (%d tenants, build-once held, leases drained)"
        % (SERVE_SCHEMA, len(tenants))
    )


def check_trace(path, expect_conflict):
    with open(path) as f:
        trace = json.load(f)
    errors = []
    events = trace.get("traceEvents")
    if not isinstance(events, list) or not events:
        sys.exit("%s: no traceEvents list" % path)

    # Per (pid, tid): a stack of open B names; per (name, id): async depth.
    stacks = {}
    async_depth = {}
    prev_ts = None
    conflicted = 0
    for i, e in enumerate(events):
        for key in ("name", "ph", "pid", "tid"):
            if key not in e:
                errors.append("%s: event %d missing %s" % (path, i, key))
        name, ph = e.get("name", ""), e.get("ph", "")
        for key in ("pid", "tid"):
            if isinstance(e.get(key), bool) or not isinstance(
                e.get(key), numbers.Integral
            ):
                errors.append("%s: event %d %s is not integral" % (path, i, key))
        if ph == "M":
            continue
        ts = e.get("ts")
        if not isinstance(ts, numbers.Real):
            errors.append("%s: event %d has no numeric ts" % (path, i))
            continue
        if prev_ts is not None and ts < prev_ts:
            errors.append("%s: event %d ts runs backwards" % (path, i))
        prev_ts = ts
        key = (e.get("pid"), e.get("tid"))
        if ph == "B":
            stacks.setdefault(key, []).append(name)
        elif ph == "E":
            stack = stacks.setdefault(key, [])
            if not stack or stack.pop() != name:
                errors.append(
                    "%s: event %d E %r does not close the open B on tid %s"
                    % (path, i, name, e.get("tid"))
                )
            if name == "lease_acquire" and e.get("args", {}).get("arg") == 1:
                conflicted += 1
        elif ph == "b":
            akey = (name, e.get("id"))
            async_depth[akey] = async_depth.get(akey, 0) + 1
        elif ph == "e":
            akey = (name, e.get("id"))
            async_depth[akey] = async_depth.get(akey, 0) - 1
            if async_depth[akey] < 0:
                errors.append("%s: event %d async e without b" % (path, i))
        elif ph != "i":
            errors.append("%s: event %d has unknown ph %r" % (path, i, ph))
    for key, stack in stacks.items():
        if stack:
            errors.append(
                "%s: tid %s left unclosed B events %s" % (path, key[1], stack)
            )
    for akey, depth in async_depth.items():
        if depth != 0:
            errors.append("%s: async track %r unbalanced" % (path, akey))
    if expect_conflict and conflicted == 0:
        errors.append(
            "%s: expected at least one conflicted lease_acquire end event" % path
        )
    if errors:
        sys.exit("\n".join(errors))
    print(
        "ok: %s is a balanced Chrome trace (%d events, %d conflicted waits)"
        % (path, len(events), conflicted)
    )


def main():
    if len(sys.argv) >= 2 and sys.argv[1] == "--serve":
        check_serve()
        return
    if len(sys.argv) >= 2 and sys.argv[1] == "--trace":
        if len(sys.argv) not in (3, 4) or (
            len(sys.argv) == 4 and sys.argv[3] != "--expect-conflict"
        ):
            sys.exit("usage: check_profile_schema.py --trace FILE [--expect-conflict]")
        check_trace(sys.argv[2], len(sys.argv) == 4)
        return
    if len(sys.argv) >= 2 and sys.argv[1] == "--bench-parallel":
        if len(sys.argv) != 3:
            sys.exit("usage: check_profile_schema.py --bench-parallel FILE")
        check_bench_parallel(sys.argv[2])
        return
    if len(sys.argv) >= 2 and sys.argv[1] == "--bench-temporal":
        if len(sys.argv) != 3:
            sys.exit("usage: check_profile_schema.py --bench-temporal FILE")
        check_bench_temporal(sys.argv[2])
        return
    if len(sys.argv) >= 2 and sys.argv[1] == "--bench-serve":
        if len(sys.argv) != 3:
            sys.exit("usage: check_profile_schema.py --bench-serve FILE")
        check_bench_serve(sys.argv[2])
        return

    profiles = []
    for line in sys.stdin:
        line = line.strip()
        if line.startswith('{"schema":"%s"' % SCHEMA):
            profiles.append(json.loads(line))
    if not profiles:
        sys.exit("no %s line found on stdin" % SCHEMA)

    errors = []
    for i, profile in enumerate(profiles):
        for path, kind in EXPECTED:
            value, found = lookup(profile, path)
            if not found:
                errors.append("profile %d: missing key %s" % (i, path))
            elif kind is not bool and isinstance(value, bool):
                # bool is an int subclass; only report.enabled may be one.
                errors.append("profile %d: %s is a bool, expected %s" % (i, path, kind))
            elif not isinstance(value, kind):
                errors.append(
                    "profile %d: %s has type %s, expected %s"
                    % (i, path, type(value).__name__, kind)
                )
        if profile.get("schema") != SCHEMA:
            errors.append("profile %d: schema key mismatch" % i)
        phases, found = lookup(profile, "latency.phases")
        if found:
            check_latency_phases(phases, "profile %d" % i, errors)
        if profile.get("derived", {}).get("model_drift_ok") is not True:
            errors.append("profile %d: model drift exceeded tolerance" % i)

    if errors:
        sys.exit("\n".join(errors))
    print("ok: %d profile(s) match %s" % (len(profiles), SCHEMA))


if __name__ == "__main__":
    main()
