//! Differential suite for the lockstep SIMD executor: in fast mode, for
//! every paper pattern, edge subgrid shape (exercising every strip-width
//! mix the shaver produces), and thread count, the step-outer lockstep
//! broadcast engine must be *indistinguishable* from the node-outer
//! scalar interpreter — bit-identical result arrays and exactly equal
//! [`Measurement`]s.
//!
//! The scalar fast run is the oracle. Per lane, the lockstep engine
//! replays exactly the scalar operation order with separate IEEE
//! multiplies and adds (never a fused contraction), so equality is exact
//! by construction; these tests pin that construction down, including
//! through plan reuse, rebinding, lane-splitting across threads, and the
//! aliasing fallback.

use cmcc::cm2::{Machine, MachineConfig};
use cmcc::core::recognize::CoeffSpec;
use cmcc::core::Compiler;
use cmcc::runtime::{convolve, CmArray, ExecOptions, ExecutionPlan, PlanLifetime, StencilBinding};
use cmcc::{ExecEngine, Measurement, PaperPattern};
use cmcc_testkit::{property, Rng};

/// Builds machine + arrays for `pattern` at global `rows × cols` on the
/// 2×2 tiny board and runs one convolution under `opts`.
fn run_case(
    pattern: PaperPattern,
    rows: usize,
    cols: usize,
    opts: &ExecOptions,
) -> (Measurement, Vec<u32>) {
    let cfg = MachineConfig::tiny_4();
    let compiler = Compiler::new(cfg.clone());
    let compiled = compiler
        .compile_assignment(&pattern.fortran())
        .expect("paper patterns compile");
    let mut machine = Machine::new(cfg).expect("tiny_4 is valid");
    let x = CmArray::new(&mut machine, rows, cols).unwrap();
    x.fill_with(&mut machine, |r, c| {
        ((r * 31 + c * 7) % 41) as f32 * 0.125 - 2.5
    });
    let named = compiled
        .spec()
        .coeffs
        .iter()
        .filter(|c| matches!(c, CoeffSpec::Named(_)))
        .count();
    let coeffs: Vec<CmArray> = (0..named)
        .map(|a| {
            let arr = CmArray::new(&mut machine, rows, cols).unwrap();
            arr.fill_with(&mut machine, move |r, c| {
                ((r * 5 + c * 11 + a * 3) % 13) as f32 * 0.0625 - 0.375
            });
            arr
        })
        .collect();
    let refs: Vec<&CmArray> = coeffs.iter().collect();
    let r = CmArray::new(&mut machine, rows, cols).unwrap();
    let m = convolve(&mut machine, &compiled, &r, &x, &refs, opts)
        .expect("paper patterns run on tiny_4");
    let bits = r.gather(&machine).iter().map(|v| v.to_bits()).collect();
    (m, bits)
}

fn scalar_fast() -> ExecOptions {
    ExecOptions::fast()
        .with_engine(ExecEngine::Scalar)
        .with_threads(1)
}

fn lockstep_fast() -> ExecOptions {
    ExecOptions::fast()
        .with_engine(ExecEngine::Lockstep)
        .with_threads(1)
}

/// Every paper pattern, scalar vs lockstep, on a shape that mixes strip
/// widths (12 columns per node shaves unevenly for the wider kernels).
#[test]
fn lockstep_matches_scalar_for_every_paper_pattern() {
    for pattern in PaperPattern::ALL {
        let (scalar_m, scalar_bits) = run_case(pattern, 16, 24, &scalar_fast());
        let (m, bits) = run_case(pattern, 16, 24, &lockstep_fast());
        assert_eq!(scalar_bits, bits, "{}: results diverge", pattern.name());
        assert_eq!(scalar_m, m, "{}: measurement diverges", pattern.name());
    }
}

/// Edge subgrid shapes: odd, prime, and barely-wider-than-the-halo
/// column counts change which strip widths the shaver emits and whether
/// half-strips split unevenly. Every shape must stay exact.
#[test]
fn lockstep_matches_scalar_on_edge_subgrid_shapes() {
    // (global rows, global cols) on the 2×2 board: per-node subgrids of
    // 15, 7, 9, 8, and 5 columns.
    let shapes = [(16, 30), (8, 14), (12, 18), (8, 16), (10, 10)];
    for pattern in [PaperPattern::Square9, PaperPattern::Diamond13] {
        for (rows, cols) in shapes {
            let (scalar_m, scalar_bits) = run_case(pattern, rows, cols, &scalar_fast());
            let (m, bits) = run_case(pattern, rows, cols, &lockstep_fast());
            assert_eq!(
                scalar_bits,
                bits,
                "{} at {rows}x{cols}: results diverge",
                pattern.name()
            );
            assert_eq!(
                scalar_m,
                m,
                "{} at {rows}x{cols}: measurement diverges",
                pattern.name()
            );
        }
    }
}

/// Lane splitting across host threads (including oversubscription past
/// the node count) never changes results or counters.
#[test]
fn lockstep_thread_counts_are_exact() {
    for pattern in [PaperPattern::Square9, PaperPattern::Star9] {
        let (scalar_m, scalar_bits) = run_case(pattern, 16, 24, &scalar_fast());
        for threads in [2, 3, 4, 64, usize::MAX] {
            let (m, bits) = run_case(pattern, 16, 24, &lockstep_fast().with_threads(threads));
            assert_eq!(
                scalar_bits,
                bits,
                "{}: results diverge at {threads} threads",
                pattern.name()
            );
            assert_eq!(
                scalar_m,
                m,
                "{}: measurement diverges at {threads} threads",
                pattern.name()
            );
        }
    }
}

/// A plan built once stays exact across repeated executions and across
/// rebinds to fresh arrays, and keeps using the lockstep engine.
#[test]
fn lockstep_plan_reuse_and_rebind_stay_exact() {
    let cfg = MachineConfig::tiny_4();
    let compiler = Compiler::new(cfg.clone());
    let compiled = compiler
        .compile_assignment(&PaperPattern::Square9.fortran())
        .expect("paper patterns compile");
    let mut machine = Machine::new(cfg).expect("tiny_4 is valid");
    let (rows, cols) = (12, 16);
    let fill = |machine: &mut Machine, seed: usize| -> CmArray {
        let a = CmArray::new(machine, rows, cols).unwrap();
        a.fill_with(machine, move |r, c| {
            ((r * 17 + c * 13 + seed * 29) % 37) as f32 * 0.25 - 4.0
        });
        a
    };
    let x1 = fill(&mut machine, 0);
    let x2 = fill(&mut machine, 1);
    let named = compiled
        .spec()
        .coeffs
        .iter()
        .filter(|c| matches!(c, CoeffSpec::Named(_)))
        .count();
    let coeffs: Vec<CmArray> = (2..2 + named).map(|s| fill(&mut machine, s)).collect();
    let refs: Vec<&CmArray> = coeffs.iter().collect();
    let r1 = CmArray::new(&mut machine, rows, cols).unwrap();
    let r2 = CmArray::new(&mut machine, rows, cols).unwrap();

    let opts = lockstep_fast();
    let binding = StencilBinding::new(&compiled, &r1, &[&x1], &refs).unwrap();
    let mut plan =
        ExecutionPlan::build(&mut machine, &binding, &opts, PlanLifetime::Scoped).unwrap();
    assert!(plan.uses_lockstep(), "clean binding lane-maps");
    let m1 = plan.execute(&mut machine).unwrap();
    assert_eq!(m1, plan.execute(&mut machine).unwrap(), "replay is exact");
    let got1 = r1.gather(&machine);

    plan.rebind(&r2, &[&x2], &refs).unwrap();
    assert!(plan.uses_lockstep(), "rebind keeps the lane view");
    plan.execute(&mut machine).unwrap();
    let got2 = r2.gather(&machine);

    // Oracle: fresh scalar convolutions over the same data.
    let check1 = CmArray::new(&mut machine, rows, cols).unwrap();
    let check2 = CmArray::new(&mut machine, rows, cols).unwrap();
    convolve(&mut machine, &compiled, &check1, &x1, &refs, &scalar_fast()).unwrap();
    convolve(&mut machine, &compiled, &check2, &x2, &refs, &scalar_fast()).unwrap();
    let want1 = check1.gather(&machine);
    let want2 = check2.gather(&machine);
    let bits = |v: &[f32]| v.iter().map(|f| f.to_bits()).collect::<Vec<_>>();
    assert_eq!(bits(&got1), bits(&want1), "first binding diverges");
    assert_eq!(bits(&got2), bits(&want2), "rebound binding diverges");
}

/// Exchange-on-lane vs exchange-on-node, per paper pattern: the resident
/// steady state (halo exchange applied directly to the plan's lane
/// mirror) must be indistinguishable — results and `Measurement`s — from
/// the gather-everything baseline it replaced, and both from the scalar
/// oracle.
#[test]
fn lane_exchange_matches_node_exchange_for_every_paper_pattern() {
    for pattern in PaperPattern::ALL {
        let (scalar_m, scalar_bits) = run_case(pattern, 16, 24, &scalar_fast());
        let (node_m, node_bits) =
            run_case(pattern, 16, 24, &lockstep_fast().with_lane_resident(false));
        let (lane_m, lane_bits) = run_case(pattern, 16, 24, &lockstep_fast());
        assert_eq!(
            scalar_bits,
            node_bits,
            "{}: node-exchange results diverge",
            pattern.name()
        );
        assert_eq!(
            scalar_bits,
            lane_bits,
            "{}: lane-exchange results diverge",
            pattern.name()
        );
        assert_eq!(
            scalar_m,
            node_m,
            "{}: node-exchange measurement",
            pattern.name()
        );
        assert_eq!(
            scalar_m,
            lane_m,
            "{}: lane-exchange measurement",
            pattern.name()
        );
    }
}

/// The corner-skip path on the lane domain: a cross stencil (no diagonal
/// taps) skips the second exchange step, leaving the mirror's corner
/// words stale — which must be unobservable because no kernel reads
/// them. Covered with the skip both allowed and ablated, on edge shapes
/// whose uneven strips stress the seams, against both the node-exchange
/// baseline and the scalar oracle.
#[test]
fn lane_corner_skip_and_edge_shapes_stay_exact() {
    for pattern in [PaperPattern::Cross5, PaperPattern::Square9] {
        for skip in [true, false] {
            for (rows, cols) in [(16, 30), (8, 14), (10, 10)] {
                let mut scalar = scalar_fast();
                scalar.skip_corners_when_possible = skip;
                let mut node = lockstep_fast().with_lane_resident(false);
                node.skip_corners_when_possible = skip;
                let mut lane = lockstep_fast();
                lane.skip_corners_when_possible = skip;
                let (scalar_m, scalar_bits) = run_case(pattern, rows, cols, &scalar);
                let (node_m, node_bits) = run_case(pattern, rows, cols, &node);
                let (lane_m, lane_bits) = run_case(pattern, rows, cols, &lane);
                assert_eq!(
                    scalar_bits,
                    node_bits,
                    "{} at {rows}x{cols} skip={skip}: node-exchange diverges",
                    pattern.name()
                );
                assert_eq!(
                    scalar_bits,
                    lane_bits,
                    "{} at {rows}x{cols} skip={skip}: lane-exchange diverges",
                    pattern.name()
                );
                assert_eq!(scalar_m, node_m);
                assert_eq!(scalar_m, lane_m);
            }
        }
    }
}

/// Iterated time-stepping on a resident plan: ping-pong rebinds swap the
/// roles of two arrays every step, which must re-prime the mirror (the
/// sources moved) while staying bit-identical to a scalar run of the
/// same sequence.
#[test]
fn resident_ping_pong_iteration_matches_scalar() {
    let cfg = MachineConfig::tiny_4();
    let compiler = Compiler::new(cfg.clone());
    let compiled = compiler
        .compile_assignment(&PaperPattern::Square9.fortran())
        .expect("paper patterns compile");
    let named = compiled
        .spec()
        .coeffs
        .iter()
        .filter(|c| matches!(c, CoeffSpec::Named(_)))
        .count();
    let (rows, cols) = (12, 16);
    let steps = 6;

    let run = |opts: &ExecOptions| -> Vec<u32> {
        let mut machine = Machine::new(cfg.clone()).expect("tiny_4 is valid");
        let a = CmArray::new(&mut machine, rows, cols).unwrap();
        let b = CmArray::new(&mut machine, rows, cols).unwrap();
        a.fill_with(&mut machine, |r, c| ((r * 19 + c * 5) % 23) as f32 * 0.125);
        b.fill(&mut machine, 0.0);
        let coeffs: Vec<CmArray> = (0..named)
            .map(|s| {
                let c = CmArray::new(&mut machine, rows, cols).unwrap();
                c.fill_with(&mut machine, move |r, col| {
                    ((r * 3 + col * 7 + s * 11) % 9) as f32 * 0.0625
                });
                c
            })
            .collect();
        let refs: Vec<&CmArray> = coeffs.iter().collect();
        let binding = StencilBinding::new(&compiled, &b, &[&a], &refs).unwrap();
        let mut plan =
            ExecutionPlan::build(&mut machine, &binding, opts, PlanLifetime::Scoped).unwrap();
        for step in 0..steps {
            plan.execute(&mut machine).unwrap();
            let (from, to) = if step % 2 == 0 { (&b, &a) } else { (&a, &b) };
            plan.rebind(to, &[from], &refs).unwrap();
        }
        let last = if steps % 2 == 0 { &a } else { &b };
        last.gather(&machine).iter().map(|v| v.to_bits()).collect()
    };

    let scalar = run(&scalar_fast());
    let resident = run(&lockstep_fast());
    let node_exchange = run(&lockstep_fast().with_lane_resident(false));
    assert_eq!(scalar, resident, "resident ping-pong diverges from scalar");
    assert_eq!(
        scalar, node_exchange,
        "baseline ping-pong diverges from scalar"
    );
}

/// Binding the result array as the source aliases two lane roles; the
/// plan must fall back to the scalar engine and still match a scalar run
/// of the same aliased call.
#[test]
fn aliased_bindings_fall_back_and_stay_exact() {
    let cfg = MachineConfig::tiny_4();
    let compiler = Compiler::new(cfg.clone());
    let compiled = compiler
        .compile_assignment(&PaperPattern::Cross5.fortran())
        .expect("paper patterns compile");
    let named = compiled
        .spec()
        .coeffs
        .iter()
        .filter(|c| matches!(c, CoeffSpec::Named(_)))
        .count();
    let run = |opts: &ExecOptions| -> Vec<u32> {
        let mut machine = Machine::new(cfg.clone()).expect("tiny_4 is valid");
        let a = CmArray::new(&mut machine, 8, 12).unwrap();
        a.fill_with(&mut machine, |r, c| (r * 3 + c) as f32 * 0.5 - 6.0);
        let coeffs: Vec<CmArray> = (0..named)
            .map(|s| {
                let c = CmArray::new(&mut machine, 8, 12).unwrap();
                c.fill_with(&mut machine, move |r, col| {
                    ((r * 7 + col * 3 + s) % 11) as f32 * 0.125 - 0.5
                });
                c
            })
            .collect();
        let refs: Vec<&CmArray> = coeffs.iter().collect();
        // Result and source are the same array: in-place update.
        convolve(&mut machine, &compiled, &a, &a, &refs, opts).expect("aliased call runs");
        a.gather(&machine).iter().map(|v| v.to_bits()).collect()
    };
    assert_eq!(run(&scalar_fast()), run(&lockstep_fast()));
}

/// Builds machine + deterministically filled arrays for `pattern` and
/// advances `steps` time steps, `depth` of them fused per `execute`
/// (`steps` must be a multiple of `depth`), ping-ponging result and
/// source between executes. Returns the final array's bits.
fn run_time_stepped(
    pattern: PaperPattern,
    rows: usize,
    cols: usize,
    steps: usize,
    depth: usize,
    opts: &ExecOptions,
) -> Vec<u32> {
    assert_eq!(steps % depth, 0, "whole executes only");
    let cfg = MachineConfig::tiny_4();
    let compiler = Compiler::new(cfg.clone());
    let compiled = compiler
        .compile_assignment(&pattern.fortran())
        .expect("paper patterns compile");
    let mut machine = Machine::new(cfg).expect("tiny_4 is valid");
    let a = CmArray::new(&mut machine, rows, cols).unwrap();
    let b = CmArray::new(&mut machine, rows, cols).unwrap();
    a.fill_with(&mut machine, |r, c| {
        ((r * 31 + c * 7) % 41) as f32 * 0.125 - 2.5
    });
    b.fill(&mut machine, 0.0);
    let named = compiled
        .spec()
        .coeffs
        .iter()
        .filter(|c| matches!(c, CoeffSpec::Named(_)))
        .count();
    let coeffs: Vec<CmArray> = (0..named)
        .map(|s| {
            let arr = CmArray::new(&mut machine, rows, cols).unwrap();
            arr.fill_with(&mut machine, move |r, c| {
                ((r * 5 + c * 11 + s * 3) % 13) as f32 * 0.0625 - 0.375
            });
            arr
        })
        .collect();
    let refs: Vec<&CmArray> = coeffs.iter().collect();
    // Keep a caller-provided depth (e.g. one expected to clamp) intact.
    let opts = if depth > 1 {
        (*opts).with_temporal_depth(depth)
    } else {
        *opts
    };
    let binding = StencilBinding::new(&compiled, &b, &[&a], &refs).unwrap();
    let mut plan =
        ExecutionPlan::build(&mut machine, &binding, &opts, PlanLifetime::Scoped).unwrap();
    let executes = steps / depth;
    for e in 0..executes {
        plan.execute(&mut machine).unwrap();
        if e + 1 < executes {
            let (from, to) = if e % 2 == 0 { (&b, &a) } else { (&a, &b) };
            plan.rebind(to, &[from], &refs).unwrap();
        }
    }
    let last = if executes.is_multiple_of(2) { &a } else { &b };
    last.gather(&machine).iter().map(|v| v.to_bits()).collect()
}

/// Temporal tiling: one fused execute at depth k must be bit-identical
/// to k iterated depth-1 scalar steps, for every paper pattern and
/// every supported depth — including patterns with named coefficient
/// arrays, whose halo-margin values flow through the widened
/// coefficient halos.
#[test]
fn temporal_fused_executes_match_iterated_scalar() {
    for pattern in PaperPattern::ALL {
        // 4 steps: scalar one-at-a-time vs fused at every divisor depth.
        let oracle = run_time_stepped(pattern, 16, 24, 4, 1, &scalar_fast());
        for depth in [1, 2, 4] {
            let fused = run_time_stepped(pattern, 16, 24, 4, depth, &lockstep_fast());
            assert_eq!(
                oracle,
                fused,
                "{}: depth-{depth} fused run diverges from iterated scalar",
                pattern.name()
            );
        }
    }
}

/// Temporal tiling across edge subgrid shapes and rebind ping-pong:
/// uneven strips, margin-shifted schedules, and mirror re-priming
/// between fused executes must all stay exact.
#[test]
fn temporal_edge_shapes_and_rebinds_stay_exact() {
    for pattern in [PaperPattern::Square9, PaperPattern::Cross5] {
        for (rows, cols) in [(16, 30), (8, 14), (12, 18)] {
            let oracle = run_time_stepped(pattern, rows, cols, 6, 1, &scalar_fast());
            for depth in [2, 3] {
                let fused = run_time_stepped(pattern, rows, cols, 6, depth, &lockstep_fast());
                assert_eq!(
                    oracle,
                    fused,
                    "{} at {rows}x{cols}: depth-{depth} diverges",
                    pattern.name()
                );
            }
        }
    }
}

/// A step count that does not divide by the fused depth: run the bulk
/// through the deep plan and the tail through a depth-1 plan on the
/// same machine — exactly how a driver time loop handles remainders.
#[test]
fn temporal_tail_steps_via_shallow_plan_stay_exact() {
    let (rows, cols, total, depth) = (12, 16, 7usize, 3usize);
    let pattern = PaperPattern::Square9;
    let oracle = run_time_stepped(pattern, rows, cols, total, 1, &scalar_fast());

    let cfg = MachineConfig::tiny_4();
    let compiler = Compiler::new(cfg.clone());
    let compiled = compiler
        .compile_assignment(&pattern.fortran())
        .expect("paper patterns compile");
    let mut machine = Machine::new(cfg).expect("tiny_4 is valid");
    let a = CmArray::new(&mut machine, rows, cols).unwrap();
    let b = CmArray::new(&mut machine, rows, cols).unwrap();
    a.fill_with(&mut machine, |r, c| {
        ((r * 31 + c * 7) % 41) as f32 * 0.125 - 2.5
    });
    b.fill(&mut machine, 0.0);
    let named = compiled
        .spec()
        .coeffs
        .iter()
        .filter(|c| matches!(c, CoeffSpec::Named(_)))
        .count();
    let coeffs: Vec<CmArray> = (0..named)
        .map(|s| {
            let arr = CmArray::new(&mut machine, rows, cols).unwrap();
            arr.fill_with(&mut machine, move |r, c| {
                ((r * 5 + c * 11 + s * 3) % 13) as f32 * 0.0625 - 0.375
            });
            arr
        })
        .collect();
    let refs: Vec<&CmArray> = coeffs.iter().collect();

    let deep_opts = lockstep_fast().with_temporal_depth(depth);
    let binding = StencilBinding::new(&compiled, &b, &[&a], &refs).unwrap();
    let mut deep =
        ExecutionPlan::build(&mut machine, &binding, &deep_opts, PlanLifetime::Scoped).unwrap();
    assert_eq!(deep.temporal_depth(), depth, "depth should take effect");
    deep.execute(&mut machine).unwrap(); // steps 1..=3 → b
    deep.rebind(&a, &[&b], &refs).unwrap();
    deep.execute(&mut machine).unwrap(); // steps 4..=6 → a

    let tail_binding = StencilBinding::new(&compiled, &b, &[&a], &refs).unwrap();
    let mut tail = ExecutionPlan::build(
        &mut machine,
        &tail_binding,
        &lockstep_fast(),
        PlanLifetime::Scoped,
    )
    .unwrap();
    tail.execute(&mut machine).unwrap(); // step 7 → b

    let got: Vec<u32> = b.gather(&machine).iter().map(|v| v.to_bits()).collect();
    assert_eq!(oracle, got, "tail-step composition diverges");
}

/// Depths the plan cannot honor clamp to 1 with a recorded reason —
/// and the clamped plan still runs exactly one step per execute.
#[test]
fn temporal_depth_clamps_with_a_reason() {
    let cfg = MachineConfig::tiny_4();
    let compiler = Compiler::new(cfg.clone());
    let compiled = compiler
        .compile_assignment(&PaperPattern::Square9.fortran())
        .expect("paper patterns compile");
    let build =
        |machine: &mut Machine, arrays: &(CmArray, CmArray, Vec<CmArray>), opts: &ExecOptions| {
            let (a, b, coeffs) = arrays;
            let refs: Vec<&CmArray> = coeffs.iter().collect();
            let binding = StencilBinding::new(&compiled, b, &[a], &refs).unwrap();
            ExecutionPlan::build(machine, &binding, opts, PlanLifetime::Scoped).unwrap()
        };
    let mut machine = Machine::new(cfg).expect("tiny_4 is valid");
    // 8×8 global on the 2×2 board → 4×4 subgrids: depth 8 needs an
    // 8-deep halo, deeper than the subgrid.
    let (rows, cols) = (8, 8);
    let a = CmArray::new(&mut machine, rows, cols).unwrap();
    a.fill_with(&mut machine, |r, c| (r * 3 + c) as f32 * 0.25);
    let b = CmArray::new(&mut machine, rows, cols).unwrap();
    let named = compiled
        .spec()
        .coeffs
        .iter()
        .filter(|c| matches!(c, CoeffSpec::Named(_)))
        .count();
    let coeffs: Vec<CmArray> = (0..named)
        .map(|s| {
            let arr = CmArray::new(&mut machine, rows, cols).unwrap();
            arr.fill(&mut machine, (s as f32 + 1.0) * 0.125);
            arr
        })
        .collect();
    let arrays = (a, b, coeffs);

    let small = build(
        &mut machine,
        &arrays,
        &lockstep_fast().with_temporal_depth(8),
    );
    assert_eq!(small.temporal_depth(), 1, "oversized depth must clamp");
    assert_eq!(
        small.temporal_fallback(),
        Some("subgrid smaller than depth x radius")
    );

    let scalar = build(&mut machine, &arrays, &scalar_fast().with_temporal_depth(4));
    assert_eq!(scalar.temporal_depth(), 1);
    assert_eq!(scalar.temporal_fallback(), Some("scalar engine"));

    let node_exchange = build(
        &mut machine,
        &arrays,
        &lockstep_fast()
            .with_temporal_depth(4)
            .with_lane_resident(false),
    );
    assert_eq!(node_exchange.temporal_depth(), 1);
    assert_eq!(
        node_exchange.temporal_fallback(),
        Some("lane residency disabled")
    );

    // A depth the shape supports records no fallback.
    let ok = build(
        &mut machine,
        &arrays,
        &lockstep_fast().with_temporal_depth(2),
    );
    assert_eq!(ok.temporal_depth(), 2);
    assert_eq!(ok.temporal_fallback(), None);

    // And the clamped plan advances exactly one step per execute: one
    // execute must equal one scalar step, not eight.
    let oracle = run_time_stepped(PaperPattern::Square9, 16, 24, 1, 1, &scalar_fast());
    let clamped = run_time_stepped(
        PaperPattern::Square9,
        16,
        24,
        1,
        1,
        &lockstep_fast().with_temporal_depth(64),
    );
    assert_eq!(oracle, clamped, "clamped plan must run one step");
}

/// Randomized sweep: random shapes, patterns, and thread counts, fresh
/// random data per case — scalar and lockstep stay indistinguishable.
#[test]
fn property_lockstep_is_indistinguishable_from_scalar() {
    property("lockstep differential", 8, |rng: &mut Rng| {
        let pattern = PaperPattern::ALL[rng.usize_in(0, PaperPattern::ALL.len() - 1)];
        // Subgrids from 5×5 up to 14×14 on the 2×2 board; every pattern's
        // halo (≤2) fits.
        let rows = 2 * rng.usize_in(5, 14);
        let cols = 2 * rng.usize_in(5, 14);
        let threads = rng.usize_in(1, 8);
        let cfg = MachineConfig::tiny_4();
        let compiler = Compiler::new(cfg.clone());
        let compiled = compiler
            .compile_assignment(&pattern.fortran())
            .expect("paper patterns compile");
        let data: Vec<f32> = (0..rows * cols).map(|_| rng.f32_in(-8.0, 8.0)).collect();
        let named = compiled
            .spec()
            .coeffs
            .iter()
            .filter(|c| matches!(c, CoeffSpec::Named(_)))
            .count();
        let coeff_data: Vec<Vec<f32>> = (0..named)
            .map(|_| (0..rows * cols).map(|_| rng.f32_in(-1.0, 1.0)).collect())
            .collect();
        let run = |opts: &ExecOptions| -> (Measurement, Vec<u32>) {
            let mut machine = Machine::new(cfg.clone()).expect("tiny_4 is valid");
            let x = CmArray::new(&mut machine, rows, cols).unwrap();
            x.scatter(&mut machine, &data);
            let coeffs: Vec<CmArray> = coeff_data
                .iter()
                .map(|d| {
                    let a = CmArray::new(&mut machine, rows, cols).unwrap();
                    a.scatter(&mut machine, d);
                    a
                })
                .collect();
            let refs: Vec<&CmArray> = coeffs.iter().collect();
            let r = CmArray::new(&mut machine, rows, cols).unwrap();
            let m = convolve(&mut machine, &compiled, &r, &x, &refs, opts).unwrap();
            (m, r.gather(&machine).iter().map(|v| v.to_bits()).collect())
        };
        let (scalar_m, scalar_bits) = run(&scalar_fast());
        let (m, bits) = run(&lockstep_fast().with_threads(threads));
        assert_eq!(
            scalar_bits,
            bits,
            "{} at {rows}x{cols}, {threads} threads: results diverge",
            pattern.name()
        );
        assert_eq!(scalar_m, m, "{}: measurement diverges", pattern.name());
    });
}
