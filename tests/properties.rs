//! Property-based tests: for *arbitrary* stencils in the compiler's
//! domain, compiled execution on the simulated machine must match the
//! host-side reference evaluator bit for bit, across widths, walks,
//! boundaries, subgrid shapes — and host thread counts.

use cmcc::cm2::{ExecMode, Machine, MachineConfig};
use cmcc::core::columns::{gcd, lcm, plan_rings};
use cmcc::core::multistencil::Multistencil;
use cmcc::core::stencil::{Boundary, CoeffRef, Stencil, Tap};
use cmcc::core::{CompileError, Compiler};
use cmcc::runtime::reference::{reference_convolve, reference_convolve_multi, CoeffValue};
use cmcc::runtime::{convolve, convolve_multi, CmArray, ExecOptions, RuntimeError};
use cmcc_testkit::{property, Rng};

/// An arbitrary stencil: 1..=8 taps (duplicates allowed — they are legal
/// terms), coefficient arrays or unit coefficients, optional bias, either
/// boundary.
fn gen_stencil(rng: &mut Rng) -> (Stencil, usize) {
    let n_taps = rng.usize_in(1, 9);
    let mut taps = Vec::new();
    let mut n_coeffs = 0;
    for _ in 0..n_taps {
        let dr = rng.i32_in(-2, 2);
        let dc = rng.i32_in(-2, 2);
        if rng.bool() {
            taps.push(Tap::unit(dr, dc));
        } else {
            taps.push(Tap::new(dr, dc, n_coeffs));
            n_coeffs += 1;
        }
    }
    let bias_terms = if rng.bool() {
        n_coeffs += 1;
        vec![n_coeffs - 1]
    } else {
        Vec::new()
    };
    let boundary = if rng.bool() {
        Boundary::Circular
    } else {
        Boundary::ZeroFill
    };
    let stencil =
        Stencil::new(taps, bias_terms, boundary, n_coeffs).expect("nonempty by construction");
    (stencil, n_coeffs)
}

/// Renders a stencil back to Fortran so the test exercises the whole
/// pipeline, front end included (the production unparser).
fn to_fortran(stencil: &Stencil) -> String {
    cmcc::core::unparse::unparse_stencil(stencil)
}

/// Deterministic per-element data: a hash mix, not the RNG, so reruns of
/// the same case see the same arrays regardless of call order.
fn mix(i: usize, s: u64) -> f32 {
    let h = (i as u64)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(s);
    ((h >> 32) as i32 % 1000) as f32 * 0.01
}

/// Compiles an arbitrary stencil and runs it on random data with the
/// given options; returns `(source, got, want)` unless the case hit a
/// legal refusal (register exhaustion, halo deeper than the subgrid).
fn run_arbitrary_stencil(
    rng: &mut Rng,
    opts: &ExecOptions,
) -> Option<(String, Stencil, Vec<f32>, Vec<f32>)> {
    let (stencil, n_coeffs) = gen_stencil(rng);
    let seed = rng.u64_below(1000);
    let source = to_fortran(&stencil);
    let compiler = Compiler::new(MachineConfig::tiny_4());
    let compiled = match compiler.compile_assignment(&source) {
        Ok(c) => c,
        // Register exhaustion is a legal outcome for big footprints.
        Err(CompileError::NoFeasibleWidth { .. }) => return None,
        Err(e) => panic!("unexpected compile error on `{source}`: {e}"),
    };
    // The recognizer must reconstruct the same taps.
    assert_eq!(compiled.stencil().taps(), stencil.taps());
    // The boundary discipline is only observable (and only rendered)
    // when some tap actually shifts.
    if stencil
        .taps()
        .iter()
        .any(|t| t.offset != cmcc::core::Offset::CENTER)
    {
        assert_eq!(compiled.stencil().boundary(), stencil.boundary());
    }

    let mut machine = Machine::new(MachineConfig::tiny_4()).unwrap();
    let (rows, cols) = (8usize, 12usize);
    let x = CmArray::new(&mut machine, rows, cols).unwrap();
    let data: Vec<f32> = (0..rows * cols).map(|i| mix(i, seed)).collect();
    x.scatter(&mut machine, &data);
    let coeff_arrays: Vec<CmArray> = (0..n_coeffs)
        .map(|a| {
            let arr = CmArray::new(&mut machine, rows, cols).unwrap();
            let data: Vec<f32> = (0..rows * cols)
                .map(|i| mix(i + a * 7919, seed ^ 0xABCD))
                .collect();
            arr.scatter(&mut machine, &data);
            arr
        })
        .collect();
    let r = CmArray::new(&mut machine, rows, cols).unwrap();
    let refs: Vec<&CmArray> = coeff_arrays.iter().collect();

    match convolve(&mut machine, &compiled, &r, &x, &refs, opts) {
        Ok(_) => {}
        // Halo deeper than the subgrid is a legal refusal.
        Err(RuntimeError::SubgridTooSmall { .. }) => return None,
        Err(e) => panic!("runtime error on `{source}`: {e}"),
    }

    let hosts: Vec<Vec<f32>> = coeff_arrays.iter().map(|a| a.gather(&machine)).collect();
    let values: Vec<CoeffValue<'_>> = hosts.iter().map(|h| CoeffValue::Array(h)).collect();
    let want = reference_convolve(&stencil, rows, cols, &data, &values);
    let got = r.gather(&machine);
    Some((source, stencil, got, want))
}

/// The central soundness property: compile(fortran(stencil)) executed
/// on the machine equals the reference evaluation, bit for bit.
#[test]
fn compiled_execution_matches_reference() {
    property("compiled_execution_matches_reference", 48, |rng| {
        let Some((source, _, got, want)) = run_arbitrary_stencil(rng, &ExecOptions::default())
        else {
            return;
        };
        let cols = 12;
        for i in 0..want.len() {
            assert_eq!(
                got[i].to_bits(),
                want[i].to_bits(),
                "`{}` at ({}, {}): got {}, want {}",
                source,
                i / cols,
                i % cols,
                got[i],
                want[i]
            );
        }
    });
}

/// The tentpole's soundness property: the *threaded* executor matches
/// the reference evaluator bit for bit too, at several thread counts
/// (including more threads than nodes).
#[test]
fn parallel_execution_matches_reference() {
    property("parallel_execution_matches_reference", 32, |rng| {
        let threads = *rng.pick(&[2usize, 3, 8]);
        let opts = ExecOptions::default().with_threads(threads);
        let Some((source, _, got, want)) = run_arbitrary_stencil(rng, &opts) else {
            return;
        };
        for i in 0..want.len() {
            assert_eq!(
                got[i].to_bits(),
                want[i].to_bits(),
                "`{source}` with {threads} threads at flat index {i}"
            );
        }
    });
}

/// Repeated runs of the same workload yield *identical* `Measurement`s,
/// whatever the thread count: cycle accounting is deterministic and
/// thread-count invariant.
#[test]
fn measurements_are_thread_count_invariant() {
    property("measurements_are_thread_count_invariant", 16, |rng| {
        let (stencil, n_coeffs) = gen_stencil(rng);
        let source = to_fortran(&stencil);
        let compiler = Compiler::new(MachineConfig::tiny_4());
        let Ok(compiled) = compiler.compile_assignment(&source) else {
            return;
        };
        let mut machine = Machine::new(MachineConfig::tiny_4()).unwrap();
        let (rows, cols) = (8usize, 8usize);
        let x = CmArray::new(&mut machine, rows, cols).unwrap();
        x.fill_with(&mut machine, |r, c| ((r * 13 + c * 3) % 19) as f32 - 9.0);
        let coeffs: Vec<CmArray> = (0..n_coeffs)
            .map(|a| {
                let arr = CmArray::new(&mut machine, rows, cols).unwrap();
                arr.fill_with(&mut machine, move |r, c| {
                    ((r + 2 * c + a) % 5) as f32 * 0.25
                });
                arr
            })
            .collect();
        let refs: Vec<&CmArray> = coeffs.iter().collect();
        let r = CmArray::new(&mut machine, rows, cols).unwrap();

        let Ok(serial) = convolve(
            &mut machine,
            &compiled,
            &r,
            &x,
            &refs,
            &ExecOptions::serial(),
        ) else {
            return;
        };
        let serial_out = r.gather(&machine);
        for threads in [2usize, 8] {
            let opts = ExecOptions::default().with_threads(threads);
            let a = convolve(&mut machine, &compiled, &r, &x, &refs, &opts).unwrap();
            let b = convolve(&mut machine, &compiled, &r, &x, &refs, &opts).unwrap();
            assert_eq!(
                a, serial,
                "`{source}`: measurement differs at {threads} threads"
            );
            assert_eq!(
                a, b,
                "`{source}`: repeated run differs at {threads} threads"
            );
            let out = r.gather(&machine);
            assert_eq!(
                serial_out.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                out.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "`{source}`: results differ at {threads} threads"
            );
        }
    });
}

/// Cycle-accurate and fast execution agree exactly (the pipeline
/// discipline never depends on timing for correctness).
#[test]
fn cycle_and_fast_modes_agree() {
    property("cycle_and_fast_modes_agree", 48, |rng| {
        let (stencil, n_coeffs) = gen_stencil(rng);
        let source = to_fortran(&stencil);
        let compiler = Compiler::new(MachineConfig::tiny_4());
        let Ok(compiled) = compiler.compile_assignment(&source) else {
            return;
        };
        let mut machine = Machine::new(MachineConfig::tiny_4()).unwrap();
        let (rows, cols) = (8usize, 8usize);
        let x = CmArray::new(&mut machine, rows, cols).unwrap();
        x.fill_with(&mut machine, |r, c| ((r * 17 + c * 5) % 23) as f32 - 11.0);
        let coeffs: Vec<CmArray> = (0..n_coeffs)
            .map(|a| {
                let arr = CmArray::new(&mut machine, rows, cols).unwrap();
                arr.fill_with(&mut machine, move |r, c| ((r + c + a) % 7) as f32 * 0.3);
                arr
            })
            .collect();
        let refs: Vec<&CmArray> = coeffs.iter().collect();
        let r = CmArray::new(&mut machine, rows, cols).unwrap();

        let cycle_opts = ExecOptions::default();
        let fast_opts = ExecOptions {
            mode: ExecMode::Fast,
            ..ExecOptions::default()
        };
        if convolve(&mut machine, &compiled, &r, &x, &refs, &cycle_opts).is_err() {
            return;
        }
        let cycle_out = r.gather(&machine);
        convolve(&mut machine, &compiled, &r, &x, &refs, &fast_opts).unwrap();
        let fast_out = r.gather(&machine);
        assert_eq!(cycle_out, fast_out);
    });
}

/// Ring plans always fit their budget, cover every column, and unroll
/// by a multiple of every ring size.
#[test]
fn ring_plans_are_well_formed() {
    property("ring_plans_are_well_formed", 100, |rng| {
        let (stencil, _) = gen_stencil(rng);
        let width = rng.usize_in(1, 9);
        let budget = rng.usize_in(8, 32);
        let ms = Multistencil::new(&stencil, width);
        match plan_rings(&ms, budget, 4096) {
            Ok(plan) => {
                assert!(plan.registers_used() <= budget);
                assert_eq!(plan.rings().len(), ms.columns().len());
                for ring in plan.rings() {
                    assert!(ring.size >= ring.span.height());
                    assert_eq!(plan.unroll() % ring.size, 0);
                }
            }
            Err(_) => {
                // Only legal when the natural demand truly exceeds the
                // budget (the 4096 cap is never hit at radius ≤ 2).
                assert!(ms.natural_register_demand() > budget);
            }
        }
    });
}

/// lcm/gcd sanity.
#[test]
fn lcm_gcd_laws() {
    property("lcm_gcd_laws", 256, |rng| {
        let a = rng.usize_in(1, 500);
        let b = rng.usize_in(1, 500);
        let g = gcd(a, b);
        assert_eq!(a % g, 0);
        assert_eq!(b % g, 0);
        let l = lcm(a, b);
        assert_eq!(l % a, 0);
        assert_eq!(l % b, 0);
        assert_eq!(g * l, a * b);
    });
}

/// Strip plans tile the subgrid exactly, in order, with compiled
/// widths only.
#[test]
fn strip_plans_tile_exactly() {
    let compiler = Compiler::new(MachineConfig::tiny_4());
    let compiled = compiler
        .compile_assignment(&cmcc::PaperPattern::Diamond13.fortran())
        .unwrap();
    property("strip_plans_tile_exactly", 100, |rng| {
        let cols = rng.usize_in(1, 200);
        let strips = cmcc::runtime::plan_strips(&compiled, cols);
        let mut at = 0;
        for s in &strips {
            assert_eq!(s.col0, at);
            assert!(compiled.widths().contains(&s.width));
            at += s.width;
        }
        assert_eq!(at, cols);
        // Greedy widest-first: no two adjacent strips could merge into a
        // wider compiled width … equivalently every strip except possibly
        // trailing ones is the widest that fits.
        let mut remaining = cols;
        for s in &strips {
            let widest = compiled.widest_kernel_for(remaining).unwrap().width;
            assert_eq!(s.width, widest);
            remaining -= s.width;
        }
    });
}

/// Multi-source stencils (the §9 extension): compiled fused execution
/// equals the multi-source reference, bit for bit, for arbitrary tap
/// assignments across 2–3 source arrays.
#[test]
fn multi_source_execution_matches_reference() {
    property("multi_source_execution_matches_reference", 32, |rng| {
        let n_terms = rng.usize_in(2, 8);
        let raw: Vec<(u16, i32, i32)> = (0..n_terms)
            .map(|_| {
                (
                    rng.u64_below(3) as u16,
                    rng.i32_in(-2, 2),
                    rng.i32_in(-2, 2),
                )
            })
            .collect();
        let seed = rng.u64_below(500);
        // Build the statement with explicit zero-shift CSHIFTs so every
        // source is a *shifted* variable for the recognizer.
        // Distinct sources actually referenced (ids may be sparse).
        let n_sources = raw.iter().map(|&(s, _, _)| s as usize + 1).max().unwrap();
        let n_distinct = {
            let mut ids: Vec<u16> = raw.iter().map(|&(s, _, _)| s).collect();
            ids.sort_unstable();
            ids.dedup();
            ids.len()
        };
        let mut terms = Vec::new();
        for (i, &(src, dr, dc)) in raw.iter().enumerate() {
            terms.push(format!(
                "K{i} * CSHIFT(CSHIFT(S{src}, 1, {dr:+}), 2, {dc:+})"
            ));
        }
        let source_text = format!("R = {}", terms.join(" + "));
        let compiler = Compiler::new(MachineConfig::tiny_4());
        let compiled = match compiler.compile_assignment_extended(&source_text) {
            Ok(c) => c,
            Err(CompileError::NoFeasibleWidth { .. }) => return,
            Err(e) => panic!("unexpected compile error on `{source_text}`: {e}"),
        };
        // Recognizer source order is by first shift appearance, which
        // follows term order; remap arrays accordingly.
        let order: Vec<usize> = compiled
            .spec()
            .sources
            .iter()
            .map(|name| name[1..].parse::<usize>().unwrap())
            .collect();
        assert_eq!(order.len(), n_distinct);

        let mut machine = Machine::new(MachineConfig::tiny_4()).unwrap();
        let (rows, cols) = (8usize, 8usize);
        let mix2 = |i: usize, s: u64| -> f32 {
            let h = (i as u64)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(s);
            ((h >> 33) as i32 % 500) as f32 * 0.02
        };
        let source_arrays: Vec<CmArray> = (0..n_sources)
            .map(|k| {
                let a = CmArray::new(&mut machine, rows, cols).unwrap();
                let data: Vec<f32> = (0..rows * cols)
                    .map(|i| mix2(i + k * 104_729, seed))
                    .collect();
                a.scatter(&mut machine, &data);
                a
            })
            .collect();
        let coeff_arrays: Vec<CmArray> = (0..raw.len())
            .map(|k| {
                let a = CmArray::new(&mut machine, rows, cols).unwrap();
                let data: Vec<f32> = (0..rows * cols)
                    .map(|i| mix2(i + k * 7919, seed ^ 0xBEEF))
                    .collect();
                a.scatter(&mut machine, &data);
                a
            })
            .collect();
        let r = CmArray::new(&mut machine, rows, cols).unwrap();
        // Bind sources in the recognizer's order.
        let bound_sources: Vec<&CmArray> = order.iter().map(|&k| &source_arrays[k]).collect();
        let coeff_refs: Vec<&CmArray> = coeff_arrays.iter().collect();
        match convolve_multi(
            &mut machine,
            &compiled,
            &r,
            &bound_sources,
            &coeff_refs,
            &ExecOptions::default(),
        ) {
            Ok(_) => {}
            Err(RuntimeError::SubgridTooSmall { .. }) => return,
            Err(e) => panic!("runtime error on `{source_text}`: {e}"),
        }

        let source_hosts: Vec<Vec<f32>> =
            bound_sources.iter().map(|a| a.gather(&machine)).collect();
        let source_slices: Vec<&[f32]> = source_hosts.iter().map(Vec::as_slice).collect();
        let coeff_hosts: Vec<Vec<f32>> = coeff_arrays.iter().map(|a| a.gather(&machine)).collect();
        let values: Vec<CoeffValue<'_>> =
            coeff_hosts.iter().map(|h| CoeffValue::Array(h)).collect();
        let want =
            reference_convolve_multi(compiled.stencil(), rows, cols, &source_slices, &values);
        let got = r.gather(&machine);
        for i in 0..want.len() {
            assert_eq!(
                got[i].to_bits(),
                want[i].to_bits(),
                "`{}` at ({}, {})",
                source_text,
                i / cols,
                i % cols
            );
        }
    });
}

/// The halo exchange is exact: after the three-step protocol, every
/// halo cell of every node holds the torus-wrapped global element
/// (circular), or the fill value beyond global edges (end-off).
#[test]
fn halo_exchange_matches_global_semantics() {
    property("halo_exchange_matches_global_semantics", 64, |rng| {
        use cmcc::core::Boundary;
        use cmcc::runtime::{ExchangePrimitive, HaloBuffer};
        let sub = rng.usize_in(2, 6);
        let pad = rng.usize_in(1, 3);
        let zerofill = rng.bool();
        let fill = rng.i32_in(-2000, 2000) as f32 * 0.001;
        if pad > sub {
            return;
        }
        let mut machine = Machine::new(MachineConfig::tiny_4()).unwrap();
        let rows = 2 * sub;
        let cols = 2 * sub;
        let a = CmArray::new(&mut machine, rows, cols).unwrap();
        a.fill_with(&mut machine, |r, c| (r * 100 + c) as f32);
        let halo = HaloBuffer::new(&mut machine, sub, sub, pad).unwrap();
        halo.fill_interior(&mut machine, &a);
        let boundary = if zerofill {
            Boundary::ZeroFill
        } else {
            Boundary::Circular
        };
        halo.exchange_with_fill(&mut machine, boundary, fill, true, ExchangePrimitive::News);

        let layout = halo.layout();
        for node in machine.grid().iter().collect::<Vec<_>>() {
            let (gr, gc) = machine.grid().coords(node);
            for lr in -(pad as i64)..(sub + pad) as i64 {
                for lc in -(pad as i64)..(sub + pad) as i64 {
                    let global_r = gr as i64 * sub as i64 + lr;
                    let global_c = gc as i64 * sub as i64 + lc;
                    let want = match boundary {
                        Boundary::Circular => {
                            let r = global_r.rem_euclid(rows as i64) as usize;
                            let c = global_c.rem_euclid(cols as i64) as usize;
                            (r * 100 + c) as f32
                        }
                        Boundary::ZeroFill => {
                            if global_r < 0
                                || global_c < 0
                                || global_r >= rows as i64
                                || global_c >= cols as i64
                            {
                                fill
                            } else {
                                (global_r * 100 + global_c) as f32
                            }
                        }
                    };
                    let got = machine.mem(node).read(layout.addr(lr, lc));
                    assert_eq!(
                        got.to_bits(),
                        want.to_bits(),
                        "node ({gr}, {gc}) local ({lr}, {lc}): got {got}, want {want}"
                    );
                }
            }
        }
    });
}

/// Useful-flop accounting: multiplies for array-coefficient taps plus
/// (terms − 1) adds.
#[test]
fn flop_accounting_matches_definition() {
    property("flop_accounting_matches_definition", 100, |rng| {
        let (stencil, _) = gen_stencil(rng);
        let mults = stencil
            .taps()
            .iter()
            .filter(|t| matches!(t.coeff, CoeffRef::Array(_)))
            .count() as u64;
        let terms = (stencil.taps().len() + stencil.bias().len()) as u64;
        assert_eq!(stencil.useful_flops_per_point(), mults + terms - 1);
    });
}
