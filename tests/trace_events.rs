//! Flight-recorder contract tests: begin/end events pair up with
//! monotone per-thread timestamps, ring overflow is counted (never
//! corrupting the already-recorded prefix), latency histograms quantize
//! percentiles exactly against a sorted oracle, and racing tenants'
//! blocked-vs-executing attribution stays within their measured wall
//! time while agreeing with the lease table's own conflict counter.
//!
//! The recorder's rings are process-global, so every test takes a
//! shared lock and resets the registry before measuring.

use std::sync::Mutex;

use cmcc::obs::hist::Histogram;
use cmcc::obs::trace::{self, ThreadTrace, TraceKind, TraceOp, TRACE_OP_COUNT, TRACE_RING_CAP};
use cmcc::obs::{self, Counter};
use cmcc::runtime::{CmArray, ExecOptions};
use cmcc::{PaperPattern, Session};

/// Serializes tests that touch the global recorder registry.
static TRACE_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    TRACE_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// One paired begin/end slice (mirrors the driver's distillation).
struct Slice {
    op: TraceOp,
    tenant: Option<u32>,
    dur_ns: u64,
    end_arg: u64,
}

/// Pairs begin/end events stack-wise per thread and operation.
fn pair_slices(threads: &[ThreadTrace]) -> Vec<Slice> {
    let mut slices = Vec::new();
    for t in threads {
        let mut stacks: Vec<Vec<u64>> = vec![Vec::new(); TRACE_OP_COUNT];
        for e in &t.events {
            match e.kind {
                TraceKind::Begin => stacks[e.op as usize].push(e.ts_ns),
                TraceKind::End => {
                    if let Some(start) = stacks[e.op as usize].pop() {
                        slices.push(Slice {
                            op: e.op,
                            tenant: e.tenant,
                            dur_ns: e.ts_ns.saturating_sub(start),
                            end_arg: e.arg,
                        });
                    }
                }
                _ => {}
            }
        }
    }
    slices
}

/// Runs the five-point cross `iters` times through a fresh session.
fn run_statement(session: &mut Session, iters: usize) {
    let c = session.compile(&PaperPattern::Cross5.fortran()).unwrap();
    let x = session.array(8, 8).unwrap();
    let r = session.array(8, 8).unwrap();
    x.fill_with(&mut session.machine_mut(), |row, col| {
        ((row * 3 + col) % 5) as f32
    });
    let named = c
        .spec()
        .coeffs
        .iter()
        .filter(|c| matches!(c, cmcc::core::recognize::CoeffSpec::Named(_)))
        .count();
    let coeffs: Vec<CmArray> = (0..named).map(|_| session.array(8, 8).unwrap()).collect();
    for (i, a) in coeffs.iter().enumerate() {
        a.fill(&mut session.machine_mut(), 0.25 * (i + 1) as f32);
    }
    let refs: Vec<&CmArray> = coeffs.iter().collect();
    let opts = ExecOptions::fast();
    for _ in 0..iters {
        session.run_with(&c, &r, &x, &refs, &opts).unwrap();
    }
}

/// `workers` tenant threads race `iters` executes each of the same
/// statement on clones of one session (the shared plan artifact makes
/// their leases overlap). Returns the recorder snapshot, the session's
/// lease stats, and each tenant's measured wall time.
fn race_tenants(workers: usize, iters: usize) -> (Vec<ThreadTrace>, cmcc::LeaseStats, Vec<u64>) {
    let root = Session::tiny().unwrap();
    let walls: Vec<u64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let mut session = root.clone();
                scope.spawn(move || {
                    trace::set_tenant(Some(w as u32));
                    trace::set_thread_label(&format!("race tenant {w}"));
                    let wall = std::time::Instant::now();
                    let scope = trace::scope(TraceOp::Statement, w as u64);
                    run_statement(&mut session, iters);
                    drop(scope);
                    wall.elapsed().as_nanos() as u64
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("tenant thread panicked"))
            .collect()
    });
    (trace::threads(), root.lease_stats(), walls)
}

/// Every end event closes a begin of the same operation on the same
/// thread, and each thread's timestamps never run backwards.
#[test]
fn spans_pair_and_timestamps_are_monotone() {
    let _g = lock();
    trace::reset_trace();
    trace::set_trace_enabled(true);

    let mut session = Session::tiny().unwrap();
    run_statement(&mut session, 3);

    let threads = trace::threads();
    let mut total_events = 0usize;
    let mut executes = 0usize;
    for t in &threads {
        total_events += t.events.len();
        let mut prev_ts = 0u64;
        let mut depth = vec![0i64; TRACE_OP_COUNT];
        for e in &t.events {
            assert!(
                e.ts_ns >= prev_ts,
                "thread `{}` timestamps run backwards",
                t.label
            );
            prev_ts = e.ts_ns;
            match e.kind {
                TraceKind::Begin => depth[e.op as usize] += 1,
                TraceKind::End => {
                    depth[e.op as usize] -= 1;
                    assert!(
                        depth[e.op as usize] >= 0,
                        "`{}` end without a begin on thread `{}`",
                        e.op.name(),
                        t.label
                    );
                    if e.op == TraceOp::Execute {
                        executes += 1;
                    }
                }
                _ => {}
            }
        }
        for (op, d) in TraceOp::ALL.iter().zip(&depth) {
            assert_eq!(
                *d,
                0,
                "unclosed `{}` span on thread `{}`",
                op.name(),
                t.label
            );
        }
    }
    assert!(total_events > 0, "the run recorded no events");
    assert_eq!(executes, 3, "each run must close exactly one execute span");
    trace::set_trace_enabled(false);
}

/// Overflowing a thread's ring counts every dropped event (both in the
/// ring's own counter and the `TraceDrops` obs counter) and leaves the
/// already-recorded prefix bit-exact.
#[test]
fn ring_overflow_counts_drops_and_preserves_prefix() {
    let _g = lock();
    obs::set_enabled(true);
    trace::reset_trace();
    trace::set_trace_enabled(true);
    trace::set_thread_label("overflow probe");
    let before = obs::snapshot();

    for i in 0..TRACE_RING_CAP as u64 + 7 {
        trace::record(TraceKind::Instant, TraceOp::Statement, i);
    }

    let threads = trace::threads();
    let probe = threads
        .iter()
        .find(|t| t.label == "overflow probe")
        .expect("the probe thread registered a ring");
    assert_eq!(
        probe.events.len(),
        TRACE_RING_CAP,
        "ring must fill, not wrap"
    );
    for (i, e) in probe.events.iter().enumerate() {
        assert_eq!(e.arg, i as u64, "event {i} corrupted by the overflow");
        assert_eq!(e.op, TraceOp::Statement);
    }
    assert_eq!(probe.drops, 7, "exactly the overflowing events are dropped");
    let report = obs::snapshot().delta(&before);
    assert_eq!(
        report.get(Counter::TraceDrops),
        7,
        "TraceDrops must count the same overflow"
    );
    trace::set_trace_enabled(false);
    obs::set_enabled(false);
}

/// Histogram percentiles equal the quantized rank statistic of the raw
/// sample — quantization is monotone, so bucketing commutes with
/// rank selection.
#[test]
fn histogram_percentiles_match_sorted_oracle() {
    let mut h = Histogram::new();
    let mut samples = Vec::new();
    // Xorshift over a wide dynamic range (ns to tens of seconds).
    let mut x = 0x2545_f491_4f6c_dd1du64;
    for i in 0..10_000u64 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let v = x % (1u64 << (10 + (i % 25)));
        samples.push(v);
        h.record(v);
    }
    samples.sort_unstable();
    for p in [0.0, 10.0, 50.0, 90.0, 95.0, 99.0, 99.9, 100.0] {
        let rank = ((p / 100.0 * samples.len() as f64).ceil() as usize)
            .max(1)
            .min(samples.len());
        let oracle = Histogram::quantize(samples[rank - 1]);
        assert_eq!(
            h.percentile(p),
            oracle,
            "p{p} diverges from the sorted oracle"
        );
    }
    assert_eq!(h.count(), samples.len() as u64);
    assert_eq!(
        h.max(),
        *samples.last().unwrap(),
        "max is exact, not quantized"
    );
}

/// Racing tenants on one shared artifact: each tenant's traced blocked
/// (lease time-to-grant) plus executing time fits within its measured
/// wall time, and the conflicted-wait count agrees with the lease
/// table's conflict counter when nothing was dropped.
#[test]
fn racing_tenants_split_blocked_and_executing_within_wall() {
    let _g = lock();
    trace::reset_trace();
    trace::set_trace_enabled(true);

    const WORKERS: usize = 4;
    let (threads, leases, walls) = race_tenants(WORKERS, 4);
    let slices = pair_slices(&threads);

    let mut blocked = [0u64; WORKERS];
    let mut executing = [0u64; WORKERS];
    let mut conflicted_waits = 0u64;
    for s in &slices {
        let w = s.tenant.map(|t| t as usize).filter(|&t| t < WORKERS);
        match s.op {
            TraceOp::LeaseAcquire => {
                if s.end_arg == 1 {
                    conflicted_waits += 1;
                }
                if let Some(w) = w {
                    blocked[w] += s.dur_ns;
                }
            }
            TraceOp::Execute => {
                if let Some(w) = w {
                    executing[w] += s.dur_ns;
                }
            }
            _ => {}
        }
    }
    for w in 0..WORKERS {
        assert!(executing[w] > 0, "tenant {w} traced no executes");
        assert!(
            blocked[w] + executing[w] <= walls[w],
            "tenant {w}: blocked {} + executing {} exceeds wall {}",
            blocked[w],
            executing[w],
            walls[w]
        );
    }
    if trace::total_drops() == 0 {
        assert_eq!(
            conflicted_waits, leases.conflicts,
            "traced conflicted waits must agree with the lease table"
        );
    }
    trace::set_trace_enabled(false);
}

/// Per-tenant statement-latency percentiles (what serve-v3 reports)
/// equal the quantized sorted oracle of that tenant's slice durations.
#[test]
fn per_tenant_percentiles_match_sorted_oracle() {
    let _g = lock();
    trace::reset_trace();
    trace::set_trace_enabled(true);

    const WORKERS: usize = 3;
    let (threads, _leases, _walls) = race_tenants(WORKERS, 5);
    let slices = pair_slices(&threads);

    for w in 0..WORKERS as u32 {
        let mut durs: Vec<u64> = slices
            .iter()
            .filter(|s| s.op == TraceOp::Execute && s.tenant == Some(w))
            .map(|s| s.dur_ns)
            .collect();
        assert!(!durs.is_empty(), "tenant {w} traced no executes");
        let mut h = Histogram::new();
        for &d in &durs {
            h.record(d);
        }
        durs.sort_unstable();
        for p in [50.0, 95.0, 99.0] {
            let rank = ((p / 100.0 * durs.len() as f64).ceil() as usize)
                .max(1)
                .min(durs.len());
            assert_eq!(
                h.percentile(p),
                Histogram::quantize(durs[rank - 1]),
                "tenant {w} p{p} diverges from its sorted oracle"
            );
        }
        assert_eq!(h.max(), *durs.last().unwrap());
    }
    trace::set_trace_enabled(false);
}
