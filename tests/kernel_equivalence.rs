//! Differential suite for the plan-time kernel tier: the monomorphized
//! burst kernels selected at plan build must be *indistinguishable* from
//! the per-part lockstep interpreter they replace — bit-identical result
//! arrays and exactly equal [`Measurement`]s — across every paper
//! pattern, edge and remainder subgrid shapes, every width class
//! (16-wide, 8-wide, dynamic span), rebind ping-pong, and arbitrary
//! random stencils.
//!
//! The scalar fast run is the oracle; the kernel-tier toggle
//! ([`ExecutionPlan::set_kernel_tier`]) isolates exactly one variable —
//! compiled bursts versus interpreted parts over the *same* resolved
//! schedule — so any divergence is a kernel bug, not a scheduling
//! difference. The telemetry tests additionally pin *which* path ran:
//! paper patterns must execute fully kernelized (`interpreted_steps`
//! stays zero), and disabling the tier must move every step to the
//! interpreter side of the split.

use std::sync::Mutex;

use cmcc::cm2::{Machine, MachineConfig};
use cmcc::core::recognize::CoeffSpec;
use cmcc::core::stencil::{Boundary, Stencil, Tap};
use cmcc::core::{CompileError, Compiler};
use cmcc::obs::{self, Counter};
use cmcc::runtime::{
    CmArray, ExecOptions, ExecutionPlan, PlanLifetime, RuntimeError, StencilBinding,
};
use cmcc::{ExecEngine, Measurement, PaperPattern};
use cmcc_testkit::{property, Rng};

/// Serializes tests that flip or read the process-global telemetry.
static OBS_LOCK: Mutex<()> = Mutex::new(());

fn scalar_fast() -> ExecOptions {
    ExecOptions::fast()
        .with_engine(ExecEngine::Scalar)
        .with_threads(1)
}

fn lockstep_fast() -> ExecOptions {
    ExecOptions::fast()
        .with_engine(ExecEngine::Lockstep)
        .with_threads(1)
}

/// Builds machine + deterministically filled arrays for `pattern` at
/// global `rows × cols` on `cfg`, builds a plan under `opts`, pins the
/// kernel tier to `kernel_tier`, and runs one convolution.
fn run_plan_case(
    pattern: PaperPattern,
    rows: usize,
    cols: usize,
    cfg: &MachineConfig,
    opts: &ExecOptions,
    kernel_tier: bool,
) -> (Measurement, Vec<u32>) {
    let compiler = Compiler::new(cfg.clone());
    let compiled = compiler
        .compile_assignment(&pattern.fortran())
        .expect("paper patterns compile");
    let mut machine = Machine::new(cfg.clone()).expect("config is valid");
    let x = CmArray::new(&mut machine, rows, cols).unwrap();
    x.fill_with(&mut machine, |r, c| {
        ((r * 31 + c * 7) % 41) as f32 * 0.125 - 2.5
    });
    let named = compiled
        .spec()
        .coeffs
        .iter()
        .filter(|c| matches!(c, CoeffSpec::Named(_)))
        .count();
    let coeffs: Vec<CmArray> = (0..named)
        .map(|a| {
            let arr = CmArray::new(&mut machine, rows, cols).unwrap();
            arr.fill_with(&mut machine, move |r, c| {
                ((r * 5 + c * 11 + a * 3) % 13) as f32 * 0.0625 - 0.375
            });
            arr
        })
        .collect();
    let refs: Vec<&CmArray> = coeffs.iter().collect();
    let r = CmArray::new(&mut machine, rows, cols).unwrap();
    let binding = StencilBinding::new(&compiled, &r, &[&x], &refs).unwrap();
    let mut plan = ExecutionPlan::build(&mut machine, &binding, opts, PlanLifetime::Scoped)
        .expect("paper patterns plan");
    plan.set_kernel_tier(kernel_tier);
    let m = plan.execute(&mut machine).expect("paper patterns run");
    let bits = r.gather(&machine).iter().map(|v| v.to_bits()).collect();
    (m, bits)
}

/// Every paper pattern on a strip-width-mixing shape: kernel tier on,
/// kernel tier off, and the scalar oracle must be indistinguishable.
#[test]
fn kernel_tier_matches_interpreter_for_every_paper_pattern() {
    let cfg = MachineConfig::tiny_4();
    for pattern in PaperPattern::ALL {
        let (scalar_m, scalar_bits) = run_plan_case(pattern, 16, 24, &cfg, &scalar_fast(), true);
        let (kern_m, kern_bits) = run_plan_case(pattern, 16, 24, &cfg, &lockstep_fast(), true);
        let (int_m, int_bits) = run_plan_case(pattern, 16, 24, &cfg, &lockstep_fast(), false);
        assert_eq!(
            scalar_bits,
            kern_bits,
            "{}: kernel tier diverges from scalar",
            pattern.name()
        );
        assert_eq!(
            scalar_bits,
            int_bits,
            "{}: interpreted lockstep diverges from scalar",
            pattern.name()
        );
        assert_eq!(scalar_m, kern_m, "{}: kernel measurement", pattern.name());
        assert_eq!(scalar_m, int_m, "{}: interp measurement", pattern.name());
    }
}

/// Thread splits on the 16-node board change the lane-group node counts
/// and with them the width class each kernel dispatches to: 1 thread →
/// one 16-lane group (`w16`), 2 threads → 8-lane groups (`w8`), 3
/// threads → ≤6-lane groups (the dynamic span path). Every class must
/// stay bit-identical to the interpreter and the scalar oracle.
#[test]
fn kernel_tier_exact_across_width_classes() {
    let cfg = MachineConfig::test_board_16();
    for pattern in [PaperPattern::Square9, PaperPattern::Diamond13] {
        let (scalar_m, scalar_bits) = run_plan_case(pattern, 32, 48, &cfg, &scalar_fast(), true);
        for threads in [1, 2, 3] {
            let opts = lockstep_fast().with_threads(threads);
            let (kern_m, kern_bits) = run_plan_case(pattern, 32, 48, &cfg, &opts, true);
            let (int_m, int_bits) = run_plan_case(pattern, 32, 48, &cfg, &opts, false);
            assert_eq!(
                scalar_bits,
                kern_bits,
                "{} at {threads} threads: kernel tier diverges",
                pattern.name()
            );
            assert_eq!(
                kern_bits,
                int_bits,
                "{} at {threads} threads: tier toggle changes results",
                pattern.name()
            );
            assert_eq!(scalar_m, kern_m);
            assert_eq!(scalar_m, int_m);
        }
    }
}

/// Edge and remainder subgrid shapes: odd, prime, and
/// barely-wider-than-the-halo column counts change which strip widths
/// the shaver emits, and uneven half-strip splits exercise the chunk
/// remainders inside each burst. The tier toggle must be unobservable
/// on every shape.
#[test]
fn kernel_tier_edge_and_remainder_shapes_stay_exact() {
    let cfg = MachineConfig::tiny_4();
    // Per-node subgrids of 15, 7, 9, 8, and 5 columns on the 2×2 board.
    let shapes = [(16, 30), (8, 14), (12, 18), (8, 16), (10, 10)];
    for pattern in [PaperPattern::Cross5, PaperPattern::Square9] {
        for (rows, cols) in shapes {
            let (scalar_m, scalar_bits) =
                run_plan_case(pattern, rows, cols, &cfg, &scalar_fast(), true);
            let (kern_m, kern_bits) =
                run_plan_case(pattern, rows, cols, &cfg, &lockstep_fast(), true);
            let (int_m, int_bits) =
                run_plan_case(pattern, rows, cols, &cfg, &lockstep_fast(), false);
            assert_eq!(
                scalar_bits,
                kern_bits,
                "{} at {rows}x{cols}: kernel tier diverges",
                pattern.name()
            );
            assert_eq!(
                kern_bits,
                int_bits,
                "{} at {rows}x{cols}: tier toggle changes results",
                pattern.name()
            );
            assert_eq!(scalar_m, kern_m);
            assert_eq!(scalar_m, int_m);
        }
    }
}

/// Iterated ping-pong rebinding on a resident plan with the kernel tier
/// on: every step swaps result and source (re-priming the mirror while
/// the cached coefficient streams survive), and the whole sequence must
/// stay bit-identical to scalar and to the tier-off interpreter.
#[test]
fn kernel_tier_ping_pong_rebind_stays_exact() {
    let cfg = MachineConfig::tiny_4();
    let compiler = Compiler::new(cfg.clone());
    let compiled = compiler
        .compile_assignment(&PaperPattern::Square9.fortran())
        .expect("paper patterns compile");
    let named = compiled
        .spec()
        .coeffs
        .iter()
        .filter(|c| matches!(c, CoeffSpec::Named(_)))
        .count();
    let (rows, cols) = (12, 16);
    let steps = 6;

    let run = |opts: &ExecOptions, kernel_tier: bool| -> Vec<u32> {
        let mut machine = Machine::new(cfg.clone()).expect("tiny_4 is valid");
        let a = CmArray::new(&mut machine, rows, cols).unwrap();
        let b = CmArray::new(&mut machine, rows, cols).unwrap();
        a.fill_with(&mut machine, |r, c| ((r * 19 + c * 5) % 23) as f32 * 0.125);
        b.fill(&mut machine, 0.0);
        let coeffs: Vec<CmArray> = (0..named)
            .map(|s| {
                let c = CmArray::new(&mut machine, rows, cols).unwrap();
                c.fill_with(&mut machine, move |r, col| {
                    ((r * 3 + col * 7 + s * 11) % 9) as f32 * 0.0625
                });
                c
            })
            .collect();
        let refs: Vec<&CmArray> = coeffs.iter().collect();
        let binding = StencilBinding::new(&compiled, &b, &[&a], &refs).unwrap();
        let mut plan =
            ExecutionPlan::build(&mut machine, &binding, opts, PlanLifetime::Scoped).unwrap();
        plan.set_kernel_tier(kernel_tier);
        for step in 0..steps {
            plan.execute(&mut machine).unwrap();
            let (from, to) = if step % 2 == 0 { (&b, &a) } else { (&a, &b) };
            plan.rebind(to, &[from], &refs).unwrap();
        }
        let last = if steps % 2 == 0 { &a } else { &b };
        last.gather(&machine).iter().map(|v| v.to_bits()).collect()
    };

    let scalar = run(&scalar_fast(), true);
    let kernel = run(&lockstep_fast(), true);
    let interp = run(&lockstep_fast(), false);
    assert_eq!(scalar, kernel, "kernelized ping-pong diverges from scalar");
    assert_eq!(scalar, interp, "interpreted ping-pong diverges from scalar");
}

/// Every paper pattern runs *fully* kernelized on the lockstep engine:
/// the strip classifier accepts every scheduled kernel, so a
/// steady-state execute records only `kernelized_steps` — and flipping
/// the tier off moves exactly the same step count to the interpreter
/// side of the split.
#[test]
fn paper_patterns_run_fully_kernelized() {
    let _g = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let was_on = obs::enabled();
    obs::set_enabled(true);

    let cfg = MachineConfig::tiny_4();
    for pattern in PaperPattern::ALL {
        let compiler = Compiler::new(cfg.clone());
        let compiled = compiler
            .compile_assignment(&pattern.fortran())
            .expect("paper patterns compile");
        let mut machine = Machine::new(cfg.clone()).expect("tiny_4 is valid");
        let x = CmArray::new(&mut machine, 16, 24).unwrap();
        x.fill_with(&mut machine, |r, c| ((r * 13 + c) % 17) as f32 * 0.25);
        let named = compiled
            .spec()
            .coeffs
            .iter()
            .filter(|c| matches!(c, CoeffSpec::Named(_)))
            .count();
        let coeffs: Vec<CmArray> = (0..named)
            .map(|a| {
                let arr = CmArray::new(&mut machine, 16, 24).unwrap();
                arr.fill(&mut machine, 0.125 * (a + 1) as f32);
                arr
            })
            .collect();
        let refs: Vec<&CmArray> = coeffs.iter().collect();
        let r = CmArray::new(&mut machine, 16, 24).unwrap();
        let binding = StencilBinding::new(&compiled, &r, &[&x], &refs).unwrap();
        let mut plan = ExecutionPlan::build(
            &mut machine,
            &binding,
            &lockstep_fast(),
            PlanLifetime::Scoped,
        )
        .unwrap();
        assert!(plan.uses_lockstep(), "{}: lane-maps", pattern.name());

        let before = obs::snapshot();
        plan.execute(&mut machine).unwrap();
        let kern = obs::snapshot().delta(&before);
        let kernelized = kern.get(Counter::KernelizedSteps);
        assert!(
            kernelized > 0,
            "{}: no kernelized steps recorded",
            pattern.name()
        );
        assert_eq!(
            kern.get(Counter::InterpretedSteps),
            0,
            "{}: classifier rejected a paper-pattern strip",
            pattern.name()
        );
        assert_eq!(kern.get(Counter::LockstepSteps), kernelized);

        plan.set_kernel_tier(false);
        let before = obs::snapshot();
        plan.execute(&mut machine).unwrap();
        let interp = obs::snapshot().delta(&before);
        assert_eq!(
            interp.get(Counter::KernelizedSteps),
            0,
            "{}: tier off still kernelized",
            pattern.name()
        );
        assert_eq!(
            interp.get(Counter::InterpretedSteps),
            kernelized,
            "{}: tier toggle changed the step count",
            pattern.name()
        );
    }
    obs::set_enabled(was_on);
}

/// An arbitrary stencil in the compiler's domain: 1..=9 taps with
/// offsets up to ±2 (duplicates legal), array or unit coefficients,
/// optional bias, either boundary — wide enough to force seam-crossing
/// walks, dummy-padded bursts, and (for shapes the classifier cannot
/// prove safe) the interpreter fallback.
fn gen_stencil(rng: &mut Rng) -> (Stencil, usize) {
    let n_taps = rng.usize_in(1, 9);
    let mut taps = Vec::new();
    let mut n_coeffs = 0;
    for _ in 0..n_taps {
        let dr = rng.i32_in(-2, 2);
        let dc = rng.i32_in(-2, 2);
        if rng.bool() {
            taps.push(Tap::unit(dr, dc));
        } else {
            taps.push(Tap::new(dr, dc, n_coeffs));
            n_coeffs += 1;
        }
    }
    let bias_terms = if rng.bool() {
        n_coeffs += 1;
        vec![n_coeffs - 1]
    } else {
        Vec::new()
    };
    let boundary = if rng.bool() {
        Boundary::Circular
    } else {
        Boundary::ZeroFill
    };
    let stencil =
        Stencil::new(taps, bias_terms, boundary, n_coeffs).expect("nonempty by construction");
    (stencil, n_coeffs)
}

/// Randomized sweep: arbitrary stencils on random shapes and thread
/// counts, run three ways — scalar, kernel tier on, kernel tier off.
/// Whatever mix of kernels and fallbacks the classifier picks, results
/// and measurements must be indistinguishable.
#[test]
fn property_kernel_tier_is_indistinguishable() {
    property("kernel tier differential", 12, |rng: &mut Rng| {
        let (stencil, n_coeffs) = gen_stencil(rng);
        let source = cmcc::core::unparse::unparse_stencil(&stencil);
        let rows = 2 * rng.usize_in(5, 12);
        let cols = 2 * rng.usize_in(5, 12);
        let threads = rng.usize_in(1, 4);
        let seed = rng.u64_below(1000);
        let cfg = MachineConfig::tiny_4();
        let compiler = Compiler::new(cfg.clone());
        let compiled = match compiler.compile_assignment(&source) {
            Ok(c) => c,
            // Register exhaustion is a legal outcome for big footprints.
            Err(CompileError::NoFeasibleWidth { .. }) => return,
            Err(e) => panic!("unexpected compile error on `{source}`: {e}"),
        };
        let mix = |i: usize, s: u64| -> f32 {
            let h = (i as u64)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(s);
            ((h >> 32) as i32 % 1000) as f32 * 0.01
        };
        let run = |opts: &ExecOptions, kernel_tier: bool| -> Option<(Measurement, Vec<u32>)> {
            let mut machine = Machine::new(cfg.clone()).expect("tiny_4 is valid");
            let x = CmArray::new(&mut machine, rows, cols).unwrap();
            let data: Vec<f32> = (0..rows * cols).map(|i| mix(i, seed)).collect();
            x.scatter(&mut machine, &data);
            let coeffs: Vec<CmArray> = (0..n_coeffs)
                .map(|a| {
                    let arr = CmArray::new(&mut machine, rows, cols).unwrap();
                    let data: Vec<f32> = (0..rows * cols)
                        .map(|i| mix(i + a * 7919, seed ^ 0xABCD))
                        .collect();
                    arr.scatter(&mut machine, &data);
                    arr
                })
                .collect();
            let refs: Vec<&CmArray> = coeffs.iter().collect();
            let r = CmArray::new(&mut machine, rows, cols).unwrap();
            let binding = StencilBinding::new(&compiled, &r, &[&x], &refs).unwrap();
            let mut plan =
                match ExecutionPlan::build(&mut machine, &binding, opts, PlanLifetime::Scoped) {
                    Ok(p) => p,
                    // Halo deeper than the subgrid is a legal refusal.
                    Err(RuntimeError::SubgridTooSmall { .. }) => return None,
                    Err(e) => panic!("plan error on `{source}`: {e}"),
                };
            plan.set_kernel_tier(kernel_tier);
            let m = plan.execute(&mut machine).expect("plan executes");
            Some((m, r.gather(&machine).iter().map(|v| v.to_bits()).collect()))
        };
        let Some((scalar_m, scalar_bits)) = run(&scalar_fast(), true) else {
            return;
        };
        let lockstep = lockstep_fast().with_threads(threads);
        let (kern_m, kern_bits) = run(&lockstep, true).expect("same shape plans");
        let (int_m, int_bits) = run(&lockstep, false).expect("same shape plans");
        assert_eq!(
            scalar_bits, kern_bits,
            "`{source}` at {rows}x{cols}, {threads} threads: kernel tier diverges"
        );
        assert_eq!(
            kern_bits, int_bits,
            "`{source}` at {rows}x{cols}, {threads} threads: tier toggle changes results"
        );
        assert_eq!(scalar_m, kern_m, "`{source}`: kernel measurement diverges");
        assert_eq!(scalar_m, int_m, "`{source}`: interp measurement diverges");
    });
}

/// The per-step slices of a temporal schedule run through the kernel
/// tier exactly like a depth-1 schedule: tier on, tier off, and the
/// iterated scalar oracle must be indistinguishable at every depth.
#[test]
fn temporal_kernel_tier_matches_interpreter_and_scalar() {
    let cfg = MachineConfig::tiny_4();
    let (rows, cols, steps) = (16, 24, 4usize);
    let run = |pattern: PaperPattern, depth: usize, opts: &ExecOptions, tier: bool| -> Vec<u32> {
        let compiler = Compiler::new(cfg.clone());
        let compiled = compiler
            .compile_assignment(&pattern.fortran())
            .expect("paper patterns compile");
        let mut machine = Machine::new(cfg.clone()).expect("tiny_4 is valid");
        let a = CmArray::new(&mut machine, rows, cols).unwrap();
        let b = CmArray::new(&mut machine, rows, cols).unwrap();
        a.fill_with(&mut machine, |r, c| {
            ((r * 31 + c * 7) % 41) as f32 * 0.125 - 2.5
        });
        b.fill(&mut machine, 0.0);
        let named = compiled
            .spec()
            .coeffs
            .iter()
            .filter(|c| matches!(c, CoeffSpec::Named(_)))
            .count();
        let coeffs: Vec<CmArray> = (0..named)
            .map(|s| {
                let arr = CmArray::new(&mut machine, rows, cols).unwrap();
                arr.fill_with(&mut machine, move |r, c| {
                    ((r * 5 + c * 11 + s * 3) % 13) as f32 * 0.0625 - 0.375
                });
                arr
            })
            .collect();
        let refs: Vec<&CmArray> = coeffs.iter().collect();
        let opts = (*opts).with_temporal_depth(depth);
        let binding = StencilBinding::new(&compiled, &b, &[&a], &refs).unwrap();
        let mut plan =
            ExecutionPlan::build(&mut machine, &binding, &opts, PlanLifetime::Scoped).unwrap();
        plan.set_kernel_tier(tier);
        let executes = steps / depth;
        for e in 0..executes {
            plan.execute(&mut machine).unwrap();
            if e + 1 < executes {
                let (from, to) = if e % 2 == 0 { (&b, &a) } else { (&a, &b) };
                plan.rebind(to, &[from], &refs).unwrap();
            }
        }
        let last = if executes.is_multiple_of(2) { &a } else { &b };
        last.gather(&machine).iter().map(|v| v.to_bits()).collect()
    };
    for pattern in [PaperPattern::Square9, PaperPattern::Cross5] {
        let oracle = run(pattern, 1, &scalar_fast(), true);
        for depth in [2, 4] {
            let kern = run(pattern, depth, &lockstep_fast(), true);
            let interp = run(pattern, depth, &lockstep_fast(), false);
            assert_eq!(
                oracle,
                kern,
                "{} depth {depth}: kernelized temporal run diverges",
                pattern.name()
            );
            assert_eq!(
                oracle,
                interp,
                "{} depth {depth}: interpreted temporal run diverges",
                pattern.name()
            );
        }
    }
}

/// The point of temporal tiling, pinned by telemetry: a time loop at
/// depth k issues exactly k× fewer halo-exchange program runs than the
/// same loop one step at a time, every execute books k fused steps, and
/// a depth the plan cannot honor books one fallback.
#[test]
fn temporal_telemetry_counts_exchanges_fused_steps_and_fallbacks() {
    let _g = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let was_on = obs::enabled();
    obs::set_enabled(true);

    // All-literal five-point heat kernel: no coefficient halos, so the
    // exchange count is purely the source-halo traffic.
    let heat = "T_NEXT = 0.2 * EOSHIFT(T, DIM=1, SHIFT=-1) \
                + 0.2 * EOSHIFT(T, DIM=2, SHIFT=-1) + 0.2 * T \
                + 0.2 * EOSHIFT(T, DIM=2, SHIFT=+1) \
                + 0.2 * EOSHIFT(T, DIM=1, SHIFT=+1)";
    let cfg = MachineConfig::tiny_4();
    let compiler = Compiler::new(cfg.clone());
    let compiled = compiler
        .compile_assignment(heat)
        .expect("heat kernel compiles");
    let (rows, cols, steps) = (16, 24, 4usize);

    let exchanges_at_depth = |depth: usize| -> (u64, u64) {
        let mut machine = Machine::new(cfg.clone()).expect("tiny_4 is valid");
        let a = CmArray::new(&mut machine, rows, cols).unwrap();
        let b = CmArray::new(&mut machine, rows, cols).unwrap();
        a.fill_with(&mut machine, |r, c| ((r * 13 + c) % 17) as f32 * 0.25);
        b.fill(&mut machine, 0.0);
        let opts = lockstep_fast().with_temporal_depth(depth);
        let binding = StencilBinding::new(&compiled, &b, &[&a], &[]).unwrap();
        let mut plan =
            ExecutionPlan::build(&mut machine, &binding, &opts, PlanLifetime::Scoped).unwrap();
        assert_eq!(plan.temporal_depth(), depth, "depth should take effect");
        let before = obs::snapshot();
        for e in 0..steps / depth {
            plan.execute(&mut machine).unwrap();
            if e + 1 < steps / depth {
                let (from, to) = if e % 2 == 0 { (&b, &a) } else { (&a, &b) };
                plan.rebind(to, &[from], &[]).unwrap();
            }
        }
        let delta = obs::snapshot().delta(&before);
        (
            delta.get(Counter::HaloExchanges),
            delta.get(Counter::FusedSteps),
        )
    };

    let (shallow_exchanges, shallow_fused) = exchanges_at_depth(1);
    let (deep_exchanges, deep_fused) = exchanges_at_depth(steps);
    assert!(shallow_exchanges > 0, "exchanges must be counted at all");
    assert_eq!(
        shallow_exchanges,
        deep_exchanges * steps as u64,
        "depth {steps} must cut halo exchanges exactly {steps}x"
    );
    // Both loops advance the same number of physical time steps.
    assert_eq!(shallow_fused, steps as u64);
    assert_eq!(deep_fused, steps as u64);

    // A depth the shape cannot carry books exactly one fallback.
    let mut machine = Machine::new(cfg.clone()).expect("tiny_4 is valid");
    let a = CmArray::new(&mut machine, 8, 8).unwrap();
    a.fill(&mut machine, 1.0);
    let b = CmArray::new(&mut machine, 8, 8).unwrap();
    let binding = StencilBinding::new(&compiled, &b, &[&a], &[]).unwrap();
    let before = obs::snapshot();
    let plan = ExecutionPlan::build(
        &mut machine,
        &binding,
        &lockstep_fast().with_temporal_depth(16),
        PlanLifetime::Scoped,
    )
    .unwrap();
    let delta = obs::snapshot().delta(&before);
    obs::set_enabled(was_on);
    assert_eq!(plan.temporal_depth(), 1);
    assert_eq!(delta.get(Counter::TemporalFallbacks), 1);
}

/// A binding whose result aliases a coefficient array cannot lane-map,
/// so the kernel tier never sees it: the plan falls back to the scalar
/// engine and records no lockstep steps at all — the fallback is
/// *before* the kernelized / interpreted split, not a miscount inside
/// it.
#[test]
fn aliased_fallback_records_no_lockstep_steps() {
    let _g = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let was_on = obs::enabled();
    obs::set_enabled(true);

    let cfg = MachineConfig::tiny_4();
    let compiler = Compiler::new(cfg.clone());
    let compiled = compiler
        .compile_assignment("R = C * X")
        .expect("single-tap stencil compiles");
    let mut machine = Machine::new(cfg).expect("tiny_4 is valid");
    let x = CmArray::new(&mut machine, 8, 12).unwrap();
    x.fill_with(&mut machine, |r, c| (r * 3 + c) as f32 * 0.5 - 6.0);
    let c = CmArray::new(&mut machine, 8, 12).unwrap();
    c.fill(&mut machine, 3.0);

    // Result aliased to the coefficient array: the lane mirror cannot
    // represent one buffer in two roles.
    let binding = StencilBinding::new(&compiled, &c, &[&x], &[&c]).unwrap();
    let mut plan = ExecutionPlan::build(
        &mut machine,
        &binding,
        &lockstep_fast(),
        PlanLifetime::Scoped,
    )
    .unwrap();
    assert!(!plan.uses_lockstep(), "aliased binding must fall back");

    let before = obs::snapshot();
    plan.execute(&mut machine).expect("aliased plan runs");
    let delta = obs::snapshot().delta(&before);
    obs::set_enabled(was_on);

    assert_eq!(delta.get(Counter::KernelizedSteps), 0);
    assert_eq!(delta.get(Counter::InterpretedSteps), 0);
    assert_eq!(delta.get(Counter::LockstepSteps), 0);
}
