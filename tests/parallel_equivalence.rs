//! Differential suite for the parallel execution engine: for every
//! paper pattern, both exchange primitives, both strip disciplines, and
//! thread counts 1, 2, and 8, the threaded executor must be
//! *indistinguishable* from the serial one — bit-identical result
//! arrays and exactly equal [`Measurement`]s.
//!
//! The serial run (threads = 1) is the oracle; every other thread count
//! is diffed against it. Because the simulated CM-2 is SIMD, every node
//! runs the same schedule, so per-node execution order cannot affect
//! either the numerics (each node owns its memory) or the cycle
//! accounting (the reduction takes the per-step maximum over nodes,
//! which all agree).

use cmcc::cm2::{Machine, MachineConfig};
use cmcc::core::recognize::CoeffSpec;
use cmcc::core::Compiler;
use cmcc::runtime::{convolve, CmArray, ExchangePrimitive, ExecOptions};
use cmcc::{Measurement, PaperPattern};

const THREADS: [usize; 2] = [2, 8];

/// One full convolution under `opts`; returns the measurement and the
/// gathered result bits.
fn run_case(pattern: PaperPattern, opts: &ExecOptions) -> (Measurement, Vec<u32>) {
    let cfg = MachineConfig::tiny_4();
    let compiler = Compiler::new(cfg.clone());
    let compiled = compiler
        .compile_assignment(&pattern.fortran())
        .expect("paper patterns compile");
    let mut machine = Machine::new(cfg).expect("tiny_4 is valid");
    let (rows, cols) = (8usize, 12usize);
    let x = CmArray::new(&mut machine, rows, cols).unwrap();
    x.fill_with(&mut machine, |r, c| {
        ((r * 31 + c * 7) % 41) as f32 * 0.125 - 2.5
    });
    let named = compiled
        .spec()
        .coeffs
        .iter()
        .filter(|c| matches!(c, CoeffSpec::Named(_)))
        .count();
    let coeffs: Vec<CmArray> = (0..named)
        .map(|a| {
            let arr = CmArray::new(&mut machine, rows, cols).unwrap();
            arr.fill_with(&mut machine, move |r, c| {
                ((r * 5 + c * 11 + a * 3) % 13) as f32 * 0.0625 - 0.375
            });
            arr
        })
        .collect();
    let refs: Vec<&CmArray> = coeffs.iter().collect();
    let r = CmArray::new(&mut machine, rows, cols).unwrap();
    let m = convolve(&mut machine, &compiled, &r, &x, &refs, opts)
        .expect("paper patterns run on tiny_4");
    let bits = r.gather(&machine).iter().map(|v| v.to_bits()).collect();
    (m, bits)
}

/// The exhaustive differential sweep: pattern × primitive × strip
/// discipline, serial vs each threaded configuration.
#[test]
fn threaded_execution_is_indistinguishable_from_serial() {
    for pattern in PaperPattern::ALL {
        for primitive in [ExchangePrimitive::News, ExchangePrimitive::OldPerDirection] {
            for half_strips in [true, false] {
                let base = ExecOptions {
                    primitive,
                    half_strips,
                    ..ExecOptions::serial()
                };
                let (serial_m, serial_bits) = run_case(pattern, &base);
                for threads in THREADS {
                    let opts = base.with_threads(threads);
                    let (m, bits) = run_case(pattern, &opts);
                    assert_eq!(
                        serial_bits,
                        bits,
                        "{} / {primitive:?} / half_strips={half_strips}: \
                         results diverge at {threads} threads",
                        pattern.name()
                    );
                    assert_eq!(
                        serial_m,
                        m,
                        "{} / {primitive:?} / half_strips={half_strips}: \
                         measurement diverges at {threads} threads",
                        pattern.name()
                    );
                }
            }
        }
    }
}

/// Thread counts beyond the node count clamp to the node count — the
/// degenerate oversubscribed case stays exact.
#[test]
fn oversubscribed_thread_counts_are_exact() {
    let base = ExecOptions::serial();
    let (serial_m, serial_bits) = run_case(PaperPattern::Square9, &base);
    for threads in [3, 4, 64, usize::MAX] {
        let (m, bits) = run_case(PaperPattern::Square9, &base.with_threads(threads));
        assert_eq!(serial_bits, bits, "results diverge at {threads} threads");
        assert_eq!(serial_m, m, "measurement diverges at {threads} threads");
    }
}

/// `threads = 0` is treated as 1 (clamped), not a panic.
#[test]
fn zero_threads_clamps_to_serial() {
    let (serial_m, serial_bits) = run_case(PaperPattern::Cross5, &ExecOptions::serial());
    let (m, bits) = run_case(PaperPattern::Cross5, &ExecOptions::serial().with_threads(0));
    assert_eq!(serial_bits, bits);
    assert_eq!(serial_m, m);
}

/// Repeated runs with the same options produce identical measurements:
/// nothing about scheduling leaks into the accounting.
#[test]
fn repeated_threaded_runs_are_deterministic() {
    let opts = ExecOptions::default().with_threads(8);
    let (m1, b1) = run_case(PaperPattern::Diamond13, &opts);
    let (m2, b2) = run_case(PaperPattern::Diamond13, &opts);
    assert_eq!(m1, m2);
    assert_eq!(b1, b2);
}
