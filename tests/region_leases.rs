//! Region-leased machine access: admission-control guarantees under
//! racing tenants. Disjoint lane-resident plans execute concurrently
//! through the region path with zero exclusive fallbacks (the conflict
//! predicate predicts exactly which executes must serialize);
//! overlapping plans take the counted exclusive fallback and still
//! produce bit-identical results; a failed execute releases its lease;
//! and a tenant releasing a plan while a neighbor holds a lease on an
//! adjacent field range neither deadlocks nor corrupts the neighbor's
//! results. After every drain the lease table must be empty.

use cmcc::cm2::exec::{ExecEngine, ExecMode};
use cmcc::core::recognize::CoeffSpec;
use cmcc::runtime::{CmArray, ExecOptions};
use cmcc::{CompiledStencil, PaperPattern, Session};
use std::sync::Barrier;

const SUBGRID: (usize, usize) = (8, 8);
const ITERS: usize = 6;

/// The tenants' plans race on distinct paper patterns — distinct plan
/// keys, so each tenant leases its own disjoint field ranges.
const PATTERNS: [PaperPattern; 4] = [
    PaperPattern::Square9,
    PaperPattern::Cross5,
    PaperPattern::Star9,
    PaperPattern::Diamond13,
];

/// Lane-resident lockstep execution: the only region-eligible mode.
fn exec_opts() -> ExecOptions {
    let mut opts = ExecOptions::default()
        .with_threads(1)
        .with_engine(ExecEngine::Lockstep);
    opts.mode = ExecMode::Fast;
    opts
}

fn cores() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

fn bits_equal(a: &[f32], b: &[f32]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

/// One tenant: a session handle plus its private plan and arrays.
struct Tenant {
    session: Session,
    compiled: CompiledStencil,
    x: CmArray,
    r: CmArray,
    coeffs: Vec<CmArray>,
}

impl Tenant {
    fn run(&mut self) {
        let coeffs: Vec<&CmArray> = self.coeffs.iter().collect();
        self.session
            .run_with_multi(&self.compiled, &self.r, &[&self.x], &coeffs, &exec_opts())
            .expect("tenant execute succeeds");
    }

    fn result(&self) -> Vec<f32> {
        self.r.gather(&self.session.machine())
    }
}

/// Builds one tenant per pattern on clones of `root`: same machine,
/// same plan cache, fully disjoint arrays (the field allocator never
/// overlaps live fields). Inputs are deterministic so an oracle built
/// from a second root sees identical data.
fn make_tenants(root: &Session) -> Vec<Tenant> {
    let rows = SUBGRID.0 * root.machine().grid().rows();
    let cols = SUBGRID.1 * root.machine().grid().cols();
    PATTERNS
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let mut session = root.clone();
            let compiled = session.compile(&p.fortran()).expect("pattern compiles");
            let x = session.array(rows, cols).expect("source fits");
            x.fill_with(&mut session.machine_mut(), |r, c| {
                ((r * 13 + c * 7 + i * 29) % 31) as f32 * 0.25 - 3.5
            });
            let named = compiled
                .spec()
                .coeffs
                .iter()
                .filter(|c| matches!(c, CoeffSpec::Named(_)))
                .count();
            let coeffs: Vec<CmArray> = (0..named)
                .map(|k| {
                    let a = session.array(rows, cols).expect("coeff fits");
                    a.fill_with(&mut session.machine_mut(), |r, c| {
                        ((r * 5 + c * 11 + k * 17) % 19) as f32 * 0.125 - 1.0
                    });
                    a
                })
                .collect();
            let r = session.array(rows, cols).expect("result fits");
            Tenant {
                session,
                compiled,
                x,
                r,
                coeffs,
            }
        })
        .collect()
}

/// The stress test from the issue: racing tenants on disjoint plans
/// must be bit-identical to a sequential oracle, take the region path
/// on every execute (zero conflicts — the overlap predicate predicted
/// no fallback, and none may be taken), and drain the lease table.
#[test]
fn racing_disjoint_tenants_use_region_path_and_match_oracle() {
    cmcc::obs::set_enabled(true);

    // Sequential oracle: its own machine, same deterministic inputs.
    let oracle_root = Session::test_board().unwrap();
    let mut oracle = make_tenants(&oracle_root);
    for t in oracle.iter_mut() {
        for _ in 0..=ITERS {
            t.run();
        }
    }
    let want: Vec<Vec<f32>> = oracle.iter().map(Tenant::result).collect();

    let root = Session::test_board().unwrap();
    let mut tenants = make_tenants(&root);
    // Warmup builds every plan (and takes its first region lease).
    for t in tenants.iter_mut() {
        t.run();
    }
    assert!(
        tenants.iter().all(|t| t
            .session
            .last_plan()
            .is_some_and(|p| p.uses_lane_resident())),
        "tenancy must run lane-resident to be region-eligible"
    );

    let barrier = Barrier::new(tenants.len());
    std::thread::scope(|scope| {
        for t in tenants.iter_mut() {
            let barrier = &barrier;
            scope.spawn(move || {
                barrier.wait();
                for _ in 0..ITERS {
                    t.run();
                }
            });
        }
    });

    let got: Vec<Vec<f32>> = tenants.iter().map(Tenant::result).collect();
    for (g, w) in got.iter().zip(&want) {
        assert!(
            bits_equal(g, w),
            "racing tenant diverges from the sequential oracle"
        );
    }

    let stats = root.lease_stats();
    assert_eq!(
        stats.conflicts, 0,
        "disjoint plans must never take the exclusive fallback"
    );
    assert_eq!(
        stats.region_grants,
        (PATTERNS.len() * (ITERS + 1)) as u64,
        "every lane-resident execute must take the region path"
    );
    assert_eq!(stats.live, 0, "leases leaked after the pool drained");
    assert_eq!(stats.queued, 0, "waiters leaked after the pool drained");
    if cores() >= 2 {
        assert!(
            stats.peak_concurrent > 1,
            "no two disjoint executes ever overlapped on a {}-core host",
            cores()
        );
    } else if stats.peak_concurrent <= 1 {
        eprintln!("note: peak-concurrency assertion skipped (1 host core)");
    }
}

/// Overlapping executes — two handles racing the same plan into the
/// same result array — must fall back to the exclusive write path
/// *counted*, never silently, and the result stays the same pure
/// function of the input regardless of interleaving. Sequential
/// overlapping executes never overlap in time, so they must count
/// zero conflicts: the fallback is taken exactly when predicted.
#[test]
fn overlapping_executes_take_the_counted_exclusive_fallback() {
    cmcc::obs::set_enabled(true);
    let root = Session::test_board().unwrap();
    let mut tenants = make_tenants(&root);
    let mut a = tenants.remove(0);
    a.run();
    let want = a.result();

    // A second handle bound to the *same* plan and result array: its
    // lease overlaps a's writable result range.
    let mut b = Tenant {
        session: a.session.clone(),
        compiled: a.compiled.clone(),
        x: a.x,
        r: a.r,
        coeffs: a.coeffs.clone(),
    };
    b.run();
    assert_eq!(
        root.lease_stats().conflicts,
        0,
        "sequential executes never hold overlapping leases at once"
    );

    // Overlap in time is scheduling-dependent: race in rounds until a
    // conflict is counted (first round on every host we have seen).
    let before = root.lease_stats().conflicts;
    let mut rounds = 0;
    while root.lease_stats().conflicts == before && rounds < 50 {
        rounds += 1;
        std::thread::scope(|scope| {
            scope.spawn(|| {
                for _ in 0..8 {
                    a.run();
                }
            });
            scope.spawn(|| {
                for _ in 0..8 {
                    b.run();
                }
            });
        });
    }
    let conflicts = root.lease_stats().conflicts - before;

    let got = a.result();
    assert!(
        bits_equal(&got, &want),
        "racing overlapped executes corrupted the result"
    );
    let stats = root.lease_stats();
    assert_eq!(stats.live, 0, "leases leaked after the race drained");
    assert_eq!(stats.queued, 0);
    if cores() >= 2 {
        assert!(
            conflicts > 0,
            "overlapping executes never counted an exclusive fallback in {rounds} rounds"
        );
    } else if conflicts == 0 {
        eprintln!("note: conflict assertion skipped (1 host core, no overlap observed)");
    }
}

/// A failed execute must release its lease. With caching disabled the
/// whole build + execute runs under one whole-machine lease, so a plan
/// build that dies on node-memory exhaustion exercises the error path
/// while the lease is held.
#[test]
fn failed_execute_releases_its_lease() {
    let mut s = Session::tiny().unwrap();
    s.set_plan_cache_capacity(0);
    // Temporal fusion allocates array-sized scratch fields at plan
    // build, so exhausting memory with array-shaped fillers guarantees
    // the build fails once allocation does.
    let opts = ExecOptions::default()
        .with_threads(1)
        .with_temporal_depth(3);
    let c = s.compile("R = 0.5 * X + 0.5 * CSHIFT(X, 2, 1)").unwrap();
    let x = s.array(8, 12).unwrap();
    let r = s.array(8, 12).unwrap();
    x.fill(&mut s.machine_mut(), 1.0);
    s.run_with_multi(&c, &r, &[&x], &[], &opts)
        .expect("runs while memory is plentiful");
    assert_eq!(s.lease_stats().live, 0);

    let mut fillers = Vec::new();
    while let Ok(a) = s.array(8, 12) {
        fillers.push(a);
    }
    let failed = s.run_with_multi(&c, &r, &[&x], &[], &opts);
    assert!(
        failed.is_err(),
        "plan build must fail with node memory exhausted"
    );
    let stats = s.lease_stats();
    assert_eq!(stats.live, 0, "failed execute leaked its lease");
    assert_eq!(stats.queued, 0);
    // The table is not wedged: the retry acquires immediately (and
    // fails the same way, not by blocking behind a ghost lease).
    assert!(s.run_with_multi(&c, &r, &[&x], &[], &opts).is_err());
    assert_eq!(s.lease_stats().live, 0);
}

/// One tenant releases its plan (cache clear retires the artifact and
/// frees its fields) while a neighbor executes on adjacent ranges the
/// whole time: no deadlock, the neighbor's results stay bit-exact, and
/// the lease table drains.
#[test]
fn plan_release_under_a_live_adjacent_lease_stays_exact() {
    cmcc::obs::set_enabled(true);
    const A_STENCIL: &str = "R = 0.5 * X + 0.5 * CSHIFT(X, 2, 1)";
    const B_STENCIL: &str = "R = 0.25 * CSHIFT(X, 1, -1) + 0.5 * X + 0.25 * CSHIFT(X, 1, +1)";
    let opts = exec_opts();
    let fill_a = |r: usize, c: usize| (r * 3 + c) as f32 * 0.5 - 4.0;

    // Oracle for tenant A on a private machine.
    let mut oracle = Session::tiny().unwrap();
    let co = oracle.compile(A_STENCIL).unwrap();
    let xo = oracle.array(8, 12).unwrap();
    let ro = oracle.array(8, 12).unwrap();
    xo.fill_with(&mut oracle.machine_mut(), fill_a);
    oracle.run_with_multi(&co, &ro, &[&xo], &[], &opts).unwrap();
    let want = ro.gather(&oracle.machine());

    let root = Session::tiny().unwrap();
    let mut a = root.clone();
    let ca = a.compile(A_STENCIL).unwrap();
    let xa = a.array(8, 12).unwrap();
    let ra = a.array(8, 12).unwrap();
    xa.fill_with(&mut a.machine_mut(), fill_a);
    // B's arrays and plan fields allocate right after A's: adjacent
    // node-memory ranges, never overlapping ones.
    let mut b = root.clone();
    let cb = b.compile(B_STENCIL).unwrap();
    let xb = b.array(8, 12).unwrap();
    let rb = b.array(8, 12).unwrap();
    xb.fill_with(&mut b.machine_mut(), |r, c| (r + c * 2) as f32 * 0.25);

    a.run_with_multi(&ca, &ra, &[&xa], &[], &opts).unwrap();
    b.run_with_multi(&cb, &rb, &[&xb], &[], &opts).unwrap();

    std::thread::scope(|scope| {
        scope.spawn(|| {
            for _ in 0..16 {
                a.run_with_multi(&ca, &ra, &[&xa], &[], &opts).unwrap();
            }
        });
        // Meanwhile B releases every cached plan — including A's shared
        // artifact, forcing A to rebuild mid-race — and rebuilds its own.
        for _ in 0..4 {
            b.clear_plan_cache();
            b.run_with_multi(&cb, &rb, &[&xb], &[], &opts).unwrap();
        }
    });

    let got = ra.gather(&a.machine());
    assert!(
        bits_equal(&got, &want),
        "plan release under a live adjacent lease corrupted the neighbor"
    );
    let stats = root.lease_stats();
    assert_eq!(stats.live, 0, "leases leaked after the race drained");
    assert_eq!(stats.queued, 0);
}
