//! Tests of the multi-source extension: the paper's §9 / §7 future work
//! ("Future versions of the compiler should be able to handle all ten
//! terms as one stencil pattern"), realized as stencils whose taps shift
//! several arrays, fused into one kernel.

use cmcc::core::recognize::CoeffSpec;
use cmcc::prelude::*;
use cmcc::runtime::reference::{reference_convolve_multi, CoeffValue};

/// The fused Gordon Bell statement: the nine-point cross on `P` plus the
/// tenth term on `P2` — one statement, one kernel, one halo pass.
fn ten_term_statement() -> String {
    "R = C1 * CSHIFT (P, DIM=1, SHIFT=-2) \
       + C2 * CSHIFT (P, DIM=1, SHIFT=-1) \
       + C3 * CSHIFT (P, DIM=2, SHIFT=-2) \
       + C4 * CSHIFT (P, DIM=2, SHIFT=-1) \
       + C5 * P \
       + C6 * CSHIFT (P, DIM=2, SHIFT=+1) \
       + C7 * CSHIFT (P, DIM=2, SHIFT=+2) \
       + C8 * CSHIFT (P, DIM=1, SHIFT=+1) \
       + C9 * CSHIFT (P, DIM=1, SHIFT=+2) \
       + C10 * CSHIFT (P2, DIM=1, SHIFT=0)"
        .to_owned()
}

#[test]
fn strict_recognizer_rejects_the_ten_term_form() {
    // The paper's published compiler requires one shifted variable; the
    // strict path keeps that contract.
    let session = Session::tiny().unwrap();
    let err = session.compile(&ten_term_statement()).unwrap_err();
    assert!(
        err.to_string().contains("same variable"),
        "unexpected error: {err}"
    );
}

#[test]
fn extended_recognizer_fuses_ten_terms() {
    let session = Session::tiny().unwrap();
    let compiled = session.compile_extended(&ten_term_statement()).unwrap();
    let spec = compiled.spec();
    assert_eq!(spec.sources, vec!["P", "P2"]);
    assert_eq!(compiled.stencil().taps().len(), 10);
    assert!(compiled.stencil().is_multi_source());
    // Ten terms: 10 multiplies + 9 adds.
    assert_eq!(compiled.stencil().useful_flops_per_point(), 19);
    // The extra source plane costs registers: the multistencil carries
    // P2's cells too, so width 8 needs more than the single-source star.
    assert!(!compiled.widths().is_empty());
}

#[test]
fn fused_execution_matches_reference_bit_for_bit() {
    let mut session = Session::tiny().unwrap();
    let compiled = session.compile_extended(&ten_term_statement()).unwrap();
    let (rows, cols) = (12usize, 16usize);

    let p = session.array(rows, cols).unwrap();
    let p2 = session.array(rows, cols).unwrap();
    p.fill_with(&mut session.machine_mut(), |r, c| {
        ((r * 31 + c * 7) % 17) as f32 * 0.3 - 2.0
    });
    p2.fill_with(&mut session.machine_mut(), |r, c| {
        ((r * 5 + c * 11) % 13) as f32 * 0.25 - 1.5
    });
    let coeffs: Vec<CmArray> = (0..10)
        .map(|i| {
            let a = session.array(rows, cols).unwrap();
            a.fill_with(&mut session.machine_mut(), move |r, c| {
                ((r + 2 * c + 3 * i) % 7) as f32 * 0.2 - 0.6
            });
            a
        })
        .collect();
    let r = session.array(rows, cols).unwrap();

    let coeff_refs: Vec<&CmArray> = coeffs.iter().collect();
    session
        .run_multi(&compiled, &r, &[&p, &p2], &coeff_refs)
        .unwrap();

    let p_host = p.gather(&session.machine());
    let p2_host = p2.gather(&session.machine());
    let coeff_host: Vec<Vec<f32>> = coeffs
        .iter()
        .map(|a| a.gather(&session.machine()))
        .collect();
    let values: Vec<CoeffValue<'_>> = coeff_host.iter().map(|h| CoeffValue::Array(h)).collect();
    let want = reference_convolve_multi(
        compiled.stencil(),
        rows,
        cols,
        &[&p_host, &p2_host],
        &values,
    );
    let got = r.gather(&session.machine());
    for (i, (g, w)) in got.iter().zip(&want).enumerate() {
        assert_eq!(
            g.to_bits(),
            w.to_bits(),
            "element ({}, {}): got {g}, want {w}",
            i / cols,
            i % cols
        );
    }
}

#[test]
fn three_sources_with_mixed_coefficients() {
    let mut session = Session::tiny().unwrap();
    let compiled = session
        .compile_extended(
            "OUT = 0.5 * CSHIFT(A, 1, -1) + B + 0.25 * CSHIFT(B, 2, +1) \
                 + K * CSHIFT(C, 1, +1) + BIAS",
        )
        .unwrap();
    let spec = compiled.spec();
    assert_eq!(spec.sources, vec!["A", "B", "C"]);
    // Named coefficients: K and BIAS.
    let named: Vec<_> = spec
        .coeffs
        .iter()
        .filter(|c| matches!(c, CoeffSpec::Named(_)))
        .collect();
    assert_eq!(named.len(), 2);

    let (rows, cols) = (8usize, 8usize);
    let arrays: Vec<CmArray> = (0..3)
        .map(|i| {
            let a = session.array(rows, cols).unwrap();
            a.fill_with(&mut session.machine_mut(), move |r, c| {
                (r * 8 + c + i * 100) as f32 * 0.01
            });
            a
        })
        .collect();
    let k = session.array(rows, cols).unwrap();
    k.fill(&mut session.machine_mut(), -0.75);
    let bias = session.array(rows, cols).unwrap();
    bias.fill(&mut session.machine_mut(), 10.0);
    let out = session.array(rows, cols).unwrap();

    let sources: Vec<&CmArray> = arrays.iter().collect();
    session
        .run_multi(&compiled, &out, &sources, &[&k, &bias])
        .unwrap();

    let hosts: Vec<Vec<f32>> = arrays
        .iter()
        .map(|a| a.gather(&session.machine()))
        .collect();
    let host_refs: Vec<&[f32]> = hosts.iter().map(Vec::as_slice).collect();
    let k_host = k.gather(&session.machine());
    let bias_host = bias.gather(&session.machine());
    // Coefficient list order: literals 0.5, 0.25 interleave with names
    // K, BIAS per first appearance.
    let values: Vec<CoeffValue<'_>> = spec
        .coeffs
        .iter()
        .map(|c| match c {
            CoeffSpec::Literal(v) => CoeffValue::Literal(*v),
            CoeffSpec::Named(n) if n.eq_ignore_ascii_case("K") => CoeffValue::Array(&k_host),
            CoeffSpec::Named(_) => CoeffValue::Array(&bias_host),
        })
        .collect();
    let want = reference_convolve_multi(compiled.stencil(), rows, cols, &host_refs, &values);
    let got = out.gather(&session.machine());
    for (g, w) in got.iter().zip(&want) {
        assert_eq!(g.to_bits(), w.to_bits());
    }
}

#[test]
fn wrong_source_count_is_reported() {
    let mut session = Session::tiny().unwrap();
    let compiled = session
        .compile_extended("R = CSHIFT(A, 2, 1) + CSHIFT(B, 1, 1)")
        .unwrap();
    let a = session.array(8, 8).unwrap();
    let r = session.array(8, 8).unwrap();
    let err = session.run_multi(&compiled, &r, &[&a], &[]).unwrap_err();
    assert!(
        err.to_string().contains("2 source arrays"),
        "unexpected: {err}"
    );
}

#[test]
fn single_source_calls_reject_multi_source_stencils() {
    let mut session = Session::tiny().unwrap();
    let compiled = session
        .compile_extended("R = CSHIFT(A, 2, 1) + CSHIFT(B, 1, 1)")
        .unwrap();
    let a = session.array(8, 8).unwrap();
    let r = session.array(8, 8).unwrap();
    // The single-source entry point passes one source; the runtime
    // demands two.
    let err = session.run(&compiled, &r, &a, &[]).unwrap_err();
    assert!(err.to_string().contains("source arrays"), "{err}");
}

#[test]
fn fused_kernel_beats_separate_passes_in_cycles() {
    // The point of the future-work fusion: one halo pass and one strip
    // sweep instead of a stencil call plus an elementwise pass.
    let mut session = Session::test_board().unwrap();
    let fused = session.compile_extended(&ten_term_statement()).unwrap();
    let star = session.compile(&PaperPattern::Star9.fortran()).unwrap();

    let (rows, cols) = (4 * 64, 4 * 64);
    let p = session.array(rows, cols).unwrap();
    let p2 = session.array(rows, cols).unwrap();
    let r = session.array(rows, cols).unwrap();
    let coeffs: Vec<CmArray> = (0..10)
        .map(|_| session.array(rows, cols).unwrap())
        .collect();
    let refs10: Vec<&CmArray> = coeffs.iter().collect();
    let refs9: Vec<&CmArray> = coeffs[..9].iter().collect();

    let fused_m = session.run_multi(&fused, &r, &[&p, &p2], &refs10).unwrap();
    let star_m = session.run(&star, &r, &p, &refs9).unwrap();
    let tenth =
        cmcc::baseline::elementwise_multiply_add(&mut session.machine_mut(), &r, &coeffs[9], &p2)
            .unwrap();
    let separate = star_m.combine(&tenth);

    assert!(
        fused_m.cycles.total() < separate.cycles.total(),
        "fused {} vs separate {}",
        fused_m.cycles.total(),
        separate.cycles.total()
    );
    // And the fused version still counts the same useful flops.
    assert_eq!(fused_m.useful_flops, separate.useful_flops);
}
