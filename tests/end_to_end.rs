//! Integration tests spanning every crate: Fortran text in, verified
//! distributed results out, through all three front ends and all
//! execution options.

use cmcc::core::recognize::CoeffSpec;
use cmcc::prelude::*;
use cmcc::runtime::reference::{reference_convolve, CoeffValue};
use cmcc::runtime::ExchangePrimitive;
use cmcc::ExecOptions as Opts;

/// Builds arrays for a spec, runs the compiled stencil, and checks every
/// element against the reference evaluator, bit for bit. Returns the
/// measurement.
fn run_and_verify(session: &mut Session, compiled: &CompiledStencil, opts: &Opts) -> Measurement {
    let (rows, cols) = (12usize, 16usize);
    let x = session.array(rows, cols).unwrap();
    x.fill_with(&mut session.machine_mut(), |r, c| {
        ((r * 29 + c * 13) % 19) as f32 * 0.21 - 1.7
    });
    let mut arrays = Vec::new();
    for (i, c) in compiled.spec().coeffs.iter().enumerate() {
        if matches!(c, CoeffSpec::Named(_)) {
            let a = session.array(rows, cols).unwrap();
            a.fill_with(&mut session.machine_mut(), move |r, c| {
                ((r * 5 + c * 3 + i * 7) % 9) as f32 * 0.4 - 1.1
            });
            arrays.push(a);
        }
    }
    let r = session.array(rows, cols).unwrap();
    let refs: Vec<&CmArray> = arrays.iter().collect();
    let measurement = session.run_with(compiled, &r, &x, &refs, opts).unwrap();

    let x_host = x.gather(&session.machine());
    let hosts: Vec<Vec<f32>> = arrays
        .iter()
        .map(|a| a.gather(&session.machine()))
        .collect();
    let mut it = hosts.iter();
    let values: Vec<CoeffValue<'_>> = compiled
        .spec()
        .coeffs
        .iter()
        .map(|c| match c {
            CoeffSpec::Named(_) => CoeffValue::Array(it.next().unwrap()),
            CoeffSpec::Literal(v) => CoeffValue::Literal(*v),
        })
        .collect();
    let want = reference_convolve(compiled.stencil(), rows, cols, &x_host, &values);
    let got = r.gather(&session.machine());
    for (i, (g, w)) in got.iter().zip(&want).enumerate() {
        assert_eq!(
            g.to_bits(),
            w.to_bits(),
            "element ({}, {}): got {g}, want {w}",
            i / cols,
            i % cols
        );
    }
    measurement
}

#[test]
fn fortran_assignment_end_to_end() {
    let mut session = Session::tiny().unwrap();
    let compiled = session.compile(&PaperPattern::Cross5.fortran()).unwrap();
    let m = run_and_verify(&mut session, &compiled, &Opts::default());
    assert!(m.mflops(session.config()) > 0.0);
}

#[test]
fn subroutine_front_end_end_to_end() {
    // The paper's second implementation: the statement isolated in a
    // subroutine of its own (§6).
    let src = "
SUBROUTINE CROSS (R, X, C1, C2, C3, C4, C5)
REAL, ARRAY( :, : ) :: R, X, C1, C2, C3, C4, C5
R = C1 * CSHIFT (X, 1, -1) &
  + C2 * CSHIFT (X, 2, -1) &
  + C3 * X &
  + C4 * CSHIFT (X, 2, +1) &
  + C5 * CSHIFT (X, 1, +1)
END
";
    let mut session = Session::tiny().unwrap();
    let compiled = session.compiler().compile_subroutine(src).unwrap();
    run_and_verify(&mut session, &compiled, &Opts::default());
}

#[test]
fn defstencil_front_end_end_to_end() {
    // The paper's first (Lisp) implementation front end.
    let src = "(defstencil cross (r x c1 c2 c3 c4 c5)
       (single-float single-float)
       (:= r (+ (* c1 (cshift x 1 -1))
                (* c2 (cshift x 2 -1))
                (* c3 x)
                (* c4 (cshift x 2 +1))
                (* c5 (cshift x 1 +1)))))";
    let mut session = Session::tiny().unwrap();
    let compiled = session.compiler().compile_defstencil(src).unwrap();
    run_and_verify(&mut session, &compiled, &Opts::default());
}

#[test]
fn three_front_ends_agree() {
    // The same stencil through all three front ends produces identical
    // results on identical inputs.
    let assignment = "R = C1 * CSHIFT(X, 1, -1) + C2 * X";
    let subroutine = "SUBROUTINE S (R, X, C1, C2)\nREAL, ARRAY(:,:) :: R, X, C1, C2\n\
                      R = C1 * CSHIFT(X, 1, -1) + C2 * X\nEND";
    let defstencil = "(defstencil s (r x c1 c2) (single-float single-float) \
          (:= r (+ (* c1 (cshift x 1 -1)) (* c2 x))))";
    let mut outputs = Vec::new();
    for (i, compiled) in [
        Session::tiny()
            .unwrap()
            .compiler()
            .compile_assignment(assignment)
            .unwrap(),
        Session::tiny()
            .unwrap()
            .compiler()
            .compile_subroutine(subroutine)
            .unwrap(),
        Session::tiny()
            .unwrap()
            .compiler()
            .compile_defstencil(defstencil)
            .unwrap(),
    ]
    .into_iter()
    .enumerate()
    {
        let mut session = Session::tiny().unwrap();
        let x = session.array(8, 8).unwrap();
        x.fill_with(&mut session.machine_mut(), |r, c| (r * 8 + c) as f32 * 0.3);
        let c1 = session.array(8, 8).unwrap();
        c1.fill(&mut session.machine_mut(), 0.7);
        let c2 = session.array(8, 8).unwrap();
        c2.fill(&mut session.machine_mut(), -0.4);
        let r = session.array(8, 8).unwrap();
        session.run(&compiled, &r, &x, &[&c1, &c2]).unwrap();
        outputs.push((i, r.gather(&session.machine())));
    }
    assert_eq!(outputs[0].1, outputs[1].1);
    assert_eq!(outputs[1].1, outputs[2].1);
}

#[test]
fn every_option_combination_is_functionally_identical() {
    let mut session = Session::tiny().unwrap();
    let compiled = session.compile(&PaperPattern::Square9.fortran()).unwrap();
    let mut baseline: Option<Vec<u32>> = None;
    for mode in [cmcc::cm2::ExecMode::Cycle, cmcc::cm2::ExecMode::Fast] {
        for half_strips in [true, false] {
            for primitive in [ExchangePrimitive::News, ExchangePrimitive::OldPerDirection] {
                for skip in [true, false] {
                    for threads in [1usize, 8] {
                        for engine in [cmcc::ExecEngine::Scalar, cmcc::ExecEngine::Lockstep] {
                            // Lane residency only changes where steady-state
                            // copies run; fold it into the sweep rather than
                            // doubling it — each (engine, threads) pair sees
                            // both settings across the outer axes.
                            let lane_resident = half_strips == skip;
                            let opts = Opts {
                                mode,
                                engine,
                                half_strips,
                                primitive,
                                skip_corners_when_possible: skip,
                                threads,
                                lane_resident,
                                temporal_depth: 1,
                            };
                            let (rows, cols) = (8usize, 8usize);
                            let x = session.array(rows, cols).unwrap();
                            x.fill_with(&mut session.machine_mut(), |r, c| {
                                ((r * 3 + c) % 7) as f32
                            });
                            let coeffs: Vec<CmArray> = (0..9)
                                .map(|i| {
                                    let a = session.array(rows, cols).unwrap();
                                    a.fill(&mut session.machine_mut(), (i as f32 - 4.0) * 0.1);
                                    a
                                })
                                .collect();
                            let refs: Vec<&CmArray> = coeffs.iter().collect();
                            let r = session.array(rows, cols).unwrap();
                            session.run_with(&compiled, &r, &x, &refs, &opts).unwrap();
                            let bits: Vec<u32> = r
                                .gather(&session.machine())
                                .iter()
                                .map(|v| v.to_bits())
                                .collect();
                            match &baseline {
                                None => baseline = Some(bits),
                                Some(b) => {
                                    assert_eq!(b, &bits, "options {opts:?} changed the result")
                                }
                            }
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn iterated_application_stays_exact() {
    // Apply a contraction stencil 50 times; compare against 50 host-side
    // reference applications, bit for bit.
    let mut session = Session::tiny().unwrap();
    let compiled = session
        .compile("R = 0.2 * CSHIFT(X, 1, -1) + 0.55 * X + 0.2 * CSHIFT(X, 2, +1)")
        .unwrap();
    let (rows, cols) = (8usize, 12usize);
    let x = session.array(rows, cols).unwrap();
    let r = session.array(rows, cols).unwrap();
    x.fill_with(&mut session.machine_mut(), |i, j| {
        ((i * j) % 13) as f32 - 6.0
    });
    let mut host = x.gather(&session.machine());

    let mut cur = x;
    let mut next = r;
    for _ in 0..50 {
        session
            .run_with(&compiled, &next, &cur, &[], &Opts::fast())
            .unwrap();
        std::mem::swap(&mut cur, &mut next);
        host = reference_convolve(
            compiled.stencil(),
            rows,
            cols,
            &host,
            &[CoeffValue::Literal(0.2), CoeffValue::Literal(0.55)],
        );
    }
    let got = cur.gather(&session.machine());
    for (g, w) in got.iter().zip(&host) {
        assert_eq!(g.to_bits(), w.to_bits());
    }
}

#[test]
fn eoshift_and_cshift_differ_only_at_global_edges() {
    let mut session = Session::tiny().unwrap();
    let circular = session.compile("R = 1.0 * CSHIFT(X, 1, -1)").unwrap();
    let zerofill = session.compile("R = 1.0 * EOSHIFT(X, 1, -1)").unwrap();
    let (rows, cols) = (8usize, 8usize);
    let x = session.array(rows, cols).unwrap();
    x.fill_with(&mut session.machine_mut(), |r, c| {
        (r * cols + c) as f32 + 1.0
    });
    let rc = session.array(rows, cols).unwrap();
    let rz = session.array(rows, cols).unwrap();
    session.run(&circular, &rc, &x, &[]).unwrap();
    session.run(&zerofill, &rz, &x, &[]).unwrap();
    let hc = rc.gather(&session.machine());
    let hz = rz.gather(&session.machine());
    for r in 0..rows {
        for c in 0..cols {
            let i = r * cols + c;
            if r == 0 {
                assert_eq!(hz[i], 0.0, "zero-fill at the top edge");
                assert_eq!(hc[i], x.get(&session.machine(), rows - 1, c), "wraparound");
            } else {
                assert_eq!(hc[i].to_bits(), hz[i].to_bits(), "interior agrees");
            }
        }
    }
}

#[test]
fn awkward_shapes_run_correctly() {
    // Subgrids that are not multiples of 8 exercise the strip-shaving
    // rule (§5.3's "a subgrid one of whose axes is of length 21").
    let mut session = Session::tiny().unwrap();
    let compiled = session.compile(&PaperPattern::Cross5.fortran()).unwrap();
    for (rows, cols) in [(2usize, 42usize), (6, 26), (14, 10), (2, 2)] {
        let x = session.array(rows, cols).unwrap();
        x.fill_with(&mut session.machine_mut(), |r, c| ((r + 2 * c) % 5) as f32);
        let coeffs: Vec<CmArray> = (0..5)
            .map(|i| {
                let a = session.array(rows, cols).unwrap();
                a.fill(&mut session.machine_mut(), 0.2 * (i + 1) as f32);
                a
            })
            .collect();
        let refs: Vec<&CmArray> = coeffs.iter().collect();
        let r = session.array(rows, cols).unwrap();
        session.run(&compiled, &r, &x, &refs).unwrap();

        let x_host = x.gather(&session.machine());
        let hosts: Vec<Vec<f32>> = coeffs
            .iter()
            .map(|a| a.gather(&session.machine()))
            .collect();
        let values: Vec<CoeffValue<'_>> = hosts.iter().map(|h| CoeffValue::Array(h)).collect();
        let want = reference_convolve(compiled.stencil(), rows, cols, &x_host, &values);
        let got = r.gather(&session.machine());
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(g.to_bits(), w.to_bits(), "{rows}x{cols}");
        }
    }
}

#[test]
fn measurements_accumulate_consistently() {
    let mut session = Session::tiny().unwrap();
    let compiled = session.compile("R = 0.5 * X").unwrap();
    let x = session.array(8, 8).unwrap();
    let r = session.array(8, 8).unwrap();
    let one = session.run(&compiled, &r, &x, &[]).unwrap();
    let hundred = one.repeated(100);
    assert_eq!(hundred.useful_flops, one.useful_flops * 100);
    // Rates are invariant under repetition and scale linearly under
    // extrapolation.
    let rate1 = one.mflops(session.config());
    let rate100 = hundred.mflops(session.config());
    assert!((rate1 - rate100).abs() < 1e-9);
    let big = one.extrapolate(2048);
    assert!((big.mflops(session.config()) / rate1 - 512.0).abs() < 1e-6);
}
