//! Assertions of the paper's concrete, checkable claims — the repository
//! fails to build trust if any of these drifts.

use cmcc::core::columns::plan_rings;
use cmcc::core::multistencil::Multistencil;
use cmcc::prelude::*;
use cmcc_bench::{paper_reference, Workload, TABLE_SUBGRIDS};

/// §5.3: "It spans only 26 array positions; therefore only 26 data
/// elements need be loaded in order to compute eight results" (vs the
/// naive 40 loads).
#[test]
fn claim_cross_multistencil_saves_loads() {
    let cross = PaperPattern::Cross5.stencil();
    let ms = Multistencil::new(&cross, 8);
    assert_eq!(ms.cell_count(), 26);
    assert_eq!(8 * cross.taps().len(), 40);
}

/// §5.3: "A width-8 multistencil would require 48 registers, but the
/// width-4 multistencil requires only 28 registers and therefore works
/// just fine."
#[test]
fn claim_diamond_register_demands() {
    let diamond = PaperPattern::Diamond13.stencil();
    assert_eq!(Multistencil::new(&diamond, 8).natural_register_demand(), 48);
    assert_eq!(Multistencil::new(&diamond, 4).natural_register_demand(), 28);
    let compiled = Compiler::default()
        .compile_assignment(&PaperPattern::Diamond13.fortran())
        .unwrap();
    assert_eq!(compiled.widths(), vec![4, 2, 1]);
}

/// §5.4: "The compiler must unroll the loop of register access patterns
/// 15 times in this example, because 15 is the LCM of the ring buffers'
/// sizes 5, 3, and 1."
#[test]
fn claim_diamond_unrolls_fifteen() {
    let diamond = PaperPattern::Diamond13.stencil();
    let ms = Multistencil::new(&diamond, 4);
    let plan = plan_rings(&ms, 31, 512).unwrap();
    let sizes: std::collections::BTreeSet<usize> = plan.rings().iter().map(|r| r.size).collect();
    assert_eq!(sizes, [1usize, 3, 5].into_iter().collect());
    assert_eq!(plan.unroll(), 15);
}

/// §7: the 5-point cross "is counted as 9 floating-point operations
/// (5 multiplies and 4 adds), despite the fact that it is executed on the
/// CM-2 as 5 multiply-add steps."
#[test]
fn claim_flop_counting_rule() {
    assert_eq!(PaperPattern::Cross5.stencil().useful_flops_per_point(), 9);
    assert_eq!(PaperPattern::Cross5.stencil().chain_len(), 5);
}

/// §5.3: "a subgrid one of whose axes is of length 21 might be processed
/// as two strips of width 8, one strip of width 4, and one strip of
/// width 1" — and for the diamond, "five strips of width 4 and a strip
/// of width 1."
#[test]
fn claim_strip_shaving_examples() {
    let cross = Compiler::default()
        .compile_assignment(&PaperPattern::Cross5.fortran())
        .unwrap();
    let widths: Vec<usize> = cmcc::runtime::plan_strips(&cross, 21)
        .iter()
        .map(|s| s.width)
        .collect();
    assert_eq!(widths, vec![8, 8, 4, 1]);

    let diamond = Compiler::default()
        .compile_assignment(&PaperPattern::Diamond13.fortran())
        .unwrap();
    let widths: Vec<usize> = cmcc::runtime::plan_strips(&diamond, 21)
        .iter()
        .map(|s| s.width)
        .collect();
    assert_eq!(widths, vec![4, 4, 4, 4, 4, 1]);
}

/// §5.1: the asymmetric example's border widths: East 1, North 2,
/// South 0, West 3.
#[test]
fn claim_asymmetric_border_widths() {
    // The §5.1 figure's pattern (distinct from §2's asymmetric example):
    // East 1, North 2, South 0, West 3.
    let s = cmcc::core::Stencil::from_offsets(
        [(0, 1), (-2, 0), (-1, -1), (0, -3), (0, 0)],
        cmcc::core::Boundary::Circular,
    )
    .unwrap();
    let b = s.borders();
    assert_eq!(b.east, 1);
    assert_eq!(b.north, 2);
    assert_eq!(b.south, 0);
    assert_eq!(b.west, 3);
}

/// Headline: "a large number of stencil-based applications will run
/// faster than 10 gigaflops with this technology" — our simulated
/// machine reproduces >10 Gflops (extrapolated to 2,048 nodes) for the
/// dense 9-point and 13-point patterns at the largest table subgrid.
#[test]
fn claim_ten_gigaflops() {
    for pattern in [PaperPattern::Square9, PaperPattern::Diamond13] {
        let mut w = Workload::new(MachineConfig::test_board_16(), pattern, (256, 256));
        let m = w.measure().extrapolate(2048);
        let gflops = m.gflops(w.machine.config());
        assert!(gflops > 10.0, "{pattern} reached only {gflops:.2} Gflops");
    }
}

/// Table shape: within every pattern block, the sustained rate grows
/// with the subgrid area (communication and startup amortize — the §4.1
/// square-root argument).
#[test]
fn claim_rates_grow_with_subgrid_area() {
    for pattern in PaperPattern::TABLE {
        let mut last = 0.0;
        for subgrid in [(64usize, 64usize), (128, 128), (256, 256)] {
            let mut w = Workload::new(MachineConfig::test_board_16(), pattern, subgrid);
            let rate = w.measure().mflops(w.machine.config());
            assert!(
                rate > last,
                "{pattern} at {subgrid:?}: {rate:.1} did not improve on {last:.1}"
            );
            last = rate;
        }
    }
}

/// Table agreement: every simulated cell lands within 25% of the paper's
/// measured value — except the paper's own 64×128 rows, which are
/// internally inconsistent with their blocks (see EXPERIMENTS.md §T1's
/// shape assessment) and get a loose 45% sanity bound — and the
/// large-subgrid cells land within 10%.
#[test]
fn claim_table_rates_track_the_paper() {
    for pattern in PaperPattern::TABLE {
        for subgrid in TABLE_SUBGRIDS {
            let Some((paper_mflops, _)) = paper_reference(pattern, subgrid) else {
                continue;
            };
            let mut w = Workload::new(MachineConfig::test_board_16(), pattern, subgrid);
            let sim = w.measure().mflops(w.machine.config());
            let rel = (sim - paper_mflops).abs() / paper_mflops;
            let bound = if subgrid == (64, 128) { 0.45 } else { 0.25 };
            assert!(
                rel < bound,
                "{pattern} {subgrid:?}: simulated {sim:.1} vs paper {paper_mflops:.1} ({:.0}% off)",
                rel * 100.0
            );
            if subgrid == (256, 256) {
                assert!(
                    rel < 0.10,
                    "{pattern} 256x256: simulated {sim:.1} vs paper {paper_mflops:.1}"
                );
            }
        }
    }
}

/// History ladder: generic slicewise < 1989 hand library < compiler, at
/// roughly the paper's factors (4 : 5.6 : >10).
#[test]
fn claim_three_generation_ladder() {
    use cmcc::baseline::{handlib_convolve, slicewise_convolve};
    let cfg = MachineConfig::test_board_16();
    let spec = PaperPattern::Star9.spec().unwrap();
    let mut machine = Machine::new(cfg.clone()).unwrap();
    let (rows, cols) = (4 * 256, 4 * 256);
    let x = CmArray::new(&mut machine, rows, cols).unwrap();
    let r = CmArray::new(&mut machine, rows, cols).unwrap();
    let coeffs: Vec<CmArray> = (0..9)
        .map(|_| CmArray::new(&mut machine, rows, cols).unwrap())
        .collect();
    let refs: Vec<&CmArray> = coeffs.iter().collect();
    let slice = slicewise_convolve(&mut machine, &spec, &r, &x, &refs)
        .unwrap()
        .extrapolate(2048)
        .gflops(&cfg);
    let hand = handlib_convolve(&mut machine, &spec, &r, &x, &refs)
        .unwrap()
        .extrapolate(2048)
        .gflops(&cfg);
    let mut w = Workload::new(cfg.clone(), PaperPattern::Star9, (256, 256));
    let compiled = w.measure().extrapolate(2048).gflops(&cfg);
    assert!(
        slice < hand && hand < compiled,
        "{slice:.2} / {hand:.2} / {compiled:.2}"
    );
    assert!((3.0..5.5).contains(&slice), "slicewise {slice:.2}");
    assert!((4.5..7.0).contains(&hand), "hand library {hand:.2}");
    assert!(compiled > 9.0, "compiler {compiled:.2}");
}

/// §7 Gordon Bell rows: unrolling the main loop by three beats the
/// copy-based loop (paper: 14.88 vs 11.62 Gflops).
#[test]
fn claim_unrolled_seismic_loop_wins() {
    use cmcc::baseline::{elementwise_copy, elementwise_multiply_add};
    let mut w = Workload::new(
        MachineConfig::test_board_16(),
        PaperPattern::Star9,
        (64, 128),
    );
    let stencil_only = w.measure();
    let rows = w.x.rows();
    let cols = w.x.cols();
    let c10 = CmArray::new(&mut w.machine, rows, cols).unwrap();
    let p2 = CmArray::new(&mut w.machine, rows, cols).unwrap();
    let tenth = elementwise_multiply_add(&mut w.machine, &w.r, &c10, &p2).unwrap();
    let copies = elementwise_copy(&mut w.machine, &p2, &w.x)
        .unwrap()
        .combine(&elementwise_copy(&mut w.machine, &w.x, &w.r).unwrap());
    let v1 = stencil_only.combine(&tenth).combine(&copies);
    let v2 = stencil_only.combine(&tenth);
    let cfg = w.machine.config();
    assert!(v2.mflops(cfg) / v1.mflops(cfg) > 1.08);
}

/// §5.1: corner exchange skipped for the cross saves communication; the
/// saving is flat while total communication grows with the subgrid (so
/// it matters more for small arrays — the paper's observation).
#[test]
fn claim_corner_skip_matters_more_for_small_arrays() {
    let opts_skip = ExecOptions::default();
    let opts_noskip = ExecOptions {
        skip_corners_when_possible: false,
        ..ExecOptions::default()
    };
    let mut small = Workload::new(
        MachineConfig::test_board_16(),
        PaperPattern::Cross5,
        (64, 64),
    );
    let s_skip = small.run(&opts_skip).cycles.comm;
    let s_noskip = small.run(&opts_noskip).cycles.comm;
    let mut big = Workload::new(
        MachineConfig::test_board_16(),
        PaperPattern::Cross5,
        (256, 256),
    );
    let b_skip = big.run(&opts_skip).cycles.comm;
    let b_noskip = big.run(&opts_noskip).cycles.comm;
    let saved_small = (s_noskip - s_skip) as f64 / s_noskip as f64;
    let saved_big = (b_noskip - b_skip) as f64 / b_noskip as f64;
    assert!(saved_small > saved_big);
    assert!(s_noskip > s_skip);
}
