//! Concurrent multi-tenant sessions: N thread tenants sharing one
//! machine and one sharded plan cache. Pins the stencil-as-a-service
//! guarantees: a cold cache builds each distinct plan exactly once no
//! matter how many tenants race for it, every tenant's results are
//! bit-identical to a sequential single-session oracle, per-tenant
//! thread-local stats sum to the shared cache's totals, and the
//! steady state allocates no lane mirrors after warmup (mirrors recycle
//! through the session pool across tenant lifetimes).

use cmcc::cm2::exec::{ExecEngine, ExecMode};
use cmcc::obs::Counter;
use cmcc::runtime::{CmArray, ExecOptions};
use cmcc::Session;
use std::sync::Barrier;

const ROWS: usize = 8;
const COLS: usize = 12;

/// The distinct stencils tenants race on; each keys its own plan.
const STENCILS: [&str; 3] = [
    "R = 0.5 * X + 0.5 * CSHIFT(X, 2, 1)",
    "R = 0.25 * CSHIFT(X, 1, -1) + 0.5 * X + 0.25 * CSHIFT(X, 1, +1)",
    "R = C * X + 0.125 * CSHIFT(X, 2, -1)",
];

/// Iterations per (tenant, stencil): first one may miss, the rest hit.
const ITERS: usize = 3;

fn fill_source(x: &CmArray, machine: &mut cmcc::Machine) {
    x.fill_with(machine, |r, c| {
        ((r * 31 + c * 17) % 23) as f32 * 0.375 - 3.0
    });
}

fn fill_coeff(a: &CmArray, machine: &mut cmcc::Machine) {
    a.fill_with(machine, |r, c| ((r * 7 + c * 3) % 13) as f32 * 0.25 - 1.0);
}

/// Runs the full batch through one tenant handle with single-threaded
/// execution (so obs counters land on this tenant's thread shard) and
/// returns each stencil's gathered result plus the tenant's own
/// cache-traffic counters.
fn tenant_pass(session: &mut Session, barrier: &Barrier) -> (Vec<Vec<f32>>, u64, u64, u64) {
    let opts = ExecOptions::default().with_threads(1);
    let compiled: Vec<_> = STENCILS
        .iter()
        .map(|s| session.compile(s).expect("stencils compile"))
        .collect();
    let x = session.array(ROWS, COLS).unwrap();
    let r = session.array(ROWS, COLS).unwrap();
    let c = session.array(ROWS, COLS).unwrap();
    fill_source(&x, &mut session.machine_mut());
    fill_coeff(&c, &mut session.machine_mut());

    let before = cmcc::obs::thread_snapshot();
    // Everyone arrives before anyone looks the first plan up: the cache
    // is cold and all tenants race into the build lock together.
    barrier.wait();
    let mut results = Vec::new();
    for compiled in &compiled {
        let coeffs: &[&CmArray] = if compiled
            .spec()
            .coeffs
            .iter()
            .any(|c| matches!(c, cmcc::core::recognize::CoeffSpec::Named(_)))
        {
            &[&c]
        } else {
            &[]
        };
        let mut m = None;
        for _ in 0..ITERS {
            let again = session
                .run_with_multi(compiled, &r, &[&x], coeffs, &opts)
                .expect("tenant run succeeds");
            if let Some(first) = m {
                assert_eq!(again, first, "iterations diverge on fixed input");
            }
            m = Some(again);
        }
        results.push(r.gather(&session.machine()));
    }
    let delta = cmcc::obs::thread_snapshot().delta(&before);
    (
        results,
        delta.get(Counter::PlanBuilds),
        delta.get(Counter::PlanCacheHits),
        delta.get(Counter::PlanCacheMisses),
    )
}

/// N racing tenants on a cold cache: exactly M = `STENCILS.len()` plan
/// builds, bit-identical results against a sequential oracle session,
/// and per-tenant counters that sum to the shared cache's statistics.
#[test]
fn racing_tenants_build_each_plan_exactly_once_and_match_oracle() {
    cmcc::obs::set_enabled(true);
    const TENANTS: usize = 4;

    // Sequential oracle: its own session, machine, and cache.
    let mut oracle = Session::tiny().unwrap();
    let (oracle_results, ..) = tenant_pass(&mut oracle, &Barrier::new(1));

    let session = Session::tiny().unwrap();
    let barrier = Barrier::new(TENANTS);
    let tenants: Vec<(Vec<Vec<f32>>, u64, u64, u64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..TENANTS)
            .map(|_| {
                let mut handle = session.clone();
                let barrier = &barrier;
                scope.spawn(move || tenant_pass(&mut handle, barrier))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("tenant thread panicked"))
            .collect()
    });

    for (results, ..) in &tenants {
        for (got, want) in results.iter().zip(&oracle_results) {
            let exact = got
                .iter()
                .zip(want)
                .all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(exact, "tenant diverges from the sequential oracle");
        }
    }

    let stats = session.plan_cache_stats();
    let builds: u64 = tenants.iter().map(|(_, b, ..)| b).sum();
    let hits: u64 = tenants.iter().map(|(_, _, h, _)| h).sum();
    let misses: u64 = tenants.iter().map(|(_, _, _, m)| m).sum();
    let total_runs = (TENANTS * STENCILS.len() * ITERS) as u64;
    assert_eq!(
        builds,
        STENCILS.len() as u64,
        "each distinct plan must be built exactly once across racing tenants"
    );
    assert_eq!(stats.misses, builds, "every miss is one build");
    assert_eq!(misses, stats.misses, "tenant misses sum to the cache total");
    assert_eq!(hits, stats.hits, "tenant hits sum to the cache total");
    assert_eq!(stats.hits + stats.misses, total_runs);
    assert_eq!(
        stats.shard_occupancy.iter().sum::<usize>(),
        session.cached_plans(),
        "shard occupancy sums to the cached-plan count"
    );
    assert_eq!(session.cached_plans(), STENCILS.len());
    assert_eq!(
        stats.shard_evictions.iter().sum::<u64>(),
        stats.evictions,
        "per-shard evictions sum to the eviction total"
    );
    // Tenant handles have dropped, so no artifact is shared beyond the
    // cache any more.
    assert_eq!(stats.shared_in_flight, 0);
}

/// After warmup the steady state allocates nothing: the tenant's lane
/// mirror is reused run over run, and when a tenant handle retires its
/// mirror recycles through the session pool into the next tenant's
/// instance instead of a fresh allocation.
#[test]
fn steady_state_mirror_allocations_stay_flat_across_tenants() {
    cmcc::obs::set_enabled(true);
    let opts = ExecOptions {
        mode: ExecMode::Fast,
        ..ExecOptions::default()
            .with_threads(1)
            .with_engine(ExecEngine::Lockstep)
    };
    let mut session = Session::tiny().unwrap();
    let compiled = session.compile(STENCILS[0]).unwrap();
    let x = session.array(ROWS, COLS).unwrap();
    let r = session.array(ROWS, COLS).unwrap();
    fill_source(&x, &mut session.machine_mut());

    // Warmup: instance creation + first execute may allocate the mirror.
    session
        .run_with_multi(&compiled, &r, &[&x], &[], &opts)
        .unwrap();
    session
        .run_with_multi(&compiled, &r, &[&x], &[], &opts)
        .unwrap();
    let warm = session
        .last_plan()
        .expect("plan cached")
        .lane_mirror_allocations();
    let before = cmcc::obs::thread_snapshot();
    for _ in 0..8 {
        session
            .run_with_multi(&compiled, &r, &[&x], &[], &opts)
            .unwrap();
    }
    let delta = cmcc::obs::thread_snapshot().delta(&before);
    assert_eq!(
        session.last_plan().unwrap().lane_mirror_allocations(),
        warm,
        "steady state must not reallocate the lane mirror"
    );
    assert_eq!(
        delta.get(Counter::MirrorAllocations),
        0,
        "steady state must record zero mirror allocations"
    );

    // A second tenant warms up on the shared artifact, then retires —
    // its shaped mirror lands in the session pool.
    {
        let mut tenant = session.clone();
        tenant
            .run_with_multi(&compiled, &r, &[&x], &[], &opts)
            .unwrap();
    }
    // A third tenant's fresh instance takes the pooled mirror: priming
    // gathers run, but no new mirror storage is allocated.
    let mut tenant = session.clone();
    let before = cmcc::obs::thread_snapshot();
    tenant
        .run_with_multi(&compiled, &r, &[&x], &[], &opts)
        .unwrap();
    let delta = cmcc::obs::thread_snapshot().delta(&before);
    assert_eq!(
        delta.get(Counter::MirrorAllocations),
        0,
        "a recycled pool mirror must serve the new tenant without reallocating"
    );
}
