//! Failure injection at the system level: feed the pipeline wrong inputs
//! and protocol variations and verify the differential checks notice.
//! (Kernel-level injection — stripping drain bubbles, corrupting register
//! assignments — lives in `cmcc-core`'s schedule tests, where `Kernel`
//! internals are accessible; see
//! `schedule::tests::stripped_drain_bubbles_trip_the_hazard_detector`.)

use cmcc::cm2::{ExecMode, Machine, MachineConfig};
use cmcc::core::Compiler;
use cmcc::prelude::*;
use cmcc::runtime::reference::{reference_convolve, CoeffValue};
use cmcc::runtime::{convolve, ExecOptions, RuntimeError};

fn setup(
    statement: &str,
) -> (
    Machine,
    CompiledStencil,
    CmArray,
    CmArray,
    Vec<CmArray>,
    Vec<f32>,
) {
    let mut machine = Machine::new(MachineConfig::tiny_4()).unwrap();
    let compiled = Compiler::new(machine.config().clone())
        .compile_assignment(statement)
        .unwrap();
    let (rows, cols) = (8usize, 8usize);
    let x = CmArray::new(&mut machine, rows, cols).unwrap();
    x.fill_with(&mut machine, |r, c| ((r * 13 + c * 7) % 19) as f32 - 9.0);
    let n = compiled.spec().coeffs.len();
    let coeffs: Vec<CmArray> = (0..n)
        .map(|i| {
            let a = CmArray::new(&mut machine, rows, cols).unwrap();
            a.fill_with(&mut machine, move |r, c| ((r + c + i) % 5) as f32 * 0.5);
            a
        })
        .collect();
    let r = CmArray::new(&mut machine, rows, cols).unwrap();

    let x_host = x.gather(&machine);
    let coeff_host: Vec<Vec<f32>> = coeffs.iter().map(|a| a.gather(&machine)).collect();
    let values: Vec<CoeffValue<'_>> = coeff_host.iter().map(|h| CoeffValue::Array(h)).collect();
    let want = reference_convolve(compiled.stencil(), rows, cols, &x_host, &values);
    (machine, compiled, x, r, coeffs, want)
}

fn run(
    machine: &mut Machine,
    compiled: &CompiledStencil,
    r: &CmArray,
    x: &CmArray,
    coeffs: &[CmArray],
    mode: ExecMode,
) -> Result<Vec<f32>, RuntimeError> {
    let refs: Vec<&CmArray> = coeffs.iter().collect();
    let opts = ExecOptions {
        mode,
        ..ExecOptions::default()
    };
    convolve(machine, compiled, r, x, &refs, &opts)?;
    Ok(r.gather(machine))
}

/// The baseline for the negative tests: an unbroken pipeline matches the
/// reference bit for bit.
#[test]
fn unbroken_pipeline_matches() {
    let (mut machine, compiled, x, r, coeffs, want) = setup("R = C1 * CSHIFT(X, 1, -1) + C2 * X");
    let got = run(&mut machine, &compiled, &r, &x, &coeffs, ExecMode::Cycle).unwrap();
    assert!(got
        .iter()
        .zip(&want)
        .all(|(a, b)| a.to_bits() == b.to_bits()));
}

/// Perturbed inputs change the output — the differential check is not
/// vacuous (it would catch a kernel reading the wrong element).
#[test]
fn perturbed_inputs_are_visible_in_results() {
    let (mut machine, compiled, x, r, coeffs, want) = setup("R = C1 * CSHIFT(X, 1, -1) + C2 * X");
    // Flip a single interior element of the source.
    let v = x.get(&machine, 3, 3);
    x.set(&mut machine, 3, 3, v + 1.0);
    let got = run(&mut machine, &compiled, &r, &x, &coeffs, ExecMode::Fast).unwrap();
    assert_ne!(got, want, "a one-element perturbation must be detected");
    // And it propagates exactly to the stencil's readers: (3,3) itself
    // and its south neighbor (4,3) which reads it through CSHIFT(1,-1).
    let cols = 8;
    let differing: Vec<usize> = got
        .iter()
        .zip(&want)
        .enumerate()
        .filter(|(_, (a, b))| a.to_bits() != b.to_bits())
        .map(|(i, _)| i)
        .collect();
    assert_eq!(differing, vec![3 * cols + 3, 4 * cols + 3]);
}

/// Every execution-option combination is *supposed* to be functionally
/// identical; a sabotaged comparison (different boundary) is not — the
/// equality assertions in the suite have teeth.
#[test]
fn boundary_discipline_changes_results_at_edges_only() {
    let (mut machine, circular, x, r, coeffs, _) = setup("R = C1 * CSHIFT(X, 2, -1) + C2 * X");
    let zerofill = Compiler::new(machine.config().clone())
        .compile_assignment("R = C1 * EOSHIFT(X, 2, -1) + C2 * X")
        .unwrap();
    let got_c = run(&mut machine, &circular, &r, &x, &coeffs, ExecMode::Cycle).unwrap();
    let got_z = run(&mut machine, &zerofill, &r, &x, &coeffs, ExecMode::Cycle).unwrap();
    let cols = 8;
    for (i, (c, z)) in got_c.iter().zip(&got_z).enumerate() {
        if i % cols == 0 {
            // The west column reads across the boundary: values differ
            // unless the wrapped element happens to be zero-weighted.
            continue;
        }
        assert_eq!(c.to_bits(), z.to_bits(), "interior element {i} differs");
    }
    assert_ne!(got_c, got_z, "the boundary column must differ");
}

/// Memory exhaustion surfaces as a clean error, not corruption: a
/// machine too small for the temporaries refuses the call.
#[test]
fn out_of_memory_is_a_clean_refusal() {
    let cfg = MachineConfig {
        node_memory_words: 50, // room for the arrays, not the halo
        ..MachineConfig::tiny_4()
    };
    let mut machine = Machine::new(cfg).unwrap();
    let compiled = Compiler::new(machine.config().clone())
        .compile_assignment("R = 1.0 * CSHIFT(X, 1, 1)")
        .unwrap();
    let x = CmArray::new(&mut machine, 8, 8).unwrap(); // 16 words/node
    let r = CmArray::new(&mut machine, 8, 8).unwrap();
    let mark = machine.alloc_mark();
    let err = convolve(
        &mut machine,
        &compiled,
        &r,
        &x,
        &[],
        &ExecOptions::default(),
    )
    .unwrap_err();
    assert!(matches!(err, RuntimeError::OutOfMemory(_)), "{err}");
    // And the failed call released whatever it had allocated.
    assert_eq!(machine.alloc_mark(), mark);
}
