//! Differential suite for the compile → bind → plan → execute pipeline:
//! a plan built once and executed N times must be indistinguishable from
//! N fresh [`convolve`] calls — bit-identical result arrays and exactly
//! equal [`Measurement`]s — across the paper patterns, both exchange
//! primitives, and serial and threaded execution. Also covers the
//! steady-state zero-allocation guarantee and the session-level plan
//! cache (hits, shape-keyed misses, fingerprint-keyed misses, and
//! per-session isolation).

use cmcc::cm2::{Machine, MachineConfig};
use cmcc::core::recognize::CoeffSpec;
use cmcc::core::Compiler;
use cmcc::runtime::{
    convolve, CmArray, ExchangePrimitive, ExecOptions, ExecutionPlan, PlanLifetime, StencilBinding,
};
use cmcc::{Measurement, PaperPattern, Session};

/// Builds machine + arrays + compiled stencil for `pattern` on the tiny
/// 2×2 board with deterministic data.
struct Case {
    machine: Machine,
    compiled: cmcc::CompiledStencil,
    x: CmArray,
    r: CmArray,
    coeffs: Vec<CmArray>,
}

impl Case {
    fn new(pattern: PaperPattern) -> Self {
        let cfg = MachineConfig::tiny_4();
        let compiler = Compiler::new(cfg.clone());
        let compiled = compiler
            .compile_assignment(&pattern.fortran())
            .expect("paper patterns compile");
        let mut machine = Machine::new(cfg).expect("tiny_4 is valid");
        let (rows, cols) = (8, 12);
        let x = CmArray::new(&mut machine, rows, cols).unwrap();
        x.fill_with(&mut machine, |r, c| {
            ((r * 31 + c * 17) % 23) as f32 * 0.375 - 3.0
        });
        let named = compiled
            .spec()
            .coeffs
            .iter()
            .filter(|c| matches!(c, CoeffSpec::Named(_)))
            .count();
        let coeffs: Vec<CmArray> = (0..named)
            .map(|i| {
                let a = CmArray::new(&mut machine, rows, cols).unwrap();
                a.fill_with(&mut machine, move |r, c| {
                    ((r * 7 + c * 3 + i * 11) % 13) as f32 * 0.25 - 1.0
                });
                a
            })
            .collect();
        let r = CmArray::new(&mut machine, rows, cols).unwrap();
        Case {
            machine,
            compiled,
            x,
            r,
            coeffs,
        }
    }

    /// Owned handles (`CmArray` is `Copy`), so borrowing them does not
    /// pin the whole `Case`.
    fn coeff_handles(&self) -> Vec<CmArray> {
        self.coeffs.clone()
    }
}

/// Fresh convolve vs one-plan-three-executes must agree exactly:
/// the same bits in the result array and the same `Measurement`, for
/// every paper pattern × exchange primitive × serial/threaded execution.
#[test]
fn plan_reuse_is_bit_identical_to_fresh_convolve() {
    for pattern in PaperPattern::ALL {
        for primitive in [ExchangePrimitive::News, ExchangePrimitive::OldPerDirection] {
            for threads in [1, 8] {
                let opts = ExecOptions {
                    primitive,
                    threads,
                    ..ExecOptions::default()
                };
                let mut case = Case::new(pattern);
                let handles = case.coeff_handles();
                let refs: Vec<&CmArray> = handles.iter().collect();

                let fresh: Measurement = convolve(
                    &mut case.machine,
                    &case.compiled,
                    &case.r,
                    &case.x,
                    &refs,
                    &opts,
                )
                .unwrap();
                let fresh_bits: Vec<u32> = case
                    .r
                    .gather(&case.machine)
                    .iter()
                    .map(|v| v.to_bits())
                    .collect();

                let binding =
                    StencilBinding::new(&case.compiled, &case.r, &[&case.x], &refs).unwrap();
                let mut plan = ExecutionPlan::build(
                    &mut case.machine,
                    &binding,
                    &opts,
                    PlanLifetime::Persistent,
                )
                .unwrap();
                for iter in 0..3 {
                    let planned = plan.execute(&mut case.machine).unwrap();
                    assert_eq!(
                        planned, fresh,
                        "{pattern:?} {primitive:?} threads={threads} iter {iter}: Measurement"
                    );
                    let plan_bits: Vec<u32> = case
                        .r
                        .gather(&case.machine)
                        .iter()
                        .map(|v| v.to_bits())
                        .collect();
                    assert_eq!(
                        plan_bits, fresh_bits,
                        "{pattern:?} {primitive:?} threads={threads} iter {iter}: result bits"
                    );
                }
                plan.release(&mut case.machine);
            }
        }
    }
}

/// A ping-pong time-stepping chain (swap result/source each step) through
/// one rebased plan must equal the same chain run through fresh convolve
/// calls.
#[test]
fn ping_pong_chain_matches_fresh_convolve_chain() {
    let statement = "R = 0.25 * CSHIFT(X, 1, -1) + 0.5 * X + 0.25 * CSHIFT(X, 1, +1)";
    let steps = 6;
    let run_fresh = |steps: usize| -> Vec<u32> {
        let cfg = MachineConfig::tiny_4();
        let compiled = Compiler::new(cfg.clone())
            .compile_assignment(statement)
            .unwrap();
        let mut m = Machine::new(cfg).unwrap();
        let mut cur = CmArray::new(&mut m, 8, 8).unwrap();
        let mut next = CmArray::new(&mut m, 8, 8).unwrap();
        cur.fill_with(&mut m, |r, c| ((r * 5 + c) % 9) as f32);
        for _ in 0..steps {
            convolve(&mut m, &compiled, &next, &cur, &[], &ExecOptions::fast()).unwrap();
            std::mem::swap(&mut cur, &mut next);
        }
        cur.gather(&m).iter().map(|v| v.to_bits()).collect()
    };
    let run_planned = |steps: usize| -> Vec<u32> {
        let cfg = MachineConfig::tiny_4();
        let compiled = Compiler::new(cfg.clone())
            .compile_assignment(statement)
            .unwrap();
        let mut m = Machine::new(cfg).unwrap();
        let mut cur = CmArray::new(&mut m, 8, 8).unwrap();
        let mut next = CmArray::new(&mut m, 8, 8).unwrap();
        cur.fill_with(&mut m, |r, c| ((r * 5 + c) % 9) as f32);
        let binding = StencilBinding::new(&compiled, &next, &[&cur], &[]).unwrap();
        let mut plan = ExecutionPlan::build(
            &mut m,
            &binding,
            &ExecOptions::fast(),
            PlanLifetime::Persistent,
        )
        .unwrap();
        for _ in 0..steps {
            plan.rebind(&next, &[&cur], &[]).unwrap();
            plan.execute(&mut m).unwrap();
            std::mem::swap(&mut cur, &mut next);
        }
        plan.release(&mut m);
        cur.gather(&m).iter().map(|v| v.to_bits()).collect()
    };
    assert_eq!(run_fresh(steps), run_planned(steps));
}

/// The acceptance criterion made executable: a steady-state iteration
/// performs zero field allocations and leaves the temporary bump mark
/// untouched, even while rebinding between ping-pong buffers.
#[test]
fn steady_state_iterations_allocate_nothing() {
    let cfg = MachineConfig::tiny_4();
    let compiled = Compiler::new(cfg.clone())
        .compile_assignment(&PaperPattern::Cross5.fortran())
        .unwrap();
    let mut m = Machine::new(cfg).unwrap();
    let a = CmArray::new(&mut m, 8, 8).unwrap();
    let b = CmArray::new(&mut m, 8, 8).unwrap();
    let coeffs: Vec<CmArray> = (0..5)
        .map(|_| CmArray::new(&mut m, 8, 8).unwrap())
        .collect();
    let refs: Vec<&CmArray> = coeffs.iter().collect();
    a.fill(&mut m, 1.0);

    let binding = StencilBinding::new(&compiled, &b, &[&a], &refs).unwrap();
    let mut plan = ExecutionPlan::build(
        &mut m,
        &binding,
        &ExecOptions::default(),
        PlanLifetime::Persistent,
    )
    .unwrap();
    plan.execute(&mut m).unwrap(); // warm-up (still allocation-free, but be strict below)

    let allocs = m.alloc_count();
    let mark = m.alloc_mark();
    let persistent = m.persistent_used();
    let (mut src, mut dst) = (a, b);
    for _ in 0..10 {
        plan.rebind(&dst, &[&src], &refs).unwrap();
        plan.execute(&mut m).unwrap();
        std::mem::swap(&mut src, &mut dst);
    }
    assert_eq!(m.alloc_count(), allocs, "steady state allocated a field");
    assert_eq!(m.alloc_mark(), mark, "steady state moved the bump mark");
    assert_eq!(
        m.persistent_used(),
        persistent,
        "steady state changed the persistent arena"
    );
    plan.release(&mut m);
}

/// The session cache: repeated runs of the same statement/shape/options
/// hit; a shape change misses (new key) without invalidating the first
/// plan; results keep matching fresh execution throughout.
#[test]
fn session_cache_hits_and_shape_changes_miss() {
    let mut s = Session::tiny().unwrap();
    let c = s.compile("R = 0.25 * CSHIFT(X, 1, -1) + 0.75 * X").unwrap();
    let x8 = s.array(8, 8).unwrap();
    let r8 = s.array(8, 8).unwrap();
    x8.fill(&mut s.machine_mut(), 2.0);

    let first = s.run(&c, &r8, &x8, &[]).unwrap();
    assert_eq!(s.plan_cache_stats().misses, 1);
    assert_eq!(s.plan_cache_stats().hits, 0);
    for _ in 0..4 {
        let again = s.run(&c, &r8, &x8, &[]).unwrap();
        assert_eq!(again, first, "cached run must match the first run");
    }
    assert_eq!(s.plan_cache_stats().hits, 4);
    assert_eq!(r8.get(&s.machine(), 3, 3), 2.0);

    // New shape → new key → miss; old plan still cached.
    let x16 = s.array(16, 8).unwrap();
    let r16 = s.array(16, 8).unwrap();
    x16.fill(&mut s.machine_mut(), 2.0);
    s.run(&c, &r16, &x16, &[]).unwrap();
    assert_eq!(s.plan_cache_stats().misses, 2);
    assert_eq!(s.cached_plans(), 2);

    // Different options → different key.
    s.run_with(&c, &r8, &x8, &[], &ExecOptions::fast()).unwrap();
    assert_eq!(s.plan_cache_stats().misses, 3);

    // And back to the original: still a hit.
    s.run(&c, &r8, &x8, &[]).unwrap();
    assert_eq!(s.plan_cache_stats().hits, 5);
}

/// Changing an EOSHIFT boundary fill value changes the statement
/// fingerprint, so the cache must build a fresh plan — the fill is baked
/// into the plan's exchange program.
#[test]
fn eoshift_fill_value_change_misses_the_cache() {
    let mut s = Session::tiny().unwrap();
    let hot = s
        .compile("R = 0.5 * EOSHIFT(X, 1, -1, BOUNDARY=100.0) + 0.5 * X")
        .unwrap();
    let cold = s
        .compile("R = 0.5 * EOSHIFT(X, 1, -1, BOUNDARY=0.0) + 0.5 * X")
        .unwrap();
    assert_ne!(hot.fingerprint(), cold.fingerprint());

    let x = s.array(8, 8).unwrap();
    let r = s.array(8, 8).unwrap();
    x.fill(&mut s.machine_mut(), 0.0);

    s.run(&hot, &r, &x, &[]).unwrap();
    assert_eq!(
        r.get(&s.machine(), 0, 3),
        50.0,
        "hot wall blends toward 100"
    );
    s.run(&cold, &r, &x, &[]).unwrap();
    assert_eq!(r.get(&s.machine(), 0, 3), 0.0, "cold wall stays at zero");
    assert_eq!(
        s.plan_cache_stats().misses,
        2,
        "each fill value needs its own plan"
    );

    // Re-running the hot variant hits its still-cached plan and restores
    // the hot answer.
    s.run(&hot, &r, &x, &[]).unwrap();
    assert_eq!(r.get(&s.machine(), 0, 3), 50.0);
    assert_eq!(s.plan_cache_stats().hits, 1);
}

/// Plan caches are per session, so two sessions with different machine
/// configurations can never serve each other stale plans.
#[test]
fn sessions_have_independent_caches() {
    let statement = "R = 0.5 * X + 0.5 * CSHIFT(X, 2, 1)";
    let mut tiny = Session::tiny().unwrap();
    let mut board = Session::test_board().unwrap();
    let ct = tiny.compile(statement).unwrap();
    let cb = board.compile(statement).unwrap();

    let (xt, rt) = (tiny.array(8, 8).unwrap(), tiny.array(8, 8).unwrap());
    let (xb, rb) = (board.array(8, 8).unwrap(), board.array(8, 8).unwrap());
    xt.fill(&mut tiny.machine_mut(), 3.0);
    xb.fill(&mut board.machine_mut(), 3.0);

    tiny.run(&ct, &rt, &xt, &[]).unwrap();
    board.run(&cb, &rb, &xb, &[]).unwrap();
    assert_eq!(tiny.plan_cache_stats().misses, 1);
    assert_eq!(board.plan_cache_stats().misses, 1);
    assert_eq!(rt.get(&tiny.machine(), 1, 1), 3.0);
    assert_eq!(rb.get(&board.machine(), 1, 1), 3.0);

    tiny.clear_plan_cache();
    assert_eq!(tiny.cached_plans(), 0);
    assert_eq!(
        board.cached_plans(),
        1,
        "clearing one session leaves the other"
    );
    // After clearing, the next run rebuilds.
    tiny.run(&ct, &rt, &xt, &[]).unwrap();
    assert_eq!(tiny.plan_cache_stats().misses, 2);
}

/// The LRU bound: capacity K keeps at most K plans; evicted plans return
/// their node memory to the persistent arena.
#[test]
fn lru_eviction_frees_node_memory() {
    let mut s = Session::tiny().unwrap();
    s.set_plan_cache_capacity(2);
    let c = s.compile("R = 1.0 * X").unwrap();
    let shapes = [(8usize, 8usize), (16, 8), (8, 12), (16, 12)];
    for (rows, cols) in shapes {
        let x = s.array(rows, cols).unwrap();
        let r = s.array(rows, cols).unwrap();
        s.run(&c, &r, &x, &[]).unwrap();
        assert!(s.cached_plans() <= 2);
    }
    assert_eq!(s.cached_plans(), 2);
    assert_eq!(s.plan_cache_stats().misses, 4);
    let used = s.machine().persistent_used();
    s.clear_plan_cache();
    assert!(s.machine().persistent_used() < used);
    assert_eq!(s.machine().persistent_used(), 0, "all plans released");
}
