//! Telemetry contract tests for the `cmcc-obs` counters: the three
//! executors must agree on useful-flop accounting, disabled profiling
//! must leave an empty report, rebinding through the session cache must
//! keep counters continuous (no gaps or double counting between
//! bracketed reports), and a steady-state iteration's observed copy
//! words must equal the plan's analytic prediction.
//!
//! The counters are process-global atomics, so every test here takes a
//! shared lock and resets the registry before measuring.

use std::sync::Mutex;

use cmcc::core::recognize::CoeffSpec;
use cmcc::obs::{self, Counter};
use cmcc::runtime::{
    CmArray, ExecEngine, ExecOptions, ExecutionPlan, PlanLifetime, StencilBinding,
};
use cmcc::{Compiler, Machine, MachineConfig, PaperPattern, Session};

/// Serializes tests that touch the global counter registry.
static OBS_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Runs the five-point cross through a session under `opts` and returns
/// the bracketed report for the final (steady-state) run.
fn run_five_point(opts: &ExecOptions) -> obs::RunReport {
    let mut s = Session::tiny().unwrap();
    let c = s.compile(&PaperPattern::Cross5.fortran()).unwrap();
    let x = s.array(8, 8).unwrap();
    let r = s.array(8, 8).unwrap();
    x.fill_with(&mut s.machine_mut(), |row, col| {
        ((row * 5 + col) % 7) as f32
    });
    let named = c
        .spec()
        .coeffs
        .iter()
        .filter(|c| matches!(c, CoeffSpec::Named(_)))
        .count();
    let coeffs: Vec<CmArray> = (0..named).map(|_| s.array(8, 8).unwrap()).collect();
    for (i, a) in coeffs.iter().enumerate() {
        a.fill(&mut s.machine_mut(), 0.125 * (i + 1) as f32);
    }
    let refs: Vec<&CmArray> = coeffs.iter().collect();
    // Three runs: build, then two rebound replays, so the report below
    // is a pure steady-state iteration for every engine.
    s.run_with(&c, &r, &x, &refs, opts).unwrap();
    s.run_with(&c, &r, &x, &refs, opts).unwrap();
    s.run_with(&c, &r, &x, &refs, opts).unwrap();
    s.last_report()
}

/// The paper's numerator must not depend on which executor produced it:
/// scalar, lockstep gather/scatter, and lockstep lane-resident runs of
/// the five-point pattern report identical useful-flop counts.
#[test]
fn useful_flops_identical_across_engines() {
    let _g = lock();
    obs::set_enabled(true);
    obs::reset();

    let scalar = run_five_point(&ExecOptions::fast().with_engine(ExecEngine::Scalar));
    let lockstep = run_five_point(
        &ExecOptions::fast()
            .with_engine(ExecEngine::Lockstep)
            .with_lane_resident(false),
    );
    let resident = run_five_point(
        &ExecOptions::fast()
            .with_engine(ExecEngine::Lockstep)
            .with_lane_resident(true),
    );

    assert_eq!(scalar.get(Counter::ScalarRuns), 1);
    assert_eq!(lockstep.get(Counter::LockstepRuns), 1);
    assert_eq!(resident.get(Counter::LaneResidentRuns), 1);

    let flops = scalar.get(Counter::UsefulFlops);
    assert!(flops > 0, "the five-point stencil does real work");
    assert_eq!(
        lockstep.get(Counter::UsefulFlops),
        flops,
        "lockstep useful flops diverge from scalar"
    );
    assert_eq!(
        resident.get(Counter::UsefulFlops),
        flops,
        "lane-resident useful flops diverge from scalar"
    );

    obs::set_enabled(false);
}

/// With profiling off, a full compile-and-run cycle must leave the
/// registry untouched: the bracketed report is empty and costs nothing.
#[test]
fn disabled_profiling_yields_empty_report() {
    let _g = lock();
    obs::set_enabled(false);
    obs::reset();

    let report = run_five_point(&ExecOptions::default());
    assert!(
        report.is_empty(),
        "disabled profiling still recorded something:\n{}",
        report.render_table()
    );
    assert!(obs::snapshot().is_empty(), "global registry stayed zeroed");
}

/// Counter continuity across the session cache: the first run builds,
/// the second rebinds, and the two bracketed reports tile the global
/// totals exactly — nothing is lost or double-counted at the hit/miss
/// boundary.
#[test]
fn rebind_preserves_counter_continuity() {
    let _g = lock();
    obs::set_enabled(true);
    obs::reset();

    let mut s = Session::tiny().unwrap();
    let c = s.compile("R = 0.25 * CSHIFT(X, 1, -1) + 0.75 * X").unwrap();
    let x = s.array(8, 8).unwrap();
    let r = s.array(8, 8).unwrap();
    x.fill(&mut s.machine_mut(), 2.0);

    s.run(&c, &r, &x, &[]).unwrap();
    let first = s.last_report();
    assert_eq!(first.get(Counter::PlanBuilds), 1, "first run builds");
    assert_eq!(first.get(Counter::PlanCacheMisses), 1);

    s.run(&c, &r, &x, &[]).unwrap();
    let second = s.last_report();
    assert_eq!(second.get(Counter::PlanBuilds), 0, "hit must not rebuild");
    assert_eq!(second.get(Counter::PlanRebinds), 1, "hit rebinds in place");
    assert_eq!(second.get(Counter::PlanCacheHits), 1);

    let total = obs::snapshot();
    for counter in Counter::ALL {
        assert_eq!(
            first.get(counter) + second.get(counter),
            total.get(counter),
            "{} not continuous across the rebind boundary",
            counter.key()
        );
    }

    obs::set_enabled(false);
}

/// The observability counters reproduce the plan's own analytic model: a
/// steady-state lane-resident iteration's copy words, as summed from the
/// report, equal `steady_state_copy_words()` exactly.
#[test]
fn steady_state_copy_words_match_analytic_prediction() {
    let _g = lock();
    obs::set_enabled(true);
    obs::reset();

    let cfg = MachineConfig::tiny_4();
    let compiled = Compiler::new(cfg.clone())
        .compile_assignment("R = 0.25 * CSHIFT(X, 1, -1) + 0.5 * X + 0.25 * CSHIFT(X, 2, 1)")
        .unwrap();
    let mut m = Machine::new(cfg).unwrap();
    let x = CmArray::new(&mut m, 8, 8).unwrap();
    let r = CmArray::new(&mut m, 8, 8).unwrap();
    x.fill_with(&mut m, |row, col| (row * 3 + col) as f32 * 0.5);

    let binding = StencilBinding::new(&compiled, &r, &[&x], &[]).unwrap();
    let mut plan = ExecutionPlan::build(
        &mut m,
        &binding,
        &ExecOptions::default(),
        PlanLifetime::Persistent,
    )
    .unwrap();
    plan.execute(&mut m).unwrap(); // priming iteration (full mirror gather)

    let before = obs::snapshot();
    plan.execute(&mut m).unwrap(); // steady state
    let steady = obs::snapshot().delta(&before);

    assert_eq!(
        steady.copy_words(),
        plan.steady_state_copy_words() as u64,
        "observed steady-state copy words diverge from the prediction:\n{}",
        steady.render_table()
    );
    assert_eq!(
        steady.get(Counter::GatherWords),
        0,
        "steady state must not re-gather the full mirror"
    );
    assert_eq!(steady.get(Counter::MirrorAllocations), 0);

    plan.release(&mut m);
    obs::set_enabled(false);
}
