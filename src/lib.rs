//! # cmcc — the Connection Machine Convolution Compiler, reproduced
//!
//! A Rust reproduction of *"Fortran at Ten Gigaflops: The Connection
//! Machine Convolution Compiler"* (Bromley, Heller, McNerney & Steele,
//! PLDI 1991): a compiler that turns Fortran 90 array assignment
//! statements of the sum-of-products `CSHIFT` form into chained
//! multiply-add kernels, executed here on a cycle-level simulator of the
//! CM-2's floating-point node array.
//!
//! The workspace splits the way the paper splits the system:
//!
//! | crate | paper role |
//! |---|---|
//! | [`front`] | Fortran 90 subset + `defstencil` front ends |
//! | [`core`] | the compiler module: recognition, multistencils, ring-buffer register allocation, kernel scheduling |
//! | [`cm2`] | the machine: WTL3164 pipeline, sequencer, node grid, communication primitives |
//! | [`runtime`] | the run-time library: distributed arrays, halo exchange, strip mining |
//! | [`baseline`] | comparators: generic slicewise CM Fortran and the 1989 hand-coded library |
//!
//! # Quickstart
//!
//! ```
//! use cmcc::Session;
//!
//! let mut session = Session::tiny()?;
//! let blur = session.compile(
//!     "R = 0.25 * CSHIFT(X, 1, -1) + 0.5 * X + 0.25 * CSHIFT(X, 1, +1)",
//! )?;
//! let x = session.array(8, 8)?;
//! let r = session.array(8, 8)?;
//! x.fill_with(session.machine_mut(), |row, _| row as f32);
//! let measurement = session.run(&blur, &r, &x, &[])?;
//! assert_eq!(r.get(session.machine(), 4, 0), 4.0);
//! println!("{:.1} Mflops", measurement.mflops(session.config()));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use cmcc_baseline as baseline;
pub use cmcc_cm2 as cm2;
pub use cmcc_core as core;
pub use cmcc_front as front;
pub use cmcc_obs as obs;
pub use cmcc_runtime as runtime;

pub use cmcc_cm2::{CycleBreakdown, Machine, MachineConfig, Measurement};
pub use cmcc_core::{CompileError, CompiledStencil, Compiler, PaperPattern};
pub use cmcc_runtime::{
    convolve, convolve_multi, convolve_volume, CmArray, CmVolume, ExecEngine, ExecOptions,
    ExecutionPlan, PlanLifetime, RuntimeError, StencilBinding,
};

use std::error::Error;
use std::fmt;

/// Everything needed for typical use, in one import.
pub mod prelude {
    pub use crate::{
        convolve, CmArray, CompiledStencil, Compiler, ExecOptions, Machine, MachineConfig,
        Measurement, PaperPattern, Session,
    };
}

/// A combined error for [`Session`] operations.
#[derive(Debug)]
pub enum SessionError {
    /// Machine construction failed.
    Machine(String),
    /// Compilation failed.
    Compile(CompileError),
    /// A run-time library error.
    Runtime(RuntimeError),
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::Machine(msg) => write!(f, "machine error: {msg}"),
            SessionError::Compile(e) => e.fmt(f),
            SessionError::Runtime(e) => e.fmt(f),
        }
    }
}

impl Error for SessionError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SessionError::Machine(_) => None,
            SessionError::Compile(e) => Some(e),
            SessionError::Runtime(e) => Some(e),
        }
    }
}

impl From<CompileError> for SessionError {
    fn from(e: CompileError) -> Self {
        SessionError::Compile(e)
    }
}

impl From<RuntimeError> for SessionError {
    fn from(e: RuntimeError) -> Self {
        SessionError::Runtime(e)
    }
}

/// The plan cache key: a statement [`CompiledStencil::fingerprint`], the
/// global array shape, and the execution options. Two calls with equal
/// keys are guaranteed to want the same [`ExecutionPlan`] (possibly
/// rebased onto different arrays of that shape).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct PlanKey {
    fingerprint: u64,
    rows: usize,
    cols: usize,
    opts: ExecOptions,
}

#[derive(Debug)]
struct CachedPlan {
    key: PlanKey,
    plan: ExecutionPlan,
    last_used: u64,
}

/// Hit/miss counters for a session's plan cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PlanCacheStats {
    /// Runs served by rebinding a cached plan.
    pub hits: u64,
    /// Runs that built (and cached) a fresh plan.
    pub misses: u64,
    /// Cached plans released to make room (LRU) — by a capacity overflow
    /// or an explicit [`Session::set_plan_cache_capacity`] shrink.
    pub evictions: u64,
    /// The cache's current plan capacity.
    pub capacity: usize,
}

/// Default number of distinct (statement, shape, options) plans a session
/// keeps alive.
const DEFAULT_PLAN_CACHE_CAPACITY: usize = 8;

/// A machine plus a compiler targeting it: the convenient front door.
///
/// Every `run*` call is served through a **plan cache**: the first call
/// for a given (statement fingerprint, array shape, options) builds an
/// [`ExecutionPlan`] — halo buffers, exchange programs, pre-resolved
/// strip schedule — and later calls replay it, rebased onto whichever
/// arrays are passed. Results and [`Measurement`]s are bit-identical to
/// uncached execution. The cache is bounded (least-recently-used plans
/// are evicted and their node memory freed) and is scoped to the session,
/// so a different machine configuration — a different `Session` — can
/// never observe a stale plan. A shape or options change simply keys a
/// new plan.
///
/// See the crate-level example. For full control (execution options,
/// alternative front ends, baselines) use the constituent crates
/// directly.
#[derive(Debug)]
pub struct Session {
    machine: Machine,
    compiler: Compiler,
    plans: Vec<CachedPlan>,
    plan_capacity: usize,
    tick: u64,
    stats: PlanCacheStats,
    /// Telemetry delta of the most recent `run*` call (empty when
    /// profiling is disabled — see [`cmcc_obs::set_enabled`]).
    last_report: cmcc_obs::RunReport,
    /// Cache key of the most recent `run*` call, for [`Session::last_plan`].
    last_key: Option<PlanKey>,
}

impl Session {
    /// A session on the given machine configuration.
    ///
    /// # Errors
    ///
    /// [`SessionError::Machine`] if the configuration is invalid.
    pub fn with_config(config: MachineConfig) -> Result<Self, SessionError> {
        let machine = Machine::new(config.clone()).map_err(SessionError::Machine)?;
        Ok(Session {
            machine,
            compiler: Compiler::new(config),
            plans: Vec::new(),
            plan_capacity: DEFAULT_PLAN_CACHE_CAPACITY,
            tick: 0,
            stats: PlanCacheStats::default(),
            last_report: cmcc_obs::RunReport::default(),
            last_key: None,
        })
    }

    /// The paper's 16-node measurement board (4×4 nodes).
    ///
    /// # Errors
    ///
    /// Never in practice; propagates machine construction.
    pub fn test_board() -> Result<Self, SessionError> {
        Self::with_config(MachineConfig::test_board_16())
    }

    /// A full 2,048-node CM-2.
    ///
    /// # Errors
    ///
    /// Never in practice; propagates machine construction.
    pub fn full_machine() -> Result<Self, SessionError> {
        Self::with_config(MachineConfig::full_machine_2048())
    }

    /// A tiny 2×2-node machine for tests and doc examples.
    ///
    /// # Errors
    ///
    /// Never in practice; propagates machine construction.
    pub fn tiny() -> Result<Self, SessionError> {
        Self::with_config(MachineConfig::tiny_4())
    }

    /// The machine.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// The machine, mutably.
    pub fn machine_mut(&mut self) -> &mut Machine {
        &mut self.machine
    }

    /// The machine configuration.
    pub fn config(&self) -> &MachineConfig {
        self.machine.config()
    }

    /// The compiler.
    pub fn compiler(&self) -> &Compiler {
        &self.compiler
    }

    /// Compiles a Fortran array assignment statement.
    ///
    /// # Errors
    ///
    /// Any [`CompileError`].
    pub fn compile(&self, statement: &str) -> Result<CompiledStencil, SessionError> {
        Ok(self.compiler.compile_assignment(statement)?)
    }

    /// Compiles a statement under the multi-source extension (several
    /// shifted arrays fused into one kernel — the paper's §9 future
    /// work).
    ///
    /// # Errors
    ///
    /// Any [`CompileError`].
    pub fn compile_extended(&self, statement: &str) -> Result<CompiledStencil, SessionError> {
        Ok(self.compiler.compile_assignment_extended(statement)?)
    }

    /// Allocates a distributed array.
    ///
    /// # Errors
    ///
    /// Shape or memory errors from the run-time library.
    pub fn array(&mut self, rows: usize, cols: usize) -> Result<CmArray, SessionError> {
        Ok(CmArray::new(&mut self.machine, rows, cols)?)
    }

    /// Runs a compiled stencil with default options (cycle-accurate).
    ///
    /// # Errors
    ///
    /// Any [`RuntimeError`].
    pub fn run(
        &mut self,
        compiled: &CompiledStencil,
        result: &CmArray,
        source: &CmArray,
        coeffs: &[&CmArray],
    ) -> Result<Measurement, SessionError> {
        self.run_with_multi(compiled, result, &[source], coeffs, &ExecOptions::default())
    }

    /// Runs a compiled multi-source stencil with default options.
    ///
    /// # Errors
    ///
    /// Any [`RuntimeError`].
    pub fn run_multi(
        &mut self,
        compiled: &CompiledStencil,
        result: &CmArray,
        sources: &[&CmArray],
        coeffs: &[&CmArray],
    ) -> Result<Measurement, SessionError> {
        self.run_with_multi(compiled, result, sources, coeffs, &ExecOptions::default())
    }

    /// Runs a compiled multi-source stencil with explicit options.
    ///
    /// This is the cache-aware core every other `run*` method funnels
    /// into: a hit rebinds the cached [`ExecutionPlan`] to the given
    /// arrays and executes it (no allocation, no schedule rebuild); a
    /// miss builds the plan, caches it, and executes.
    ///
    /// # Errors
    ///
    /// Any [`RuntimeError`].
    pub fn run_with_multi(
        &mut self,
        compiled: &CompiledStencil,
        result: &CmArray,
        sources: &[&CmArray],
        coeffs: &[&CmArray],
        opts: &ExecOptions,
    ) -> Result<Measurement, SessionError> {
        // Bind first: argument validation must not depend on the cache.
        let binding = StencilBinding::new(compiled, result, sources, coeffs)?;
        let key = PlanKey {
            fingerprint: compiled.fingerprint(),
            rows: result.rows(),
            cols: result.cols(),
            opts: *opts,
        };
        self.tick += 1;
        let before = cmcc_obs::snapshot();
        self.last_key = Some(key);
        if let Some(entry) = self.plans.iter_mut().find(|e| e.key == key) {
            entry.last_used = self.tick;
            entry.plan.rebind(result, sources, coeffs)?;
            self.stats.hits += 1;
            cmcc_obs::add(cmcc_obs::Counter::PlanCacheHits, 1);
            let measurement = entry.plan.execute(&mut self.machine)?;
            self.last_report = cmcc_obs::snapshot().delta(&before);
            return Ok(measurement);
        }

        self.stats.misses += 1;
        cmcc_obs::add(cmcc_obs::Counter::PlanCacheMisses, 1);
        let mut plan =
            ExecutionPlan::build(&mut self.machine, &binding, opts, PlanLifetime::Persistent)?;
        let measurement = plan.execute(&mut self.machine)?;
        self.last_report = cmcc_obs::snapshot().delta(&before);
        if self.plan_capacity == 0 {
            plan.release(&mut self.machine);
            self.last_key = None;
            return Ok(measurement);
        }
        if self.plans.len() >= self.plan_capacity {
            // Evict the least-recently-used plan and return its node
            // memory to the persistent arena.
            if let Some(lru) = self
                .plans
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(i, _)| i)
            {
                let evicted = self.plans.swap_remove(lru);
                evicted.plan.release(&mut self.machine);
                self.stats.evictions += 1;
                cmcc_obs::add(cmcc_obs::Counter::PlanCacheEvictions, 1);
            }
        }
        self.plans.push(CachedPlan {
            key,
            plan,
            last_used: self.tick,
        });
        Ok(measurement)
    }

    /// Plan-cache hit/miss/eviction counters, plus the current capacity.
    pub fn plan_cache_stats(&self) -> PlanCacheStats {
        PlanCacheStats {
            capacity: self.plan_capacity,
            ..self.stats
        }
    }

    /// Telemetry recorded by the most recent `run*` call: the global
    /// [`cmcc_obs`] counter and span deltas bracketing that call. Empty
    /// when profiling was disabled (the counters never moved) or before
    /// the first run.
    pub fn last_report(&self) -> cmcc_obs::RunReport {
        self.last_report
    }

    /// The cached [`ExecutionPlan`] the most recent `run*` call used,
    /// when it is still in the cache — for inspecting analytic plan
    /// properties like [`ExecutionPlan::steady_state_copy_words`].
    pub fn last_plan(&self) -> Option<&ExecutionPlan> {
        let key = self.last_key?;
        self.plans.iter().find(|e| e.key == key).map(|e| &e.plan)
    }

    /// Number of plans currently cached.
    pub fn cached_plans(&self) -> usize {
        self.plans.len()
    }

    /// Changes how many plans the session keeps (evicting immediately if
    /// the new bound is smaller). A capacity of zero disables caching for
    /// subsequent runs.
    pub fn set_plan_cache_capacity(&mut self, capacity: usize) {
        self.plan_capacity = capacity;
        while self.plans.len() > capacity {
            if let Some(lru) = self
                .plans
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(i, _)| i)
            {
                let evicted = self.plans.swap_remove(lru);
                evicted.plan.release(&mut self.machine);
                self.stats.evictions += 1;
                cmcc_obs::add(cmcc_obs::Counter::PlanCacheEvictions, 1);
            }
        }
    }

    /// Drops every cached plan and frees its node memory. Call after
    /// anything a plan could have captured changes out from under the
    /// cache — there is nothing of that kind today (machine configuration
    /// is fixed per session, and shape or option changes key new plans),
    /// but explicit invalidation keeps the escape hatch cheap.
    pub fn clear_plan_cache(&mut self) {
        for entry in self.plans.drain(..) {
            entry.plan.release(&mut self.machine);
        }
    }

    /// Runs with explicit options.
    ///
    /// # Errors
    ///
    /// Any [`RuntimeError`].
    pub fn run_with(
        &mut self,
        compiled: &CompiledStencil,
        result: &CmArray,
        source: &CmArray,
        coeffs: &[&CmArray],
        opts: &ExecOptions,
    ) -> Result<Measurement, SessionError> {
        self.run_with_multi(compiled, result, &[source], coeffs, opts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn session_round_trip() {
        let mut s = Session::tiny().unwrap();
        let c = s.compile("R = 0.5 * X + 0.5 * CSHIFT(X, 2, 1)").unwrap();
        let x = s.array(4, 4).unwrap();
        let r = s.array(4, 4).unwrap();
        x.fill(s.machine_mut(), 2.0);
        let m = s.run(&c, &r, &x, &[]).unwrap();
        assert_eq!(r.get(s.machine(), 1, 1), 2.0);
        assert!(m.cycles.total() > 0);
    }

    #[test]
    fn compile_errors_surface() {
        let s = Session::tiny().unwrap();
        let err = s.compile("R = X - Y").unwrap_err();
        assert!(err.to_string().contains("subtraction") || err.to_string().contains("stencil"));
        assert!(std::error::Error::source(&err).is_some());
    }
}
