//! # cmcc — the Connection Machine Convolution Compiler, reproduced
//!
//! A Rust reproduction of *"Fortran at Ten Gigaflops: The Connection
//! Machine Convolution Compiler"* (Bromley, Heller, McNerney & Steele,
//! PLDI 1991): a compiler that turns Fortran 90 array assignment
//! statements of the sum-of-products `CSHIFT` form into chained
//! multiply-add kernels, executed here on a cycle-level simulator of the
//! CM-2's floating-point node array.
//!
//! The workspace splits the way the paper splits the system:
//!
//! | crate | paper role |
//! |---|---|
//! | [`front`] | Fortran 90 subset + `defstencil` front ends |
//! | [`core`] | the compiler module: recognition, multistencils, ring-buffer register allocation, kernel scheduling |
//! | [`cm2`] | the machine: WTL3164 pipeline, sequencer, node grid, communication primitives |
//! | [`runtime`] | the run-time library: distributed arrays, halo exchange, strip mining |
//! | [`baseline`] | comparators: generic slicewise CM Fortran and the 1989 hand-coded library |
//!
//! # Quickstart
//!
//! ```
//! use cmcc::Session;
//!
//! let mut session = Session::tiny()?;
//! let blur = session.compile(
//!     "R = 0.25 * CSHIFT(X, 1, -1) + 0.5 * X + 0.25 * CSHIFT(X, 1, +1)",
//! )?;
//! let x = session.array(8, 8)?;
//! let r = session.array(8, 8)?;
//! x.fill_with(&mut session.machine_mut(), |row, _| row as f32);
//! let measurement = session.run(&blur, &r, &x, &[])?;
//! assert_eq!(r.get(&session.machine(), 4, 0), 4.0);
//! println!("{:.1} Mflops", measurement.mflops(session.config()));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! # Concurrency
//!
//! A [`Session`] is a cheap clonable handle over shared state: the
//! machine (behind a read-write lock), the compiler, a sharded plan
//! cache of immutable [`CompiledPlan`] artifacts, and a lane-mirror
//! pool. Clone the session once per thread and run concurrently — the
//! first tenant to request a given (statement, shape, options) builds
//! its plan exactly once (a per-entry build lock serializes racing
//! tenants onto the same artifact), and every handle keeps its own
//! mutable [`runtime::PlanInstance`] state, so tenants never observe
//! each other's bindings.
//!
//! Executes are admitted through a **region-lease table**: each run
//! leases the node-memory ranges it touches, and runs whose leases
//! don't conflict (disjoint, or read-read overlap) proceed
//! concurrently under the *shared* machine lock, staging their result
//! scatter and committing it under a brief exclusive lock.
//! Conflicting runs fall back — in fair FIFO order — to the exclusive
//! write path, bit-identically. See [`Session::lease_stats`].

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use cmcc_baseline as baseline;
pub use cmcc_cm2 as cm2;
pub use cmcc_core as core;
pub use cmcc_front as front;
pub use cmcc_obs as obs;
pub use cmcc_runtime as runtime;

pub use cmcc_cm2::{CycleBreakdown, Machine, MachineConfig, Measurement};
pub use cmcc_core::{CompileError, CompiledStencil, Compiler, PaperPattern};
pub use cmcc_runtime::{
    convolve, convolve_multi, convolve_volume, CmArray, CmVolume, CompiledPlan, ExecEngine,
    ExecOptions, ExecutionPlan, LeaseRange, PlanLifetime, RuntimeError, StencilBinding,
};

use cmcc_cm2::lane::{MirrorPool, RegionStage};
use std::collections::VecDeque;
use std::error::Error;
use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Everything needed for typical use, in one import.
pub mod prelude {
    pub use crate::{
        convolve, CmArray, CompiledStencil, Compiler, ExecOptions, Machine, MachineConfig,
        Measurement, PaperPattern, Session,
    };
}

/// A combined error for [`Session`] operations.
#[derive(Debug)]
pub enum SessionError {
    /// Machine construction failed.
    Machine(String),
    /// Compilation failed.
    Compile(CompileError),
    /// A run-time library error.
    Runtime(RuntimeError),
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::Machine(msg) => write!(f, "machine error: {msg}"),
            SessionError::Compile(e) => e.fmt(f),
            SessionError::Runtime(e) => e.fmt(f),
        }
    }
}

impl Error for SessionError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SessionError::Machine(_) => None,
            SessionError::Compile(e) => Some(e),
            SessionError::Runtime(e) => Some(e),
        }
    }
}

impl From<CompileError> for SessionError {
    fn from(e: CompileError) -> Self {
        SessionError::Compile(e)
    }
}

impl From<RuntimeError> for SessionError {
    fn from(e: RuntimeError) -> Self {
        SessionError::Runtime(e)
    }
}

/// The plan cache key: a statement [`CompiledStencil::fingerprint`], the
/// global array shape, and the execution options. Two calls with equal
/// keys are guaranteed to want the same [`CompiledPlan`] (possibly
/// instantiated over different arrays of that shape).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct PlanKey {
    fingerprint: u64,
    rows: usize,
    cols: usize,
    opts: ExecOptions,
}

/// Number of shards in the concurrent plan cache. Lookups hash the
/// plan key (statement fingerprint, shape, options) to a shard, so
/// tenants working on distinct stencils rarely touch the same lock.
pub const PLAN_CACHE_SHARDS: usize = 8;

/// One cache entry's build-once cell. The slot is created *before* the
/// plan exists: the first tenant to lock `plan` and find `None` builds
/// the artifact while racing tenants block on the same mutex and wake to
/// a populated slot — the per-fingerprint build lock that makes "built
/// exactly once" a structural guarantee rather than a race outcome.
#[derive(Debug)]
struct PlanSlot {
    plan: Mutex<Option<Arc<CompiledPlan>>>,
    /// Global LRU tick of the last lookup (monotonic, cache-wide).
    last_used: AtomicU64,
}

#[derive(Debug)]
struct CacheEntry {
    key: PlanKey,
    slot: Arc<PlanSlot>,
}

/// The sharded concurrent plan cache: [`PLAN_CACHE_SHARDS`] independent
/// `RwLock`ed entry lists plus global (atomic) accounting. The capacity
/// bound and LRU order are global across shards — eviction scans every
/// shard — so the cache behaves like one LRU map that merely avoids a
/// single lock on the lookup path.
#[derive(Debug)]
struct PlanCache {
    shards: [RwLock<Vec<CacheEntry>>; PLAN_CACHE_SHARDS],
    capacity: AtomicUsize,
    tick: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    shard_evictions: [AtomicU64; PLAN_CACHE_SHARDS],
    /// Evicted artifacts still referenced by in-flight instances. The
    /// `Arc` keeps the artifact (and its node-memory fields) alive;
    /// sweeps reclaim each one when its last instance drops.
    retired: Mutex<Vec<Arc<CompiledPlan>>>,
}

impl PlanCache {
    fn new(capacity: usize) -> Self {
        PlanCache {
            shards: std::array::from_fn(|_| RwLock::new(Vec::new())),
            capacity: AtomicUsize::new(capacity),
            tick: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            shard_evictions: std::array::from_fn(|_| AtomicU64::new(0)),
            retired: Mutex::new(Vec::new()),
        }
    }

    fn shard_index(key: &PlanKey) -> usize {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        (h.finish() as usize) % PLAN_CACHE_SHARDS
    }

    fn retire(&self, cp: Arc<CompiledPlan>) {
        self.retired
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(cp);
    }
}

/// Hit/miss counters plus occupancy for a session's plan cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PlanCacheStats {
    /// Runs served from an already-built shared plan (including tenants
    /// that waited on a racing builder).
    pub hits: u64,
    /// Runs that built (and cached) a fresh plan — one per distinct
    /// artifact, however many tenants raced for it.
    pub misses: u64,
    /// Cached plans evicted (LRU bound or capacity shrink), summed over
    /// shards.
    pub evictions: u64,
    /// The cache's current plan capacity (global, across all shards).
    pub capacity: usize,
    /// Plans currently cached, per shard.
    pub shard_occupancy: [usize; PLAN_CACHE_SHARDS],
    /// Evictions performed, per shard. Sums to `evictions`.
    pub shard_evictions: [u64; PLAN_CACHE_SHARDS],
    /// Shared artifacts currently held beyond the cache itself: cached
    /// plans with at least one live tenant instance, plus evicted plans
    /// kept alive by in-flight instances awaiting their final sweep.
    pub shared_in_flight: usize,
}

/// Default number of distinct (statement, shape, options) plans a session
/// keeps alive.
const DEFAULT_PLAN_CACHE_CAPACITY: usize = 8;

/// Default number of retired lane mirrors the session pool holds for
/// recycling across tenant instances (see
/// [`Session::with_config_and_mirror_pool`] to override).
pub const DEFAULT_MIRROR_POOL_CAPACITY: usize = 32;

/// Mutable state of the region-lease table, behind one mutex.
#[derive(Debug, Default)]
struct LeaseState {
    /// Live leases: one entry per in-flight execute, keyed by ticket.
    live: Vec<(u64, Vec<LeaseRange>)>,
    /// Conflicted requests waiting their turn, in arrival order.
    queue: VecDeque<(u64, Vec<LeaseRange>)>,
    next_ticket: u64,
    /// Executes currently holding a lease.
    in_flight: usize,
    /// Highest `in_flight` ever observed (monotone).
    peak: usize,
    /// Portion of `peak` already emitted to
    /// [`cmcc_obs::Counter::ConcurrentExecutesPeak`]; the counter is fed
    /// monotone deltas so its global sum equals the peak itself.
    reported_peak: usize,
    conflicts: u64,
}

/// The region-lease table: admission control for concurrent executes.
///
/// Every execute — region or exclusive — acquires a lease over the
/// node-memory ranges it will touch ([`ExecutionPlan::lease_ranges`])
/// before touching the machine lock, and holds it until its results are
/// committed. Disjoint (or read-read overlapping) leases are granted
/// immediately and may run concurrently; a conflicting request queues
/// FIFO behind every earlier request it conflicts with, and runs on the
/// exclusive write path once granted. Lock order: lease table →
/// machine lock, never the reverse.
#[derive(Debug, Default)]
struct LeaseTable {
    state: Mutex<LeaseState>,
    granted: Condvar,
    /// Leases admitted to the concurrent region path.
    region_grants: AtomicU64,
}

/// A live region lease. Dropping it — normally or during a panic
/// unwind — releases the ranges and wakes every queued waiter.
#[derive(Debug)]
struct LeaseGuard<'a> {
    table: &'a LeaseTable,
    ticket: u64,
}

fn ranges_conflict(a: &[LeaseRange], b: &[LeaseRange]) -> bool {
    a.iter().any(|ra| b.iter().any(|rb| ra.conflicts(rb)))
}

impl LeaseTable {
    /// Acquires a lease over `ranges`, blocking while any live or
    /// earlier-queued lease conflicts. Returns the guard plus whether
    /// the request ever conflicted — a conflicted lease must take the
    /// exclusive write path (and be counted), never the region path.
    fn acquire(&self, ranges: Vec<LeaseRange>) -> (LeaseGuard<'_>, bool) {
        // Flight-recorder lease lifecycle: the `lease_acquire` slice runs
        // from request to grant (its duration is the time-to-grant, and
        // its end event's arg says whether the request conflicted); the
        // `lease_held` slice runs from grant to release.
        cmcc_obs::trace::record(
            cmcc_obs::trace::TraceKind::Begin,
            cmcc_obs::trace::TraceOp::LeaseAcquire,
            0,
        );
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let ticket = st.next_ticket;
        st.next_ticket += 1;
        let blocked = |st: &LeaseState| {
            st.live.iter().any(|(_, lr)| ranges_conflict(lr, &ranges))
                || st
                    .queue
                    .iter()
                    .take_while(|(t, _)| *t != ticket)
                    .any(|(_, qr)| ranges_conflict(qr, &ranges))
        };
        let conflicted = blocked(&st);
        if conflicted {
            st.conflicts += 1;
            st.queue.push_back((ticket, ranges.clone()));
            while blocked(&st) {
                st = self.granted.wait(st).unwrap_or_else(|e| e.into_inner());
            }
            let pos = st
                .queue
                .iter()
                .position(|(t, _)| *t == ticket)
                .expect("queued lease ticket vanished");
            st.queue.remove(pos);
        }
        st.live.push((ticket, ranges));
        st.in_flight += 1;
        if st.in_flight > st.peak {
            st.peak = st.in_flight;
            let delta = (st.peak - st.reported_peak) as u64;
            st.reported_peak = st.peak;
            cmcc_obs::add(cmcc_obs::Counter::ConcurrentExecutesPeak, delta);
        }
        drop(st);
        cmcc_obs::trace::record(
            cmcc_obs::trace::TraceKind::End,
            cmcc_obs::trace::TraceOp::LeaseAcquire,
            conflicted as u64,
        );
        cmcc_obs::trace::record(
            cmcc_obs::trace::TraceKind::Begin,
            cmcc_obs::trace::TraceOp::LeaseHeld,
            ticket,
        );
        (
            LeaseGuard {
                table: self,
                ticket,
            },
            conflicted,
        )
    }

    fn stats(&self) -> LeaseStats {
        let st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        LeaseStats {
            region_grants: self.region_grants.load(Ordering::Relaxed),
            conflicts: st.conflicts,
            peak_concurrent: st.peak,
            live: st.live.len(),
            queued: st.queue.len(),
        }
    }
}

impl Drop for LeaseGuard<'_> {
    fn drop(&mut self) {
        let mut st = self.table.state.lock().unwrap_or_else(|e| e.into_inner());
        st.live.retain(|(t, _)| *t != self.ticket);
        st.in_flight -= 1;
        drop(st);
        self.table.granted.notify_all();
        cmcc_obs::trace::record(
            cmcc_obs::trace::TraceKind::End,
            cmcc_obs::trace::TraceOp::LeaseHeld,
            self.ticket,
        );
    }
}

/// A snapshot of the session's region-lease table (shared across handle
/// clones): grants, conflicts, the concurrency high-water mark, and the
/// instantaneous live/queued population.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LeaseStats {
    /// Executes admitted to the concurrent region path (shared machine
    /// lock, staged scatter).
    pub region_grants: u64,
    /// Requests that conflicted with a live or queued lease and fell
    /// back to the exclusive write path after their FIFO turn.
    pub conflicts: u64,
    /// Highest number of simultaneously leased executes ever observed.
    pub peak_concurrent: usize,
    /// Leases live right now.
    pub live: usize,
    /// Requests queued on a conflict right now.
    pub queued: usize,
}

/// The state every [`Session`] handle shares: the machine behind a
/// read-write lock, the compiler, the sharded plan cache, the
/// lane-mirror pool, and the region-lease table that admits executes.
#[derive(Debug)]
struct SessionShared {
    machine: RwLock<Machine>,
    compiler: Compiler,
    config: MachineConfig,
    cache: PlanCache,
    mirrors: MirrorPool,
    leases: LeaseTable,
}

/// A shared read guard over the session's [`Machine`]. Dereferences to
/// [`Machine`]; any number of handles may read concurrently.
#[derive(Debug)]
pub struct MachineGuard<'a> {
    inner: RwLockReadGuard<'a, Machine>,
}

impl Deref for MachineGuard<'_> {
    type Target = Machine;
    fn deref(&self) -> &Machine {
        &self.inner
    }
}

/// An exclusive write guard over the session's [`Machine`].
/// Dereferences mutably to [`Machine`].
#[derive(Debug)]
pub struct MachineGuardMut<'a> {
    inner: RwLockWriteGuard<'a, Machine>,
}

impl Deref for MachineGuardMut<'_> {
    type Target = Machine;
    fn deref(&self) -> &Machine {
        &self.inner
    }
}

impl DerefMut for MachineGuardMut<'_> {
    fn deref_mut(&mut self) -> &mut Machine {
        &mut self.inner
    }
}

impl SessionShared {
    fn machine_read(&self) -> MachineGuard<'_> {
        MachineGuard {
            inner: self.machine.read().unwrap_or_else(|e| e.into_inner()),
        }
    }

    fn machine_write(&self) -> MachineGuardMut<'_> {
        MachineGuardMut {
            inner: self.machine.write().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// The cache-aware lookup: returns the shared artifact for `key`,
    /// building it exactly once across all handles and threads.
    ///
    /// Lock order (must never be violated elsewhere): lease table →
    /// shard lock → slot build lock → machine lock. The machine lock is
    /// always innermost (builds take it *without* a lease — they only
    /// touch freshly allocated fields, and the write lock itself
    /// excludes every concurrent reader), and eviction only ever
    /// *try*-locks slots.
    fn lookup_or_build(
        &self,
        binding: &StencilBinding<'_>,
        key: PlanKey,
        opts: &ExecOptions,
    ) -> Result<Arc<CompiledPlan>, SessionError> {
        let cache = &self.cache;
        let shard = &cache.shards[PlanCache::shard_index(&key)];
        // Fast path: find the entry under the shard read lock.
        let found = {
            let guard = shard.read().unwrap_or_else(|e| e.into_inner());
            guard
                .iter()
                .find(|e| e.key == key)
                .map(|e| Arc::clone(&e.slot))
        };
        let slot = match found {
            Some(slot) => slot,
            None => {
                let mut guard = shard.write().unwrap_or_else(|e| e.into_inner());
                match guard.iter().find(|e| e.key == key) {
                    Some(e) => Arc::clone(&e.slot),
                    None => {
                        let slot = Arc::new(PlanSlot {
                            plan: Mutex::new(None),
                            last_used: AtomicU64::new(0),
                        });
                        guard.push(CacheEntry {
                            key,
                            slot: Arc::clone(&slot),
                        });
                        slot
                    }
                }
            }
        };
        slot.last_used.store(
            cache.tick.fetch_add(1, Ordering::Relaxed) + 1,
            Ordering::Relaxed,
        );

        // The build-once lock: whoever finds the slot empty builds;
        // racing tenants block here and wake to the populated slot.
        let mut plan_guard = slot.plan.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(cp) = plan_guard.as_ref() {
            cache.hits.fetch_add(1, Ordering::Relaxed);
            cmcc_obs::add(cmcc_obs::Counter::PlanCacheHits, 1);
            return Ok(Arc::clone(cp));
        }
        cache.misses.fetch_add(1, Ordering::Relaxed);
        cmcc_obs::add(cmcc_obs::Counter::PlanCacheMisses, 1);
        let built = {
            let mut machine = self.machine_write();
            CompiledPlan::build(&mut machine, binding, opts, PlanLifetime::Persistent)
        };
        match built {
            Ok(cp) => {
                let cp = Arc::new(cp);
                *plan_guard = Some(Arc::clone(&cp));
                Ok(cp)
            }
            Err(e) => {
                // Unpublish the empty entry so the next tenant retries
                // as a builder instead of adopting a dead slot.
                drop(plan_guard);
                let mut guard = shard.write().unwrap_or_else(|e2| e2.into_inner());
                guard.retain(|entry| !(entry.key == key && Arc::ptr_eq(&entry.slot, &slot)));
                Err(e.into())
            }
        }
    }

    /// Frees every retired artifact whose last instance has dropped.
    /// Drains the retired list *before* touching the machine lock, so
    /// the machine lock stays innermost.
    fn sweep_retired(&self) {
        let drained: Vec<Arc<CompiledPlan>> = {
            let mut retired = self.cache.retired.lock().unwrap_or_else(|e| e.into_inner());
            std::mem::take(&mut *retired)
        };
        if drained.is_empty() {
            return;
        }
        let mut still_shared = Vec::new();
        let mut free = Vec::new();
        for arc in drained {
            match Arc::try_unwrap(arc) {
                Ok(cp) => free.push(cp),
                Err(arc) => still_shared.push(arc),
            }
        }
        if !free.is_empty() {
            let mut machine = self.machine_write();
            for cp in free {
                cp.release(&mut machine);
            }
        }
        if !still_shared.is_empty() {
            self.cache
                .retired
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .extend(still_shared);
        }
    }
}

/// One handle-local tenant instance over a shared artifact.
#[derive(Debug)]
struct LocalPlan {
    key: PlanKey,
    plan: ExecutionPlan,
    last_used: u64,
}

/// A machine plus a compiler targeting it: the convenient front door.
///
/// Every `run*` call is served through a **plan cache**: the first call
/// for a given (statement fingerprint, array shape, options) builds a
/// shared [`CompiledPlan`] — halo buffers, exchange programs,
/// pre-resolved strip schedule — and later calls replay it through a
/// handle-local [`runtime::PlanInstance`], rebased onto whichever arrays
/// are passed. Results and [`Measurement`]s are bit-identical to
/// uncached execution. The cache is bounded (least-recently-used plans
/// are evicted and their node memory freed once their last in-flight
/// instance retires) and is scoped to the session's shared state, so a
/// different machine configuration — a session created fresh — can never
/// observe a stale plan. A shape or options change simply keys a new
/// plan.
///
/// `Session` is a **cheap clonable handle**: clones share the machine,
/// compiler, plan cache, cache statistics, and mirror pool, while each
/// clone keeps its own plan instances and per-handle report. Clone one
/// session per thread for concurrent multi-tenant execution; a plan is
/// built exactly once no matter how many tenants race for it.
///
/// See the crate-level example. For full control (execution options,
/// alternative front ends, baselines) use the constituent crates
/// directly.
#[derive(Debug)]
pub struct Session {
    shared: Arc<SessionShared>,
    /// This handle's tenant instances over shared artifacts.
    plans: Vec<LocalPlan>,
    local_tick: u64,
    /// Telemetry delta of the most recent `run*` call (empty when
    /// profiling is disabled — see [`cmcc_obs::set_enabled`]).
    last_report: cmcc_obs::RunReport,
    /// Cache key of the most recent `run*` call, for [`Session::last_plan`].
    last_key: Option<PlanKey>,
    /// This handle's staged-scatter buffer, recycled across region-path
    /// executes so the concurrent path allocates nothing per run.
    stage: RegionStage,
}

impl Clone for Session {
    /// Clones the handle: the machine, compiler, plan cache, mirror
    /// pool, and lease table are shared; plan instances and per-handle
    /// state start empty.
    fn clone(&self) -> Self {
        Session {
            shared: Arc::clone(&self.shared),
            plans: Vec::new(),
            local_tick: 0,
            last_report: cmcc_obs::RunReport::default(),
            last_key: None,
            stage: RegionStage::new(),
        }
    }
}

impl Drop for Session {
    /// Retires this handle's instances, recycling their lane mirrors
    /// into the shared pool for future tenants.
    fn drop(&mut self) {
        for mut entry in self.plans.drain(..) {
            self.shared.mirrors.put(entry.plan.take_mirror());
        }
    }
}

impl Session {
    /// A session on the given machine configuration, with the default
    /// mirror-pool capacity ([`DEFAULT_MIRROR_POOL_CAPACITY`]).
    ///
    /// # Errors
    ///
    /// [`SessionError::Machine`] if the configuration is invalid.
    pub fn with_config(config: MachineConfig) -> Result<Self, SessionError> {
        Self::with_config_and_mirror_pool(config, DEFAULT_MIRROR_POOL_CAPACITY)
    }

    /// A session on the given machine configuration holding at most
    /// `mirror_pool` retired lane mirrors for recycling across tenant
    /// instances. Size it to the expected number of concurrently
    /// resident plans; takes past the pool's supply are counted as
    /// [`cmcc_obs::Counter::MirrorPoolMisses`].
    ///
    /// # Errors
    ///
    /// [`SessionError::Machine`] if the configuration is invalid.
    pub fn with_config_and_mirror_pool(
        config: MachineConfig,
        mirror_pool: usize,
    ) -> Result<Self, SessionError> {
        let machine = Machine::new(config.clone()).map_err(SessionError::Machine)?;
        Ok(Session {
            shared: Arc::new(SessionShared {
                machine: RwLock::new(machine),
                compiler: Compiler::new(config.clone()),
                config,
                cache: PlanCache::new(DEFAULT_PLAN_CACHE_CAPACITY),
                mirrors: MirrorPool::new(mirror_pool),
                leases: LeaseTable::default(),
            }),
            plans: Vec::new(),
            local_tick: 0,
            last_report: cmcc_obs::RunReport::default(),
            last_key: None,
            stage: RegionStage::new(),
        })
    }

    /// The paper's 16-node measurement board (4×4 nodes).
    ///
    /// # Errors
    ///
    /// Never in practice; propagates machine construction.
    pub fn test_board() -> Result<Self, SessionError> {
        Self::with_config(MachineConfig::test_board_16())
    }

    /// A full 2,048-node CM-2.
    ///
    /// # Errors
    ///
    /// Never in practice; propagates machine construction.
    pub fn full_machine() -> Result<Self, SessionError> {
        Self::with_config(MachineConfig::full_machine_2048())
    }

    /// A tiny 2×2-node machine for tests and doc examples.
    ///
    /// # Errors
    ///
    /// Never in practice; propagates machine construction.
    pub fn tiny() -> Result<Self, SessionError> {
        Self::with_config(MachineConfig::tiny_4())
    }

    /// The machine, behind a shared read guard. Hold it across several
    /// reads in one expression (`r.get(&session.machine(), 1, 1)`); it
    /// unlocks when the guard drops. Taking [`Session::machine_mut`] on
    /// the *same handle* while a guard from this method is live would
    /// deadlock — the `&mut self` receiver there makes that a
    /// compile-time error instead.
    pub fn machine(&self) -> MachineGuard<'_> {
        self.shared.machine_read()
    }

    /// The machine, behind an exclusive write guard.
    pub fn machine_mut(&mut self) -> MachineGuardMut<'_> {
        self.shared.machine_write()
    }

    /// The machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.shared.config
    }

    /// The compiler.
    pub fn compiler(&self) -> &Compiler {
        &self.shared.compiler
    }

    /// Compiles a Fortran array assignment statement.
    ///
    /// # Errors
    ///
    /// Any [`CompileError`].
    pub fn compile(&self, statement: &str) -> Result<CompiledStencil, SessionError> {
        Ok(self.shared.compiler.compile_assignment(statement)?)
    }

    /// Compiles a statement under the multi-source extension (several
    /// shifted arrays fused into one kernel — the paper's §9 future
    /// work).
    ///
    /// # Errors
    ///
    /// Any [`CompileError`].
    pub fn compile_extended(&self, statement: &str) -> Result<CompiledStencil, SessionError> {
        Ok(self
            .shared
            .compiler
            .compile_assignment_extended(statement)?)
    }

    /// Allocates a distributed array.
    ///
    /// # Errors
    ///
    /// Shape or memory errors from the run-time library.
    pub fn array(&mut self, rows: usize, cols: usize) -> Result<CmArray, SessionError> {
        Ok(CmArray::new(&mut self.machine_mut(), rows, cols)?)
    }

    /// Runs a compiled stencil with default options (cycle-accurate).
    ///
    /// # Errors
    ///
    /// Any [`RuntimeError`].
    pub fn run(
        &mut self,
        compiled: &CompiledStencil,
        result: &CmArray,
        source: &CmArray,
        coeffs: &[&CmArray],
    ) -> Result<Measurement, SessionError> {
        self.run_with_multi(compiled, result, &[source], coeffs, &ExecOptions::default())
    }

    /// Runs a compiled multi-source stencil with default options.
    ///
    /// # Errors
    ///
    /// Any [`RuntimeError`].
    pub fn run_multi(
        &mut self,
        compiled: &CompiledStencil,
        result: &CmArray,
        sources: &[&CmArray],
        coeffs: &[&CmArray],
    ) -> Result<Measurement, SessionError> {
        self.run_with_multi(compiled, result, sources, coeffs, &ExecOptions::default())
    }

    /// Runs a compiled multi-source stencil with explicit options.
    ///
    /// This is the cache-aware core every other `run*` method funnels
    /// into: the shared artifact is looked up (or built, exactly once
    /// across all handles) in the sharded cache, this handle's instance
    /// over it is rebound to the given arrays, and the instance executes
    /// under the machine write lock (no allocation, no schedule rebuild
    /// on the steady path).
    ///
    /// # Errors
    ///
    /// Any [`RuntimeError`].
    pub fn run_with_multi(
        &mut self,
        compiled: &CompiledStencil,
        result: &CmArray,
        sources: &[&CmArray],
        coeffs: &[&CmArray],
        opts: &ExecOptions,
    ) -> Result<Measurement, SessionError> {
        // Bind first: argument validation must not depend on the cache.
        let binding = StencilBinding::new(compiled, result, sources, coeffs)?;
        let key = PlanKey {
            fingerprint: compiled.fingerprint(),
            rows: result.rows(),
            cols: result.cols(),
            opts: *opts,
        };
        let shared = Arc::clone(&self.shared);
        let before = cmcc_obs::snapshot();
        self.last_key = Some(key);

        if shared.cache.capacity.load(Ordering::Relaxed) == 0 {
            // Caching disabled: build, run, and free in one breath. The
            // build allocates and releases node memory, so this path
            // leases the whole machine — it conflicts with (and so
            // serializes against) every concurrent execute.
            shared.cache.misses.fetch_add(1, Ordering::Relaxed);
            cmcc_obs::add(cmcc_obs::Counter::PlanCacheMisses, 1);
            let whole_machine = vec![LeaseRange {
                start: 0,
                end: usize::MAX,
                writable: true,
            }];
            let (lease, conflicted) = shared.leases.acquire(whole_machine);
            if conflicted {
                cmcc_obs::add(cmcc_obs::Counter::LeaseConflicts, 1);
            }
            let measurement = {
                let mut machine = shared.machine_write();
                let mut plan =
                    ExecutionPlan::build(&mut machine, &binding, opts, PlanLifetime::Persistent)?;
                let measurement = plan.execute(&mut machine)?;
                plan.release(&mut machine);
                measurement
            };
            drop(lease);
            self.last_report = cmcc_obs::snapshot().delta(&before);
            self.last_key = None;
            return Ok(measurement);
        }

        let cp = shared.lookup_or_build(&binding, key, opts)?;

        // This handle's instance over the artifact: reuse it when it
        // still tracks the cached artifact, replace it when the cache
        // entry was evicted and rebuilt behind our back.
        self.local_tick += 1;
        let existing = self.plans.iter().position(|e| e.key == key);
        let idx = match existing {
            Some(i) if Arc::ptr_eq(self.plans[i].plan.shared(), &cp) => i,
            other => {
                if let Some(i) = other {
                    let mut stale = self.plans.swap_remove(i);
                    shared.mirrors.put(stale.plan.take_mirror());
                }
                let mut plan = ExecutionPlan::from_shared(&cp, &binding)?;
                let (mirror, missed) = shared.mirrors.take_counted();
                if missed {
                    cmcc_obs::add(cmcc_obs::Counter::MirrorPoolMisses, 1);
                }
                plan.install_mirror(mirror);
                self.plans.push(LocalPlan {
                    key,
                    plan,
                    last_used: 0,
                });
                self.plans.len() - 1
            }
        };
        self.plans[idx].last_used = self.local_tick;
        self.plans[idx].plan.rebind(result, sources, coeffs)?;

        // Admission: lease the ranges this execute will touch. Every
        // execute holds a lease — even the exclusive fallback — so an
        // overlapping execute can never interleave between a region
        // tenant's read phase and its staged commit.
        let ranges = self.plans[idx].plan.lease_ranges();
        let (lease, conflicted) = shared.leases.acquire(ranges);
        let measurement = if conflicted {
            // The lease overlapped a live (or earlier-queued) lease:
            // after our FIFO turn, run bit-identically on the exclusive
            // write path.
            cmcc_obs::add(cmcc_obs::Counter::LeaseConflicts, 1);
            let mut machine = shared.machine_write();
            self.plans[idx].plan.execute(&mut machine)?
        } else if self.plans[idx].plan.region_eligible() {
            // Concurrent region path: gather and compute under the
            // shared lock, stage the scatter, commit it under a brief
            // write lock — the lease is held across both phases.
            shared.leases.region_grants.fetch_add(1, Ordering::Relaxed);
            cmcc_obs::add(cmcc_obs::Counter::RegionLeases, 1);
            let mut stage = std::mem::take(&mut self.stage);
            let measurement = {
                let machine = shared.machine_read();
                self.plans[idx].plan.execute_region(&machine, &mut stage)
            };
            {
                let mut machine = shared.machine_write();
                let _t = cmcc_obs::trace::scope(
                    cmcc_obs::trace::TraceOp::RegionCommit,
                    stage.ranges().len() as u64,
                );
                stage.apply(machine.exec_parts_mut().1);
            }
            self.stage = stage;
            measurement
        } else {
            // Not lane-resident (scalar engine, node-domain temporal,
            // lockstep strips): the kernels write node memory in place,
            // so run under the exclusive lock.
            let mut machine = shared.machine_write();
            self.plans[idx].plan.execute(&mut machine)?
        };
        drop(lease);
        self.last_report = cmcc_obs::snapshot().delta(&before);

        self.evict_over_capacity();
        self.trim_local_instances();
        shared.sweep_retired();
        Ok(measurement)
    }

    /// Evicts global-LRU cache entries until the cache fits its
    /// capacity. Entries mid-build (slot lock held by a builder) are
    /// skipped — they are by definition the most recently wanted.
    /// Evicted artifacts move to the retired list; their node memory is
    /// reclaimed by the next sweep once the last instance drops.
    fn evict_over_capacity(&mut self) {
        let shared = Arc::clone(&self.shared);
        let cache = &shared.cache;
        let capacity = cache.capacity.load(Ordering::Relaxed);
        let mut entries: Vec<(u64, usize, PlanKey)> = Vec::new();
        for (si, shard) in cache.shards.iter().enumerate() {
            let guard = shard.read().unwrap_or_else(|e| e.into_inner());
            for e in guard.iter() {
                entries.push((e.slot.last_used.load(Ordering::Relaxed), si, e.key));
            }
        }
        if entries.len() <= capacity {
            return;
        }
        entries.sort_unstable_by_key(|&(tick, _, _)| tick);
        let mut to_evict = entries.len() - capacity;
        for &(_, si, key) in entries.iter() {
            if to_evict == 0 {
                break;
            }
            let removed = {
                let mut guard = cache.shards[si].write().unwrap_or_else(|e| e.into_inner());
                match guard.iter().position(|e| e.key == key) {
                    Some(pos) => {
                        // Skip entries a builder currently holds.
                        let ready = guard[pos]
                            .slot
                            .plan
                            .try_lock()
                            .map(|g| g.is_some())
                            .unwrap_or(false);
                        if ready {
                            Some(guard.swap_remove(pos).slot)
                        } else {
                            None
                        }
                    }
                    None => None,
                }
            };
            if let Some(slot) = removed {
                to_evict -= 1;
                cache.evictions.fetch_add(1, Ordering::Relaxed);
                cache.shard_evictions[si].fetch_add(1, Ordering::Relaxed);
                cmcc_obs::add(cmcc_obs::Counter::PlanCacheEvictions, 1);
                // Our own instance over the evicted artifact is dead
                // weight now — retire it so the sweep can free the
                // artifact as soon as every other handle's has gone.
                self.drop_local_instance(&key);
                if let Some(cp) = slot.plan.lock().unwrap_or_else(|e| e.into_inner()).take() {
                    cache.retire(cp);
                }
            }
        }
    }

    fn drop_local_instance(&mut self, key: &PlanKey) {
        if let Some(i) = self.plans.iter().position(|e| e.key == *key) {
            let mut old = self.plans.swap_remove(i);
            self.shared.mirrors.put(old.plan.take_mirror());
        }
    }

    /// Bounds this handle's instance list by the cache capacity,
    /// retiring least-recently-used instances (their mirrors recycle
    /// through the pool).
    fn trim_local_instances(&mut self) {
        let cap = self.shared.cache.capacity.load(Ordering::Relaxed).max(1);
        while self.plans.len() > cap {
            let Some(i) = self
                .plans
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(i, _)| i)
            else {
                break;
            };
            let mut old = self.plans.swap_remove(i);
            self.shared.mirrors.put(old.plan.take_mirror());
        }
    }

    /// Plan-cache hit/miss/eviction counters, capacity, per-shard
    /// occupancy and evictions, and the in-flight shared-plan count.
    /// Shared across handle clones (one cache, one set of numbers).
    pub fn plan_cache_stats(&self) -> PlanCacheStats {
        let cache = &self.shared.cache;
        let mut stats = PlanCacheStats {
            hits: cache.hits.load(Ordering::Relaxed),
            misses: cache.misses.load(Ordering::Relaxed),
            evictions: cache.evictions.load(Ordering::Relaxed),
            capacity: cache.capacity.load(Ordering::Relaxed),
            ..PlanCacheStats::default()
        };
        for (i, shard) in cache.shards.iter().enumerate() {
            stats.shard_evictions[i] = cache.shard_evictions[i].load(Ordering::Relaxed);
            let guard = shard.read().unwrap_or_else(|e| e.into_inner());
            stats.shard_occupancy[i] = guard.len();
            for e in guard.iter() {
                if let Ok(slot) = e.slot.plan.try_lock() {
                    if let Some(cp) = slot.as_ref() {
                        if Arc::strong_count(cp) > 1 {
                            stats.shared_in_flight += 1;
                        }
                    }
                }
            }
        }
        stats.shared_in_flight += self
            .shared
            .cache
            .retired
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .len();
        stats
    }

    /// A snapshot of the region-lease table shared by every clone of
    /// this session: region grants, exclusive-fallback conflicts, the
    /// concurrency high-water mark, and the live/queued population
    /// (both zero whenever no execute is in flight).
    pub fn lease_stats(&self) -> LeaseStats {
        self.shared.leases.stats()
    }

    /// The shared mirror pool's capacity (see
    /// [`Session::with_config_and_mirror_pool`]).
    pub fn mirror_pool_capacity(&self) -> usize {
        self.shared.mirrors.capacity()
    }

    /// Mirror takes this session served with a fresh allocation because
    /// the pool was empty — the lifetime total behind
    /// [`cmcc_obs::Counter::MirrorPoolMisses`].
    pub fn mirror_pool_misses(&self) -> u64 {
        self.shared.mirrors.misses()
    }

    /// Telemetry recorded by the most recent `run*` call on *this
    /// handle*: the global [`cmcc_obs`] counter and span deltas
    /// bracketing that call. Empty when profiling was disabled (the
    /// counters never moved) or before the first run. Under concurrent
    /// tenants the bracket can include other threads' work — per-tenant
    /// attribution uses [`cmcc_obs::thread_snapshot`] instead.
    pub fn last_report(&self) -> cmcc_obs::RunReport {
        self.last_report
    }

    /// The plan instance the most recent `run*` call on this handle
    /// used, when it is still held — for inspecting analytic plan
    /// properties like [`ExecutionPlan::steady_state_copy_words`].
    pub fn last_plan(&self) -> Option<&ExecutionPlan> {
        let key = self.last_key?;
        self.plans.iter().find(|e| e.key == key).map(|e| &e.plan)
    }

    /// Number of plans currently cached, across all shards.
    pub fn cached_plans(&self) -> usize {
        self.shared
            .cache
            .shards
            .iter()
            .map(|s| s.read().unwrap_or_else(|e| e.into_inner()).len())
            .sum()
    }

    /// Changes how many plans the cache keeps globally (evicting
    /// immediately if the new bound is smaller — eviction accounting,
    /// including the per-shard counters, reflects the shrink). A
    /// capacity of zero disables caching for subsequent runs. Shared
    /// across handle clones.
    pub fn set_plan_cache_capacity(&mut self, capacity: usize) {
        self.shared
            .cache
            .capacity
            .store(capacity, Ordering::Relaxed);
        self.evict_over_capacity();
        self.trim_local_instances();
        self.shared.sweep_retired();
    }

    /// Drops every cached plan and frees its node memory (for artifacts
    /// other handles still execute, the memory follows when their last
    /// instance retires). Call after anything a plan could have captured
    /// changes out from under the cache — there is nothing of that kind
    /// today (machine configuration is fixed per session, and shape or
    /// option changes key new plans), but explicit invalidation keeps
    /// the escape hatch cheap.
    pub fn clear_plan_cache(&mut self) {
        for mut entry in self.plans.drain(..) {
            self.shared.mirrors.put(entry.plan.take_mirror());
        }
        self.last_key = None;
        let cache = &self.shared.cache;
        for shard in &cache.shards {
            let drained: Vec<CacheEntry> = {
                let mut guard = shard.write().unwrap_or_else(|e| e.into_inner());
                guard.drain(..).collect()
            };
            for entry in drained {
                if let Some(cp) = entry
                    .slot
                    .plan
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .take()
                {
                    cache.retire(cp);
                }
            }
        }
        self.shared.sweep_retired();
    }

    /// Runs with explicit options.
    ///
    /// # Errors
    ///
    /// Any [`RuntimeError`].
    pub fn run_with(
        &mut self,
        compiled: &CompiledStencil,
        result: &CmArray,
        source: &CmArray,
        coeffs: &[&CmArray],
        opts: &ExecOptions,
    ) -> Result<Measurement, SessionError> {
        self.run_with_multi(compiled, result, &[source], coeffs, opts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn session_round_trip() {
        let mut s = Session::tiny().unwrap();
        let c = s.compile("R = 0.5 * X + 0.5 * CSHIFT(X, 2, 1)").unwrap();
        let x = s.array(4, 4).unwrap();
        let r = s.array(4, 4).unwrap();
        x.fill(&mut s.machine_mut(), 2.0);
        let m = s.run(&c, &r, &x, &[]).unwrap();
        assert_eq!(r.get(&s.machine(), 1, 1), 2.0);
        assert!(m.cycles.total() > 0);
    }

    #[test]
    fn compile_errors_surface() {
        let s = Session::tiny().unwrap();
        let err = s.compile("R = X - Y").unwrap_err();
        assert!(err.to_string().contains("subtraction") || err.to_string().contains("stencil"));
        assert!(std::error::Error::source(&err).is_some());
    }

    #[test]
    fn cloned_handles_share_cache_and_machine() {
        let mut a = Session::tiny().unwrap();
        let c = a.compile("R = 0.5 * X + 0.5 * CSHIFT(X, 2, 1)").unwrap();
        let x = a.array(4, 4).unwrap();
        let r = a.array(4, 4).unwrap();
        x.fill(&mut a.machine_mut(), 3.0);
        a.run(&c, &r, &x, &[]).unwrap();
        assert_eq!(a.plan_cache_stats().misses, 1);

        // The clone sees the artifact the original built: no new build.
        let mut b = a.clone();
        b.run(&c, &r, &x, &[]).unwrap();
        let stats = b.plan_cache_stats();
        assert_eq!(stats.misses, 1, "clone rebuilt a cached plan");
        assert_eq!(stats.hits, 1);
        assert_eq!(r.get(&b.machine(), 1, 1), 3.0);
        assert!(stats.shared_in_flight >= 1);
        assert_eq!(
            stats.shard_occupancy.iter().sum::<usize>(),
            a.cached_plans()
        );
    }

    fn rw(start: usize, end: usize) -> LeaseRange {
        LeaseRange {
            start,
            end,
            writable: true,
        }
    }

    fn ro(start: usize, end: usize) -> LeaseRange {
        LeaseRange {
            start,
            end,
            writable: false,
        }
    }

    #[test]
    fn lease_table_grants_disjoint_and_read_read_overlap_immediately() {
        let table = LeaseTable::default();
        let (a, ca) = table.acquire(vec![ro(0, 100)]);
        let (b, cb) = table.acquire(vec![ro(50, 150)]); // read-read overlap
        let (c, cc) = table.acquire(vec![rw(150, 250)]); // end-exclusive: adjacent writer
        assert!(!ca && !cb && !cc, "no request may be marked conflicted");
        let stats = table.stats();
        assert_eq!(stats.live, 3);
        assert_eq!(stats.conflicts, 0);
        assert_eq!(stats.peak_concurrent, 3);
        drop(a);
        drop(b);
        drop(c);
        let stats = table.stats();
        assert_eq!(stats.live, 0, "released leases must leave the table");
        assert_eq!(stats.peak_concurrent, 3, "the high-water mark is monotone");
    }

    #[test]
    fn lease_conflict_blocks_fifo_but_disjoint_requests_barge_past() {
        let table = LeaseTable::default();
        std::thread::scope(|scope| {
            let (a, ca) = table.acquire(vec![rw(0, 100)]);
            assert!(!ca);
            let waiter = scope.spawn(|| {
                // Write-read overlap with the live lease: queued FIFO.
                let (g, conflicted) = table.acquire(vec![ro(50, 150)]);
                assert!(conflicted, "overlapping request must report the conflict");
                drop(g);
            });
            while table.stats().queued == 0 {
                std::thread::yield_now();
            }
            // A request disjoint from both the live lease and the queued
            // waiter is granted immediately — FIFO fairness never stalls
            // unrelated executes.
            let (d, dc) = table.acquire(vec![rw(300, 400)]);
            assert!(
                !dc,
                "disjoint request must not inherit the queue's conflict"
            );
            drop(d);
            assert_eq!(
                table.stats().queued,
                1,
                "the waiter stays queued until release"
            );
            drop(a);
            waiter.join().expect("waiter panicked");
        });
        let stats = table.stats();
        assert_eq!(
            stats.conflicts, 1,
            "exactly the overlapping request conflicts"
        );
        assert_eq!(stats.live, 0);
        assert_eq!(stats.queued, 0);
    }

    #[test]
    fn lease_released_when_the_holder_panics() {
        let table = LeaseTable::default();
        let died = std::thread::scope(|scope| {
            scope
                .spawn(|| {
                    let (_lease, _) = table.acquire(vec![rw(0, 100)]);
                    panic!("execute dies while holding its lease");
                })
                .join()
        });
        assert!(died.is_err(), "holder thread must have panicked");
        let stats = table.stats();
        assert_eq!(stats.live, 0, "unwind must release the lease");
        assert_eq!(stats.queued, 0);
        // The range is immediately reacquirable with no queueing — the
        // table survived the poison and the dead holder's ticket.
        let (_lease, conflicted) = table.acquire(vec![rw(0, 100)]);
        assert!(!conflicted, "a released range must not conflict");
    }
}
