//! Deterministic randomness and a minimal property-test harness.
//!
//! The workspace builds in hermetic environments with no access to a
//! crates.io mirror, so the usual `rand`/`proptest` stack is replaced by
//! this tiny, dependency-free equivalent: [`Rng`] is a SplitMix64
//! generator (Steele, Lea & Flood, OOPSLA 2014 — fittingly, a Guy Steele
//! generator for a Guy Steele paper), and [`property`] runs a closure over
//! many independently seeded cases, reporting the failing case's seed so
//! it can be replayed with [`Rng::new`].
//!
//! # Examples
//!
//! ```
//! use cmcc_testkit::{property, Rng};
//!
//! // Deterministic: the same seed always yields the same stream.
//! let mut a = Rng::new(7);
//! let mut b = Rng::new(7);
//! assert_eq!(a.next_u64(), b.next_u64());
//!
//! property("addition commutes", 32, |rng| {
//!     let x = rng.i64_in(-1000, 1000);
//!     let y = rng.i64_in(-1000, 1000);
//!     assert_eq!(x + y, y + x);
//! });
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// A SplitMix64 pseudo-random generator: tiny state, full 64-bit output,
/// passes BigCrush, and — crucially here — bit-for-bit reproducible
/// everywhere from a single `u64` seed.
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a generator from a seed. Equal seeds give equal streams.
    pub fn new(seed: u64) -> Self {
        Rng { state: seed }
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn f64_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform `f32` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn f32_in(&mut self, lo: f32, hi: f32) -> f32 {
        assert!(lo < hi, "empty f32 range {lo}..{hi}");
        lo + (self.f64_unit() as f32) * (hi - lo)
    }

    /// A uniform `u64` below `bound` (`0` when `bound == 0`).
    pub fn u64_below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        // Debiased multiply-shift (Lemire): fine at test-harness scale.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// A uniform `usize` in the half-open range `lo..hi`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty usize range {lo}..{hi}");
        lo + self.u64_below((hi - lo) as u64) as usize
    }

    /// A uniform `i64` in the *inclusive* range `lo..=hi`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn i64_in(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "empty i64 range {lo}..={hi}");
        lo + self.u64_below((hi - lo) as u64 + 1) as i64
    }

    /// A uniform `i32` in the *inclusive* range `lo..=hi`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn i32_in(&mut self, lo: i32, hi: i32) -> i32 {
        self.i64_in(i64::from(lo), i64::from(hi)) as i32
    }

    /// A fair coin.
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// `true` with probability `num / den`.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0`.
    pub fn ratio(&mut self, num: u64, den: u64) -> bool {
        assert!(den > 0, "zero denominator");
        self.u64_below(den) < num
    }

    /// A uniformly chosen element of `items`.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "pick from empty slice");
        &items[self.usize_in(0, items.len())]
    }
}

/// Number of cases [`property`] runs when the caller asks for `n`:
/// honours the `CMCC_PROPERTY_CASES` environment variable as an override
/// (useful to crank coverage up in CI or down while bisecting).
fn case_count(requested: u64) -> u64 {
    std::env::var("CMCC_PROPERTY_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(requested)
}

/// Runs `f` over `cases` independently seeded random cases.
///
/// Each case gets its own [`Rng`] with a seed derived from the property
/// name and the case index, so adding cases to one property never
/// perturbs another. On failure the harness prints the property name,
/// case index, and seed (replayable via [`Rng::new`]) and re-raises the
/// panic.
///
/// # Panics
///
/// Re-raises whatever panic `f` raised, after printing the failing seed.
pub fn property(name: &str, cases: u64, f: impl Fn(&mut Rng)) {
    for case in 0..case_count(cases) {
        let seed = seed_for(name, case);
        let mut rng = Rng::new(seed);
        if let Err(panic) = catch_unwind(AssertUnwindSafe(|| f(&mut rng))) {
            eprintln!("property `{name}` failed at case {case}: replay with Rng::new({seed:#x})");
            resume_unwind(panic);
        }
    }
}

/// FNV-1a over the property name, mixed with the case index.
fn seed_for(name: &str, case: u64) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic() {
        let a: Vec<u64> = (0..10)
            .map({
                let mut r = Rng::new(42);
                move |_| r.next_u64()
            })
            .collect();
        let b: Vec<u64> = (0..10)
            .map({
                let mut r = Rng::new(42);
                move |_| r.next_u64()
            })
            .collect();
        assert_eq!(a, b);
        let c: Vec<u64> = (0..10)
            .map({
                let mut r = Rng::new(43);
                move |_| r.next_u64()
            })
            .collect();
        assert_ne!(a, c);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = Rng::new(1);
        for _ in 0..10_000 {
            let u = r.usize_in(3, 17);
            assert!((3..17).contains(&u));
            let i = r.i64_in(-5, 5);
            assert!((-5..=5).contains(&i));
            let f = r.f32_in(-1.0, 1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn u64_below_zero_bound_is_zero() {
        let mut r = Rng::new(1);
        assert_eq!(r.u64_below(0), 0);
    }

    #[test]
    fn pick_covers_all_elements() {
        let mut r = Rng::new(9);
        let items = [1, 2, 3, 4];
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[*r.pick(&items) as usize - 1] = true;
        }
        assert_eq!(seen, [true; 4]);
    }

    #[test]
    fn property_runs_every_case() {
        let counter = std::sync::atomic::AtomicU64::new(0);
        property("counting", 25, |_| {
            counter.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        });
        // Honour the env override if one is set in this environment.
        assert_eq!(counter.into_inner(), case_count(25));
    }

    #[test]
    fn property_reports_and_reraises_failures() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            property("always fails", 5, |_| panic!("boom"));
        }));
        assert!(result.is_err());
    }

    #[test]
    fn seeds_differ_across_properties_and_cases() {
        assert_ne!(seed_for("a", 0), seed_for("b", 0));
        assert_ne!(seed_for("a", 0), seed_for("a", 1));
    }
}
