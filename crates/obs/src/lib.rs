//! Run telemetry for the convolution compiler: span timers, counters,
//! and the unified [`RunReport`].
//!
//! The paper's headline claim is a *measured* number — sustained
//! gigaflops built from per-phase accounting of FPU cycles,
//! halo-exchange traffic, and strip-mining overhead (§6). The
//! reproduction computes the same quantities, but they were historically
//! scattered across engines (`StripRun` counters, `Measurement`s,
//! `steady_state_copy_words`) and visible only to ad-hoc bench binaries.
//! This crate is the one place they meet:
//!
//! * **counters** — atomic event and word counts ([`Counter`]), covering
//!   the compile phases, the plan cache, halo-exchange traffic split into
//!   edge and corner steps, lane gather/scatter words, the strip-mine
//!   width distribution, and per-engine execution;
//! * **spans** — wall-clock phase timers ([`Phase`], [`span`]) for the
//!   compile pipeline (recognize → multistencil → regalloc → unroll) and
//!   the plan lifecycle (build, rebind, execute);
//! * **[`RunReport`]** — an immutable snapshot of everything above, with
//!   delta arithmetic, a human-readable table, and a schema-stable JSON
//!   rendering (`cmcc-profile` report object, documented in DESIGN.md
//!   §13).
//!
//! Telemetry is **off by default** and costs one relaxed atomic load per
//! site when disabled. Enable it programmatically with [`set_enabled`]
//! or by setting the `CMCC_PROFILE` environment variable to anything
//! other than empty or `0` (the variable is read once, on first use).
//!
//! The crate deliberately has zero dependencies and no knowledge of the
//! machine model: producers record raw counts, consumers (the `cmcc`
//! driver, `Session::last_report`) derive rates and fractions.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod hist;
pub mod trace;

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Every counter the telemetry layer tracks, in schema order.
///
/// Counters are machine-total (summed over nodes) unless noted. Word
/// counts are 32-bit words; multiply by four for bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Counter {
    /// Execution plans built ([`ExecutionPlan::build`] calls).
    ///
    /// [`ExecutionPlan::build`]: https://docs.rs/cmcc-runtime
    PlanBuilds,
    /// Plans retargeted in place (`ExecutionPlan::rebind` calls).
    PlanRebinds,
    /// Session plan-cache hits (runs served by rebinding a cached plan).
    PlanCacheHits,
    /// Session plan-cache misses (runs that built a fresh plan).
    PlanCacheMisses,
    /// Cached plans evicted (LRU bound or capacity shrink).
    PlanCacheEvictions,
    /// Halo-exchange words moved by the edge step (the four-neighbor
    /// NEWS sections), machine-total.
    ExchangeEdgeWords,
    /// Halo-exchange words moved by the corner step (diagonal sections;
    /// zero when the corner step is skipped), machine-total.
    ExchangeCornerWords,
    /// Words copied refreshing halo-buffer interiors from source arrays
    /// (node-domain `fill_interior` plus the lane-domain rectangle
    /// gather), machine-total.
    InteriorRefreshWords,
    /// Words gathered from node memories into lane mirrors (full-view
    /// gathers, including the one-time priming gather of a lane-resident
    /// plan), machine-total.
    GatherWords,
    /// Words scattered from lane mirrors back to node memories (writable
    /// ranges only), machine-total.
    ScatterWords,
    /// Half-strips resolved at width 8 (counted at plan build).
    StripsWidth8,
    /// Half-strips resolved at width 4.
    StripsWidth4,
    /// Half-strips resolved at width 2.
    StripsWidth2,
    /// Half-strips resolved at width 1.
    StripsWidth1,
    /// Plan executes served by the node-outer scalar interpreter.
    ScalarRuns,
    /// Plan executes served by the lockstep broadcast engine with
    /// per-execute gather/scatter.
    LockstepRuns,
    /// Plan executes served by the lane-resident steady state.
    LaneResidentRuns,
    /// Resolved kernel steps interpreted by the scalar engine (per-node;
    /// every node replays the same stream).
    ScalarSteps,
    /// Resolved kernel steps broadcast by the lockstep engine (each step
    /// counted once, as the hardware would dispatch it).
    LockstepSteps,
    /// Lockstep steps served by the monomorphized kernel tier (strips
    /// whose MAC bursts matched a pregenerated kernel variant). A subset
    /// of [`Counter::LockstepSteps`].
    KernelizedSteps,
    /// Lockstep steps that fell back to per-step interpretation (strips
    /// the kernel classifier rejected, or the kernel tier disabled). The
    /// complement of [`Counter::KernelizedSteps`] within
    /// [`Counter::LockstepSteps`].
    InterpretedSteps,
    /// Lane-mirror buffer (re)allocations. Zero across a steady state.
    MirrorAllocations,
    /// Halo exchanges run (node-domain or lane-domain, one per program
    /// run). Temporal tiling divides this by the fused depth: `k` time
    /// steps share one exchange.
    HaloExchanges,
    /// Time steps advanced by fused (temporal-tiling) executes: each
    /// execute adds its plan's effective temporal depth. Equal to the
    /// execute count when no plan fuses.
    FusedSteps,
    /// Temporal-depth requests the planner clamped back to 1 (scalar
    /// engine, cycle mode, multi-source or pointwise stencils,
    /// non-resident lanes, or a subgrid smaller than `k·radius`).
    TemporalFallbacks,
    /// Useful floating-point operations (the paper's numerator: interior
    /// results only, no halo redundancy), accumulated per execute.
    UsefulFlops,
    /// Total floating-point operations issued (2 per multiply-add,
    /// including dummy-thread padding and halo-region work),
    /// machine-total.
    TotalFlops,
    /// Mirror-pool takes that found the free list empty and allocated a
    /// fresh mirror. A steadily nonzero rate under a stable tenant count
    /// means the pool capacity is too small for the working set.
    MirrorPoolMisses,
    /// Region leases granted: executes admitted to the shared-lock
    /// region path (no overlapping live lease, plan eligible).
    RegionLeases,
    /// Lease conflicts: executes that found an overlapping live lease
    /// and fell back to the exclusive write path after waiting their
    /// FIFO turn.
    LeaseConflicts,
    /// High-water mark of simultaneously in-flight executes observed by
    /// the lease table. Recorded as monotone increments, so a snapshot
    /// reads the true peak; greater than 1 proves region leasing
    /// actually overlapped two executes.
    ConcurrentExecutesPeak,
    /// Trace events dropped because a thread's flight-recorder ring
    /// ([`trace`]) was full. Earlier events in a full ring stay intact;
    /// only the overflow is lost, and this counter says how much.
    TraceDrops,
}

/// Number of [`Counter`] variants.
pub const COUNTER_COUNT: usize = Counter::TraceDrops as usize + 1;

impl Counter {
    /// All counters, in schema order.
    pub const ALL: [Counter; COUNTER_COUNT] = [
        Counter::PlanBuilds,
        Counter::PlanRebinds,
        Counter::PlanCacheHits,
        Counter::PlanCacheMisses,
        Counter::PlanCacheEvictions,
        Counter::ExchangeEdgeWords,
        Counter::ExchangeCornerWords,
        Counter::InteriorRefreshWords,
        Counter::GatherWords,
        Counter::ScatterWords,
        Counter::StripsWidth8,
        Counter::StripsWidth4,
        Counter::StripsWidth2,
        Counter::StripsWidth1,
        Counter::ScalarRuns,
        Counter::LockstepRuns,
        Counter::LaneResidentRuns,
        Counter::ScalarSteps,
        Counter::LockstepSteps,
        Counter::KernelizedSteps,
        Counter::InterpretedSteps,
        Counter::MirrorAllocations,
        Counter::HaloExchanges,
        Counter::FusedSteps,
        Counter::TemporalFallbacks,
        Counter::UsefulFlops,
        Counter::TotalFlops,
        Counter::MirrorPoolMisses,
        Counter::RegionLeases,
        Counter::LeaseConflicts,
        Counter::ConcurrentExecutesPeak,
        Counter::TraceDrops,
    ];

    /// The counter's stable JSON key.
    pub fn key(self) -> &'static str {
        match self {
            Counter::PlanBuilds => "builds",
            Counter::PlanRebinds => "rebinds",
            Counter::PlanCacheHits => "cache_hits",
            Counter::PlanCacheMisses => "cache_misses",
            Counter::PlanCacheEvictions => "cache_evictions",
            Counter::ExchangeEdgeWords => "edge_words",
            Counter::ExchangeCornerWords => "corner_words",
            Counter::InteriorRefreshWords => "interior_words",
            Counter::GatherWords => "gather_words",
            Counter::ScatterWords => "scatter_words",
            Counter::StripsWidth8 => "width8",
            Counter::StripsWidth4 => "width4",
            Counter::StripsWidth2 => "width2",
            Counter::StripsWidth1 => "width1",
            Counter::ScalarRuns => "scalar_runs",
            Counter::LockstepRuns => "lockstep_runs",
            Counter::LaneResidentRuns => "lane_resident_runs",
            Counter::ScalarSteps => "scalar_steps",
            Counter::LockstepSteps => "lockstep_steps",
            Counter::KernelizedSteps => "kernelized_steps",
            Counter::InterpretedSteps => "interpreted_steps",
            Counter::MirrorAllocations => "mirror_allocations",
            Counter::HaloExchanges => "halo_exchanges",
            Counter::FusedSteps => "fused_steps",
            Counter::TemporalFallbacks => "temporal_fallbacks",
            Counter::UsefulFlops => "useful_flops",
            Counter::TotalFlops => "total_flops",
            Counter::MirrorPoolMisses => "mirror_pool_misses",
            Counter::RegionLeases => "region_leases",
            Counter::LeaseConflicts => "lease_conflicts",
            Counter::ConcurrentExecutesPeak => "concurrent_executes_peak",
            Counter::TraceDrops => "trace_drops",
        }
    }
}

/// Timed phases of the compile and run pipeline, in schema order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Phase {
    /// Pattern matching: parse tree → recognized stencil spec.
    Recognize,
    /// Multistencil construction for one candidate width.
    Multistencil,
    /// Ring planning plus register assignment for one width.
    Regalloc,
    /// Kernel line emission and unrolling for one width.
    Unroll,
    /// Execution-plan construction.
    PlanBuild,
    /// Execution-plan retargeting.
    PlanRebind,
    /// One plan execute (exchange + kernel run + accounting).
    Execute,
    /// Per-worker kernel time inside an execute's thread fan-out. Summed
    /// across workers this is CPU time; `Execute` is wall time. The two
    /// coincide when the plan runs single-threaded.
    ExecuteWorkers,
}

/// Number of [`Phase`] variants.
pub const PHASE_COUNT: usize = Phase::ExecuteWorkers as usize + 1;

impl Phase {
    /// All phases, in schema order.
    pub const ALL: [Phase; PHASE_COUNT] = [
        Phase::Recognize,
        Phase::Multistencil,
        Phase::Regalloc,
        Phase::Unroll,
        Phase::PlanBuild,
        Phase::PlanRebind,
        Phase::Execute,
        Phase::ExecuteWorkers,
    ];

    /// The phase's stable JSON key stem (`<stem>_ns`, `<stem>_calls`).
    pub fn key(self) -> &'static str {
        match self {
            Phase::Recognize => "recognize",
            Phase::Multistencil => "multistencil",
            Phase::Regalloc => "regalloc",
            Phase::Unroll => "unroll",
            Phase::PlanBuild => "plan_build",
            Phase::PlanRebind => "plan_rebind",
            Phase::Execute => "execute",
            Phase::ExecuteWorkers => "execute_workers",
        }
    }
}

/// 0 = undecided (consult `CMCC_PROFILE` on first use), 1 = off, 2 = on.
static ENABLED: AtomicU8 = AtomicU8::new(0);

/// One thread's private slice of the telemetry state.
///
/// Every recording site writes to its own thread's shard, so concurrent
/// executes never contend on a shared cache line; readers aggregate
/// lazily at snapshot time. The slots stay atomics (relaxed) because
/// snapshotting threads read them while the owner writes — no ordering
/// is needed, only tear-free loads.
#[derive(Debug)]
struct ObsShard {
    counters: [AtomicU64; COUNTER_COUNT],
    phase_nanos: [AtomicU64; PHASE_COUNT],
    phase_calls: [AtomicU64; PHASE_COUNT],
    kernel_hits: [AtomicU64; KERNEL_VARIANT_CAP],
}

impl ObsShard {
    const fn new() -> Self {
        ObsShard {
            counters: [const { AtomicU64::new(0) }; COUNTER_COUNT],
            phase_nanos: [const { AtomicU64::new(0) }; PHASE_COUNT],
            phase_calls: [const { AtomicU64::new(0) }; PHASE_COUNT],
            kernel_hits: [const { AtomicU64::new(0) }; KERNEL_VARIANT_CAP],
        }
    }

    fn zero(&self) {
        for slot in self
            .counters
            .iter()
            .chain(&self.phase_nanos)
            .chain(&self.phase_calls)
            .chain(&self.kernel_hits)
        {
            slot.store(0, Ordering::Relaxed);
        }
    }
}

/// Counts retired by threads that have exited: their shards fold in here
/// (under the registry lock) so process totals stay exact while the
/// registry stays bounded by the number of *live* recording threads.
static RETIRED: ObsShard = ObsShard::new();

/// Every live thread's shard, for lazy aggregation. Locked only on
/// thread birth/death, snapshot, and reset — never on the record path.
static REGISTRY: Mutex<Vec<Arc<ObsShard>>> = Mutex::new(Vec::new());

fn registry() -> std::sync::MutexGuard<'static, Vec<Arc<ObsShard>>> {
    REGISTRY.lock().unwrap_or_else(|e| e.into_inner())
}

/// Folds `src` into `dst` slot by slot (relaxed; caller holds the
/// registry lock when exactness matters).
fn fold_into(dst: &ObsShard, src: &ObsShard) {
    for (d, s) in dst
        .counters
        .iter()
        .zip(&src.counters)
        .chain(dst.phase_nanos.iter().zip(&src.phase_nanos))
        .chain(dst.phase_calls.iter().zip(&src.phase_calls))
        .chain(dst.kernel_hits.iter().zip(&src.kernel_hits))
    {
        d.fetch_add(s.load(Ordering::Relaxed), Ordering::Relaxed);
    }
}

/// Owns a thread's registration; dropping it (thread exit) folds the
/// shard into [`RETIRED`] and unregisters it under the registry lock, so
/// a concurrent [`snapshot`] sees each count exactly once.
struct ShardGuard(Arc<ObsShard>);

impl Drop for ShardGuard {
    fn drop(&mut self) {
        let mut reg = registry();
        fold_into(&RETIRED, &self.0);
        reg.retain(|s| !Arc::ptr_eq(s, &self.0));
    }
}

thread_local! {
    static SHARD: ShardGuard = {
        let shard = Arc::new(ObsShard::new());
        registry().push(Arc::clone(&shard));
        ShardGuard(shard)
    };
}

/// Runs `f` against the calling thread's shard. During thread teardown
/// (the TLS slot already destroyed) the write goes straight to the
/// retired accumulator instead of being lost.
#[inline]
fn with_shard<F: FnOnce(&ObsShard)>(f: F) {
    let mut f = Some(f);
    let _ = SHARD.try_with(|guard| (f.take().expect("with_shard runs once"))(&guard.0));
    if let Some(f) = f {
        f(&RETIRED);
    }
}

/// Whether telemetry is currently recording.
///
/// The first call (unless [`set_enabled`] ran earlier) latches the
/// `CMCC_PROFILE` environment variable: unset, empty, or `0` means off.
#[inline]
pub fn enabled() -> bool {
    match ENABLED.load(Ordering::Relaxed) {
        0 => {
            let on = std::env::var("CMCC_PROFILE")
                .map(|v| !v.is_empty() && v != "0")
                .unwrap_or(false);
            ENABLED.store(if on { 2 } else { 1 }, Ordering::Relaxed);
            on
        }
        1 => false,
        _ => true,
    }
}

/// Turns telemetry on or off for the whole process, overriding the
/// environment. Counters keep their values; use [`reset`] to zero them.
pub fn set_enabled(on: bool) {
    ENABLED.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

/// Adds `n` to a counter. One relaxed load and an early return when
/// telemetry is disabled; when enabled, the write lands on the calling
/// thread's private shard (no cross-thread contention).
#[inline]
pub fn add(counter: Counter, n: u64) {
    if enabled() {
        with_shard(|s| {
            s.counters[counter as usize].fetch_add(n, Ordering::Relaxed);
        });
    }
}

/// A live span timer: created by [`span`], records its elapsed wall time
/// under its [`Phase`] when dropped. Does not read the clock at all when
/// both telemetry and tracing are disabled.
#[derive(Debug)]
#[must_use = "a span measures the scope it is bound to; binding it to _ drops it immediately"]
pub struct Span {
    phase: Phase,
    start: Option<Instant>,
    traced: bool,
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            with_shard(|s| {
                s.phase_nanos[self.phase as usize].fetch_add(nanos, Ordering::Relaxed);
                s.phase_calls[self.phase as usize].fetch_add(1, Ordering::Relaxed);
            });
        }
        if self.traced {
            trace::record(
                trace::TraceKind::End,
                trace::TraceOp::from_phase(self.phase),
                0,
            );
        }
    }
}

/// Starts timing `phase`; the returned guard records on drop.
///
/// When the flight recorder is on ([`trace::trace_enabled`]), the span
/// additionally emits a trace begin event now and the matching end event
/// on drop, so every profiled phase shows up on the timeline for free.
#[inline]
pub fn span(phase: Phase) -> Span {
    let traced = trace::trace_enabled();
    if traced {
        trace::record(
            trace::TraceKind::Begin,
            trace::TraceOp::from_phase(phase),
            0,
        );
    }
    Span {
        phase,
        start: enabled().then(Instant::now),
        traced,
    }
}

/// Zeroes every counter and span accumulator — the retired accumulator
/// and every live thread's shard (the enable state is kept).
pub fn reset() {
    let reg = registry();
    RETIRED.zero();
    for shard in reg.iter() {
        shard.zero();
    }
}

/// Capacity of the kernel-variant hit table. Producers (the lockstep
/// kernel tier in `cmcc-cm2`) own the variant-id space and its naming;
/// this crate only stores the counts, so the table stays generic.
pub const KERNEL_VARIANT_CAP: usize = 64;

/// Records one dispatch of kernel variant `id`. Out-of-range ids (at or
/// above [`KERNEL_VARIANT_CAP`]) are dropped rather than panicking so a
/// grown family degrades to missing telemetry, not a crash.
#[inline]
pub fn kernel_hit(id: usize) {
    if enabled() && id < KERNEL_VARIANT_CAP {
        with_shard(|s| {
            s.kernel_hits[id].fetch_add(1, Ordering::Relaxed);
        });
    }
}

/// A snapshot of the kernel-variant hit table, aggregated across all
/// thread shards. Per-variant hits are deliberately not part of
/// [`RunReport`] (the profile JSON schema keys only the
/// `kernelized_steps` / `interpreted_steps` split); callers that want a
/// mix bracket two of these snapshots and subtract.
pub fn kernel_hits() -> [u64; KERNEL_VARIANT_CAP] {
    let mut out = [0u64; KERNEL_VARIANT_CAP];
    let reg = registry();
    for shard in std::iter::once(&RETIRED).chain(reg.iter().map(Arc::as_ref)) {
        for (o, h) in out.iter_mut().zip(&shard.kernel_hits) {
            *o += h.load(Ordering::Relaxed);
        }
    }
    out
}

/// An immutable snapshot of every counter and span accumulator.
///
/// Reports subtract ([`RunReport::delta`]) so a caller can bracket one
/// run — `Session::last_report` does exactly that — and they render as a
/// human table ([`RunReport::render_table`]) or the schema-stable JSON
/// object documented in DESIGN.md §13 ([`RunReport::to_json`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunReport {
    enabled: bool,
    counters: [u64; COUNTER_COUNT],
    phase_nanos: [u64; PHASE_COUNT],
    phase_calls: [u64; PHASE_COUNT],
}

fn accumulate(report: &mut RunReport, shard: &ObsShard) {
    for (slot, c) in report.counters.iter_mut().zip(&shard.counters) {
        *slot = slot.saturating_add(c.load(Ordering::Relaxed));
    }
    for (slot, n) in report.phase_nanos.iter_mut().zip(&shard.phase_nanos) {
        *slot = slot.saturating_add(n.load(Ordering::Relaxed));
    }
    for (slot, n) in report.phase_calls.iter_mut().zip(&shard.phase_calls) {
        *slot = slot.saturating_add(n.load(Ordering::Relaxed));
    }
}

/// Takes a process-wide snapshot of the current telemetry state: the
/// lazy aggregation of every live thread's shard plus the retired
/// accumulator, under the registry lock (so a thread retiring mid-read
/// is counted exactly once).
pub fn snapshot() -> RunReport {
    let mut report = RunReport {
        enabled: enabled(),
        ..RunReport::default()
    };
    let reg = registry();
    accumulate(&mut report, &RETIRED);
    for shard in reg.iter() {
        accumulate(&mut report, shard);
    }
    report
}

/// Takes a snapshot of only the *calling thread's* shard — what this
/// thread recorded since it first recorded (or since the last [`reset`]).
///
/// This is the per-tenant attribution primitive behind the driver's
/// `--serve` stats: a worker brackets its own work with two of these and
/// subtracts, unpolluted by concurrent tenants. Counts recorded by
/// worker pools the runtime spawns internally land on *their* threads,
/// not this one, so per-tenant attribution expects single-threaded
/// execution options.
pub fn thread_snapshot() -> RunReport {
    let mut report = RunReport {
        enabled: enabled(),
        ..RunReport::default()
    };
    let _ = SHARD.try_with(|guard| accumulate(&mut report, &guard.0));
    report
}

impl RunReport {
    /// Whether telemetry was enabled when this snapshot was taken.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// The value of one counter.
    pub fn get(&self, counter: Counter) -> u64 {
        self.counters[counter as usize]
    }

    /// Accumulated wall nanoseconds of one phase.
    pub fn phase_nanos(&self, phase: Phase) -> u64 {
        self.phase_nanos[phase as usize]
    }

    /// Number of completed spans of one phase.
    pub fn phase_calls(&self, phase: Phase) -> u64 {
        self.phase_calls[phase as usize]
    }

    /// The counters and spans accumulated since `earlier` (saturating,
    /// so a reset between snapshots yields zeros rather than wrapping).
    pub fn delta(&self, earlier: &RunReport) -> RunReport {
        let mut out = *self;
        for (slot, old) in out.counters.iter_mut().zip(&earlier.counters) {
            *slot = slot.saturating_sub(*old);
        }
        for (slot, old) in out.phase_nanos.iter_mut().zip(&earlier.phase_nanos) {
            *slot = slot.saturating_sub(*old);
        }
        for (slot, old) in out.phase_calls.iter_mut().zip(&earlier.phase_calls) {
            *slot = slot.saturating_sub(*old);
        }
        out
    }

    /// Sums two reports slot by slot — used to attribute separately
    /// bracketed work to one report, e.g. a statement's compile-time
    /// spans merged into its run report (saturating, like the counters
    /// themselves).
    pub fn merge(&self, other: &RunReport) -> RunReport {
        let mut out = *self;
        out.enabled = self.enabled || other.enabled;
        for (slot, more) in out.counters.iter_mut().zip(&other.counters) {
            *slot = slot.saturating_add(*more);
        }
        for (slot, more) in out.phase_nanos.iter_mut().zip(&other.phase_nanos) {
            *slot = slot.saturating_add(*more);
        }
        for (slot, more) in out.phase_calls.iter_mut().zip(&other.phase_calls) {
            *slot = slot.saturating_add(*more);
        }
        out
    }

    /// Whether the report recorded nothing: every counter and span zero.
    /// A run performed with telemetry disabled yields an empty report.
    pub fn is_empty(&self) -> bool {
        self.counters.iter().all(|&c| c == 0)
            && self.phase_nanos.iter().all(|&n| n == 0)
            && self.phase_calls.iter().all(|&n| n == 0)
    }

    /// Machine-total words copied by the runtime: exchange edge + corner
    /// steps, interior refresh, and lane gather/scatter. This is the
    /// observed counterpart of the plan's analytic
    /// `steady_state_copy_words` prediction.
    pub fn copy_words(&self) -> u64 {
        self.get(Counter::ExchangeEdgeWords)
            + self.get(Counter::ExchangeCornerWords)
            + self.get(Counter::InteriorRefreshWords)
            + self.get(Counter::GatherWords)
            + self.get(Counter::ScatterWords)
    }

    /// Renders the report as the schema-stable JSON object embedded in
    /// `cmcc --profile=json` output (the `"report"` value): five fixed
    /// sub-objects — `compile`, `plan`, `exchange`, `strips`, `exec` —
    /// whose keys are documented in DESIGN.md §13 and never reordered.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let c = |counter: Counter| self.get(counter);
        write!(s, "{{\"enabled\":{}", self.enabled).unwrap();
        s.push_str(",\"compile\":{");
        for (i, phase) in [
            Phase::Recognize,
            Phase::Multistencil,
            Phase::Regalloc,
            Phase::Unroll,
        ]
        .into_iter()
        .enumerate()
        {
            if i > 0 {
                s.push(',');
            }
            write!(
                s,
                "\"{0}_ns\":{1},\"{0}_calls\":{2}",
                phase.key(),
                self.phase_nanos(phase),
                self.phase_calls(phase)
            )
            .unwrap();
        }
        write!(
            s,
            "}},\"plan\":{{\"build_ns\":{},\"builds\":{},\"rebind_ns\":{},\"rebinds\":{},\
             \"cache_hits\":{},\"cache_misses\":{},\"cache_evictions\":{}}}",
            self.phase_nanos(Phase::PlanBuild),
            c(Counter::PlanBuilds),
            self.phase_nanos(Phase::PlanRebind),
            c(Counter::PlanRebinds),
            c(Counter::PlanCacheHits),
            c(Counter::PlanCacheMisses),
            c(Counter::PlanCacheEvictions),
        )
        .unwrap();
        write!(
            s,
            ",\"exchange\":{{\"edge_words\":{},\"corner_words\":{},\"interior_words\":{},\
             \"gather_words\":{},\"scatter_words\":{}}}",
            c(Counter::ExchangeEdgeWords),
            c(Counter::ExchangeCornerWords),
            c(Counter::InteriorRefreshWords),
            c(Counter::GatherWords),
            c(Counter::ScatterWords),
        )
        .unwrap();
        write!(
            s,
            ",\"strips\":{{\"width8\":{},\"width4\":{},\"width2\":{},\"width1\":{}}}",
            c(Counter::StripsWidth8),
            c(Counter::StripsWidth4),
            c(Counter::StripsWidth2),
            c(Counter::StripsWidth1),
        )
        .unwrap();
        write!(
            s,
            ",\"exec\":{{\"execute_ns\":{},\"executes\":{},\"execute_workers_ns\":{},\
             \"execute_workers_calls\":{},\"scalar_runs\":{},\
             \"lockstep_runs\":{},\"lane_resident_runs\":{},\"scalar_steps\":{},\
             \"lockstep_steps\":{},\"kernelized_steps\":{},\"interpreted_steps\":{},\
             \"mirror_allocations\":{},\"mirror_pool_misses\":{},\"halo_exchanges\":{},\
             \"fused_steps\":{},\"temporal_fallbacks\":{},\"region_leases\":{},\
             \"lease_conflicts\":{},\"concurrent_executes_peak\":{},\"trace_drops\":{},\
             \"useful_flops\":{},\"total_flops\":{}}}}}",
            self.phase_nanos(Phase::Execute),
            self.phase_calls(Phase::Execute),
            self.phase_nanos(Phase::ExecuteWorkers),
            self.phase_calls(Phase::ExecuteWorkers),
            c(Counter::ScalarRuns),
            c(Counter::LockstepRuns),
            c(Counter::LaneResidentRuns),
            c(Counter::ScalarSteps),
            c(Counter::LockstepSteps),
            c(Counter::KernelizedSteps),
            c(Counter::InterpretedSteps),
            c(Counter::MirrorAllocations),
            c(Counter::MirrorPoolMisses),
            c(Counter::HaloExchanges),
            c(Counter::FusedSteps),
            c(Counter::TemporalFallbacks),
            c(Counter::RegionLeases),
            c(Counter::LeaseConflicts),
            c(Counter::ConcurrentExecutesPeak),
            c(Counter::TraceDrops),
            c(Counter::UsefulFlops),
            c(Counter::TotalFlops),
        )
        .unwrap();
        s
    }

    /// Renders the report as an indented human-readable table (the
    /// `cmcc --profile` form).
    pub fn render_table(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let ms = |nanos: u64| nanos as f64 / 1e6;
        s.push_str("profile:\n");
        s.push_str("  compile        calls        ms\n");
        for phase in [
            Phase::Recognize,
            Phase::Multistencil,
            Phase::Regalloc,
            Phase::Unroll,
        ] {
            writeln!(
                s,
                "    {:<12} {:>5} {:>9.3}",
                phase.key(),
                self.phase_calls(phase),
                ms(self.phase_nanos(phase))
            )
            .unwrap();
        }
        writeln!(
            s,
            "  plan: {} builds ({:.3} ms), {} rebinds ({:.3} ms); cache {} hits / {} misses / {} evictions",
            self.get(Counter::PlanBuilds),
            ms(self.phase_nanos(Phase::PlanBuild)),
            self.get(Counter::PlanRebinds),
            ms(self.phase_nanos(Phase::PlanRebind)),
            self.get(Counter::PlanCacheHits),
            self.get(Counter::PlanCacheMisses),
            self.get(Counter::PlanCacheEvictions),
        )
        .unwrap();
        writeln!(
            s,
            "  exchange words: {} edge + {} corner; interior refresh {}, gather {}, scatter {}",
            self.get(Counter::ExchangeEdgeWords),
            self.get(Counter::ExchangeCornerWords),
            self.get(Counter::InteriorRefreshWords),
            self.get(Counter::GatherWords),
            self.get(Counter::ScatterWords),
        )
        .unwrap();
        writeln!(
            s,
            "  strips by width: 8:{} 4:{} 2:{} 1:{}",
            self.get(Counter::StripsWidth8),
            self.get(Counter::StripsWidth4),
            self.get(Counter::StripsWidth2),
            self.get(Counter::StripsWidth1),
        )
        .unwrap();
        writeln!(
            s,
            "  exec: {} executes ({:.3} ms wall, {:.3} ms cpu) — {} scalar / {} lockstep / {} lane-resident; \
             steps {} scalar + {} lockstep ({} kernelized, {} interpreted); \
             {} mirror allocations ({} pool misses)",
            self.phase_calls(Phase::Execute),
            ms(self.phase_nanos(Phase::Execute)),
            ms(self.phase_nanos(Phase::ExecuteWorkers)),
            self.get(Counter::ScalarRuns),
            self.get(Counter::LockstepRuns),
            self.get(Counter::LaneResidentRuns),
            self.get(Counter::ScalarSteps),
            self.get(Counter::LockstepSteps),
            self.get(Counter::KernelizedSteps),
            self.get(Counter::InterpretedSteps),
            self.get(Counter::MirrorAllocations),
            self.get(Counter::MirrorPoolMisses),
        )
        .unwrap();
        writeln!(
            s,
            "  leases: {} region grants, {} conflicts (exclusive fallback), peak {} concurrent executes",
            self.get(Counter::RegionLeases),
            self.get(Counter::LeaseConflicts),
            self.get(Counter::ConcurrentExecutesPeak),
        )
        .unwrap();
        writeln!(
            s,
            "  temporal: {} halo exchanges, {} fused steps, {} depth fallbacks",
            self.get(Counter::HaloExchanges),
            self.get(Counter::FusedSteps),
            self.get(Counter::TemporalFallbacks),
        )
        .unwrap();
        writeln!(
            s,
            "  trace: {} events dropped (ring overflow)",
            self.get(Counter::TraceDrops),
        )
        .unwrap();
        let useful = self.get(Counter::UsefulFlops);
        let total = self.get(Counter::TotalFlops);
        writeln!(
            s,
            "  flops: {useful} useful / {total} total ({:.1}% useful)",
            if total > 0 {
                useful as f64 / total as f64 * 100.0
            } else {
                0.0
            },
        )
        .unwrap();
        s
    }
}

/// Serializes tests that touch the process-global telemetry or trace
/// state; shared across this crate's test modules so a counter test's
/// spans never leak trace events into a trace test's assertions.
#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_records_nothing() {
        let _guard = crate::test_lock();
        set_enabled(false);
        reset();
        add(Counter::PlanBuilds, 3);
        let _span = span(Phase::Recognize);
        drop(_span);
        let report = snapshot();
        assert!(!report.enabled());
        assert!(report.is_empty());
    }

    #[test]
    fn counters_and_spans_accumulate_and_delta() {
        let _guard = crate::test_lock();
        set_enabled(true);
        reset();
        add(Counter::ExchangeEdgeWords, 10);
        add(Counter::ExchangeEdgeWords, 5);
        {
            let _s = span(Phase::PlanBuild);
            std::hint::black_box(1 + 1);
        }
        let mid = snapshot();
        assert_eq!(mid.get(Counter::ExchangeEdgeWords), 15);
        assert_eq!(mid.phase_calls(Phase::PlanBuild), 1);
        add(Counter::ExchangeEdgeWords, 1);
        let end = snapshot();
        let delta = end.delta(&mid);
        assert_eq!(delta.get(Counter::ExchangeEdgeWords), 1);
        assert_eq!(delta.phase_calls(Phase::PlanBuild), 0);
        assert!(!end.is_empty());
        set_enabled(false);
    }

    #[test]
    fn thread_shards_aggregate_exactly_and_attribute_locally() {
        let _guard = crate::test_lock();
        set_enabled(true);
        reset();
        add(Counter::ScalarRuns, 1);
        let workers = 4;
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|i| {
                    scope.spawn(move || {
                        add(Counter::ScalarRuns, 10 + i);
                        kernel_hit(2);
                        // A thread sees exactly its own work.
                        thread_snapshot().get(Counter::ScalarRuns)
                    })
                })
                .collect();
            for (i, h) in handles.into_iter().enumerate() {
                assert_eq!(h.join().unwrap(), 10 + i as u64);
            }
        });
        // Worker threads have exited: their shards retired into the
        // accumulator, and the process totals are exact.
        let report = snapshot();
        assert_eq!(report.get(Counter::ScalarRuns), 1 + 10 + 11 + 12 + 13);
        assert_eq!(kernel_hits()[2], workers);
        // The main thread's view excludes the workers' counts.
        assert_eq!(thread_snapshot().get(Counter::ScalarRuns), 1);
        reset();
        assert!(snapshot().is_empty());
        set_enabled(false);
    }

    #[test]
    fn json_is_schema_stable() {
        let _guard = crate::test_lock();
        set_enabled(true);
        reset();
        add(Counter::UsefulFlops, 42);
        let json = snapshot().to_json();
        set_enabled(false);
        for key in [
            "\"enabled\":true",
            "\"compile\":{",
            "\"recognize_ns\":",
            "\"recognize_calls\":",
            "\"multistencil_ns\":",
            "\"regalloc_ns\":",
            "\"unroll_ns\":",
            "\"plan\":{",
            "\"build_ns\":",
            "\"builds\":",
            "\"rebind_ns\":",
            "\"rebinds\":",
            "\"cache_hits\":",
            "\"cache_misses\":",
            "\"cache_evictions\":",
            "\"exchange\":{",
            "\"edge_words\":",
            "\"corner_words\":",
            "\"interior_words\":",
            "\"gather_words\":",
            "\"scatter_words\":",
            "\"strips\":{",
            "\"width8\":",
            "\"width4\":",
            "\"width2\":",
            "\"width1\":",
            "\"exec\":{",
            "\"execute_ns\":",
            "\"executes\":",
            "\"scalar_runs\":",
            "\"lockstep_runs\":",
            "\"lane_resident_runs\":",
            "\"scalar_steps\":",
            "\"lockstep_steps\":",
            "\"kernelized_steps\":",
            "\"interpreted_steps\":",
            "\"mirror_allocations\":",
            "\"execute_workers_ns\":",
            "\"execute_workers_calls\":",
            "\"halo_exchanges\":",
            "\"fused_steps\":",
            "\"temporal_fallbacks\":",
            "\"mirror_pool_misses\":",
            "\"region_leases\":",
            "\"lease_conflicts\":",
            "\"concurrent_executes_peak\":",
            "\"trace_drops\":",
            "\"useful_flops\":42",
            "\"total_flops\":",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        // Balanced braces on one line: crude but catches truncation.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced JSON: {json}"
        );
        assert!(!json.contains('\n'));
    }

    #[test]
    fn every_counter_has_a_distinct_key() {
        let mut keys: Vec<&str> = Counter::ALL.iter().map(|c| c.key()).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), COUNTER_COUNT);
        let mut phases: Vec<&str> = Phase::ALL.iter().map(|p| p.key()).collect();
        phases.sort_unstable();
        phases.dedup();
        assert_eq!(phases.len(), PHASE_COUNT);
    }

    #[test]
    fn kernel_hits_record_reset_and_gate() {
        let _guard = crate::test_lock();
        set_enabled(true);
        reset();
        kernel_hit(3);
        kernel_hit(3);
        kernel_hit(KERNEL_VARIANT_CAP - 1);
        kernel_hit(KERNEL_VARIANT_CAP); // out of range: dropped, no panic
        let hits = kernel_hits();
        assert_eq!(hits[3], 2);
        assert_eq!(hits[KERNEL_VARIANT_CAP - 1], 1);
        assert_eq!(hits.iter().sum::<u64>(), 3);
        reset();
        assert_eq!(kernel_hits().iter().sum::<u64>(), 0);
        set_enabled(false);
        kernel_hit(3);
        assert_eq!(kernel_hits()[3], 0, "disabled telemetry must not record");
    }

    #[test]
    fn table_renders_every_section() {
        let table = RunReport::default().render_table();
        for needle in [
            "compile",
            "plan:",
            "exchange words",
            "strips by width",
            "exec:",
            "leases:",
            "temporal:",
            "trace:",
            "flops:",
        ] {
            assert!(table.contains(needle), "missing {needle}");
        }
    }
}
