//! The flight recorder: a lock-free, per-thread ring-buffer event trace.
//!
//! Every instrumented site ([`record`], or a [`Span`](crate::Span) /
//! [`scope`] guard) appends one fixed-size event — a timestamp, an
//! operation tag, the calling thread's tenant id, and one argument word —
//! to the calling thread's private ring. The hot path is three relaxed
//! atomic stores plus one release store of the write cursor; it takes no
//! locks, allocates nothing after the ring itself exists, and costs a
//! single relaxed load when tracing is disabled.
//!
//! Rings have fixed capacity ([`TRACE_RING_CAP`] events). When a ring
//! fills, further events on that thread are *dropped*, counted both in
//! the ring and in the process-wide
//! [`Counter::TraceDrops`](crate::Counter::TraceDrops) counter; the
//! events already recorded are never overwritten, so the head of the
//! timeline stays trustworthy.
//!
//! Rings are registered in a process-global table and survive their
//! owning thread's exit, so a post-mortem export ([`chrome_trace_json`])
//! sees every worker's events. The export is the Chrome trace-event JSON
//! format (load it in `chrome://tracing` or Perfetto): one `tid` per
//! recording thread, `B`/`E` duration events per operation, and async
//! `b`/`e` pairs for per-tenant tracks.
//!
//! Tracing is **off by default** and independent of the counter layer:
//! enable it with [`set_trace_enabled`] or the `CMCC_TRACE` environment
//! variable (latched on first use, like `CMCC_PROFILE`).

use std::cell::{Cell, OnceCell};
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Capacity of one thread's event ring, in events. A full serve batch
/// records a few hundred events per statement, so 64 Ki events per
/// thread leaves two orders of magnitude of headroom; overflow beyond it
/// drops events (counted, never corrupting) rather than growing.
pub const TRACE_RING_CAP: usize = 1 << 16;

/// What kind of timeline mark an event is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum TraceKind {
    /// Opens a duration slice on the recording thread's track.
    Begin = 0,
    /// Closes the most recent open slice of the same operation.
    End = 1,
    /// A zero-duration mark.
    Instant = 2,
    /// Opens an async slice (`arg` is the async track id, e.g. tenant).
    AsyncBegin = 3,
    /// Closes the async slice with the same operation and id.
    AsyncEnd = 4,
}

impl TraceKind {
    fn from_bits(v: u8) -> TraceKind {
        match v {
            0 => TraceKind::Begin,
            1 => TraceKind::End,
            2 => TraceKind::Instant,
            3 => TraceKind::AsyncBegin,
            _ => TraceKind::AsyncEnd,
        }
    }
}

/// The operation a trace event marks, in stable schema order. Names
/// ([`TraceOp::name`]) are the `name` field of the exported Chrome trace
/// events and match the profile phase keys where a phase exists.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum TraceOp {
    /// Stencil recognition (compile).
    Recognize,
    /// Multistencil construction (compile).
    Multistencil,
    /// Ring planning and register assignment (compile).
    Regalloc,
    /// Kernel emission and unrolling (compile).
    Unroll,
    /// Execution-plan construction.
    PlanBuild,
    /// Execution-plan retargeting.
    PlanRebind,
    /// One plan execute, entry to exit.
    Execute,
    /// Per-worker kernel slice inside an execute's thread fan-out.
    ExecuteWorkers,
    /// One halo-exchange program run (node- or lane-domain). `arg` on
    /// the begin event is the words the program moves.
    HaloExchange,
    /// Interior refresh: halo-buffer fill or lane-mirror rectangle
    /// gather ahead of an exchange.
    InteriorRefresh,
    /// One fused kernel sweep (one time step's strip batch). `arg` on
    /// the begin event is the step index within the execute.
    KernelSweep,
    /// A `RegionStage` commit window: staged halo writes applied to the
    /// machine under the write lock.
    RegionCommit,
    /// A lease request in the region-lease table, from request to
    /// grant — the slice duration *is* the time-to-grant, and `arg` on
    /// the end event is 1 if the request conflicted (waited for an
    /// overlapping live lease) or 0 if it was granted immediately.
    LeaseAcquire,
    /// A held lease, from grant to release.
    LeaseHeld,
    /// One served statement (per-tenant execute lifetime): emitted as a
    /// thread slice and, with `arg` = tenant id, as an async track pair.
    Statement,
}

/// Number of [`TraceOp`] variants.
pub const TRACE_OP_COUNT: usize = TraceOp::Statement as usize + 1;

impl TraceOp {
    /// All operations, in schema order.
    pub const ALL: [TraceOp; TRACE_OP_COUNT] = [
        TraceOp::Recognize,
        TraceOp::Multistencil,
        TraceOp::Regalloc,
        TraceOp::Unroll,
        TraceOp::PlanBuild,
        TraceOp::PlanRebind,
        TraceOp::Execute,
        TraceOp::ExecuteWorkers,
        TraceOp::HaloExchange,
        TraceOp::InteriorRefresh,
        TraceOp::KernelSweep,
        TraceOp::RegionCommit,
        TraceOp::LeaseAcquire,
        TraceOp::LeaseHeld,
        TraceOp::Statement,
    ];

    /// The operation's stable event name.
    pub fn name(self) -> &'static str {
        match self {
            TraceOp::Recognize => "recognize",
            TraceOp::Multistencil => "multistencil",
            TraceOp::Regalloc => "regalloc",
            TraceOp::Unroll => "unroll",
            TraceOp::PlanBuild => "plan_build",
            TraceOp::PlanRebind => "plan_rebind",
            TraceOp::Execute => "execute",
            TraceOp::ExecuteWorkers => "execute_workers",
            TraceOp::HaloExchange => "halo_exchange",
            TraceOp::InteriorRefresh => "interior_refresh",
            TraceOp::KernelSweep => "kernel_sweep",
            TraceOp::RegionCommit => "region_commit",
            TraceOp::LeaseAcquire => "lease_acquire",
            TraceOp::LeaseHeld => "lease_held",
            TraceOp::Statement => "statement",
        }
    }

    /// Maps a profile [`Phase`](crate::Phase) to its trace operation, so
    /// [`span`](crate::span) guards double as timeline slices.
    pub fn from_phase(phase: crate::Phase) -> TraceOp {
        match phase {
            crate::Phase::Recognize => TraceOp::Recognize,
            crate::Phase::Multistencil => TraceOp::Multistencil,
            crate::Phase::Regalloc => TraceOp::Regalloc,
            crate::Phase::Unroll => TraceOp::Unroll,
            crate::Phase::PlanBuild => TraceOp::PlanBuild,
            crate::Phase::PlanRebind => TraceOp::PlanRebind,
            crate::Phase::Execute => TraceOp::Execute,
            crate::Phase::ExecuteWorkers => TraceOp::ExecuteWorkers,
        }
    }

    fn from_bits(v: u8) -> TraceOp {
        TraceOp::ALL
            .get(v as usize)
            .copied()
            .unwrap_or(TraceOp::Statement)
    }
}

/// One decoded flight-recorder event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Timeline mark kind.
    pub kind: TraceKind,
    /// Operation tag.
    pub op: TraceOp,
    /// The recording thread's tenant id, if one was set ([`set_tenant`]).
    pub tenant: Option<u32>,
    /// Nanoseconds since the process trace epoch (first clock read).
    pub ts_ns: u64,
    /// One free argument word; meaning is per-operation (words moved,
    /// step index, conflict flag, async id).
    pub arg: u64,
}

/// Everything one thread recorded: its export `tid`, optional label,
/// events in record order, and how many events overflowed the ring.
#[derive(Debug, Clone)]
pub struct ThreadTrace {
    /// Stable per-thread id (registration order), the Chrome `tid`.
    pub tid: usize,
    /// Human label for the thread's track (empty if never set).
    pub label: String,
    /// Decoded events, oldest first.
    pub events: Vec<TraceEvent>,
    /// Events dropped on this thread after the ring filled.
    pub drops: u64,
}

const TENANT_NONE: u32 = u32::MAX;

/// One thread's event ring. The owning thread is the only writer; any
/// thread may read a consistent prefix by loading the cursor with
/// acquire ordering (the writer publishes each event's three payload
/// words with relaxed stores *before* the release store of the cursor).
struct Ring {
    tid: usize,
    label: Mutex<String>,
    /// Events published so far, `<= TRACE_RING_CAP`.
    cursor: AtomicU64,
    /// Events dropped after the ring filled.
    drops: AtomicU64,
    /// `3 * TRACE_RING_CAP` words: (meta, ts, arg) per slot, where meta
    /// packs kind (bits 0..8), op (bits 8..16), tenant (bits 32..64).
    slots: Vec<AtomicU64>,
}

impl Ring {
    fn new(tid: usize) -> Ring {
        let mut slots = Vec::new();
        slots.resize_with(3 * TRACE_RING_CAP, || AtomicU64::new(0));
        Ring {
            tid,
            label: Mutex::new(String::new()),
            cursor: AtomicU64::new(0),
            drops: AtomicU64::new(0),
            slots,
        }
    }

    fn push(&self, kind: TraceKind, op: TraceOp, tenant: u32, ts_ns: u64, arg: u64) {
        // Single writer: the owning thread. Relaxed load is enough.
        let pos = self.cursor.load(Ordering::Relaxed) as usize;
        if pos >= TRACE_RING_CAP {
            self.drops.fetch_add(1, Ordering::Relaxed);
            crate::add(crate::Counter::TraceDrops, 1);
            return;
        }
        let meta = (kind as u64) | ((op as u64) << 8) | ((tenant as u64) << 32);
        self.slots[3 * pos].store(meta, Ordering::Relaxed);
        self.slots[3 * pos + 1].store(ts_ns, Ordering::Relaxed);
        self.slots[3 * pos + 2].store(arg, Ordering::Relaxed);
        // Release: a reader that acquires the new cursor sees the slots.
        self.cursor.store(pos as u64 + 1, Ordering::Release);
    }

    fn snapshot(&self) -> ThreadTrace {
        let n = (self.cursor.load(Ordering::Acquire) as usize).min(TRACE_RING_CAP);
        let mut events = Vec::with_capacity(n);
        for i in 0..n {
            let meta = self.slots[3 * i].load(Ordering::Relaxed);
            let ts_ns = self.slots[3 * i + 1].load(Ordering::Relaxed);
            let arg = self.slots[3 * i + 2].load(Ordering::Relaxed);
            let tenant32 = (meta >> 32) as u32;
            events.push(TraceEvent {
                kind: TraceKind::from_bits(meta as u8),
                op: TraceOp::from_bits((meta >> 8) as u8),
                tenant: (tenant32 != TENANT_NONE).then_some(tenant32),
                ts_ns,
                arg,
            });
        }
        ThreadTrace {
            tid: self.tid,
            label: self.label.lock().unwrap_or_else(|e| e.into_inner()).clone(),
            events,
            drops: self.drops.load(Ordering::Relaxed),
        }
    }
}

/// Every ring ever created, in registration order. Rings are kept after
/// their owning thread exits so a post-mortem export sees every worker.
static RINGS: Mutex<Vec<Arc<Ring>>> = Mutex::new(Vec::new());

fn rings() -> std::sync::MutexGuard<'static, Vec<Arc<Ring>>> {
    RINGS.lock().unwrap_or_else(|e| e.into_inner())
}

/// 0 = undecided (consult `CMCC_TRACE` on first use), 1 = off, 2 = on.
static TRACE_ENABLED: AtomicU8 = AtomicU8::new(0);

/// The process trace epoch: all timestamps are nanoseconds since the
/// first clock read, so every thread shares one timeline.
static EPOCH: OnceLock<Instant> = OnceLock::new();

thread_local! {
    static RING: OnceCell<Arc<Ring>> = const { OnceCell::new() };
    static TENANT: Cell<u32> = const { Cell::new(TENANT_NONE) };
}

fn this_ring<R>(f: impl FnOnce(&Ring) -> R) -> Option<R> {
    RING.try_with(|cell| {
        let ring = cell.get_or_init(|| {
            let mut reg = rings();
            let ring = Arc::new(Ring::new(reg.len()));
            reg.push(Arc::clone(&ring));
            ring
        });
        f(ring)
    })
    .ok()
}

/// Whether the flight recorder is currently recording.
///
/// The first call (unless [`set_trace_enabled`] ran earlier) latches the
/// `CMCC_TRACE` environment variable: unset, empty, or `0` means off.
#[inline]
pub fn trace_enabled() -> bool {
    match TRACE_ENABLED.load(Ordering::Relaxed) {
        0 => {
            let on = std::env::var("CMCC_TRACE")
                .map(|v| !v.is_empty() && v != "0")
                .unwrap_or(false);
            TRACE_ENABLED.store(if on { 2 } else { 1 }, Ordering::Relaxed);
            on
        }
        1 => false,
        _ => true,
    }
}

/// Turns the flight recorder on or off for the whole process, overriding
/// the environment. Recorded events are kept; use [`reset_trace`] to
/// clear them.
pub fn set_trace_enabled(on: bool) {
    TRACE_ENABLED.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

/// Nanoseconds since the process trace epoch. Monotone per thread (and
/// across threads, up to the clock's own guarantees).
pub fn now_ns() -> u64 {
    let epoch = EPOCH.get_or_init(Instant::now);
    u64::try_from(epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Tags the calling thread's subsequent events with a tenant id (or
/// clears the tag with `None`). Serve-mode workers set this once before
/// draining their tenant's statements; per-tenant attribution reads it
/// back from the events.
pub fn set_tenant(tenant: Option<u32>) {
    let _ = TENANT.try_with(|t| t.set(tenant.unwrap_or(TENANT_NONE)));
}

/// Labels the calling thread's track in the exported trace (the Chrome
/// `thread_name` metadata).
pub fn set_thread_label(label: &str) {
    let _ = this_ring(|ring| {
        *ring.label.lock().unwrap_or_else(|e| e.into_inner()) = label.to_string();
    });
}

/// Appends one event to the calling thread's ring. No-op (one relaxed
/// load) when tracing is disabled; drops the event (counted) when the
/// ring is full or the thread is tearing down.
#[inline]
pub fn record(kind: TraceKind, op: TraceOp, arg: u64) {
    if !trace_enabled() {
        return;
    }
    let ts = now_ns();
    let tenant = TENANT.try_with(Cell::get).unwrap_or(TENANT_NONE);
    let _ = this_ring(|ring| ring.push(kind, op, tenant, ts, arg));
}

/// A live trace slice: emits a begin event at creation ([`scope`]) and
/// the matching end event on drop. Inert when tracing was disabled at
/// creation.
#[derive(Debug)]
#[must_use = "a trace scope marks the region it is bound to; binding it to _ drops it immediately"]
pub struct TraceScope {
    op: TraceOp,
    live: bool,
}

impl Drop for TraceScope {
    fn drop(&mut self) {
        if self.live {
            record(TraceKind::End, self.op, 0);
        }
    }
}

/// Opens a duration slice for `op` with `arg` on the begin event; the
/// returned guard closes it on drop.
#[inline]
pub fn scope(op: TraceOp, arg: u64) -> TraceScope {
    let live = trace_enabled();
    if live {
        record(TraceKind::Begin, op, arg);
    }
    TraceScope { op, live }
}

/// Clears every ring (cursor, drop count; labels are kept). Call only
/// when no instrumented work is in flight — a concurrent writer could
/// interleave with the clear and leave a partial prefix.
pub fn reset_trace() {
    for ring in rings().iter() {
        ring.drops.store(0, Ordering::Relaxed);
        ring.cursor.store(0, Ordering::Release);
    }
}

/// Snapshots every thread's recorded events (live and exited threads
/// alike), in thread-registration order. Each thread's event list is a
/// consistent prefix of what it recorded.
pub fn threads() -> Vec<ThreadTrace> {
    rings().iter().map(|r| r.snapshot()).collect()
}

/// Total events dropped across all rings since the last [`reset_trace`].
pub fn total_drops() -> u64 {
    rings()
        .iter()
        .map(|r| r.drops.load(Ordering::Relaxed))
        .sum()
}

fn escape_json(s: &str, out: &mut String) {
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Renders every recorded event as Chrome trace-event JSON (the
/// `{"traceEvents":[...]}` object format), loadable in `chrome://tracing`
/// or Perfetto.
///
/// * one `tid` per recording thread (registration order), with
///   `thread_name` metadata when a label was set;
/// * `B`/`E` duration events named by [`TraceOp::name`], with `args.arg`
///   carrying the event's argument word and `args.tenant` the recording
///   thread's tenant tag;
/// * async `b`/`e` pairs (category `"tenant"`, `id` = the event's `arg`)
///   for [`TraceKind::AsyncBegin`] / [`TraceKind::AsyncEnd`], giving each
///   tenant its own track;
/// * timestamps in microseconds (fractional) since the process epoch,
///   globally sorted.
pub fn chrome_trace_json() -> String {
    use std::fmt::Write as _;
    let threads = threads();
    let mut out = String::new();
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    let mut emit = |s: &str, out: &mut String| {
        if !first {
            out.push(',');
        }
        first = false;
        out.push('\n');
        out.push_str(s);
    };
    let mut line = String::new();
    line.push_str(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
         \"args\":{\"name\":\"cmcc\"}}",
    );
    emit(&line, &mut out);
    for t in &threads {
        if !t.label.is_empty() {
            line.clear();
            line.push_str("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":");
            write!(line, "{}", t.tid).unwrap();
            line.push_str(",\"args\":{\"name\":\"");
            escape_json(&t.label, &mut line);
            line.push_str("\"}}");
            emit(&line, &mut out);
        }
    }
    // Merge all threads' events into one globally ts-sorted stream.
    // The sort is stable and each thread's slice is pre-sorted (monotone
    // clock), so per-tid B/E nesting order is preserved under ties.
    let mut all: Vec<(u64, usize, &TraceEvent)> = Vec::new();
    for t in &threads {
        for e in &t.events {
            all.push((e.ts_ns, t.tid, e));
        }
    }
    all.sort_by_key(|&(ts, _, _)| ts);
    for (ts, tid, e) in all {
        line.clear();
        let ph = match e.kind {
            TraceKind::Begin => "B",
            TraceKind::End => "E",
            TraceKind::Instant => "i",
            TraceKind::AsyncBegin => "b",
            TraceKind::AsyncEnd => "e",
        };
        write!(
            line,
            "{{\"name\":\"{}\",\"ph\":\"{}\",\"pid\":1,\"tid\":{},\"ts\":{}.{:03}",
            e.op.name(),
            ph,
            tid,
            ts / 1000,
            ts % 1000
        )
        .unwrap();
        match e.kind {
            TraceKind::AsyncBegin | TraceKind::AsyncEnd => {
                write!(line, ",\"cat\":\"tenant\",\"id\":{}", e.arg).unwrap();
            }
            TraceKind::Instant => line.push_str(",\"s\":\"t\""),
            _ => {}
        }
        write!(line, ",\"args\":{{\"arg\":{}", e.arg).unwrap();
        if let Some(tenant) = e.tenant {
            write!(line, ",\"tenant\":{tenant}").unwrap();
        }
        line.push_str("}}");
        emit(&line, &mut out);
    }
    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Trace state is process-global; tests that write it serialize on
    /// the same lock the counter tests use.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_records_nothing() {
        let _guard = lock();
        set_trace_enabled(false);
        reset_trace();
        record(TraceKind::Instant, TraceOp::Execute, 7);
        let _s = scope(TraceOp::Execute, 0);
        drop(_s);
        assert!(threads().iter().all(|t| t.events.is_empty()));
    }

    #[test]
    fn events_round_trip_with_tenant_and_order() {
        let _guard = lock();
        set_trace_enabled(true);
        reset_trace();
        set_tenant(Some(3));
        {
            let _s = scope(TraceOp::HaloExchange, 123);
        }
        record(TraceKind::Instant, TraceOp::KernelSweep, 9);
        set_tenant(None);
        set_trace_enabled(false);
        let mine: Vec<TraceEvent> = threads()
            .into_iter()
            .flat_map(|t| t.events)
            .filter(|e| e.op != TraceOp::Statement)
            .collect();
        assert_eq!(mine.len(), 3);
        assert_eq!(mine[0].kind, TraceKind::Begin);
        assert_eq!(mine[0].op, TraceOp::HaloExchange);
        assert_eq!(mine[0].arg, 123);
        assert_eq!(mine[0].tenant, Some(3));
        assert_eq!(mine[1].kind, TraceKind::End);
        assert_eq!(mine[2].kind, TraceKind::Instant);
        assert!(mine[0].ts_ns <= mine[1].ts_ns && mine[1].ts_ns <= mine[2].ts_ns);
        reset_trace();
        assert!(threads().iter().all(|t| t.events.is_empty()));
    }

    #[test]
    fn chrome_export_is_valid_shape() {
        let _guard = lock();
        set_trace_enabled(true);
        reset_trace();
        set_thread_label("test \"main\"");
        {
            let _s = scope(TraceOp::Execute, 0);
        }
        record(TraceKind::AsyncBegin, TraceOp::Statement, 5);
        record(TraceKind::AsyncEnd, TraceOp::Statement, 5);
        set_trace_enabled(false);
        let json = chrome_trace_json();
        assert!(json.contains("\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"B\""));
        assert!(json.contains("\"ph\":\"E\""));
        assert!(json.contains("\"ph\":\"b\""));
        assert!(json.contains("\"ph\":\"e\""));
        assert!(json.contains("\"name\":\"thread_name\""));
        assert!(json.contains("test \\\"main\\\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        reset_trace();
    }

    #[test]
    fn op_names_are_distinct_and_phase_map_total() {
        let mut names: Vec<&str> = TraceOp::ALL.iter().map(|o| o.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), TRACE_OP_COUNT);
        for phase in crate::Phase::ALL {
            assert_eq!(TraceOp::from_phase(phase).name(), phase.key());
        }
    }
}
