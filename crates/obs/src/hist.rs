//! Log-bucketed latency histograms: power-of-two octaves split into
//! linear sub-buckets, mergeable across threads.
//!
//! The driver distills the flight recorder's event stream into these to
//! report p50/p95/p99/max per tenant and per phase without retaining
//! every sample. The layout is the classic HDR shape: values below
//! 2^[`SUB_BUCKET_BITS`] are exact; above that, each power-of-two octave
//! is split into 2^[`SUB_BUCKET_BITS`] equal-width linear sub-buckets,
//! so the quantization error is bounded by 1/16 (≈6%) of the value —
//! ample for tail-latency reporting.
//!
//! Percentiles are *bucket-exact*: [`Histogram::percentile`] returns the
//! upper bound of the bucket holding the rank-⌈p/100·n⌉ sample, which is
//! precisely [`Histogram::quantize`] of the true rank-order statistic.
//! Tests exploit this to compare against a sorted-oracle computation
//! with `==`, not a tolerance.

/// Sub-bucket resolution: each power-of-two octave is split into
/// `2^SUB_BUCKET_BITS` linear buckets.
pub const SUB_BUCKET_BITS: u32 = 4;

const SUB: u64 = 1 << SUB_BUCKET_BITS;

/// Number of buckets: `SUB` exact small-value buckets plus
/// `(64 - SUB_BUCKET_BITS) · SUB` octave sub-buckets — covers all of
/// `u64` with no clamping.
pub const HIST_SLOTS: usize = (SUB as usize) + (64 - SUB_BUCKET_BITS as usize) * SUB as usize;

/// A mergeable log-bucketed histogram of `u64` samples (nanoseconds, in
/// this crate's usage, but unit-agnostic).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            counts: vec![0; HIST_SLOTS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// The bucket index of `v`.
    fn slot_of(v: u64) -> usize {
        if v < SUB {
            v as usize
        } else {
            let msb = 63 - v.leading_zeros() as u64; // >= SUB_BUCKET_BITS
            let octave = msb - SUB_BUCKET_BITS as u64; // 0-based octave above the exact range
            let sub = (v >> octave) - SUB; // 0..SUB within the octave
            SUB as usize + (octave as usize * SUB as usize) + sub as usize
        }
    }

    /// The largest value mapping to bucket `slot` — the bucket's
    /// representative, what [`percentile`](Histogram::percentile)
    /// reports.
    fn value_at(slot: usize) -> u64 {
        if slot < SUB as usize {
            slot as u64
        } else {
            let idx = (slot - SUB as usize) as u64;
            let octave = idx / SUB;
            let sub = idx % SUB;
            let low = (SUB + sub) << octave;
            let width = 1u64 << octave;
            low + (width - 1)
        }
    }

    /// `v` rounded up to its bucket's representative: the value
    /// [`percentile`](Histogram::percentile) would report for a
    /// distribution whose rank-order statistic is `v`. Monotone
    /// non-decreasing, identity below 2^[`SUB_BUCKET_BITS`].
    pub fn quantize(v: u64) -> u64 {
        Self::value_at(Self::slot_of(v))
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.counts[Self::slot_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.max = self.max.max(v);
    }

    /// Folds `other` into `self` bucket by bucket.
    pub fn merge(&mut self, other: &Histogram) {
        for (d, s) in self.counts.iter_mut().zip(&other.counts) {
            *d += s;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// The exact maximum recorded sample (not quantized; 0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The bucket-exact `p`-th percentile (`0 < p ≤ 100`): the
    /// representative ([`quantize`](Histogram::quantize)) of the bucket
    /// containing the rank-⌈p/100·n⌉ sample, or 0 when empty.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let rank = rank.min(self.count);
        let mut cum = 0u64;
        for (slot, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return Self::value_at(slot);
            }
        }
        Self::quantize(self.max)
    }

    /// Renders the histogram's summary as a fixed-key JSON object:
    /// `{"count":..,"p50_ns":..,"p95_ns":..,"p99_ns":..,"max_ns":..}`.
    pub fn summary_json(&self) -> String {
        format!(
            "{{\"count\":{},\"p50_ns\":{},\"p95_ns\":{},\"p99_ns\":{},\"max_ns\":{}}}",
            self.count,
            self.percentile(50.0),
            self.percentile(95.0),
            self.percentile(99.0),
            self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The oracle the driver and tests share: sort, take the
    /// rank-⌈p/100·n⌉ sample, quantize it.
    fn oracle(sorted: &[u64], p: f64) -> u64 {
        let rank = (((p / 100.0) * sorted.len() as f64).ceil().max(1.0) as usize).min(sorted.len());
        Histogram::quantize(sorted[rank - 1])
    }

    #[test]
    fn small_values_are_exact() {
        for v in 0..SUB {
            assert_eq!(Histogram::quantize(v), v);
        }
    }

    #[test]
    fn quantize_is_monotone_and_bounded() {
        let mut prev = 0;
        let mut v = 1u64;
        while v < u64::MAX / 3 {
            let q = Histogram::quantize(v);
            assert!(q >= v, "representative below value at {v}");
            assert!(q <= v + v / SUB, "error above 1/{SUB} at {v}: {q}");
            assert!(q >= prev, "non-monotone at {v}");
            prev = q;
            v = v * 3 + 1;
        }
    }

    #[test]
    fn percentiles_match_sorted_oracle() {
        // Deterministic xorshift so the distribution spans many octaves.
        let mut x = 0x9E3779B97F4A7C15u64;
        let mut samples: Vec<u64> = (0..5000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x % (1 << (x % 40))
            })
            .collect();
        let mut h = Histogram::new();
        for &s in &samples {
            h.record(s);
        }
        samples.sort_unstable();
        for p in [1.0, 25.0, 50.0, 90.0, 95.0, 99.0, 99.9, 100.0] {
            assert_eq!(h.percentile(p), oracle(&samples, p), "p{p}");
        }
        assert_eq!(h.count(), 5000);
        assert_eq!(h.max(), *samples.last().unwrap());
    }

    #[test]
    fn merge_equals_recording_everything_in_one() {
        let (mut a, mut b, mut whole) = (Histogram::new(), Histogram::new(), Histogram::new());
        for v in [0, 1, 15, 16, 17, 1000, 123456789, u64::MAX] {
            whole.record(v);
            if v % 2 == 0 { &mut a } else { &mut b }.record(v);
        }
        a.merge(&b);
        assert_eq!(a, whole);
    }

    #[test]
    fn summary_json_shape() {
        let mut h = Histogram::new();
        h.record(10);
        let json = h.summary_json();
        for key in [
            "\"count\":1",
            "\"p50_ns\":10",
            "\"p95_ns\":10",
            "\"p99_ns\":10",
            "\"max_ns\":10",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }
}
