//! Wall-clock bench of the compiler itself: lex + parse + recognize +
//! multistencil/ring planning + schedule emission for each paper pattern.

use cmcc_bench::microbench::Group;
use cmcc_cm2::config::MachineConfig;
use cmcc_core::compiler::Compiler;
use cmcc_core::patterns::PaperPattern;

fn main() {
    let compiler = Compiler::new(MachineConfig::test_board_16());
    let group = Group::new("compile", 100);
    for pattern in PaperPattern::ALL {
        let source = pattern.fortran();
        group.bench(pattern.name(), || {
            compiler.compile_assignment(&source).expect("compiles")
        });
    }

    let front = Group::new("front_end", 100);
    let source = PaperPattern::Diamond13.fortran();
    front.bench("parse_diamond13", || {
        cmcc_front::parser::parse_assignment(&source).expect("parses")
    });
}
