//! Criterion bench of the compiler itself: lex + parse + recognize +
//! multistencil/ring planning + schedule emission for each paper pattern.

use cmcc_cm2::config::MachineConfig;
use cmcc_core::compiler::Compiler;
use cmcc_core::patterns::PaperPattern;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_compile(c: &mut Criterion) {
    let compiler = Compiler::new(MachineConfig::test_board_16());
    let mut group = c.benchmark_group("compile");
    for pattern in PaperPattern::ALL {
        let source = pattern.fortran();
        group.bench_function(pattern.name(), |b| {
            b.iter(|| black_box(compiler.compile_assignment(&source).expect("compiles")));
        });
    }
    group.finish();
}

fn bench_front_end_only(c: &mut Criterion) {
    let source = PaperPattern::Diamond13.fortran();
    c.bench_function("parse_diamond13", |b| {
        b.iter(|| black_box(cmcc_front::parser::parse_assignment(&source).expect("parses")));
    });
}

criterion_group!(benches, bench_compile, bench_front_end_only);
criterion_main!(benches);
