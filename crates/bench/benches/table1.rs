//! Criterion bench over the results-table workloads: wall-clock cost of
//! simulating one cycle-accurate stencil iteration per pattern (the
//! simulated rates themselves are printed by `repro_table1`).

use cmcc_bench::Workload;
use cmcc_cm2::config::MachineConfig;
use cmcc_core::patterns::PaperPattern;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_table_patterns(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_iteration");
    group.sample_size(10);
    for pattern in PaperPattern::TABLE {
        // The 64×64-subgrid cell of the table, on the 16-node board.
        let mut w = Workload::new(MachineConfig::test_board_16(), pattern, (64, 64));
        group.bench_function(pattern.name(), |b| {
            b.iter(|| black_box(w.measure()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table_patterns);
criterion_main!(benches);
