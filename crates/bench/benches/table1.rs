//! Wall-clock bench over the results-table workloads: host cost of
//! simulating one cycle-accurate stencil iteration per pattern (the
//! simulated rates themselves are printed by `repro_table1`).

use cmcc_bench::microbench::Group;
use cmcc_bench::Workload;
use cmcc_cm2::config::MachineConfig;
use cmcc_core::patterns::PaperPattern;

fn main() {
    let group = Group::new("table1_iteration", 10);
    for pattern in PaperPattern::TABLE {
        // The 64×64-subgrid cell of the table, on the 16-node board.
        let mut w = Workload::new(MachineConfig::test_board_16(), pattern, (64, 64));
        group.bench(pattern.name(), || w.measure());
    }
}
