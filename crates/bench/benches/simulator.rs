//! Wall-clock bench of the simulator core: cycle-accurate vs fast
//! functional kernel interpretation, serial vs threaded node execution.

use cmcc_bench::microbench::Group;
use cmcc_bench::Workload;
use cmcc_cm2::config::MachineConfig;
use cmcc_core::patterns::PaperPattern;
use cmcc_runtime::convolve::ExecOptions;

fn main() {
    let group = Group::new("simulator", 10);
    let mut w = Workload::new(MachineConfig::tiny_4(), PaperPattern::Square9, (64, 64));
    group.bench("cycle_accurate_serial", || w.run(&ExecOptions::serial()));
    group.bench("cycle_accurate_threads", || w.run(&ExecOptions::default()));
    group.bench("fast_functional", || w.run(&ExecOptions::fast()));
}
