//! Criterion bench of the simulator core: cycle-accurate vs fast
//! functional kernel interpretation (simulated-instruction throughput).

use cmcc_bench::Workload;
use cmcc_cm2::config::MachineConfig;
use cmcc_core::patterns::PaperPattern;
use cmcc_runtime::convolve::ExecOptions;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_exec_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator");
    group.sample_size(10);
    let mut w = Workload::new(MachineConfig::tiny_4(), PaperPattern::Square9, (64, 64));
    group.bench_function("cycle_accurate", |b| {
        b.iter(|| black_box(w.run(&ExecOptions::default())));
    });
    group.bench_function("fast_functional", |b| {
        b.iter(|| black_box(w.run(&ExecOptions::fast())));
    });
    group.finish();
}

criterion_group!(benches, bench_exec_modes);
criterion_main!(benches);
