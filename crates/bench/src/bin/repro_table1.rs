//! Regenerates the paper's §7 results table (experiment T1/T1b).
//!
//! For each stencil pattern and per-node subgrid size, runs one
//! cycle-accurate iteration on the simulated 16-node test board and
//! prints the measured Mflops plus the extrapolation to a full
//! 2,048-node CM-2, side by side with the numbers the paper reports.
//!
//! ```sh
//! cargo run --release -p cmcc-bench --bin repro_table1
//! cargo run --release -p cmcc-bench --bin repro_table1 -- --full-machine
//! ```
//!
//! `--full-machine` additionally simulates the table's 2,048-node rows
//! directly (128×256 and 256×256 subgrids on the full machine) instead
//! of extrapolating.

use cmcc_bench::{paper_reference, Workload, TABLE_SUBGRIDS};
use cmcc_cm2::config::MachineConfig;
use cmcc_core::patterns::PaperPattern;

fn main() {
    let full_machine = std::env::args().any(|a| a == "--full-machine");

    println!("Reproduction of the PLDI'91 results table (§7)");
    println!("16-node test board (4x4 nodes @ 7 MHz), one measured iteration per row\n");
    println!(
        "{:<18} {:>9}  {:>12} {:>12}  {:>12} {:>12}",
        "pattern", "subgrid", "Mflops(sim)", "Mflops(ppr)", "Gflops(sim)", "Gflops(ppr)"
    );
    println!("{}", "-".repeat(82));

    for pattern in PaperPattern::TABLE {
        for subgrid in TABLE_SUBGRIDS {
            let mut w = Workload::new(MachineConfig::test_board_16(), pattern, subgrid);
            let m = w.measure();
            let mflops = m.mflops(w.machine.config());
            let gflops = m.extrapolate(2048).gflops(w.machine.config());
            let (p_mflops, p_gflops) = match paper_reference(pattern, subgrid) {
                Some((a, b)) => (format!("{a:.1}"), format!("{b:.2}")),
                None => ("-".to_owned(), "-".to_owned()),
            };
            println!(
                "{:<18} {:>4}x{:<4}  {:>12.1} {:>12}  {:>12.2} {:>12}",
                pattern.name(),
                subgrid.0,
                subgrid.1,
                mflops,
                p_mflops,
                gflops,
                p_gflops
            );
        }
        println!();
    }

    if full_machine {
        println!("Full-machine rows (T1b): 2,048 nodes simulated directly.");
        println!("paper reports 11.62-14.95 Gflops for these rows (7 Dec 1990 runs");
        println!("with the improved run-time library; see EXPERIMENTS.md)\n");
        // The 128x256-subgrid row is simulated on all 2,048 nodes (the
        // 256x256 row would need ~16 GB of host RAM; because the machine
        // is fully synchronous, its direct simulation is cycle-identical
        // to the 16-node measurement above, so we print the
        // extrapolation and verify the identity on the row that fits).
        let cfg = MachineConfig {
            node_memory_words: 1 << 19,
            ..MachineConfig::full_machine_2048()
        };
        let subgrid = (128usize, 256usize);
        let mut w = Workload::new(cfg, PaperPattern::Square9, subgrid);
        let direct = w.measure();
        println!(
            "  9-point square {:>4}x{:<4} on 2,048 nodes (direct): {:.2} Gflops",
            subgrid.0,
            subgrid.1,
            direct.gflops(w.machine.config()),
        );
        let mut w16 = Workload::new(
            MachineConfig::test_board_16(),
            PaperPattern::Square9,
            subgrid,
        );
        let extrap = w16.measure().extrapolate(2048);
        println!(
            "  9-point square {:>4}x{:<4} on 2,048 nodes (extrapolated from 16): {:.2} Gflops",
            subgrid.0,
            subgrid.1,
            extrap.gflops(w16.machine.config()),
        );
        assert_eq!(
            direct.cycles, extrap.cycles,
            "SIMD synchronicity: direct and extrapolated cycle counts must agree"
        );
        println!("\n  cycle counts agree exactly — the paper's extrapolation rule validated");
    } else {
        println!("(pass --full-machine to also simulate the 2,048-node rows directly)");
    }
}
