//! Regenerates the stencil pictograms and register-economy figures of
//! §2 and §5 (experiment F2).
//!
//! Shows, for each pattern the paper draws: the pictogram, the border
//! widths, the multistencil at each attempted width with its register
//! demand (including the 13-point diamond's 48-vs-28 registers), and the
//! ring-buffer sizes with their LCM unroll factor.
//!
//! ```sh
//! cargo run --release -p cmcc-bench --bin repro_stencils
//! ```

use cmcc_cm2::config::{MachineConfig, FPU_REGISTERS};
use cmcc_core::columns::plan_rings;
use cmcc_core::compiler::Compiler;
use cmcc_core::multistencil::Multistencil;
use cmcc_core::patterns::PaperPattern;
use cmcc_core::pictogram::{render_multistencil, render_stencil};

fn main() {
    let compiler = Compiler::new(MachineConfig::test_board_16());

    for pattern in PaperPattern::ALL {
        let stencil = pattern.stencil();
        println!(
            "=== {pattern} ({} flops/point) ===",
            stencil.useful_flops_per_point()
        );
        println!("{}", render_stencil(&stencil));
        println!("border widths: {}\n", stencil.borders());

        for width in [8usize, 4, 2, 1] {
            let ms = Multistencil::new(&stencil, width);
            let budget = FPU_REGISTERS - 1 - usize::from(stencil.needs_one_register());
            print!(
                "width {width}: {} cells, natural register demand {}",
                ms.cell_count(),
                ms.natural_register_demand()
            );
            match plan_rings(&ms, budget, 512) {
                Ok(plan) => println!(
                    " -> rings {:?}, {} registers, unroll x{}",
                    plan.rings().iter().map(|r| r.size).collect::<Vec<_>>(),
                    plan.registers_used(),
                    plan.unroll()
                ),
                Err(e) => println!(" -> REJECTED: {e}"),
            }
        }

        let compiled = compiler
            .compile_assignment(&pattern.fortran())
            .expect("paper patterns compile");
        let widest = compiled.widths()[0];
        println!("\nwidth-{widest} multistencil:");
        println!("{}", render_multistencil(&stencil, widest));
        println!(
            "compiled widths {:?}; sequencer scratch entries {}\n",
            compiled.widths(),
            compiled.scratch_entries()
        );
    }

    // The two §5.3 headline numbers, asserted.
    let cross = PaperPattern::Cross5.stencil();
    assert_eq!(Multistencil::new(&cross, 8).cell_count(), 26);
    let diamond = PaperPattern::Diamond13.stencil();
    assert_eq!(Multistencil::new(&diamond, 8).natural_register_demand(), 48);
    assert_eq!(Multistencil::new(&diamond, 4).natural_register_demand(), 28);
    println!("paper figures verified: cross width-8 multistencil = 26 positions;");
    println!("diamond width-8 demand = 48 registers (rejected), width-4 = 28 (accepted)");
}
