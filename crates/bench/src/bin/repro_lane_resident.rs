//! Lane-resident steady state benchmark: persistent mirror vs
//! gather-everything lockstep.
//!
//! Runs the iterated 9-point square stencil on the simulated 16-node
//! test board with a 128×128 per-node subgrid (a 512×512 global array)
//! in fast lockstep mode, once with the lane-resident steady state (the
//! default: the plan's mirror persists across executes, sources are
//! refreshed and the halo exchange runs directly on lane storage, only
//! writable ranges are scattered back) and once with residency pinned
//! off (every iteration gathers the full operand view and exchanges on
//! the node domain — the prior steady state). A scalar fast run is the
//! oracle.
//!
//! All three runs must produce bit-identical results and exactly equal
//! `Measurement`s; the resident path must not allocate mirror storage
//! after warmup. The steady-state speedup of resident over non-resident
//! is asserted ≥1.3× in full mode and written to
//! `BENCH_lane_resident.json` either way, together with each
//! configuration's steady-state copy bytes per iteration.
//!
//! ```sh
//! cargo run --release -p cmcc-bench --bin repro_lane_resident
//! cargo run --release -p cmcc-bench --bin repro_lane_resident -- --quick
//! ```
//!
//! `--quick` runs 2 timed iterations per configuration and checks
//! equivalence and allocation-freedom only (for CI, where wall-clock
//! ratios on shared runners are noise).

use cmcc_bench::Workload;
use cmcc_cm2::config::MachineConfig;
use cmcc_cm2::timing::Measurement;
use cmcc_core::patterns::PaperPattern;
use cmcc_runtime::array::CmArray;
use cmcc_runtime::convolve::ExecOptions;
use cmcc_runtime::plan::{ExecutionPlan, PlanLifetime, StencilBinding};
use cmcc_runtime::ExecEngine;
use std::time::Instant;

const SUBGRID: (usize, usize) = (128, 128);
const FULL_ITERS: usize = 20;
const WARMUP: usize = 2;

/// One timed configuration: best steady-state seconds per iteration, the
/// measurement, the gathered result, the machine-total copy bytes per
/// steady-state iteration, and the lane-mirror allocations that happened
/// *during the timed iterations* (must be zero everywhere).
struct Timed {
    secs: f64,
    m: Measurement,
    result: Vec<f32>,
    copy_bytes: usize,
    steady_mirror_allocs: u64,
}

/// Builds a plan for `w` under `opts`, replays it `WARMUP + iters`
/// times, and reports the steady state.
fn time_config(w: &mut Workload, opts: &ExecOptions, iters: usize, resident: bool) -> Timed {
    let refs: Vec<&CmArray> = w.coeffs.iter().collect();
    let binding =
        StencilBinding::new(&w.compiled, &w.r, &[&w.x], &refs).expect("bench binding is valid");
    let mark = w.machine.alloc_mark();
    let mut plan = ExecutionPlan::build(&mut w.machine, &binding, opts, PlanLifetime::Scoped)
        .expect("bench plan builds");
    assert_eq!(
        plan.uses_lane_resident(),
        resident,
        "residency must follow the requested options on a clean binding"
    );
    let copy_bytes = plan.steady_state_copy_words() * 4;
    let mut m = plan.execute(&mut w.machine).expect("bench plan executes");
    for _ in 1..WARMUP {
        m = plan.execute(&mut w.machine).expect("bench plan executes");
    }
    let warm_allocs = plan.lane_mirror_allocations();
    let node_allocs = w.machine.alloc_count();
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let start = Instant::now();
        m = plan.execute(&mut w.machine).expect("bench plan executes");
        best = best.min(start.elapsed().as_secs_f64());
    }
    let steady_mirror_allocs = plan.lane_mirror_allocations() - warm_allocs;
    assert_eq!(
        w.machine.alloc_count(),
        node_allocs,
        "steady-state execute must not allocate node fields"
    );
    let result = w.r.gather(&w.machine);
    w.machine.release_to(mark);
    Timed {
        secs: best,
        m,
        result,
        copy_bytes,
        steady_mirror_allocs,
    }
}

fn workload() -> Workload {
    Workload::new(
        MachineConfig::test_board_16(),
        PaperPattern::Square9,
        SUBGRID,
    )
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let iters = if quick { 2 } else { FULL_ITERS };

    println!("Lane-resident steady state benchmark (fast lockstep, 1 host thread)");
    println!(
        "9-point square, {}x{} per node on the 16-node board (512x512 global), \
         warmup {WARMUP} + {iters} iters per configuration\n",
        SUBGRID.0, SUBGRID.1
    );

    let lockstep = ExecOptions::fast()
        .with_engine(ExecEngine::Lockstep)
        .with_threads(1);
    let scalar = ExecOptions::fast()
        .with_engine(ExecEngine::Scalar)
        .with_threads(1);

    // Identically-seeded workloads per configuration, so any divergence
    // is the steady state's fault, not the data's.
    let resident = time_config(&mut workload(), &lockstep, iters, true);
    println!(
        "  lane-resident: {:.6} s/iter, {} copy bytes/iter",
        resident.secs, resident.copy_bytes
    );
    let baseline = time_config(
        &mut workload(),
        &lockstep.with_lane_resident(false),
        iters,
        false,
    );
    println!(
        "  gather/scatter: {:.6} s/iter, {} copy bytes/iter",
        baseline.secs, baseline.copy_bytes
    );
    let oracle = time_config(
        &mut workload(),
        &scalar.with_lane_resident(false),
        iters,
        false,
    );
    println!("  scalar oracle:  {:.6} s/iter", oracle.secs);

    let bits = |v: &[f32]| v.iter().map(|f| f.to_bits()).collect::<Vec<u32>>();
    let bit_identical = bits(&resident.result) == bits(&oracle.result)
        && bits(&baseline.result) == bits(&oracle.result);
    let measurement_equal = resident.m == oracle.m && baseline.m == oracle.m;
    let speedup = baseline.secs / resident.secs;
    println!(
        "\n  resident speedup over gather/scatter {speedup:.2}x; \
         bit-identical: {bit_identical}; measurements equal: {measurement_equal}; \
         steady-state mirror allocations: {}",
        resident.steady_mirror_allocs
    );

    let cores = cmcc_bench::host_cores();
    let scaling_gate = if quick {
        "recorded only (--quick: speedup not asserted)"
    } else {
        "asserted (>=1.3x over the gather/scatter baseline)"
    };
    let json = format!(
        "{{\n  \"pattern\": \"{}\",\n  \"global_grid\": [512, 512],\n  \"subgrid\": [{}, {}],\n  \
         \"host_cores\": {cores},\n  \"scaling_gate\": \"{scaling_gate}\",\n  \
         \"threads\": 1,\n  \"warmup\": {WARMUP},\n  \"iters\": {iters},\n  \
         \"resident_secs_per_iter\": {:.6},\n  \
         \"lockstep_secs_per_iter\": {:.6},\n  \
         \"scalar_secs_per_iter\": {:.6},\n  \
         \"resident_copy_bytes_per_iter\": {},\n  \
         \"lockstep_copy_bytes_per_iter\": {},\n  \
         \"speedup\": {speedup:.4},\n  \
         \"steady_state_lane_mirror_allocs\": {},\n  \
         \"bit_identical\": {bit_identical},\n  \
         \"measurement_equal\": {measurement_equal}\n}}\n",
        PaperPattern::Square9.name(),
        SUBGRID.0,
        SUBGRID.1,
        resident.secs,
        baseline.secs,
        oracle.secs,
        resident.copy_bytes,
        baseline.copy_bytes,
        resident.steady_mirror_allocs,
    );
    std::fs::write("BENCH_lane_resident.json", &json).expect("write BENCH_lane_resident.json");
    println!("  wrote BENCH_lane_resident.json");

    assert!(bit_identical, "engines disagree with the scalar oracle");
    assert!(measurement_equal, "Measurements diverge across engines");
    assert_eq!(
        resident.steady_mirror_allocs, 0,
        "the resident steady state reshaped its mirror"
    );
    assert_eq!(
        baseline.steady_mirror_allocs, 0,
        "the baseline steady state reshaped its mirror"
    );
    assert!(
        resident.copy_bytes < baseline.copy_bytes,
        "residency must strictly reduce steady-state copy traffic"
    );
    if quick {
        println!("  (--quick: speedup recorded but not asserted)");
    } else {
        assert!(
            speedup >= 1.3,
            "expected >=1.3x lane-resident speedup, got {speedup:.2}x"
        );
    }
}
