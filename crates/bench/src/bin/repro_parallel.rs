//! Parallel-engine benchmark: serial vs threaded node execution.
//!
//! Runs the 9-point square stencil on the simulated 16-node test board
//! with a 128×128 per-node subgrid (a 512×512 global array), once with
//! the serial executor (`threads = 1`) and once with one host thread
//! per core, and checks the two are indistinguishable: bit-identical
//! result arrays and exactly equal `Measurement`s. Wall-clock times and
//! the speedup are written to `BENCH_parallel.json`.
//!
//! ```sh
//! cargo run --release -p cmcc-bench --bin repro_parallel
//! cargo run --release -p cmcc-bench --bin repro_parallel -- --smoke
//! ```
//!
//! `--smoke` runs a single timed iteration per mode (for CI). The ≥2×
//! speedup assertion only applies on hosts with 4+ cores — on fewer
//! cores the numbers are still recorded, but a speedup is not expected.

use cmcc_bench::Workload;
use cmcc_cm2::config::MachineConfig;
use cmcc_cm2::timing::Measurement;
use cmcc_core::patterns::PaperPattern;
use cmcc_runtime::convolve::ExecOptions;
use std::time::Instant;

const SUBGRID: (usize, usize) = (128, 128);

/// Times `iters` runs of `w` under `opts`; returns the best wall-clock
/// seconds per iteration, the last measurement, and the gathered result.
fn time_mode(w: &mut Workload, opts: &ExecOptions, iters: usize) -> (f64, Measurement, Vec<f32>) {
    let mut best = f64::INFINITY;
    let mut m = w.run(opts); // warmup (also the compared measurement)
    for _ in 0..iters {
        let start = Instant::now();
        m = w.run(opts);
        best = best.min(start.elapsed().as_secs_f64());
    }
    (best, m, w.r.gather(&w.machine))
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let iters = if smoke { 1 } else { 3 };
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let threads = ExecOptions::default().threads;

    println!("Parallel per-node execution engine benchmark");
    println!(
        "9-point square, {}x{} per node on the 16-node board (512x512 global), {cores} host core(s)\n",
        SUBGRID.0, SUBGRID.1
    );

    // Two identically-seeded workloads, so any divergence is the
    // executor's fault, not the data's.
    let mut serial_w = Workload::new(
        MachineConfig::test_board_16(),
        PaperPattern::Square9,
        SUBGRID,
    );
    let mut par_w = Workload::new(
        MachineConfig::test_board_16(),
        PaperPattern::Square9,
        SUBGRID,
    );

    let (serial_secs, serial_m, serial_r) = time_mode(&mut serial_w, &ExecOptions::serial(), iters);
    println!("  serial   (threads=1):  {serial_secs:.3} s/iter");
    let (par_secs, par_m, par_r) = time_mode(
        &mut par_w,
        &ExecOptions::default().with_threads(threads),
        iters,
    );
    println!("  parallel (threads={threads}): {par_secs:.3} s/iter");

    let bit_identical = serial_r.len() == par_r.len()
        && serial_r
            .iter()
            .zip(&par_r)
            .all(|(a, b)| a.to_bits() == b.to_bits());
    let measurement_equal = serial_m == par_m;
    let speedup = serial_secs / par_secs;
    println!("\n  speedup {speedup:.2}x; bit-identical: {bit_identical}; measurements equal: {measurement_equal}");

    let json = format!(
        "{{\n  \"pattern\": \"{}\",\n  \"global_grid\": [512, 512],\n  \"subgrid\": [{}, {}],\n  \
         \"host_cores\": {cores},\n  \"threads\": {threads},\n  \"iters\": {iters},\n  \
         \"serial_secs_per_iter\": {serial_secs:.6},\n  \"parallel_secs_per_iter\": {par_secs:.6},\n  \
         \"speedup\": {speedup:.4},\n  \"bit_identical\": {bit_identical},\n  \
         \"measurement_equal\": {measurement_equal}\n}}\n",
        PaperPattern::Square9.name(),
        SUBGRID.0,
        SUBGRID.1,
    );
    std::fs::write("BENCH_parallel.json", &json).expect("write BENCH_parallel.json");
    println!("  wrote BENCH_parallel.json");

    assert!(bit_identical, "parallel results diverge from serial");
    assert!(
        measurement_equal,
        "parallel Measurement differs from serial"
    );
    if cores >= 4 {
        assert!(
            speedup >= 2.0,
            "expected >=2x speedup on {cores} cores, got {speedup:.2}x"
        );
    } else {
        println!("  ({cores} core(s) < 4: speedup recorded but not asserted)");
    }
}
