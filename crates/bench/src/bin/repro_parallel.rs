//! Parallel-engine benchmark: the node-threading scaling curve.
//!
//! Runs the 9-point square stencil on the simulated 16-node test board
//! with a 128×128 per-node subgrid (a 512×512 global array) under the
//! cycle-accurate scalar engine, sweeping the host thread count over
//! the powers of two up to `available_parallelism()` (plus the core
//! count itself) — the curve never oversubscribes the host. Every
//! thread count must be indistinguishable from the serial baseline:
//! bit-identical result arrays and exactly equal `Measurement`s. Each
//! point is a warmup run followed by 20 timed iterations (best-of); the
//! full scaling curve is written to `BENCH_parallel.json`.
//!
//! ```sh
//! cargo run --release -p cmcc-bench --bin repro_parallel
//! cargo run --release -p cmcc-bench --bin repro_parallel -- --smoke
//! ```
//!
//! `--smoke` drops to 2 timed iterations per point (for CI). The ≥2×
//! speedup assertion applies to the maximum thread count only, and only
//! on hosts with 4+ cores. On a single core the curve collapses to the
//! serial point and the scaling gate is skipped outright (recorded in
//! the JSON as the `scaling_gate` reason) — there is no scaling to
//! measure, and timing thread churn would only produce noise.

use cmcc_bench::Workload;
use cmcc_cm2::config::MachineConfig;
use cmcc_cm2::timing::Measurement;
use cmcc_core::patterns::PaperPattern;
use cmcc_runtime::convolve::ExecOptions;
use std::time::Instant;

const SUBGRID: (usize, usize) = (128, 128);
const FULL_ITERS: usize = 20;

/// One point on the scaling curve.
struct Point {
    threads: usize,
    secs_per_iter: f64,
    measurement: Measurement,
    result: Vec<f32>,
}

/// Times `iters` runs of `w` at `threads` host threads after one warmup
/// run; keeps the best wall-clock seconds per iteration (least noise on
/// a shared host) plus the measurement and gathered result for the
/// equivalence checks.
fn time_threads(w: &mut Workload, threads: usize, iters: usize) -> Point {
    let opts = ExecOptions::default().with_threads(threads);
    let mut measurement = w.run(&opts); // warmup (also the compared measurement)
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let start = Instant::now();
        measurement = w.run(&opts);
        best = best.min(start.elapsed().as_secs_f64());
    }
    Point {
        threads,
        secs_per_iter: best,
        measurement,
        result: w.r.gather(&w.machine),
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let iters = if smoke { 2 } else { FULL_ITERS };
    let cores = cmcc_bench::host_cores();
    // Powers of two up to the host's parallelism, plus the core count
    // itself: {1} on one core, {1,2,4,6} on six, {1,2,4,8} on eight.
    let mut sweep: Vec<usize> = std::iter::successors(Some(1usize), |t| Some(t * 2))
        .take_while(|&t| t < cores)
        .collect();
    sweep.push(cores);
    sweep.dedup();

    println!("Parallel per-node execution engine benchmark");
    println!(
        "9-point square, {}x{} per node on the 16-node board (512x512 global), \
         {cores} host core(s), warmup + {iters} iters per point\n",
        SUBGRID.0, SUBGRID.1
    );

    let mut w = Workload::new(
        MachineConfig::test_board_16(),
        PaperPattern::Square9,
        SUBGRID,
    );

    let points: Vec<Point> = sweep
        .iter()
        .map(|&threads| {
            let p = time_threads(&mut w, threads, iters);
            println!("  threads={threads}: {:.3} s/iter", p.secs_per_iter);
            p
        })
        .collect();

    let base = &points[0];
    assert_eq!(base.threads, 1, "curve starts at the serial baseline");
    let bit_identical = points.iter().all(|p| {
        p.result.len() == base.result.len()
            && p.result
                .iter()
                .zip(&base.result)
                .all(|(a, b)| a.to_bits() == b.to_bits())
    });
    let measurement_equal = points.iter().all(|p| p.measurement == base.measurement);
    let max_point = points.last().expect("sweep is non-empty");
    let max_speedup = base.secs_per_iter / max_point.secs_per_iter;
    println!(
        "\n  speedup at threads={}: {max_speedup:.2}x; bit-identical: {bit_identical}; \
         measurements equal: {measurement_equal}",
        max_point.threads
    );

    let curve: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "    {{ \"threads\": {}, \"secs_per_iter\": {:.6}, \"speedup\": {:.4} }}",
                p.threads,
                p.secs_per_iter,
                base.secs_per_iter / p.secs_per_iter,
            )
        })
        .collect();
    // The gate is a real assertion only where scaling is measurable; a
    // single core has no multi-thread points at all, so the gate is
    // skipped, with the reason recorded rather than implied.
    let scaling_gate = if cores >= 4 {
        format!("asserted (>=2x at {} threads)", max_point.threads)
    } else if cores == 1 {
        "skipped (1 host core: serial point only, no scaling to measure)".to_owned()
    } else {
        format!("recorded only ({cores} cores < 4)")
    };
    let json = format!(
        "{{\n  \"pattern\": \"{}\",\n  \"global_grid\": [512, 512],\n  \"subgrid\": [{}, {}],\n  \
         \"host_cores\": {cores},\n  \"scaling_gate\": \"{scaling_gate}\",\n  \
         \"warmup\": 1,\n  \"iters\": {iters},\n  \
         \"curve\": [\n{}\n  ],\n  \
         \"max_threads_speedup\": {max_speedup:.4},\n  \"bit_identical\": {bit_identical},\n  \
         \"measurement_equal\": {measurement_equal}\n}}\n",
        PaperPattern::Square9.name(),
        SUBGRID.0,
        SUBGRID.1,
        curve.join(",\n"),
    );
    std::fs::write("BENCH_parallel.json", &json).expect("write BENCH_parallel.json");
    println!("  wrote BENCH_parallel.json");

    assert!(bit_identical, "threaded results diverge from serial");
    assert!(
        measurement_equal,
        "threaded Measurement differs from serial"
    );
    if cores >= 4 {
        assert!(
            max_speedup >= 2.0,
            "expected >=2x speedup on {cores} cores, got {max_speedup:.2}x"
        );
    } else {
        println!("  ({scaling_gate})");
    }
}
