//! Regenerates Figure 1: the division of a 256×256 array among 16 nodes
//! (experiment F1).
//!
//! ```sh
//! cargo run --release -p cmcc-bench --bin repro_figure1
//! ```

use cmcc_cm2::config::MachineConfig;
use cmcc_cm2::machine::Machine;
use cmcc_runtime::array::CmArray;

fn main() {
    let mut machine = Machine::new(MachineConfig::test_board_16()).expect("valid preset");
    let a = CmArray::new(&mut machine, 256, 256).expect("array fits");

    println!("Figure 1: division of a 256x256 array among 16 nodes");
    println!(
        "(node grid {}x{}, each node holds a {}x{} subgrid; Fortran 1-based ranges)\n",
        machine.grid().rows(),
        machine.grid().cols(),
        a.sub_rows(),
        a.sub_cols()
    );

    for gr in 0..machine.grid().rows() {
        for gc in 0..machine.grid().cols() {
            let r0 = gr * a.sub_rows() + 1;
            let r1 = (gr + 1) * a.sub_rows();
            let c0 = gc * a.sub_cols() + 1;
            let c1 = (gc + 1) * a.sub_cols();
            print!("A({r0:>3}:{r1:>3},{c0:>3}:{c1:>3})  ");
        }
        println!();
    }

    // Verify the layout programmatically: the element the paper's figure
    // places on node (3, 2) — A(193, 129) in 1-based terms — lives there.
    let (node, lr, lc) = a.locate(&machine, 192, 128);
    assert_eq!(node, machine.grid().id(3, 2));
    assert_eq!((lr, lc), (0, 0));
    println!("\nverified: A(193,129) is element (1,1) of node (4,3)'s subgrid, as drawn");
}
