//! Serve-pool throughput benchmark: region leases vs the exclusive lock.
//!
//! Four tenant threads share one [`Session`] (one machine, one plan
//! cache) and each repeatedly executes its own stencil on its own
//! arrays — fully disjoint plans, the stencil-as-a-service steady
//! state. The same workload runs twice: once through the region-lease
//! admission path (disjoint executes proceed concurrently under the
//! shared machine lock) and once serialized by an external mutex
//! around every execute — the behavior of the pre-lease session, where
//! the global write lock admitted one execute at a time. Throughput of
//! both phases, the lease counters, and an overlapping-plan conflict
//! probe are written to `BENCH_serve.json`.
//!
//! ```sh
//! cargo run --release -p cmcc-bench --bin repro_serve
//! cargo run --release -p cmcc-bench --bin repro_serve -- --smoke
//! ```
//!
//! `--smoke` drops the iteration count (for CI). The ≥1.5× speedup
//! assertion applies only on hosts with 2+ cores; on one core the
//! numbers are still recorded, with the skip reason in the JSON.

use cmcc::Session;
use cmcc_cm2::exec::{ExecEngine, ExecMode};
use cmcc_core::compiler::CompiledStencil;
use cmcc_core::patterns::PaperPattern;
use cmcc_core::recognize::CoeffSpec;
use cmcc_runtime::array::CmArray;
use cmcc_runtime::convolve::ExecOptions;
use cmcc_testkit::Rng;
use std::sync::{Barrier, Mutex};
use std::time::Instant;

const WORKERS: usize = 4;
const SUBGRID: (usize, usize) = (64, 64);
const FULL_ITERS: usize = 30;
const SMOKE_ITERS: usize = 4;

/// One tenant: a session handle plus its private plan and arrays.
struct Tenant {
    session: Session,
    compiled: CompiledStencil,
    x: CmArray,
    r: CmArray,
    coeffs: Vec<CmArray>,
}

impl Tenant {
    fn run(&mut self, opts: &ExecOptions) {
        let coeff_refs: Vec<&CmArray> = self.coeffs.iter().collect();
        self.session
            .run_with_multi(&self.compiled, &self.r, &[&self.x], &coeff_refs, opts)
            .expect("bench execute succeeds");
    }

    fn result(&self) -> Vec<f32> {
        self.r.gather(&self.session.machine())
    }
}

/// Runs every tenant for `iters` iterations on its own thread,
/// optionally serializing each execute through `lock` (the exclusive
/// baseline). Returns elapsed wall-clock seconds for the whole pool.
fn timed_pool(tenants: &mut [Tenant], iters: usize, lock: Option<&Mutex<()>>) -> f64 {
    let opts = exec_opts();
    let barrier = Barrier::new(tenants.len());
    let barrier = &barrier;
    let start = Instant::now();
    std::thread::scope(|scope| {
        for t in tenants.iter_mut() {
            scope.spawn(move || {
                barrier.wait();
                for _ in 0..iters {
                    match lock {
                        Some(m) => {
                            let _serialized = m.lock().unwrap_or_else(|e| e.into_inner());
                            t.run(&opts);
                        }
                        None => t.run(&opts),
                    }
                }
            });
        }
    });
    start.elapsed().as_secs_f64()
}

/// Lane-resident lockstep execution (region-eligible), one host thread
/// per tenant so the pool's parallelism comes from the lease table.
fn exec_opts() -> ExecOptions {
    let mut opts = ExecOptions::default()
        .with_threads(1)
        .with_engine(ExecEngine::Lockstep);
    opts.mode = ExecMode::Fast;
    opts
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let iters = if smoke { SMOKE_ITERS } else { FULL_ITERS };
    let cores = cmcc_bench::host_cores();

    println!("Serve-pool throughput benchmark: region leases vs exclusive lock");
    println!(
        "{WORKERS} tenants x disjoint plans, {}x{} per node on the 16-node board, \
         {cores} host core(s), {iters} iters per tenant per phase\n",
        SUBGRID.0, SUBGRID.1
    );

    // One shared session; each tenant compiles its own pattern and
    // allocates its own arrays — disjoint node-memory ranges by
    // construction (the field allocator never overlaps live fields).
    let root = Session::test_board().expect("test board constructs");
    let patterns = [
        PaperPattern::Square9,
        PaperPattern::Cross5,
        PaperPattern::Star9,
        PaperPattern::Diamond13,
    ];
    let rows = SUBGRID.0 * root.machine().grid().rows();
    let cols = SUBGRID.1 * root.machine().grid().cols();
    let mut rng = Rng::new(0x1991_0626);
    let mut tenants: Vec<Tenant> = patterns
        .iter()
        .map(|p| {
            let mut session = root.clone();
            let compiled = session.compile(&p.fortran()).expect("pattern compiles");
            let mut fill = |session: &mut Session, lo: f32, hi: f32| {
                let a = session.array(rows, cols).expect("array fits");
                let data: Vec<f32> = (0..rows * cols).map(|_| rng.f32_in(lo, hi)).collect();
                a.scatter(&mut session.machine_mut(), &data);
                a
            };
            let x = fill(&mut session, -1.0, 1.0);
            let named = compiled
                .spec()
                .coeffs
                .iter()
                .filter(|c| matches!(c, CoeffSpec::Named(_)))
                .count();
            let coeffs: Vec<CmArray> = (0..named).map(|_| fill(&mut session, -0.5, 0.5)).collect();
            let r = session.array(rows, cols).expect("result fits");
            Tenant {
                session,
                compiled,
                x,
                r,
                coeffs,
            }
        })
        .collect();

    // Warmup: build every plan and prime the lane mirrors, so both
    // timed phases replay the steady state.
    let opts = exec_opts();
    for t in tenants.iter_mut() {
        t.run(&opts);
    }
    let lane_resident: Vec<bool> = tenants
        .iter()
        .map(|t| {
            t.session
                .last_plan()
                .is_some_and(|p| p.uses_lane_resident())
        })
        .collect();
    let leases_before = root.lease_stats();

    // Phase 1: concurrent, admission through the lease table.
    let concurrent_secs = timed_pool(&mut tenants, iters, None);
    let concurrent_results: Vec<Vec<f32>> = tenants.iter().map(Tenant::result).collect();
    let after_concurrent = root.lease_stats();

    // Phase 2: the pre-lease baseline — one execute at a time, enforced
    // by an external mutex exactly where the global write lock used to
    // serialize the pool.
    let serialize = Mutex::new(());
    let serialized_secs = timed_pool(&mut tenants, iters, Some(&serialize));
    let serialized_results: Vec<Vec<f32>> = tenants.iter().map(Tenant::result).collect();

    let bit_identical = concurrent_results
        .iter()
        .zip(&serialized_results)
        .all(|(a, b)| {
            a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
        });
    let region_grants = after_concurrent.region_grants - leases_before.region_grants;
    let peak_concurrent = after_concurrent.peak_concurrent;

    // Overlap probe: two handles race the *same* plan bound to the same
    // result array, so their leases overlap on a writable range — the
    // exclusive fallback must be taken *and counted*, never silent.
    // Overlap in time is scheduling-dependent, so retry in rounds.
    let conflicts_before = root.lease_stats().conflicts;
    let mut overlap_rounds = 0;
    while root.lease_stats().conflicts == conflicts_before && overlap_rounds < 20 {
        overlap_rounds += 1;
        let pair = &mut tenants[..2];
        let (a, b) = pair.split_at_mut(1);
        let shared_r = &a[0].r;
        let b = &mut b[0];
        let mut b_clone = Tenant {
            session: b.session.clone(),
            compiled: a[0].compiled.clone(),
            x: a[0].x,
            r: *shared_r,
            coeffs: a[0].coeffs.clone(),
        };
        let a = &mut a[0];
        std::thread::scope(|scope| {
            scope.spawn(|| {
                for _ in 0..8 {
                    a.run(&exec_opts());
                }
            });
            scope.spawn(|| {
                for _ in 0..8 {
                    b_clone.run(&exec_opts());
                }
            });
        });
    }
    let overlap_conflicts = root.lease_stats().conflicts - conflicts_before;
    let final_leases = root.lease_stats();

    let speedup = serialized_secs / concurrent_secs;
    let runs = (WORKERS * iters) as f64;
    println!(
        "  concurrent: {concurrent_secs:.3} s ({:.1} runs/s), serialized: {serialized_secs:.3} s \
         ({:.1} runs/s) -> speedup {speedup:.2}x",
        runs / concurrent_secs,
        runs / serialized_secs,
    );
    println!(
        "  leases: {region_grants} region grants, peak {peak_concurrent} concurrent, \
         overlap probe counted {overlap_conflicts} conflicts in {overlap_rounds} round(s), \
         {} live after drain",
        final_leases.live,
    );

    let gate = if cores >= 2 {
        "asserted (>=1.5x over the serialized baseline)".to_owned()
    } else {
        format!("skipped ({cores} host core: no parallelism to measure)")
    };
    let resident_json: Vec<String> = lane_resident.iter().map(bool::to_string).collect();
    let json = format!(
        "{{\n  \"workers\": {WORKERS},\n  \"subgrid\": [{}, {}],\n  \"host_cores\": {cores},\n  \
         \"iters\": {iters},\n  \"concurrent_secs\": {concurrent_secs:.6},\n  \
         \"serialized_secs\": {serialized_secs:.6},\n  \
         \"concurrent_runs_per_sec\": {:.4},\n  \"serialized_runs_per_sec\": {:.4},\n  \
         \"speedup\": {speedup:.4},\n  \"region_grants\": {region_grants},\n  \
         \"peak_concurrent\": {peak_concurrent},\n  \
         \"overlap_conflicts\": {overlap_conflicts},\n  \
         \"live_leases_after\": {},\n  \"lane_resident\": [{}],\n  \
         \"bit_identical\": {bit_identical},\n  \"gate\": \"{gate}\",\n  \
         \"scaling_gate\": \"{gate}\"\n}}\n",
        SUBGRID.0,
        SUBGRID.1,
        runs / concurrent_secs,
        runs / serialized_secs,
        final_leases.live,
        resident_json.join(", "),
    );
    std::fs::write("BENCH_serve.json", &json).expect("write BENCH_serve.json");
    println!("  wrote BENCH_serve.json");

    assert!(
        bit_identical,
        "concurrent results diverge from the serialized baseline"
    );
    assert_eq!(
        final_leases.live, 0,
        "leases leaked: {} still live after the pool drained",
        final_leases.live
    );
    assert!(
        region_grants > 0,
        "disjoint lane-resident plans never took the region path"
    );
    if cores >= 2 {
        assert!(
            overlap_conflicts > 0,
            "overlapping plans never counted an exclusive fallback"
        );
        assert!(
            speedup >= 1.5,
            "expected >=1.5x serve throughput on {cores} cores, got {speedup:.2}x"
        );
    } else {
        println!("  ({gate})");
    }
}
