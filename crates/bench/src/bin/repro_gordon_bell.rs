//! Regenerates the Gordon Bell seismic rows of §7 (experiment T1c).
//!
//! The prize computation: "a nine-point cross stencil plus an additional
//! term from two time steps before the current one", on 64×128 subgrids
//! across 2,048 nodes, in two variants:
//!
//! * **v1** — stencil + tenth term + two time-step copies → paper: 11.62
//!   Gflops sustained;
//! * **v2** — main loop unrolled by three so the arrays rotate roles →
//!   paper: 14.88 Gflops sustained (14.18 overall with I/O for the prize).
//!
//! This harness also reports the three-way ladder against the baselines:
//! generic slicewise CM Fortran (the §3 "around 4 gigaflops" path) and
//! the 1989 hand-coded library routine (the 5.6 Gflops path).
//!
//! ```sh
//! cargo run --release -p cmcc-bench --bin repro_gordon_bell
//! ```

use cmcc_baseline::{
    elementwise_copy, elementwise_multiply_add, handlib_convolve, slicewise_convolve,
};
use cmcc_bench::Workload;
use cmcc_cm2::config::MachineConfig;
use cmcc_cm2::machine::Machine;
use cmcc_core::patterns::PaperPattern;
use cmcc_runtime::array::CmArray;
use cmcc_runtime::convolve::ExecOptions;

fn main() {
    let cfg = MachineConfig::test_board_16();
    let subgrid = (64usize, 128usize);
    println!("Gordon Bell seismic rows (64x128 subgrid per node, extrapolated to 2,048 nodes)\n");

    // --- The compiled stencil (nine-point cross = the Star9 pattern). ---
    let mut w = Workload::new(cfg.clone(), PaperPattern::Star9, subgrid);
    let stencil_only = w.measure();

    // The tenth term (R += C10 * P2) and the time-step copies are generic
    // elementwise CM Fortran; model them on the same machine.
    let rows = w.x.rows();
    let cols = w.x.cols();
    let c10 = CmArray::new(&mut w.machine, rows, cols).expect("fits");
    c10.fill(&mut w.machine, -1.0);
    let p2 = CmArray::new(&mut w.machine, rows, cols).expect("fits");
    let tenth = elementwise_multiply_add(&mut w.machine, &w.r, &c10, &p2).expect("shapes match");
    let copy1 = elementwise_copy(&mut w.machine, &p2, &w.x).expect("shapes match");
    let copy2 = elementwise_copy(&mut w.machine, &w.x, &w.r).expect("shapes match");

    let v1 = stencil_only.combine(&tenth).combine(&copy1).combine(&copy2);
    let v2 = stencil_only.combine(&tenth);

    // v3: the paper's future work ("handle all ten terms as one stencil
    // pattern") via the multi-source extension — one fused kernel, no
    // separate elementwise pass.
    let fused_src = format!(
        "{} + C10 * CSHIFT(P2, DIM=1, SHIFT=0)",
        PaperPattern::Star9.fortran().replace('X', "P")
    );
    let fused = cmcc_core::compiler::Compiler::new(cfg.clone())
        .compile_assignment_extended(&fused_src)
        .expect("fused statement compiles");
    let mut fused_w = Workload::from_source(cfg.clone(), &PaperPattern::Star9.fortran(), subgrid);
    // Rebind: run the fused kernel directly through convolve_multi.
    let rows = fused_w.x.rows();
    let cols = fused_w.x.cols();
    let p2b = CmArray::new(&mut fused_w.machine, rows, cols).expect("fits");
    let c10b = CmArray::new(&mut fused_w.machine, rows, cols).expect("fits");
    let mut coeff_refs: Vec<&CmArray> = fused_w.coeffs.iter().collect();
    coeff_refs.push(&c10b);
    let v3 = cmcc_runtime::convolve_multi(
        &mut fused_w.machine,
        &fused,
        &fused_w.r,
        &[&fused_w.x, &p2b],
        &coeff_refs,
        &ExecOptions::default(),
    )
    .expect("fused run succeeds");

    println!(
        "{:<34} {:>14} {:>14} {:>10}",
        "variant", "Gflops (sim)", "Gflops (paper)", "ratio"
    );
    println!("{}", "-".repeat(76));
    let v1_full = v1.extrapolate(2048);
    let v2_full = v2.extrapolate(2048);
    println!(
        "{:<34} {:>14.2} {:>14.2} {:>10}",
        "v1: stencil + tenth term + copies",
        v1_full.gflops(&cfg),
        11.62,
        "-"
    );
    println!(
        "{:<34} {:>14.2} {:>14.2} {:>10}",
        "v2: unrolled x3 (no copies)",
        v2_full.gflops(&cfg),
        14.88,
        "-"
    );
    let v3_full = v3.extrapolate(2048);
    println!(
        "{:<34} {:>14.2} {:>14} {:>10}",
        "v3: ten terms fused (future work)",
        v3_full.gflops(&cfg),
        "-",
        "-"
    );
    let sim_ratio = v2_full.gflops(&cfg) / v1_full.gflops(&cfg);
    println!(
        "{:<34} {:>14.2} {:>14.2} {:>10}",
        "v2/v1 unrolling speedup",
        sim_ratio,
        14.88 / 11.62,
        ""
    );
    assert!(sim_ratio > 1.05, "unrolling must win");
    assert!(
        v3_full.gflops(&cfg) > v2_full.gflops(&cfg),
        "fusing the tenth term must beat the separate elementwise pass"
    );

    // --- The three-way ladder (pure stencil, 256x256 subgrids). ---
    println!("\nThree-generation ladder for the nine-point cross (256x256 subgrids):\n");
    let spec = PaperPattern::Star9.spec().expect("builtin");
    let big = (256usize, 256usize);
    let mut machine = Machine::new(cfg.clone()).expect("valid");
    let rows = big.0 * machine.grid().rows();
    let cols = big.1 * machine.grid().cols();
    let x = CmArray::new(&mut machine, rows, cols).expect("fits");
    let r = CmArray::new(&mut machine, rows, cols).expect("fits");
    x.fill_with(&mut machine, |i, j| ((i * 3 + j) % 7) as f32 * 0.1);
    let coeffs: Vec<CmArray> = (0..9)
        .map(|i| {
            let a = CmArray::new(&mut machine, rows, cols).expect("fits");
            a.fill(&mut machine, 0.05 * (i + 1) as f32);
            a
        })
        .collect();
    let refs: Vec<&CmArray> = coeffs.iter().collect();

    let slice = slicewise_convolve(&mut machine, &spec, &r, &x, &refs)
        .expect("slicewise runs")
        .extrapolate(2048);
    let hand = handlib_convolve(&mut machine, &spec, &r, &x, &refs)
        .expect("hand library runs")
        .extrapolate(2048);
    let mut w256 = Workload::new(cfg.clone(), PaperPattern::Star9, big);
    let compiled = w256.run(&ExecOptions::default()).extrapolate(2048);

    println!(
        "{:<44} {:>8.2} Gflops   (paper: ~4)",
        "generic slicewise CM Fortran (1990 compiler)",
        slice.gflops(&cfg)
    );
    println!(
        "{:<44} {:>8.2} Gflops   (paper: 5.6 in the 1989 prize run)",
        "1989 hand-coded library routine",
        hand.gflops(&cfg)
    );
    println!(
        "{:<44} {:>8.2} Gflops   (paper: >10, 11.34 extrapolated)",
        "convolution compiler (this work)",
        compiled.gflops(&cfg)
    );
    assert!(slice.gflops(&cfg) < hand.gflops(&cfg));
    assert!(hand.gflops(&cfg) < compiled.gflops(&cfg));
    println!("\nordering preserved: slicewise < hand library < convolution compiler");
}
