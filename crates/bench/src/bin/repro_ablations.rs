//! Ablation studies for the design choices the paper calls out
//! (experiments A1–A5 in DESIGN.md).
//!
//! ```sh
//! cargo run --release -p cmcc-bench --bin repro_ablations            # all
//! cargo run --release -p cmcc-bench --bin repro_ablations -- --width # one
//! ```
//!
//! * `--corner-skip` — §5.1: skipping the corner-exchange step for
//!   patterns with no diagonal taps.
//! * `--comm` — §4.1: the new simultaneous four-neighbor primitive vs the
//!   old one-direction-at-a-time primitive.
//! * `--width` — §5.3: multistencil width 8/4/2/1.
//! * `--rings` — §5.4: per-column ring buffers vs naive bounding-box row
//!   rings.
//! * `--half-strips` — §5.2: half-strips (simple microcode, double
//!   startup) vs full strips.
//! * `--pairing` — §5.3: paired-result thread interleave vs one chain at
//!   a time.

use cmcc_bench::Workload;
use cmcc_cm2::config::{MachineConfig, FPU_REGISTERS};
use cmcc_core::columns::plan_rings;
use cmcc_core::compiler::Compiler;
use cmcc_core::multistencil::Multistencil;
use cmcc_core::patterns::PaperPattern;
use cmcc_runtime::convolve::ExecOptions;
use cmcc_runtime::halo::ExchangePrimitive;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let all = args.is_empty() || args.iter().any(|a| a == "--all");
    let want = |flag: &str| all || args.iter().any(|a| a == flag);

    if want("--corner-skip") {
        corner_skip();
    }
    if want("--comm") {
        comm_primitive();
    }
    if want("--width") {
        width_sweep();
    }
    if want("--rings") {
        ring_strategies();
    }
    if want("--half-strips") {
        half_strips();
    }
    if want("--pairing") {
        pairing();
    }
}

fn cfg() -> MachineConfig {
    MachineConfig::test_board_16()
}

/// A6 — paired results (§5.3): "we compute the results in pairs in order
/// to exploit the timing of the WTL3164 chip; two chained multiply-add
/// threads are interleaved." The counterfactual runs one chain at a time
/// against a dummy partner thread.
fn pairing() {
    println!("A6: paired vs single-thread multiply-add chains (256x256 subgrids)\n");
    println!(
        "{:<18} {:>14} {:>14} {:>8}",
        "pattern", "paired Mflops", "single Mflops", "ratio"
    );
    for pattern in PaperPattern::TABLE {
        let mut w = Workload::new(cfg(), pattern, (256, 256));
        let paired = w.measure();
        let single_compiler = Compiler::new(cfg()).with_paired_results(false);
        w.compiled = single_compiler
            .compile_assignment(&pattern.fortran())
            .expect("compiles unpaired");
        let single = w.measure();
        let p = paired.mflops(w.machine.config());
        let s = single.mflops(w.machine.config());
        println!(
            "{:<18} {:>14.1} {:>14.1} {:>7.2}x",
            pattern.name(),
            p,
            s,
            p / s
        );
    }
    println!("\n(the interleave is what lets both FPU threads stay busy: dropping it\n roughly halves the multiply-add throughput)\n");
}

/// A1 — corner-exchange skip (§5.1): "This saves only a very small amount
/// of time for very large arrays, but ... does save a noticeable amount
/// of time for smaller arrays."
fn corner_skip() {
    println!("A1: corner-exchange skip (comm cycles per iteration)\n");
    println!(
        "{:<18} {:>9} {:>12} {:>12} {:>9}",
        "pattern", "subgrid", "with corners", "skipped", "saved"
    );
    for pattern in [PaperPattern::Cross5, PaperPattern::Square9] {
        for subgrid in [(64usize, 64usize), (256, 256)] {
            let mut w = Workload::new(cfg(), pattern, subgrid);
            let skip = w.run(&ExecOptions::default());
            let noskip = w.run(&ExecOptions {
                skip_corners_when_possible: false,
                ..ExecOptions::default()
            });
            let saved = noskip.cycles.comm.saturating_sub(skip.cycles.comm);
            println!(
                "{:<18} {:>4}x{:<4} {:>12} {:>12} {:>9}",
                pattern.name(),
                subgrid.0,
                subgrid.1,
                noskip.cycles.comm,
                skip.cycles.comm,
                saved
            );
        }
    }
    println!("\n(the square pattern has diagonal taps, so its corner step can never be skipped)\n");
}

/// A2 — new vs old grid primitive (§4.1).
fn comm_primitive() {
    println!("A2: four-neighbor simultaneous exchange vs per-direction exchange\n");
    println!(
        "{:<28} {:>7} {:>12} {:>12} {:>8}",
        "pattern", "border", "new (cycles)", "old (cycles)", "ratio"
    );
    let wide3 = "R = C1 * CSHIFT(X, 1, -3) + C2 * X + C3 * CSHIFT(X, 2, +3)";
    let cases: [(&str, String); 3] = [
        ("5-point cross (border 1)", PaperPattern::Cross5.fortran()),
        ("9-point star (border 2)", PaperPattern::Star9.fortran()),
        ("axis pattern (border 3)", wide3.to_owned()),
    ];
    for (name, source) in cases {
        let mut w = Workload::from_source(cfg(), &source, (128, 128));
        let new = w.run(&ExecOptions::default());
        let old = w.run(&ExecOptions {
            primitive: ExchangePrimitive::OldPerDirection,
            ..ExecOptions::default()
        });
        println!(
            "{:<28} {:>7} {:>12} {:>12} {:>7.2}x",
            name,
            w.compiled.stencil().borders().max_width(),
            new.cycles.comm,
            old.cycles.comm,
            old.cycles.comm as f64 / new.cycles.comm.max(1) as f64
        );
    }
    println!();
}

/// A3 — multistencil width (§5.3): wider strips amortize loads and
/// stores over more results.
fn width_sweep() {
    println!("A3: multistencil width sweep (256x256 subgrids, Mflops on 16 nodes)\n");
    println!(
        "{:<18} {:>8} {:>8} {:>8} {:>8}",
        "pattern", "w=8", "w=4", "w=2", "w=1"
    );
    for pattern in PaperPattern::TABLE {
        let mut row = format!("{:<18}", pattern.name());
        for width in [8usize, 4, 2, 1] {
            let compiler = Compiler::new(cfg()).with_widths([width]);
            match compiler.compile_assignment(&pattern.fortran()) {
                Ok(compiled) => {
                    let mut w = Workload::new(cfg(), pattern, (256, 256));
                    w.compiled = compiled;
                    let m = w.measure();
                    row.push_str(&format!(" {:>8.1}", m.mflops(w.machine.config())));
                }
                Err(_) => row.push_str(&format!(" {:>8}", "-")),
            }
        }
        println!("{row}");
    }
    println!("\n(\"-\" = no kernel at that width: register file exhausted)\n");
}

/// A4 — ring-buffer strategy (§5.4): per-column rings vs the naive
/// bounding-box-row scheme.
fn ring_strategies() {
    println!("A4: register demand, per-column rings vs bounding-box rows\n");
    println!(
        "{:<18} {:>5} {:>10} {:>12} {:>12} {:>8}",
        "pattern", "width", "bbox rows", "rows demand", "rings demand", "unroll"
    );
    for pattern in PaperPattern::TABLE {
        let stencil = pattern.stencil();
        let budget = FPU_REGISTERS - 1 - usize::from(stencil.needs_one_register());
        for width in [8usize, 4] {
            let ms = Multistencil::new(&stencil, width);
            let cols = ms.columns();
            let bbox_cols = cols.len();
            let lo = cols.iter().map(|c| c.lo).min().expect("nonempty");
            let hi = cols.iter().map(|c| c.hi).max().expect("nonempty");
            let bbox_rows = (hi - lo + 1) as usize;
            let rows_demand = bbox_cols * bbox_rows;
            match plan_rings(&ms, budget, 512) {
                Ok(plan) => println!(
                    "{:<18} {:>5} {:>10} {:>12} {:>12} {:>8}",
                    pattern.name(),
                    width,
                    bbox_rows,
                    rows_demand,
                    plan.registers_used(),
                    plan.unroll()
                ),
                Err(_) => println!(
                    "{:<18} {:>5} {:>10} {:>12} {:>12} {:>8}",
                    pattern.name(),
                    width,
                    bbox_rows,
                    rows_demand,
                    "reject",
                    "-"
                ),
            }
        }
    }
    println!(
        "\n(the diamond at width 4: bounding-box rows would need 40 registers — \"dividing \
         it into five equal rows of eight positions each would require 40 registers\" — \
         while per-column rings fit; §5.4)\n"
    );
}

/// A5 — half-strips vs full strips (§5.2): half-strips double the
/// startup count but keep the microcode simple; full strips are the
/// counterfactual.
fn half_strips() {
    println!("A5: half-strips vs full strips (compute + front-end cycles per iteration)\n");
    println!(
        "{:<9} {:>14} {:>14} {:>10}",
        "subgrid", "half-strips", "full strips", "overhead"
    );
    for subgrid in [(16usize, 16usize), (64, 64), (256, 256)] {
        let mut w = Workload::new(cfg(), PaperPattern::Cross5, subgrid);
        let half = w.run(&ExecOptions::default());
        let full = w.run(&ExecOptions {
            half_strips: false,
            ..ExecOptions::default()
        });
        let h = half.cycles.compute + half.cycles.frontend;
        let f = full.cycles.compute + full.cycles.frontend;
        println!(
            "{:>4}x{:<4} {:>14} {:>14} {:>9.1}%",
            subgrid.0,
            subgrid.1,
            h,
            f,
            100.0 * (h as f64 - f as f64) / f as f64
        );
    }
    println!(
        "\n(\"The price of this is additional overhead for having to start up the microcode \
         loop twice as many times; this overhead is relatively small when operating on \
         medium to large arrays\" — §5.2)\n"
    );
}
