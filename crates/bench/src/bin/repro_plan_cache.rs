//! Plan-cache benchmark: rebuild-per-iteration vs compile-once/run-many.
//!
//! Runs the paper's 5-point cross for 100 iterations on the 16-node test
//! board two ways:
//!
//! * **rebuild** — a [`convolve_per_call`] call per iteration: the
//!   preserved pre-plan executor, which re-allocates halo buffers and
//!   constant pages, refills them on every node, rebuilds the exchange
//!   op list and coefficient address tables, re-plans strips, and
//!   resolves every memory address per step — on every call;
//! * **planned** — one [`ExecutionPlan`] built up front, then 100
//!   allocation-free executes of the pre-resolved schedule.
//!
//! A cycle-accurate verification pass first checks the two paths produce
//! bit-identical results and equal `Measurement`s; the timed loops
//! then run in fast (functional) mode — the mode an application
//! iterating many time steps would use — and the planned path must be at
//! least 1.5× faster per steady-state iteration. First-call and
//! steady-state wall clocks, allocation counts, and the speedup are
//! written to `BENCH_plan_cache.json`.
//!
//! ```sh
//! cargo run --release -p cmcc-bench --bin repro_plan_cache
//! cargo run --release -p cmcc-bench --bin repro_plan_cache -- --quick
//! ```
//!
//! `--quick` runs 10 iterations and skips the speedup assertion (CI
//! smoke); the numbers are still recorded.

use cmcc_bench::Workload;
use cmcc_cm2::config::MachineConfig;
use cmcc_cm2::exec::ExecMode;
use cmcc_core::patterns::PaperPattern;
use cmcc_runtime::array::CmArray;
use cmcc_runtime::convolve::ExecOptions;
use cmcc_runtime::legacy::convolve_per_call;
use cmcc_runtime::plan::{ExecutionPlan, PlanLifetime, StencilBinding};
use std::time::Instant;

const SUBGRID: (usize, usize) = (16, 16);

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let iters: usize = if quick { 10 } else { 100 };
    // Serial execution: the benchmark isolates plan reuse, not host
    // threading, and the serial path is wall-clock reproducible.
    let cycle_opts = ExecOptions::serial();
    let fast_opts = ExecOptions {
        mode: ExecMode::Fast,
        ..ExecOptions::serial()
    };

    println!("Plan-cache benchmark: rebuild-per-iteration vs compile-once/run-many");
    println!(
        "5-point cross, {}x{} per node on the 16-node board, {iters} iterations\n",
        SUBGRID.0, SUBGRID.1
    );

    // Two identically seeded workloads, so any divergence is the
    // execution pipeline's fault, not the data's.
    let mut rebuild_w = Workload::new(
        MachineConfig::test_board_16(),
        PaperPattern::Cross5,
        SUBGRID,
    );
    let mut plan_w = Workload::new(
        MachineConfig::test_board_16(),
        PaperPattern::Cross5,
        SUBGRID,
    );

    // Verification pass, cycle-accurate: the old per-call path and the
    // plan pipeline must agree on results and full cycle accounting.
    let rebuild_m = {
        let refs: Vec<&CmArray> = rebuild_w.coeffs.iter().collect();
        convolve_per_call(
            &mut rebuild_w.machine,
            &rebuild_w.compiled,
            &rebuild_w.r,
            &[&rebuild_w.x],
            &refs,
            &cycle_opts,
        )
        .expect("bench arguments are valid")
    };
    let rebuild_r = rebuild_w.r.gather(&rebuild_w.machine);

    let coeff_refs: Vec<&CmArray> = plan_w.coeffs.iter().collect();
    let build_start = Instant::now();
    let binding = StencilBinding::new(&plan_w.compiled, &plan_w.r, &[&plan_w.x], &coeff_refs)
        .expect("bench arguments are valid");
    let mut plan = ExecutionPlan::build(
        &mut plan_w.machine,
        &binding,
        &cycle_opts,
        PlanLifetime::Persistent,
    )
    .expect("bench plan builds");
    let plan_m = plan.execute(&mut plan_w.machine).expect("bench plan runs");
    let first_call_secs = build_start.elapsed().as_secs_f64();
    let planned_r = plan_w.r.gather(&plan_w.machine);

    let bit_identical = rebuild_r.len() == planned_r.len()
        && rebuild_r
            .iter()
            .zip(&planned_r)
            .all(|(a, b)| a.to_bits() == b.to_bits());
    let measurement_equal = rebuild_m == plan_m;
    println!("  verification (cycle mode): bit-identical: {bit_identical}; measurements equal: {measurement_equal}");

    // Rebuild path, timed: the pre-plan executor once per iteration.
    let allocs_before = rebuild_w.machine.alloc_count();
    let start = Instant::now();
    for _ in 0..iters {
        let refs: Vec<&CmArray> = rebuild_w.coeffs.iter().collect();
        convolve_per_call(
            &mut rebuild_w.machine,
            &rebuild_w.compiled,
            &rebuild_w.r,
            &[&rebuild_w.x],
            &refs,
            &fast_opts,
        )
        .expect("bench arguments are valid");
    }
    let rebuild_secs = start.elapsed().as_secs_f64() / iters as f64;
    let rebuild_allocs = rebuild_w.machine.alloc_count() - allocs_before;
    println!(
        "  rebuild: {:.1} us/iter ({rebuild_allocs} field allocations over {iters} runs)",
        rebuild_secs * 1e6,
    );

    // Planned path, timed: rebuild the plan for fast mode (options are
    // part of a plan's identity), then execute `iters` times.
    plan.release(&mut plan_w.machine);
    let build_start = Instant::now();
    plan = ExecutionPlan::build(
        &mut plan_w.machine,
        &binding,
        &fast_opts,
        PlanLifetime::Persistent,
    )
    .expect("bench plan builds");
    let build_secs = build_start.elapsed().as_secs_f64();
    let fast_m = plan.execute(&mut plan_w.machine).expect("bench plan runs");
    let steady_allocs_before = plan_w.machine.alloc_count();
    let start = Instant::now();
    for _ in 0..iters {
        let m = plan.execute(&mut plan_w.machine).expect("bench plan runs");
        assert_eq!(m, fast_m, "planned iterations must be deterministic");
    }
    let planned_secs = start.elapsed().as_secs_f64() / iters as f64;
    let steady_allocs = plan_w.machine.alloc_count() - steady_allocs_before;
    println!(
        "  planned: {:.1} us/iter after a {:.1} us build ({steady_allocs} field allocations over {iters} runs)",
        planned_secs * 1e6,
        build_secs * 1e6,
    );
    plan.release(&mut plan_w.machine);

    let speedup = rebuild_secs / planned_secs;
    println!("\n  speedup {speedup:.2}x steady-state over rebuild-per-iteration");

    let cores = cmcc_bench::host_cores();
    let scaling_gate = if quick {
        "recorded only (--quick: speedup not asserted)"
    } else {
        "asserted (>=1.5x steady-state over rebuild)"
    };
    let json = format!(
        "{{\n  \"pattern\": \"{}\",\n  \"subgrid\": [{}, {}],\n  \
         \"host_cores\": {cores},\n  \"scaling_gate\": \"{scaling_gate}\",\n  \
         \"iters\": {iters},\n  \
         \"quick\": {quick},\n  \"first_call_secs\": {first_call_secs:.9},\n  \
         \"rebuild_secs_per_iter\": {rebuild_secs:.9},\n  \
         \"planned_secs_per_iter\": {planned_secs:.9},\n  \"plan_build_secs\": {build_secs:.9},\n  \
         \"speedup\": {speedup:.4},\n  \"rebuild_field_allocs\": {rebuild_allocs},\n  \
         \"steady_state_field_allocs\": {steady_allocs},\n  \"bit_identical\": {bit_identical},\n  \
         \"measurement_equal\": {measurement_equal}\n}}\n",
        PaperPattern::Cross5.name(),
        SUBGRID.0,
        SUBGRID.1,
    );
    std::fs::write("BENCH_plan_cache.json", &json).expect("write BENCH_plan_cache.json");
    println!("  wrote BENCH_plan_cache.json");

    assert!(bit_identical, "planned results diverge from rebuild");
    assert!(
        measurement_equal,
        "planned Measurement differs from rebuild"
    );
    assert_eq!(steady_allocs, 0, "steady-state execute allocated a field");
    assert!(rebuild_allocs > 0, "rebuild path no longer allocates?");
    if !quick {
        assert!(
            speedup >= 1.5,
            "expected >=1.5x steady-state speedup, got {speedup:.2}x"
        );
    }
}
