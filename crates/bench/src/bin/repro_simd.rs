//! Lockstep SIMD executor benchmark: scalar vs lockstep fast mode,
//! plus the kernel tier vs the interpreted lockstep baseline.
//!
//! Runs the 9-point square stencil on the simulated 16-node test board
//! with a 128×128 per-node subgrid (a 512×512 global array) in fast
//! functional mode, once with the node-outer scalar interpreter and once
//! with the step-outer lockstep broadcast engine. Both use a persistent
//! execution plan (built once, replayed), a single host thread, and
//! identically seeded data, so the measured ratio isolates the executor:
//! per-step dispatch amortized over all node lanes plus contiguous
//! lane-major inner loops, exactly the paper's §4.3 broadcast of one
//! instruction stream to every node.
//!
//! Results must be bit-identical and `Measurement`s exactly equal; the
//! steady-state speedup is asserted ≥2× in full mode and written to
//! `BENCH_simd.json` either way. Lane residency is pinned *off* here so
//! the ratio stays an executor comparison under equal copy traffic — the
//! residency saving has its own benchmark, `repro_lane_resident`. Both
//! engines' steady-state copy bytes per iteration are reported.
//!
//! A second ratio isolates plan-time kernel generation: the lockstep
//! plan is replayed twice on *lane-resident* plans — residency strips
//! the gather/scatter floor both non-resident passes share — once with
//! the kernel tier live and once with it toggled off
//! (`ExecutionPlan::set_kernel_tier`), timing the monomorphized kernels
//! against the per-step interpreter. Full mode asserts the kernels win
//! by ≥2×, and the profiled pass asserts `interpreted_steps == 0` — on
//! this workload every strip must classify into the family, which is
//! also the CI smoke gate (it runs under `--quick` too).
//!
//! A third pass re-times the lockstep engine with `cmcc_obs` profiling
//! *enabled* — and the flight recorder pinned *off* — and asserts the
//! overhead stays under 2% in full mode. The first two passes run with
//! profiling disabled, so the asserted on/off delta also bounds the cost
//! of the disabled instrumentation paths (branch-on-a-relaxed-atomic for
//! the counters, one relaxed load per would-be trace event) that every
//! build now carries.
//!
//! ```sh
//! cargo run --release -p cmcc-bench --bin repro_simd
//! cargo run --release -p cmcc-bench --bin repro_simd -- --quick
//! ```
//!
//! `--quick` runs 2 timed iterations per engine and checks equivalence
//! only (for CI, where wall-clock ratios on shared runners are noise).

use cmcc_bench::Workload;
use cmcc_cm2::config::MachineConfig;
use cmcc_cm2::timing::Measurement;
use cmcc_core::patterns::PaperPattern;
use cmcc_runtime::array::CmArray;
use cmcc_runtime::convolve::ExecOptions;
use cmcc_runtime::plan::{ExecutionPlan, PlanLifetime, StencilBinding};
use cmcc_runtime::ExecEngine;
use std::time::Instant;

const SUBGRID: (usize, usize) = (128, 128);
const FULL_ITERS: usize = 20;
const WARMUP: usize = 2;

/// Builds a persistent plan for `w` under `engine`, replays it
/// `WARMUP + iters` times, and returns the best steady-state seconds per
/// iteration, the measurement, the gathered result, and the bytes each
/// steady-state iteration copies (machine-total, from the plan's own
/// accounting).
///
/// The lockstep plan pins `lane_resident` off: this benchmark isolates
/// per-step dispatch amortization, so both engines pay the same
/// per-iteration copy traffic; the residency saving is measured
/// separately by `repro_lane_resident`.
fn time_engine(
    w: &mut Workload,
    engine: ExecEngine,
    iters: usize,
    kernel_tier: bool,
    resident: bool,
) -> (f64, Measurement, Vec<f32>, usize) {
    let opts = ExecOptions::fast()
        .with_engine(engine)
        .with_threads(1)
        .with_lane_resident(resident);
    let refs: Vec<&CmArray> = w.coeffs.iter().collect();
    let binding =
        StencilBinding::new(&w.compiled, &w.r, &[&w.x], &refs).expect("bench binding is valid");
    let mark = w.machine.alloc_mark();
    let mut plan = ExecutionPlan::build(&mut w.machine, &binding, &opts, PlanLifetime::Scoped)
        .expect("bench plan builds");
    assert_eq!(
        plan.uses_lockstep(),
        engine == ExecEngine::Lockstep,
        "a clean single-source binding must lane-map iff lockstep is requested"
    );
    plan.set_kernel_tier(kernel_tier);
    if engine == ExecEngine::Lockstep && kernel_tier {
        assert!(
            plan.kernelized_strips() > 0,
            "the 9-point workload must compile against the kernel family"
        );
    }
    let copy_bytes = plan.steady_state_copy_words() * 4;
    let mut m = plan.execute(&mut w.machine).expect("bench plan executes");
    for _ in 1..WARMUP {
        m = plan.execute(&mut w.machine).expect("bench plan executes");
    }
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let start = Instant::now();
        m = plan.execute(&mut w.machine).expect("bench plan executes");
        best = best.min(start.elapsed().as_secs_f64());
    }
    let result = w.r.gather(&w.machine);
    w.machine.release_to(mark);
    (best, m, result, copy_bytes)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let iters = if quick { 2 } else { FULL_ITERS };

    println!("Lockstep SIMD executor benchmark (fast mode, 1 host thread)");
    println!(
        "9-point square, {}x{} per node on the 16-node board (512x512 global), \
         warmup {WARMUP} + {iters} iters per engine\n",
        SUBGRID.0, SUBGRID.1
    );

    // Two identically-seeded workloads, so any divergence is the
    // executor's fault, not the data's.
    let mut scalar_w = Workload::new(
        MachineConfig::test_board_16(),
        PaperPattern::Square9,
        SUBGRID,
    );
    let mut lockstep_w = Workload::new(
        MachineConfig::test_board_16(),
        PaperPattern::Square9,
        SUBGRID,
    );

    let (scalar_secs, scalar_m, scalar_r, scalar_copy_bytes) =
        time_engine(&mut scalar_w, ExecEngine::Scalar, iters, true, false);
    println!("  scalar:   {scalar_secs:.6} s/iter, {scalar_copy_bytes} copy bytes/iter");
    let (lockstep_secs, lockstep_m, lockstep_r, lockstep_copy_bytes) =
        time_engine(&mut lockstep_w, ExecEngine::Lockstep, iters, true, false);
    println!("  lockstep: {lockstep_secs:.6} s/iter, {lockstep_copy_bytes} copy bytes/iter");

    // Kernel tier vs interpreted lockstep, both on lane-resident plans:
    // residency strips the per-iteration gather/scatter floor the
    // non-resident passes above share, so this ratio isolates the step
    // engine itself — the thing plan-time kernel generation changes.
    let mut resident_w = Workload::new(
        MachineConfig::test_board_16(),
        PaperPattern::Square9,
        SUBGRID,
    );
    let (resident_secs, resident_m, resident_r, _) =
        time_engine(&mut resident_w, ExecEngine::Lockstep, iters, true, true);
    println!("  lockstep (resident, kernelized):  {resident_secs:.6} s/iter");
    let mut interp_w = Workload::new(
        MachineConfig::test_board_16(),
        PaperPattern::Square9,
        SUBGRID,
    );
    let (interp_secs, interp_m, interp_r, _) =
        time_engine(&mut interp_w, ExecEngine::Lockstep, iters, false, true);
    println!("  lockstep (resident, interpreted): {interp_secs:.6} s/iter");
    assert_eq!(
        interp_m, lockstep_m,
        "the kernel tier must not change the Measurement"
    );
    assert_eq!(
        resident_m, lockstep_m,
        "lane residency must not change the Measurement"
    );
    for (label, r) in [("kernel tier", &interp_r), ("lane residency", &resident_r)] {
        assert!(
            r.iter()
                .zip(&lockstep_r)
                .all(|(a, b)| a.to_bits() == b.to_bits()),
            "the {label} must not change results"
        );
    }

    // Third pass: identical lockstep workload with profiling counters
    // live, to measure the telemetry overhead — and to gate kernel
    // coverage: on the 9-point workload no lockstep step may fall back
    // to the interpreter.
    let mut profiled_w = Workload::new(
        MachineConfig::test_board_16(),
        PaperPattern::Square9,
        SUBGRID,
    );
    cmcc_obs::set_enabled(true);
    // Pin the flight recorder OFF for the profiled pass: the <2%
    // overhead budget asserted below covers the counters plus the
    // compiled-in-but-disabled trace path (one relaxed atomic load per
    // would-be event) that every instrumented crate now carries.
    cmcc_obs::trace::set_trace_enabled(false);
    let counters_before = cmcc_obs::snapshot();
    let (profiled_secs, profiled_m, profiled_r, _) =
        time_engine(&mut profiled_w, ExecEngine::Lockstep, iters, true, false);
    let counters_after = cmcc_obs::snapshot();
    cmcc_obs::set_enabled(false);
    let kernelized_steps = counters_after.get(cmcc_obs::Counter::KernelizedSteps)
        - counters_before.get(cmcc_obs::Counter::KernelizedSteps);
    let interpreted_steps = counters_after.get(cmcc_obs::Counter::InterpretedSteps)
        - counters_before.get(cmcc_obs::Counter::InterpretedSteps);
    assert!(
        kernelized_steps > 0,
        "the profiled lockstep pass must run kernelized steps"
    );
    assert_eq!(
        interpreted_steps, 0,
        "no lockstep step may fall back to the interpreter on the 9-point workload"
    );
    let profile_overhead = profiled_secs / lockstep_secs - 1.0;
    println!(
        "  lockstep (profiled): {profiled_secs:.6} s/iter ({:+.2}% overhead)",
        profile_overhead * 100.0
    );
    assert_eq!(
        profiled_m, lockstep_m,
        "profiling must not change the Measurement"
    );
    assert!(
        profiled_r
            .iter()
            .zip(&lockstep_r)
            .all(|(a, b)| a.to_bits() == b.to_bits()),
        "profiling must not change results"
    );

    let bit_identical = scalar_r.len() == lockstep_r.len()
        && scalar_r
            .iter()
            .zip(&lockstep_r)
            .all(|(a, b)| a.to_bits() == b.to_bits());
    let measurement_equal = scalar_m == lockstep_m;
    let speedup = scalar_secs / lockstep_secs;
    let kernel_speedup = interp_secs / resident_secs;
    println!(
        "\n  speedup {speedup:.2}x (kernels over interpreted lockstep: {kernel_speedup:.2}x); \
         bit-identical: {bit_identical}; measurements equal: {measurement_equal}"
    );

    // The profiled pass executes the plan WARMUP + iters times; the JSON
    // records the per-execution step count so it is iteration-invariant.
    let kernelized_steps_per_run = kernelized_steps / (WARMUP + iters) as u64;
    let cores = cmcc_bench::host_cores();
    let scaling_gate = if quick {
        "recorded only (--quick: wall-clock ratios not asserted)".to_owned()
    } else {
        "asserted (>=2x lockstep, >=2x kernel tier, <2% profiling overhead)".to_owned()
    };
    let json = format!(
        "{{\n  \"pattern\": \"{}\",\n  \"global_grid\": [512, 512],\n  \"subgrid\": [{}, {}],\n  \
         \"host_cores\": {cores},\n  \"scaling_gate\": \"{scaling_gate}\",\n  \
         \"threads\": 1,\n  \"warmup\": {WARMUP},\n  \"iters\": {iters},\n  \
         \"scalar_secs_per_iter\": {scalar_secs:.6},\n  \
         \"lockstep_secs_per_iter\": {lockstep_secs:.6},\n  \
         \"lockstep_resident_secs_per_iter\": {resident_secs:.6},\n  \
         \"lockstep_resident_interpreted_secs_per_iter\": {interp_secs:.6},\n  \
         \"scalar_copy_bytes_per_iter\": {scalar_copy_bytes},\n  \
         \"lockstep_copy_bytes_per_iter\": {lockstep_copy_bytes},\n  \
         \"profiled_secs_per_iter\": {profiled_secs:.6},\n  \
         \"profiling_overhead\": {profile_overhead:.4},\n  \
         \"kernelized_steps_per_run\": {kernelized_steps_per_run},\n  \
         \"interpreted_steps_per_run\": {interpreted_steps},\n  \
         \"speedup\": {speedup:.4},\n  \"kernel_speedup\": {kernel_speedup:.4},\n  \
         \"bit_identical\": {bit_identical},\n  \
         \"measurement_equal\": {measurement_equal}\n}}\n",
        PaperPattern::Square9.name(),
        SUBGRID.0,
        SUBGRID.1,
    );
    std::fs::write("BENCH_simd.json", &json).expect("write BENCH_simd.json");
    println!("  wrote BENCH_simd.json");

    assert!(bit_identical, "lockstep results diverge from scalar");
    assert!(
        measurement_equal,
        "lockstep Measurement differs from scalar"
    );
    if quick {
        println!("  (--quick: speedup and overhead recorded but not asserted)");
    } else {
        assert!(
            speedup >= 2.0,
            "expected >=2x lockstep speedup, got {speedup:.2}x"
        );
        assert!(
            kernel_speedup >= 2.0,
            "expected >=2x kernel-tier speedup over interpreted lockstep, got {kernel_speedup:.2}x"
        );
        assert!(
            profile_overhead < 0.02,
            "profiling overhead {:.2}% exceeds the 2% budget",
            profile_overhead * 100.0
        );
    }
}
