//! Temporal tiling benchmark: k fused time steps per halo exchange on
//! the lane-resident mirror.
//!
//! Runs the all-literal five-point heat kernel as an iterated time loop
//! (ping-pong rebinds between executes) on the simulated 16-node test
//! board with a 128×128 per-node subgrid (a 512×512 global array), 100
//! time steps, in fast lockstep lane-resident mode — once per temporal
//! depth k ∈ {1, 2, 4} plus a k=3 run that needs a depth-1 tail plan
//! for the last step. The k=1 scalar fast loop is the oracle.
//!
//! Gates (all recorded in `BENCH_temporal.json`):
//! - every depth's final state is bit-identical to the iterated scalar
//!   oracle, including the tail-step composition;
//! - the halo-exchange program-run count drops by exactly k×;
//! - the observed copy words across the post-warmup executes equal the
//!   plan's analytic `rebind_cycle_copy_words` prediction exactly;
//! - the k=4 cycles beat the k=1 cycles by ≥1.25× in warm per-step
//!   wall-clock (full mode only — `--quick` records the ratio without
//!   asserting it).
//!
//! The wall-clock ratio is measured separately from the correctness
//! loops: one primed plan per depth, then interleaved rounds that run
//! one rebind+execute cycle per depth and keep each depth's minimum
//! cycle time. Interleaving matters — host speed drifts on multi-second
//! scales, so timing whole loops back to back compares two different
//! machines; per-round interleaving with a min estimator compares the
//! same machine state across depths. The priming execute (full mirror
//! gather + coefficient-stream packing) is excluded everywhere: an
//! iterated time loop pays it once, not per step.
//!
//! ```sh
//! cargo run --release -p cmcc-bench --bin repro_temporal
//! cargo run --release -p cmcc-bench --bin repro_temporal -- --quick
//! ```
//!
//! `--quick` shrinks the subgrid to 32×32 and the loop to 12 steps so
//! CI exercises every gate except the wall-clock ratio.

use cmcc_cm2::config::MachineConfig;
use cmcc_runtime::convolve::ExecOptions;
use cmcc_runtime::plan::{ExecutionPlan, PlanLifetime, StencilBinding};
use cmcc_runtime::ExecEngine;
use std::time::Instant;

/// The paper's canonical iterated workload: explicit five-point heat
/// diffusion, all-literal coefficients (no coefficient halos, so the
/// exchange count is purely source-halo traffic).
const HEAT: &str = "T_NEXT = 0.2 * EOSHIFT(T, DIM=1, SHIFT=-1) \
                    + 0.2 * EOSHIFT(T, DIM=2, SHIFT=-1) + 0.2 * T \
                    + 0.2 * EOSHIFT(T, DIM=2, SHIFT=+1) \
                    + 0.2 * EOSHIFT(T, DIM=1, SHIFT=+1)";

/// One measured time loop.
struct LoopRun {
    /// Wall-clock seconds for the timed window: every execute after the
    /// first. The first execute primes the lane mirror (full gather,
    /// coefficient-stream packing) and is excluded, the same way
    /// `repro_lane_resident` measures warm steady state — an iterated
    /// time loop pays that cost once, not per step.
    secs: f64,
    /// Time steps covered by the timed window: `(executes - 1) * depth`.
    timed_steps: usize,
    /// Final state bits after all steps.
    bits: Vec<u32>,
    /// Halo-exchange program runs the loop recorded.
    halo_exchanges: u64,
    /// Observed copy words across the post-warmup executes.
    observed_copy_words: u64,
    /// `(executes - 1) * rebind_cycle_copy_words` — what the plan's
    /// analytic model says those executes should have moved.
    predicted_copy_words: u64,
}

/// Runs `steps` heat steps, `depth` of them fused per execute, on a
/// fresh deterministically-seeded workload; `steps` need not divide by
/// `depth` — the remainder runs through a depth-1 tail plan, exactly
/// how a driver time loop handles it.
fn run_loop(
    cfg: &MachineConfig,
    subgrid: (usize, usize),
    steps: usize,
    depth: usize,
    opts: &ExecOptions,
) -> LoopRun {
    let mut w = cmcc_bench::Workload::from_source(cfg.clone(), HEAT, subgrid);
    let opts = (*opts).with_temporal_depth(depth);
    let binding =
        StencilBinding::new(&w.compiled, &w.r, &[&w.x], &[]).expect("bench binding is valid");
    let mut plan = ExecutionPlan::build(&mut w.machine, &binding, &opts, PlanLifetime::Scoped)
        .expect("bench plan builds");
    assert_eq!(
        plan.temporal_depth(),
        depth,
        "requested depth must take effect ({:?})",
        plan.temporal_fallback()
    );
    let executes = steps / depth;
    let tail = steps % depth;

    let before = cmcc_obs::snapshot();
    // Priming execute: full mirror gather + coefficient-stream packing.
    // Timed separately from the steady rebind cycles below.
    plan.execute(&mut w.machine).expect("bench plan executes");
    let warm = cmcc_obs::snapshot();
    let start = Instant::now();
    for e in 1..executes {
        let (from, to) = if e % 2 == 1 {
            (&w.r, &w.x)
        } else {
            (&w.x, &w.r)
        };
        plan.rebind(to, &[from], &[]).expect("ping-pong rebinds");
        plan.execute(&mut w.machine).expect("bench plan executes");
    }
    let fused_secs_end = Instant::now();
    let steady = cmcc_obs::snapshot().delta(&warm);
    let predicted_copy_words = (executes as u64 - 1) * plan.rebind_cycle_copy_words() as u64;

    // Remainder steps through a depth-1 plan on the same arrays.
    let mut cur_is_r = executes % 2 == 1;
    if tail > 0 {
        let (from, to) = if cur_is_r { (&w.r, &w.x) } else { (&w.x, &w.r) };
        let tail_opts = opts.with_temporal_depth(1);
        let tail_binding =
            StencilBinding::new(&w.compiled, to, &[from], &[]).expect("tail binding is valid");
        let mut tail_plan = ExecutionPlan::build(
            &mut w.machine,
            &tail_binding,
            &tail_opts,
            PlanLifetime::Scoped,
        )
        .expect("tail plan builds");
        for t in 0..tail {
            tail_plan
                .execute(&mut w.machine)
                .expect("tail plan executes");
            cur_is_r = !cur_is_r;
            if t + 1 < tail {
                let (from, to) = if cur_is_r { (&w.r, &w.x) } else { (&w.x, &w.r) };
                tail_plan.rebind(to, &[from], &[]).expect("tail rebinds");
            }
        }
    }
    let whole = cmcc_obs::snapshot().delta(&before);

    let cur = if cur_is_r { &w.r } else { &w.x };
    LoopRun {
        secs: (fused_secs_end - start).as_secs_f64(),
        timed_steps: (executes - 1) * depth,
        bits: cur.gather(&w.machine).iter().map(|v| v.to_bits()).collect(),
        halo_exchanges: whole.get(cmcc_obs::Counter::HaloExchanges),
        observed_copy_words: steady.copy_words(),
        predicted_copy_words,
    }
}

/// Minimum warm rebind+execute cycle time per depth, in nanoseconds,
/// measured over `rounds` interleaved rounds (one cycle per depth per
/// round, so every depth samples the same slice of machine time).
fn measure_interleaved(
    cfg: &MachineConfig,
    subgrid: (usize, usize),
    opts: &ExecOptions,
    depths: &[usize],
    rounds: usize,
) -> Vec<u128> {
    struct Setup {
        w: cmcc_bench::Workload,
        plan: ExecutionPlan,
        min_ns: u128,
        executes: usize,
    }
    let mut setups: Vec<Setup> = depths
        .iter()
        .map(|&depth| {
            let mut w = cmcc_bench::Workload::from_source(cfg.clone(), HEAT, subgrid);
            let opts = (*opts).with_temporal_depth(depth);
            let binding = StencilBinding::new(&w.compiled, &w.r, &[&w.x], &[])
                .expect("bench binding is valid");
            let plan = ExecutionPlan::build(&mut w.machine, &binding, &opts, PlanLifetime::Scoped)
                .expect("bench plan builds");
            Setup {
                w,
                plan,
                min_ns: u128::MAX,
                executes: 0,
            }
        })
        .collect();
    for s in &mut setups {
        s.plan.execute(&mut s.w.machine).expect("priming execute");
    }
    for _ in 0..rounds {
        for s in &mut setups {
            s.executes += 1;
            let (from, to) = if s.executes % 2 == 1 {
                (&s.w.r, &s.w.x)
            } else {
                (&s.w.x, &s.w.r)
            };
            let t = Instant::now();
            s.plan.rebind(to, &[from], &[]).expect("ping-pong rebinds");
            s.plan.execute(&mut s.w.machine).expect("timed execute");
            let ns = t.elapsed().as_nanos();
            s.min_ns = s.min_ns.min(ns);
        }
    }
    setups.into_iter().map(|s| s.min_ns).collect()
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    cmcc_obs::set_enabled(true);
    let cfg = MachineConfig::test_board_16();
    let (subgrid, steps) = if quick {
        ((32, 32), 12)
    } else {
        ((128, 128), 100)
    };
    let global = (subgrid.0 * 4, subgrid.1 * 4);

    println!("Temporal tiling benchmark (fast lockstep lane-resident, 1 host thread)");
    println!(
        "five-point heat, {}x{} per node on the 16-node board ({}x{} global), {steps} steps\n",
        subgrid.0, subgrid.1, global.0, global.1
    );

    let lockstep = ExecOptions::fast()
        .with_engine(ExecEngine::Lockstep)
        .with_threads(1);
    let scalar = ExecOptions::fast()
        .with_engine(ExecEngine::Scalar)
        .with_threads(1);

    let oracle = run_loop(&cfg, subgrid, steps, 1, &scalar);
    println!(
        "  scalar oracle:  {:.6} s for {} warm steps",
        oracle.secs, oracle.timed_steps
    );

    let depths = [1usize, 2, 3, 4];
    let rounds = if quick { 12 } else { 30 };
    let mins = measure_interleaved(&cfg, subgrid, &lockstep, &depths, rounds);
    let base_step_ns = mins[0] as f64;

    let mut rows = Vec::new();
    let mut all_identical = true;
    let mut all_copy_exact = true;
    let mut exchange_exact = true;
    let mut speedup_at_4 = 0.0;
    let mut base_exchanges = 0;
    for (i, &depth) in depths.iter().enumerate() {
        let run = run_loop(&cfg, subgrid, steps, depth, &lockstep);
        let identical = run.bits == oracle.bits;
        let copy_exact = run.observed_copy_words == run.predicted_copy_words;
        all_identical &= identical;
        all_copy_exact &= copy_exact;
        if depth == 1 {
            base_exchanges = run.halo_exchanges;
        }
        // The fused portion of the loop runs steps/depth executes with
        // one exchange cycle each; the tail's depth-1 executes add one
        // each. All-literal heat has no coefficient exchanges, so the
        // count is exact, not approximate.
        let expected_exchanges =
            (steps / depth + steps % depth) as u64 * (base_exchanges / steps as u64);
        exchange_exact &= run.halo_exchanges == expected_exchanges;
        let min_cycle_us = mins[i] as f64 / 1000.0;
        let speedup = base_step_ns / (mins[i] as f64 / depth as f64);
        if depth == 4 {
            speedup_at_4 = speedup;
        }
        println!(
            "  depth {depth}: min cycle {min_cycle_us:.0} us ({speedup:.2}x/step vs depth 1), \
             loop {:.6} s over {} warm steps, \
             {} exchanges (expected {expected_exchanges}), \
             copy words {} observed vs {} predicted, bit-identical: {identical}",
            run.secs,
            run.timed_steps,
            run.halo_exchanges,
            run.observed_copy_words,
            run.predicted_copy_words,
        );
        rows.push(format!(
            "    {{\"depth\": {depth}, \"min_cycle_us\": {min_cycle_us:.1}, \
             \"speedup\": {speedup:.4}, \
             \"loop_secs\": {:.6}, \"timed_steps\": {}, \
             \"halo_exchanges\": {}, \"copy_words_observed\": {}, \
             \"copy_words_predicted\": {}, \"bit_identical\": {identical}}}",
            run.secs,
            run.timed_steps,
            run.halo_exchanges,
            run.observed_copy_words,
            run.predicted_copy_words,
        ));
    }

    let cores = cmcc_bench::host_cores();
    let scaling_gate = if quick {
        "recorded only (--quick: depth-4 speedup not asserted)"
    } else {
        "asserted (>=1.25x at depth 4 over the scalar oracle)"
    };
    let json = format!(
        "{{\n  \"workload\": \"heat5\",\n  \"global_grid\": [{}, {}],\n  \
         \"host_cores\": {cores},\n  \"scaling_gate\": \"{scaling_gate}\",\n  \
         \"subgrid\": [{}, {}],\n  \"threads\": 1,\n  \"steps\": {steps},\n  \
         \"interleave_rounds\": {rounds},\n  \
         \"scalar_secs\": {:.6},\n  \"depths\": [\n{}\n  ],\n  \
         \"speedup_at_depth_4\": {speedup_at_4:.4},\n  \
         \"bit_identical\": {all_identical},\n  \
         \"copy_model_exact\": {all_copy_exact},\n  \
         \"exchange_reduction_exact\": {exchange_exact}\n}}\n",
        global.0,
        global.1,
        subgrid.0,
        subgrid.1,
        oracle.secs,
        rows.join(",\n"),
    );
    std::fs::write("BENCH_temporal.json", &json).expect("write BENCH_temporal.json");
    println!("\n  wrote BENCH_temporal.json");

    assert!(
        all_identical,
        "a fused depth diverged from the scalar oracle"
    );
    assert!(
        exchange_exact,
        "halo-exchange counts did not drop by exactly the fused depth"
    );
    assert!(
        all_copy_exact,
        "observed rebind-cycle copy words diverged from the analytic prediction"
    );
    if quick {
        println!("  (--quick: depth-4 speedup {speedup_at_4:.2}x recorded but not asserted)");
    } else {
        assert!(
            speedup_at_4 >= 1.25,
            "expected >=1.25x at depth 4, got {speedup_at_4:.2}x"
        );
    }
}
