//! Calibration sensitivity: how the table reproduction error responds to
//! the model's free constants (EXPERIMENTS.md "Calibration" section).
//!
//! The model has one load-bearing fitted constant (`mac_issue_cycles`)
//! and two front-end overheads. This harness sweeps each around its
//! calibrated value and reports the mean absolute relative error against
//! the paper's 18 table cells — showing that the calibrated point is a
//! clear optimum for the MAC pace (the physical knob) and a shallow one
//! for the overheads (which only shape the small-subgrid cells).
//!
//! ```sh
//! cargo run --release -p cmcc-bench --bin repro_sensitivity
//! ```

use cmcc_bench::{paper_reference, Workload, TABLE_SUBGRIDS};
use cmcc_cm2::config::MachineConfig;
use cmcc_core::patterns::PaperPattern;

/// Mean absolute relative error over every table cell the paper reports.
fn table_error(cfg: &MachineConfig) -> f64 {
    let mut total = 0.0;
    let mut cells = 0;
    for pattern in PaperPattern::TABLE {
        for subgrid in TABLE_SUBGRIDS {
            let Some((paper_mflops, _)) = paper_reference(pattern, subgrid) else {
                continue;
            };
            let mut w = Workload::new(cfg.clone(), pattern, subgrid);
            let sim = w.measure().mflops(w.machine.config());
            total += ((sim - paper_mflops) / paper_mflops).abs();
            cells += 1;
        }
    }
    total / f64::from(cells)
}

fn main() {
    let base = MachineConfig::test_board_16();
    println!("Calibration sensitivity (mean |relative error| over the paper's 18 table cells)\n");

    println!("multiply-add issue pace (calibrated: 2 cycles):");
    for mac in [1u32, 2, 3] {
        let cfg = MachineConfig {
            mac_issue_cycles: mac,
            ..base.clone()
        };
        let marker = if mac == base.mac_issue_cycles {
            "  <- calibrated"
        } else {
            ""
        };
        println!(
            "  mac_issue_cycles = {mac}: {:>5.1}%{marker}",
            100.0 * table_error(&cfg)
        );
    }

    println!("\nfront-end dispatch per half-strip (calibrated: 1200 cycles):");
    for dispatch in [300u32, 600, 1200, 2400] {
        let cfg = MachineConfig {
            frontend_dispatch_cycles: dispatch,
            ..base.clone()
        };
        let marker = if dispatch == base.frontend_dispatch_cycles {
            "  <- calibrated"
        } else {
            ""
        };
        println!(
            "  frontend_dispatch_cycles = {dispatch:>4}: {:>5.1}%{marker}",
            100.0 * table_error(&cfg)
        );
    }

    println!("\ncommunication cost per element (cited: ~16 cycles/word over bit-serial wires):");
    for comm in [8u32, 16, 32] {
        let cfg = MachineConfig {
            comm_cycles_per_element: comm,
            ..base.clone()
        };
        let marker = if comm == base.comm_cycles_per_element {
            "  <- default"
        } else {
            ""
        };
        println!(
            "  comm_cycles_per_element = {comm:>2}: {:>5.1}%{marker}",
            100.0 * table_error(&cfg)
        );
    }

    let calibrated = table_error(&base);
    println!(
        "\ncalibrated model: {:.1}% mean error across all 18 cells",
        100.0 * calibrated
    );
    assert!(
        calibrated < 0.15,
        "the calibrated model must stay within 15% on average"
    );
}
