//! A minimal wall-clock micro-benchmark harness.
//!
//! The workspace builds offline, so the benches use this std-only
//! stand-in instead of an external harness: warm up, time a fixed
//! number of samples with [`std::time::Instant`], and report
//! min/median/mean per iteration. The numbers are indicative, not
//! statistically rigorous — the cycle-accurate results the paper cares
//! about come from the simulator's own counters, which are exact.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// One benchmark group: shared sample counts and aligned output.
pub struct Group {
    name: String,
    samples: usize,
    warmup: usize,
}

impl Group {
    /// Creates a group with `samples` timed runs (after 1 warmup run)
    /// per benchmark.
    #[must_use]
    pub fn new(name: &str, samples: usize) -> Self {
        Group {
            name: name.to_owned(),
            samples: samples.max(1),
            warmup: 1,
        }
    }

    /// Sets the number of untimed warmup runs per benchmark.
    #[must_use]
    pub fn warmup(mut self, runs: usize) -> Self {
        self.warmup = runs;
        self
    }

    /// Times `f` and prints a one-line summary.
    pub fn bench<T>(&self, name: &str, mut f: impl FnMut() -> T) {
        for _ in 0..self.warmup {
            black_box(f());
        }
        let mut times: Vec<Duration> = (0..self.samples)
            .map(|_| {
                let start = Instant::now();
                black_box(f());
                start.elapsed()
            })
            .collect();
        times.sort_unstable();
        let min = times[0];
        let median = times[times.len() / 2];
        let mean = times.iter().sum::<Duration>() / u32::try_from(times.len()).unwrap_or(1);
        println!(
            "{}/{name:<24} min {:>12?}  median {:>12?}  mean {:>12?}  ({} samples)",
            self.name, min, median, mean, self.samples
        );
    }
}
