//! Shared harness code for the table/figure regenerators and wall-clock
//! benches.
//!
//! Each helper builds the measurement setup the paper's §7 describes:
//! the 16-node test board, per-node subgrids of the given size, random
//! source data, one coefficient array per tap, and a cycle-accurate run
//! of one iteration (the CM-2 is fully synchronous, so every iteration
//! costs the same and sustained rates follow from a single measured
//! iteration — the paper's own extrapolation argument).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use cmcc_cm2::config::MachineConfig;
use cmcc_cm2::machine::Machine;
use cmcc_cm2::timing::Measurement;
use cmcc_core::compiler::{CompiledStencil, Compiler};
use cmcc_core::patterns::PaperPattern;
use cmcc_core::recognize::CoeffSpec;
use cmcc_runtime::array::CmArray;
use cmcc_runtime::convolve::{convolve, ExecOptions};
use cmcc_testkit::Rng;

pub mod microbench;

/// The per-node subgrid sizes of the paper's results table.
pub const TABLE_SUBGRIDS: [(usize, usize); 5] =
    [(64, 64), (64, 128), (128, 128), (128, 256), (256, 256)];

/// Paper-reported (measured Mflops on 16 nodes, extrapolated Gflops to
/// 2,048 nodes) for a pattern block at a subgrid size, where the table
/// prints one. The block↔pattern mapping follows EXPERIMENTS.md's stated
/// assumption (the OCR of the table makes it ambiguous).
pub fn paper_reference(pattern: PaperPattern, subgrid: (usize, usize)) -> Option<(f64, f64)> {
    let rows = match pattern {
        // Block 1 (three sizes only).
        PaperPattern::Cross5 => vec![
            ((64, 128), (44.6, 5.31)),
            ((128, 256), (69.5, 8.90)),
            ((256, 256), (72.8, 9.29)),
        ],
        // Block 2.
        PaperPattern::Square9 => vec![
            ((64, 64), (68.8, 8.80)),
            ((64, 128), (91.7, 11.74)),
            ((128, 128), (89.8, 11.50)),
            ((128, 256), (86.7, 11.10)),
            ((256, 256), (88.6, 11.34)),
        ],
        // Block 3.
        PaperPattern::Star9 => vec![
            ((64, 64), (56.8, 7.27)),
            ((64, 128), (68.0, 8.70)),
            ((128, 128), (72.9, 9.34)),
            ((128, 256), (85.3, 10.92)),
            ((256, 256), (85.6, 10.95)),
        ],
        // Block 4.
        PaperPattern::Diamond13 => vec![
            ((64, 64), (71.6, 9.16)),
            ((64, 128), (82.0, 10.50)),
            ((128, 128), (87.7, 11.23)),
            ((128, 256), (85.6, 10.95)),
            ((256, 256), (85.9, 11.00)),
        ],
        PaperPattern::Asymmetric5 => vec![],
    };
    rows.into_iter()
        .find(|(s, _)| *s == subgrid)
        .map(|(_, v)| v)
}

/// The host's available parallelism (1 when it cannot be queried).
/// Every `BENCH_*.json` records this next to its `scaling_gate`
/// disposition so a reader can judge wall-clock numbers without
/// guessing what machine produced them.
pub fn host_cores() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// A ready-to-run measurement setup.
pub struct Workload {
    /// The machine under test.
    pub machine: Machine,
    /// The compiled stencil.
    pub compiled: CompiledStencil,
    /// Source array.
    pub x: CmArray,
    /// Result array.
    pub r: CmArray,
    /// Coefficient arrays (one per named coefficient).
    pub coeffs: Vec<CmArray>,
}

impl Workload {
    /// Builds the paper's measurement setup for `pattern` with the given
    /// per-node `subgrid` on a machine described by `cfg`.
    ///
    /// # Panics
    ///
    /// Panics on allocation failure (the bench configs are sized to fit).
    pub fn new(cfg: MachineConfig, pattern: PaperPattern, subgrid: (usize, usize)) -> Self {
        Self::from_source(cfg, &pattern.fortran(), subgrid)
    }

    /// Builds a workload from Fortran source.
    ///
    /// # Panics
    ///
    /// Panics on compile or allocation failure.
    pub fn from_source(cfg: MachineConfig, source: &str, subgrid: (usize, usize)) -> Self {
        let compiler = Compiler::new(cfg.clone());
        let compiled = compiler
            .compile_assignment(source)
            .expect("bench statements compile");
        let mut machine = Machine::new(cfg).expect("bench config is valid");
        let rows = subgrid.0 * machine.grid().rows();
        let cols = subgrid.1 * machine.grid().cols();
        let mut rng = Rng::new(0x1991_0626);
        let x = CmArray::new(&mut machine, rows, cols).expect("source fits");
        let data: Vec<f32> = (0..rows * cols).map(|_| rng.f32_in(-1.0, 1.0)).collect();
        x.scatter(&mut machine, &data);
        let named = compiled
            .spec()
            .coeffs
            .iter()
            .filter(|c| matches!(c, CoeffSpec::Named(_)))
            .count();
        let coeffs: Vec<CmArray> = (0..named)
            .map(|_| {
                let a = CmArray::new(&mut machine, rows, cols).expect("coefficient fits");
                let data: Vec<f32> = (0..rows * cols).map(|_| rng.f32_in(-0.5, 0.5)).collect();
                a.scatter(&mut machine, &data);
                a
            })
            .collect();
        let r = CmArray::new(&mut machine, rows, cols).expect("result fits");
        Workload {
            machine,
            compiled,
            x,
            r,
            coeffs,
        }
    }

    /// Runs one iteration with the given options.
    ///
    /// # Panics
    ///
    /// Panics on run-time errors (the bench setups are validated).
    pub fn run(&mut self, opts: &ExecOptions) -> Measurement {
        let refs: Vec<&CmArray> = self.coeffs.iter().collect();
        convolve(
            &mut self.machine,
            &self.compiled,
            &self.r,
            &self.x,
            &refs,
            opts,
        )
        .expect("bench convolution succeeds")
    }

    /// Runs one cycle-accurate iteration with default options.
    ///
    /// # Panics
    ///
    /// Panics on run-time errors.
    pub fn measure(&mut self) -> Measurement {
        self.run(&ExecOptions::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_round_trips() {
        let mut w = Workload::new(MachineConfig::tiny_4(), PaperPattern::Cross5, (8, 8));
        let m = w.measure();
        assert!(m.cycles.total() > 0);
        // 8×8 subgrids on a 2×2 grid: a 16×16 global array at 9
        // flops/point.
        assert_eq!(m.useful_flops, 9 * 16 * 16);
    }

    #[test]
    fn paper_reference_covers_the_blocks() {
        assert!(paper_reference(PaperPattern::Cross5, (256, 256)).is_some());
        assert!(paper_reference(PaperPattern::Cross5, (64, 64)).is_none());
        assert!(paper_reference(PaperPattern::Diamond13, (64, 64)).is_some());
        assert!(paper_reference(PaperPattern::Asymmetric5, (64, 64)).is_none());
    }
}
