//! Grid communication primitives and their cost models.
//!
//! The paper microcodes a *new* grid communication primitive that
//! "organizes nodes, not processors, into a two-dimensional grid, and
//! allows each node to pass data to all four neighbors simultaneously"
//! (§4.1), replacing the older primitive that moved one datum per
//! processor in a single direction at a time. This module models both:
//! the new primitive's cost is governed by the *largest* per-direction
//! transfer (all four proceed in parallel over distinct hypercube wires),
//! while the old primitive pays for each direction in sequence.
//!
//! Actual data movement between node memories is performed by
//! [`crate::machine::Machine::copy_region`]; this module prices it.

use crate::config::MachineConfig;

/// Element counts to exchange with each of the four neighbors in one
/// communication step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExchangeShape {
    /// Words sent to (and received from) the north neighbor.
    pub north: usize,
    /// Words sent south.
    pub south: usize,
    /// Words sent east.
    pub east: usize,
    /// Words sent west.
    pub west: usize,
}

impl ExchangeShape {
    /// A symmetric exchange of `rows`/`cols` words on each axis.
    pub fn symmetric(vertical: usize, horizontal: usize) -> Self {
        ExchangeShape {
            north: vertical,
            south: vertical,
            east: horizontal,
            west: horizontal,
        }
    }

    /// The largest single-direction transfer.
    pub fn max_transfer(&self) -> usize {
        self.north.max(self.south).max(self.east).max(self.west)
    }

    /// Total words moved (all directions).
    pub fn total(&self) -> usize {
        self.north + self.south + self.east + self.west
    }

    /// Whether nothing is exchanged.
    pub fn is_empty(&self) -> bool {
        self.total() == 0
    }
}

/// Cycles for one step of the *new* four-neighbor simultaneous exchange.
///
/// All four directions proceed in parallel, so the cost is the startup
/// plus the largest per-direction transfer. This is why "the
/// communications time will be proportional to the length of the longer
/// side" of the subgrid (§5.1).
pub fn news_exchange_cycles(cfg: &MachineConfig, shape: ExchangeShape) -> u64 {
    if shape.is_empty() {
        return 0;
    }
    u64::from(cfg.comm_startup_cycles)
        + u64::from(cfg.comm_cycles_per_element) * shape.max_transfer() as u64
}

/// Cycles for the *old* primitive: one direction at a time, each with its
/// own startup. Used by the hand-library baseline and the communication
/// ablation.
pub fn old_exchange_cycles(cfg: &MachineConfig, shape: ExchangeShape) -> u64 {
    [shape.north, shape.south, shape.east, shape.west]
        .into_iter()
        .filter(|&n| n > 0)
        .map(|n| {
            u64::from(cfg.comm_startup_cycles) + u64::from(cfg.comm_cycles_per_element) * n as u64
        })
        .sum()
}

/// Cycles for the third (corner) exchange step: each node forwards corner
/// blocks so that diagonal-neighbor data arrives in two hops. The step
/// "may be omitted" when the stencil needs no corner data (§5.1); callers
/// simply skip calling this.
pub fn corner_exchange_cycles(cfg: &MachineConfig, corner_words: usize) -> u64 {
    if corner_words == 0 {
        return 0;
    }
    u64::from(cfg.comm_startup_cycles)
        + u64::from(cfg.comm_cycles_per_element) * corner_words as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> MachineConfig {
        MachineConfig::test_board_16()
    }

    #[test]
    fn new_primitive_costs_the_longest_side_only() {
        let shape = ExchangeShape {
            north: 256,
            south: 256,
            east: 64,
            west: 64,
        };
        let cycles = news_exchange_cycles(&cfg(), shape);
        assert_eq!(
            cycles,
            u64::from(cfg().comm_startup_cycles) + 256 * u64::from(cfg().comm_cycles_per_element)
        );
    }

    #[test]
    fn old_primitive_pays_per_direction() {
        let shape = ExchangeShape::symmetric(100, 50);
        let new = news_exchange_cycles(&cfg(), shape);
        let old = old_exchange_cycles(&cfg(), shape);
        assert!(old > new, "old {old} must exceed new {new}");
        assert_eq!(
            old,
            4 * u64::from(cfg().comm_startup_cycles)
                + 300 * u64::from(cfg().comm_cycles_per_element)
        );
    }

    #[test]
    fn empty_exchanges_are_free() {
        assert_eq!(news_exchange_cycles(&cfg(), ExchangeShape::default()), 0);
        assert_eq!(old_exchange_cycles(&cfg(), ExchangeShape::default()), 0);
        assert_eq!(corner_exchange_cycles(&cfg(), 0), 0);
    }

    #[test]
    fn old_primitive_skips_zero_directions() {
        let shape = ExchangeShape {
            north: 10,
            south: 0,
            east: 0,
            west: 0,
        };
        assert_eq!(
            old_exchange_cycles(&cfg(), shape),
            u64::from(cfg().comm_startup_cycles) + 10 * u64::from(cfg().comm_cycles_per_element)
        );
    }

    #[test]
    fn corner_step_is_priced_like_a_small_exchange() {
        let c = corner_exchange_cycles(&cfg(), 9);
        assert!(c > 0);
        assert!(c < news_exchange_cycles(&cfg(), ExchangeShape::symmetric(256, 256)));
    }

    #[test]
    fn shape_accessors() {
        let s = ExchangeShape::symmetric(3, 7);
        assert_eq!(s.max_transfer(), 7);
        assert_eq!(s.total(), 20);
        assert!(!s.is_empty());
    }
}
