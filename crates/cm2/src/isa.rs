//! The instruction set consumed by the simulated CM-2 node.
//!
//! The CM-2 splits floating-point instructions into a *static part* (the
//! operation code, latched once on the processor boards) and *dynamic
//! parts* (load/store control and register addresses, streamed cycle by
//! cycle from the sequencer's scratch data memory — paper §4.3). The
//! convolution compiler's whole output is a table of dynamic parts plus
//! the choice of a fixed microcode routine.
//!
//! [`DynamicPart`] is one scratch-memory entry: what the node does in one
//! clock cycle. [`Kernel`] is the compiler's complete output for one strip
//! width: a prologue that fills the register rings for the first line,
//! and an unrolled body of per-line instruction vectors (the unroll factor
//! is the LCM of the ring-buffer sizes, paper §5.4).
//!
//! Memory operands are expressed relative to a per-line origin
//! ([`MemRef`]); the sequencer (our executor) adds the per-line base
//! addresses that the real machine's microcode computed from run-time
//! parameters.

use std::fmt;

/// A floating-point register index (0..32 on the WTL3164).
///
/// By the compiler's convention register 0 always contains `0.0`
/// (paper §5.3: "one register is reserved to contain the value zero"),
/// and register 1 contains `1.0` when the stencil has a bare-coefficient
/// term.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(pub u8);

impl Reg {
    /// The always-zero register.
    pub const ZERO: Reg = Reg(0);
    /// The always-one register (reserved only when needed).
    pub const ONE: Reg = Reg(1);
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A memory operand, relative to the current line origin.
///
/// The executor resolves these against a [`crate::exec::StripContext`] that carries the
/// base addresses the real microcode computed at run time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemRef {
    /// Element `(drow, dcol)` of padded source buffer `array`, relative to
    /// the first result position of the current line. Single-source
    /// stencils use `array == 0`; the multi-source extension (the paper's
    /// §9 future work, realized here) indexes the call's source list.
    Source {
        /// Which source array (index into the call's source table).
        array: u16,
        /// Row offset from the current line.
        drow: i32,
        /// Column offset from the line's first result position.
        dcol: i32,
    },
    /// Element of coefficient array `array` at column `col` of the current
    /// line (coefficients are whole arrays of the same shape as the
    /// source).
    Coeff {
        /// Which coefficient array (index into the call's coefficient
        /// base-address table).
        array: u16,
        /// Result column within the line, `0..width`.
        col: u16,
    },
    /// Element of the result buffer at column `col` of the current line.
    Result {
        /// Result column within the line, `0..width`.
        col: u16,
    },
    /// The pre-filled page of `1.0` values used to stream the multiplier
    /// for bare `s(x)` terms (a term with no coefficient array).
    Ones,
    /// The pre-filled page of `0.0` values (dummy multiply-add operand).
    Zeros,
}

/// Where a multiply-add chain gets its addend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MacAcc {
    /// Start a new accumulation chain by adding the named register
    /// (the compiler always names [`Reg::ZERO`]: "The result of the first
    /// multiplication for a given result is added to this zero to begin
    /// the accumulation", §5.3).
    Start(Reg),
    /// Continue the chain begun by the previous multiply-add of the *same
    /// interleaved thread* (the product joins the running sum inside the
    /// pipeline; two threads alternate cycles, paper §5.3).
    Chain,
}

/// One dynamic instruction part: what the node does in one clock cycle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DynamicPart {
    /// A chained multiply-add step: multiply the value streamed from
    /// `coeff` (the off-chip operand — "one of the operands for each
    /// multiplication must come from off-chip", §4.2) by register `data`,
    /// and add according to `acc`. If `dest` is `Some`, this is the final
    /// step of its chain and the sum is written to `dest` after the
    /// pipeline latency.
    Mac {
        /// The streamed (memory) multiplier operand.
        coeff: MemRef,
        /// The register multiplicand (a preloaded source element).
        data: Reg,
        /// Addend source.
        acc: MacAcc,
        /// Writeback target for the completed chain, if this is the last
        /// step.
        dest: Option<Reg>,
    },
    /// Load a source element into a register through the interface chip.
    /// (The FPU still executes a harmless multiply-add into the zero
    /// register this cycle — "there is no way not to store the result!",
    /// §5.3 — which is why load cycles cost exactly one cycle but zero
    /// useful flops.)
    Load {
        /// Memory operand to read.
        src: MemRef,
        /// Destination register; readable `load_commit_latency` cycles
        /// later.
        dest: Reg,
    },
    /// Store a register to memory through the interface chip (pipe runs
    /// FPU→memory; a direction reversal penalty applies on transitions).
    Store {
        /// Register to store.
        src: Reg,
        /// Memory operand to write.
        dest: MemRef,
    },
    /// An idle cycle (pipeline drain bubble inserted by the compiler).
    Nop,
}

impl DynamicPart {
    /// Whether this cycle drives the memory pipe in the store direction.
    pub fn is_store(&self) -> bool {
        matches!(self, DynamicPart::Store { .. })
    }
}

impl fmt::Display for MemRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemRef::Source { array, drow, dcol } => {
                write!(f, "src{array}[{drow:+},{dcol:+}]")
            }
            MemRef::Coeff { array, col } => write!(f, "coeff{array}[{col}]"),
            MemRef::Result { col } => write!(f, "res[{col}]"),
            MemRef::Ones => f.write_str("ones"),
            MemRef::Zeros => f.write_str("zeros"),
        }
    }
}

impl fmt::Display for DynamicPart {
    /// One microcode-listing line per dynamic part, e.g.
    /// `mac  r5 * coeff2[3] + chain -> r9`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DynamicPart::Mac {
                coeff,
                data,
                acc,
                dest,
            } => {
                write!(f, "mac  {data} * {coeff}")?;
                match acc {
                    MacAcc::Start(r) => write!(f, " + {r}")?,
                    MacAcc::Chain => f.write_str(" + chain")?,
                }
                if let Some(d) = dest {
                    write!(f, " -> {d}")?;
                }
                Ok(())
            }
            DynamicPart::Load { src, dest } => write!(f, "load {src} -> {dest}"),
            DynamicPart::Store { src, dest } => write!(f, "stor {src} -> {dest}"),
            DynamicPart::Nop => f.write_str("nop"),
        }
    }
}

/// The latched static instruction part. The convolution compiler uses a
/// single static part for the whole kernel: chained multiply-add with
/// streamed multiplier (paper §4.3: "This microcode issues a single static
/// instruction part to instruct the floating-point units to perform
/// multiply-add operations").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StaticPart {
    /// Chained multiply-add, multiplier streamed from memory.
    #[default]
    ChainedMac,
}

/// A complete compiled kernel for one strip width: the contents of the
/// sequencer scratch data memory.
#[derive(Debug, Clone, PartialEq)]
pub struct Kernel {
    /// The latched operation.
    pub static_part: StaticPart,
    /// Number of results computed per line (the strip width `w`).
    pub width: usize,
    /// Row step between consecutive lines: `-1` when the kernel walks
    /// north (bottom half-strip, edge→center), `+1` when it walks south.
    pub row_step: i32,
    /// Instructions that fill the register rings before the first line
    /// (loads of every multistencil element except each column's leading
    /// edge, which the first body line loads itself).
    pub prologue: Vec<DynamicPart>,
    /// Unrolled per-line instruction vectors. Line `l` of the half-strip
    /// executes `body[l % body.len()]`; the unroll factor `body.len()` is
    /// the LCM of the ring-buffer sizes.
    pub body: Vec<Vec<DynamicPart>>,
    /// Useful floating-point operations per line (for rate accounting;
    /// dummy multiply-adds and adds of zero are excluded, §7).
    pub useful_flops_per_line: u64,
}

impl Kernel {
    /// The unroll factor (number of distinct per-line register patterns).
    pub fn unroll(&self) -> usize {
        self.body.len()
    }

    /// Total scratch-memory entries this kernel occupies (the paper calls
    /// out that unrolling costs sequencer scratch data memory, §5.4).
    pub fn scratch_entries(&self) -> usize {
        self.prologue.len() + self.body.iter().map(Vec::len).sum::<usize>()
    }

    /// Renders the kernel as a microcode listing: the prologue followed
    /// by each unrolled line, one dynamic part per row.
    ///
    /// # Examples
    ///
    /// ```
    /// use cmcc_cm2::isa::{DynamicPart, Kernel, MemRef, Reg, StaticPart};
    ///
    /// let kernel = Kernel {
    ///     static_part: StaticPart::ChainedMac,
    ///     width: 1,
    ///     row_step: -1,
    ///     prologue: vec![],
    ///     body: vec![vec![DynamicPart::Load {
    ///         src: MemRef::Source { array: 0, drow: 0, dcol: 0 },
    ///         dest: Reg(2),
    ///     }]],
    ///     useful_flops_per_line: 0,
    /// };
    /// let text = kernel.disassemble();
    /// assert!(text.contains("load src0[+0,+0] -> r2"));
    /// ```
    pub fn disassemble(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "; width {}, row step {:+}, unroll x{}, {} useful flops/line\n",
            self.width,
            self.row_step,
            self.unroll(),
            self.useful_flops_per_line
        ));
        if !self.prologue.is_empty() {
            out.push_str("prologue:\n");
            for part in &self.prologue {
                out.push_str(&format!("    {part}\n"));
            }
        }
        for (l, line) in self.body.iter().enumerate() {
            out.push_str(&format!("line {l}:\n"));
            for part in line {
                out.push_str(&format!("    {part}\n"));
            }
        }
        out
    }

    /// Validates structural invariants: a nonzero width, a nonempty body,
    /// a `±1` row step, and register indices within the file.
    ///
    /// # Errors
    ///
    /// Returns a message naming the violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        if self.width == 0 {
            return Err("kernel width must be nonzero".into());
        }
        if self.body.is_empty() {
            return Err("kernel body must contain at least one line".into());
        }
        if self.row_step != 1 && self.row_step != -1 {
            return Err(format!("row step must be ±1, got {}", self.row_step));
        }
        let check_reg = |r: Reg| -> Result<(), String> {
            if (r.0 as usize) < crate::config::FPU_REGISTERS {
                Ok(())
            } else {
                Err(format!("register {r} out of range"))
            }
        };
        for part in self.prologue.iter().chain(self.body.iter().flatten()) {
            match *part {
                DynamicPart::Mac {
                    data, acc, dest, ..
                } => {
                    check_reg(data)?;
                    if let MacAcc::Start(r) = acc {
                        check_reg(r)?;
                    }
                    if let Some(d) = dest {
                        check_reg(d)?;
                    }
                }
                DynamicPart::Load { dest, .. } => check_reg(dest)?,
                DynamicPart::Store { src, .. } => check_reg(src)?,
                DynamicPart::Nop => {}
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial_kernel() -> Kernel {
        Kernel {
            static_part: StaticPart::ChainedMac,
            width: 1,
            row_step: -1,
            prologue: vec![],
            body: vec![vec![
                DynamicPart::Load {
                    src: MemRef::Source {
                        array: 0,
                        drow: 0,
                        dcol: 0,
                    },
                    dest: Reg(2),
                },
                DynamicPart::Mac {
                    coeff: MemRef::Coeff { array: 0, col: 0 },
                    data: Reg(2),
                    acc: MacAcc::Start(Reg::ZERO),
                    dest: Some(Reg(3)),
                },
                DynamicPart::Nop,
                DynamicPart::Nop,
                DynamicPart::Nop,
                DynamicPart::Store {
                    src: Reg(3),
                    dest: MemRef::Result { col: 0 },
                },
            ]],
            useful_flops_per_line: 1,
        }
    }

    #[test]
    fn trivial_kernel_validates() {
        trivial_kernel().validate().unwrap();
    }

    #[test]
    fn scratch_accounting_counts_all_entries() {
        let k = trivial_kernel();
        assert_eq!(k.scratch_entries(), 6);
        assert_eq!(k.unroll(), 1);
    }

    #[test]
    fn out_of_range_register_is_rejected() {
        let mut k = trivial_kernel();
        k.body[0][0] = DynamicPart::Load {
            src: MemRef::Ones,
            dest: Reg(32),
        };
        assert!(k.validate().is_err());
    }

    #[test]
    fn bad_row_step_is_rejected() {
        let mut k = trivial_kernel();
        k.row_step = 2;
        assert!(k.validate().is_err());
    }

    #[test]
    fn empty_body_is_rejected() {
        let mut k = trivial_kernel();
        k.body.clear();
        assert!(k.validate().is_err());
    }

    #[test]
    fn store_detection() {
        assert!(DynamicPart::Store {
            src: Reg(1),
            dest: MemRef::Result { col: 0 }
        }
        .is_store());
        assert!(!DynamicPart::Nop.is_store());
    }
}
