//! The sequencer's scratch data memory: the budget that loop unrolling
//! spends.
//!
//! "A useful strategy is to keep the dynamic parts of floating-point
//! instructions in the scratch data memory of the sequencer and feed
//! them cycle by cycle to the floating-point units" (§4.3), and "there
//! is a cost (in consumption of sequencer scratch data memory) to this
//! unrolling, so the compiler attempts to minimize it" (§5.4) — while
//! the half-strip design "conserves microcode instruction memory, which
//! is a scarce resource" (§5.2).
//!
//! [`ScratchMemory`] models that budget: every dynamic part of every
//! kernel a stencil call loads must fit. The compiler consults it when
//! deciding which strip widths to keep.

use crate::isa::Kernel;
use std::fmt;

/// Scratch-memory capacity of the paper-era sequencer, in dynamic-part
/// entries. The CM-2's sequencer carried 16K words of scratch data
/// memory; one dynamic part occupies one word.
pub const DEFAULT_SCRATCH_ENTRIES: usize = 16 * 1024;

/// The sequencer's scratch data memory budget.
///
/// # Examples
///
/// ```
/// use cmcc_cm2::sequencer::ScratchMemory;
///
/// let scratch = ScratchMemory::default();
/// assert!(scratch.capacity() >= 16 * 1024);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScratchMemory {
    capacity: usize,
}

/// A kernel set that does not fit the scratch memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScratchOverflow {
    /// Entries demanded.
    pub needed: usize,
    /// Entries available.
    pub capacity: usize,
}

impl fmt::Display for ScratchOverflow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "kernels need {} scratch-memory entries but the sequencer has {}",
            self.needed, self.capacity
        )
    }
}

impl std::error::Error for ScratchOverflow {}

impl ScratchMemory {
    /// A scratch memory of `capacity` dynamic-part entries.
    pub fn new(capacity: usize) -> Self {
        ScratchMemory { capacity }
    }

    /// Capacity in entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Entries one kernel occupies: its prologue plus every unrolled
    /// line.
    pub fn entries_for(kernel: &Kernel) -> usize {
        kernel.scratch_entries()
    }

    /// Checks that a set of kernels loaded together (all widths, both
    /// walk directions of one stencil call) fits.
    ///
    /// # Errors
    ///
    /// Returns [`ScratchOverflow`] with the demand when it does not.
    pub fn check<'a>(
        &self,
        kernels: impl IntoIterator<Item = &'a Kernel>,
    ) -> Result<usize, ScratchOverflow> {
        let needed: usize = kernels.into_iter().map(Kernel::scratch_entries).sum();
        if needed <= self.capacity {
            Ok(needed)
        } else {
            Err(ScratchOverflow {
                needed,
                capacity: self.capacity,
            })
        }
    }
}

impl Default for ScratchMemory {
    fn default() -> Self {
        ScratchMemory::new(DEFAULT_SCRATCH_ENTRIES)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{DynamicPart, StaticPart};

    fn kernel_of(lines: usize, per_line: usize, prologue: usize) -> Kernel {
        Kernel {
            static_part: StaticPart::ChainedMac,
            width: 1,
            row_step: -1,
            prologue: vec![DynamicPart::Nop; prologue],
            body: vec![vec![DynamicPart::Nop; per_line]; lines],
            useful_flops_per_line: 0,
        }
    }

    #[test]
    fn accounting_sums_prologue_and_unrolled_lines() {
        let k = kernel_of(3, 10, 4);
        assert_eq!(ScratchMemory::entries_for(&k), 34);
    }

    #[test]
    fn check_accepts_within_capacity() {
        let scratch = ScratchMemory::new(100);
        let a = kernel_of(2, 20, 5);
        let b = kernel_of(1, 40, 10);
        assert_eq!(scratch.check([&a, &b]), Ok(95));
    }

    #[test]
    fn check_rejects_overflow_with_demand() {
        let scratch = ScratchMemory::new(50);
        let a = kernel_of(3, 20, 0);
        let err = scratch.check([&a]).unwrap_err();
        assert_eq!(err.needed, 60);
        assert_eq!(err.capacity, 50);
        assert!(err.to_string().contains("60"));
    }

    #[test]
    fn default_capacity_is_paper_scale() {
        assert_eq!(ScratchMemory::default().capacity(), 16384);
    }
}
