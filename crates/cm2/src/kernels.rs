//! Plan-time kernel generation for the lockstep engine.
//!
//! The paper's central discipline — resolve everything shape-dependent
//! *before* the inner loop runs — stops one step short in
//! [`crate::exec::run_resolved_strip_lockstep`]: addresses are
//! pre-resolved, but every dynamic part is still dispatched through a
//! per-step `match`. This module finishes the job. At plan build time
//! [`StripKernels::compile`] classifies each lane-translated strip's MAC
//! burst into *chain pairs* of uniform tap count `K` (the two interleaved
//! multiply-add threads of the WTL3164, dummy-padded by the scheduler so
//! bursts always pair up), and selects a **monomorphized burst function**
//! from a pregenerated family:
//!
//! * **arity** — `K` as a const generic for `1..=16`, plus a dynamic
//!   *tail* slot for longer chains ([`arity_slot`]);
//! * **width class** — how a lane group's `nodes` count is chunked:
//!   16-wide fixed arrays, 8-wide fixed arrays, or a dynamic span for
//!   narrow groups and remainders ([`width_class`]).
//!
//! At execute time [`StripKernels::run`] makes one indirect call per
//! line instead of one `match` per tap, holding the accumulating chains
//! in fixed-size local arrays rather than round-tripping them through the
//! FPU's chain rows in memory.
//!
//! The second half of the paper's discipline is the **coefficient
//! stream** (§4): the compiler lays coefficients out in memory in
//! exactly the order the convolution consumes them, so the inner loop
//! never computes a coefficient address — it just advances through a
//! contiguous stream. [`StripKernels::pack_stream`] reproduces that
//! layout per lane group, [`CoeffStreams`] caches the packed buffers
//! across executes (the stream depends only on the bound coefficient
//! values, so it survives result/source rebinds and is invalidated
//! only when a coefficient base moves or the host writes node memory),
//! and the burst bodies read their taps' coefficient rows sequentially
//! from the stream instead of walking strided lane rows.
//!
//! **Bit-identity is the hard gate.** A kernel reassociates nothing: per
//! lane, each chain's taps execute in exactly the interpreter's order
//! (`Start` is a separate IEEE multiply and add, `Chain` accumulates
//! with a separate multiply and add), and lanes never interact, so
//! chunked execution is observationally identical to the interpreter's
//! row-at-a-time sweeps. The burst writes both finished chains back at
//! the *end* of a pair, which swaps the interpreter's order of "write
//! left destination" and "read right chain's final operands" — so the
//! classifier statically rejects the one register hazard that swap
//! could expose (see `pair_chain_length`'s doc). Any line it cannot
//! prove safe — loads after MACs, stores before MACs, unpaired or
//! ragged chains, destinations anywhere but a chain's final tap —
//! rejects the *whole strip* to the interpreter, and the split is
//! visible as `kernelized_steps` / `interpreted_steps` in `cmcc-obs`.

use crate::exec::{
    exec_lockstep, run_resolved_strip_lockstep, LaneFpu, ResolvedOp, ResolvedPart, ResolvedStrip,
    StripRun,
};
use crate::isa::MacAcc;
use crate::lane::LaneMemory;

/// Arity slots in the kernel family: slot `k` for exact chain length
/// `k` in `1..=16`, slot `0` for the dynamic tail (`K > 16`).
pub const ARITY_SLOTS: usize = 17;

/// Width classes in the kernel family: 16-wide chunks, 8-wide chunks,
/// and the dynamic span path.
pub const WIDTH_CLASSES: usize = 3;

/// Total monomorphized kernel variants (`ARITY_SLOTS × WIDTH_CLASSES`).
pub const KERNEL_VARIANTS: usize = ARITY_SLOTS * WIDTH_CLASSES;

/// Longest chain with its own fully unrolled arity slot; longer chains
/// share the dynamic-tail slot.
pub const MAX_UNROLLED_ARITY: usize = 16;

/// Upper bound on a dynamic span: remainders of 16-chunking (< 16),
/// remainders of 8-chunking (< 8), and whole narrow groups (< 8).
const MAX_SPAN: usize = 16;

// The hit table in cmcc-obs must be able to hold every variant id.
const _: () = assert!(KERNEL_VARIANTS <= cmcc_obs::KERNEL_VARIANT_CAP);

/// Serializes tests (here and in `exec`) that flip or read the
/// process-global telemetry, so their deltas cannot interleave.
#[cfg(test)]
pub(crate) static OBS_TEST_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// The arity slot for chain length `k`: `k` itself when `1 <= k <= 16`,
/// else the shared dynamic-tail slot `0`.
pub fn arity_slot(k: usize) -> usize {
    if (1..=MAX_UNROLLED_ARITY).contains(&k) {
        k
    } else {
        0
    }
}

/// The width class a lane group of `nodes` lanes dispatches to:
/// `0` = 16-wide chunks, `1` = 8-wide chunks, `2` = dynamic span.
pub fn width_class(nodes: usize) -> usize {
    if nodes >= 16 {
        0
    } else if nodes >= 8 {
        1
    } else {
        2
    }
}

/// The flat variant id for a (width class, arity slot) pair — the id
/// recorded by [`cmcc_obs::kernel_hit`].
pub fn variant_id(class: usize, k_slot: usize) -> usize {
    debug_assert!(class < WIDTH_CLASSES && k_slot < ARITY_SLOTS);
    class * ARITY_SLOTS + k_slot
}

/// The human-readable name of a kernel variant, e.g. `k09_w16` (9-tap
/// chains over 16-wide chunks) or `ktail_span` (dynamic-arity tail on
/// the dynamic span path).
///
/// # Panics
///
/// Panics if `id >= KERNEL_VARIANTS`.
pub fn variant_name(id: usize) -> String {
    assert!(id < KERNEL_VARIANTS, "variant id {id} out of range");
    let class = ["w16", "w8", "span"][id / ARITY_SLOTS];
    match id % ARITY_SLOTS {
        0 => format!("ktail_{class}"),
        k => format!("k{k:02}_{class}"),
    }
}

/// A load or store, hoisted out of the burst: executed as one contiguous
/// row copy between lane memory and the register file.
#[derive(Debug, Clone, Copy, PartialEq)]
struct IoOp {
    addr: usize,
    delta: i64,
    reg: u8,
}

/// One multiply-add tap in classified form: everything the burst body
/// needs, with the `ResolvedOp` match already performed.
#[derive(Debug, Clone, Copy, PartialEq)]
struct MacTap {
    addr: usize,
    delta: i64,
    data: u8,
    /// `Some(addend register)` for a `Start` tap, `None` for a `Chain`.
    start: Option<u8>,
    /// Register receiving the running chain value after this tap.
    dest: Option<u8>,
}

/// One classified body line: loads, then the MAC burst as chain pairs in
/// source order (`taps[2t]` / `taps[2t+1]` are the two threads' tap `t`,
/// in blocks of `2k` per pair), then stores. `Nop`s carry no effect in
/// fast mode and are only counted.
#[derive(Debug, Clone, PartialEq)]
struct LineKernel {
    loads: Vec<IoOp>,
    taps: Vec<MacTap>,
    stores: Vec<IoOp>,
    nops: u64,
    /// Chain length of this line's pairs (`0` for a line with no MACs).
    k: usize,
}

/// A load or store resolved against one lane group: `mem` is the flat
/// f32 offset of the lane row (`word × nodes`, advanced in place by
/// `step = delta × nodes` as the line cycle walks the strip), `reg` the
/// flat offset of the register row.
#[derive(Debug, Clone, Copy)]
struct RIo {
    mem: isize,
    step: isize,
    reg: usize,
}

/// A chain tap resolved against one lane group, slimmed to the three
/// words the burst body needs: all `word × nodes` products are done at
/// resolve time, addend and destination handling is hoisted to the pair
/// level (their positions are fixed by the classified shape).
#[derive(Debug, Clone, Copy)]
struct RTap {
    /// Flat offset of the coefficient lane row (advanced by `step`).
    coeff: isize,
    step: isize,
    /// Flat offset of the data register row.
    data: usize,
}

/// One pair's register rows: the addends its two `Start` taps read and
/// the destinations written back after its two final taps.
#[derive(Debug, Clone, Copy)]
struct RPairMeta {
    addend_l: usize,
    addend_r: usize,
    dest_l: usize,
    dest_r: usize,
}

/// One body line resolved against a lane group's `nodes` count. Pair
/// `p` owns taps `[p·2k, (p+1)·2k)` and `pairs[p]`.
struct RLine {
    loads: Vec<RIo>,
    taps: Vec<RTap>,
    pairs: Vec<RPairMeta>,
    stores: Vec<RIo>,
    nops: u64,
    k: usize,
}

impl RLine {
    fn resolve(lk: &LineKernel, n: isize) -> RLine {
        let io = |io: &IoOp| RIo {
            mem: io.addr as isize * n,
            step: io.delta as isize * n,
            reg: io.reg as usize * n as usize,
        };
        let row = |reg: Option<u8>| reg.expect("classified shape") as usize * n as usize;
        let pairs = if lk.k == 0 {
            Vec::new()
        } else {
            lk.taps
                .chunks_exact(2 * lk.k)
                .map(|pair| RPairMeta {
                    addend_l: row(pair[0].start),
                    addend_r: row(pair[1].start),
                    dest_l: row(pair[2 * lk.k - 2].dest),
                    dest_r: row(pair[2 * lk.k - 1].dest),
                })
                .collect()
        };
        RLine {
            loads: lk.loads.iter().map(io).collect(),
            taps: lk
                .taps
                .iter()
                .map(|t| RTap {
                    coeff: t.addr as isize * n,
                    step: t.delta as isize * n,
                    data: t.data as usize * n as usize,
                })
                .collect(),
            pairs,
            stores: lk.stores.iter().map(io).collect(),
            nops: lk.nops,
            k: lk.k,
        }
    }

    /// Steps every lane-memory offset to the next execution of this
    /// pattern line (the interpreter's `addr + k × delta`, done
    /// incrementally).
    fn advance(&mut self) {
        for io in &mut self.loads {
            io.mem += io.step;
        }
        for t in &mut self.taps {
            t.coeff += t.step;
        }
        for io in &mut self.stores {
            io.mem += io.step;
        }
    }
}

/// The burst body: monomorphized over arity (`K`, `0` = dynamic) and
/// chunk width (`CHUNK`, `0` = dynamic span). The `&[f32]` is the
/// line's slab of the packed coefficient stream (`taps.len() × nodes`
/// words, one lane row per tap in source order).
type BurstFn = fn(&RLine, &[f32], &mut LaneFpu);

/// A strip compiled against the kernel family: the executable payload
/// [`StripKernels::run`] replays instead of interpreting the strip.
#[derive(Debug, Clone)]
pub struct StripKernels {
    prologue: Vec<ResolvedPart>,
    body: Vec<LineKernel>,
    lines: usize,
    k: usize,
    k_slot: usize,
    steps: u64,
    /// The selected burst function per width class, so dispatch at run
    /// time is one table-free indirect call (groups of one plan can
    /// differ in lane count after a thread split).
    fns: [BurstFn; WIDTH_CLASSES],
}

impl StripKernels {
    /// Classifies `strip` against the kernel family.
    ///
    /// Returns `None` — fall back to the interpreter — unless every body
    /// line is loads, then one contiguous burst of chain *pairs* with a
    /// single tap count `K` shared by every MAC-bearing line, then
    /// stores (`Nop`s may appear anywhere). The prologue is kept verbatim
    /// and replayed through the interpreter: it is a ring-fill of loads
    /// and nops in compiled kernels, and runs once per strip.
    pub fn compile(strip: &ResolvedStrip) -> Option<StripKernels> {
        compile_parts(
            strip.prologue_parts(),
            strip.body_patterns(),
            strip.lines(),
            strip.steps(),
        )
    }

    /// Chain length of this strip's pairs.
    pub fn arity(&self) -> usize {
        self.k
    }

    /// The arity slot dispatched to (`0` = dynamic tail).
    pub fn k_slot(&self) -> usize {
        self.k_slot
    }

    /// Dynamic steps the equivalent interpreted strip would execute —
    /// kept so the `lockstep_steps` accounting is tier-independent.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Words of coefficient stream [`Self::pack_stream`] emits for an
    /// `n`-lane group: one `n`-wide lane row per tap per executed line.
    pub fn stream_words(&self, n: usize) -> usize {
        let period = self.body.len();
        (0..self.lines)
            .map(|i| self.body[i % period].taps.len())
            .sum::<usize>()
            * n
    }

    /// Packs this strip's coefficient stream for one lane group: each
    /// tap's coefficient lane row, in exactly the order [`Self::run`]
    /// consumes them — the paper's §4 layout discipline, where the
    /// coefficients stream past the FPU in access order and the inner
    /// loop never forms a coefficient address. The stream is a pure
    /// function of the bound coefficient values, so callers may reuse
    /// it across executes until a coefficient binding or node memory
    /// changes (see [`CoeffStreams`]).
    pub fn pack_stream(&self, lanes: &LaneMemory, out: &mut Vec<f32>) {
        let n = lanes.nodes();
        out.clear();
        out.reserve(self.stream_words(n));
        let mut rlines: Vec<RLine> = self
            .body
            .iter()
            .map(|lk| RLine::resolve(lk, n as isize))
            .collect();
        let period = rlines.len();
        for line in 0..self.lines {
            let rl = &mut rlines[line % period];
            for tap in &rl.taps {
                out.extend_from_slice(lanes.flat(tap.coeff as usize, n));
            }
            rl.advance();
        }
    }

    /// Executes the compiled strip over every lane of `lanes`, returning
    /// counters identical to what the interpreter would report for the
    /// source strip. `stream` must be this strip's coefficient stream
    /// over the same lanes ([`Self::pack_stream`], current with respect
    /// to the bound coefficient values).
    ///
    /// # Panics
    ///
    /// Panics if a lane-word address is out of the lane memory's bounds,
    /// or if `stream` was packed for a different shape.
    pub fn run(&self, lanes: &mut LaneMemory, stream: &[f32]) -> StripRun {
        let n = lanes.nodes();
        assert_eq!(
            stream.len(),
            self.stream_words(n),
            "coefficient stream packed for a different strip or lane count"
        );
        let mut fpu = LaneFpu::new(n);
        let mut run = StripRun::default();
        for part in &self.prologue {
            exec_lockstep::<0>(part.op, part.addr, lanes, &mut fpu, &mut run);
        }
        let class = width_class(n);
        let burst = self.fns[class];
        cmcc_obs::kernel_hit(variant_id(class, self.k_slot));
        // Resolve the body against this group's lane count: every
        // `word × nodes` product happens here, once, and the per-line
        // `addr + k × delta` walk becomes an in-place increment — the
        // burst body is left with nothing but sequential stream reads,
        // register rows, and flops.
        let mut rlines: Vec<RLine> = self
            .body
            .iter()
            .map(|lk| RLine::resolve(lk, n as isize))
            .collect();
        let period = rlines.len();
        let mut pos = 0usize;
        for line in 0..self.lines {
            let rl = &mut rlines[line % period];
            for io in &rl.loads {
                fpu.regs[io.reg..io.reg + n].copy_from_slice(lanes.flat(io.mem as usize, n));
            }
            if !rl.taps.is_empty() {
                let words = rl.taps.len() * n;
                burst(rl, &stream[pos..pos + words], &mut fpu);
                pos += words;
            }
            for io in &rl.stores {
                lanes
                    .flat_mut(io.mem as usize, n)
                    .copy_from_slice(&fpu.regs[io.reg..io.reg + n]);
            }
            run.loads += rl.loads.len() as u64;
            run.macs += rl.taps.len() as u64;
            run.stores += rl.stores.len() as u64;
            run.nops += rl.nops;
            rl.advance();
        }
        run
    }
}

/// [`StripKernels::compile`] over raw parts: classifies a prologue,
/// body patterns, and line count against the kernel family without
/// needing a full [`ResolvedStrip`] (the coverage harness builds
/// synthetic shapes directly).
fn compile_parts(
    prologue: &[ResolvedPart],
    patterns: &[Vec<ResolvedPart>],
    lines: usize,
    steps: u64,
) -> Option<StripKernels> {
    if patterns.is_empty() || lines == 0 {
        return None;
    }
    let mut k_all = None;
    let mut body = Vec::with_capacity(patterns.len());
    for pattern in patterns {
        let line = classify_line(pattern)?;
        if line.k != 0 {
            match k_all {
                None => k_all = Some(line.k),
                Some(k) if k == line.k => {}
                Some(_) => return None,
            }
        }
        body.push(line);
    }
    // A strip with no MACs anywhere has nothing to kernelize.
    let k = k_all?;
    let k_slot = arity_slot(k);
    Some(StripKernels {
        prologue: prologue.to_vec(),
        body,
        lines,
        k,
        k_slot,
        steps,
        fns: [
            BURST_TABLE[0][k_slot],
            BURST_TABLE[1][k_slot],
            BURST_TABLE[2][k_slot],
        ],
    })
}

/// Classifies one body line, or `None` if it does not fit the family.
fn classify_line(pattern: &[ResolvedPart]) -> Option<LineKernel> {
    #[derive(PartialEq, PartialOrd)]
    enum Sect {
        Loads,
        Macs,
        Stores,
    }
    let mut sect = Sect::Loads;
    let mut loads = Vec::new();
    let mut taps = Vec::new();
    let mut stores = Vec::new();
    let mut nops = 0u64;
    for part in pattern {
        match part.op {
            ResolvedOp::Nop => nops += 1,
            ResolvedOp::Load { dest } => {
                if sect != Sect::Loads {
                    return None;
                }
                loads.push(IoOp {
                    addr: part.addr,
                    delta: part.delta,
                    reg: dest.0,
                });
            }
            ResolvedOp::Mac { data, acc, dest } => {
                if sect == Sect::Stores {
                    return None;
                }
                sect = Sect::Macs;
                taps.push(MacTap {
                    addr: part.addr,
                    delta: part.delta,
                    data: data.0,
                    start: match acc {
                        MacAcc::Start(reg) => Some(reg.0),
                        MacAcc::Chain => None,
                    },
                    dest: dest.map(|r| r.0),
                });
            }
            ResolvedOp::Store { src } => {
                sect = Sect::Stores;
                stores.push(IoOp {
                    addr: part.addr,
                    delta: part.delta,
                    reg: src.0,
                });
            }
        }
    }
    let k = match pair_chain_length(&taps) {
        Some(k) => k,
        None if taps.is_empty() => 0,
        None => return None,
    };
    Some(LineKernel {
        loads,
        taps,
        stores,
        nops,
        k,
    })
}

/// Validates that `taps` decomposes into chain pairs of one uniform
/// length `K` — `[Start, Start, Chain×2(K−1)]` repeated, destinations
/// written exactly by each chain's final tap — and returns `K`. The
/// scheduler's dummy-thread padding guarantees this shape for compiled
/// kernels; anything else falls back to the interpreter.
///
/// The burst body performs both destination writebacks *after* the
/// pair's last tap, whereas the interpreter writes the left chain's
/// destination before executing the right chain's final tap. That
/// reordering is observable only if the right chain's final tap reads
/// the register the left chain writes — so that one hazard (data for
/// any `K`, the addend too when `K == 1`) also rejects the pair.
fn pair_chain_length(taps: &[MacTap]) -> Option<usize> {
    if taps.len() < 2 || !taps.len().is_multiple_of(2) {
        return None;
    }
    // The second pair (if any) begins at the next Start after index 1.
    let next_start = taps[2..].iter().position(|t| t.start.is_some());
    let k = match next_start {
        Some(j) if j % 2 == 0 => (j + 2) / 2,
        Some(_) => return None,
        None => taps.len() / 2,
    };
    if !taps.len().is_multiple_of(2 * k) {
        return None;
    }
    for (i, tap) in taps.iter().enumerate() {
        if tap.start.is_some() != (i % (2 * k) < 2) {
            return None;
        }
        if tap.dest.is_some() != (i % (2 * k) >= 2 * k - 2) {
            return None;
        }
    }
    for pair in taps.chunks_exact(2 * k) {
        let dest_l = pair[2 * k - 2].dest?;
        let last_r = &pair[2 * k - 1];
        if last_r.data == dest_l || (k == 1 && last_r.start == Some(dest_l)) {
            return None;
        }
    }
    Some(k)
}

/// An 8-lane window of a lane or register row.
#[inline(always)]
fn row8(s: &[f32], at: usize) -> &[f32; 8] {
    s[at..at + 8].try_into().expect("8-lane sub-chunk in range")
}

/// One `Start` tap over 8 lanes: `acc = coeff·data + addend`, separate
/// IEEE multiply and add, never fused — the interpreter's exact
/// arithmetic.
#[inline(always)]
fn start_tap8(coeff: &[f32; 8], data: &[f32; 8], addend: &[f32; 8], acc: &mut [f32; 8]) {
    for i in 0..8 {
        acc[i] = coeff[i] * data[i] + addend[i];
    }
}

/// One `Chain` tap over 8 lanes: `acc += coeff·data`, separate multiply
/// and add.
#[inline(always)]
fn chain_tap8(coeff: &[f32; 8], data: &[f32; 8], acc: &mut [f32; 8]) {
    for i in 0..8 {
        acc[i] += coeff[i] * data[i];
    }
}

/// [`start_tap8`] with a run-time span width (`span <= MAX_SPAN`).
#[inline(always)]
fn start_tap_span(
    coeff: &[f32],
    data: &[f32],
    addend: &[f32],
    span: usize,
    acc: &mut [f32; MAX_SPAN],
) {
    for i in 0..span {
        acc[i] = coeff[i] * data[i] + addend[i];
    }
}

/// [`chain_tap8`] with a run-time span width (`span <= MAX_SPAN`).
#[inline(always)]
fn chain_tap_span(coeff: &[f32], data: &[f32], span: usize, acc: &mut [f32; MAX_SPAN]) {
    for i in 0..span {
        acc[i] += coeff[i] * data[i];
    }
}

/// All pairs of one line over lanes `[base, base + CHUNK)`: the two
/// chains of a pair accumulate in local arrays, taps interleaved in
/// source order so per-lane register dataflow matches the interpreter.
/// Coefficients come from the line's stream slab — one `n`-wide row per
/// tap, walked sequentially (`stream.chunks_exact` advances pair by
/// pair, `r` row by row within a pair), so the body forms no
/// coefficient addresses at all.
///
/// The chains run in 8-lane sub-blocks regardless of `CHUNK`: two
/// 8-wide accumulators plus a tap's coeff/data/addend operands fit the
/// baseline 16-register SIMD budget, where 16-wide accumulators spill
/// to the stack on every tap. Lanes never interact, so splitting the
/// chunk re-orders nothing a lane can observe — each lane still sees
/// its taps in exactly the interpreter's order.
#[inline(always)]
fn pairs_chunk<const K: usize, const CHUNK: usize>(
    line: &RLine,
    stream: &[f32],
    fpu: &mut LaneFpu,
    base: usize,
) {
    let n = fpu.nodes;
    let kk = if K == 0 { line.k } else { K };
    for ((pair, meta), coeffs) in line
        .taps
        .chunks_exact(2 * kk)
        .zip(&line.pairs)
        .zip(stream.chunks_exact(2 * kk * n))
    {
        let mut sub = 0;
        while sub < CHUNK {
            let off = base + sub;
            let mut acc_l = [0.0f32; 8];
            let mut acc_r = [0.0f32; 8];
            start_tap8(
                row8(coeffs, off),
                row8(&fpu.regs, pair[0].data + off),
                row8(&fpu.regs, meta.addend_l + off),
                &mut acc_l,
            );
            start_tap8(
                row8(coeffs, n + off),
                row8(&fpu.regs, pair[1].data + off),
                row8(&fpu.regs, meta.addend_r + off),
                &mut acc_r,
            );
            let mut r = 2 * n;
            for t in 1..kk {
                chain_tap8(
                    row8(coeffs, r + off),
                    row8(&fpu.regs, pair[2 * t].data + off),
                    &mut acc_l,
                );
                chain_tap8(
                    row8(coeffs, r + n + off),
                    row8(&fpu.regs, pair[2 * t + 1].data + off),
                    &mut acc_r,
                );
                r += 2 * n;
            }
            fpu.regs[meta.dest_l + off..meta.dest_l + off + 8].copy_from_slice(&acc_l);
            fpu.regs[meta.dest_r + off..meta.dest_r + off + 8].copy_from_slice(&acc_r);
            sub += 8;
        }
    }
}

/// [`pairs_chunk`] over a run-time span of lanes.
#[inline(always)]
fn pairs_span<const K: usize>(
    line: &RLine,
    stream: &[f32],
    fpu: &mut LaneFpu,
    base: usize,
    span: usize,
) {
    debug_assert!(span <= MAX_SPAN);
    let n = fpu.nodes;
    let kk = if K == 0 { line.k } else { K };
    for ((pair, meta), coeffs) in line
        .taps
        .chunks_exact(2 * kk)
        .zip(&line.pairs)
        .zip(stream.chunks_exact(2 * kk * n))
    {
        let mut acc_l = [0.0f32; MAX_SPAN];
        let mut acc_r = [0.0f32; MAX_SPAN];
        start_tap_span(
            &coeffs[base..base + span],
            &fpu.regs[pair[0].data + base..pair[0].data + base + span],
            &fpu.regs[meta.addend_l + base..meta.addend_l + base + span],
            span,
            &mut acc_l,
        );
        start_tap_span(
            &coeffs[n + base..n + base + span],
            &fpu.regs[pair[1].data + base..pair[1].data + base + span],
            &fpu.regs[meta.addend_r + base..meta.addend_r + base + span],
            span,
            &mut acc_r,
        );
        let mut r = 2 * n;
        for t in 1..kk {
            chain_tap_span(
                &coeffs[r + base..r + base + span],
                &fpu.regs[pair[2 * t].data + base..pair[2 * t].data + base + span],
                span,
                &mut acc_l,
            );
            chain_tap_span(
                &coeffs[r + n + base..r + n + base + span],
                &fpu.regs[pair[2 * t + 1].data + base..pair[2 * t + 1].data + base + span],
                span,
                &mut acc_r,
            );
            r += 2 * n;
        }
        fpu.regs[meta.dest_l + base..meta.dest_l + base + span].copy_from_slice(&acc_l[..span]);
        fpu.regs[meta.dest_r + base..meta.dest_r + base + span].copy_from_slice(&acc_r[..span]);
    }
}

/// One line's burst over every lane: `CHUNK`-wide bodies while they fit,
/// the span path for the remainder (or everything, when `CHUNK == 0`).
fn burst<const K: usize, const CHUNK: usize>(line: &RLine, stream: &[f32], fpu: &mut LaneFpu) {
    let n = fpu.nodes;
    if CHUNK == 0 {
        pairs_span::<K>(line, stream, fpu, 0, n);
        return;
    }
    let mut base = 0;
    while base + CHUNK <= n {
        pairs_chunk::<K, CHUNK>(line, stream, fpu, base);
        base += CHUNK;
    }
    if base < n {
        pairs_span::<K>(line, stream, fpu, base, n - base);
    }
}

/// One width class's row of the dispatch table, arity slot 0 (dynamic
/// tail) through 16.
const fn burst_row<const CHUNK: usize>() -> [BurstFn; ARITY_SLOTS] {
    [
        burst::<0, CHUNK>,
        burst::<1, CHUNK>,
        burst::<2, CHUNK>,
        burst::<3, CHUNK>,
        burst::<4, CHUNK>,
        burst::<5, CHUNK>,
        burst::<6, CHUNK>,
        burst::<7, CHUNK>,
        burst::<8, CHUNK>,
        burst::<9, CHUNK>,
        burst::<10, CHUNK>,
        burst::<11, CHUNK>,
        burst::<12, CHUNK>,
        burst::<13, CHUNK>,
        burst::<14, CHUNK>,
        burst::<15, CHUNK>,
        burst::<16, CHUNK>,
    ]
}

/// The full monomorphized family: width class (16-chunk, 8-chunk, span)
/// × arity slot.
static BURST_TABLE: [[BurstFn; ARITY_SLOTS]; WIDTH_CLASSES] =
    [burst_row::<16>(), burst_row::<8>(), burst_row::<0>()];

/// Cached packed coefficient streams for one plan: `groups[g][s]` is
/// strip `s`'s stream over lane group `g` (empty when the strip is not
/// kernelized).
///
/// The streams are a pure function of the bound coefficient *values*
/// and the group shapes, so a holder keeps them valid across executes
/// — including result/source rebinds — and calls [`Self::invalidate`]
/// exactly when a coefficient binding moves or the host writes node
/// memory. Shape changes (thread splits, retranslation changing the
/// strip count) are detected and repacked automatically.
#[derive(Debug, Clone, Default)]
pub struct CoeffStreams {
    groups: Vec<Vec<Vec<f32>>>,
    /// Lane count per group the streams were packed for.
    shape: Vec<usize>,
    strips: usize,
    valid: bool,
}

impl CoeffStreams {
    /// An empty, invalid cache: the first run packs it.
    pub fn new() -> Self {
        Self::default()
    }

    /// Drops the cached streams; the next run repacks from the lane
    /// mirror's then-current coefficient values.
    pub fn invalidate(&mut self) {
        self.valid = false;
    }

    /// Repacks every kernelized strip's stream unless the cache is
    /// valid for exactly these kernels and group shapes.
    fn ensure(&mut self, kernels: &[Option<StripKernels>], groups: &[LaneMemory]) {
        let current = self.valid
            && self.strips == kernels.len()
            && self.shape.len() == groups.len()
            && self.shape.iter().zip(groups).all(|(&n, g)| n == g.nodes());
        if current {
            return;
        }
        self.groups.resize_with(groups.len(), Vec::new);
        for (streams, lanes) in self.groups.iter_mut().zip(groups) {
            streams.resize_with(kernels.len(), Vec::new);
            for (buf, kernel) in streams.iter_mut().zip(kernels) {
                match kernel {
                    Some(k) => k.pack_stream(lanes, buf),
                    None => buf.clear(),
                }
            }
        }
        self.shape = groups.iter().map(LaneMemory::nodes).collect();
        self.strips = kernels.len();
        self.valid = true;
    }
}

/// Runs every translated strip over every lane group — the kernel-tier
/// counterpart of [`crate::exec::run_resolved_lockstep_groups`].
///
/// `kernels[i]`, when present, is the compiled form of `strips[i]`;
/// missing or `None` entries run through the interpreter (pass `&[]`
/// and a scratch [`CoeffStreams`] to disable the tier wholesale).
/// `streams` caches the packed coefficient streams across calls; it is
/// repacked here when invalidated or when the group shapes changed.
/// Besides `lockstep_steps`, the `kernelized_steps` /
/// `interpreted_steps` split and the per-variant hit table are
/// recorded when telemetry is on.
///
/// # Panics
///
/// Panics if a lane-word address is out of a group's bounds, or if a
/// worker thread panics.
pub fn run_lockstep_groups_kernelized(
    strips: &[ResolvedStrip],
    kernels: &[Option<StripKernels>],
    streams: &mut CoeffStreams,
    groups: &mut [LaneMemory],
) -> StripRun {
    if strips.is_empty() || groups.is_empty() {
        return StripRun::default();
    }
    if cmcc_obs::enabled() {
        let mut kernelized = 0u64;
        let mut interpreted = 0u64;
        for (i, strip) in strips.iter().enumerate() {
            match kernels.get(i).and_then(Option::as_ref) {
                Some(k) => kernelized += k.steps(),
                None => interpreted += strip.steps(),
            }
        }
        cmcc_obs::add(cmcc_obs::Counter::LockstepSteps, kernelized + interpreted);
        cmcc_obs::add(cmcc_obs::Counter::KernelizedSteps, kernelized);
        cmcc_obs::add(cmcc_obs::Counter::InterpretedSteps, interpreted);
    }
    streams.ensure(kernels, groups);
    let streams = &*streams;
    let run_group = |g: usize, lanes: &mut LaneMemory| {
        let mut total = StripRun::default();
        for (i, strip) in strips.iter().enumerate() {
            total.absorb(&match kernels.get(i).and_then(Option::as_ref) {
                Some(k) => k.run(lanes, &streams.groups[g][i]),
                None => run_resolved_strip_lockstep(strip, lanes),
            });
        }
        total
    };
    let per_group: Vec<StripRun> = if groups.len() == 1 {
        let _cpu = cmcc_obs::span(cmcc_obs::Phase::ExecuteWorkers);
        vec![run_group(0, &mut groups[0])]
    } else {
        let run_group = &run_group;
        std::thread::scope(|scope| {
            let handles: Vec<_> = groups
                .iter_mut()
                .enumerate()
                .map(|(g, group)| {
                    scope.spawn(move || {
                        let _cpu = cmcc_obs::span(cmcc_obs::Phase::ExecuteWorkers);
                        run_group(g, group)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("lane worker panicked"))
                .collect()
        })
    };
    let first = per_group[0];
    for other in &per_group[1..] {
        debug_assert_eq!(
            &first, other,
            "lane groups must replay identical instruction streams"
        );
    }
    first
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{ResolvedOp, ResolvedPart, ResolvedSlot};
    use crate::isa::Reg;

    fn part(op: ResolvedOp, addr: usize, delta: i64) -> ResolvedPart {
        ResolvedPart {
            op,
            addr,
            delta,
            slot: ResolvedSlot::Fixed,
        }
    }

    /// The lane-word map of a synthetic strip: two source words, one
    /// output word pair per chain pair, then one coefficient word per
    /// tap per line (each line reads a fresh row of coefficients, so
    /// the packed stream must follow the per-line `advance`).
    fn coeff_base(pairs: usize) -> usize {
        2 + 2 * pairs
    }

    fn lane_words(k: usize, pairs: usize, lines: usize) -> usize {
        coeff_base(pairs) + lines * 2 * k * pairs
    }

    /// Deterministic lane-word contents, varied across both the word
    /// index and the lane.
    fn val(word: usize, lane: usize) -> f32 {
        ((word * 7 + lane * 13) % 31) as f32 * 0.0625 - 0.5
    }

    /// One classified-shape body line of `pairs` chain pairs with `k`
    /// taps per chain: loads, the MAC burst, stores. Left chains read
    /// source word 0 through `Reg(2)` with addend 0; right chains read
    /// word 1 through `Reg(3)` with addend 1.
    fn synthetic_line(k: usize, pairs: usize) -> Vec<ResolvedPart> {
        let mut parts = vec![
            part(ResolvedOp::Load { dest: Reg(2) }, 0, 0),
            part(ResolvedOp::Load { dest: Reg(3) }, 1, 0),
            part(ResolvedOp::Nop, 0, 0),
        ];
        let step = (2 * k * pairs) as i64;
        for p in 0..pairs {
            let (dest_l, dest_r) = (Reg(4 + 2 * p as u8), Reg(5 + 2 * p as u8));
            for t in 0..k {
                let last = t == k - 1;
                let acc = |start: Reg| {
                    if t == 0 {
                        MacAcc::Start(start)
                    } else {
                        MacAcc::Chain
                    }
                };
                parts.push(part(
                    ResolvedOp::Mac {
                        data: Reg(2),
                        acc: acc(Reg::ZERO),
                        dest: last.then_some(dest_l),
                    },
                    coeff_base(pairs) + p * 2 * k + 2 * t,
                    step,
                ));
                parts.push(part(
                    ResolvedOp::Mac {
                        data: Reg(3),
                        acc: acc(Reg::ONE),
                        dest: last.then_some(dest_r),
                    },
                    coeff_base(pairs) + p * 2 * k + 2 * t + 1,
                    step,
                ));
            }
        }
        for p in 0..pairs {
            parts.push(part(
                ResolvedOp::Store {
                    src: Reg(4 + 2 * p as u8),
                },
                2 + 2 * p,
                0,
            ));
            parts.push(part(
                ResolvedOp::Store {
                    src: Reg(5 + 2 * p as u8),
                },
                3 + 2 * p,
                0,
            ));
        }
        parts
    }

    fn compile_synthetic(k: usize, pairs: usize, lines: usize) -> StripKernels {
        let patterns = vec![synthetic_line(k, pairs)];
        let steps = (patterns[0].len() * lines) as u64;
        compile_parts(&[], &patterns, lines, steps)
            .expect("synthetic line matches the classified shape")
    }

    fn filled_lanes(k: usize, pairs: usize, lines: usize, n: usize) -> LaneMemory {
        let words = lane_words(k, pairs, lines);
        let mut lanes = LaneMemory::new(words, n);
        for w in 0..words {
            for (lane, v) in lanes.flat_mut(w * n, n).iter_mut().enumerate() {
                *v = val(w, lane);
            }
        }
        lanes
    }

    /// Runs a freshly packed synthetic strip and returns the lanes.
    fn run_synthetic(k: usize, pairs: usize, lines: usize, n: usize) -> LaneMemory {
        let sk = compile_synthetic(k, pairs, lines);
        let mut lanes = filled_lanes(k, pairs, lines, n);
        let mut stream = Vec::new();
        sk.pack_stream(&lanes, &mut stream);
        let run = sk.run(&mut lanes, &stream);
        assert_eq!(run.macs, (lines * 2 * k * pairs) as u64);
        assert_eq!(run.loads, (2 * lines) as u64);
        assert_eq!(run.stores, (2 * pairs * lines) as u64);
        lanes
    }

    /// The scalar oracle: per lane and pair, replay the exact f32
    /// operation order the interpreter defines (separate multiply and
    /// add, chains accumulating independently, the last line's store
    /// winning).
    fn oracle(k: usize, pairs: usize, lines: usize, lane: usize, pair: usize) -> (f32, f32) {
        let a = val(0, lane);
        let b = val(1, lane);
        let (mut out_l, mut out_r) = (0.0f32, 0.0f32);
        for line in 0..lines {
            let cw = |tap: usize| {
                let word = coeff_base(pairs) + line * 2 * k * pairs + pair * 2 * k + tap;
                val(word, lane)
            };
            let mut acc_l = cw(0) * a + 0.0f32;
            let mut acc_r = cw(1) * b + 1.0f32;
            for t in 1..k {
                acc_l += cw(2 * t) * a;
                acc_r += cw(2 * t + 1) * b;
            }
            out_l = acc_l;
            out_r = acc_r;
        }
        (out_l, out_r)
    }

    /// Every arity slot (1..=16 plus the dynamic tail) on every width
    /// class (16-wide, 8-wide, span) must be exercised — an unhit
    /// variant fails by name. This is the coverage gate for the whole
    /// monomorphized family.
    #[test]
    fn coverage_gate_every_variant_hit() {
        let _guard = OBS_TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let was = cmcc_obs::enabled();
        cmcc_obs::set_enabled(true);
        let before = cmcc_obs::kernel_hits();
        // k = 17 exceeds MAX_UNROLLED_ARITY and lands in the tail slot;
        // n = 16 / 9 / 5 select the three width classes.
        for k in 1..=17 {
            for n in [16, 9, 5] {
                run_synthetic(k, 1, 2, n);
            }
        }
        let after = cmcc_obs::kernel_hits();
        cmcc_obs::set_enabled(was);
        for id in 0..KERNEL_VARIANTS {
            assert!(
                after[id] > before[id],
                "kernel variant {} was never dispatched by the coverage matrix",
                variant_name(id)
            );
        }
    }

    /// Synthetic strips across arities, widths (chunk seams, exact
    /// chunks, narrow spans), pair counts, and multiple advancing lines
    /// are bit-identical to the scalar oracle.
    #[test]
    fn synthetic_strips_match_scalar_oracle() {
        for k in [1, 2, 5, 9, 16, 17, 19] {
            for n in [16, 21, 9, 8, 5, 3, 1] {
                for pairs in [1, 2] {
                    let lines = 3;
                    let lanes = run_synthetic(k, pairs, lines, n);
                    for pair in 0..pairs {
                        let got_l = lanes.flat((2 + 2 * pair) * n, n);
                        let got_r = lanes.flat((3 + 2 * pair) * n, n);
                        for lane in 0..n {
                            let (want_l, want_r) = oracle(k, pairs, lines, lane, pair);
                            assert_eq!(
                                got_l[lane].to_bits(),
                                want_l.to_bits(),
                                "left chain k={k} n={n} pairs={pairs} pair={pair} lane={lane}"
                            );
                            assert_eq!(
                                got_r[lane].to_bits(),
                                want_r.to_bits(),
                                "right chain k={k} n={n} pairs={pairs} pair={pair} lane={lane}"
                            );
                        }
                    }
                }
            }
        }
    }

    /// Lines that violate the classified shape must reject to the
    /// interpreter (`compile_parts` returns `None`), never mis-compile.
    #[test]
    fn classifier_rejects_nonconforming_lines() {
        let compile_one = |pattern: Vec<ResolvedPart>| {
            let steps = pattern.len() as u64;
            compile_parts(&[], &[pattern], 2, steps)
        };
        // The well-formed baseline compiles.
        assert!(compile_one(synthetic_line(3, 1)).is_some());

        // A load after the MAC burst breaks the loads→MACs→stores order.
        let mut parts = synthetic_line(3, 1);
        let load = part(ResolvedOp::Load { dest: Reg(6) }, 0, 0);
        let after_macs = parts.len() - 2;
        parts.insert(after_macs, load);
        assert!(compile_one(parts).is_none(), "load after MACs must reject");

        // An odd tap count cannot pair up.
        let mut parts = synthetic_line(3, 1);
        let last_mac = parts
            .iter()
            .rposition(|p| matches!(p.op, ResolvedOp::Mac { .. }))
            .unwrap();
        parts.remove(last_mac);
        assert!(compile_one(parts).is_none(), "odd tap count must reject");

        // A destination on a non-final tap breaks the pair shape.
        let mut parts = synthetic_line(3, 1);
        let first_mac = parts
            .iter()
            .position(|p| matches!(p.op, ResolvedOp::Mac { .. }))
            .unwrap();
        if let ResolvedOp::Mac { dest, .. } = &mut parts[first_mac].op {
            *dest = Some(Reg(9));
        }
        assert!(
            compile_one(parts).is_none(),
            "early destination must reject"
        );

        // A missing destination on a final tap breaks the pair shape.
        let mut parts = synthetic_line(3, 1);
        let last_mac = parts
            .iter()
            .rposition(|p| matches!(p.op, ResolvedOp::Mac { .. }))
            .unwrap();
        if let ResolvedOp::Mac { dest, .. } = &mut parts[last_mac].op {
            *dest = None;
        }
        assert!(
            compile_one(parts).is_none(),
            "missing destination must reject"
        );

        // The writeback-reorder hazard: the right chain's final tap
        // reading the left chain's destination register.
        let mut parts = synthetic_line(3, 1);
        let last_mac = parts
            .iter()
            .rposition(|p| matches!(p.op, ResolvedOp::Mac { .. }))
            .unwrap();
        if let ResolvedOp::Mac { data, .. } = &mut parts[last_mac].op {
            *data = Reg(4); // dest_l of the pair
        }
        assert!(compile_one(parts).is_none(), "dest_l hazard must reject");

        // Ragged arities across pattern lines share no kernel.
        let ragged = vec![synthetic_line(2, 1), synthetic_line(3, 1)];
        assert!(
            compile_parts(&[], &ragged, 2, 4).is_none(),
            "ragged chain lengths must reject"
        );

        // A strip with no MACs at all has nothing to kernelize.
        let io_only = vec![vec![
            part(ResolvedOp::Load { dest: Reg(2) }, 0, 0),
            part(ResolvedOp::Store { src: Reg(2) }, 1, 0),
        ]];
        assert!(compile_parts(&[], &io_only, 2, 4).is_none());
    }

    /// A stream packed for a different lane count (or strip) is a hard
    /// error, not silent corruption.
    #[test]
    #[should_panic(expected = "coefficient stream")]
    fn stream_shape_mismatch_panics() {
        let sk = compile_synthetic(3, 1, 2);
        let mut lanes = filled_lanes(3, 1, 2, 8);
        let mut stream = Vec::new();
        sk.pack_stream(&lanes, &mut stream);
        stream.pop();
        let _ = sk.run(&mut lanes, &stream);
    }

    /// The stream cache is a snapshot: reused verbatim while valid (by
    /// design — the holder invalidates on coefficient rebinds and host
    /// writes), repacked from current lane contents on `invalidate`,
    /// and repacked automatically when the group shapes change.
    #[test]
    fn coeff_streams_cache_and_invalidate() {
        let k = 2;
        let sk = compile_synthetic(k, 1, 2);
        let kernels = vec![Some(sk)];
        let mut groups = vec![filled_lanes(k, 1, 2, 8)];
        let mut streams = CoeffStreams::new();
        streams.ensure(&kernels, &groups);
        let first = streams.groups[0][0].clone();
        assert_eq!(
            first.len(),
            kernels[0].as_ref().unwrap().stream_words(8),
            "stream covers every tap of every line"
        );

        // Mutate a coefficient word: a valid cache keeps the snapshot.
        let n = 8;
        groups[0].flat_mut(coeff_base(1) * n, n).fill(99.0);
        streams.ensure(&kernels, &groups);
        assert_eq!(streams.groups[0][0], first, "valid cache must not repack");

        // Invalidation repacks from the mutated lanes.
        streams.invalidate();
        streams.ensure(&kernels, &groups);
        assert_ne!(streams.groups[0][0], first, "invalidate must repack");
        assert_eq!(streams.groups[0][0][0], 99.0);

        // A different group shape repacks even without invalidate.
        let mut narrow = vec![filled_lanes(k, 1, 2, 5)];
        streams.ensure(&kernels, &narrow);
        assert_eq!(
            streams.groups[0][0].len(),
            kernels[0].as_ref().unwrap().stream_words(5),
            "shape change must repack for the new lane count"
        );
        let _ = &mut narrow;
    }
}
