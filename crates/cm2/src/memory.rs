//! Per-node memory and the SIMD field allocator.
//!
//! Every node of the CM-2 carries its own memory, but because the machine
//! is SIMD, all nodes use the *same* addresses for the same arrays: the
//! run-time library allocates a "field" (a named region) once and every
//! node interprets the address identically. [`FieldAllocator`] hands out
//! those shared addresses; [`NodeMemory`] is one node's storage.

use std::fmt;

/// A shared per-node memory region descriptor.
///
/// The same `Field` is valid on every node of a machine (SIMD addressing).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Field {
    base: usize,
    len: usize,
}

impl Field {
    /// Base address of the field in node memory.
    pub fn base(&self) -> usize {
        self.base
    }

    /// Length of the field in 32-bit words.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the field is zero-length.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The address of word `offset` within the field.
    ///
    /// # Panics
    ///
    /// Panics if `offset` is out of bounds.
    pub fn addr(&self, offset: usize) -> usize {
        assert!(
            offset < self.len,
            "field offset {offset} out of bounds ({})",
            self.len
        );
        self.base + offset
    }
}

/// Allocator for per-node memory fields.
///
/// The paper's run-time library "takes care of allocating temporary memory
/// space" (§5); this allocator plays that role. It manages two regions:
///
/// * a **bump region** growing up from address 0 — stencil calls allocate
///   temporaries and release them in LIFO order via
///   [`FieldAllocator::mark`] / [`FieldAllocator::release_to`];
/// * a **persistent arena** growing down from the top of memory — used
///   for plan-lifetime allocations (cached execution plans) that outlive
///   any single call and are freed out of order via
///   [`FieldAllocator::free_persistent`], backed by a coalescing
///   first-fit free list.
///
/// Every successful allocation (either region) increments a counter
/// readable through [`FieldAllocator::alloc_count`], which tests and
/// benches use to assert that steady-state plan execution performs zero
/// field allocations.
///
/// # Examples
///
/// ```
/// use cmcc_cm2::memory::FieldAllocator;
///
/// let mut alloc = FieldAllocator::new(1024);
/// let a = alloc.alloc(100)?;
/// let mark = alloc.mark();
/// let tmp = alloc.alloc(200)?;
/// assert_ne!(a.base(), tmp.base());
/// alloc.release_to(mark);
/// let tmp2 = alloc.alloc(50)?;
/// assert_eq!(tmp.base(), tmp2.base()); // temporaries reuse the region
/// # Ok::<(), cmcc_cm2::memory::OutOfMemory>(())
/// ```
#[derive(Debug, Clone)]
pub struct FieldAllocator {
    capacity: usize,
    next: usize,
    /// Lower boundary of the persistent arena: `[floor, capacity)` is
    /// persistent territory, `[0, floor)` belongs to the bump region.
    floor: usize,
    /// Free blocks inside the persistent arena, sorted by base address.
    free: Vec<Field>,
    /// Count of successful allocations, both regions.
    allocs: u64,
}

/// Error returned when node memory is exhausted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutOfMemory {
    /// Words requested.
    pub requested: usize,
    /// Words remaining.
    pub available: usize,
}

impl fmt::Display for OutOfMemory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "node memory exhausted: requested {} words, {} available",
            self.requested, self.available
        )
    }
}

impl std::error::Error for OutOfMemory {}

impl FieldAllocator {
    /// Creates an allocator over `capacity` words of node memory.
    pub fn new(capacity: usize) -> Self {
        FieldAllocator {
            capacity,
            next: 0,
            floor: capacity,
            free: Vec::new(),
            allocs: 0,
        }
    }

    /// Allocates a field of `len` words from the bump region.
    ///
    /// # Errors
    ///
    /// Returns [`OutOfMemory`] when the request does not fit below the
    /// persistent arena.
    pub fn alloc(&mut self, len: usize) -> Result<Field, OutOfMemory> {
        if self.floor - self.next < len {
            return Err(OutOfMemory {
                requested: len,
                available: self.floor - self.next,
            });
        }
        let field = Field {
            base: self.next,
            len,
        };
        self.next += len;
        self.allocs += 1;
        Ok(field)
    }

    /// Allocates a plan-lifetime field from the persistent arena at the
    /// top of memory.
    ///
    /// Unlike [`FieldAllocator::alloc`], persistent fields survive
    /// [`FieldAllocator::release_to`] and are returned individually with
    /// [`FieldAllocator::free_persistent`]. Freed blocks are recycled
    /// first-fit before the arena grows downward.
    ///
    /// # Errors
    ///
    /// Returns [`OutOfMemory`] when neither a free block nor the gap
    /// above the bump region can satisfy the request.
    pub fn alloc_persistent(&mut self, len: usize) -> Result<Field, OutOfMemory> {
        if len == 0 {
            self.allocs += 1;
            return Ok(Field {
                base: self.floor,
                len: 0,
            });
        }
        // First fit from recycled blocks.
        if let Some(i) = self.free.iter().position(|f| f.len >= len) {
            let block = self.free[i];
            let field = Field {
                base: block.base,
                len,
            };
            if block.len == len {
                self.free.remove(i);
            } else {
                self.free[i] = Field {
                    base: block.base + len,
                    len: block.len - len,
                };
            }
            self.allocs += 1;
            return Ok(field);
        }
        // Grow the arena downward toward the bump region.
        if self.floor - self.next < len {
            return Err(OutOfMemory {
                requested: len,
                available: self.floor - self.next,
            });
        }
        self.floor -= len;
        self.allocs += 1;
        Ok(Field {
            base: self.floor,
            len,
        })
    }

    /// Returns a persistent field to the arena.
    ///
    /// Adjacent free blocks coalesce; free space touching the arena
    /// boundary is given back to the bump region.
    ///
    /// # Panics
    ///
    /// Panics if `field` does not lie inside the persistent arena.
    pub fn free_persistent(&mut self, field: Field) {
        if field.len == 0 {
            return;
        }
        assert!(
            field.base >= self.floor && field.base + field.len <= self.capacity,
            "free_persistent of field at {}..{} outside arena {}..{}",
            field.base,
            field.base + field.len,
            self.floor,
            self.capacity
        );
        let pos = self
            .free
            .iter()
            .position(|f| f.base > field.base)
            .unwrap_or(self.free.len());
        self.free.insert(pos, field);
        // Coalesce with the following block, then with the preceding one.
        if pos + 1 < self.free.len()
            && self.free[pos].base + self.free[pos].len == self.free[pos + 1].base
        {
            self.free[pos].len += self.free[pos + 1].len;
            self.free.remove(pos + 1);
        }
        if pos > 0 && self.free[pos - 1].base + self.free[pos - 1].len == self.free[pos].base {
            self.free[pos - 1].len += self.free[pos].len;
            self.free.remove(pos);
        }
        // Give the lowest free block back to the bump region when it
        // touches the arena boundary.
        if let Some(first) = self.free.first().copied() {
            if first.base == self.floor {
                self.floor += first.len;
                self.free.remove(0);
            }
        }
    }

    /// Total successful allocations so far (bump and persistent).
    ///
    /// Tests subtract two readings of this counter to assert a code path
    /// allocates no fields.
    pub fn alloc_count(&self) -> u64 {
        self.allocs
    }

    /// Words currently allocated in the bump region.
    pub fn used(&self) -> usize {
        self.next
    }

    /// Words currently held by the persistent arena (including
    /// fragmentation holes awaiting reuse).
    pub fn persistent_used(&self) -> usize {
        self.capacity - self.floor
    }

    /// A checkpoint for LIFO release of temporaries.
    pub fn mark(&self) -> usize {
        self.next
    }

    /// Releases every allocation made after `mark`.
    ///
    /// # Panics
    ///
    /// Panics if `mark` is in the future (greater than the current
    /// allocation point).
    pub fn release_to(&mut self, mark: usize) {
        assert!(
            mark <= self.next,
            "release mark {mark} is ahead of allocator at {}",
            self.next
        );
        self.next = mark;
    }
}

/// One node's memory: a flat array of 32-bit floating-point words.
///
/// The real CM-2 stored data slicewise (one bit per bit-serial processor,
/// §3); at the level this simulator models, a node's memory is simply an
/// addressable vector of `f32`.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeMemory {
    words: Vec<f32>,
}

impl NodeMemory {
    /// Allocates zeroed memory of `capacity` words.
    pub fn new(capacity: usize) -> Self {
        NodeMemory {
            words: vec![0.0; capacity],
        }
    }

    /// Capacity in words.
    pub fn capacity(&self) -> usize {
        self.words.len()
    }

    /// Reads the word at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of bounds.
    #[inline]
    pub fn read(&self, addr: usize) -> f32 {
        self.words[addr]
    }

    /// Writes the word at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of bounds.
    #[inline]
    pub fn write(&mut self, addr: usize, value: f32) {
        self.words[addr] = value;
    }

    /// A slice view of a field.
    pub fn field(&self, field: Field) -> &[f32] {
        &self.words[field.base()..field.base() + field.len()]
    }

    /// A mutable slice view of a field.
    pub fn field_mut(&mut self, field: Field) -> &mut [f32] {
        &mut self.words[field.base()..field.base() + field.len()]
    }

    /// Fills a field with `value`.
    pub fn fill_field(&mut self, field: Field, value: f32) {
        self.field_mut(field).fill(value);
    }

    /// Fills `len` words starting at `addr` with `value`.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn fill_range(&mut self, addr: usize, len: usize, value: f32) {
        self.words[addr..addr + len].fill(value);
    }

    /// A slice view of `len` words starting at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, addr: usize, len: usize) -> &[f32] {
        &self.words[addr..addr + len]
    }

    /// A mutable slice view of `len` words starting at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice_mut(&mut self, addr: usize, len: usize) -> &mut [f32] {
        &mut self.words[addr..addr + len]
    }

    /// Copies `data` into memory starting at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn copy_from(&mut self, addr: usize, data: &[f32]) {
        self.words[addr..addr + data.len()].copy_from_slice(data);
    }

    /// Copies `len` words from `src_addr` to `dst_addr` within this
    /// memory (the regions may overlap).
    ///
    /// # Panics
    ///
    /// Panics if either range is out of bounds.
    pub fn copy_within(&mut self, src_addr: usize, dst_addr: usize, len: usize) {
        self.words.copy_within(src_addr..src_addr + len, dst_addr);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_is_sequential_and_bounded() {
        let mut a = FieldAllocator::new(10);
        let f1 = a.alloc(4).unwrap();
        let f2 = a.alloc(6).unwrap();
        assert_eq!(f1.base(), 0);
        assert_eq!(f2.base(), 4);
        let err = a.alloc(1).unwrap_err();
        assert_eq!(err.available, 0);
        assert!(err.to_string().contains("exhausted"));
    }

    #[test]
    fn release_to_mark_reuses_space() {
        let mut a = FieldAllocator::new(100);
        a.alloc(10).unwrap();
        let mark = a.mark();
        a.alloc(50).unwrap();
        a.release_to(mark);
        assert_eq!(a.used(), 10);
        let f = a.alloc(20).unwrap();
        assert_eq!(f.base(), 10);
    }

    #[test]
    #[should_panic(expected = "ahead of allocator")]
    fn future_mark_panics() {
        let mut a = FieldAllocator::new(100);
        a.release_to(5);
    }

    #[test]
    fn field_addr_checks_bounds() {
        let mut a = FieldAllocator::new(100);
        let f = a.alloc(10).unwrap();
        assert_eq!(f.addr(9), 9);
        let result = std::panic::catch_unwind(|| f.addr(10));
        assert!(result.is_err());
    }

    #[test]
    fn persistent_arena_grows_down_and_is_invisible_to_marks() {
        let mut a = FieldAllocator::new(100);
        let tmp = a.alloc(10).unwrap();
        assert_eq!(tmp.base(), 0);
        let mark = a.mark();
        let p = a.alloc_persistent(20).unwrap();
        assert_eq!(p.base(), 80);
        assert_eq!(a.persistent_used(), 20);
        // Persistent allocations do not move the bump pointer.
        assert_eq!(a.mark(), mark);
        a.release_to(mark);
        assert_eq!(a.persistent_used(), 20);
        a.free_persistent(p);
        assert_eq!(a.persistent_used(), 0);
    }

    #[test]
    fn regions_share_capacity() {
        let mut a = FieldAllocator::new(100);
        a.alloc(40).unwrap();
        a.alloc_persistent(40).unwrap();
        let err = a.alloc(30).unwrap_err();
        assert_eq!(err.available, 20);
        let err = a.alloc_persistent(30).unwrap_err();
        assert_eq!(err.available, 20);
        a.alloc(20).unwrap();
    }

    #[test]
    fn free_persistent_coalesces_and_reuses() {
        let mut a = FieldAllocator::new(100);
        let p1 = a.alloc_persistent(10).unwrap(); // 90..100
        let p2 = a.alloc_persistent(10).unwrap(); // 80..90
        let p3 = a.alloc_persistent(10).unwrap(); // 70..80
        a.free_persistent(p2); // hole in the middle
        assert_eq!(a.persistent_used(), 30);
        // First fit reuses the hole.
        let p4 = a.alloc_persistent(6).unwrap();
        assert_eq!(p4.base(), 80);
        a.free_persistent(p4);
        a.free_persistent(p1);
        a.free_persistent(p3);
        // All blocks coalesced and handed back to the bump region.
        assert_eq!(a.persistent_used(), 0);
        let full = a.alloc(100).unwrap();
        assert_eq!(full.len(), 100);
    }

    #[test]
    fn alloc_count_tracks_both_regions() {
        let mut a = FieldAllocator::new(100);
        let before = a.alloc_count();
        a.alloc(5).unwrap();
        a.alloc_persistent(5).unwrap();
        assert_eq!(a.alloc_count() - before, 2);
        let before = a.alloc_count();
        a.alloc(1000).unwrap_err();
        assert_eq!(a.alloc_count(), before); // failures don't count
    }

    #[test]
    fn memory_read_write_roundtrip() {
        let mut m = NodeMemory::new(16);
        m.write(3, 2.5);
        assert_eq!(m.read(3), 2.5);
        assert_eq!(m.read(0), 0.0);
    }

    #[test]
    fn field_views_window_the_memory() {
        let mut a = FieldAllocator::new(16);
        let _pad = a.alloc(2).unwrap();
        let f = a.alloc(3).unwrap();
        let mut m = NodeMemory::new(16);
        m.fill_field(f, 7.0);
        assert_eq!(m.field(f), &[7.0, 7.0, 7.0]);
        assert_eq!(m.read(1), 0.0); // padding untouched
        assert_eq!(m.read(2), 7.0);
        assert_eq!(m.read(5), 0.0);
    }
}
