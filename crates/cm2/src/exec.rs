//! Kernel execution: the sequencer + FPU interpreter.
//!
//! Executes a compiled [`Kernel`] over one half-strip of a node's subgrid.
//! Two modes are provided:
//!
//! * [`ExecMode::Cycle`] — cycle-accurate: models the WTL3164 pipeline
//!   (multiply at cycle *k*, add at *k+2*, register writeback at *k+4*),
//!   the interface-chip load latency, pipe-direction reversal penalties,
//!   and per-line sequencer loop overhead. Reads of a register with an
//!   in-flight write to a *different* value are reported as hazards —
//!   they mean the compiler scheduled a read inside the writeback window.
//! * [`ExecMode::Fast`] — functional: immediate register effects, no cycle
//!   accounting. Produces bit-identical results to `Cycle` whenever the
//!   kernel is hazard-free (a property the test suite checks).
//!
//! The paper's microcode computed memory addresses from run-time
//! parameters in the sequencer ALU (§4.3); here the [`StripContext`]
//! carries those parameters and [`FieldLayout::addr`] is the address
//! computation.

use crate::config::{MachineConfig, FPU_REGISTERS};
use crate::isa::{DynamicPart, Kernel, MacAcc, MemRef, Reg};
use crate::memory::NodeMemory;
use std::fmt;

/// Address arithmetic for one array as laid out in node memory.
///
/// `addr(row, col) = base + (row + row_offset) * row_stride + col +
/// col_offset`, where `row`/`col` are *logical* subgrid coordinates. A
/// padded (halo) buffer uses positive offsets so that logical `(-1, -1)`
/// falls on the halo ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FieldLayout {
    /// Base address of the buffer in node memory.
    pub base: usize,
    /// Words per buffer row.
    pub row_stride: usize,
    /// Added to the logical row (halo padding depth).
    pub row_offset: i64,
    /// Added to the logical column (halo padding depth).
    pub col_offset: i64,
}

impl FieldLayout {
    /// Computes the node-memory address of logical element `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the padded coordinates go negative (an addressing bug).
    #[inline]
    pub fn addr(&self, row: i64, col: i64) -> usize {
        let r = row + self.row_offset;
        let c = col + self.col_offset;
        assert!(
            r >= 0 && c >= 0,
            "address underflow at logical ({row}, {col})"
        );
        self.base + r as usize * self.row_stride + c as usize
    }
}

/// Run-time parameters for executing a kernel over one half-strip.
#[derive(Debug, Clone)]
pub struct StripContext<'a> {
    /// Layouts of the padded source (halo) buffers, indexed by
    /// `MemRef::Source.array` (single-source stencils pass one entry).
    pub srcs: &'a [FieldLayout],
    /// Layout of the result buffer.
    pub res: FieldLayout,
    /// Layouts of the coefficient arrays, indexed by `MemRef::Coeff.array`.
    pub coeffs: &'a [FieldLayout],
    /// Address of a word holding `1.0` (the "ones page").
    pub ones_addr: usize,
    /// Address of a word holding `0.0`.
    pub zeros_addr: usize,
    /// Logical row of the first line to process.
    pub start_row: i64,
    /// Number of lines to process.
    pub lines: usize,
    /// Logical column of the strip's first result position.
    pub col0: i64,
}

/// One entry of a strip schedule: a compiled kernel plus the run-time
/// parameters of the half-strip it processes.
///
/// A full stencil call is a sequence of these, identical on every node
/// (the machine is SIMD); [`crate::machine::Machine::run_schedule_all`]
/// executes the whole sequence per node, optionally fanning nodes out
/// across host threads. Everything referenced is immutable shared data,
/// so a `ScheduleStep` is `Send + Sync` and can be shared across workers.
#[derive(Debug, Clone)]
pub struct ScheduleStep<'a> {
    /// The compiled kernel for this half-strip's width and walk.
    pub kernel: &'a Kernel,
    /// The half-strip's run-time parameters.
    pub ctx: StripContext<'a>,
}

/// Execution mode selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// Cycle-accurate pipeline model with hazard detection.
    Cycle,
    /// Fast functional interpretation (no timing).
    Fast,
}

/// Cycle and operation counts for one executed half-strip.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StripRun {
    /// Total cycles including startup, loop overhead, and penalties.
    /// Zero in [`ExecMode::Fast`].
    pub cycles: u64,
    /// Multiply-add instructions issued (including dummy thread padding).
    pub macs: u64,
    /// Load instructions issued.
    pub loads: u64,
    /// Store instructions issued.
    pub stores: u64,
    /// Explicit pipeline-drain bubbles.
    pub nops: u64,
    /// Memory-pipe direction reversals taken.
    pub reversals: u64,
}

impl StripRun {
    /// Accumulates another run's counters into this one.
    pub fn absorb(&mut self, other: &StripRun) {
        self.cycles += other.cycles;
        self.macs += other.macs;
        self.loads += other.loads;
        self.stores += other.stores;
        self.nops += other.nops;
        self.reversals += other.reversals;
    }
}

/// A pipeline hazard detected during cycle-accurate execution: the kernel
/// read a register while a write with a different value was still in
/// flight. This always indicates a compiler scheduling bug.
#[derive(Debug, Clone, PartialEq)]
pub struct HazardError {
    /// The register read too early.
    pub reg: Reg,
    /// The cycle at which the offending read was issued.
    pub at_cycle: u64,
    /// The cycle at which the in-flight write would have committed.
    pub commit_cycle: u64,
}

impl fmt::Display for HazardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "pipeline hazard: {} read at cycle {} while a write commits at cycle {}",
            self.reg, self.at_cycle, self.commit_cycle
        )
    }
}

impl std::error::Error for HazardError {}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PipeDir {
    ToFpu,
    ToMem,
}

/// The FPU + sequencer interpreter state for one node.
#[derive(Debug)]
struct Fpu {
    regs: [f32; FPU_REGISTERS],
    /// In-flight register writes: `(commit_cycle, reg, value)`.
    pending: Vec<(u64, Reg, f32)>,
    /// Running partial sums of the two interleaved multiply-add threads.
    chain: [f32; 2],
    /// Count of MACs issued (parity selects the thread).
    mac_count: u64,
    last_dir: Option<PipeDir>,
}

impl Fpu {
    fn new() -> Self {
        let mut regs = [0.0; FPU_REGISTERS];
        regs[Reg::ONE.0 as usize] = 1.0;
        Fpu {
            regs,
            pending: Vec::new(),
            chain: [0.0; 2],
            mac_count: 0,
            last_dir: None,
        }
    }

    fn commit_due(&mut self, now: u64) {
        if self.pending.is_empty() {
            return;
        }
        let mut i = 0;
        while i < self.pending.len() {
            if self.pending[i].0 <= now {
                let (_, reg, value) = self.pending.swap_remove(i);
                self.regs[reg.0 as usize] = value;
            } else {
                i += 1;
            }
        }
    }

    /// Reads a register, failing if an in-flight write would change it.
    fn read(&self, reg: Reg, now: u64) -> Result<f32, HazardError> {
        let current = self.regs[reg.0 as usize];
        for &(commit, r, value) in &self.pending {
            // Writes of an identical value (the dummy thread keeping the
            // zero register at zero) are benign.
            if r == reg && value.to_bits() != current.to_bits() {
                return Err(HazardError {
                    reg,
                    at_cycle: now,
                    commit_cycle: commit,
                });
            }
        }
        Ok(current)
    }

    fn reversal(&mut self, dir: PipeDir) -> bool {
        let flip = self.last_dir.is_some_and(|d| d != dir);
        self.last_dir = Some(dir);
        flip
    }
}

/// Executes `kernel` over the half-strip described by `ctx` against `mem`.
///
/// Returns cycle and operation counts (cycle counts are zero in
/// [`ExecMode::Fast`]).
///
/// # Errors
///
/// Returns [`HazardError`] if the kernel reads a register during the
/// writeback window of an in-flight write (cycle mode only). Such a
/// kernel is miscompiled.
///
/// # Panics
///
/// Panics if a memory reference resolves out of the node memory bounds,
/// or if a `MemRef::Coeff` names an array index not present in
/// `ctx.coeffs`.
pub fn run_strip(
    kernel: &Kernel,
    ctx: &StripContext<'_>,
    mem: &mut NodeMemory,
    cfg: &MachineConfig,
    mode: ExecMode,
) -> Result<StripRun, HazardError> {
    let mut fpu = Fpu::new();
    let mut run = StripRun::default();
    let cycle_mode = mode == ExecMode::Cycle;
    let mut now: u64 = u64::from(cfg.halfstrip_startup_cycles);

    // Prologue: fill the rings for line 0.
    for part in &kernel.prologue {
        step(
            part,
            ctx.start_row,
            ctx,
            mem,
            &mut fpu,
            &mut run,
            &mut now,
            cfg,
            cycle_mode,
        )?;
    }

    for line in 0..ctx.lines {
        let row = ctx.start_row + line as i64 * i64::from(kernel.row_step);
        let pattern = &kernel.body[line % kernel.body.len()];
        for part in pattern {
            step(
                part, row, ctx, mem, &mut fpu, &mut run, &mut now, cfg, cycle_mode,
            )?;
        }
        now += u64::from(cfg.line_loop_overhead);
    }

    if cycle_mode {
        // Drain the pipeline: account for any writes still in flight.
        if let Some(&(last, ..)) = fpu.pending.iter().max_by_key(|p| p.0) {
            now = now.max(last);
        }
        fpu.commit_due(now);
        run.cycles = now;
    }
    Ok(run)
}

#[inline]
fn resolve(mref: MemRef, row: i64, ctx: &StripContext<'_>) -> usize {
    match mref {
        MemRef::Source { array, drow, dcol } => {
            ctx.srcs[array as usize].addr(row + i64::from(drow), ctx.col0 + i64::from(dcol))
        }
        MemRef::Coeff { array, col } => {
            ctx.coeffs[array as usize].addr(row, ctx.col0 + i64::from(col))
        }
        MemRef::Result { col } => ctx.res.addr(row, ctx.col0 + i64::from(col)),
        MemRef::Ones => ctx.ones_addr,
        MemRef::Zeros => ctx.zeros_addr,
    }
}

#[allow(clippy::too_many_arguments)]
#[inline]
fn step(
    part: &DynamicPart,
    row: i64,
    ctx: &StripContext<'_>,
    mem: &mut NodeMemory,
    fpu: &mut Fpu,
    run: &mut StripRun,
    now: &mut u64,
    cfg: &MachineConfig,
    cycle_mode: bool,
) -> Result<(), HazardError> {
    if cycle_mode {
        fpu.commit_due(*now);
    }
    // Issue cost of this dynamic part; multiply-adds pace at the
    // calibrated rate (see `MachineConfig::mac_issue_cycles`).
    let mut advance: u64 = 1;
    match *part {
        DynamicPart::Mac {
            coeff,
            data,
            acc,
            dest,
        } => {
            if cycle_mode && fpu.reversal(PipeDir::ToFpu) {
                *now += u64::from(cfg.pipe_reversal_penalty);
                run.reversals += 1;
                fpu.commit_due(*now);
            }
            let coeff_val = mem.read(resolve(coeff, row, ctx));
            let data_val = if cycle_mode {
                fpu.read(data, *now)?
            } else {
                fpu.regs[data.0 as usize]
            };
            let product = coeff_val * data_val;
            let thread = (fpu.mac_count % 2) as usize;
            fpu.mac_count += 1;
            match acc {
                MacAcc::Start(reg) => {
                    let addend = if cycle_mode {
                        fpu.read(reg, *now)?
                    } else {
                        fpu.regs[reg.0 as usize]
                    };
                    fpu.chain[thread] = product + addend;
                }
                MacAcc::Chain => {
                    fpu.chain[thread] += product;
                }
            }
            if let Some(dest) = dest {
                let value = fpu.chain[thread];
                if cycle_mode {
                    fpu.pending
                        .push((*now + u64::from(cfg.mac_commit_latency), dest, value));
                } else {
                    fpu.regs[dest.0 as usize] = value;
                }
            }
            run.macs += 1;
            advance = u64::from(cfg.mac_issue_cycles);
        }
        DynamicPart::Load { src, dest } => {
            if cycle_mode && fpu.reversal(PipeDir::ToFpu) {
                *now += u64::from(cfg.pipe_reversal_penalty);
                run.reversals += 1;
                fpu.commit_due(*now);
            }
            let value = mem.read(resolve(src, row, ctx));
            if cycle_mode {
                fpu.pending
                    .push((*now + u64::from(cfg.load_commit_latency), dest, value));
            } else {
                fpu.regs[dest.0 as usize] = value;
            }
            run.loads += 1;
        }
        DynamicPart::Store { src, dest } => {
            if cycle_mode && fpu.reversal(PipeDir::ToMem) {
                *now += u64::from(cfg.pipe_reversal_penalty);
                run.reversals += 1;
                fpu.commit_due(*now);
            }
            let value = if cycle_mode {
                fpu.read(src, *now)?
            } else {
                fpu.regs[src.0 as usize]
            };
            mem.write(resolve(dest, row, ctx), value);
            run.stores += 1;
        }
        DynamicPart::Nop => {
            run.nops += 1;
        }
    }
    *now += advance;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::StaticPart;

    fn cfg() -> MachineConfig {
        MachineConfig::test_board_16()
    }

    /// A 1-wide kernel computing `r = c * x` for a single-tap stencil.
    fn identity_kernel() -> Kernel {
        Kernel {
            static_part: StaticPart::ChainedMac,
            width: 1,
            row_step: -1,
            prologue: vec![],
            body: vec![vec![
                DynamicPart::Load {
                    src: MemRef::Source {
                        array: 0,
                        drow: 0,
                        dcol: 0,
                    },
                    dest: Reg(2),
                },
                DynamicPart::Nop,
                DynamicPart::Nop,
                // Real thread.
                DynamicPart::Mac {
                    coeff: MemRef::Coeff { array: 0, col: 0 },
                    data: Reg(2),
                    acc: MacAcc::Start(Reg::ZERO),
                    dest: Some(Reg(3)),
                },
                // Dummy partner thread.
                DynamicPart::Mac {
                    coeff: MemRef::Zeros,
                    data: Reg::ZERO,
                    acc: MacAcc::Start(Reg::ZERO),
                    dest: Some(Reg::ZERO),
                },
                DynamicPart::Nop,
                DynamicPart::Nop,
                DynamicPart::Nop,
                DynamicPart::Nop,
                DynamicPart::Store {
                    src: Reg(3),
                    dest: MemRef::Result { col: 0 },
                },
            ]],
            useful_flops_per_line: 1,
        }
    }

    /// Memory map: [src 4x4 | res 4x4 | coeff 4x4 | ones | zeros].
    fn setup() -> (NodeMemory, [FieldLayout; 3], usize, usize) {
        let mut mem = NodeMemory::new(64);
        let src = FieldLayout {
            base: 0,
            row_stride: 4,
            row_offset: 0,
            col_offset: 0,
        };
        let res = FieldLayout { base: 16, ..src };
        let coeff = FieldLayout { base: 32, ..src };
        for i in 0..16 {
            mem.write(i, i as f32 + 1.0); // src = 1..16
            mem.write(32 + i, 2.0); // coeff = 2.0
        }
        mem.write(48, 1.0); // ones
        mem.write(49, 0.0); // zeros
        (mem, [src, res, coeff], 48, 49)
    }

    fn run(mode: ExecMode) -> (NodeMemory, StripRun) {
        let (mut mem, [src, res, coeff], ones, zeros) = setup();
        let kernel = identity_kernel();
        let coeffs = [coeff];
        let srcs = [src];
        let ctx = StripContext {
            srcs: &srcs,
            res,
            coeffs: &coeffs,
            ones_addr: ones,
            zeros_addr: zeros,
            start_row: 3,
            lines: 4,
            col0: 1,
        };
        let r = run_strip(&kernel, &ctx, &mut mem, &cfg(), mode).unwrap();
        (mem, r)
    }

    #[test]
    fn cycle_mode_computes_column_of_products() {
        let (mem, run) = run(ExecMode::Cycle);
        // Column 1 of src is [2, 6, 10, 14]; coeff 2.0 doubles it.
        // Lines walk north from row 3 to row 0.
        for row in 0..4 {
            let got = mem.read(16 + row * 4 + 1);
            let want = 2.0 * (row as f32 * 4.0 + 2.0);
            assert_eq!(got, want, "row {row}");
        }
        assert_eq!(run.macs, 8);
        assert_eq!(run.loads, 4);
        assert_eq!(run.stores, 4);
        assert!(run.cycles > 40, "startup must be included: {}", run.cycles);
    }

    #[test]
    fn fast_mode_matches_cycle_mode() {
        let (mem_c, _) = run(ExecMode::Cycle);
        let (mem_f, run_f) = run(ExecMode::Fast);
        assert_eq!(mem_c, mem_f);
        assert_eq!(run_f.cycles, 0);
    }

    #[test]
    fn reversal_penalties_are_counted() {
        let (_, run) = run(ExecMode::Cycle);
        // Each line: loads/macs (ToFpu) then store (ToMem): one reversal
        // into the store and one back at the next line's load.
        assert_eq!(run.reversals, 7);
    }

    #[test]
    fn hazard_read_during_writeback_window_is_reported() {
        let kernel = Kernel {
            static_part: StaticPart::ChainedMac,
            width: 1,
            row_step: -1,
            prologue: vec![],
            body: vec![vec![
                DynamicPart::Mac {
                    coeff: MemRef::Coeff { array: 0, col: 0 },
                    data: Reg::ONE,
                    acc: MacAcc::Start(Reg::ZERO),
                    dest: Some(Reg(3)),
                },
                // Store issued immediately: reads r3 inside its writeback
                // window (commit 4 cycles after the MAC).
                DynamicPart::Store {
                    src: Reg(3),
                    dest: MemRef::Result { col: 0 },
                },
            ]],
            useful_flops_per_line: 1,
        };
        let (mut mem, [src, res, coeff], ones, zeros) = setup();
        let coeffs = [coeff];
        let srcs = [src];
        let ctx = StripContext {
            srcs: &srcs,
            res,
            coeffs: &coeffs,
            ones_addr: ones,
            zeros_addr: zeros,
            start_row: 0,
            lines: 1,
            col0: 0,
        };
        // Pin issue costs so the back-to-back store really falls inside
        // the 4-cycle writeback window.
        let mut tight = cfg();
        tight.mac_issue_cycles = 1;
        tight.pipe_reversal_penalty = 0;
        let err = run_strip(&kernel, &ctx, &mut mem, &tight, ExecMode::Cycle).unwrap_err();
        assert_eq!(err.reg, Reg(3));
        assert!(err.commit_cycle > err.at_cycle);
        assert!(err.to_string().contains("hazard"));
    }

    #[test]
    fn benign_zero_register_writes_are_not_hazards() {
        // Two back-to-back dummy MACs both write 0.0 into r0 and read r0;
        // the value never changes, so no hazard is raised.
        let kernel = Kernel {
            static_part: StaticPart::ChainedMac,
            width: 1,
            row_step: -1,
            prologue: vec![],
            body: vec![vec![
                DynamicPart::Mac {
                    coeff: MemRef::Zeros,
                    data: Reg::ZERO,
                    acc: MacAcc::Start(Reg::ZERO),
                    dest: Some(Reg::ZERO),
                },
                DynamicPart::Mac {
                    coeff: MemRef::Zeros,
                    data: Reg::ZERO,
                    acc: MacAcc::Start(Reg::ZERO),
                    dest: Some(Reg::ZERO),
                },
            ]],
            useful_flops_per_line: 0,
        };
        let (mut mem, [src, res, coeff], ones, zeros) = setup();
        let coeffs = [coeff];
        let srcs = [src];
        let ctx = StripContext {
            srcs: &srcs,
            res,
            coeffs: &coeffs,
            ones_addr: ones,
            zeros_addr: zeros,
            start_row: 0,
            lines: 1,
            col0: 0,
        };
        run_strip(&kernel, &ctx, &mut mem, &cfg(), ExecMode::Cycle).unwrap();
    }

    #[test]
    fn field_layout_applies_halo_offsets() {
        let f = FieldLayout {
            base: 100,
            row_stride: 10,
            row_offset: 2,
            col_offset: 3,
        };
        // Logical (-2, -3) is the buffer's first word.
        assert_eq!(f.addr(-2, -3), 100);
        assert_eq!(f.addr(0, 0), 100 + 2 * 10 + 3);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn field_layout_rejects_out_of_halo_access() {
        let f = FieldLayout {
            base: 0,
            row_stride: 10,
            row_offset: 1,
            col_offset: 1,
        };
        let _ = f.addr(-2, 0);
    }

    #[test]
    fn interleaved_threads_accumulate_independently() {
        // Two interleaved 2-tap chains over the same data: thread 0
        // computes c*(x) + c*(x_east), thread 1 the same for the next
        // column. Each thread's partials must not mix.
        let kernel = Kernel {
            static_part: StaticPart::ChainedMac,
            width: 2,
            row_step: -1,
            prologue: vec![],
            body: vec![vec![
                DynamicPart::Load {
                    src: MemRef::Source {
                        array: 0,
                        drow: 0,
                        dcol: 0,
                    },
                    dest: Reg(2),
                },
                DynamicPart::Load {
                    src: MemRef::Source {
                        array: 0,
                        drow: 0,
                        dcol: 1,
                    },
                    dest: Reg(3),
                },
                DynamicPart::Load {
                    src: MemRef::Source {
                        array: 0,
                        drow: 0,
                        dcol: 2,
                    },
                    dest: Reg(4),
                },
                DynamicPart::Nop,
                DynamicPart::Nop,
                // thread 0 start: result col 0
                DynamicPart::Mac {
                    coeff: MemRef::Coeff { array: 0, col: 0 },
                    data: Reg(2),
                    acc: MacAcc::Start(Reg::ZERO),
                    dest: None,
                },
                // thread 1 start: result col 1
                DynamicPart::Mac {
                    coeff: MemRef::Coeff { array: 0, col: 1 },
                    data: Reg(3),
                    acc: MacAcc::Start(Reg::ZERO),
                    dest: None,
                },
                // thread 0 finish
                DynamicPart::Mac {
                    coeff: MemRef::Coeff { array: 1, col: 0 },
                    data: Reg(3),
                    acc: MacAcc::Chain,
                    dest: Some(Reg(2)),
                },
                // thread 1 finish
                DynamicPart::Mac {
                    coeff: MemRef::Coeff { array: 1, col: 1 },
                    data: Reg(4),
                    acc: MacAcc::Chain,
                    dest: Some(Reg(3)),
                },
                DynamicPart::Nop,
                DynamicPart::Nop,
                DynamicPart::Nop,
                DynamicPart::Store {
                    src: Reg(2),
                    dest: MemRef::Result { col: 0 },
                },
                DynamicPart::Store {
                    src: Reg(3),
                    dest: MemRef::Result { col: 1 },
                },
            ]],
            useful_flops_per_line: 6,
        };
        let (_, [src, res, _], _, _) = setup();
        // Fresh, larger memory: src 4x4 at 0, res at 16, coeff arrays of
        // 2.0 at 32 and 3.0 at 64, ones/zeros at 120/121.
        let c2 = FieldLayout {
            base: 32,
            row_stride: 4,
            row_offset: 0,
            col_offset: 0,
        };
        let mut mem = NodeMemory::new(128);
        for i in 0..16 {
            mem.write(i, (i + 1) as f32);
            mem.write(32 + i, 2.0);
            mem.write(64 + i, 3.0);
        }
        mem.write(120, 1.0);
        mem.write(121, 0.0);
        let c3 = FieldLayout { base: 64, ..c2 };
        let coeffs = [c2, c3];
        let srcs = [src];
        let ctx = StripContext {
            srcs: &srcs,
            res,
            coeffs: &coeffs,
            ones_addr: 120,
            zeros_addr: 121,
            start_row: 1,
            lines: 1,
            col0: 0,
        };
        run_strip(&kernel, &ctx, &mut mem, &cfg(), ExecMode::Cycle).unwrap();
        // Row 1 of src is [5, 6, 7]; result col0 = 2*5 + 3*6 = 28,
        // col1 = 2*6 + 3*7 = 33.
        assert_eq!(mem.read(16 + 4), 28.0);
        assert_eq!(mem.read(16 + 5), 33.0);
    }
}
