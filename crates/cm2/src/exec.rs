//! Kernel execution: the sequencer + FPU interpreter.
//!
//! Executes a compiled [`Kernel`] over one half-strip of a node's subgrid.
//! Two modes are provided:
//!
//! * [`ExecMode::Cycle`] — cycle-accurate: models the WTL3164 pipeline
//!   (multiply at cycle *k*, add at *k+2*, register writeback at *k+4*),
//!   the interface-chip load latency, pipe-direction reversal penalties,
//!   and per-line sequencer loop overhead. Reads of a register with an
//!   in-flight write to a *different* value are reported as hazards —
//!   they mean the compiler scheduled a read inside the writeback window.
//! * [`ExecMode::Fast`] — functional: immediate register effects, no cycle
//!   accounting. Produces bit-identical results to `Cycle` whenever the
//!   kernel is hazard-free (a property the test suite checks).
//!
//! The paper's microcode computed memory addresses from run-time
//! parameters in the sequencer ALU (§4.3); here the [`StripContext`]
//! carries those parameters and [`FieldLayout::addr`] is the address
//! computation.

use crate::config::{MachineConfig, FPU_REGISTERS};
use crate::isa::{DynamicPart, Kernel, MacAcc, MemRef, Reg};
use crate::lane::LaneMemory;
use crate::memory::NodeMemory;
use std::fmt;

/// Address arithmetic for one array as laid out in node memory.
///
/// `addr(row, col) = base + (row + row_offset) * row_stride + col +
/// col_offset`, where `row`/`col` are *logical* subgrid coordinates. A
/// padded (halo) buffer uses positive offsets so that logical `(-1, -1)`
/// falls on the halo ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FieldLayout {
    /// Base address of the buffer in node memory.
    pub base: usize,
    /// Words per buffer row.
    pub row_stride: usize,
    /// Added to the logical row (halo padding depth).
    pub row_offset: i64,
    /// Added to the logical column (halo padding depth).
    pub col_offset: i64,
}

impl FieldLayout {
    /// Computes the node-memory address of logical element `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the padded coordinates go negative (an addressing bug).
    #[inline]
    pub fn addr(&self, row: i64, col: i64) -> usize {
        let r = row + self.row_offset;
        let c = col + self.col_offset;
        assert!(
            r >= 0 && c >= 0,
            "address underflow at logical ({row}, {col})"
        );
        self.base + r as usize * self.row_stride + c as usize
    }
}

/// Run-time parameters for executing a kernel over one half-strip.
#[derive(Debug, Clone)]
pub struct StripContext<'a> {
    /// Layouts of the padded source (halo) buffers, indexed by
    /// `MemRef::Source.array` (single-source stencils pass one entry).
    pub srcs: &'a [FieldLayout],
    /// Layout of the result buffer.
    pub res: FieldLayout,
    /// Layouts of the coefficient arrays, indexed by `MemRef::Coeff.array`.
    pub coeffs: &'a [FieldLayout],
    /// Address of a word holding `1.0` (the "ones page").
    pub ones_addr: usize,
    /// Address of a word holding `0.0`.
    pub zeros_addr: usize,
    /// Logical row of the first line to process.
    pub start_row: i64,
    /// Number of lines to process.
    pub lines: usize,
    /// Logical column of the strip's first result position.
    pub col0: i64,
}

/// One entry of a strip schedule: a compiled kernel plus the run-time
/// parameters of the half-strip it processes.
///
/// A full stencil call is a sequence of these, identical on every node
/// (the machine is SIMD); [`crate::machine::Machine::run_schedule_all`]
/// executes the whole sequence per node, optionally fanning nodes out
/// across host threads. Everything referenced is immutable shared data,
/// so a `ScheduleStep` is `Send + Sync` and can be shared across workers.
#[derive(Debug, Clone)]
pub struct ScheduleStep<'a> {
    /// The compiled kernel for this half-strip's width and walk.
    pub kernel: &'a Kernel,
    /// The half-strip's run-time parameters.
    pub ctx: StripContext<'a>,
}

/// Execution mode selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExecMode {
    /// Cycle-accurate pipeline model with hazard detection.
    Cycle,
    /// Fast functional interpretation (no timing).
    Fast,
}

/// Which interpreter executes resolved schedules in [`ExecMode::Fast`].
///
/// [`ExecMode::Cycle`] always runs the scalar interpreter — the pipeline
/// model is inherently per-node sequential. The engine choice only
/// affects fast mode, where both engines produce bit-identical memory
/// and counters; `Lockstep` replays the machine's own loop order
/// (step-outer, node-inner) over node-major lane storage so each step's
/// arithmetic is one contiguous vector sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ExecEngine {
    /// Node-outer scalar interpreter (the only engine for cycle mode).
    Scalar,
    /// Step-outer lockstep broadcast executor over node lanes.
    #[default]
    Lockstep,
}

/// Cycle and operation counts for one executed half-strip.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StripRun {
    /// Total cycles including startup, loop overhead, and penalties.
    /// Zero in [`ExecMode::Fast`].
    pub cycles: u64,
    /// Multiply-add instructions issued (including dummy thread padding).
    pub macs: u64,
    /// Load instructions issued.
    pub loads: u64,
    /// Store instructions issued.
    pub stores: u64,
    /// Explicit pipeline-drain bubbles.
    pub nops: u64,
    /// Memory-pipe direction reversals taken.
    pub reversals: u64,
}

impl StripRun {
    /// Accumulates another run's counters into this one.
    pub fn absorb(&mut self, other: &StripRun) {
        self.cycles += other.cycles;
        self.macs += other.macs;
        self.loads += other.loads;
        self.stores += other.stores;
        self.nops += other.nops;
        self.reversals += other.reversals;
    }
}

/// A pipeline hazard detected during cycle-accurate execution: the kernel
/// read a register while a write with a different value was still in
/// flight. This always indicates a compiler scheduling bug.
#[derive(Debug, Clone, PartialEq)]
pub struct HazardError {
    /// The register read too early.
    pub reg: Reg,
    /// The cycle at which the offending read was issued.
    pub at_cycle: u64,
    /// The cycle at which the in-flight write would have committed.
    pub commit_cycle: u64,
}

impl fmt::Display for HazardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "pipeline hazard: {} read at cycle {} while a write commits at cycle {}",
            self.reg, self.at_cycle, self.commit_cycle
        )
    }
}

impl std::error::Error for HazardError {}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PipeDir {
    ToFpu,
    ToMem,
}

/// The FPU + sequencer interpreter state for one node.
#[derive(Debug)]
struct Fpu {
    regs: [f32; FPU_REGISTERS],
    /// In-flight register writes: `(commit_cycle, reg, value)`.
    pending: Vec<(u64, Reg, f32)>,
    /// Running partial sums of the two interleaved multiply-add threads.
    chain: [f32; 2],
    /// Count of MACs issued (parity selects the thread).
    mac_count: u64,
    last_dir: Option<PipeDir>,
}

impl Fpu {
    fn new() -> Self {
        let mut regs = [0.0; FPU_REGISTERS];
        regs[Reg::ONE.0 as usize] = 1.0;
        Fpu {
            regs,
            pending: Vec::new(),
            chain: [0.0; 2],
            mac_count: 0,
            last_dir: None,
        }
    }

    fn commit_due(&mut self, now: u64) {
        if self.pending.is_empty() {
            return;
        }
        let mut i = 0;
        while i < self.pending.len() {
            if self.pending[i].0 <= now {
                let (_, reg, value) = self.pending.swap_remove(i);
                self.regs[reg.0 as usize] = value;
            } else {
                i += 1;
            }
        }
    }

    /// Reads a register, failing if an in-flight write would change it.
    fn read(&self, reg: Reg, now: u64) -> Result<f32, HazardError> {
        let current = self.regs[reg.0 as usize];
        for &(commit, r, value) in &self.pending {
            // Writes of an identical value (the dummy thread keeping the
            // zero register at zero) are benign.
            if r == reg && value.to_bits() != current.to_bits() {
                return Err(HazardError {
                    reg,
                    at_cycle: now,
                    commit_cycle: commit,
                });
            }
        }
        Ok(current)
    }

    fn reversal(&mut self, dir: PipeDir) -> bool {
        let flip = self.last_dir.is_some_and(|d| d != dir);
        self.last_dir = Some(dir);
        flip
    }
}

/// Executes `kernel` over the half-strip described by `ctx` against `mem`.
///
/// Returns cycle and operation counts (cycle counts are zero in
/// [`ExecMode::Fast`]).
///
/// # Errors
///
/// Returns [`HazardError`] if the kernel reads a register during the
/// writeback window of an in-flight write (cycle mode only). Such a
/// kernel is miscompiled.
///
/// # Panics
///
/// Panics if a memory reference resolves out of the node memory bounds,
/// or if a `MemRef::Coeff` names an array index not present in
/// `ctx.coeffs`.
pub fn run_strip(
    kernel: &Kernel,
    ctx: &StripContext<'_>,
    mem: &mut NodeMemory,
    cfg: &MachineConfig,
    mode: ExecMode,
) -> Result<StripRun, HazardError> {
    // One dispatch on the mode, then a monomorphized loop: the fast
    // variant compiles with every cycle-model branch folded away.
    match mode {
        ExecMode::Cycle => run_strip_impl::<true>(kernel, ctx, mem, cfg),
        ExecMode::Fast => run_strip_impl::<false>(kernel, ctx, mem, cfg),
    }
}

fn run_strip_impl<const CYCLE: bool>(
    kernel: &Kernel,
    ctx: &StripContext<'_>,
    mem: &mut NodeMemory,
    cfg: &MachineConfig,
) -> Result<StripRun, HazardError> {
    let mut fpu = Fpu::new();
    let mut run = StripRun::default();
    let mut now: u64 = u64::from(cfg.halfstrip_startup_cycles);

    // Prologue: fill the rings for line 0.
    for part in &kernel.prologue {
        step::<CYCLE>(
            part,
            ctx.start_row,
            ctx,
            mem,
            &mut fpu,
            &mut run,
            &mut now,
            cfg,
        )?;
    }

    for line in 0..ctx.lines {
        let row = ctx.start_row + line as i64 * i64::from(kernel.row_step);
        let pattern = &kernel.body[line % kernel.body.len()];
        for part in pattern {
            step::<CYCLE>(part, row, ctx, mem, &mut fpu, &mut run, &mut now, cfg)?;
        }
        now += u64::from(cfg.line_loop_overhead);
    }

    if CYCLE {
        // Drain the pipeline: account for any writes still in flight.
        if let Some(&(last, ..)) = fpu.pending.iter().max_by_key(|p| p.0) {
            now = now.max(last);
        }
        fpu.commit_due(now);
        run.cycles = now;
    }
    Ok(run)
}

#[inline]
fn resolve(mref: MemRef, row: i64, ctx: &StripContext<'_>) -> usize {
    match mref {
        MemRef::Source { array, drow, dcol } => {
            ctx.srcs[array as usize].addr(row + i64::from(drow), ctx.col0 + i64::from(dcol))
        }
        MemRef::Coeff { array, col } => {
            ctx.coeffs[array as usize].addr(row, ctx.col0 + i64::from(col))
        }
        MemRef::Result { col } => ctx.res.addr(row, ctx.col0 + i64::from(col)),
        MemRef::Ones => ctx.ones_addr,
        MemRef::Zeros => ctx.zeros_addr,
    }
}

/// Splits a [`DynamicPart`] into its register operation and its memory
/// reference, the decomposition both interpreters share: the legacy path
/// resolves the reference per step, the plan path pre-resolves it once.
#[inline]
fn decompose(part: &DynamicPart) -> (ResolvedOp, Option<MemRef>) {
    match *part {
        DynamicPart::Mac {
            coeff,
            data,
            acc,
            dest,
        } => (ResolvedOp::Mac { data, acc, dest }, Some(coeff)),
        DynamicPart::Load { src, dest } => (ResolvedOp::Load { dest }, Some(src)),
        DynamicPart::Store { src, dest } => (ResolvedOp::Store { src }, Some(dest)),
        DynamicPart::Nop => (ResolvedOp::Nop, None),
    }
}

#[allow(clippy::too_many_arguments)]
#[inline]
fn step<const CYCLE: bool>(
    part: &DynamicPart,
    row: i64,
    ctx: &StripContext<'_>,
    mem: &mut NodeMemory,
    fpu: &mut Fpu,
    run: &mut StripRun,
    now: &mut u64,
    cfg: &MachineConfig,
) -> Result<(), HazardError> {
    let (op, mref) = decompose(part);
    let addr = mref.map_or(0, |m| resolve(m, row, ctx));
    exec_resolved::<CYCLE>(op, addr, mem, fpu, run, now, cfg)
}

/// Executes one operation against a concrete, already-resolved memory
/// address. This is the single execution core shared by [`run_strip`]
/// (which resolves addresses per step) and [`run_resolved_strip`] (which
/// resolves them once at plan-build time), so the two paths are
/// bit-identical and cycle-identical by construction.
///
/// Monomorphized on `CYCLE`: the fast instantiation carries no pipeline
/// state updates, no hazard checks, and no reversal bookkeeping — the
/// compiler folds every `if CYCLE` away instead of testing a runtime
/// flag once per dynamic part.
#[allow(clippy::too_many_arguments)]
#[inline]
fn exec_resolved<const CYCLE: bool>(
    op: ResolvedOp,
    addr: usize,
    mem: &mut NodeMemory,
    fpu: &mut Fpu,
    run: &mut StripRun,
    now: &mut u64,
    cfg: &MachineConfig,
) -> Result<(), HazardError> {
    if CYCLE {
        fpu.commit_due(*now);
    }
    // Issue cost of this dynamic part; multiply-adds pace at the
    // calibrated rate (see `MachineConfig::mac_issue_cycles`).
    let mut advance: u64 = 1;
    match op {
        ResolvedOp::Mac { data, acc, dest } => {
            if CYCLE && fpu.reversal(PipeDir::ToFpu) {
                *now += u64::from(cfg.pipe_reversal_penalty);
                run.reversals += 1;
                fpu.commit_due(*now);
            }
            let coeff_val = mem.read(addr);
            let data_val = if CYCLE {
                fpu.read(data, *now)?
            } else {
                fpu.regs[data.0 as usize]
            };
            let product = coeff_val * data_val;
            let thread = (fpu.mac_count % 2) as usize;
            fpu.mac_count += 1;
            match acc {
                MacAcc::Start(reg) => {
                    let addend = if CYCLE {
                        fpu.read(reg, *now)?
                    } else {
                        fpu.regs[reg.0 as usize]
                    };
                    fpu.chain[thread] = product + addend;
                }
                MacAcc::Chain => {
                    fpu.chain[thread] += product;
                }
            }
            if let Some(dest) = dest {
                let value = fpu.chain[thread];
                if CYCLE {
                    fpu.pending
                        .push((*now + u64::from(cfg.mac_commit_latency), dest, value));
                } else {
                    fpu.regs[dest.0 as usize] = value;
                }
            }
            run.macs += 1;
            advance = u64::from(cfg.mac_issue_cycles);
        }
        ResolvedOp::Load { dest } => {
            if CYCLE && fpu.reversal(PipeDir::ToFpu) {
                *now += u64::from(cfg.pipe_reversal_penalty);
                run.reversals += 1;
                fpu.commit_due(*now);
            }
            let value = mem.read(addr);
            if CYCLE {
                fpu.pending
                    .push((*now + u64::from(cfg.load_commit_latency), dest, value));
            } else {
                fpu.regs[dest.0 as usize] = value;
            }
            run.loads += 1;
        }
        ResolvedOp::Store { src } => {
            if CYCLE && fpu.reversal(PipeDir::ToMem) {
                *now += u64::from(cfg.pipe_reversal_penalty);
                run.reversals += 1;
                fpu.commit_due(*now);
            }
            let value = if CYCLE {
                fpu.read(src, *now)?
            } else {
                fpu.regs[src.0 as usize]
            };
            mem.write(addr, value);
            run.stores += 1;
        }
        ResolvedOp::Nop => {
            run.nops += 1;
        }
    }
    *now += advance;
    Ok(())
}

/// A [`DynamicPart`] with its memory reference stripped out: just the
/// register operation. The address arrives separately — per step in the
/// legacy interpreter, pre-resolved in a [`ResolvedStrip`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResolvedOp {
    /// Chained multiply-add; the address is the coefficient operand.
    Mac {
        /// Data register (the preloaded source value).
        data: Reg,
        /// Accumulator behavior.
        acc: MacAcc,
        /// Optional register destination for the chain value.
        dest: Option<Reg>,
    },
    /// Memory-to-register load; the address is the load source.
    Load {
        /// Destination register.
        dest: Reg,
    },
    /// Register-to-memory store; the address is the store target.
    Store {
        /// Source register.
        src: Reg,
    },
    /// Pipeline-drain bubble (no address).
    Nop,
}

/// Which plan-bound buffer a pre-resolved address points into,
/// determining how [`ResolvedStrip::rebase`] adjusts it when the plan is
/// rebound to different arrays of the same shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResolvedSlot {
    /// The result array (rebased by the new result's base delta).
    Result,
    /// Coefficient array `n` (rebased by that coefficient's base delta).
    Coeff(u16),
    /// A plan-owned buffer — halo, constant, or literal page — whose
    /// address never changes over the plan's lifetime.
    Fixed,
}

/// One pre-resolved step: an operation, the concrete address of its
/// first occurrence, the per-period address stride, and the rebase slot.
///
/// Kernel addresses are affine in the line index: pattern line `p` of a
/// kernel with period `L` executes at lines `p, p+L, p+2L, …`, and each
/// period moves the address by `L · row_step · row_stride` of the
/// referenced buffer. Storing `(addr, delta)` therefore captures every
/// occurrence with one add per execution — no layout lookup, no bounds
/// recheck, no sign handling in the hot loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResolvedPart {
    /// The register operation.
    pub op: ResolvedOp,
    /// Address at the part's first execution.
    pub addr: usize,
    /// Address advance per kernel period (0 for prologue parts, constant
    /// pages, and literal coefficient pages).
    pub delta: i64,
    /// How to rebase `addr` when the plan is rebound.
    pub slot: ResolvedSlot,
}

/// A half-strip with every memory address pre-resolved — the executable
/// payload of a cached execution plan.
///
/// Built once from a kernel and its [`StripContext`]; executed many
/// times by [`run_resolved_strip`], which replays the same operation
/// stream as [`run_strip`] (same order, same cycle accounting) without
/// per-step address resolution. Only the pattern lines that actually
/// execute are stored, so a strip shorter than the kernel period never
/// resolves addresses it would never touch.
#[derive(Debug, Clone, PartialEq)]
pub struct ResolvedStrip {
    prologue: Vec<ResolvedPart>,
    body: Vec<Vec<ResolvedPart>>,
    lines: usize,
}

impl ResolvedStrip {
    /// Pre-resolves `kernel` over the half-strip described by `ctx`.
    ///
    /// # Panics
    ///
    /// Panics on the same addressing errors [`run_strip`] would hit:
    /// out-of-halo accesses or coefficient indices missing from `ctx`.
    pub fn new(kernel: &Kernel, ctx: &StripContext<'_>) -> Self {
        let period = kernel.body.len();
        // Store only patterns that execute: a strip shorter than the
        // kernel period must not resolve lines it never reaches (their
        // rows may fall outside the halo).
        let stored = period.min(ctx.lines);
        let resolve_part = |part: &DynamicPart, row: i64, delta_periods: i64| -> ResolvedPart {
            let (op, mref) = decompose(part);
            let (addr, slot, stride) = match mref {
                None => (0, ResolvedSlot::Fixed, 0),
                Some(m) => {
                    let addr = resolve(m, row, ctx);
                    // The slot governs rebasing only; the stride (and
                    // hence the per-period delta) always follows the
                    // referenced layout. Sources are `Fixed` because
                    // kernels read plan-owned halo buffers, but their
                    // addresses still walk row by row.
                    let (slot, stride) = match m {
                        MemRef::Source { array, .. } => (
                            ResolvedSlot::Fixed,
                            ctx.srcs[array as usize].row_stride as i64,
                        ),
                        MemRef::Coeff { array, .. } => (
                            ResolvedSlot::Coeff(array),
                            ctx.coeffs[array as usize].row_stride as i64,
                        ),
                        MemRef::Result { .. } => (ResolvedSlot::Result, ctx.res.row_stride as i64),
                        MemRef::Ones | MemRef::Zeros => (ResolvedSlot::Fixed, 0),
                    };
                    (addr, slot, stride)
                }
            };
            ResolvedPart {
                op,
                addr,
                delta: delta_periods * i64::from(kernel.row_step) * stride,
                slot,
            }
        };
        let prologue = kernel
            .prologue
            .iter()
            .map(|part| resolve_part(part, ctx.start_row, 0))
            .collect();
        let body = (0..stored)
            .map(|p| {
                let row = ctx.start_row + p as i64 * i64::from(kernel.row_step);
                kernel.body[p % period]
                    .iter()
                    .map(|part| resolve_part(part, row, stored as i64))
                    .collect()
            })
            .collect();
        ResolvedStrip {
            prologue,
            body,
            lines: ctx.lines,
        }
    }

    /// Lines this strip processes.
    pub fn lines(&self) -> usize {
        self.lines
    }

    /// Dynamic steps executed per run (prologue plus every body line).
    pub fn steps(&self) -> u64 {
        let body: usize = (0..self.lines)
            .map(|l| self.body[l % self.body.len().max(1)].len())
            .sum();
        (self.prologue.len() + body) as u64
    }

    /// The prologue parts, for the kernel-tier classifier.
    pub(crate) fn prologue_parts(&self) -> &[ResolvedPart] {
        &self.prologue
    }

    /// The stored body patterns (one per period line), for the
    /// kernel-tier classifier.
    pub(crate) fn body_patterns(&self) -> &[Vec<ResolvedPart>] {
        &self.body
    }

    /// Translates every pre-resolved node-memory address into the lane
    /// word space of `view`, producing a strip executable by
    /// [`run_resolved_strip_lockstep`].
    ///
    /// Because each viewed range is contiguous, a node address maps to a
    /// lane word by offsetting within the range, and the per-period
    /// `delta` carries over unchanged — as long as every occurrence of a
    /// part (`addr + k·delta` for all executed `k`) stays inside one
    /// range. When a walk *crosses* a range seam but every occurrence
    /// individually lands in some valid range, the strip is instead
    /// split at the seams: the body is unrolled to one fully-resolved
    /// pattern per line (`delta` 0), so multi-range result layouts still
    /// lane-map. Returns `None` when any executed address falls outside
    /// the view or a store targets a range the view does not scatter
    /// back — then the caller must fall back to the scalar engine.
    pub fn translate(&self, view: &crate::lane::LaneView) -> Option<ResolvedStrip> {
        let period = self.body.len().max(1);
        let translate_part = |part: &ResolvedPart, k_max: i64| -> Option<ResolvedPart> {
            if part.op == ResolvedOp::Nop {
                // No memory reference; nothing to translate.
                return Some(*part);
            }
            let (lane_addr, range) = view.locate(part.addr)?;
            if matches!(part.op, ResolvedOp::Store { .. }) && !range.writable {
                return None;
            }
            // Every occurrence walks linearly from `addr`, so first and
            // last in range implies all in range.
            let last = part.addr as i64 + k_max * part.delta;
            if last < range.node_base as i64 || last >= (range.node_base + range.len) as i64 {
                return None;
            }
            Some(ResolvedPart {
                addr: lane_addr,
                ..*part
            })
        };
        let direct = (|| {
            let prologue = self
                .prologue
                .iter()
                .map(|part| translate_part(part, 0))
                .collect::<Option<Vec<_>>>()?;
            let body = self
                .body
                .iter()
                .enumerate()
                .map(|(p, pattern)| {
                    // Pattern `p` executes at lines p, p+period, … below
                    // `lines`; the last gets the largest address offset.
                    let occurrences = (self.lines - p).div_ceil(period) as i64;
                    pattern
                        .iter()
                        .map(|part| translate_part(part, occurrences - 1))
                        .collect::<Option<Vec<_>>>()
                })
                .collect::<Option<Vec<_>>>()?;
            Some(ResolvedStrip {
                prologue,
                body,
                lines: self.lines,
            })
        })();
        direct.or_else(|| self.translate_unrolled(view))
    }

    /// The seam-splitting fallback for [`ResolvedStrip::translate`]:
    /// resolve every part at every line it executes and translate each
    /// occurrence independently, emitting one body pattern per line with
    /// `delta` 0. Costs `lines/period`× the pattern storage, so it is
    /// only attempted after the walk-carrying translation fails.
    fn translate_unrolled(&self, view: &crate::lane::LaneView) -> Option<ResolvedStrip> {
        if self.body.is_empty() {
            return None;
        }
        let period = self.body.len();
        let translate_at = |part: &ResolvedPart, k: i64| -> Option<ResolvedPart> {
            if part.op == ResolvedOp::Nop {
                return Some(*part);
            }
            let addr = part.addr as i64 + k * part.delta;
            if addr < 0 {
                return None;
            }
            let (lane_addr, range) = view.locate(addr as usize)?;
            if matches!(part.op, ResolvedOp::Store { .. }) && !range.writable {
                return None;
            }
            Some(ResolvedPart {
                addr: lane_addr,
                delta: 0,
                ..*part
            })
        };
        let prologue = self
            .prologue
            .iter()
            .map(|part| translate_at(part, 0))
            .collect::<Option<Vec<_>>>()?;
        let body = (0..self.lines)
            .map(|line| {
                let k = (line / period) as i64;
                self.body[line % period]
                    .iter()
                    .map(|part| translate_at(part, k))
                    .collect::<Option<Vec<_>>>()
            })
            .collect::<Option<Vec<_>>>()?;
        Some(ResolvedStrip {
            prologue,
            body,
            lines: self.lines,
        })
    }

    /// Shifts every result-slot address by `result_delta` words and every
    /// coefficient-slot address for array `i` by `coeff_deltas[i]` —
    /// rebinding the strip to different arrays of identical shape without
    /// rebuilding it.
    ///
    /// # Panics
    ///
    /// Panics if a coefficient slot indexes past `coeff_deltas` or an
    /// adjustment would move an address below zero.
    pub fn rebase(&mut self, result_delta: i64, coeff_deltas: &[i64]) {
        let shift = |part: &mut ResolvedPart| {
            let delta = match part.slot {
                ResolvedSlot::Result => result_delta,
                ResolvedSlot::Coeff(i) => coeff_deltas[i as usize],
                ResolvedSlot::Fixed => 0,
            };
            if delta != 0 {
                let moved = part.addr as i64 + delta;
                assert!(moved >= 0, "rebase moved address below zero");
                part.addr = moved as usize;
            }
        };
        self.prologue.iter_mut().for_each(&shift);
        for pattern in &mut self.body {
            pattern.iter_mut().for_each(&shift);
        }
    }

    /// Retags result and/or coefficient slots as [`ResolvedSlot::Fixed`],
    /// pinning those addresses across [`ResolvedStrip::rebase`].
    ///
    /// Temporal tiling uses this for strips that target plan-owned
    /// buffers rather than the caller's arrays: intermediate fused steps
    /// write lane-private scratch (freeze the result), and every fused
    /// step reads named coefficients through plan-owned halo pages
    /// (freeze the coefficients) — neither address may move when the
    /// plan is rebound.
    pub fn freeze_slots(&mut self, freeze_result: bool, freeze_coeffs: bool) {
        let freeze = |part: &mut ResolvedPart| {
            let hit = match part.slot {
                ResolvedSlot::Result => freeze_result,
                ResolvedSlot::Coeff(_) => freeze_coeffs,
                ResolvedSlot::Fixed => false,
            };
            if hit {
                part.slot = ResolvedSlot::Fixed;
            }
        };
        self.prologue.iter_mut().for_each(&freeze);
        for pattern in &mut self.body {
            pattern.iter_mut().for_each(&freeze);
        }
    }
}

/// Executes a pre-resolved half-strip against one node's memory.
///
/// Replays exactly the operation stream [`run_strip`] would execute for
/// the originating kernel and context — same order, same cycle
/// accounting, same hazard semantics — with all address computation done
/// at build time.
///
/// # Errors
///
/// Returns [`HazardError`] exactly as [`run_strip`] would (cycle mode
/// only).
pub fn run_resolved_strip(
    strip: &ResolvedStrip,
    mem: &mut NodeMemory,
    cfg: &MachineConfig,
    mode: ExecMode,
) -> Result<StripRun, HazardError> {
    match mode {
        ExecMode::Cycle => run_resolved_strip_impl::<true>(strip, mem, cfg),
        ExecMode::Fast => run_resolved_strip_impl::<false>(strip, mem, cfg),
    }
}

fn run_resolved_strip_impl<const CYCLE: bool>(
    strip: &ResolvedStrip,
    mem: &mut NodeMemory,
    cfg: &MachineConfig,
) -> Result<StripRun, HazardError> {
    let mut fpu = Fpu::new();
    let mut run = StripRun::default();
    let mut now: u64 = u64::from(cfg.halfstrip_startup_cycles);

    for part in &strip.prologue {
        exec_resolved::<CYCLE>(part.op, part.addr, mem, &mut fpu, &mut run, &mut now, cfg)?;
    }

    let period = strip.body.len();
    for line in 0..strip.lines {
        let pattern = &strip.body[line % period];
        let k = (line / period) as i64;
        for part in pattern {
            let addr = (part.addr as i64 + k * part.delta) as usize;
            exec_resolved::<CYCLE>(part.op, addr, mem, &mut fpu, &mut run, &mut now, cfg)?;
        }
        now += u64::from(cfg.line_loop_overhead);
    }

    if CYCLE {
        if let Some(&(last, ..)) = fpu.pending.iter().max_by_key(|p| p.0) {
            now = now.max(last);
        }
        fpu.commit_due(now);
        run.cycles = now;
    }
    Ok(run)
}

/// The FPU register file of *all* lanes at once: register `r`'s value on
/// every node, stored contiguously (`regs[r*nodes .. (r+1)*nodes]`), so a
/// broadcast operation reads and writes whole register rows.
pub(crate) struct LaneFpu {
    /// `FPU_REGISTERS` rows of `nodes` lanes.
    pub(crate) regs: Vec<f32>,
    /// Two interleaved multiply-add threads, one row of lanes each.
    chain: Vec<f32>,
    /// Count of MACs issued (parity selects the thread) — identical on
    /// every lane, so one scalar counter suffices.
    mac_count: u64,
    pub(crate) nodes: usize,
}

impl LaneFpu {
    pub(crate) fn new(nodes: usize) -> Self {
        let mut regs = vec![0.0; FPU_REGISTERS * nodes];
        regs[Reg::ONE.0 as usize * nodes..(Reg::ONE.0 as usize + 1) * nodes].fill(1.0);
        LaneFpu {
            regs,
            chain: vec![0.0; 2 * nodes],
            mac_count: 0,
            nodes,
        }
    }

    #[inline]
    fn reg_row(&self, reg: Reg) -> &[f32] {
        &self.regs[reg.0 as usize * self.nodes..(reg.0 as usize + 1) * self.nodes]
    }
}

/// Executes a lane-translated strip across every lane of `lanes` in
/// lockstep: step-outer, node-inner, the CM-2's own loop order (§4.3
/// streams each dynamic part to all FPUs at once).
///
/// Functional (fast-mode) semantics only — the cycle-accurate pipeline
/// model stays on the scalar path, so there is no mode parameter and no
/// hazard error. Per lane, each operation performs exactly the scalar
/// fast-mode arithmetic in the same order (`chain = coeff·data + addend`
/// then `chain += coeff·data`, separate IEEE multiply and add, never a
/// fused contraction), so results are bit-identical to
/// [`run_resolved_strip`] in [`ExecMode::Fast`]. The returned counters
/// count each broadcast step once — the per-node numbers the scalar
/// interpreter would report, since all nodes run the same stream.
///
/// The strip must have been produced by [`ResolvedStrip::translate`]
/// against the view the lanes were gathered with; addresses are lane
/// words, not node addresses.
///
/// # Panics
///
/// Panics if a lane-word address is out of the lane memory's bounds.
pub fn run_resolved_strip_lockstep(strip: &ResolvedStrip, lanes: &mut LaneMemory) -> StripRun {
    // Monomorphize the broadcast loops over the common lane counts (the
    // test boards and their thread-split groups), so the per-step sweeps
    // compile to fixed-width, bounds-check-free vector code; any other
    // count takes the dynamic-width fallback (`N = 0`).
    match lanes.nodes() {
        16 => run_resolved_strip_lockstep_n::<16>(strip, lanes),
        8 => run_resolved_strip_lockstep_n::<8>(strip, lanes),
        4 => run_resolved_strip_lockstep_n::<4>(strip, lanes),
        2 => run_resolved_strip_lockstep_n::<2>(strip, lanes),
        1 => run_resolved_strip_lockstep_n::<1>(strip, lanes),
        _ => run_resolved_strip_lockstep_n::<0>(strip, lanes),
    }
}

/// Runs every translated strip over every lane group, one host thread
/// per group — the fan-out step of a lane-resident execute.
///
/// Each group holds a disjoint contiguous chunk of the machine's nodes
/// (see [`crate::lane::LaneMirror`]); lanes never interact, so the groups
/// replay identical instruction streams and their [`StripRun`] counters
/// must agree (debug-asserted). Returns the per-node counters.
///
/// # Panics
///
/// Panics if a lane-word address is out of a group's bounds, or if a
/// worker thread panics.
pub fn run_resolved_lockstep_groups(
    strips: &[ResolvedStrip],
    groups: &mut [LaneMemory],
) -> StripRun {
    // Interpreter-only entry point: every step counts as interpreted
    // and the scratch coefficient-stream cache stays empty.
    crate::kernels::run_lockstep_groups_kernelized(
        strips,
        &[],
        &mut crate::kernels::CoeffStreams::new(),
        groups,
    )
}

/// [`run_resolved_strip_lockstep`] monomorphized for `N` lanes
/// (`N = 0` means the lane count is only known at run time).
fn run_resolved_strip_lockstep_n<const N: usize>(
    strip: &ResolvedStrip,
    lanes: &mut LaneMemory,
) -> StripRun {
    let mut fpu = LaneFpu::new(lanes.nodes());
    let mut run = StripRun::default();

    for part in &strip.prologue {
        exec_lockstep::<N>(part.op, part.addr, lanes, &mut fpu, &mut run);
    }

    let period = strip.body.len();
    for line in 0..strip.lines {
        let pattern = &strip.body[line % period];
        let k = (line / period) as i64;
        for part in pattern {
            let addr = (part.addr as i64 + k * part.delta) as usize;
            exec_lockstep::<N>(part.op, addr, lanes, &mut fpu, &mut run);
        }
    }
    run
}

/// `out[i] = x[i] * d[i] + a[i]` over one lane row, with the row width
/// a compile-time constant when `N > 0`.
#[inline(always)]
fn lane_mac_start<const N: usize>(out: &mut [f32], x: &[f32], d: &[f32], a: &[f32]) {
    if N == 0 {
        for (((c, &x), &d), &a) in out.iter_mut().zip(x).zip(d).zip(a) {
            *c = x * d + a;
        }
    } else {
        let out: &mut [f32; N] = out.try_into().expect("lane rows are N wide");
        let x: &[f32; N] = x.try_into().expect("lane rows are N wide");
        let d: &[f32; N] = d.try_into().expect("lane rows are N wide");
        let a: &[f32; N] = a.try_into().expect("lane rows are N wide");
        for i in 0..N {
            out[i] = x[i] * d[i] + a[i];
        }
    }
}

/// `out[i] += x[i] * d[i]` over one lane row, with the row width a
/// compile-time constant when `N > 0`.
#[inline(always)]
fn lane_mac_chain<const N: usize>(out: &mut [f32], x: &[f32], d: &[f32]) {
    if N == 0 {
        for ((c, &x), &d) in out.iter_mut().zip(x).zip(d) {
            *c += x * d;
        }
    } else {
        let out: &mut [f32; N] = out.try_into().expect("lane rows are N wide");
        let x: &[f32; N] = x.try_into().expect("lane rows are N wide");
        let d: &[f32; N] = d.try_into().expect("lane rows are N wide");
        for i in 0..N {
            out[i] += x[i] * d[i];
        }
    }
}

/// One broadcast step: the scalar fast-mode operation applied to every
/// lane. The per-lane loops run over contiguous equal-length rows, the
/// shape LLVM autovectorizes.
#[inline(always)]
pub(crate) fn exec_lockstep<const N: usize>(
    op: ResolvedOp,
    addr: usize,
    lanes: &mut LaneMemory,
    fpu: &mut LaneFpu,
    run: &mut StripRun,
) {
    let n = fpu.nodes;
    match op {
        ResolvedOp::Mac { data, acc, dest } => {
            let thread = (fpu.mac_count % 2) as usize;
            fpu.mac_count += 1;
            {
                let coeff = lanes.word(addr);
                let data_row = &fpu.regs[data.0 as usize * n..(data.0 as usize + 1) * n];
                let chain = &mut fpu.chain[thread * n..(thread + 1) * n];
                match acc {
                    MacAcc::Start(reg) => {
                        let addend = &fpu.regs[reg.0 as usize * n..(reg.0 as usize + 1) * n];
                        lane_mac_start::<N>(chain, coeff, data_row, addend);
                    }
                    MacAcc::Chain => {
                        lane_mac_chain::<N>(chain, coeff, data_row);
                    }
                }
            }
            if let Some(dest) = dest {
                let (regs, chain) = (&mut fpu.regs, &fpu.chain);
                regs[dest.0 as usize * n..(dest.0 as usize + 1) * n]
                    .copy_from_slice(&chain[thread * n..(thread + 1) * n]);
            }
            run.macs += 1;
        }
        ResolvedOp::Load { dest } => {
            fpu.regs[dest.0 as usize * n..(dest.0 as usize + 1) * n]
                .copy_from_slice(lanes.word(addr));
            run.loads += 1;
        }
        ResolvedOp::Store { src } => {
            lanes.word_mut(addr).copy_from_slice(fpu.reg_row(src));
            run.stores += 1;
        }
        ResolvedOp::Nop => {
            run.nops += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::StaticPart;

    fn cfg() -> MachineConfig {
        MachineConfig::test_board_16()
    }

    /// A 1-wide kernel computing `r = c * x` for a single-tap stencil.
    fn identity_kernel() -> Kernel {
        Kernel {
            static_part: StaticPart::ChainedMac,
            width: 1,
            row_step: -1,
            prologue: vec![],
            body: vec![vec![
                DynamicPart::Load {
                    src: MemRef::Source {
                        array: 0,
                        drow: 0,
                        dcol: 0,
                    },
                    dest: Reg(2),
                },
                DynamicPart::Nop,
                DynamicPart::Nop,
                // Real thread.
                DynamicPart::Mac {
                    coeff: MemRef::Coeff { array: 0, col: 0 },
                    data: Reg(2),
                    acc: MacAcc::Start(Reg::ZERO),
                    dest: Some(Reg(3)),
                },
                // Dummy partner thread.
                DynamicPart::Mac {
                    coeff: MemRef::Zeros,
                    data: Reg::ZERO,
                    acc: MacAcc::Start(Reg::ZERO),
                    dest: Some(Reg::ZERO),
                },
                DynamicPart::Nop,
                DynamicPart::Nop,
                DynamicPart::Nop,
                DynamicPart::Nop,
                DynamicPart::Store {
                    src: Reg(3),
                    dest: MemRef::Result { col: 0 },
                },
            ]],
            useful_flops_per_line: 1,
        }
    }

    /// Memory map: [src 4x4 | res 4x4 | coeff 4x4 | ones | zeros].
    fn setup() -> (NodeMemory, [FieldLayout; 3], usize, usize) {
        let mut mem = NodeMemory::new(64);
        let src = FieldLayout {
            base: 0,
            row_stride: 4,
            row_offset: 0,
            col_offset: 0,
        };
        let res = FieldLayout { base: 16, ..src };
        let coeff = FieldLayout { base: 32, ..src };
        for i in 0..16 {
            mem.write(i, i as f32 + 1.0); // src = 1..16
            mem.write(32 + i, 2.0); // coeff = 2.0
        }
        mem.write(48, 1.0); // ones
        mem.write(49, 0.0); // zeros
        (mem, [src, res, coeff], 48, 49)
    }

    fn run(mode: ExecMode) -> (NodeMemory, StripRun) {
        let (mut mem, [src, res, coeff], ones, zeros) = setup();
        let kernel = identity_kernel();
        let coeffs = [coeff];
        let srcs = [src];
        let ctx = StripContext {
            srcs: &srcs,
            res,
            coeffs: &coeffs,
            ones_addr: ones,
            zeros_addr: zeros,
            start_row: 3,
            lines: 4,
            col0: 1,
        };
        let r = run_strip(&kernel, &ctx, &mut mem, &cfg(), mode).unwrap();
        (mem, r)
    }

    #[test]
    fn cycle_mode_computes_column_of_products() {
        let (mem, run) = run(ExecMode::Cycle);
        // Column 1 of src is [2, 6, 10, 14]; coeff 2.0 doubles it.
        // Lines walk north from row 3 to row 0.
        for row in 0..4 {
            let got = mem.read(16 + row * 4 + 1);
            let want = 2.0 * (row as f32 * 4.0 + 2.0);
            assert_eq!(got, want, "row {row}");
        }
        assert_eq!(run.macs, 8);
        assert_eq!(run.loads, 4);
        assert_eq!(run.stores, 4);
        assert!(run.cycles > 40, "startup must be included: {}", run.cycles);
    }

    #[test]
    fn fast_mode_matches_cycle_mode() {
        let (mem_c, _) = run(ExecMode::Cycle);
        let (mem_f, run_f) = run(ExecMode::Fast);
        assert_eq!(mem_c, mem_f);
        assert_eq!(run_f.cycles, 0);
    }

    #[test]
    fn reversal_penalties_are_counted() {
        let (_, run) = run(ExecMode::Cycle);
        // Each line: loads/macs (ToFpu) then store (ToMem): one reversal
        // into the store and one back at the next line's load.
        assert_eq!(run.reversals, 7);
    }

    #[test]
    fn hazard_read_during_writeback_window_is_reported() {
        let kernel = Kernel {
            static_part: StaticPart::ChainedMac,
            width: 1,
            row_step: -1,
            prologue: vec![],
            body: vec![vec![
                DynamicPart::Mac {
                    coeff: MemRef::Coeff { array: 0, col: 0 },
                    data: Reg::ONE,
                    acc: MacAcc::Start(Reg::ZERO),
                    dest: Some(Reg(3)),
                },
                // Store issued immediately: reads r3 inside its writeback
                // window (commit 4 cycles after the MAC).
                DynamicPart::Store {
                    src: Reg(3),
                    dest: MemRef::Result { col: 0 },
                },
            ]],
            useful_flops_per_line: 1,
        };
        let (mut mem, [src, res, coeff], ones, zeros) = setup();
        let coeffs = [coeff];
        let srcs = [src];
        let ctx = StripContext {
            srcs: &srcs,
            res,
            coeffs: &coeffs,
            ones_addr: ones,
            zeros_addr: zeros,
            start_row: 0,
            lines: 1,
            col0: 0,
        };
        // Pin issue costs so the back-to-back store really falls inside
        // the 4-cycle writeback window.
        let mut tight = cfg();
        tight.mac_issue_cycles = 1;
        tight.pipe_reversal_penalty = 0;
        let err = run_strip(&kernel, &ctx, &mut mem, &tight, ExecMode::Cycle).unwrap_err();
        assert_eq!(err.reg, Reg(3));
        assert!(err.commit_cycle > err.at_cycle);
        assert!(err.to_string().contains("hazard"));
    }

    #[test]
    fn benign_zero_register_writes_are_not_hazards() {
        // Two back-to-back dummy MACs both write 0.0 into r0 and read r0;
        // the value never changes, so no hazard is raised.
        let kernel = Kernel {
            static_part: StaticPart::ChainedMac,
            width: 1,
            row_step: -1,
            prologue: vec![],
            body: vec![vec![
                DynamicPart::Mac {
                    coeff: MemRef::Zeros,
                    data: Reg::ZERO,
                    acc: MacAcc::Start(Reg::ZERO),
                    dest: Some(Reg::ZERO),
                },
                DynamicPart::Mac {
                    coeff: MemRef::Zeros,
                    data: Reg::ZERO,
                    acc: MacAcc::Start(Reg::ZERO),
                    dest: Some(Reg::ZERO),
                },
            ]],
            useful_flops_per_line: 0,
        };
        let (mut mem, [src, res, coeff], ones, zeros) = setup();
        let coeffs = [coeff];
        let srcs = [src];
        let ctx = StripContext {
            srcs: &srcs,
            res,
            coeffs: &coeffs,
            ones_addr: ones,
            zeros_addr: zeros,
            start_row: 0,
            lines: 1,
            col0: 0,
        };
        run_strip(&kernel, &ctx, &mut mem, &cfg(), ExecMode::Cycle).unwrap();
    }

    #[test]
    fn field_layout_applies_halo_offsets() {
        let f = FieldLayout {
            base: 100,
            row_stride: 10,
            row_offset: 2,
            col_offset: 3,
        };
        // Logical (-2, -3) is the buffer's first word.
        assert_eq!(f.addr(-2, -3), 100);
        assert_eq!(f.addr(0, 0), 100 + 2 * 10 + 3);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn field_layout_rejects_out_of_halo_access() {
        let f = FieldLayout {
            base: 0,
            row_stride: 10,
            row_offset: 1,
            col_offset: 1,
        };
        let _ = f.addr(-2, 0);
    }

    /// A 2-line-period kernel (alternating result columns) to exercise
    /// the pattern-cycling and per-period address delta in resolved form.
    fn two_period_kernel() -> Kernel {
        Kernel {
            static_part: StaticPart::ChainedMac,
            width: 1,
            row_step: -1,
            prologue: vec![DynamicPart::Load {
                src: MemRef::Source {
                    array: 0,
                    drow: 0,
                    dcol: 0,
                },
                dest: Reg(2),
            }],
            body: vec![
                vec![
                    DynamicPart::Nop,
                    DynamicPart::Nop,
                    DynamicPart::Nop,
                    DynamicPart::Mac {
                        coeff: MemRef::Coeff { array: 0, col: 0 },
                        data: Reg(2),
                        acc: MacAcc::Start(Reg::ZERO),
                        dest: Some(Reg(3)),
                    },
                    DynamicPart::Nop,
                    DynamicPart::Nop,
                    DynamicPart::Nop,
                    DynamicPart::Nop,
                    DynamicPart::Store {
                        src: Reg(3),
                        dest: MemRef::Result { col: 0 },
                    },
                ],
                vec![
                    DynamicPart::Load {
                        src: MemRef::Source {
                            array: 0,
                            drow: 1,
                            dcol: 0,
                        },
                        dest: Reg(2),
                    },
                    DynamicPart::Nop,
                    DynamicPart::Nop,
                    DynamicPart::Mac {
                        coeff: MemRef::Coeff { array: 0, col: 0 },
                        data: Reg(2),
                        acc: MacAcc::Start(Reg::ZERO),
                        dest: Some(Reg(4)),
                    },
                    DynamicPart::Nop,
                    DynamicPart::Nop,
                    DynamicPart::Nop,
                    DynamicPart::Nop,
                    DynamicPart::Store {
                        src: Reg(4),
                        dest: MemRef::Result { col: 0 },
                    },
                ],
            ],
            useful_flops_per_line: 1,
        }
    }

    fn differential(kernel: &Kernel, ctx: &StripContext<'_>, mode: ExecMode) {
        let (legacy_mem, _, _, _) = setup();
        let mut legacy_mem = legacy_mem;
        let mut resolved_mem = legacy_mem.clone();
        let legacy = run_strip(kernel, ctx, &mut legacy_mem, &cfg(), mode).unwrap();
        let strip = ResolvedStrip::new(kernel, ctx);
        let resolved = run_resolved_strip(&strip, &mut resolved_mem, &cfg(), mode).unwrap();
        assert_eq!(legacy, resolved, "StripRun counters must match");
        assert_eq!(legacy_mem, resolved_mem, "memory must match bitwise");
    }

    #[test]
    fn resolved_strip_matches_legacy_interpreter() {
        let kernel = identity_kernel();
        let (_, [src, res, coeff], ones, zeros) = setup();
        let coeffs = [coeff];
        let srcs = [src];
        for (start_row, lines) in [(3i64, 4usize), (1, 2), (0, 1)] {
            let ctx = StripContext {
                srcs: &srcs,
                res,
                coeffs: &coeffs,
                ones_addr: ones,
                zeros_addr: zeros,
                start_row,
                lines,
                col0: 1,
            };
            differential(&kernel, &ctx, ExecMode::Cycle);
            differential(&kernel, &ctx, ExecMode::Fast);
        }
    }

    #[test]
    fn resolved_strip_cycles_multi_line_patterns() {
        let kernel = two_period_kernel();
        let (_, [src, res, coeff], ones, zeros) = setup();
        let coeffs = [coeff];
        let srcs = [src];
        // lines > period exercises the per-period delta; lines < period
        // exercises pattern truncation (pattern 1 would address row -1
        // relative to start and must not be resolved).
        for (start_row, lines) in [(3i64, 4usize), (3, 3), (0, 1)] {
            let ctx = StripContext {
                srcs: &srcs,
                res,
                coeffs: &coeffs,
                ones_addr: ones,
                zeros_addr: zeros,
                start_row,
                lines,
                col0: 1,
            };
            differential(&kernel, &ctx, ExecMode::Cycle);
            differential(&kernel, &ctx, ExecMode::Fast);
        }
    }

    #[test]
    fn resolved_strip_rebases_result_and_coeffs() {
        let kernel = identity_kernel();
        let (mut mem, [src, res, coeff], ones, zeros) = setup();
        let coeffs = [coeff];
        let srcs = [src];
        let ctx = StripContext {
            srcs: &srcs,
            res,
            coeffs: &coeffs,
            ones_addr: ones,
            zeros_addr: zeros,
            start_row: 3,
            lines: 4,
            col0: 1,
        };
        // Build at one binding, rebase to another: result moved from 16
        // to 52, coefficients unmoved.
        let mut strip = ResolvedStrip::new(&kernel, &ctx);
        strip.rebase(36, &[0]);
        let moved_res = FieldLayout { base: 52, ..res };
        let ctx_moved = StripContext {
            res: moved_res,
            ..ctx.clone()
        };
        let direct = ResolvedStrip::new(&kernel, &ctx_moved);
        assert_eq!(strip, direct);
        // And execution lands in the new result field. (Memory map in
        // `setup` is 64 words; 52..68 overflows, so use a bigger one.)
        let mut big = NodeMemory::new(80);
        for a in 0..64 {
            big.write(a, mem.read(a));
        }
        mem = big;
        run_resolved_strip(&strip, &mut mem, &cfg(), ExecMode::Fast).unwrap();
        for row in 0..4 {
            let want = 2.0 * (row as f32 * 4.0 + 2.0);
            assert_eq!(mem.read(52 + row * 4 + 1), want, "row {row}");
        }
    }

    #[test]
    fn resolved_strip_reports_steps() {
        let kernel = identity_kernel();
        let (_, [src, res, coeff], ones, zeros) = setup();
        let coeffs = [coeff];
        let srcs = [src];
        let ctx = StripContext {
            srcs: &srcs,
            res,
            coeffs: &coeffs,
            ones_addr: ones,
            zeros_addr: zeros,
            start_row: 3,
            lines: 4,
            col0: 1,
        };
        let strip = ResolvedStrip::new(&kernel, &ctx);
        assert_eq!(strip.lines(), 4);
        // identity_kernel: no prologue, 10 parts per line, 4 lines.
        assert_eq!(strip.steps(), 40);
    }

    #[test]
    fn interleaved_threads_accumulate_independently() {
        // Two interleaved 2-tap chains over the same data: thread 0
        // computes c*(x) + c*(x_east), thread 1 the same for the next
        // column. Each thread's partials must not mix.
        let kernel = Kernel {
            static_part: StaticPart::ChainedMac,
            width: 2,
            row_step: -1,
            prologue: vec![],
            body: vec![vec![
                DynamicPart::Load {
                    src: MemRef::Source {
                        array: 0,
                        drow: 0,
                        dcol: 0,
                    },
                    dest: Reg(2),
                },
                DynamicPart::Load {
                    src: MemRef::Source {
                        array: 0,
                        drow: 0,
                        dcol: 1,
                    },
                    dest: Reg(3),
                },
                DynamicPart::Load {
                    src: MemRef::Source {
                        array: 0,
                        drow: 0,
                        dcol: 2,
                    },
                    dest: Reg(4),
                },
                DynamicPart::Nop,
                DynamicPart::Nop,
                // thread 0 start: result col 0
                DynamicPart::Mac {
                    coeff: MemRef::Coeff { array: 0, col: 0 },
                    data: Reg(2),
                    acc: MacAcc::Start(Reg::ZERO),
                    dest: None,
                },
                // thread 1 start: result col 1
                DynamicPart::Mac {
                    coeff: MemRef::Coeff { array: 0, col: 1 },
                    data: Reg(3),
                    acc: MacAcc::Start(Reg::ZERO),
                    dest: None,
                },
                // thread 0 finish
                DynamicPart::Mac {
                    coeff: MemRef::Coeff { array: 1, col: 0 },
                    data: Reg(3),
                    acc: MacAcc::Chain,
                    dest: Some(Reg(2)),
                },
                // thread 1 finish
                DynamicPart::Mac {
                    coeff: MemRef::Coeff { array: 1, col: 1 },
                    data: Reg(4),
                    acc: MacAcc::Chain,
                    dest: Some(Reg(3)),
                },
                DynamicPart::Nop,
                DynamicPart::Nop,
                DynamicPart::Nop,
                DynamicPart::Store {
                    src: Reg(2),
                    dest: MemRef::Result { col: 0 },
                },
                DynamicPart::Store {
                    src: Reg(3),
                    dest: MemRef::Result { col: 1 },
                },
            ]],
            useful_flops_per_line: 6,
        };
        let (_, [src, res, _], _, _) = setup();
        // Fresh, larger memory: src 4x4 at 0, res at 16, coeff arrays of
        // 2.0 at 32 and 3.0 at 64, ones/zeros at 120/121.
        let c2 = FieldLayout {
            base: 32,
            row_stride: 4,
            row_offset: 0,
            col_offset: 0,
        };
        let mut mem = NodeMemory::new(128);
        for i in 0..16 {
            mem.write(i, (i + 1) as f32);
            mem.write(32 + i, 2.0);
            mem.write(64 + i, 3.0);
        }
        mem.write(120, 1.0);
        mem.write(121, 0.0);
        let c3 = FieldLayout { base: 64, ..c2 };
        let coeffs = [c2, c3];
        let srcs = [src];
        let ctx = StripContext {
            srcs: &srcs,
            res,
            coeffs: &coeffs,
            ones_addr: 120,
            zeros_addr: 121,
            start_row: 1,
            lines: 1,
            col0: 0,
        };
        run_strip(&kernel, &ctx, &mut mem, &cfg(), ExecMode::Cycle).unwrap();
        // Row 1 of src is [5, 6, 7]; result col0 = 2*5 + 3*6 = 28,
        // col1 = 2*6 + 3*7 = 33.
        assert_eq!(mem.read(16 + 4), 28.0);
        assert_eq!(mem.read(16 + 5), 33.0);
    }

    use crate::lane::{LaneMemory, LaneView};

    /// The lane view of `setup`'s memory map: src and coeff read-only,
    /// the result field writable, the constant pair read-only.
    fn setup_view() -> LaneView {
        LaneView::new(&[
            (0, 16, false),
            (16, 16, true),
            (32, 16, false),
            (48, 2, false),
        ])
        .unwrap()
    }

    /// Runs `kernel`/`ctx` on `node_count` nodes with per-node data, once
    /// through the scalar fast interpreter and once through translate +
    /// lockstep, and asserts memories and counters match exactly.
    fn lockstep_differential(kernel: &Kernel, ctx: &StripContext<'_>, node_count: usize) {
        let view = setup_view();
        let mut scalar_mems: Vec<NodeMemory> = (0..node_count)
            .map(|n| {
                let (mut mem, ..) = setup();
                // Perturb each node so lanes are distinguishable.
                for i in 0..16 {
                    mem.write(i, mem.read(i) + n as f32 * 100.0);
                }
                mem
            })
            .collect();
        let mut lane_mems = scalar_mems.clone();

        let strip = ResolvedStrip::new(kernel, ctx);
        let mut scalar_runs = Vec::new();
        for mem in &mut scalar_mems {
            scalar_runs.push(run_resolved_strip(&strip, mem, &cfg(), ExecMode::Fast).unwrap());
        }

        let lane_strip = strip
            .translate(&view)
            .expect("setup view covers the kernel");
        let mut lanes = LaneMemory::new(view.words(), node_count);
        lanes.gather(&view, &lane_mems);
        let lock_run = run_resolved_strip_lockstep(&lane_strip, &mut lanes);
        lanes.scatter(&view, &mut lane_mems);

        for (n, (s, l)) in scalar_mems.iter().zip(&lane_mems).enumerate() {
            assert_eq!(s, l, "node {n} memory diverged");
        }
        for (n, s) in scalar_runs.iter().enumerate() {
            assert_eq!(s, &lock_run, "node {n} counters diverged");
        }
        assert_eq!(lock_run.cycles, 0);
        assert_eq!(lock_run.reversals, 0);
    }

    #[test]
    fn lockstep_matches_scalar_fast() {
        let kernel = identity_kernel();
        let (_, [src, res, coeff], ones, zeros) = setup();
        let coeffs = [coeff];
        let srcs = [src];
        for (start_row, lines) in [(3i64, 4usize), (1, 2), (0, 1)] {
            let ctx = StripContext {
                srcs: &srcs,
                res,
                coeffs: &coeffs,
                ones_addr: ones,
                zeros_addr: zeros,
                start_row,
                lines,
                col0: 1,
            };
            for nodes in [1, 2, 5] {
                lockstep_differential(&kernel, &ctx, nodes);
            }
        }
    }

    #[test]
    fn lockstep_matches_scalar_on_multi_period_kernels() {
        let kernel = two_period_kernel();
        let (_, [src, res, coeff], ones, zeros) = setup();
        let coeffs = [coeff];
        let srcs = [src];
        for (start_row, lines) in [(3i64, 4usize), (3, 3), (0, 1)] {
            let ctx = StripContext {
                srcs: &srcs,
                res,
                coeffs: &coeffs,
                ones_addr: ones,
                zeros_addr: zeros,
                start_row,
                lines,
                col0: 1,
            };
            lockstep_differential(&kernel, &ctx, 3);
        }
    }

    /// The kernel-tier dispatcher splits `lockstep_steps` into
    /// `kernelized_steps` / `interpreted_steps` exactly along the
    /// compiled-vs-fallback boundary, and both paths stay bit-identical.
    #[test]
    fn kernel_tier_dispatch_splits_step_counters() {
        use crate::kernels::{CoeffStreams, StripKernels, OBS_TEST_LOCK};
        use cmcc_obs::Counter;

        let _guard = OBS_TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let was_on = cmcc_obs::enabled();
        cmcc_obs::set_enabled(true);

        let kernel = identity_kernel();
        let (_, [src, res, coeff], ones, zeros) = setup();
        let coeffs = [coeff];
        let srcs = [src];
        let ctx = StripContext {
            srcs: &srcs,
            res,
            coeffs: &coeffs,
            ones_addr: ones,
            zeros_addr: zeros,
            start_row: 3,
            lines: 4,
            col0: 1,
        };
        let view = setup_view();
        let strip = ResolvedStrip::new(&kernel, &ctx);
        let lane_strip = strip
            .translate(&view)
            .expect("setup view covers the kernel");
        let compiled =
            StripKernels::compile(&lane_strip).expect("identity kernel has a classifiable burst");
        let steps = lane_strip.steps();
        let node_count = 3;

        let node_mems: Vec<NodeMemory> = (0..node_count)
            .map(|n| {
                let (mut mem, ..) = setup();
                for i in 0..16 {
                    mem.write(i, mem.read(i) + n as f32 * 100.0);
                }
                mem
            })
            .collect();

        let strips = std::slice::from_ref(&lane_strip);
        let run_with = |kernels: &[Option<StripKernels>]| {
            let mut mems = node_mems.clone();
            let mut lanes = LaneMemory::new(view.words(), node_count);
            lanes.gather(&view, &mems);
            let before = cmcc_obs::snapshot();
            let run = crate::kernels::run_lockstep_groups_kernelized(
                strips,
                kernels,
                &mut CoeffStreams::new(),
                std::slice::from_mut(&mut lanes),
            );
            let delta = cmcc_obs::snapshot().delta(&before);
            lanes.scatter(&view, &mut mems);
            (mems, run, delta)
        };

        let (kern_mems, kern_run, kern_delta) = run_with(&[Some(compiled)]);
        let (int_mems, int_run, int_delta) = run_with(&[None]);
        cmcc_obs::set_enabled(was_on);

        assert_eq!(kern_mems, int_mems, "kernel tier diverged from fallback");
        assert_eq!(kern_run, int_run);
        assert_eq!(kern_delta.get(Counter::KernelizedSteps), steps);
        assert_eq!(kern_delta.get(Counter::InterpretedSteps), 0);
        assert_eq!(int_delta.get(Counter::KernelizedSteps), 0);
        assert_eq!(int_delta.get(Counter::InterpretedSteps), steps);
        assert_eq!(kern_delta.get(Counter::LockstepSteps), steps);
        assert_eq!(int_delta.get(Counter::LockstepSteps), steps);
    }

    #[test]
    fn translate_rejects_stores_outside_writable_ranges() {
        let kernel = identity_kernel();
        let (_, [src, res, coeff], ones, zeros) = setup();
        let coeffs = [coeff];
        let srcs = [src];
        let ctx = StripContext {
            srcs: &srcs,
            res,
            coeffs: &coeffs,
            ones_addr: ones,
            zeros_addr: zeros,
            start_row: 3,
            lines: 4,
            col0: 1,
        };
        let strip = ResolvedStrip::new(&kernel, &ctx);
        // Same map, result range read-only: the kernel's stores must fail.
        let readonly = LaneView::new(&[
            (0, 16, false),
            (16, 16, false),
            (32, 16, false),
            (48, 2, false),
        ])
        .unwrap();
        assert!(strip.translate(&readonly).is_none());
        // Coefficients outside the view: loads of them must fail.
        let partial = LaneView::new(&[(0, 16, false), (16, 16, true), (48, 2, false)]).unwrap();
        assert!(strip.translate(&partial).is_none());
    }

    #[test]
    fn translate_rejects_walks_that_leave_a_range() {
        let kernel = identity_kernel();
        let (_, [src, res, coeff], ones, zeros) = setup();
        let coeffs = [coeff];
        let srcs = [src];
        let ctx = StripContext {
            srcs: &srcs,
            res,
            coeffs: &coeffs,
            ones_addr: ones,
            zeros_addr: zeros,
            start_row: 3,
            lines: 4,
            col0: 1,
        };
        let strip = ResolvedStrip::new(&kernel, &ctx);
        // Truncate the source range to its last row: line 0 (row 3)
        // resolves inside it, but the walk north exits the range.
        let truncated = LaneView::new(&[
            (12, 4, false),
            (16, 16, true),
            (32, 16, false),
            (48, 2, false),
        ])
        .unwrap();
        assert!(strip.translate(&truncated).is_none());
    }

    #[test]
    fn translate_splits_walks_at_range_seams() {
        let kernel = identity_kernel();
        let (_, [src, res, coeff], ones, zeros) = setup();
        let coeffs = [coeff];
        let srcs = [src];
        let ctx = StripContext {
            srcs: &srcs,
            res,
            coeffs: &coeffs,
            ones_addr: ones,
            zeros_addr: zeros,
            start_row: 3,
            lines: 4,
            col0: 1,
        };
        let strip = ResolvedStrip::new(&kernel, &ctx);
        // The result field split into two adjacent writable ranges: the
        // store walk crosses the seam at 24, so the walk-carrying
        // translation fails, but every individual store lands in a valid
        // writable range — the seam-splitting fallback must lane-map it.
        let split = LaneView::new(&[
            (0, 16, false),
            (16, 8, true),
            (24, 8, true),
            (32, 16, false),
            (48, 2, false),
        ])
        .unwrap();
        let lane_strip = strip
            .translate(&split)
            .expect("seam-crossing walks unroll instead of rejecting");

        // Differential against the scalar fast interpreter, as in
        // `lockstep_differential` but over the split view.
        let node_count = 3;
        let mut scalar_mems: Vec<NodeMemory> = (0..node_count)
            .map(|n| {
                let (mut mem, ..) = setup();
                for i in 0..16 {
                    mem.write(i, mem.read(i) + n as f32 * 100.0);
                }
                mem
            })
            .collect();
        let mut lane_mems = scalar_mems.clone();
        let mut scalar_runs = Vec::new();
        for mem in &mut scalar_mems {
            scalar_runs.push(run_resolved_strip(&strip, mem, &cfg(), ExecMode::Fast).unwrap());
        }
        let mut lanes = LaneMemory::new(split.words(), node_count);
        lanes.gather(&split, &lane_mems);
        let lock_run = run_resolved_strip_lockstep(&lane_strip, &mut lanes);
        lanes.scatter(&split, &mut lane_mems);
        for (n, (s, l)) in scalar_mems.iter().zip(&lane_mems).enumerate() {
            assert_eq!(s, l, "node {n} memory diverged across the seam");
        }
        for s in &scalar_runs {
            assert_eq!(s, &lock_run, "counters diverged across the seam");
        }
    }

    #[test]
    fn lockstep_groups_match_a_single_mirror() {
        let kernel = identity_kernel();
        let (_, [src, res, coeff], ones, zeros) = setup();
        let coeffs = [coeff];
        let srcs = [src];
        let ctx = StripContext {
            srcs: &srcs,
            res,
            coeffs: &coeffs,
            ones_addr: ones,
            zeros_addr: zeros,
            start_row: 3,
            lines: 4,
            col0: 1,
        };
        let view = setup_view();
        let strip = ResolvedStrip::new(&kernel, &ctx);
        let lane_strips = vec![strip.translate(&view).unwrap()];
        let mems: Vec<NodeMemory> = (0..5)
            .map(|n| {
                let (mut mem, ..) = setup();
                for i in 0..16 {
                    mem.write(i, mem.read(i) + n as f32 * 10.0);
                }
                mem
            })
            .collect();

        // One group over all nodes…
        let mut single = mems.clone();
        let mut lanes = LaneMemory::new(view.words(), 5);
        lanes.gather(&view, &single);
        let run_single =
            run_resolved_lockstep_groups(&lane_strips, std::slice::from_mut(&mut lanes));
        lanes.scatter(&view, &mut single);

        // …versus a 2-group partition (chunks of 3 and 2) fanned out.
        let mut split = mems.clone();
        let mut mirror = crate::lane::LaneMirror::new();
        mirror.ensure(view.words(), 5, 2);
        mirror.gather(&view, &split);
        let run_split = run_resolved_lockstep_groups(&lane_strips, mirror.groups_mut());
        mirror.scatter(&view, &mut split);

        assert_eq!(run_single, run_split);
        assert_eq!(single, split);
    }
}
