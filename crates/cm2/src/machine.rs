//! The simulated machine: a SIMD array of nodes plus the shared field
//! allocator and the node grid.

use crate::config::MachineConfig;
use crate::exec::{run_strip, ExecMode, HazardError, StripContext, StripRun};
use crate::grid::{NodeGrid, NodeId};
use crate::isa::Kernel;
use crate::memory::{Field, FieldAllocator, NodeMemory, OutOfMemory};

/// A simulated CM-2: `rows × cols` nodes, each with its own memory,
/// executing identical instruction streams (SIMD).
///
/// # Examples
///
/// ```
/// use cmcc_cm2::config::MachineConfig;
/// use cmcc_cm2::machine::Machine;
///
/// let mut machine = Machine::new(MachineConfig::tiny_4())?;
/// let field = machine.alloc_field(64)?;
/// machine.mem_mut(cmcc_cm2::grid::NodeId(0)).fill_field(field, 3.0);
/// assert_eq!(machine.mem(cmcc_cm2::grid::NodeId(0)).field(field)[0], 3.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct Machine {
    config: MachineConfig,
    grid: NodeGrid,
    nodes: Vec<NodeMemory>,
    allocator: FieldAllocator,
}

impl Machine {
    /// Builds a machine from a configuration.
    ///
    /// # Errors
    ///
    /// Returns the configuration's own validation message if it is
    /// inconsistent.
    pub fn new(config: MachineConfig) -> Result<Self, String> {
        config.validate()?;
        let grid = NodeGrid::new(config.grid_rows, config.grid_cols);
        let nodes = (0..grid.len())
            .map(|_| NodeMemory::new(config.node_memory_words))
            .collect();
        let allocator = FieldAllocator::new(config.node_memory_words);
        Ok(Machine {
            config,
            grid,
            nodes,
            allocator,
        })
    }

    /// The machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// The node grid.
    pub fn grid(&self) -> NodeGrid {
        self.grid
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.grid.len()
    }

    /// Allocates a field of `len` words on every node (SIMD addressing:
    /// the same addresses are valid machine-wide).
    ///
    /// # Errors
    ///
    /// Returns [`OutOfMemory`] when node memory is exhausted.
    pub fn alloc_field(&mut self, len: usize) -> Result<Field, OutOfMemory> {
        self.allocator.alloc(len)
    }

    /// Checkpoint for LIFO release of temporary fields.
    pub fn alloc_mark(&self) -> usize {
        self.allocator.mark()
    }

    /// Releases all fields allocated after `mark` (on every node).
    pub fn release_to(&mut self, mark: usize) {
        self.allocator.release_to(mark);
    }

    /// One node's memory.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn mem(&self, id: NodeId) -> &NodeMemory {
        &self.nodes[id.0]
    }

    /// One node's memory, mutably.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn mem_mut(&mut self, id: NodeId) -> &mut NodeMemory {
        &mut self.nodes[id.0]
    }

    /// Two distinct nodes' memories, mutably (for exchanges).
    ///
    /// # Panics
    ///
    /// Panics if the ids are equal or out of range.
    pub fn mem_pair_mut(&mut self, a: NodeId, b: NodeId) -> (&mut NodeMemory, &mut NodeMemory) {
        assert_ne!(a, b, "mem_pair_mut requires distinct nodes");
        if a.0 < b.0 {
            let (lo, hi) = self.nodes.split_at_mut(b.0);
            (&mut lo[a.0], &mut hi[0])
        } else {
            let (lo, hi) = self.nodes.split_at_mut(a.0);
            (&mut hi[0], &mut lo[b.0])
        }
    }

    /// Copies `len` words from `src_addr` on node `src` to `dst_addr` on
    /// node `dst`. This is the data-movement half of a grid exchange; the
    /// caller separately charges the cycle cost from [`crate::news`].
    ///
    /// # Panics
    ///
    /// Panics on out-of-range nodes or addresses.
    pub fn copy_region(
        &mut self,
        src: NodeId,
        src_addr: usize,
        dst: NodeId,
        dst_addr: usize,
        len: usize,
    ) {
        if src == dst {
            self.mem_mut(src).copy_within(src_addr, dst_addr, len);
            return;
        }
        let (s, d) = self.mem_pair_mut(src, dst);
        d.copy_from(dst_addr, s.slice(src_addr, len));
    }

    /// Executes `kernel` over the half-strip `ctx` on **every** node
    /// (SIMD), returning the per-node cycle/operation counts — identical
    /// across nodes because the instruction stream is identical.
    ///
    /// In [`ExecMode::Cycle`] every node runs the full pipeline model, so
    /// hazards are detected against real data on all nodes.
    ///
    /// # Errors
    ///
    /// Returns [`HazardError`] if the kernel is miscompiled (cycle mode).
    pub fn run_strip_all(
        &mut self,
        kernel: &Kernel,
        ctx: &StripContext<'_>,
        mode: ExecMode,
    ) -> Result<StripRun, HazardError> {
        let mut result = None;
        for mem in &mut self.nodes {
            let run = run_strip(kernel, ctx, mem, &self.config, mode)?;
            if let Some(prev) = &result {
                debug_assert_eq!(prev, &run, "SIMD nodes must agree on cycle counts");
            }
            result = Some(run);
        }
        Ok(result.expect("machine has at least one node"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::Direction;

    fn machine() -> Machine {
        Machine::new(MachineConfig::tiny_4()).unwrap()
    }

    #[test]
    fn construction_matches_config() {
        let m = machine();
        assert_eq!(m.node_count(), 4);
        assert_eq!(m.grid().rows(), 2);
    }

    #[test]
    fn invalid_config_is_rejected() {
        let mut cfg = MachineConfig::tiny_4();
        cfg.grid_cols = 0;
        assert!(Machine::new(cfg).is_err());
    }

    #[test]
    fn fields_are_shared_addresses_private_data() {
        let mut m = machine();
        let f = m.alloc_field(8).unwrap();
        let n0 = m.grid().id(0, 0);
        let n1 = m.grid().id(0, 1);
        m.mem_mut(n0).fill_field(f, 1.0);
        m.mem_mut(n1).fill_field(f, 2.0);
        assert_eq!(m.mem(n0).field(f)[0], 1.0);
        assert_eq!(m.mem(n1).field(f)[0], 2.0);
    }

    #[test]
    fn copy_region_moves_between_nodes() {
        let mut m = machine();
        let f = m.alloc_field(4).unwrap();
        let a = m.grid().id(0, 0);
        let b = m.grid().neighbor(a, Direction::East);
        m.mem_mut(a).fill_field(f, 5.0);
        m.copy_region(a, f.base(), b, f.base(), 4);
        assert_eq!(m.mem(b).field(f), &[5.0; 4]);
    }

    #[test]
    fn copy_region_within_one_node() {
        let mut m = machine();
        let f = m.alloc_field(8).unwrap();
        let a = m.grid().id(1, 1);
        m.mem_mut(a).write(f.addr(0), 9.0);
        m.copy_region(a, f.base(), a, f.base() + 4, 2);
        assert_eq!(m.mem(a).read(f.base() + 4), 9.0);
    }

    #[test]
    fn mem_pair_mut_orders_do_not_matter() {
        let mut m = machine();
        let f = m.alloc_field(1).unwrap();
        let a = m.grid().id(0, 0);
        let b = m.grid().id(1, 1);
        {
            let (ma, mb) = m.mem_pair_mut(a, b);
            ma.write(f.base(), 1.0);
            mb.write(f.base(), 2.0);
        }
        {
            let (mb2, ma2) = m.mem_pair_mut(b, a);
            assert_eq!(mb2.read(f.base()), 2.0);
            assert_eq!(ma2.read(f.base()), 1.0);
        }
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn mem_pair_mut_same_node_panics() {
        let mut m = machine();
        let a = m.grid().id(0, 0);
        let _ = m.mem_pair_mut(a, a);
    }

    #[test]
    fn release_to_reclaims_temporaries() {
        let mut m = machine();
        let _persistent = m.alloc_field(16).unwrap();
        let mark = m.alloc_mark();
        let t1 = m.alloc_field(100).unwrap();
        m.release_to(mark);
        let t2 = m.alloc_field(10).unwrap();
        assert_eq!(t1.base(), t2.base());
    }
}
