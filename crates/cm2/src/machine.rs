//! The simulated machine: a SIMD array of nodes plus the shared field
//! allocator and the node grid.
//!
//! # Parallel execution
//!
//! The real CM-2 runs every node *simultaneously*; this simulator can
//! too. Per-node state lives in disjoint [`NodeMemory`] values, so the
//! borrow checker proves that node executions cannot alias:
//! [`Machine::par_nodes_mut`] yields every node's memory exactly once,
//! [`Machine::node_slices_mut`] partitions the nodes into contiguous
//! disjoint slices for worker threads, and
//! [`Machine::run_schedule_all`] fans a whole strip schedule out across
//! host threads — one SIMD instruction stream, many cores. The kernel,
//! strip contexts, and machine configuration are plain shared data
//! (`Send + Sync`), so no locks are needed and results are bit-identical
//! to the serial path by construction.

use crate::config::MachineConfig;
use crate::exec::{
    run_resolved_lockstep_groups, run_resolved_strip, run_strip, ExecMode, HazardError,
    ResolvedStrip, ScheduleStep, StripContext, StripRun,
};
use crate::grid::{NodeGrid, NodeId};
use crate::isa::Kernel;
use crate::kernels::{run_lockstep_groups_kernelized, CoeffStreams, StripKernels};
use crate::lane::{LaneMirror, LaneView};
use crate::memory::{Field, FieldAllocator, NodeMemory, OutOfMemory};

/// A simulated CM-2: `rows × cols` nodes, each with its own memory,
/// executing identical instruction streams (SIMD).
///
/// # Examples
///
/// ```
/// use cmcc_cm2::config::MachineConfig;
/// use cmcc_cm2::machine::Machine;
///
/// let mut machine = Machine::new(MachineConfig::tiny_4())?;
/// let field = machine.alloc_field(64)?;
/// machine.mem_mut(cmcc_cm2::grid::NodeId(0)).fill_field(field, 3.0);
/// assert_eq!(machine.mem(cmcc_cm2::grid::NodeId(0)).field(field)[0], 3.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct Machine {
    config: MachineConfig,
    grid: NodeGrid,
    nodes: Vec<NodeMemory>,
    allocator: FieldAllocator,
    /// Generation counter bumped by every host-initiated write to node
    /// memory (array scatter/fill). Resident execution plans compare it
    /// against the generation they last synchronized their lane mirror
    /// at, so a host write between executes invalidates the snapshot.
    host_writes: u64,
}

impl Machine {
    /// Builds a machine from a configuration.
    ///
    /// # Errors
    ///
    /// Returns the configuration's own validation message if it is
    /// inconsistent.
    pub fn new(config: MachineConfig) -> Result<Self, String> {
        config.validate()?;
        let grid = NodeGrid::new(config.grid_rows, config.grid_cols);
        let nodes = (0..grid.len())
            .map(|_| NodeMemory::new(config.node_memory_words))
            .collect();
        let allocator = FieldAllocator::new(config.node_memory_words);
        Ok(Machine {
            config,
            grid,
            nodes,
            allocator,
            host_writes: 0,
        })
    }

    /// Records one host-initiated write to node memory. Called by the
    /// host-side array API (scatter/fill); engine-internal stores (halo
    /// copies, mirror scatter) do not count — they are part of plan
    /// execution, not external mutation.
    pub fn note_host_write(&mut self) {
        self.host_writes += 1;
    }

    /// The host-write generation (see [`Machine::note_host_write`]).
    /// Two equal readings bracket a span with no external mutation of
    /// node memory.
    pub fn host_writes(&self) -> u64 {
        self.host_writes
    }

    /// The machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// The node grid.
    pub fn grid(&self) -> NodeGrid {
        self.grid
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.grid.len()
    }

    /// Allocates a field of `len` words on every node (SIMD addressing:
    /// the same addresses are valid machine-wide).
    ///
    /// # Errors
    ///
    /// Returns [`OutOfMemory`] when node memory is exhausted.
    pub fn alloc_field(&mut self, len: usize) -> Result<Field, OutOfMemory> {
        self.allocator.alloc(len)
    }

    /// Allocates a plan-lifetime field on every node from the persistent
    /// arena at the top of memory. Unlike [`Machine::alloc_field`], the
    /// allocation survives [`Machine::release_to`] and must be returned
    /// with [`Machine::free_field_persistent`].
    ///
    /// # Errors
    ///
    /// Returns [`OutOfMemory`] when node memory is exhausted.
    pub fn alloc_field_persistent(&mut self, len: usize) -> Result<Field, OutOfMemory> {
        self.allocator.alloc_persistent(len)
    }

    /// Returns a persistent field to the arena.
    ///
    /// # Panics
    ///
    /// Panics if `field` was not allocated with
    /// [`Machine::alloc_field_persistent`].
    pub fn free_field_persistent(&mut self, field: Field) {
        self.allocator.free_persistent(field);
    }

    /// Total successful field allocations so far (temporary and
    /// persistent). Subtract two readings to assert a code path performs
    /// no allocations.
    pub fn alloc_count(&self) -> u64 {
        self.allocator.alloc_count()
    }

    /// Words currently held by the persistent arena (per node).
    pub fn persistent_used(&self) -> usize {
        self.allocator.persistent_used()
    }

    /// Checkpoint for LIFO release of temporary fields.
    pub fn alloc_mark(&self) -> usize {
        self.allocator.mark()
    }

    /// Releases all fields allocated after `mark` (on every node).
    pub fn release_to(&mut self, mark: usize) {
        self.allocator.release_to(mark);
    }

    /// One node's memory.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn mem(&self, id: NodeId) -> &NodeMemory {
        &self.nodes[id.0]
    }

    /// One node's memory, mutably.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn mem_mut(&mut self, id: NodeId) -> &mut NodeMemory {
        &mut self.nodes[id.0]
    }

    /// Two distinct nodes' memories, mutably (for exchanges).
    ///
    /// # Panics
    ///
    /// Panics if the ids are equal or out of range.
    pub fn mem_pair_mut(&mut self, a: NodeId, b: NodeId) -> (&mut NodeMemory, &mut NodeMemory) {
        assert_ne!(a, b, "mem_pair_mut requires distinct nodes");
        if a.0 < b.0 {
            let (lo, hi) = self.nodes.split_at_mut(b.0);
            (&mut lo[a.0], &mut hi[0])
        } else {
            let (lo, hi) = self.nodes.split_at_mut(a.0);
            (&mut hi[0], &mut lo[b.0])
        }
    }

    /// Copies `len` words from `src_addr` on node `src` to `dst_addr` on
    /// node `dst`. This is the data-movement half of a grid exchange; the
    /// caller separately charges the cycle cost from [`crate::news`].
    ///
    /// # Panics
    ///
    /// Panics on out-of-range nodes or addresses.
    pub fn copy_region(
        &mut self,
        src: NodeId,
        src_addr: usize,
        dst: NodeId,
        dst_addr: usize,
        len: usize,
    ) {
        if src == dst {
            self.mem_mut(src).copy_within(src_addr, dst_addr, len);
            return;
        }
        let (s, d) = self.mem_pair_mut(src, dst);
        d.copy_from(dst_addr, s.slice(src_addr, len));
    }

    /// Every node's memory, mutably, each exactly once, in node order.
    ///
    /// The disjointness is structural (one `&mut` per vector element), so
    /// overlapping access is unrepresentable: the iterator is the only
    /// borrow of `self` while it lives.
    pub fn par_nodes_mut(
        &mut self,
    ) -> impl ExactSizeIterator<Item = (NodeId, &mut NodeMemory)> + '_ {
        self.nodes
            .iter_mut()
            .enumerate()
            .map(|(i, mem)| (NodeId(i), mem))
    }

    /// Partitions the nodes into at most `parts` contiguous, disjoint
    /// slices (the unit of work one host thread takes in
    /// [`Machine::run_schedule_all`]). `parts` is clamped to
    /// `1..=node_count`; every node appears in exactly one slice, in node
    /// order.
    pub fn node_slices_mut(&mut self, parts: usize) -> Vec<NodeSlice<'_>> {
        let parts = parts.clamp(1, self.nodes.len());
        let chunk = self.nodes.len().div_ceil(parts);
        self.nodes
            .chunks_mut(chunk)
            .enumerate()
            .map(|(i, mems)| NodeSlice {
                first: NodeId(i * chunk),
                mems,
            })
            .collect()
    }

    /// The machine configuration together with every node memory as one
    /// disjoint mutable slice — the split borrow the parallel engine
    /// needs (config shared and immutable, node state exclusive).
    pub fn exec_parts_mut(&mut self) -> (&MachineConfig, &mut [NodeMemory]) {
        (&self.config, &mut self.nodes)
    }

    /// The shared-borrow counterpart of [`Machine::exec_parts_mut`]: the
    /// configuration plus every node memory, read-only. This is the view
    /// a region-leased execute runs against — many tenants may hold it
    /// simultaneously under a shared machine lock, because a lane-resident
    /// execute only *reads* node memory (gathers into its private mirror)
    /// and defers its writes to a staged scatter applied later.
    pub fn exec_parts(&self) -> (&MachineConfig, &[NodeMemory]) {
        (&self.config, &self.nodes)
    }

    /// Executes `kernel` over the half-strip `ctx` on **every** node
    /// (SIMD), returning the per-node cycle/operation counts — identical
    /// across nodes because the instruction stream is identical.
    ///
    /// In [`ExecMode::Cycle`] every node runs the full pipeline model, so
    /// hazards are detected against real data on all nodes.
    ///
    /// # Errors
    ///
    /// Returns [`HazardError`] if the kernel is miscompiled (cycle mode).
    pub fn run_strip_all(
        &mut self,
        kernel: &Kernel,
        ctx: &StripContext<'_>,
        mode: ExecMode,
    ) -> Result<StripRun, HazardError> {
        let step = ScheduleStep {
            kernel,
            ctx: ctx.clone(),
        };
        let mut runs = self.run_schedule_all(std::slice::from_ref(&step), mode, 1)?;
        Ok(runs.pop().expect("one step yields one run"))
    }

    /// Executes an entire strip schedule on every node, fanning the nodes
    /// out over up to `threads` host threads (`1` = the serial path;
    /// clamped to `1..=node_count`).
    ///
    /// Returns one [`StripRun`] per schedule step. The reduction over
    /// nodes is deterministic and thread-count invariant: the machine is
    /// a lockstep SIMD array, so per-step cycle counts agree across nodes
    /// (checked with a debug assertion) and the reduced count is the
    /// per-step maximum — the array advances at the pace of its slowest
    /// node. Nodes are reduced in node order regardless of which thread
    /// ran them, so the result is bit-identical for every `threads`
    /// value.
    ///
    /// # Errors
    ///
    /// Returns [`HazardError`] if the kernel is miscompiled (cycle mode);
    /// when several nodes fault, the lowest-numbered node's error is
    /// returned, again independent of thread count.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread panics (a kernel addressing bug).
    pub fn run_schedule_all(
        &mut self,
        schedule: &[ScheduleStep<'_>],
        mode: ExecMode,
        threads: usize,
    ) -> Result<Vec<StripRun>, HazardError> {
        if schedule.is_empty() {
            return Ok(Vec::new());
        }
        let threads = threads.clamp(1, self.nodes.len());
        let config = &self.config;
        let run_node = |mem: &mut NodeMemory| -> Result<Vec<StripRun>, HazardError> {
            schedule
                .iter()
                .map(|step| run_strip(step.kernel, &step.ctx, mem, config, mode))
                .collect()
        };
        let per_node: Vec<Result<Vec<StripRun>, HazardError>> = if threads == 1 {
            self.nodes.iter_mut().map(run_node).collect()
        } else {
            let run_node = &run_node;
            let chunk = self.nodes.len().div_ceil(threads);
            std::thread::scope(|scope| {
                let handles: Vec<_> = self
                    .nodes
                    .chunks_mut(chunk)
                    .map(|mems| {
                        scope.spawn(move || mems.iter_mut().map(run_node).collect::<Vec<_>>())
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("node worker panicked"))
                    .collect()
            })
        };
        reduce_node_runs(per_node)
    }

    /// Executes a pre-resolved strip sequence on every node, fanning the
    /// nodes out over up to `threads` host threads — the plan-execution
    /// counterpart of [`Machine::run_schedule_all`], with the same
    /// deterministic, thread-count-invariant reduction (per-strip cycles
    /// agree across the lockstep SIMD nodes; the per-node totals are
    /// absorbed into one [`StripRun`]).
    ///
    /// # Errors
    ///
    /// Returns [`HazardError`] if a strip is miscompiled (cycle mode);
    /// when several nodes fault, the lowest-numbered node's error wins,
    /// independent of thread count.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread panics (a kernel addressing bug).
    pub fn run_resolved_all(
        &mut self,
        strips: &[ResolvedStrip],
        mode: ExecMode,
        threads: usize,
    ) -> Result<StripRun, HazardError> {
        if strips.is_empty() {
            return Ok(StripRun::default());
        }
        let _t = cmcc_obs::trace::scope(cmcc_obs::trace::TraceOp::KernelSweep, strips.len() as u64);
        cmcc_obs::add(
            cmcc_obs::Counter::ScalarSteps,
            strips.iter().map(|s| s.steps()).sum(),
        );
        let threads = threads.clamp(1, self.nodes.len());
        let config = &self.config;
        let run_node = |mem: &mut NodeMemory| -> Result<StripRun, HazardError> {
            let mut total = StripRun::default();
            for strip in strips {
                total.absorb(&run_resolved_strip(strip, mem, config, mode)?);
            }
            Ok(total)
        };
        let per_node: Vec<Result<StripRun, HazardError>> = if threads == 1 {
            let _cpu = cmcc_obs::span(cmcc_obs::Phase::ExecuteWorkers);
            self.nodes.iter_mut().map(run_node).collect()
        } else {
            let run_node = &run_node;
            let chunk = self.nodes.len().div_ceil(threads);
            std::thread::scope(|scope| {
                let handles: Vec<_> = self
                    .nodes
                    .chunks_mut(chunk)
                    .map(|mems| {
                        scope.spawn(move || {
                            let _cpu = cmcc_obs::span(cmcc_obs::Phase::ExecuteWorkers);
                            mems.iter_mut().map(run_node).collect::<Vec<_>>()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("node worker panicked"))
                    .collect()
            })
        };
        let mut reduced: Option<StripRun> = None;
        for result in per_node {
            let run = result?;
            match &mut reduced {
                None => reduced = Some(run),
                Some(acc) => {
                    debug_assert_eq!(*acc, run, "SIMD nodes must agree on cycle counts");
                    acc.cycles = acc.cycles.max(run.cycles);
                }
            }
        }
        Ok(reduced.expect("machine has at least one node"))
    }

    /// Executes a lane-translated strip sequence on every node through
    /// the lockstep broadcast engine: nodes are gathered into node-major
    /// lane storage per `view`, each step runs across all lanes at once,
    /// and writable ranges are scattered back.
    ///
    /// With `threads > 1` the *lanes within each step* are split: each
    /// worker owns a contiguous group of nodes as its own lane block and
    /// replays the identical stream, so — unlike a reduction over
    /// independently ordered nodes — thread count cannot affect any
    /// arithmetic order and results are bit-identical for every value.
    ///
    /// The strips must come from [`ResolvedStrip::translate`] against
    /// `view`. Fast-mode functional semantics only; counters are the
    /// per-node values (each broadcast step counted once), matching
    /// [`Machine::run_resolved_all`] in [`ExecMode::Fast`].
    ///
    /// The caller provides the `mirror` and keeps it between calls: the
    /// mirror is (re)shaped in place — a no-op when the shape is
    /// unchanged — so steady-state replays perform **zero** lane
    /// allocations (observable via [`LaneMirror::allocations`]).
    ///
    /// # Panics
    ///
    /// Panics if a lane address is out of the view's bounds or a worker
    /// thread panics.
    pub fn run_resolved_lockstep_all(
        &mut self,
        lane_strips: &[ResolvedStrip],
        view: &LaneView,
        threads: usize,
        mirror: &mut LaneMirror,
    ) -> StripRun {
        if lane_strips.is_empty() {
            return StripRun::default();
        }
        let _t = cmcc_obs::trace::scope(
            cmcc_obs::trace::TraceOp::KernelSweep,
            lane_strips.len() as u64,
        );
        mirror.ensure(view.words(), self.nodes.len(), threads);
        mirror.gather(view, &self.nodes);
        let run = run_resolved_lockstep_groups(lane_strips, mirror.groups_mut());
        mirror.scatter(view, &mut self.nodes);
        run
    }

    /// [`Machine::run_resolved_lockstep_all`] with the kernel tier:
    /// `kernels[i]`, when present, replaces interpretation of
    /// `lane_strips[i]` with its compiled form (pass `&[]` to run fully
    /// interpreted). `streams` caches the packed coefficient streams
    /// across executes — the caller invalidates it when a coefficient
    /// binding or node memory changes. Results are bit-identical either
    /// way; only the `kernelized_steps` / `interpreted_steps` telemetry
    /// split differs.
    ///
    /// # Panics
    ///
    /// Panics if a lane address is out of the view's bounds or a worker
    /// thread panics.
    pub fn run_resolved_lockstep_all_kernelized(
        &mut self,
        lane_strips: &[ResolvedStrip],
        kernels: &[Option<StripKernels>],
        streams: &mut CoeffStreams,
        view: &LaneView,
        threads: usize,
        mirror: &mut LaneMirror,
    ) -> StripRun {
        if lane_strips.is_empty() {
            return StripRun::default();
        }
        let _t = cmcc_obs::trace::scope(
            cmcc_obs::trace::TraceOp::KernelSweep,
            lane_strips.len() as u64,
        );
        mirror.ensure(view.words(), self.nodes.len(), threads);
        mirror.gather(view, &self.nodes);
        let run =
            run_lockstep_groups_kernelized(lane_strips, kernels, streams, mirror.groups_mut());
        mirror.scatter(view, &mut self.nodes);
        run
    }
}

/// A contiguous group of nodes handed to one worker thread.
///
/// Produced only by [`Machine::node_slices_mut`], whose `chunks_mut`
/// construction guarantees the slices are disjoint and cover every node
/// exactly once.
#[derive(Debug)]
pub struct NodeSlice<'a> {
    first: NodeId,
    mems: &'a mut [NodeMemory],
}

impl<'a> NodeSlice<'a> {
    /// The first node in the slice.
    pub fn first(&self) -> NodeId {
        self.first
    }

    /// Number of nodes in the slice.
    pub fn len(&self) -> usize {
        self.mems.len()
    }

    /// Whether the slice is empty (never true for
    /// [`Machine::node_slices_mut`] output).
    pub fn is_empty(&self) -> bool {
        self.mems.is_empty()
    }

    /// Iterates the slice's nodes in node order.
    pub fn iter_mut(&mut self) -> impl ExactSizeIterator<Item = (NodeId, &mut NodeMemory)> + '_ {
        let first = self.first.0;
        self.mems
            .iter_mut()
            .enumerate()
            .map(move |(i, mem)| (NodeId(first + i), mem))
    }
}

/// Reduces per-node schedule results (in node order) to one result per
/// step: first error in node order wins; otherwise per-step cycles take
/// the max over nodes (they agree — lockstep SIMD — which a debug
/// assertion checks) and the remaining counters are the shared per-node
/// values.
fn reduce_node_runs(
    per_node: Vec<Result<Vec<StripRun>, HazardError>>,
) -> Result<Vec<StripRun>, HazardError> {
    let mut reduced: Option<Vec<StripRun>> = None;
    for result in per_node {
        let runs = result?;
        match &mut reduced {
            None => reduced = Some(runs),
            Some(acc) => {
                debug_assert_eq!(acc.len(), runs.len());
                for (a, r) in acc.iter_mut().zip(&runs) {
                    debug_assert_eq!(a, r, "SIMD nodes must agree on cycle counts");
                    a.cycles = a.cycles.max(r.cycles);
                }
            }
        }
    }
    Ok(reduced.expect("machine has at least one node"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::Direction;

    fn machine() -> Machine {
        Machine::new(MachineConfig::tiny_4()).unwrap()
    }

    #[test]
    fn construction_matches_config() {
        let m = machine();
        assert_eq!(m.node_count(), 4);
        assert_eq!(m.grid().rows(), 2);
    }

    #[test]
    fn invalid_config_is_rejected() {
        let mut cfg = MachineConfig::tiny_4();
        cfg.grid_cols = 0;
        assert!(Machine::new(cfg).is_err());
    }

    #[test]
    fn fields_are_shared_addresses_private_data() {
        let mut m = machine();
        let f = m.alloc_field(8).unwrap();
        let n0 = m.grid().id(0, 0);
        let n1 = m.grid().id(0, 1);
        m.mem_mut(n0).fill_field(f, 1.0);
        m.mem_mut(n1).fill_field(f, 2.0);
        assert_eq!(m.mem(n0).field(f)[0], 1.0);
        assert_eq!(m.mem(n1).field(f)[0], 2.0);
    }

    #[test]
    fn copy_region_moves_between_nodes() {
        let mut m = machine();
        let f = m.alloc_field(4).unwrap();
        let a = m.grid().id(0, 0);
        let b = m.grid().neighbor(a, Direction::East);
        m.mem_mut(a).fill_field(f, 5.0);
        m.copy_region(a, f.base(), b, f.base(), 4);
        assert_eq!(m.mem(b).field(f), &[5.0; 4]);
    }

    #[test]
    fn copy_region_within_one_node() {
        let mut m = machine();
        let f = m.alloc_field(8).unwrap();
        let a = m.grid().id(1, 1);
        m.mem_mut(a).write(f.addr(0), 9.0);
        m.copy_region(a, f.base(), a, f.base() + 4, 2);
        assert_eq!(m.mem(a).read(f.base() + 4), 9.0);
    }

    #[test]
    fn mem_pair_mut_orders_do_not_matter() {
        let mut m = machine();
        let f = m.alloc_field(1).unwrap();
        let a = m.grid().id(0, 0);
        let b = m.grid().id(1, 1);
        {
            let (ma, mb) = m.mem_pair_mut(a, b);
            ma.write(f.base(), 1.0);
            mb.write(f.base(), 2.0);
        }
        {
            let (mb2, ma2) = m.mem_pair_mut(b, a);
            assert_eq!(mb2.read(f.base()), 2.0);
            assert_eq!(ma2.read(f.base()), 1.0);
        }
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn mem_pair_mut_same_node_panics() {
        let mut m = machine();
        let a = m.grid().id(0, 0);
        let _ = m.mem_pair_mut(a, a);
    }

    #[test]
    fn par_nodes_mut_covers_every_node_exactly_once() {
        let mut m = machine();
        let f = m.alloc_field(1).unwrap();
        let mut ids = Vec::new();
        for (id, mem) in m.par_nodes_mut() {
            ids.push(id);
            mem.write(f.base(), id.0 as f32 + 1.0);
        }
        assert_eq!(ids, vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]);
        // Each write landed on its own node: no overlap, no omission.
        for i in 0..4 {
            assert_eq!(m.mem(NodeId(i)).read(f.base()), i as f32 + 1.0);
        }
    }

    #[test]
    fn node_slices_partition_exactly() {
        let mut m = machine();
        for parts in 1..=6 {
            let mut covered = Vec::new();
            for mut slice in m.node_slices_mut(parts) {
                assert!(!slice.is_empty());
                for (id, _) in slice.iter_mut() {
                    covered.push(id);
                }
            }
            assert_eq!(
                covered,
                vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)],
                "parts = {parts}"
            );
        }
    }

    #[test]
    fn node_slices_clamp_degenerate_part_counts() {
        let mut m = machine();
        // Zero parts clamps to one slice holding everything…
        let slices = m.node_slices_mut(0);
        assert_eq!(slices.len(), 1);
        assert_eq!(slices[0].len(), 4);
        assert_eq!(slices[0].first(), NodeId(0));
        // …and more parts than nodes clamps to one node per slice.
        let slices = m.node_slices_mut(100);
        assert_eq!(slices.len(), 4);
        assert!(slices.iter().all(|s| s.len() == 1));
    }

    #[test]
    fn node_slice_first_ids_match_offsets() {
        let mut m = machine();
        let slices = m.node_slices_mut(2);
        assert_eq!(slices[0].first(), NodeId(0));
        assert_eq!(slices[1].first(), NodeId(2));
    }

    #[test]
    fn exec_parts_expose_all_nodes() {
        let mut m = machine();
        let (cfg, nodes) = m.exec_parts_mut();
        assert_eq!(cfg.node_count(), nodes.len());
    }

    #[test]
    fn shared_execution_inputs_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MachineConfig>();
        assert_send_sync::<Kernel>();
        assert_send_sync::<StripContext<'static>>();
        assert_send_sync::<ScheduleStep<'static>>();
        assert_send_sync::<NodeMemory>();
    }

    /// A minimal schedule (one store of the ones page into the result
    /// field per step) whose execution writes real data on every node —
    /// enough to observe that serial and threaded runs agree bitwise.
    fn store_schedule_fixture(m: &mut Machine) -> (Field, Field, Kernel) {
        use crate::isa::{DynamicPart, MemRef, Reg, StaticPart};
        let consts = m.alloc_field(2).unwrap();
        let res = m.alloc_field(4).unwrap();
        for (_, mem) in m.par_nodes_mut() {
            mem.write(consts.addr(0), 1.0);
            mem.write(consts.addr(1), 0.0);
        }
        let kernel = Kernel {
            static_part: StaticPart::ChainedMac,
            width: 1,
            row_step: -1,
            prologue: vec![],
            body: vec![vec![
                DynamicPart::Load {
                    src: MemRef::Ones,
                    dest: Reg(2),
                },
                DynamicPart::Nop,
                DynamicPart::Nop,
                DynamicPart::Nop,
                DynamicPart::Store {
                    src: Reg(2),
                    dest: MemRef::Result { col: 0 },
                },
            ]],
            useful_flops_per_line: 0,
        };
        (consts, res, kernel)
    }

    #[test]
    fn schedule_runs_are_thread_count_invariant() {
        use crate::exec::FieldLayout;
        let mut runs_by_threads = Vec::new();
        for threads in [1usize, 2, 3, 8] {
            let mut m = machine();
            let (consts, res, kernel) = store_schedule_fixture(&mut m);
            let ctx = StripContext {
                srcs: &[],
                res: FieldLayout {
                    base: res.base(),
                    row_stride: 1,
                    row_offset: 0,
                    col_offset: 0,
                },
                coeffs: &[],
                ones_addr: consts.addr(0),
                zeros_addr: consts.addr(1),
                start_row: 3,
                lines: 4,
                col0: 0,
            };
            let steps = vec![
                ScheduleStep {
                    kernel: &kernel,
                    ctx: ctx.clone(),
                };
                3
            ];
            let runs = m
                .run_schedule_all(&steps, ExecMode::Cycle, threads)
                .unwrap();
            assert_eq!(runs.len(), 3);
            for (_, mem) in m.par_nodes_mut() {
                assert_eq!(mem.field(res), &[1.0; 4]);
            }
            runs_by_threads.push(runs);
        }
        for other in &runs_by_threads[1..] {
            assert_eq!(&runs_by_threads[0], other);
        }
    }

    #[test]
    fn empty_schedule_is_a_no_op() {
        let mut m = machine();
        let runs = m.run_schedule_all(&[], ExecMode::Cycle, 8).unwrap();
        assert!(runs.is_empty());
    }

    #[test]
    fn lockstep_engine_matches_scalar_for_all_thread_counts() {
        use crate::exec::FieldLayout;
        // Reference: the scalar fast engine, threads=1.
        let run_machine = |lockstep_threads: Option<usize>| -> (Vec<Vec<f32>>, StripRun) {
            let mut m = machine();
            let (consts, res, kernel) = store_schedule_fixture(&mut m);
            let ctx = StripContext {
                srcs: &[],
                res: FieldLayout {
                    base: res.base(),
                    row_stride: 1,
                    row_offset: 0,
                    col_offset: 0,
                },
                coeffs: &[],
                ones_addr: consts.addr(0),
                zeros_addr: consts.addr(1),
                start_row: 3,
                lines: 4,
                col0: 0,
            };
            let strips = vec![ResolvedStrip::new(&kernel, &ctx); 3];
            let run = match lockstep_threads {
                None => m.run_resolved_all(&strips, ExecMode::Fast, 1).unwrap(),
                Some(threads) => {
                    let view = LaneView::new(&[
                        (consts.base(), consts.len(), false),
                        (res.base(), res.len(), true),
                    ])
                    .unwrap();
                    let lane_strips: Vec<ResolvedStrip> = strips
                        .iter()
                        .map(|s| s.translate(&view).expect("view covers the fixture"))
                        .collect();
                    let mut mirror = LaneMirror::new();
                    m.run_resolved_lockstep_all(&lane_strips, &view, threads, &mut mirror)
                }
            };
            let mems = m
                .par_nodes_mut()
                .map(|(_, mem)| mem.slice(0, 8).to_vec())
                .collect();
            (mems, run)
        };
        let (scalar_mems, scalar_run) = run_machine(None);
        for threads in [1usize, 2, 3, 8] {
            let (mems, run) = run_machine(Some(threads));
            assert_eq!(mems, scalar_mems, "threads = {threads}");
            assert_eq!(run, scalar_run, "threads = {threads}");
        }
    }

    #[test]
    fn lockstep_with_no_strips_is_a_no_op() {
        let mut m = machine();
        let view = LaneView::new(&[(0, 4, true)]).unwrap();
        let mut mirror = LaneMirror::new();
        assert_eq!(
            m.run_resolved_lockstep_all(&[], &view, 2, &mut mirror),
            StripRun::default()
        );
        assert_eq!(mirror.allocations(), 0, "no strips, no mirror shaping");
    }

    #[test]
    fn steady_state_lockstep_reuses_the_caller_mirror() {
        use crate::exec::FieldLayout;
        let mut m = machine();
        let (consts, res, kernel) = store_schedule_fixture(&mut m);
        let ctx = StripContext {
            srcs: &[],
            res: FieldLayout {
                base: res.base(),
                row_stride: 1,
                row_offset: 0,
                col_offset: 0,
            },
            coeffs: &[],
            ones_addr: consts.addr(0),
            zeros_addr: consts.addr(1),
            start_row: 3,
            lines: 4,
            col0: 0,
        };
        let strips = [ResolvedStrip::new(&kernel, &ctx)];
        let view = LaneView::new(&[
            (consts.base(), consts.len(), false),
            (res.base(), res.len(), true),
        ])
        .unwrap();
        let lane_strips: Vec<ResolvedStrip> = strips
            .iter()
            .map(|s| s.translate(&view).expect("view covers the fixture"))
            .collect();
        let mut mirror = LaneMirror::new();
        m.run_resolved_lockstep_all(&lane_strips, &view, 2, &mut mirror);
        let after_first = mirror.allocations();
        assert!(after_first > 0, "the first run shapes the mirror");
        for _ in 0..10 {
            m.run_resolved_lockstep_all(&lane_strips, &view, 2, &mut mirror);
        }
        assert_eq!(
            mirror.allocations(),
            after_first,
            "steady-state lockstep replay must not allocate lane storage"
        );
    }

    #[test]
    fn release_to_reclaims_temporaries() {
        let mut m = machine();
        let _persistent = m.alloc_field(16).unwrap();
        let mark = m.alloc_mark();
        let t1 = m.alloc_field(100).unwrap();
        m.release_to(mark);
        let t2 = m.alloc_field(10).unwrap();
        assert_eq!(t1.base(), t2.base());
    }
}
