//! Cycle-level simulator of the Connection Machine CM-2 node array.
//!
//! The PLDI 1991 convolution-compiler paper targets a real CM-2: 65,536
//! bit-serial processors grouped into 2,048 *nodes*, each node pairing two
//! processor chips with a Weitek WTL3164 floating-point unit and a memory
//! interface chip, all driven by a central microcode sequencer at 7 MHz.
//! This crate models that machine at the level the compiler cares about:
//!
//! * the **instruction format** ([`isa`]) — static/dynamic instruction
//!   parts, the chained multiply-add discipline, and the compiled
//!   [`isa::Kernel`] that fills the sequencer's scratch data memory;
//! * the **FPU pipeline** ([`exec`]) — multiply at cycle *k*, add at
//!   *k+2*, writeback at *k+4*, one multiplier operand streamed from
//!   memory, load latency through the interface chip, and the penalty for
//!   reversing the memory-pipe direction;
//! * the **node grid** ([`grid`]) and the four-neighbor simultaneous
//!   exchange primitive with its cost model ([`news`]);
//! * **timing** ([`timing`]) — useful-flop accounting and the SIMD
//!   extrapolation rule the paper uses to project 16-node measurements to
//!   the full machine.
//!
//! The simulator is *functional as well as timed*: kernels execute against
//! real per-node memory and produce real `f32` results, so the compiler's
//! register choreography is validated bit-for-bit, not just costed.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod config;
pub mod exec;
pub mod grid;
pub mod isa;
pub mod kernels;
pub mod lane;
pub mod machine;
pub mod memory;
pub mod news;
pub mod sequencer;
pub mod timing;

pub use config::MachineConfig;
pub use exec::{
    ExecEngine, ExecMode, FieldLayout, HazardError, ResolvedOp, ResolvedPart, ResolvedSlot,
    ResolvedStrip, ScheduleStep, StripContext, StripRun,
};
pub use grid::{Direction, NodeGrid, NodeId};
pub use isa::{DynamicPart, Kernel, MacAcc, MemRef, Reg, StaticPart};
pub use kernels::{run_lockstep_groups_kernelized, CoeffStreams, StripKernels, KERNEL_VARIANTS};
pub use lane::{LaneMemory, LaneRange, LaneView};
pub use machine::{Machine, NodeSlice};
pub use memory::{Field, FieldAllocator, NodeMemory, OutOfMemory};
pub use news::{corner_exchange_cycles, news_exchange_cycles, old_exchange_cycles, ExchangeShape};
pub use sequencer::{ScratchMemory, ScratchOverflow, DEFAULT_SCRATCH_ENTRIES};
pub use timing::{CycleBreakdown, Measurement};
