//! The two-dimensional node grid and its hypercube embedding.
//!
//! The CM-2's 2,048 floating-point nodes form an 11-dimensional boolean
//! hypercube (paper §3). Grid communication embeds a 2-D torus in that
//! hypercube with a Gray code along each axis so that grid neighbors are
//! hypercube neighbors ("This grid is embedded within the hypercube
//! topology in such a way that grid neighbors are hypercube neighbors,
//! thereby making effective use of the network", §4.1).

use std::fmt;

/// One of the four grid directions (the CM NEWS directions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Toward smaller row indices.
    North,
    /// Toward larger row indices.
    South,
    /// Toward larger column indices.
    East,
    /// Toward smaller column indices.
    West,
}

impl Direction {
    /// All four directions, in NEWS order.
    pub const ALL: [Direction; 4] = [
        Direction::North,
        Direction::East,
        Direction::West,
        Direction::South,
    ];

    /// The opposite direction.
    pub fn opposite(&self) -> Direction {
        match self {
            Direction::North => Direction::South,
            Direction::South => Direction::North,
            Direction::East => Direction::West,
            Direction::West => Direction::East,
        }
    }

    /// `(drow, dcol)` unit step of this direction.
    pub fn step(&self) -> (i64, i64) {
        match self {
            Direction::North => (-1, 0),
            Direction::South => (1, 0),
            Direction::East => (0, 1),
            Direction::West => (0, -1),
        }
    }
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Direction::North => "north",
            Direction::South => "south",
            Direction::East => "east",
            Direction::West => "west",
        };
        f.write_str(name)
    }
}

/// A node's identity within the machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// A 2-D torus of nodes.
///
/// # Examples
///
/// ```
/// use cmcc_cm2::grid::{Direction, NodeGrid};
///
/// let grid = NodeGrid::new(4, 4);
/// let id = grid.id(0, 0);
/// // The torus wraps: north of row 0 is row 3.
/// assert_eq!(grid.coords(grid.neighbor(id, Direction::North)), (3, 0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeGrid {
    rows: usize,
    cols: usize,
}

impl NodeGrid {
    /// Creates a grid of `rows × cols` nodes.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "node grid dimensions must be nonzero");
        NodeGrid { rows, cols }
    }

    /// Grid rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Grid columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total nodes.
    pub fn len(&self) -> usize {
        self.rows * self.cols
    }

    /// Whether the grid has no nodes (never true; kept for API symmetry).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The node at grid position `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the position is out of range.
    pub fn id(&self, row: usize, col: usize) -> NodeId {
        assert!(
            row < self.rows && col < self.cols,
            "({row}, {col}) outside {self:?}"
        );
        NodeId(row * self.cols + col)
    }

    /// The grid position of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn coords(&self, id: NodeId) -> (usize, usize) {
        assert!(id.0 < self.len(), "{id} outside {self:?}");
        (id.0 / self.cols, id.0 % self.cols)
    }

    /// The torus neighbor of `id` in `dir`.
    pub fn neighbor(&self, id: NodeId, dir: Direction) -> NodeId {
        let (r, c) = self.coords(id);
        let (dr, dc) = dir.step();
        let nr = (r as i64 + dr).rem_euclid(self.rows as i64) as usize;
        let nc = (c as i64 + dc).rem_euclid(self.cols as i64) as usize;
        self.id(nr, nc)
    }

    /// The diagonal torus neighbor of `id` (one step in each of two
    /// directions), used by the corner-exchange step of the halo protocol.
    pub fn diagonal_neighbor(
        &self,
        id: NodeId,
        vertical: Direction,
        horizontal: Direction,
    ) -> NodeId {
        self.neighbor(self.neighbor(id, vertical), horizontal)
    }

    /// Iterates over all node ids in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.len()).map(NodeId)
    }

    /// The hypercube address of a node under the Gray-code embedding.
    ///
    /// Each grid axis is Gray-coded independently and the two codes are
    /// concatenated; when both dimensions are powers of two, grid
    /// neighbors then differ in exactly one address bit (except across the
    /// torus wrap, where the reflected Gray code still guarantees a
    /// single-bit difference).
    pub fn hypercube_address(&self, id: NodeId) -> u32 {
        let (r, c) = self.coords(id);
        let col_bits = bits_for(self.cols);
        (gray(r as u32) << col_bits) | gray(c as u32)
    }
}

fn bits_for(n: usize) -> u32 {
    debug_assert!(n > 0);
    usize::BITS - (n - 1).leading_zeros()
}

fn gray(x: u32) -> u32 {
    x ^ (x >> 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coords_and_id_round_trip() {
        let g = NodeGrid::new(4, 8);
        for id in g.iter() {
            let (r, c) = g.coords(id);
            assert_eq!(g.id(r, c), id);
        }
    }

    #[test]
    fn torus_wraps_in_all_directions() {
        let g = NodeGrid::new(3, 5);
        let corner = g.id(0, 0);
        assert_eq!(g.coords(g.neighbor(corner, Direction::North)), (2, 0));
        assert_eq!(g.coords(g.neighbor(corner, Direction::West)), (0, 4));
        assert_eq!(g.coords(g.neighbor(corner, Direction::South)), (1, 0));
        assert_eq!(g.coords(g.neighbor(corner, Direction::East)), (0, 1));
    }

    #[test]
    fn neighbor_relation_is_symmetric() {
        let g = NodeGrid::new(4, 4);
        for id in g.iter() {
            for dir in Direction::ALL {
                let n = g.neighbor(id, dir);
                assert_eq!(g.neighbor(n, dir.opposite()), id);
            }
        }
    }

    #[test]
    fn diagonal_neighbor_composes_steps() {
        let g = NodeGrid::new(4, 4);
        let id = g.id(1, 1);
        let d = g.diagonal_neighbor(id, Direction::North, Direction::East);
        assert_eq!(g.coords(d), (0, 2));
    }

    #[test]
    fn gray_embedding_makes_grid_neighbors_hypercube_neighbors() {
        // Power-of-two grid: every grid edge is a hypercube edge.
        let g = NodeGrid::new(4, 8);
        for id in g.iter() {
            for dir in Direction::ALL {
                let n = g.neighbor(id, dir);
                let diff = g.hypercube_address(id) ^ g.hypercube_address(n);
                assert_eq!(
                    diff.count_ones(),
                    1,
                    "{:?} -> {dir}: addresses {:#b} vs {:#b}",
                    g.coords(id),
                    g.hypercube_address(id),
                    g.hypercube_address(n)
                );
            }
        }
    }

    #[test]
    fn full_machine_grid_uses_eleven_address_bits() {
        let g = NodeGrid::new(64, 32);
        let max = g.iter().map(|id| g.hypercube_address(id)).max().unwrap();
        assert!(max < (1 << 11), "address {max:#b} exceeds 11-cube");
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn out_of_range_position_panics() {
        let g = NodeGrid::new(2, 2);
        let _ = g.id(2, 0);
    }
}
