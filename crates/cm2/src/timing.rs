//! Cycle accounting, flop rates, and machine-size extrapolation.
//!
//! The paper reports sustained Mflops on 16-node boards and extrapolates
//! to the 2,048-node machine; "such extrapolations are quite reliable ...
//! because the CM-2 is a completely synchronous SIMD machine; the time
//! required for computation and grid communication does not change as the
//! number of nodes is increased" (§7). [`Measurement::extrapolate`]
//! implements exactly that rule: same elapsed time, flops scaled by the
//! node ratio.

use crate::config::MachineConfig;
use std::fmt;
use std::ops::{Add, AddAssign};

/// A breakdown of the cycles one stencil call spends in each phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CycleBreakdown {
    /// Interprocessor communication (halo exchange).
    pub comm: u64,
    /// FPU kernel execution, including loads/stores/drain bubbles and
    /// half-strip startup.
    pub compute: u64,
    /// Front-end (host) dispatch overhead, expressed in CM cycles.
    pub frontend: u64,
}

impl CycleBreakdown {
    /// Total cycles: the front end and the CM overlap imperfectly on the
    /// real machine; this model charges whichever is larger per call
    /// *when the caller has already folded them*, so here total is the
    /// plain sum of what was charged.
    pub fn total(&self) -> u64 {
        self.comm + self.compute + self.frontend
    }

    /// Elapsed seconds at the configured clock.
    pub fn seconds(&self, cfg: &MachineConfig) -> f64 {
        self.total() as f64 / cfg.clock_hz
    }
}

impl Add for CycleBreakdown {
    type Output = CycleBreakdown;

    fn add(self, rhs: CycleBreakdown) -> CycleBreakdown {
        CycleBreakdown {
            comm: self.comm + rhs.comm,
            compute: self.compute + rhs.compute,
            frontend: self.frontend + rhs.frontend,
        }
    }
}

impl AddAssign for CycleBreakdown {
    fn add_assign(&mut self, rhs: CycleBreakdown) {
        *self = *self + rhs;
    }
}

impl fmt::Display for CycleBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} cycles (comm {}, compute {}, front end {})",
            self.total(),
            self.comm,
            self.compute,
            self.frontend
        )
    }
}

/// A timed stencil execution: useful flops performed (per the paper's
/// counting rule, §7: "Only useful floating-point operations are
/// counted") and the cycles spent, on a machine of `nodes` nodes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Measurement {
    /// Useful floating-point operations across the whole machine.
    pub useful_flops: u64,
    /// Cycle breakdown (identical on every node: the machine is SIMD).
    pub cycles: CycleBreakdown,
    /// Number of nodes that participated.
    pub nodes: usize,
}

impl Measurement {
    /// Sustained rate in Mflops.
    pub fn mflops(&self, cfg: &MachineConfig) -> f64 {
        let secs = self.cycles.seconds(cfg);
        if secs == 0.0 {
            return 0.0;
        }
        self.useful_flops as f64 / secs / 1.0e6
    }

    /// Sustained rate in Gflops.
    pub fn gflops(&self, cfg: &MachineConfig) -> f64 {
        self.mflops(cfg) / 1.0e3
    }

    /// Extrapolates to a machine of `to_nodes` nodes with the same
    /// per-node subgrid: elapsed time is unchanged (fully synchronous
    /// SIMD), total flops scale with the node count.
    pub fn extrapolate(&self, to_nodes: usize) -> Measurement {
        let ratio = to_nodes as f64 / self.nodes as f64;
        Measurement {
            useful_flops: (self.useful_flops as f64 * ratio).round() as u64,
            cycles: self.cycles,
            nodes: to_nodes,
        }
    }

    /// Combines two measurements taken on the same machine (e.g. repeated
    /// iterations): flops and cycles add.
    ///
    /// # Panics
    ///
    /// Panics if the node counts differ.
    pub fn combine(&self, other: &Measurement) -> Measurement {
        assert_eq!(
            self.nodes, other.nodes,
            "measurements from different machines"
        );
        Measurement {
            useful_flops: self.useful_flops + other.useful_flops,
            cycles: self.cycles + other.cycles,
            nodes: self.nodes,
        }
    }

    /// Scales the measurement to `n` identical iterations.
    pub fn repeated(&self, n: u64) -> Measurement {
        Measurement {
            useful_flops: self.useful_flops * n,
            cycles: CycleBreakdown {
                comm: self.cycles.comm * n,
                compute: self.cycles.compute * n,
                frontend: self.cycles.frontend * n,
            },
            nodes: self.nodes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> MachineConfig {
        MachineConfig::test_board_16()
    }

    fn sample() -> Measurement {
        Measurement {
            useful_flops: 7_000_000,
            cycles: CycleBreakdown {
                comm: 100_000,
                compute: 850_000,
                frontend: 50_000,
            },
            nodes: 16,
        }
    }

    #[test]
    fn mflops_is_flops_over_elapsed() {
        // 1e6 cycles at 7 MHz = 1/7 s; 7e6 flops / (1/7 s) = 49 Mflops.
        let m = sample();
        assert!((m.mflops(&cfg()) - 49.0).abs() < 1e-9);
        assert!((m.gflops(&cfg()) - 0.049).abs() < 1e-12);
    }

    #[test]
    fn extrapolation_scales_flops_not_time() {
        let m = sample();
        let big = m.extrapolate(2048);
        assert_eq!(big.cycles, m.cycles);
        assert_eq!(big.useful_flops, 7_000_000 * 128);
        let ratio = big.mflops(&cfg()) / m.mflops(&cfg());
        assert!((ratio - 128.0).abs() < 1e-9);
    }

    #[test]
    fn repeated_scales_everything() {
        let m = sample().repeated(100);
        assert_eq!(m.useful_flops, 700_000_000);
        assert_eq!(m.cycles.comm, 10_000_000);
        assert_eq!(m.mflops(&cfg()), sample().mflops(&cfg()));
    }

    #[test]
    fn combine_adds() {
        let m = sample().combine(&sample());
        assert_eq!(m.useful_flops, 14_000_000);
        assert_eq!(m.cycles.total(), 2_000_000);
    }

    #[test]
    #[should_panic(expected = "different machines")]
    fn combine_rejects_mismatched_nodes() {
        let a = sample();
        let b = sample().extrapolate(2048);
        let _ = a.combine(&b);
    }

    #[test]
    fn zero_cycles_reports_zero_rate() {
        let m = Measurement {
            useful_flops: 10,
            cycles: CycleBreakdown::default(),
            nodes: 16,
        };
        assert_eq!(m.mflops(&cfg()), 0.0);
    }

    #[test]
    fn breakdown_display_mentions_phases() {
        let text = sample().cycles.to_string();
        assert!(text.contains("comm"));
        assert!(text.contains("front end"));
    }
}
