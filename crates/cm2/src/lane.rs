//! Node-major lane storage for the lockstep SIMD executor.
//!
//! The CM-2 broadcast one instruction stream to every node at once
//! (§4.3: the dynamic parts are streamed cycle by cycle to *all* FPUs).
//! The scalar interpreter inverts that — node-outer, step-inner — and so
//! pays instruction dispatch once per node per step. The lockstep
//! executor restores the machine's own loop order: step-outer,
//! node-inner. To make the node-inner sweep a contiguous vector
//! operation, [`LaneMemory`] stores the *same word of every node side by
//! side*: word `w` of nodes `0..n` lives at `w*n .. (w+1)*n`. One
//! [`crate::exec::ResolvedPart`] then turns into one fused
//! multiply-add swept over a contiguous `&mut [f32]` of node lanes —
//! exactly the shape LLVM autovectorizes.
//!
//! Node memory is large and mostly untouched by any one kernel, so the
//! lane mirror covers only the address ranges a plan actually references:
//! a [`LaneView`] records those ranges once (halo buffers, constant
//! pages, coefficient arrays, the result array) and provides the
//! node-address → lane-word translation plus the gather/scatter that
//! moves data between per-node memories and the lane mirror around a
//! lockstep run. Only ranges marked writable are scattered back, so
//! read-only operands (halos, coefficients) cost one copy per run, not
//! two.

use crate::memory::NodeMemory;

/// One contiguous node-memory range mirrored into lane storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaneRange {
    /// First node-memory address of the range.
    pub node_base: usize,
    /// First lane word (index into the mirror, in words) of the range.
    pub lane_base: usize,
    /// Length in words.
    pub len: usize,
    /// Whether kernels may store into the range (only writable ranges
    /// are scattered back to node memory after a lockstep run).
    pub writable: bool,
    /// Whether the range is lane-private scratch: kernels may store into
    /// it (when also `writable`), but it has no node-memory image — it is
    /// skipped by both gather and scatter. Temporal tiling parks the
    /// intermediate fused-step states here.
    pub private: bool,
}

impl LaneRange {
    fn contains(&self, addr: usize) -> bool {
        addr >= self.node_base && addr < self.node_base + self.len
    }
}

/// The address map of a lockstep execution: which node-memory ranges are
/// mirrored into lane storage, and where each lands.
///
/// Built once per execution plan. Ranges keep their insertion order, so
/// rebuilding a view from same-length ranges (a plan rebind: the result
/// array moved, its length did not) yields identical lane addresses —
/// pre-translated strips stay valid and only the gather/scatter bases
/// change.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LaneView {
    ranges: Vec<LaneRange>,
    words: usize,
}

impl LaneView {
    /// Builds a view over `(node_base, len, writable)` ranges, assigning
    /// lane words in order.
    ///
    /// Returns `None` when any two ranges overlap in node memory (the
    /// caller bound one array to two roles; the scalar engine handles
    /// that aliasing, the lane mirror cannot) or when a range is empty.
    pub fn new(ranges: &[(usize, usize, bool)]) -> Option<LaneView> {
        let with_private: Vec<(usize, usize, bool, bool)> = ranges
            .iter()
            .map(|&(base, len, writable)| (base, len, writable, false))
            .collect();
        Self::new_with_private(&with_private)
    }

    /// [`LaneView::new`] over `(node_base, len, writable, private)`
    /// ranges. Private ranges reserve lane words like any other but are
    /// excluded from gather and scatter — lane-resident scratch with no
    /// node-memory image. Their `node_base` must still be a real,
    /// non-overlapping node allocation so `locate` stays unambiguous
    /// (temporal plans back scratch with persistent node fields, which
    /// the node-domain fallback path then uses directly).
    pub fn new_with_private(ranges: &[(usize, usize, bool, bool)]) -> Option<LaneView> {
        let mut out = Vec::with_capacity(ranges.len());
        let mut lane_base = 0;
        for &(node_base, len, writable, private) in ranges {
            if len == 0 {
                return None;
            }
            out.push(LaneRange {
                node_base,
                lane_base,
                len,
                writable,
                private,
            });
            lane_base += len;
        }
        // Overlap check: sort by node base, adjacent ranges must not meet.
        let mut sorted: Vec<&LaneRange> = out.iter().collect();
        sorted.sort_by_key(|r| r.node_base);
        for pair in sorted.windows(2) {
            if pair[0].node_base + pair[0].len > pair[1].node_base {
                return None;
            }
        }
        Some(LaneView {
            ranges: out,
            words: lane_base,
        })
    }

    /// Total lane words the view mirrors.
    pub fn words(&self) -> usize {
        self.words
    }

    /// Lane words a full [`LaneMemory::gather`] copies per node (every
    /// non-private range).
    pub fn gather_words(&self) -> usize {
        self.ranges
            .iter()
            .filter(|r| !r.private)
            .map(|r| r.len)
            .sum()
    }

    /// Lane words a [`LaneMemory::scatter`] copies back per node
    /// (writable, non-private ranges).
    pub fn scatter_words(&self) -> usize {
        self.ranges
            .iter()
            .filter(|r| r.writable && !r.private)
            .map(|r| r.len)
            .sum()
    }

    /// The mirrored ranges, in insertion order.
    pub fn ranges(&self) -> &[LaneRange] {
        &self.ranges
    }

    /// The range containing node address `addr`, and the address's lane
    /// word within the mirror. `None` when the address is outside every
    /// range.
    pub fn locate(&self, addr: usize) -> Option<(usize, &LaneRange)> {
        self.ranges
            .iter()
            .find(|r| r.contains(addr))
            .map(|r| (r.lane_base + (addr - r.node_base), r))
    }
}

/// A node-memory → lane-word strided rectangle copy, applied uniformly
/// to every lane: `rows` runs of `cols` words, read from node addresses
/// `src0 + r*src_stride` and written to lane words `dst0 + r*dst_stride`.
///
/// The execution plan precomputes one per source to refresh a halo
/// buffer's interior directly in a resident mirror (the lane-domain
/// `fill_interior`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RectCopy {
    /// Node-memory address of the rectangle's first word.
    pub src0: usize,
    /// Node-memory words between consecutive source runs.
    pub src_stride: usize,
    /// Lane word the first run lands on.
    pub dst0: usize,
    /// Lane words between consecutive destination runs.
    pub dst_stride: usize,
    /// Number of runs.
    pub rows: usize,
    /// Words per run.
    pub cols: usize,
}

/// The lane mirror: every viewed word of every node, node-major.
///
/// Word `w`'s lanes occupy `data[w*nodes .. (w+1)*nodes]`, one entry per
/// node, in node order. A group of host threads may each own a
/// `LaneMemory` over a disjoint contiguous slice of the machine's nodes;
/// lanes never interact, so the partition is invisible to results.
#[derive(Debug, Clone, PartialEq)]
pub struct LaneMemory {
    data: Vec<f32>,
    nodes: usize,
}

impl LaneMemory {
    /// Allocates a zeroed mirror of `words` lane words across `nodes`
    /// lanes.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero.
    pub fn new(words: usize, nodes: usize) -> Self {
        assert!(nodes > 0, "lane memory needs at least one lane");
        LaneMemory {
            data: vec![0.0; words * nodes],
            nodes,
        }
    }

    /// Builds a mirror of `words × nodes` reusing `scratch`'s allocation
    /// (resized only when the required length changed). The initial
    /// contents are unspecified — callers must [`LaneMemory::gather`]
    /// before running, which overwrites every viewed word.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero.
    pub fn from_scratch(mut scratch: Vec<f32>, words: usize, nodes: usize) -> Self {
        assert!(nodes > 0, "lane memory needs at least one lane");
        let needed = words * nodes;
        if scratch.len() != needed {
            scratch.clear();
            scratch.resize(needed, 0.0);
        }
        LaneMemory {
            data: scratch,
            nodes,
        }
    }

    /// Consumes the mirror, returning its allocation for reuse via
    /// [`LaneMemory::from_scratch`].
    pub fn into_scratch(self) -> Vec<f32> {
        self.data
    }

    /// Number of node lanes.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// All lanes of lane word `w`.
    ///
    /// # Panics
    ///
    /// Panics if `w` is out of range.
    #[inline]
    pub fn word(&self, w: usize) -> &[f32] {
        &self.data[w * self.nodes..(w + 1) * self.nodes]
    }

    /// All lanes of lane word `w`, mutably.
    ///
    /// # Panics
    ///
    /// Panics if `w` is out of range.
    #[inline]
    pub fn word_mut(&mut self, w: usize) -> &mut [f32] {
        &mut self.data[w * self.nodes..(w + 1) * self.nodes]
    }

    /// The `count` floats at pre-resolved flat offset `off` of the
    /// backing store — the kernel tier's addressing mode, where
    /// `word * nodes` products are computed once per strip instead of
    /// once per access.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    #[inline]
    pub(crate) fn flat(&self, off: usize, count: usize) -> &[f32] {
        &self.data[off..off + count]
    }

    /// [`Self::flat`], mutably.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    #[inline]
    pub(crate) fn flat_mut(&mut self, off: usize, count: usize) -> &mut [f32] {
        &mut self.data[off..off + count]
    }

    /// Lane `lane`'s value of lane word `w`.
    ///
    /// # Panics
    ///
    /// Panics if `w` or `lane` is out of range.
    #[inline]
    pub fn lane_value(&self, w: usize, lane: usize) -> f32 {
        assert!(lane < self.nodes, "lane out of range");
        self.data[w * self.nodes + lane]
    }

    /// Sets lane `lane`'s value of lane word `w`.
    ///
    /// # Panics
    ///
    /// Panics if `w` or `lane` is out of range.
    #[inline]
    pub fn set_lane_value(&mut self, w: usize, lane: usize, value: f32) {
        assert!(lane < self.nodes, "lane out of range");
        self.data[w * self.nodes + lane] = value;
    }

    /// `count` consecutive lanes of lane word `w`, starting at `lane`.
    ///
    /// # Panics
    ///
    /// Panics if the lane run leaves the word row or `w` is out of range.
    #[inline]
    pub fn lanes(&self, w: usize, lane: usize, count: usize) -> &[f32] {
        assert!(lane + count <= self.nodes, "lane run out of range");
        &self.data[w * self.nodes + lane..w * self.nodes + lane + count]
    }

    /// `count` consecutive lanes of lane word `w`, mutably.
    ///
    /// # Panics
    ///
    /// Panics if the lane run leaves the word row or `w` is out of range.
    #[inline]
    pub fn lanes_mut(&mut self, w: usize, lane: usize, count: usize) -> &mut [f32] {
        assert!(lane + count <= self.nodes, "lane run out of range");
        &mut self.data[w * self.nodes + lane..w * self.nodes + lane + count]
    }

    /// Copies `count` consecutive lanes of word `src_w` (from
    /// `src_lane`) onto word `dst_w` (from `dst_lane`) within this
    /// memory — one `memmove`, overlap-safe.
    ///
    /// # Panics
    ///
    /// Panics if either lane run leaves its word row.
    #[inline]
    pub fn copy_lanes_within(
        &mut self,
        src_w: usize,
        src_lane: usize,
        dst_w: usize,
        dst_lane: usize,
        count: usize,
    ) {
        assert!(src_lane + count <= self.nodes, "lane run out of range");
        assert!(dst_lane + count <= self.nodes, "lane run out of range");
        let s = src_w * self.nodes + src_lane;
        let d = dst_w * self.nodes + dst_lane;
        self.data.copy_within(s..s + count, d);
    }

    /// Copies every non-private viewed range from `mems` (one per lane,
    /// in order) into the mirror. Private ranges are lane-resident
    /// scratch with no node image — their contents are left as-is.
    ///
    /// # Panics
    ///
    /// Panics if `mems.len()` differs from the lane count or a range is
    /// out of a node memory's bounds.
    pub fn gather(&mut self, view: &LaneView, mems: &[NodeMemory]) {
        assert_eq!(mems.len(), self.nodes, "one node memory per lane");
        let nodes = self.nodes;
        for range in view.ranges().iter().filter(|r| !r.private) {
            // Word-outer, lane-inner: the mirror is written sequentially
            // and each node memory is read as its own sequential stream —
            // both directions the prefetcher likes. The transposed order
            // (lane-outer) would write one cache line per element.
            let srcs: Vec<&[f32]> = mems
                .iter()
                .map(|m| m.slice(range.node_base, range.len))
                .collect();
            let dst =
                &mut self.data[range.lane_base * nodes..(range.lane_base + range.len) * nodes];
            for (w, row) in dst.chunks_exact_mut(nodes).enumerate() {
                for (slot, src) in row.iter_mut().zip(&srcs) {
                    *slot = src[w];
                }
            }
        }
    }

    /// Copies the rectangle `rect` describes from every node's memory
    /// into the mirror.
    ///
    /// This is the lane-domain equivalent of a per-node strided copy: the
    /// plan uses it to refresh a halo buffer's interior directly in the
    /// mirror, without touching the node-side halo storage.
    ///
    /// # Panics
    ///
    /// Panics if `mems.len()` differs from the lane count or a run is out
    /// of bounds on either side.
    pub fn gather_rows(&mut self, mems: &[NodeMemory], rect: &RectCopy) {
        assert_eq!(mems.len(), self.nodes, "one node memory per lane");
        let nodes = self.nodes;
        for r in 0..rect.rows {
            // Word-outer, lane-inner, per run (see `gather`).
            let srcs: Vec<&[f32]> = mems
                .iter()
                .map(|m| m.slice(rect.src0 + r * rect.src_stride, rect.cols))
                .collect();
            let d0 = rect.dst0 + r * rect.dst_stride;
            let dst = &mut self.data[d0 * nodes..(d0 + rect.cols) * nodes];
            for (w, row) in dst.chunks_exact_mut(nodes).enumerate() {
                for (slot, src) in row.iter_mut().zip(&srcs) {
                    *slot = src[w];
                }
            }
        }
    }

    /// Transposes every *writable*, non-private viewed range into staged
    /// node-major buffers (`bufs[i]` holds range `i`'s words for this
    /// group's lanes, one contiguous `len`-word run per lane) instead of
    /// writing node memory — the group-local half of
    /// [`LaneMirror::scatter_stage`].
    fn scatter_to_stage(&self, view: &LaneView, mut bufs: Vec<&mut [f32]>) {
        let nodes = self.nodes;
        let mut it = bufs.iter_mut();
        for range in view.ranges().iter().filter(|r| r.writable && !r.private) {
            let buf = it.next().expect("one staged buffer per writable range");
            let src = &self.data[range.lane_base * nodes..(range.lane_base + range.len) * nodes];
            for (w, row) in src.chunks_exact(nodes).enumerate() {
                for (lane, &value) in row.iter().enumerate() {
                    buf[lane * range.len + w] = value;
                }
            }
        }
    }

    /// Copies every *writable*, non-private viewed range from the mirror
    /// back into `mems`.
    ///
    /// # Panics
    ///
    /// Panics if `mems.len()` differs from the lane count or a range is
    /// out of a node memory's bounds.
    pub fn scatter(&self, view: &LaneView, mems: &mut [NodeMemory]) {
        assert_eq!(mems.len(), self.nodes, "one node memory per lane");
        let nodes = self.nodes;
        for range in view.ranges().iter().filter(|r| r.writable && !r.private) {
            // The mirror is read sequentially; each node memory is
            // written as its own sequential stream (see `gather`).
            let mut dsts: Vec<&mut [f32]> = mems
                .iter_mut()
                .map(|m| m.slice_mut(range.node_base, range.len))
                .collect();
            let src = &self.data[range.lane_base * nodes..(range.lane_base + range.len) * nodes];
            for (w, row) in src.chunks_exact(nodes).enumerate() {
                for (&value, dst) in row.iter().zip(dsts.iter_mut()) {
                    dst[w] = value;
                }
            }
        }
    }
}

/// A persistent lane mirror of the whole machine, partitioned into one
/// [`LaneMemory`] per host worker thread.
///
/// The partition is by contiguous node chunks of `ceil(nodes/threads)`,
/// matching how the lockstep runner splits node memories across threads,
/// so each worker owns exactly one group. Lane-domain copies and fills
/// (the halo exchange translated onto the mirror) address *machine* node
/// indices and cross group boundaries transparently.
///
/// The mirror is meant to live inside a long-lived execution plan: its
/// buffers are recycled across executes, and [`LaneMirror::allocations`]
/// counts every buffer (re)allocation so a steady state can be asserted
/// allocation-free.
#[derive(Debug, Clone, Default)]
pub struct LaneMirror {
    groups: Vec<LaneMemory>,
    nodes: usize,
    chunk: usize,
    words: usize,
    allocations: u64,
    gathered_words: u64,
    row_gathered_words: u64,
    scattered_words: u64,
    lane_copied_words: u64,
}

/// Machine-total words below which mirror copies stay on the calling
/// thread: spawn/join overhead beats the memory bandwidth win for small
/// transfers, and every group already runs serially when the mirror has
/// a single group.
const PAR_COPY_THRESHOLD: usize = 1 << 15;

impl LaneMirror {
    /// An empty mirror; shape it with [`LaneMirror::ensure`].
    pub fn new() -> Self {
        LaneMirror::default()
    }

    /// Shapes the mirror to `words` lane words across `nodes` nodes split
    /// into `threads` contiguous groups (clamped to `1..=nodes`). A
    /// no-op when the shape already matches; otherwise buffers are
    /// recycled where lengths allow and the allocation counter records
    /// every buffer that had to grow or be created. Reshaping leaves the
    /// contents unspecified — gather before running.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero.
    pub fn ensure(&mut self, words: usize, nodes: usize, threads: usize) {
        assert!(nodes > 0, "lane mirror needs at least one node");
        let threads = threads.clamp(1, nodes);
        let chunk = nodes.div_ceil(threads);
        if self.nodes == nodes && self.chunk == chunk && self.words == words {
            return;
        }
        let mut scratch: Vec<Vec<f32>> = self
            .groups
            .drain(..)
            .map(LaneMemory::into_scratch)
            .collect();
        let mut start = 0;
        while start < nodes {
            let group_nodes = chunk.min(nodes - start);
            let buf = scratch.pop().unwrap_or_default();
            if buf.len() != words * group_nodes {
                self.allocations += 1;
            }
            self.groups
                .push(LaneMemory::from_scratch(buf, words, group_nodes));
            start += group_nodes;
        }
        self.nodes = nodes;
        self.chunk = chunk;
        self.words = words;
    }

    /// Total machine nodes mirrored (zero before the first `ensure`).
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Buffer (re)allocations performed since the mirror was created.
    /// Constant across steady-state reuse.
    pub fn allocations(&self) -> u64 {
        self.allocations
    }

    /// Machine-total words copied into the mirror by full-view gathers
    /// since the mirror was created. Monotonic; callers difference it
    /// around a run to attribute traffic.
    pub fn gathered_words(&self) -> u64 {
        self.gathered_words
    }

    /// Machine-total words copied into the mirror by rectangle gathers
    /// ([`LaneMirror::gather_rows`] — the lane-domain interior refresh).
    pub fn row_gathered_words(&self) -> u64 {
        self.row_gathered_words
    }

    /// Machine-total words scattered back to node memories (writable
    /// ranges only).
    pub fn scattered_words(&self) -> u64 {
        self.scattered_words
    }

    /// Words moved between lane columns by [`LaneMirror::copy_lane_run`]
    /// (the lane-domain halo exchange).
    pub fn lane_copied_words(&self) -> u64 {
        self.lane_copied_words
    }

    /// The per-thread groups, mutably — one contiguous node chunk each,
    /// in node order. This is what the lockstep runner fans out over.
    pub fn groups_mut(&mut self) -> &mut [LaneMemory] {
        &mut self.groups
    }

    #[inline]
    fn locate_lane(&self, node: usize) -> (usize, usize) {
        assert!(node < self.nodes, "node out of range");
        (node / self.chunk, node % self.chunk)
    }

    /// Runs `op(group, its node slice)` for every group — on the calling
    /// thread for small transfers, fanned across one host thread per
    /// group when `moved` machine-total words make it worthwhile. Groups
    /// own disjoint contiguous node chunks, so the fan-out is borrow-safe
    /// and (lanes never interacting) bit-deterministic.
    fn for_each_group(
        groups: &mut [LaneMemory],
        mems: &[NodeMemory],
        moved: usize,
        op: impl Fn(&mut LaneMemory, &[NodeMemory]) + Sync,
    ) {
        if groups.len() > 1 && moved >= PAR_COPY_THRESHOLD {
            std::thread::scope(|scope| {
                let mut rest = mems;
                for group in groups.iter_mut() {
                    let (mine, tail) = rest.split_at(group.nodes());
                    rest = tail;
                    let op = &op;
                    scope.spawn(move || op(group, mine));
                }
            });
        } else {
            let mut base = 0;
            for group in groups {
                let n = group.nodes();
                op(group, &mems[base..base + n]);
                base += n;
            }
        }
    }

    /// Copies every non-private viewed range of every node into the
    /// mirror, fanning groups across host threads for large views.
    ///
    /// # Panics
    ///
    /// Panics if `mems.len()` differs from the mirrored node count.
    pub fn gather(&mut self, view: &LaneView, mems: &[NodeMemory]) {
        assert_eq!(mems.len(), self.nodes, "one node memory per lane");
        let moved = view.gather_words() * self.nodes;
        Self::for_each_group(&mut self.groups, mems, moved, |group, mine| {
            group.gather(view, mine);
        });
        self.gathered_words += moved as u64;
    }

    /// Copies every *writable*, non-private viewed range back into node
    /// memories, fanning groups across host threads for large views.
    ///
    /// # Panics
    ///
    /// Panics if `mems.len()` differs from the mirrored node count.
    pub fn scatter(&mut self, view: &LaneView, mems: &mut [NodeMemory]) {
        assert_eq!(mems.len(), self.nodes, "one node memory per lane");
        let moved = view.scatter_words() * self.nodes;
        if self.groups.len() > 1 && moved >= PAR_COPY_THRESHOLD {
            std::thread::scope(|scope| {
                let mut rest = &mut mems[..];
                for group in &self.groups {
                    let (mine, tail) = std::mem::take(&mut rest).split_at_mut(group.nodes());
                    rest = tail;
                    scope.spawn(move || group.scatter(view, mine));
                }
            });
        } else {
            let mut base = 0;
            for group in &self.groups {
                let n = group.nodes();
                group.scatter(view, &mut mems[base..base + n]);
                base += n;
            }
        }
        self.scattered_words += moved as u64;
    }

    /// The region-path counterpart of [`LaneMirror::scatter`]: transposes
    /// every writable, non-private viewed range into `stage`'s node-major
    /// buffers instead of writing node memory. A region-leased execute
    /// holds only a *shared* machine borrow, so its writes are staged
    /// here and committed later with [`RegionStage::apply`] under a brief
    /// exclusive lock. Counts the same scattered words as a direct
    /// scatter (the commit itself counts nothing), so traffic telemetry
    /// is path-independent. Fans groups across host threads for large
    /// views; stage buffers are recycled across executes.
    pub fn scatter_stage(&mut self, view: &LaneView, stage: &mut RegionStage) {
        let moved = view.scatter_words() * self.nodes;
        stage.shape(view, self.nodes, self.chunk);
        // Slice each range's buffer at group boundaries: group `g`'s
        // lanes own the contiguous node-major run `base*len..(base+n)*len`.
        let mut per_group: Vec<Vec<&mut [f32]>> = self.groups.iter().map(|_| Vec::new()).collect();
        for buf in &mut stage.bufs {
            let len = buf.len() / self.nodes;
            let mut rest = &mut buf[..];
            for (g, group) in self.groups.iter().enumerate() {
                let (mine, tail) = std::mem::take(&mut rest).split_at_mut(group.nodes() * len);
                rest = tail;
                per_group[g].push(mine);
            }
        }
        if self.groups.len() > 1 && moved >= PAR_COPY_THRESHOLD {
            std::thread::scope(|scope| {
                for (group, bufs) in self.groups.iter().zip(per_group) {
                    scope.spawn(move || group.scatter_to_stage(view, bufs));
                }
            });
        } else {
            for (group, bufs) in self.groups.iter().zip(per_group) {
                group.scatter_to_stage(view, bufs);
            }
        }
        self.scattered_words += moved as u64;
    }

    /// Copies a rectangle of every node's memory into the mirror — see
    /// [`LaneMemory::gather_rows`]. Fans groups across host threads for
    /// large rectangles.
    ///
    /// # Panics
    ///
    /// Panics if `mems.len()` differs from the mirrored node count or a
    /// run is out of bounds.
    pub fn gather_rows(&mut self, mems: &[NodeMemory], rect: &RectCopy) {
        assert_eq!(mems.len(), self.nodes, "one node memory per lane");
        let moved = rect.rows * rect.cols * self.nodes;
        Self::for_each_group(&mut self.groups, mems, moved, |group, mine| {
            group.gather_rows(mine, rect);
        });
        self.row_gathered_words += moved as u64;
    }

    /// Like [`LaneMirror::gather_rows`], but counts the words as
    /// (partial) gather traffic — used to re-prime individual read-only
    /// ranges after a rebind instead of re-gathering the whole view.
    ///
    /// # Panics
    ///
    /// Panics if `mems.len()` differs from the mirrored node count or a
    /// run is out of bounds.
    pub fn gather_rect(&mut self, mems: &[NodeMemory], rect: &RectCopy) {
        assert_eq!(mems.len(), self.nodes, "one node memory per lane");
        let moved = rect.rows * rect.cols * self.nodes;
        Self::for_each_group(&mut self.groups, mems, moved, |group, mine| {
            group.gather_rows(mine, rect);
        });
        self.gathered_words += moved as u64;
    }

    /// Copies `len` lane words starting at `src` of node `from`'s lane
    /// column into `dst..` of node `to`'s — the lane-domain form of one
    /// halo-exchange copy. Source and destination runs must not overlap
    /// (exchange copies read a halo interior and write the halo ring,
    /// which are disjoint by construction).
    ///
    /// # Panics
    ///
    /// Panics if a node index or word run is out of range.
    pub fn copy_lane_run(&mut self, from: usize, src: usize, to: usize, dst: usize, len: usize) {
        let (gf, lf) = self.locate_lane(from);
        let (gt, lt) = self.locate_lane(to);
        for k in 0..len {
            let value = self.groups[gf].lane_value(src + k, lf);
            self.groups[gt].set_lane_value(dst + k, lt, value);
        }
        self.lane_copied_words += len as u64;
    }

    /// The vectorized form of `count` consecutive [`Self::copy_lane_run`]
    /// calls — node `from0 + i` to node `to0 + i` for `i < count`, all
    /// with the same word runs: per lane word, whole lane sub-slices move
    /// as single slice copies instead of `count × len` scalar transfers.
    /// Segments at thread-group boundaries on either side.
    ///
    /// The source and destination word runs must not overlap (halo
    /// exchange programs copy between disjoint buffers by construction);
    /// the *lane* runs may — within one group `copy_within` handles it.
    ///
    /// # Panics
    ///
    /// Panics if a node index or word run is out of range.
    pub fn copy_lane_span(
        &mut self,
        from0: usize,
        to0: usize,
        count: usize,
        src: usize,
        dst: usize,
        len: usize,
    ) {
        let mut done = 0;
        while done < count {
            let (gf, lf) = self.locate_lane(from0 + done);
            let (gt, lt) = self.locate_lane(to0 + done);
            let seg = (count - done)
                .min(self.groups[gf].nodes() - lf)
                .min(self.groups[gt].nodes() - lt);
            if gf == gt {
                let group = &mut self.groups[gf];
                for w in 0..len {
                    group.copy_lanes_within(src + w, lf, dst + w, lt, seg);
                }
            } else {
                let (lo, hi) = self.groups.split_at_mut(gf.max(gt));
                let (src_g, dst_g) = if gf < gt {
                    (&lo[gf], &mut hi[0])
                } else {
                    (&hi[0], &mut lo[gt])
                };
                for w in 0..len {
                    dst_g
                        .lanes_mut(dst + w, lt, seg)
                        .copy_from_slice(src_g.lanes(src + w, lf, seg));
                }
            }
            done += seg;
        }
        self.lane_copied_words += (count * len) as u64;
    }

    /// Fills `len` lane words starting at `w0` of node `node`'s lane
    /// column with `value` — the lane-domain form of one boundary
    /// zero-fill span.
    ///
    /// # Panics
    ///
    /// Panics if the node index or word run is out of range.
    pub fn fill_lane_run(&mut self, node: usize, w0: usize, len: usize, value: f32) {
        let (g, l) = self.locate_lane(node);
        for k in 0..len {
            self.groups[g].set_lane_value(w0 + k, l, value);
        }
    }
}

/// The writable image of one lane-resident execute, staged off to the
/// side in node-major order.
///
/// Region-leased executes run under a *shared* machine lock (many
/// tenants at once) and therefore cannot scatter into node memory
/// directly. [`LaneMirror::scatter_stage`] transposes the mirror's
/// writable ranges into these buffers while still under the shared lock
/// — the expensive lane-major → node-major transpose — and
/// [`RegionStage::apply`] then commits them under a brief exclusive
/// lock as one contiguous slice copy per (node, range) pair.
///
/// Buffers are recycled across executes (a steady state stages
/// allocation-free), and [`RegionStage::ranges`] exposes exactly which
/// node ranges the commit will touch so the caller can assert they are
/// contained in the execute's leased writable ranges.
#[derive(Debug, Default)]
pub struct RegionStage {
    /// `(node_base, len)` per staged range, in view order.
    ranges: Vec<(usize, usize)>,
    /// One node-major buffer per range: lane `n`'s words at
    /// `n*len..(n+1)*len`.
    bufs: Vec<Vec<f32>>,
    nodes: usize,
    chunk: usize,
}

impl RegionStage {
    /// An empty stage; shaped by the first [`LaneMirror::scatter_stage`].
    pub fn new() -> Self {
        RegionStage::default()
    }

    /// The staged `(node_base, len)` node ranges, in view order. Empty
    /// until the first `scatter_stage`.
    pub fn ranges(&self) -> &[(usize, usize)] {
        &self.ranges
    }

    /// Machine-total staged words.
    pub fn words(&self) -> usize {
        self.ranges.iter().map(|&(_, len)| len).sum::<usize>() * self.nodes
    }

    /// Reshapes to `view`'s writable, non-private ranges, recycling
    /// buffers where sizes allow.
    fn shape(&mut self, view: &LaneView, nodes: usize, chunk: usize) {
        self.nodes = nodes;
        self.chunk = chunk.max(1);
        self.ranges.clear();
        let mut spare = std::mem::take(&mut self.bufs);
        for range in view.ranges().iter().filter(|r| r.writable && !r.private) {
            self.ranges.push((range.node_base, range.len));
            let mut buf = spare.pop().unwrap_or_default();
            buf.resize(range.len * nodes, 0.0);
            self.bufs.push(buf);
        }
    }

    /// Commits the staged image to node memories: per range, each node's
    /// words are one contiguous slice copy. Fans node chunks across host
    /// threads for large stages (bit-deterministic — every (node, range)
    /// destination is disjoint).
    ///
    /// # Panics
    ///
    /// Panics if `mems.len()` differs from the staged node count or a
    /// range is out of a node memory's bounds.
    pub fn apply(&self, mems: &mut [NodeMemory]) {
        assert_eq!(mems.len(), self.nodes, "one node memory per staged lane");
        let total = self.words();
        if self.nodes > self.chunk && total >= PAR_COPY_THRESHOLD {
            std::thread::scope(|scope| {
                let mut rest = &mut mems[..];
                let mut base = 0;
                while !rest.is_empty() {
                    let n = self.chunk.min(rest.len());
                    let (mine, tail) = std::mem::take(&mut rest).split_at_mut(n);
                    rest = tail;
                    scope.spawn(move || self.apply_chunk(mine, base));
                    base += n;
                }
            });
        } else {
            self.apply_chunk(mems, 0);
        }
    }

    fn apply_chunk(&self, mems: &mut [NodeMemory], base: usize) {
        for (i, m) in mems.iter_mut().enumerate() {
            let node = base + i;
            for (&(node_base, len), buf) in self.ranges.iter().zip(&self.bufs) {
                m.slice_mut(node_base, len)
                    .copy_from_slice(&buf[node * len..(node + 1) * len]);
            }
        }
    }
}

/// A bounded free-list of [`LaneMirror`]s shared across plan instances.
///
/// Tenants of a concurrent session come and go, and each instance owns a
/// mirror sized `view.words() × nodes`. Without pooling, every new
/// instance pays a fresh mirror allocation even when an identically
/// shaped tenant just retired. The pool recycles retired mirrors:
/// [`MirrorPool::take`] hands out the most recently returned one (its
/// buffers are reshaped by the next `ensure`, which is a no-op when the
/// shape matches — [`LaneMirror::allocations`] then stays flat), and
/// [`MirrorPool::put`] accepts a mirror back until the pool is full.
///
/// The pool is a plain mutex around a vec: take/put happen once per
/// instance creation/retirement, never on the per-iteration path.
#[derive(Debug, Default)]
pub struct MirrorPool {
    free: std::sync::Mutex<Vec<LaneMirror>>,
    capacity: usize,
    reused: std::sync::atomic::AtomicU64,
    returned: std::sync::atomic::AtomicU64,
    missed: std::sync::atomic::AtomicU64,
}

impl MirrorPool {
    /// An empty pool holding at most `capacity` retired mirrors.
    pub fn new(capacity: usize) -> Self {
        MirrorPool {
            free: std::sync::Mutex::new(Vec::new()),
            capacity,
            reused: std::sync::atomic::AtomicU64::new(0),
            returned: std::sync::atomic::AtomicU64::new(0),
            missed: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// The most retired mirrors the pool will hold.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Hands out a pooled mirror, or a fresh empty one when the pool is
    /// dry. Pooled contents are unspecified — prime before use.
    pub fn take(&self) -> LaneMirror {
        self.take_counted().0
    }

    /// Like [`MirrorPool::take`], but also reports whether the take
    /// missed (found the free list empty and had to hand out a fresh
    /// mirror) — the signal the session turns into its
    /// `mirror_pool_misses` telemetry.
    pub fn take_counted(&self) -> (LaneMirror, bool) {
        let mut free = self.free.lock().unwrap_or_else(|e| e.into_inner());
        match free.pop() {
            Some(m) => {
                self.reused
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                (m, false)
            }
            None => {
                self.missed
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                (LaneMirror::new(), true)
            }
        }
    }

    /// Returns a retired mirror to the pool; dropped when the pool is
    /// full or the mirror never allocated (nothing worth recycling).
    pub fn put(&self, mirror: LaneMirror) {
        if mirror.nodes() == 0 {
            return;
        }
        let mut free = self.free.lock().unwrap_or_else(|e| e.into_inner());
        if free.len() < self.capacity {
            free.push(mirror);
            self.returned
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }
    }

    /// Mirrors currently waiting in the pool.
    pub fn len(&self) -> usize {
        self.free.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Whether the pool is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// How many takes were served from the pool instead of allocating.
    pub fn reuses(&self) -> u64 {
        self.reused.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// How many retired mirrors were accepted back into the pool.
    pub fn returns(&self) -> u64 {
        self.returned.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// How many takes found the pool dry and allocated a fresh mirror.
    /// The first take per distinct shape always misses; a steadily
    /// climbing count under a stable tenant load means the capacity is
    /// too small for the working set.
    pub fn misses(&self) -> u64 {
        self.missed.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Drops every pooled mirror (their host buffers free immediately).
    pub fn clear(&self) {
        self.free.lock().unwrap_or_else(|e| e.into_inner()).clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn view_assigns_lane_words_in_order() {
        let view = LaneView::new(&[(100, 4, false), (10, 2, true)]).unwrap();
        assert_eq!(view.words(), 6);
        assert_eq!(view.locate(100), Some((0, &view.ranges()[0])));
        assert_eq!(view.locate(103).unwrap().0, 3);
        assert_eq!(view.locate(10).unwrap().0, 4);
        assert_eq!(view.locate(11).unwrap().0, 5);
        assert!(view.locate(104).is_none());
        assert!(view.locate(12).is_none());
        assert!(view.locate(0).is_none());
    }

    #[test]
    fn overlapping_or_empty_ranges_are_rejected() {
        assert!(LaneView::new(&[(0, 4, false), (3, 4, false)]).is_none());
        assert!(LaneView::new(&[(0, 4, false), (0, 4, true)]).is_none());
        assert!(LaneView::new(&[(0, 0, false)]).is_none());
        // Touching (adjacent) ranges are fine.
        assert!(LaneView::new(&[(0, 4, false), (4, 4, false)]).is_some());
    }

    #[test]
    fn gather_transposes_node_major() {
        let view = LaneView::new(&[(2, 3, true)]).unwrap();
        let mut mems: Vec<NodeMemory> = (0..2).map(|_| NodeMemory::new(8)).collect();
        for (n, mem) in mems.iter_mut().enumerate() {
            for w in 0..3 {
                mem.write(2 + w, (10 * n + w) as f32);
            }
        }
        let mut lanes = LaneMemory::new(view.words(), 2);
        lanes.gather(&view, &mems);
        assert_eq!(lanes.word(0), &[0.0, 10.0]);
        assert_eq!(lanes.word(1), &[1.0, 11.0]);
        assert_eq!(lanes.word(2), &[2.0, 12.0]);
    }

    #[test]
    fn scatter_writes_only_writable_ranges() {
        let view = LaneView::new(&[(0, 2, false), (4, 2, true)]).unwrap();
        let mut mems: Vec<NodeMemory> = (0..2).map(|_| NodeMemory::new(8)).collect();
        let mut lanes = LaneMemory::new(view.words(), 2);
        for w in 0..4 {
            lanes
                .word_mut(w)
                .copy_from_slice(&[(w) as f32, (w + 10) as f32]);
        }
        lanes.scatter(&view, &mut mems);
        // Read-only range untouched…
        assert_eq!(mems[0].read(0), 0.0);
        assert_eq!(mems[1].read(1), 0.0);
        // …writable range landed, lane-per-node.
        assert_eq!(mems[0].read(4), 2.0);
        assert_eq!(mems[1].read(4), 12.0);
        assert_eq!(mems[0].read(5), 3.0);
        assert_eq!(mems[1].read(5), 13.0);
    }

    #[test]
    fn private_ranges_are_skipped_by_gather_and_scatter() {
        // word layout: [ro 0..2, private rw 4..6, rw 8..10]
        let view = LaneView::new_with_private(&[
            (0, 2, false, false),
            (4, 2, true, true),
            (8, 2, true, false),
        ])
        .unwrap();
        assert_eq!(view.words(), 6);
        assert_eq!(view.gather_words(), 4);
        assert_eq!(view.scatter_words(), 2);
        let mut mems: Vec<NodeMemory> = (0..2).map(|_| NodeMemory::new(12)).collect();
        for (n, mem) in mems.iter_mut().enumerate() {
            mem.write(4, 100.0 + n as f32);
            mem.write(5, 200.0 + n as f32);
        }
        let mut lanes = LaneMemory::new(view.words(), 2);
        for w in 0..6 {
            lanes
                .word_mut(w)
                .copy_from_slice(&[w as f32, (w + 10) as f32]);
        }
        lanes.gather(&view, &mems);
        // Private lane words survive the gather untouched…
        assert_eq!(lanes.word(2), &[2.0, 12.0]);
        assert_eq!(lanes.word(3), &[3.0, 13.0]);
        // …while the plain writable range was gathered over. Emulate a
        // kernel rewriting it so the scatter has something to land.
        lanes.word_mut(4).copy_from_slice(&[4.0, 14.0]);
        lanes.word_mut(5).copy_from_slice(&[5.0, 15.0]);
        lanes.scatter(&view, &mut mems);
        // …and the node image behind them survives the scatter.
        assert_eq!(mems[0].read(4), 100.0);
        assert_eq!(mems[1].read(5), 201.0);
        // The plain writable range still lands.
        assert_eq!(mems[0].read(8), 4.0);
        assert_eq!(mems[1].read(9), 15.0);
    }

    #[test]
    fn mirror_threaded_copies_match_serial_for_large_views() {
        // 4 nodes over 2 groups, view big enough to cross the fan-out
        // threshold: threaded gather/scatter must be bitwise identical
        // to the single-group serial path.
        let words = PAR_COPY_THRESHOLD / 2;
        let view = LaneView::new(&[(0, words, true)]).unwrap();
        let mut mems: Vec<NodeMemory> = (0..4).map(|_| NodeMemory::new(words)).collect();
        for (n, mem) in mems.iter_mut().enumerate() {
            for w in 0..words {
                mem.write(w, (n * 7 + w) as f32 * 0.5);
            }
        }
        let mut par = LaneMirror::new();
        par.ensure(words, 4, 2);
        par.gather(&view, &mems);
        let mut ser = LaneMirror::new();
        ser.ensure(words, 4, 1);
        ser.gather(&view, &mems);
        let mut out_par: Vec<NodeMemory> = (0..4).map(|_| NodeMemory::new(words)).collect();
        let mut out_ser = out_par.clone();
        par.scatter(&view, &mut out_par);
        ser.scatter(&view, &mut out_ser);
        assert_eq!(out_par, out_ser);
        assert_eq!(out_par, mems);
        assert_eq!(par.gathered_words(), ser.gathered_words());
        assert_eq!(par.scattered_words(), ser.scattered_words());
    }

    #[test]
    fn mirror_partitions_nodes_into_contiguous_groups() {
        let view = LaneView::new(&[(0, 3, true)]).unwrap();
        let mut mems: Vec<NodeMemory> = (0..5).map(|_| NodeMemory::new(8)).collect();
        for (n, mem) in mems.iter_mut().enumerate() {
            for w in 0..3 {
                mem.write(w, (100 * n + w) as f32);
            }
        }
        // 5 nodes over 2 threads → chunks of 3 and 2.
        let mut mirror = LaneMirror::new();
        mirror.ensure(view.words(), 5, 2);
        assert_eq!(mirror.groups_mut().len(), 2);
        assert_eq!(mirror.groups_mut()[0].nodes(), 3);
        assert_eq!(mirror.groups_mut()[1].nodes(), 2);
        mirror.gather(&view, &mems);
        assert_eq!(mirror.groups_mut()[0].word(1), &[1.0, 101.0, 201.0]);
        assert_eq!(mirror.groups_mut()[1].word(1), &[301.0, 401.0]);
        // Scatter lands every lane back in its own node.
        let mut out: Vec<NodeMemory> = (0..5).map(|_| NodeMemory::new(8)).collect();
        mirror.scatter(&view, &mut out);
        for (n, mem) in out.iter().enumerate() {
            for w in 0..3 {
                assert_eq!(mem.read(w), (100 * n + w) as f32);
            }
        }
    }

    #[test]
    fn mirror_reuse_performs_no_allocations() {
        let mut mirror = LaneMirror::new();
        mirror.ensure(6, 4, 2);
        let after_first = mirror.allocations();
        assert!(after_first > 0);
        for _ in 0..10 {
            mirror.ensure(6, 4, 2);
        }
        assert_eq!(
            mirror.allocations(),
            after_first,
            "steady-state ensure reallocates"
        );
        // Reshaping to the same total lengths recycles the buffers.
        mirror.ensure(6, 4, 2);
        assert_eq!(mirror.allocations(), after_first);
    }

    #[test]
    fn mirror_copies_lane_runs_across_group_boundaries() {
        let mut mirror = LaneMirror::new();
        mirror.ensure(4, 4, 2); // two groups of 2 nodes
        for w in 0..4 {
            mirror.fill_lane_run(1, w, 1, (10 + w) as f32);
        }
        // node 1 (group 0) → node 3 (group 1)
        mirror.copy_lane_run(1, 1, 3, 0, 3);
        assert_eq!(mirror.groups_mut()[1].lane_value(0, 1), 11.0);
        assert_eq!(mirror.groups_mut()[1].lane_value(1, 1), 12.0);
        assert_eq!(mirror.groups_mut()[1].lane_value(2, 1), 13.0);
        // Same-group copy: node 3 → node 2.
        mirror.copy_lane_run(3, 0, 2, 0, 2);
        assert_eq!(mirror.groups_mut()[1].lane_value(0, 0), 11.0);
        assert_eq!(mirror.groups_mut()[1].lane_value(1, 0), 12.0);
        // Untouched lanes stay zero.
        assert_eq!(mirror.groups_mut()[0].lane_value(0, 0), 0.0);
    }

    /// `copy_lane_span` must equal `count` scalar `copy_lane_run`s for
    /// every segmentation the group layout can force: spans fully inside
    /// one group (including overlapping source/destination lane runs,
    /// the `copy_within` path), spans crossing a group boundary on one
    /// side only, and spans that segment at different points on the two
    /// sides because source and destination straddle the boundary at
    /// different offsets.
    #[test]
    fn span_copy_segments_exactly_like_scalar_runs() {
        // 7 nodes over 3 threads → groups of 3, 2, 2: boundaries at
        // nodes 3 and 5.
        let (words, nodes, threads, len) = (6, 7, 3, 2);
        let fresh = || {
            let mut mirror = LaneMirror::new();
            mirror.ensure(words, nodes, threads);
            for node in 0..nodes {
                for w in 0..words {
                    mirror.fill_lane_run(node, w, 1, (node * 100 + w * 7) as f32);
                }
            }
            mirror
        };
        // (from0, to0, count): same-group overlap, boundary-crossing,
        // asymmetric straddle (source crosses at node 3 while the
        // destination crosses at node 5), and a whole-machine sweep.
        let cases = [(0, 1, 2), (1, 4, 3), (2, 4, 3), (0, 0, 7), (5, 1, 2)];
        for (from0, to0, count) in cases {
            let mut spanned = fresh();
            spanned.copy_lane_span(from0, to0, count, 1, 4, len);
            let mut scalar = fresh();
            for i in 0..count {
                scalar.copy_lane_run(from0 + i, 1, to0 + i, 4, len);
            }
            assert_eq!(
                spanned.lane_copied_words(),
                scalar.lane_copied_words(),
                "span ({from0},{to0},{count}): word accounting diverged"
            );
            for node in 0..nodes {
                for w in 0..words {
                    let (g, l) = spanned.locate_lane(node);
                    assert_eq!(
                        spanned.groups_mut()[g].lane_value(w, l),
                        scalar.groups_mut()[g].lane_value(w, l),
                        "span ({from0},{to0},{count}): node {node} word {w}"
                    );
                }
            }
        }
    }

    #[test]
    fn mirror_gather_rows_mirrors_a_node_rectangle() {
        let mut mems: Vec<NodeMemory> = (0..3).map(|_| NodeMemory::new(16)).collect();
        for (n, mem) in mems.iter_mut().enumerate() {
            for w in 0..16 {
                mem.write(w, (100 * n + w) as f32);
            }
        }
        let mut mirror = LaneMirror::new();
        mirror.ensure(12, 3, 3); // one node per group
                                 // 2 rows × 3 cols from node address 4, stride 4 → lane words 1..,
                                 // stride 5.
        mirror.gather_rows(
            &mems,
            &RectCopy {
                src0: 4,
                src_stride: 4,
                dst0: 1,
                dst_stride: 5,
                rows: 2,
                cols: 3,
            },
        );
        for n in 0..3 {
            assert_eq!(
                mirror.groups_mut()[n].lane_value(1, 0),
                (100 * n + 4) as f32
            );
            assert_eq!(
                mirror.groups_mut()[n].lane_value(3, 0),
                (100 * n + 6) as f32
            );
            assert_eq!(
                mirror.groups_mut()[n].lane_value(6, 0),
                (100 * n + 8) as f32
            );
            assert_eq!(
                mirror.groups_mut()[n].lane_value(8, 0),
                (100 * n + 10) as f32
            );
        }
    }

    #[test]
    fn gather_scatter_round_trips() {
        let view = LaneView::new(&[(1, 5, true)]).unwrap();
        let mut mems: Vec<NodeMemory> = (0..3).map(|_| NodeMemory::new(8)).collect();
        for (n, mem) in mems.iter_mut().enumerate() {
            for w in 0..5 {
                mem.write(1 + w, (n * 100 + w * 7) as f32);
            }
        }
        let before: Vec<NodeMemory> = mems.clone();
        let mut lanes = LaneMemory::new(view.words(), 3);
        lanes.gather(&view, &mems);
        lanes.scatter(&view, &mut mems);
        assert_eq!(mems, before);
    }

    #[test]
    fn mirror_pool_recycles_shaped_mirrors_without_reallocating() {
        let pool = MirrorPool::new(2);
        assert!(pool.is_empty());

        // A fresh take allocates nothing by itself; shaping it does.
        let mut m = pool.take();
        assert_eq!(pool.reuses(), 0);
        m.ensure(6, 4, 2);
        let allocs = m.allocations();
        assert!(allocs > 0);

        // Unshaped mirrors are not worth pooling.
        pool.put(LaneMirror::new());
        assert!(pool.is_empty());

        pool.put(m);
        assert_eq!(pool.len(), 1);
        assert_eq!(pool.returns(), 1);

        // A same-shape tenant reuses the buffers: `ensure` is a no-op
        // and the allocation counter stays flat.
        let mut again = pool.take();
        assert_eq!(pool.reuses(), 1);
        again.ensure(6, 4, 2);
        assert_eq!(again.allocations(), allocs);

        // The pool is bounded: a third return on capacity 2 is dropped.
        pool.put(again);
        let mut b = LaneMirror::new();
        b.ensure(3, 2, 1);
        let mut c = LaneMirror::new();
        c.ensure(3, 2, 1);
        pool.put(b);
        pool.put(c);
        assert_eq!(pool.len(), 2);

        pool.clear();
        assert!(pool.is_empty());
    }
}
