//! Node-major lane storage for the lockstep SIMD executor.
//!
//! The CM-2 broadcast one instruction stream to every node at once
//! (§4.3: the dynamic parts are streamed cycle by cycle to *all* FPUs).
//! The scalar interpreter inverts that — node-outer, step-inner — and so
//! pays instruction dispatch once per node per step. The lockstep
//! executor restores the machine's own loop order: step-outer,
//! node-inner. To make the node-inner sweep a contiguous vector
//! operation, [`LaneMemory`] stores the *same word of every node side by
//! side*: word `w` of nodes `0..n` lives at `w*n .. (w+1)*n`. One
//! [`crate::exec::ResolvedPart`] then turns into one fused
//! multiply-add swept over a contiguous `&mut [f32]` of node lanes —
//! exactly the shape LLVM autovectorizes.
//!
//! Node memory is large and mostly untouched by any one kernel, so the
//! lane mirror covers only the address ranges a plan actually references:
//! a [`LaneView`] records those ranges once (halo buffers, constant
//! pages, coefficient arrays, the result array) and provides the
//! node-address → lane-word translation plus the gather/scatter that
//! moves data between per-node memories and the lane mirror around a
//! lockstep run. Only ranges marked writable are scattered back, so
//! read-only operands (halos, coefficients) cost one copy per run, not
//! two.

use crate::memory::NodeMemory;

/// One contiguous node-memory range mirrored into lane storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaneRange {
    /// First node-memory address of the range.
    pub node_base: usize,
    /// First lane word (index into the mirror, in words) of the range.
    pub lane_base: usize,
    /// Length in words.
    pub len: usize,
    /// Whether kernels may store into the range (only writable ranges
    /// are scattered back to node memory after a lockstep run).
    pub writable: bool,
}

impl LaneRange {
    fn contains(&self, addr: usize) -> bool {
        addr >= self.node_base && addr < self.node_base + self.len
    }
}

/// The address map of a lockstep execution: which node-memory ranges are
/// mirrored into lane storage, and where each lands.
///
/// Built once per execution plan. Ranges keep their insertion order, so
/// rebuilding a view from same-length ranges (a plan rebind: the result
/// array moved, its length did not) yields identical lane addresses —
/// pre-translated strips stay valid and only the gather/scatter bases
/// change.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LaneView {
    ranges: Vec<LaneRange>,
    words: usize,
}

impl LaneView {
    /// Builds a view over `(node_base, len, writable)` ranges, assigning
    /// lane words in order.
    ///
    /// Returns `None` when any two ranges overlap in node memory (the
    /// caller bound one array to two roles; the scalar engine handles
    /// that aliasing, the lane mirror cannot) or when a range is empty.
    pub fn new(ranges: &[(usize, usize, bool)]) -> Option<LaneView> {
        let mut out = Vec::with_capacity(ranges.len());
        let mut lane_base = 0;
        for &(node_base, len, writable) in ranges {
            if len == 0 {
                return None;
            }
            out.push(LaneRange {
                node_base,
                lane_base,
                len,
                writable,
            });
            lane_base += len;
        }
        // Overlap check: sort by node base, adjacent ranges must not meet.
        let mut sorted: Vec<&LaneRange> = out.iter().collect();
        sorted.sort_by_key(|r| r.node_base);
        for pair in sorted.windows(2) {
            if pair[0].node_base + pair[0].len > pair[1].node_base {
                return None;
            }
        }
        Some(LaneView {
            ranges: out,
            words: lane_base,
        })
    }

    /// Total lane words the view mirrors.
    pub fn words(&self) -> usize {
        self.words
    }

    /// The mirrored ranges, in insertion order.
    pub fn ranges(&self) -> &[LaneRange] {
        &self.ranges
    }

    /// The range containing node address `addr`, and the address's lane
    /// word within the mirror. `None` when the address is outside every
    /// range.
    pub fn locate(&self, addr: usize) -> Option<(usize, &LaneRange)> {
        self.ranges
            .iter()
            .find(|r| r.contains(addr))
            .map(|r| (r.lane_base + (addr - r.node_base), r))
    }
}

/// The lane mirror: every viewed word of every node, node-major.
///
/// Word `w`'s lanes occupy `data[w*nodes .. (w+1)*nodes]`, one entry per
/// node, in node order. A group of host threads may each own a
/// `LaneMemory` over a disjoint contiguous slice of the machine's nodes;
/// lanes never interact, so the partition is invisible to results.
#[derive(Debug, Clone, PartialEq)]
pub struct LaneMemory {
    data: Vec<f32>,
    nodes: usize,
}

impl LaneMemory {
    /// Allocates a zeroed mirror of `words` lane words across `nodes`
    /// lanes.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero.
    pub fn new(words: usize, nodes: usize) -> Self {
        assert!(nodes > 0, "lane memory needs at least one lane");
        LaneMemory {
            data: vec![0.0; words * nodes],
            nodes,
        }
    }

    /// Builds a mirror of `words × nodes` reusing `scratch`'s allocation
    /// (resized only when the required length changed). The initial
    /// contents are unspecified — callers must [`LaneMemory::gather`]
    /// before running, which overwrites every viewed word.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero.
    pub fn from_scratch(mut scratch: Vec<f32>, words: usize, nodes: usize) -> Self {
        assert!(nodes > 0, "lane memory needs at least one lane");
        let needed = words * nodes;
        if scratch.len() != needed {
            scratch.clear();
            scratch.resize(needed, 0.0);
        }
        LaneMemory {
            data: scratch,
            nodes,
        }
    }

    /// Consumes the mirror, returning its allocation for reuse via
    /// [`LaneMemory::from_scratch`].
    pub fn into_scratch(self) -> Vec<f32> {
        self.data
    }

    /// Number of node lanes.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// All lanes of lane word `w`.
    ///
    /// # Panics
    ///
    /// Panics if `w` is out of range.
    #[inline]
    pub fn word(&self, w: usize) -> &[f32] {
        &self.data[w * self.nodes..(w + 1) * self.nodes]
    }

    /// All lanes of lane word `w`, mutably.
    ///
    /// # Panics
    ///
    /// Panics if `w` is out of range.
    #[inline]
    pub fn word_mut(&mut self, w: usize) -> &mut [f32] {
        &mut self.data[w * self.nodes..(w + 1) * self.nodes]
    }

    /// Copies every viewed range from `mems` (one per lane, in order)
    /// into the mirror.
    ///
    /// # Panics
    ///
    /// Panics if `mems.len()` differs from the lane count or a range is
    /// out of a node memory's bounds.
    pub fn gather(&mut self, view: &LaneView, mems: &[NodeMemory]) {
        assert_eq!(mems.len(), self.nodes, "one node memory per lane");
        let nodes = self.nodes;
        for range in view.ranges() {
            // Word-outer, lane-inner: the mirror is written sequentially
            // and each node memory is read as its own sequential stream —
            // both directions the prefetcher likes. The transposed order
            // (lane-outer) would write one cache line per element.
            let srcs: Vec<&[f32]> = mems
                .iter()
                .map(|m| m.slice(range.node_base, range.len))
                .collect();
            let dst =
                &mut self.data[range.lane_base * nodes..(range.lane_base + range.len) * nodes];
            for (w, row) in dst.chunks_exact_mut(nodes).enumerate() {
                for (slot, src) in row.iter_mut().zip(&srcs) {
                    *slot = src[w];
                }
            }
        }
    }

    /// Copies every *writable* viewed range from the mirror back into
    /// `mems`.
    ///
    /// # Panics
    ///
    /// Panics if `mems.len()` differs from the lane count or a range is
    /// out of a node memory's bounds.
    pub fn scatter(&self, view: &LaneView, mems: &mut [NodeMemory]) {
        assert_eq!(mems.len(), self.nodes, "one node memory per lane");
        let nodes = self.nodes;
        for range in view.ranges().iter().filter(|r| r.writable) {
            // The mirror is read sequentially; each node memory is
            // written as its own sequential stream (see `gather`).
            let mut dsts: Vec<&mut [f32]> = mems
                .iter_mut()
                .map(|m| m.slice_mut(range.node_base, range.len))
                .collect();
            let src = &self.data[range.lane_base * nodes..(range.lane_base + range.len) * nodes];
            for (w, row) in src.chunks_exact(nodes).enumerate() {
                for (&value, dst) in row.iter().zip(dsts.iter_mut()) {
                    dst[w] = value;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn view_assigns_lane_words_in_order() {
        let view = LaneView::new(&[(100, 4, false), (10, 2, true)]).unwrap();
        assert_eq!(view.words(), 6);
        assert_eq!(view.locate(100), Some((0, &view.ranges()[0])));
        assert_eq!(view.locate(103).unwrap().0, 3);
        assert_eq!(view.locate(10).unwrap().0, 4);
        assert_eq!(view.locate(11).unwrap().0, 5);
        assert!(view.locate(104).is_none());
        assert!(view.locate(12).is_none());
        assert!(view.locate(0).is_none());
    }

    #[test]
    fn overlapping_or_empty_ranges_are_rejected() {
        assert!(LaneView::new(&[(0, 4, false), (3, 4, false)]).is_none());
        assert!(LaneView::new(&[(0, 4, false), (0, 4, true)]).is_none());
        assert!(LaneView::new(&[(0, 0, false)]).is_none());
        // Touching (adjacent) ranges are fine.
        assert!(LaneView::new(&[(0, 4, false), (4, 4, false)]).is_some());
    }

    #[test]
    fn gather_transposes_node_major() {
        let view = LaneView::new(&[(2, 3, true)]).unwrap();
        let mut mems: Vec<NodeMemory> = (0..2).map(|_| NodeMemory::new(8)).collect();
        for (n, mem) in mems.iter_mut().enumerate() {
            for w in 0..3 {
                mem.write(2 + w, (10 * n + w) as f32);
            }
        }
        let mut lanes = LaneMemory::new(view.words(), 2);
        lanes.gather(&view, &mems);
        assert_eq!(lanes.word(0), &[0.0, 10.0]);
        assert_eq!(lanes.word(1), &[1.0, 11.0]);
        assert_eq!(lanes.word(2), &[2.0, 12.0]);
    }

    #[test]
    fn scatter_writes_only_writable_ranges() {
        let view = LaneView::new(&[(0, 2, false), (4, 2, true)]).unwrap();
        let mut mems: Vec<NodeMemory> = (0..2).map(|_| NodeMemory::new(8)).collect();
        let mut lanes = LaneMemory::new(view.words(), 2);
        for w in 0..4 {
            lanes
                .word_mut(w)
                .copy_from_slice(&[(w) as f32, (w + 10) as f32]);
        }
        lanes.scatter(&view, &mut mems);
        // Read-only range untouched…
        assert_eq!(mems[0].read(0), 0.0);
        assert_eq!(mems[1].read(1), 0.0);
        // …writable range landed, lane-per-node.
        assert_eq!(mems[0].read(4), 2.0);
        assert_eq!(mems[1].read(4), 12.0);
        assert_eq!(mems[0].read(5), 3.0);
        assert_eq!(mems[1].read(5), 13.0);
    }

    #[test]
    fn gather_scatter_round_trips() {
        let view = LaneView::new(&[(1, 5, true)]).unwrap();
        let mut mems: Vec<NodeMemory> = (0..3).map(|_| NodeMemory::new(8)).collect();
        for (n, mem) in mems.iter_mut().enumerate() {
            for w in 0..5 {
                mem.write(1 + w, (n * 100 + w * 7) as f32);
            }
        }
        let before: Vec<NodeMemory> = mems.clone();
        let mut lanes = LaneMemory::new(view.words(), 3);
        lanes.gather(&view, &mems);
        lanes.scatter(&view, &mut mems);
        assert_eq!(mems, before);
    }
}
