//! Machine configuration: sizes, clock rate, and the latency/overhead
//! constants of the cycle model.
//!
//! Every constant is motivated by a sentence of the PLDI 1991 paper; the
//! citation is given next to each field. Two presets are provided:
//! [`MachineConfig::test_board_16`], the 16-node single-board machine on
//! which the paper's measurements were taken, and
//! [`MachineConfig::full_machine_2048`], the full 65,536-processor CM-2
//! (2,048 floating-point nodes) to which the paper extrapolates.

/// Number of 32-bit registers in the Weitek WTL3164 register file.
///
/// Paper §5.3: "The 32 internal registers of the floating-point unit".
pub const FPU_REGISTERS: usize = 32;

/// Configuration of a simulated CM-2.
///
/// # Examples
///
/// ```
/// use cmcc_cm2::config::MachineConfig;
///
/// let cfg = MachineConfig::test_board_16();
/// assert_eq!(cfg.node_count(), 16);
/// let full = MachineConfig::full_machine_2048();
/// assert_eq!(full.node_count(), 2048);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MachineConfig {
    /// Node grid rows (nodes are arranged in a 2-D grid; paper §5:
    /// "if there were only 16 nodes, they would be arranged as a 4×4 grid").
    pub grid_rows: usize,
    /// Node grid columns.
    pub grid_cols: usize,
    /// Clock rate in Hz. Paper §7: "In all cases the clock rate of the
    /// Connection Machine system was 7 MHz."
    pub clock_hz: f64,
    /// Per-node memory size in 32-bit words (slicewise format).
    pub node_memory_words: usize,
    /// Cycles between issuing a load and the value being readable from the
    /// register file. Paper §5.3: "the presence of the interface chip
    /// between the floating-point unit and memory introduces a cycle of
    /// latency. This latency is overcome by pipelining."
    pub load_commit_latency: u32,
    /// Cycles between issuing the final multiply-add of a chain and the sum
    /// being readable in its destination register. Paper §4.2: "a
    /// multiplication started on cycle k will become an operand of the
    /// addition started on cycle k+2; the result of that addition will be
    /// stored into the destination register on cycle k+4."
    pub mac_commit_latency: u32,
    /// Issue cycles per chained multiply-add step. **Calibrated, not
    /// cited**: the paper's sustained rates (9-point patterns at 85–92
    /// Mflops on 16 nodes, i.e. ≈21 cycles per point at width 8) are only
    /// reachable if each multiply-add paces at two clocks — consistent
    /// with the coefficient stream and the dynamic-part issue sharing the
    /// path to memory. Loads and stores remain single transfers. See
    /// EXPERIMENTS.md for the calibration derivation.
    pub mac_issue_cycles: u32,
    /// Penalty cycles whenever the memory-interface pipe changes direction
    /// (loads/coefficient streaming vs. stores). Paper §5.3: "there is a
    /// penalty every time the direction of this pipe is reversed."
    pub pipe_reversal_penalty: u32,
    /// Sequencer cycles per microcode line iteration (loop bookkeeping).
    /// Paper §4.3: "changing the counter to a new value ties up the ALU for
    /// one cycle" and "one cannot perform a simple conditional branch ...
    /// on the same cycle that one is issuing a dynamic floating-point
    /// instruction part" — the loop-back branch needs its own cycle.
    pub line_loop_overhead: u32,
    /// Sequencer cycles to start up the microcode loop for one half-strip
    /// (latch the static instruction part, set counters, compute base
    /// addresses from run-time parameters). Paper §5.2: "additional
    /// overhead for having to start up the microcode loop twice as many
    /// times" — this is that per-startup cost.
    pub halfstrip_startup_cycles: u32,
    /// Front-end (host) cycles, expressed in CM clock cycles, to dispatch
    /// one microcode call. Paper §7: "the microcode loops are so fast that
    /// the front end computer is hard pressed to keep up."
    pub frontend_dispatch_cycles: u32,
    /// Front-end cycles of fixed overhead per whole stencil call (argument
    /// checking, temporary allocation bookkeeping in the run-time library).
    pub call_overhead_cycles: u32,
    /// Communication: startup cycles per grid-exchange step.
    pub comm_startup_cycles: u32,
    /// Communication: cycles per 32-bit element per hop. One bit-serial
    /// wire pair per hypercube edge at twice the single-wire bandwidth
    /// (paper §3: nodes form an 11-cube "where each edge ... has two
    /// communications wires along it"); a 32-bit word therefore costs on
    /// the order of 16 cycles per element per direction.
    pub comm_cycles_per_element: u32,
}

impl MachineConfig {
    /// The 16-node single-board machine used for the paper's measurements
    /// (§7: "small 16-node single-board machines that are used within
    /// Thinking Machines Corporation for software testing").
    pub fn test_board_16() -> Self {
        MachineConfig {
            grid_rows: 4,
            grid_cols: 4,
            clock_hz: 7.0e6,
            node_memory_words: 1 << 22,
            load_commit_latency: 2,
            mac_commit_latency: 4,
            mac_issue_cycles: 2,
            pipe_reversal_penalty: 2,
            line_loop_overhead: 2,
            halfstrip_startup_cycles: 40,
            frontend_dispatch_cycles: 600,
            call_overhead_cycles: 4000,
            comm_startup_cycles: 64,
            comm_cycles_per_element: 16,
        }
    }

    /// A full-size CM-2: 65,536 bit-serial processors = 2,048 FPU nodes,
    /// arranged here as a 64×32 node grid (paper §3).
    pub fn full_machine_2048() -> Self {
        MachineConfig {
            grid_rows: 64,
            grid_cols: 32,
            ..Self::test_board_16()
        }
    }

    /// A tiny 2×2 machine for fast unit tests.
    pub fn tiny_4() -> Self {
        MachineConfig {
            grid_rows: 2,
            grid_cols: 2,
            node_memory_words: 1 << 18,
            ..Self::test_board_16()
        }
    }

    /// Total number of floating-point nodes.
    pub fn node_count(&self) -> usize {
        self.grid_rows * self.grid_cols
    }

    /// Peak flop rate: two floating-point operations (one multiply and one
    /// add) per node per cycle (paper §4.2: "chained multiply-add
    /// operations ... allowing two floating-point operations to occur per
    /// clock cycle").
    pub fn peak_flops(&self) -> f64 {
        2.0 * self.clock_hz * self.node_count() as f64
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a message if any dimension is zero or a latency is
    /// implausible (a MAC that commits before it issues, say).
    pub fn validate(&self) -> Result<(), String> {
        if self.grid_rows == 0 || self.grid_cols == 0 {
            return Err("node grid dimensions must be nonzero".to_owned());
        }
        if self.clock_hz <= 0.0 {
            return Err("clock rate must be positive".to_owned());
        }
        if self.node_memory_words == 0 {
            return Err("node memory must be nonzero".to_owned());
        }
        if self.mac_commit_latency == 0 {
            return Err("multiply-add commit latency must be at least 1".to_owned());
        }
        if self.mac_issue_cycles == 0 {
            return Err("multiply-add issue cost must be at least 1 cycle".to_owned());
        }
        Ok(())
    }
}

impl Default for MachineConfig {
    /// Defaults to the measurement platform, the 16-node test board.
    fn default() -> Self {
        Self::test_board_16()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        MachineConfig::test_board_16().validate().unwrap();
        MachineConfig::full_machine_2048().validate().unwrap();
        MachineConfig::tiny_4().validate().unwrap();
    }

    #[test]
    fn node_counts_match_paper() {
        assert_eq!(MachineConfig::test_board_16().node_count(), 16);
        assert_eq!(MachineConfig::full_machine_2048().node_count(), 2048);
    }

    #[test]
    fn peak_rate_of_full_machine_is_about_28_gigaflops() {
        // 2048 nodes × 7 MHz × 2 flops = 28.7 Gflops; the paper's 14.88
        // Gflops sustained is ~52% of this peak.
        let peak = MachineConfig::full_machine_2048().peak_flops();
        assert!((peak - 28.672e9).abs() < 1e6, "peak = {peak}");
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let mut cfg = MachineConfig::test_board_16();
        cfg.grid_rows = 0;
        assert!(cfg.validate().is_err());

        let mut cfg = MachineConfig::test_board_16();
        cfg.clock_hz = 0.0;
        assert!(cfg.validate().is_err());

        let mut cfg = MachineConfig::test_board_16();
        cfg.mac_commit_latency = 0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn default_is_test_board() {
        assert_eq!(MachineConfig::default(), MachineConfig::test_board_16());
    }
}
