//! Property tests for the cm2 cost models and timing algebra.

use cmcc_cm2::config::MachineConfig;
use cmcc_cm2::grid::{Direction, NodeGrid};
use cmcc_cm2::news::{news_exchange_cycles, old_exchange_cycles, ExchangeShape};
use cmcc_cm2::timing::{CycleBreakdown, Measurement};
use cmcc_testkit::property;

fn cfg() -> MachineConfig {
    MachineConfig::test_board_16()
}

/// The new simultaneous primitive never costs more than the old
/// per-direction one, and both are monotone in the transfer sizes.
#[test]
fn new_primitive_dominates_old() {
    property("new_primitive_dominates_old", 256, |rng| {
        let n = rng.usize_in(0, 10_000);
        let s = rng.usize_in(0, 10_000);
        let e = rng.usize_in(0, 10_000);
        let w = rng.usize_in(0, 10_000);
        let shape = ExchangeShape {
            north: n,
            south: s,
            east: e,
            west: w,
        };
        let new = news_exchange_cycles(&cfg(), shape);
        let old = old_exchange_cycles(&cfg(), shape);
        assert!(new <= old);
        // Monotonicity: growing any one direction never reduces cost.
        let bigger = ExchangeShape {
            north: n + 1,
            ..shape
        };
        assert!(news_exchange_cycles(&cfg(), bigger) >= new);
        assert!(old_exchange_cycles(&cfg(), bigger) >= old);
    });
}

/// The new primitive's cost depends only on the largest transfer —
/// "the communications time will be proportional to the length of
/// the longer side" (§5.1).
#[test]
fn new_primitive_costs_the_maximum() {
    property("new_primitive_costs_the_maximum", 256, |rng| {
        let n = rng.usize_in(1, 10_000);
        let s = rng.usize_in(1, 10_000);
        let e = rng.usize_in(1, 10_000);
        let w = rng.usize_in(1, 10_000);
        let shape = ExchangeShape {
            north: n,
            south: s,
            east: e,
            west: w,
        };
        let max = n.max(s).max(e).max(w);
        let square = ExchangeShape {
            north: max,
            south: max,
            east: max,
            west: max,
        };
        assert_eq!(
            news_exchange_cycles(&cfg(), shape),
            news_exchange_cycles(&cfg(), square)
        );
    });
}

/// Extrapolation preserves elapsed time and scales flops exactly with
/// the node ratio; repetition preserves the rate.
#[test]
fn timing_algebra_laws() {
    property("timing_algebra_laws", 256, |rng| {
        let flops = rng.u64_below(1_000_000_000 - 1) + 1;
        let comm = rng.u64_below(1_000_000);
        let compute = rng.u64_below(10_000_000 - 1) + 1;
        let frontend = rng.u64_below(1_000_000);
        let reps = rng.u64_below(999) + 1;
        let m = Measurement {
            useful_flops: flops,
            cycles: CycleBreakdown {
                comm,
                compute,
                frontend,
            },
            nodes: 16,
        };
        let big = m.extrapolate(2048);
        assert_eq!(big.cycles, m.cycles);
        assert_eq!(big.useful_flops, flops * 128);
        let r = m.repeated(reps);
        let rate_m = m.mflops(&cfg());
        let rate_r = r.mflops(&cfg());
        assert!((rate_m - rate_r).abs() < 1e-6 * rate_m.max(1.0));
    });
}

/// Torus navigation: four steps around any unit square return home,
/// and opposite directions cancel, on any grid shape.
#[test]
fn torus_navigation_laws() {
    property("torus_navigation_laws", 256, |rng| {
        let rows = rng.usize_in(1, 20);
        let cols = rng.usize_in(1, 20);
        let r = rng.usize_in(0, rows);
        let c = rng.usize_in(0, cols);
        let g = NodeGrid::new(rows, cols);
        let id = g.id(r, c);
        for dir in Direction::ALL {
            assert_eq!(g.neighbor(g.neighbor(id, dir), dir.opposite()), id);
        }
        let square = g.neighbor(
            g.neighbor(
                g.neighbor(g.neighbor(id, Direction::North), Direction::East),
                Direction::South,
            ),
            Direction::West,
        );
        assert_eq!(square, id);
    });
}

/// Gray-code hypercube embedding: grid neighbors are hypercube
/// neighbors on power-of-two grids (the §4.1 property).
#[test]
fn gray_embedding_property() {
    property("gray_embedding_property", 25, |rng| {
        let rp = rng.u64_below(5) as u32;
        let cp = rng.u64_below(5) as u32;
        let g = NodeGrid::new(1 << rp, 1 << cp);
        for id in g.iter() {
            for dir in Direction::ALL {
                let n = g.neighbor(id, dir);
                if n == id {
                    continue; // 1-wide axis: self-neighbor
                }
                let diff = g.hypercube_address(id) ^ g.hypercube_address(n);
                assert_eq!(diff.count_ones(), 1);
            }
        }
    });
}
