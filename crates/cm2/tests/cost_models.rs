//! Property tests for the cm2 cost models and timing algebra.

use cmcc_cm2::config::MachineConfig;
use cmcc_cm2::grid::{Direction, NodeGrid};
use cmcc_cm2::news::{news_exchange_cycles, old_exchange_cycles, ExchangeShape};
use cmcc_cm2::timing::{CycleBreakdown, Measurement};
use proptest::prelude::*;

fn cfg() -> MachineConfig {
    MachineConfig::test_board_16()
}

proptest! {
    /// The new simultaneous primitive never costs more than the old
    /// per-direction one, and both are monotone in the transfer sizes.
    #[test]
    fn new_primitive_dominates_old(
        n in 0usize..10_000,
        s in 0usize..10_000,
        e in 0usize..10_000,
        w in 0usize..10_000,
    ) {
        let shape = ExchangeShape { north: n, south: s, east: e, west: w };
        let new = news_exchange_cycles(&cfg(), shape);
        let old = old_exchange_cycles(&cfg(), shape);
        prop_assert!(new <= old);
        // Monotonicity: growing any one direction never reduces cost.
        let bigger = ExchangeShape { north: n + 1, ..shape };
        prop_assert!(news_exchange_cycles(&cfg(), bigger) >= new);
        prop_assert!(old_exchange_cycles(&cfg(), bigger) >= old);
    }

    /// The new primitive's cost depends only on the largest transfer —
    /// "the communications time will be proportional to the length of
    /// the longer side" (§5.1).
    #[test]
    fn new_primitive_costs_the_maximum(
        n in 1usize..10_000,
        s in 1usize..10_000,
        e in 1usize..10_000,
        w in 1usize..10_000,
    ) {
        let shape = ExchangeShape { north: n, south: s, east: e, west: w };
        let max = n.max(s).max(e).max(w);
        let square = ExchangeShape { north: max, south: max, east: max, west: max };
        prop_assert_eq!(
            news_exchange_cycles(&cfg(), shape),
            news_exchange_cycles(&cfg(), square)
        );
    }

    /// Extrapolation preserves elapsed time and scales flops exactly with
    /// the node ratio; repetition preserves the rate.
    #[test]
    fn timing_algebra_laws(
        flops in 1u64..1_000_000_000,
        comm in 0u64..1_000_000,
        compute in 1u64..10_000_000,
        frontend in 0u64..1_000_000,
        reps in 1u64..1000,
    ) {
        let m = Measurement {
            useful_flops: flops,
            cycles: CycleBreakdown { comm, compute, frontend },
            nodes: 16,
        };
        let big = m.extrapolate(2048);
        prop_assert_eq!(big.cycles, m.cycles);
        prop_assert_eq!(big.useful_flops, flops * 128);
        let r = m.repeated(reps);
        let rate_m = m.mflops(&cfg());
        let rate_r = r.mflops(&cfg());
        prop_assert!((rate_m - rate_r).abs() < 1e-6 * rate_m.max(1.0));
    }

    /// Torus navigation: four steps around any unit square return home,
    /// and opposite directions cancel, on any grid shape.
    #[test]
    fn torus_navigation_laws(rows in 1usize..20, cols in 1usize..20, r in 0usize..20, c in 0usize..20) {
        prop_assume!(r < rows && c < cols);
        let g = NodeGrid::new(rows, cols);
        let id = g.id(r, c);
        for dir in Direction::ALL {
            prop_assert_eq!(g.neighbor(g.neighbor(id, dir), dir.opposite()), id);
        }
        let square = g.neighbor(
            g.neighbor(
                g.neighbor(g.neighbor(id, Direction::North), Direction::East),
                Direction::South,
            ),
            Direction::West,
        );
        prop_assert_eq!(square, id);
    }

    /// Gray-code hypercube embedding: grid neighbors are hypercube
    /// neighbors on power-of-two grids (the §4.1 property).
    #[test]
    fn gray_embedding_property(rp in 0u32..5, cp in 0u32..5) {
        let g = NodeGrid::new(1 << rp, 1 << cp);
        for id in g.iter() {
            for dir in Direction::ALL {
                let n = g.neighbor(id, dir);
                if n == id {
                    continue; // 1-wide axis: self-neighbor
                }
                let diff = g.hypercube_address(id) ^ g.hypercube_address(n);
                prop_assert_eq!(diff.count_ones(), 1);
            }
        }
    }
}
