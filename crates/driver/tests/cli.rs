//! End-to-end tests of the `cmcc` command-line driver.

use std::io::Write;
use std::process::{Command, Stdio};

fn cmcc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_cmcc"))
}

fn run_stdin(args: &[&str], source: &str) -> (String, String, i32) {
    let mut child = cmcc()
        .args(args)
        .arg("-")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("driver spawns");
    child
        .stdin
        .as_mut()
        .expect("stdin piped")
        .write_all(source.as_bytes())
        .expect("write source");
    let out = child.wait_with_output().expect("driver exits");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.code().unwrap_or(-1),
    )
}

#[test]
fn compiles_a_clean_statement() {
    let (stdout, _, code) = run_stdin(
        &[],
        "R = C1 * CSHIFT(X, 1, -1) + C2 * X + C3 * CSHIFT(X, 1, +1)\n",
    );
    assert_eq!(code, 0, "{stdout}");
    assert!(stdout.contains("1 compiled, 0 warnings"), "{stdout}");
    assert!(stdout.contains("widths [8, 4, 2, 1]"), "{stdout}");
}

#[test]
fn warns_on_flagged_failures_with_nonzero_exit() {
    let (stdout, _, code) = run_stdin(&[], "!CMF$ STENCIL\nR = A - B\n");
    assert_eq!(code, 1, "{stdout}");
    assert!(stdout.contains("warning"), "{stdout}");
    assert!(stdout.contains("subtraction"), "{stdout}");
}

#[test]
fn runs_and_verifies_with_run_flag() {
    let (stdout, stderr, code) = run_stdin(
        &["--run", "--subgrid", "8x8"],
        "R = 0.5 * CSHIFT(X, 2, 1) + 0.5 * X\n",
    );
    assert_eq!(code, 0, "stdout: {stdout}\nstderr: {stderr}");
    assert!(stdout.contains("[verified bit-exact]"), "{stdout}");
    assert!(stdout.contains("Mflops"), "{stdout}");
}

#[test]
fn multi_directive_compiles_fused_statements() {
    let (stdout, _, code) = run_stdin(
        &["--run", "--subgrid", "8x8"],
        "!CMF$ STENCIL MULTI\nR = 0.5 * CSHIFT(U, 1, -1) + 0.5 * CSHIFT(V, 2, +1)\n",
    );
    assert_eq!(code, 0, "{stdout}");
    assert!(stdout.contains("[verified bit-exact]"), "{stdout}");
}

#[test]
fn parse_errors_render_to_stderr() {
    let (_, stderr, code) = run_stdin(&[], "R = C1 *\n");
    assert_ne!(code, 0);
    assert!(stderr.contains("error"), "{stderr}");
}

#[test]
fn missing_file_is_reported() {
    let out = cmcc()
        .arg("/nonexistent/path.f90")
        .output()
        .expect("driver runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));
}

#[test]
fn bad_usage_exits_2() {
    let out = cmcc().arg("--bogus-flag").output().expect("driver runs");
    assert_eq!(out.status.code(), Some(2));
}
