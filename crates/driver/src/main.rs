//! `cmcc` — the command-line driver.
//!
//! Compiles a Fortran program unit (a sequence of array assignment
//! statements, optionally flagged with `!CMF$ STENCIL` directives) the way
//! the paper's third implementation would: every statement is a stencil
//! candidate, flagged failures produce warnings, and compiled statements
//! get a per-width kernel report. With `--run`, each compiled stencil is
//! also executed on the simulated 16-node CM-2 test board against random
//! data, verified against the reference evaluator, and timed.
//!
//! ```text
//! USAGE:
//!   cmcc [OPTIONS] <file.f90 | ->
//!
//! OPTIONS:
//!   --run              execute each compiled stencil (verify + time)
//!   --serve            stencil-as-a-service batch mode: read one
//!                      assignment statement per line, execute the whole
//!                      batch concurrently on a pool of tenant threads
//!                      sharing one machine and one plan cache, and print
//!                      per-tenant stats (plan builds, cache hits, kernel
//!                      mix) plus aggregate cache/shard occupancy and
//!                      region-lease totals. With --profile=json, emits
//!                      one `cmcc-serve-v3` line with per-tenant latency
//!                      histograms and lease-contention attribution
//!   --workers N        tenant threads for --serve (default 4)
//!   --quota N          admission control for --serve: each tenant may
//!                      have at most N statement executes in flight
//!                      (default 1 — tenants run their batch share
//!                      sequentially). Conflicting executes queue in
//!                      fair FIFO order on the session's lease table
//!   --mirror-pool N    retired lane mirrors the session recycles
//!                      across tenant instances (default 32); takes
//!                      past the supply count as MirrorPoolMisses
//!   --iters N          iterations per stencil for --run (default 1);
//!                      the execution plan is built once and replayed,
//!                      reporting first-iteration vs steady-state time
//!   --temporal K       fuse K time steps per execute (temporal tiling
//!                      on the lane-resident mirror; default 1). Implies
//!                      the fast-mode lockstep engine; depths the shape
//!                      cannot carry clamp to 1 with a recorded reason.
//!                      In --serve, a statement line may carry its own
//!                      `@temporal=K ` prefix
//!   --subgrid RxC      per-node subgrid for --run (default 64x64)
//!   --threads N        host threads for node execution (default: all cores)
//!   --engine E         scalar | lockstep: fast-mode interpreter for --run.
//!                      lockstep implies fast (functional) execution — the
//!                      cycle model needs the scalar path — so cycle counts
//!                      are reported as 0 and only wall-clock timing applies
//!   --profile[=json]   enable telemetry and print a per-statement profile
//!                      after each --run: a human-readable table, or one
//!                      schema-stable JSON line (`cmcc-profile-v5`) with
//!                      derived rates, bytes/iteration against the
//!                      analytic steady-state prediction (surfaced as the
//!                      `model_drift` field, enforced by --drift-tol),
//!                      per-phase latency histograms, and region-lease
//!                      admission stats. The CMCC_PROFILE environment
//!                      variable enables the counters alone
//!   --trace FILE       write a Chrome trace-event JSON (chrome://tracing
//!                      or Perfetto) of the run to FILE: per-thread
//!                      begin/end slices for plan build, halo exchange,
//!                      interior refresh, kernel sweeps, lease
//!                      request/grant/release, region commits, and (in
//!                      --serve) one tid per worker plus one async track
//!                      per tenant. `--trace=FILE` works too
//!   --drift-tol F      fail a profiled --run whose steady-state
//!                      |observed - predicted| / predicted copy traffic
//!                      exceeds F (default 0 — the model must be exact;
//!                      checked only when --iters > 1 makes a steady
//!                      state observable)
//!   --full-machine     extrapolate rates to 2,048 nodes
//!   --pictogram        draw each recognized stencil
//!   --dump-kernel      print the widest kernel's microcode listing
//!   -h, --help         this text
//! ```

use cmcc::{LeaseStats, PlanCacheStats, Session, DEFAULT_MIRROR_POOL_CAPACITY};
use cmcc_cm2::config::MachineConfig;
use cmcc_cm2::exec::{ExecEngine, ExecMode};
use cmcc_cm2::machine::Machine;
use cmcc_cm2::timing::Measurement;
use cmcc_core::compiler::Compiler;
use cmcc_core::pictogram::render_stencil;
use cmcc_core::program::{compile_program, UnitOutcome};
use cmcc_core::recognize::CoeffSpec;
use cmcc_core::unparse::unparse_spec;
use cmcc_runtime::array::CmArray;
use cmcc_runtime::convolve::ExecOptions;
use cmcc_runtime::reference::{reference_convolve_multi, CoeffValue};
use cmcc_testkit::Rng;
use std::io::Read;
use std::process::ExitCode;

/// What `--profile` prints after each `--run`.
#[derive(Clone, Copy, PartialEq, Eq)]
enum ProfileMode {
    /// Human-readable counter table plus derived rates.
    Table,
    /// One schema-stable JSON line per statement (`cmcc-profile-v5`).
    Json,
}

struct Options {
    path: String,
    run: bool,
    serve: bool,
    workers: usize,
    quota: usize,
    mirror_pool: usize,
    iters: usize,
    temporal: usize,
    subgrid: (usize, usize),
    threads: Option<usize>,
    engine: Option<ExecEngine>,
    profile: Option<ProfileMode>,
    trace: Option<String>,
    drift_tol: f64,
    full_machine: bool,
    pictogram: bool,
    dump_kernel: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: cmcc [--run] [--serve] [--workers N] [--quota N] [--mirror-pool N] \
         [--iters N] [--temporal K] \
         [--subgrid RxC] [--threads N] [--engine scalar|lockstep] [--profile[=json]] \
         [--trace FILE] [--drift-tol F] \
         [--full-machine] [--pictogram] [--dump-kernel] <file.f90 | ->"
    );
    std::process::exit(2);
}

fn parse_args() -> Options {
    let mut opts = Options {
        path: String::new(),
        run: false,
        serve: false,
        workers: 4,
        quota: 1,
        mirror_pool: DEFAULT_MIRROR_POOL_CAPACITY,
        iters: 1,
        temporal: 1,
        subgrid: (64, 64),
        threads: None,
        engine: None,
        profile: None,
        trace: None,
        drift_tol: 0.0,
        full_machine: false,
        pictogram: false,
        dump_kernel: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--run" => opts.run = true,
            "--serve" => opts.serve = true,
            "--workers" => {
                let Some(n) = args.next() else { usage() };
                match n.parse::<usize>() {
                    Ok(n) if n > 0 => opts.workers = n,
                    _ => usage(),
                }
            }
            "--quota" => {
                let Some(n) = args.next() else { usage() };
                match n.parse::<usize>() {
                    Ok(n) if n > 0 => opts.quota = n,
                    _ => usage(),
                }
            }
            "--mirror-pool" => {
                let Some(n) = args.next() else { usage() };
                match n.parse::<usize>() {
                    Ok(n) => opts.mirror_pool = n,
                    _ => usage(),
                }
            }
            "--full-machine" => opts.full_machine = true,
            "--pictogram" => opts.pictogram = true,
            "--dump-kernel" => opts.dump_kernel = true,
            "--profile" => opts.profile = Some(ProfileMode::Table),
            "--profile=json" => opts.profile = Some(ProfileMode::Json),
            "--profile=table" => opts.profile = Some(ProfileMode::Table),
            "--trace" => {
                let Some(f) = args.next() else { usage() };
                opts.trace = Some(f);
            }
            "--drift-tol" => {
                let Some(f) = args.next() else { usage() };
                match f.parse::<f64>() {
                    Ok(f) if f >= 0.0 && f.is_finite() => opts.drift_tol = f,
                    _ => usage(),
                }
            }
            "--subgrid" => {
                let Some(spec) = args.next() else { usage() };
                let Some((r, c)) = spec.split_once('x') else {
                    usage()
                };
                match (r.parse(), c.parse()) {
                    (Ok(r), Ok(c)) => opts.subgrid = (r, c),
                    _ => usage(),
                }
            }
            "--threads" => {
                let Some(n) = args.next() else { usage() };
                match n.parse::<usize>() {
                    Ok(n) if n > 0 => opts.threads = Some(n),
                    _ => usage(),
                }
            }
            "--engine" => {
                let Some(e) = args.next() else { usage() };
                match e.as_str() {
                    "scalar" => opts.engine = Some(ExecEngine::Scalar),
                    "lockstep" => opts.engine = Some(ExecEngine::Lockstep),
                    _ => usage(),
                }
            }
            "--iters" => {
                let Some(n) = args.next() else { usage() };
                match n.parse::<usize>() {
                    Ok(n) if n > 0 => opts.iters = n,
                    _ => usage(),
                }
            }
            "--temporal" => {
                let Some(n) = args.next() else { usage() };
                match n.parse::<usize>() {
                    Ok(n) if n > 0 => opts.temporal = n,
                    _ => usage(),
                }
            }
            "-h" | "--help" => usage(),
            other if other.starts_with("--trace=") && other.len() > "--trace=".len() => {
                opts.trace = Some(other["--trace=".len()..].to_owned());
            }
            "-" if opts.path.is_empty() => opts.path = "-".to_owned(),
            other if opts.path.is_empty() && !other.starts_with('-') => {
                opts.path = other.to_owned();
            }
            _ => usage(),
        }
    }
    if opts.path.is_empty() {
        usage();
    }
    opts
}

fn main() -> ExitCode {
    let opts = parse_args();
    if opts.profile.is_some() {
        // `--profile` implies counting; CMCC_PROFILE=1 alone also enables
        // the counters (latched inside cmcc_obs on first use).
        cmcc_obs::set_enabled(true);
    }
    if opts.profile.is_some() || opts.trace.is_some() {
        // The profile's latency histograms and the exported trace are
        // both distilled from the same flight-recorder events.
        cmcc_obs::trace::set_trace_enabled(true);
        cmcc_obs::trace::set_thread_label("main");
    }
    let source = if opts.path == "-" {
        let mut buf = String::new();
        if std::io::stdin().read_to_string(&mut buf).is_err() {
            eprintln!("cmcc: failed to read stdin");
            return ExitCode::FAILURE;
        }
        buf
    } else {
        match std::fs::read_to_string(&opts.path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cmcc: cannot read `{}`: {e}", opts.path);
                return ExitCode::FAILURE;
            }
        }
    };

    let cfg = MachineConfig::test_board_16();
    if opts.serve {
        // Serve mode always counts: per-tenant stats are obs deltas.
        cmcc_obs::set_enabled(true);
        return match serve_batch(&source, &cfg, &opts) {
            Ok(code) => code,
            Err(e) => {
                eprintln!("cmcc: serve failed: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let compiler = Compiler::new(cfg.clone());
    let units = match compile_program(&compiler, &source) {
        Ok(units) => units,
        Err(e) => {
            eprint!("{}", e.render(&source));
            return ExitCode::FAILURE;
        }
    };

    let mut warnings = 0;
    let mut compiled_count = 0;
    let mut cache_totals = PlanCacheStats::default();
    for (i, unit) in units.iter().enumerate() {
        println!("--- statement {} ---", i + 1);
        println!("  {}", unit.statement);
        match &unit.outcome {
            UnitOutcome::Stencil(compiled) => {
                compiled_count += 1;
                let stencil = compiled.stencil();
                println!(
                    "  compiled: {} taps ({} flops/point), borders {}, widths {:?}",
                    stencil.taps().len(),
                    stencil.useful_flops_per_point(),
                    stencil.borders(),
                    compiled.widths(),
                );
                for k in compiled.kernels() {
                    println!(
                        "    width {}: {} registers, rings {:?}, unroll x{}",
                        k.width, k.info.registers_used, k.info.ring_sizes, k.info.unroll
                    );
                }
                if opts.pictogram {
                    for line in render_stencil(stencil).lines() {
                        println!("    {line}");
                    }
                }
                if opts.dump_kernel {
                    let widest = &compiled.kernels()[0];
                    println!("  microcode listing (width {}, northward):", widest.width);
                    for line in widest.north.disassemble().lines() {
                        println!("    {line}");
                    }
                }
                if opts.run {
                    match run_compiled(i + 1, compiled, &unit.telemetry, &cfg, &opts) {
                        Ok(stats) => {
                            cache_totals.hits += stats.hits;
                            cache_totals.misses += stats.misses;
                            cache_totals.evictions += stats.evictions;
                            cache_totals.capacity = stats.capacity;
                        }
                        Err(e) => {
                            eprintln!("  RUN FAILED: {e}");
                            return ExitCode::FAILURE;
                        }
                    }
                }
            }
            UnitOutcome::Flagged(warning) => {
                warnings += 1;
                println!("  {warning}");
                for line in warning.rendered.lines() {
                    println!("    {line}");
                }
            }
            UnitOutcome::Generic { reason } => {
                println!("  left to generic code ({reason})");
            }
        }
    }
    print!(
        "\n{} statements: {compiled_count} compiled, {warnings} warnings",
        units.len()
    );
    if opts.run {
        print!(
            ", plan cache: {} hits / {} misses / {} evictions (capacity {})",
            cache_totals.hits, cache_totals.misses, cache_totals.evictions, cache_totals.capacity
        );
    }
    println!();
    if let Err(e) = write_trace_file(&opts) {
        eprintln!("cmcc: {e}");
        return ExitCode::FAILURE;
    }
    if warnings > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

/// Writes the flight recorder's Chrome trace-event JSON to `--trace
/// FILE`, if requested.
fn write_trace_file(opts: &Options) -> Result<(), String> {
    let Some(file) = &opts.trace else {
        return Ok(());
    };
    std::fs::write(file, cmcc_obs::trace::chrome_trace_json())
        .map_err(|e| format!("cannot write trace `{file}`: {e}"))
}

/// Executes one compiled stencil on random data through a [`Session`]
/// (so every iteration exercises the plan cache), checks it against the
/// reference evaluator, prints the measured rate, and — under
/// `--profile` — the telemetry that run recorded. Returns the session's
/// plan-cache statistics for the driver's summary line.
fn run_compiled(
    statement: usize,
    compiled: &cmcc_core::compiler::CompiledStencil,
    compile_report: &cmcc_obs::RunReport,
    cfg: &MachineConfig,
    opts: &Options,
) -> Result<PlanCacheStats, Box<dyn std::error::Error>> {
    let mut session = Session::with_config_and_mirror_pool(cfg.clone(), opts.mirror_pool)?;
    let rows = opts.subgrid.0 * session.machine().grid().rows();
    let cols = opts.subgrid.1 * session.machine().grid().cols();
    let mut rng = Rng::new(0xCC);
    let spec = compiled.spec();

    let mut fill = |machine: &mut Machine| -> Result<CmArray, Box<dyn std::error::Error>> {
        let a = CmArray::new(machine, rows, cols)?;
        let data: Vec<f32> = (0..rows * cols).map(|_| rng.f32_in(-1.0, 1.0)).collect();
        a.scatter(machine, &data);
        Ok(a)
    };
    let sources: Vec<CmArray> = (0..spec.sources.len().max(1))
        .map(|_| fill(&mut session.machine_mut()))
        .collect::<Result<_, _>>()?;
    let named = spec
        .coeffs
        .iter()
        .filter(|c| matches!(c, CoeffSpec::Named(_)))
        .count();
    let coeffs: Vec<CmArray> = (0..named)
        .map(|_| fill(&mut session.machine_mut()))
        .collect::<Result<_, _>>()?;
    let r = CmArray::new(&mut session.machine_mut(), rows, cols)?;

    let source_refs: Vec<&CmArray> = sources.iter().collect();
    let coeff_refs: Vec<&CmArray> = coeffs.iter().collect();
    let mut exec_opts = match opts.threads {
        Some(n) => ExecOptions::default().with_threads(n),
        None => ExecOptions::default(),
    };
    if let Some(engine) = opts.engine {
        // The lockstep engine is functional-only: the cycle-accurate
        // pipeline model runs node by node on the scalar path.
        exec_opts = exec_opts.with_engine(engine);
        if engine == ExecEngine::Lockstep {
            exec_opts.mode = ExecMode::Fast;
        }
    }
    if opts.temporal > 1 {
        // Temporal tiling lives on the fast-mode lockstep engine; honor
        // an explicit --engine scalar (the plan will clamp and record
        // why), otherwise select the engine that can carry the depth.
        exec_opts = exec_opts.with_temporal_depth(opts.temporal);
        exec_opts.mode = ExecMode::Fast;
        if opts.engine.is_none() {
            exec_opts = exec_opts.with_engine(ExecEngine::Lockstep);
        }
    }

    // Compile-once/run-many through the plan cache: the first call
    // misses and builds the plan (halo buffers, exchange program,
    // resolved schedule); later iterations hit and replay it.
    let stmt_start_ns = cmcc_obs::trace::now_ns();
    let stmt_scope = cmcc_obs::trace::scope(cmcc_obs::trace::TraceOp::Statement, statement as u64);
    let full_before = cmcc_obs::snapshot();
    let hits_before = cmcc_obs::kernel_hits();
    let build_start = std::time::Instant::now();
    let m = session.run_with_multi(compiled, &r, &source_refs, &coeff_refs, &exec_opts)?;
    let first_iter = build_start.elapsed();
    let steady_before = cmcc_obs::snapshot();
    let steady_start = std::time::Instant::now();
    for _ in 1..opts.iters {
        let again = session.run_with_multi(compiled, &r, &source_refs, &coeff_refs, &exec_opts)?;
        if again != m {
            return Err("iterations disagree on a fixed input (nondeterminism?)".into());
        }
    }
    let steady_total = steady_start.elapsed();
    let steady_report = cmcc_obs::snapshot().delta(&steady_before);
    let full_report = cmcc_obs::snapshot().delta(&full_before);
    drop(stmt_scope);

    // Verify against the golden model.
    let machine = session.machine();
    let source_hosts: Vec<Vec<f32>> = sources.iter().map(|a| a.gather(&machine)).collect();
    let source_slices: Vec<&[f32]> = source_hosts.iter().map(Vec::as_slice).collect();
    let coeff_hosts: Vec<Vec<f32>> = coeffs.iter().map(|a| a.gather(&machine)).collect();
    let mut host_iter = coeff_hosts.iter();
    let values: Vec<CoeffValue<'_>> = spec
        .coeffs
        .iter()
        .map(|c| match c {
            CoeffSpec::Named(_) => CoeffValue::Array(host_iter.next().expect("counted")),
            CoeffSpec::Literal(v) => CoeffValue::Literal(*v),
        })
        .collect();
    // One execute advances the plan's effective temporal depth worth of
    // time steps (1 unless --temporal took effect), so the golden model
    // iterates the depth-1 reference that many times.
    let depth = session.last_plan().map_or(1, |p| p.temporal_depth());
    let mut want =
        reference_convolve_multi(compiled.stencil(), rows, cols, &source_slices, &values);
    for _ in 1..depth {
        want = reference_convolve_multi(compiled.stencil(), rows, cols, &[&want], &values);
    }
    let got = r.gather(&machine);
    let exact = got
        .iter()
        .zip(&want)
        .all(|(a, b)| a.to_bits() == b.to_bits());
    if !exact {
        return Err(format!(
            "results diverge from the reference evaluator for `{}`",
            unparse_spec(spec)
        )
        .into());
    }

    let lane_resident = session.last_plan().is_some_and(|p| p.uses_lane_resident());
    if exec_opts.mode == ExecMode::Fast {
        // Functional engines skip the pipeline model, so there is no
        // cycle count to convert into a rate — report wall-clock only.
        let engine = match exec_opts.engine {
            ExecEngine::Scalar => "scalar",
            ExecEngine::Lockstep if lane_resident => "lockstep, lane-resident",
            ExecEngine::Lockstep => "lockstep",
        };
        print!(
            "    ran {}x{} ({}x{} per node): functional ({engine}) on {} nodes",
            rows,
            cols,
            opts.subgrid.0,
            opts.subgrid.1,
            machine.node_count(),
        );
    } else {
        print!(
            "    ran {}x{} ({}x{} per node): {} cycles, {:.1} Mflops on {} nodes",
            rows,
            cols,
            opts.subgrid.0,
            opts.subgrid.1,
            m.cycles.total(),
            m.mflops(cfg),
            machine.node_count(),
        );
        if opts.full_machine {
            print!(
                " -> {:.2} Gflops on 2,048 nodes",
                m.extrapolate(2048).gflops(cfg)
            );
        }
    }
    println!(" [verified bit-exact]");
    if opts.temporal > 1 {
        match session.last_plan().and_then(|p| p.temporal_fallback()) {
            Some(reason) => println!(
                "    temporal: requested depth {} clamped to 1 ({reason})",
                opts.temporal
            ),
            None => {
                println!("    temporal: {depth} fused steps per execute, one halo refresh each")
            }
        }
    }
    if opts.iters > 1 {
        let steady_per_iter = steady_total / (opts.iters - 1) as u32;
        println!(
            "    {} iterations: first {:.3} ms (plan build + run), steady-state {:.3} ms/iter",
            opts.iters,
            first_iter.as_secs_f64() * 1e3,
            steady_per_iter.as_secs_f64() * 1e3,
        );
    }

    if let Some(mode) = opts.profile {
        // The statement's compile spans were recorded before this run
        // started; merge them in so the profile covers compile + run.
        let full_report = full_report.merge(compile_report);
        // Label the path the plan actually executed — cycle mode always
        // runs the scalar pipeline model regardless of the engine option.
        let engine = session.last_plan().map_or("scalar", |p| {
            if p.uses_lane_resident() {
                "lockstep-lane-resident"
            } else if p.uses_lockstep() {
                "lockstep"
            } else {
                "scalar"
            }
        });
        let derived = derive_metrics(
            cfg,
            &m,
            &exec_opts,
            &session,
            opts.iters,
            first_iter,
            steady_total,
            &steady_report,
            &full_report,
            opts.drift_tol,
        );
        // Distill this statement's flight-recorder events (everything
        // that began after the statement started, on any thread) into
        // the per-phase latency histograms.
        let slices = pair_slices(&cmcc_obs::trace::threads(), stmt_start_ns);
        let drift_failure = (!derived.model_drift_ok).then(|| {
            format!(
                "steady-state copy traffic drifted {:+.4}% from the analytic model \
                 (observed {:.0} vs predicted {:.0} bytes/iter, tolerance {})",
                derived.model_drift * 100.0,
                derived.bytes_per_iter_observed,
                derived.bytes_per_iter_predicted,
                opts.drift_tol,
            )
        });
        let profile = Profile {
            statement,
            engine,
            mode: match exec_opts.mode {
                ExecMode::Cycle => "cycle",
                ExecMode::Fast => "fast",
            },
            nodes: machine.node_count(),
            iters: opts.iters,
            m,
            derived,
            stats: session.plan_cache_stats(),
            leases: session.lease_stats(),
            kernel_mix: kernel_mix_since(&hits_before),
            latency: phase_hists(&slices),
            report: full_report,
        };
        match mode {
            ProfileMode::Table => profile.print_table(),
            ProfileMode::Json => println!("{}", profile.to_json()),
        }
        if let Some(msg) = drift_failure {
            return Err(msg.into());
        }
    }
    Ok(session.plan_cache_stats())
}

/// Rates and traffic derived from one profiled run.
struct Derived {
    /// Sustained Gflops under the WTL3164 cycle model (0 in fast mode —
    /// the pipeline model did not run).
    effective_gflops: f64,
    /// Achieved fraction of the cycle model's peak (2 flops/cycle/node);
    /// 0 in fast mode.
    model_fraction: f64,
    /// Useful flops over host wall-clock per steady iteration.
    wall_gflops: f64,
    /// Useful flops over *summed worker-thread* time per steady
    /// iteration — the `execute_workers` phase attributes kernel time
    /// inside each execute's thread fan-out, so wall vs CPU separates
    /// parallel speed-up from per-core throughput.
    cpu_gflops: f64,
    /// The plan's effective temporal depth (fused steps per execute).
    temporal_depth: usize,
    /// Observed bytes copied per steady-state iteration (counter delta
    /// over the steady iterations; the whole run when `--iters 1`).
    bytes_per_iter_observed: f64,
    /// Observed bytes amortized over the fused steps in each iteration:
    /// `bytes_per_iter_observed / temporal_depth` — the figure temporal
    /// tiling actually improves.
    bytes_per_step_amortized: f64,
    /// The plan's analytic `steady_state_copy_words` prediction, in bytes.
    bytes_per_iter_predicted: f64,
    /// Signed relative drift of the observed steady-state copy traffic
    /// from the analytic prediction:
    /// `(observed - predicted) / predicted`. This is the release-mode
    /// form of the `cfg(debug_assertions)` copy-words cross-check — the
    /// class of bug the PR-5 lane re-prime fix was caught by. 0 when the
    /// check is not applicable (see `model_drift_checked`).
    model_drift: f64,
    /// Whether the drift was measurable: a steady state was observed
    /// (`--iters > 1`) and the plan predicts nonzero traffic.
    model_drift_checked: bool,
    /// `|model_drift| <= --drift-tol` (vacuously true when unchecked).
    /// A profiled run with a false value fails.
    model_drift_ok: bool,
}

#[allow(clippy::too_many_arguments)]
fn derive_metrics(
    cfg: &MachineConfig,
    m: &Measurement,
    exec_opts: &ExecOptions,
    session: &Session,
    iters: usize,
    first_iter: std::time::Duration,
    steady_total: std::time::Duration,
    steady_report: &cmcc_obs::RunReport,
    full_report: &cmcc_obs::RunReport,
    drift_tol: f64,
) -> Derived {
    let cycle_mode = exec_opts.mode == ExecMode::Cycle;
    let effective_gflops = if cycle_mode { m.gflops(cfg) } else { 0.0 };
    let model_fraction = if cycle_mode && m.cycles.total() > 0 {
        m.useful_flops as f64 / (2.0 * m.cycles.total() as f64 * m.nodes as f64)
    } else {
        0.0
    };
    let per_iter_secs = if iters > 1 {
        steady_total.as_secs_f64() / (iters - 1) as f64
    } else {
        first_iter.as_secs_f64()
    };
    let wall_gflops = if per_iter_secs > 0.0 {
        m.useful_flops as f64 / per_iter_secs / 1.0e9
    } else {
        0.0
    };
    let (rate_report, rate_iters) = if iters > 1 {
        (steady_report, (iters - 1) as f64)
    } else {
        (full_report, 1.0)
    };
    let cpu_secs_per_iter =
        rate_report.phase_nanos(cmcc_obs::Phase::ExecuteWorkers) as f64 * 1e-9 / rate_iters;
    let cpu_gflops = if cpu_secs_per_iter > 0.0 {
        m.useful_flops as f64 / cpu_secs_per_iter / 1.0e9
    } else {
        0.0
    };
    let temporal_depth = session.last_plan().map_or(1, |p| p.temporal_depth());
    const WORD_BYTES: f64 = 4.0;
    let bytes_per_iter_observed = if iters > 1 {
        steady_report.copy_words() as f64 * WORD_BYTES / (iters - 1) as f64
    } else {
        full_report.copy_words() as f64 * WORD_BYTES
    };
    let bytes_per_step_amortized = bytes_per_iter_observed / temporal_depth as f64;
    let bytes_per_iter_predicted = session
        .last_plan()
        .map_or(0.0, |p| p.steady_state_copy_words() as f64 * WORD_BYTES);
    // The observed/predicted cross-check is meaningful only over steady
    // iterations — the first iteration folds in plan build and priming
    // traffic the steady-state model deliberately excludes.
    let model_drift_checked = iters > 1 && bytes_per_iter_predicted > 0.0;
    let model_drift = if model_drift_checked {
        (bytes_per_iter_observed - bytes_per_iter_predicted) / bytes_per_iter_predicted
    } else {
        0.0
    };
    let model_drift_ok = !model_drift_checked || model_drift.abs() <= drift_tol;
    Derived {
        effective_gflops,
        model_fraction,
        wall_gflops,
        cpu_gflops,
        temporal_depth,
        bytes_per_iter_observed,
        bytes_per_step_amortized,
        bytes_per_iter_predicted,
        model_drift,
        model_drift_checked,
        model_drift_ok,
    }
}

/// Everything `--profile` prints for one statement.
struct Profile {
    statement: usize,
    engine: &'static str,
    mode: &'static str,
    nodes: usize,
    iters: usize,
    m: Measurement,
    derived: Derived,
    stats: PlanCacheStats,
    leases: LeaseStats,
    /// Kernel variants this statement's run dispatched, as
    /// `(name, hits)` — the per-variant split behind the report's
    /// `kernelized_steps`. Table output only; the JSON schema keys the
    /// aggregate split.
    kernel_mix: Vec<(String, u64)>,
    /// Per-operation duration histograms distilled from this
    /// statement's flight-recorder slices, indexed by `TraceOp`.
    latency: Vec<cmcc_obs::hist::Histogram>,
    report: cmcc_obs::RunReport,
}

/// The kernel-variant hits recorded since `before`, as named deltas.
fn kernel_mix_since(before: &[u64; cmcc_obs::KERNEL_VARIANT_CAP]) -> Vec<(String, u64)> {
    cmcc_obs::kernel_hits()
        .iter()
        .zip(before)
        .enumerate()
        .filter(|&(id, (&now, &was))| now > was && id < cmcc_cm2::kernels::KERNEL_VARIANTS)
        .map(|(id, (&now, &was))| (cmcc_cm2::kernels::variant_name(id), now - was))
        .collect()
}

/// One begin/end-paired flight-recorder slice.
struct Slice {
    op: cmcc_obs::trace::TraceOp,
    tenant: Option<u32>,
    dur_ns: u64,
    /// The end event's argument (e.g. the conflicted flag of a
    /// `lease_acquire` slice).
    end_arg: u64,
}

/// Pairs each thread's begin/end events stack-wise per operation and
/// returns the completed slices whose begin timestamp is at or after
/// `since_ns` (0 keeps everything). Unmatched ends (begin before the
/// recorder was reset or dropped on overflow) are ignored.
fn pair_slices(threads: &[cmcc_obs::trace::ThreadTrace], since_ns: u64) -> Vec<Slice> {
    use cmcc_obs::trace::{TraceKind, TRACE_OP_COUNT};
    let mut slices = Vec::new();
    for t in threads {
        let mut stacks: Vec<Vec<u64>> = vec![Vec::new(); TRACE_OP_COUNT];
        for e in &t.events {
            match e.kind {
                TraceKind::Begin => stacks[e.op as usize].push(e.ts_ns),
                TraceKind::End => {
                    if let Some(start) = stacks[e.op as usize].pop() {
                        if start >= since_ns {
                            slices.push(Slice {
                                op: e.op,
                                tenant: e.tenant,
                                dur_ns: e.ts_ns.saturating_sub(start),
                                end_arg: e.arg,
                            });
                        }
                    }
                }
                _ => {}
            }
        }
    }
    slices
}

/// The operations the `latency.phases` JSON object keys, in schema
/// order (compile phases are excluded — the report's `compile` object
/// already times them).
const LATENCY_PHASES: [cmcc_obs::trace::TraceOp; 10] = [
    cmcc_obs::trace::TraceOp::PlanBuild,
    cmcc_obs::trace::TraceOp::PlanRebind,
    cmcc_obs::trace::TraceOp::Execute,
    cmcc_obs::trace::TraceOp::ExecuteWorkers,
    cmcc_obs::trace::TraceOp::HaloExchange,
    cmcc_obs::trace::TraceOp::InteriorRefresh,
    cmcc_obs::trace::TraceOp::KernelSweep,
    cmcc_obs::trace::TraceOp::RegionCommit,
    cmcc_obs::trace::TraceOp::LeaseAcquire,
    cmcc_obs::trace::TraceOp::LeaseHeld,
];

/// Per-operation duration histograms over a slice set.
fn phase_hists(slices: &[Slice]) -> Vec<cmcc_obs::hist::Histogram> {
    let mut hists: Vec<cmcc_obs::hist::Histogram> = (0..cmcc_obs::trace::TRACE_OP_COUNT)
        .map(|_| cmcc_obs::hist::Histogram::new())
        .collect();
    for s in slices {
        hists[s.op as usize].record(s.dur_ns);
    }
    hists
}

/// Renders the fixed `latency.phases` object: one histogram summary per
/// [`LATENCY_PHASES`] operation.
fn latency_phases_json(hists: &[cmcc_obs::hist::Histogram]) -> String {
    let parts: Vec<String> = LATENCY_PHASES
        .iter()
        .map(|op| format!("\"{}\":{}", op.name(), hists[*op as usize].summary_json()))
        .collect();
    format!("{{{}}}", parts.join(","))
}

/// Formats an `f64` as a JSON number (non-finite values become 0).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "0.000000".to_owned()
    }
}

impl Profile {
    fn print_table(&self) {
        println!(
            "    profile (statement {}, {} engine, {} mode):",
            self.statement, self.engine, self.mode
        );
        println!(
            "      effective {:.3} Gflops (model fraction {:.3}), wall-clock {:.3} Gflops, \
             cpu {:.3} Gflops",
            self.derived.effective_gflops,
            self.derived.model_fraction,
            self.derived.wall_gflops,
            self.derived.cpu_gflops,
        );
        println!(
            "      copy traffic {:.0} bytes/iter observed vs {:.0} predicted \
             (steady_state_copy_words); temporal depth {} -> {:.0} bytes/step amortized",
            self.derived.bytes_per_iter_observed,
            self.derived.bytes_per_iter_predicted,
            self.derived.temporal_depth,
            self.derived.bytes_per_step_amortized,
        );
        if self.derived.model_drift_checked {
            println!(
                "      model drift {:+.4}% ({})",
                self.derived.model_drift * 100.0,
                if self.derived.model_drift_ok {
                    "within tolerance"
                } else {
                    "EXCEEDS tolerance"
                },
            );
        }
        println!(
            "      plan cache: {} hits / {} misses / {} evictions (capacity {})",
            self.stats.hits, self.stats.misses, self.stats.evictions, self.stats.capacity,
        );
        println!(
            "      leases: {} region grants, {} conflicts (exclusive fallback), \
             peak {} concurrent",
            self.leases.region_grants, self.leases.conflicts, self.leases.peak_concurrent,
        );
        if self.kernel_mix.is_empty() {
            println!("      kernel mix: (none — interpreted lockstep or scalar path)");
        } else {
            let mix: Vec<String> = self
                .kernel_mix
                .iter()
                .map(|(name, hits)| format!("{name}:{hits}"))
                .collect();
            println!("      kernel mix: {}", mix.join(" "));
        }
        for op in LATENCY_PHASES {
            let h = &self.latency[op as usize];
            if h.count() == 0 {
                continue;
            }
            println!(
                "      latency {}: n={} p50={}ns p95={}ns p99={}ns max={}ns",
                op.name(),
                h.count(),
                h.percentile(50.0),
                h.percentile(95.0),
                h.percentile(99.0),
                h.max(),
            );
        }
        for line in self.report.render_table().lines() {
            println!("      {line}");
        }
    }

    /// One compact JSON line. The key set is the `cmcc-profile-v5`
    /// schema (v4 plus the flight-recorder fields: the model-drift
    /// cross-check in `derived`, the `latency.phases` histogram
    /// summaries, and the `trace_drops` exec counter in the report):
    /// CI validates it, so additions must bump the version.
    fn to_json(&self) -> String {
        let shards: Vec<String> = self
            .stats
            .shard_occupancy
            .iter()
            .map(|n| n.to_string())
            .collect();
        let shard_evictions: Vec<String> = self
            .stats
            .shard_evictions
            .iter()
            .map(|n| n.to_string())
            .collect();
        format!(
            concat!(
                "{{\"schema\":\"cmcc-profile-v5\",\"statement\":{},",
                "\"engine\":\"{}\",\"mode\":\"{}\",\"nodes\":{},\"iters\":{},",
                "\"measurement\":{{\"useful_flops\":{},\"cycles\":{{\"comm\":{},",
                "\"compute\":{},\"frontend\":{},\"total\":{}}},\"nodes\":{}}},",
                "\"derived\":{{\"effective_gflops\":{},\"model_fraction\":{},",
                "\"wall_gflops\":{},\"cpu_gflops\":{},\"temporal_depth\":{},",
                "\"bytes_per_iter_observed\":{},\"bytes_per_step_amortized\":{},",
                "\"bytes_per_iter_predicted\":{},\"model_drift\":{},",
                "\"model_drift_ok\":{}}},",
                "\"plan_cache\":{{\"hits\":{},\"misses\":{},\"evictions\":{},",
                "\"capacity\":{},\"shards\":[{}],\"shard_evictions\":[{}],",
                "\"shared_in_flight\":{}}},",
                "\"leases\":{{\"region_grants\":{},\"conflicts\":{},",
                "\"peak_concurrent\":{},\"live\":{}}},",
                "\"latency\":{{\"phases\":{}}},\"report\":{}}}"
            ),
            self.statement,
            self.engine,
            self.mode,
            self.nodes,
            self.iters,
            self.m.useful_flops,
            self.m.cycles.comm,
            self.m.cycles.compute,
            self.m.cycles.frontend,
            self.m.cycles.total(),
            self.m.nodes,
            json_f64(self.derived.effective_gflops),
            json_f64(self.derived.model_fraction),
            json_f64(self.derived.wall_gflops),
            json_f64(self.derived.cpu_gflops),
            self.derived.temporal_depth,
            json_f64(self.derived.bytes_per_iter_observed),
            json_f64(self.derived.bytes_per_step_amortized),
            json_f64(self.derived.bytes_per_iter_predicted),
            json_f64(self.derived.model_drift),
            self.derived.model_drift_ok,
            self.stats.hits,
            self.stats.misses,
            self.stats.evictions,
            self.stats.capacity,
            shards.join(","),
            shard_evictions.join(","),
            self.stats.shared_in_flight,
            self.leases.region_grants,
            self.leases.conflicts,
            self.leases.peak_concurrent,
            self.leases.live,
            latency_phases_json(&self.latency),
            self.report.to_json(),
        )
    }
}

/// One tenant thread's share of a `--serve` batch.
struct TenantStats {
    tenant: usize,
    statements: usize,
    runs: u64,
    plan_builds: u64,
    cache_hits: u64,
    cache_misses: u64,
    kernelized_steps: u64,
    interpreted_steps: u64,
    scalar_steps: u64,
    /// Summed wall-clock of this tenant's quota workers' drain loops.
    /// The tenant's blocked + executing trace time can never exceed it,
    /// and the batch fails if it does.
    wall_ns: u64,
    errors: Vec<String>,
}

/// Executes one served statement through a tenant's session handle:
/// compile, allocate and fill deterministic inputs, run `--iters` times
/// through the shared plan cache, and verify bit-exactly against the
/// reference evaluator.
/// Splits an optional `@temporal=K ` prefix off a served statement
/// line, returning the requested depth and the bare statement.
fn parse_serve_directive(line: &str) -> Result<(usize, &str), String> {
    let Some(rest) = line.strip_prefix("@temporal=") else {
        return Ok((1, line));
    };
    let (num, stmt) = rest
        .split_once(char::is_whitespace)
        .ok_or_else(|| "`@temporal=K` directive without a statement".to_owned())?;
    match num.parse::<usize>() {
        Ok(k) if k > 0 => Ok((k, stmt.trim_start())),
        _ => Err(format!("bad temporal depth `{num}` in serve directive")),
    }
}

fn serve_one(
    session: &mut Session,
    tenant: usize,
    index: usize,
    statement: &str,
    exec_opts: &ExecOptions,
    opts: &Options,
) -> Result<(), Box<dyn std::error::Error>> {
    let (temporal, statement) = parse_serve_directive(statement)?;
    let mut exec_opts = *exec_opts;
    if temporal > 1 {
        // Per-line temporal tiling: the depth keys the plan cache, so
        // tenants asking different depths for the same statement get
        // distinct shared artifacts.
        exec_opts = exec_opts
            .with_temporal_depth(temporal)
            .with_engine(ExecEngine::Lockstep);
        exec_opts.mode = ExecMode::Fast;
    }
    let exec_opts = &exec_opts;
    let compiled = session.compile(statement)?;
    let spec = compiled.spec();
    let rows = opts.subgrid.0 * session.machine().grid().rows();
    let cols = opts.subgrid.1 * session.machine().grid().cols();
    let mut rng = Rng::new(0xCC ^ ((tenant as u64) << 32) ^ index as u64);
    let mut fill = |machine: &mut Machine| -> Result<CmArray, Box<dyn std::error::Error>> {
        let a = CmArray::new(machine, rows, cols)?;
        let data: Vec<f32> = (0..rows * cols).map(|_| rng.f32_in(-1.0, 1.0)).collect();
        a.scatter(machine, &data);
        Ok(a)
    };
    let sources: Vec<CmArray> = (0..spec.sources.len().max(1))
        .map(|_| fill(&mut session.machine_mut()))
        .collect::<Result<_, _>>()?;
    let named = spec
        .coeffs
        .iter()
        .filter(|c| matches!(c, CoeffSpec::Named(_)))
        .count();
    let coeffs: Vec<CmArray> = (0..named)
        .map(|_| fill(&mut session.machine_mut()))
        .collect::<Result<_, _>>()?;
    let r = CmArray::new(&mut session.machine_mut(), rows, cols)?;
    let source_refs: Vec<&CmArray> = sources.iter().collect();
    let coeff_refs: Vec<&CmArray> = coeffs.iter().collect();

    let m = session.run_with_multi(&compiled, &r, &source_refs, &coeff_refs, exec_opts)?;
    for _ in 1..opts.iters {
        let again = session.run_with_multi(&compiled, &r, &source_refs, &coeff_refs, exec_opts)?;
        if again != m {
            return Err("iterations disagree on a fixed input (nondeterminism?)".into());
        }
    }

    let (got, source_hosts, coeff_hosts) = {
        let machine = session.machine();
        let source_hosts: Vec<Vec<f32>> = sources.iter().map(|a| a.gather(&machine)).collect();
        let coeff_hosts: Vec<Vec<f32>> = coeffs.iter().map(|a| a.gather(&machine)).collect();
        (r.gather(&machine), source_hosts, coeff_hosts)
    };
    let source_slices: Vec<&[f32]> = source_hosts.iter().map(Vec::as_slice).collect();
    let mut host_iter = coeff_hosts.iter();
    let values: Vec<CoeffValue<'_>> = spec
        .coeffs
        .iter()
        .map(|c| match c {
            CoeffSpec::Named(_) => CoeffValue::Array(host_iter.next().expect("counted")),
            CoeffSpec::Literal(v) => CoeffValue::Literal(*v),
        })
        .collect();
    // A temporal plan advances `depth` steps per execute; iterate the
    // depth-1 reference to match (clamped depths report 1 here).
    let depth = session.last_plan().map_or(1, |p| p.temporal_depth());
    let mut want =
        reference_convolve_multi(compiled.stencil(), rows, cols, &source_slices, &values);
    for _ in 1..depth {
        want = reference_convolve_multi(compiled.stencil(), rows, cols, &[&want], &values);
    }
    let exact = got
        .iter()
        .zip(&want)
        .all(|(a, b)| a.to_bits() == b.to_bits());
    if !exact {
        return Err(format!(
            "results diverge from the reference evaluator for `{}`",
            unparse_spec(spec)
        )
        .into());
    }
    Ok(())
}

/// One tenant's full pass over the batch, under the tenant's admission
/// quota: at most `--quota` statement executes in flight at once
/// (default 1 — the batch share runs sequentially on this thread).
/// Execution runs with one host thread so every counter a run records
/// lands on the running thread's obs shard — summing `thread_snapshot`
/// deltas over the quota workers attributes plan builds, cache hits,
/// and kernel steps to the tenant exactly.
fn serve_tenant(
    tenant: usize,
    session: Session,
    statements: &[String],
    opts: &Options,
) -> TenantStats {
    use cmcc_obs::Counter;
    use std::sync::atomic::{AtomicUsize, Ordering};
    let mut exec_opts = ExecOptions::default().with_threads(1);
    if let Some(engine) = opts.engine {
        // `--engine lockstep` serves lane-resident plans, which are
        // eligible for the concurrent region path (the lockstep engine
        // is functional-only, so it implies fast mode).
        exec_opts = exec_opts.with_engine(engine);
        if engine == ExecEngine::Lockstep {
            exec_opts.mode = ExecMode::Fast;
        }
    }
    let mut stats = TenantStats {
        tenant,
        statements: 0,
        runs: 0,
        plan_builds: 0,
        cache_hits: 0,
        cache_misses: 0,
        kernelized_steps: 0,
        interpreted_steps: 0,
        scalar_steps: 0,
        wall_ns: 0,
        errors: Vec::new(),
    };
    // The quota workers drain one shared cursor, so together they serve
    // the tenant's batch exactly once, up to `quota` lines in flight.
    let cursor = AtomicUsize::new(0);
    let drain = |mut handle: Session| {
        // Tag the worker thread so every flight-recorder event its runs
        // emit (execution is single-threaded per run) carries the tenant,
        // and per-tenant latency/blocked/executing attribution is exact.
        cmcc_obs::trace::set_tenant(Some(tenant as u32));
        cmcc_obs::trace::set_thread_label(&format!("tenant {tenant} worker"));
        let wall = std::time::Instant::now();
        let before = cmcc_obs::thread_snapshot();
        let mut served = 0usize;
        let mut errors = Vec::new();
        loop {
            let i = cursor.fetch_add(1, Ordering::Relaxed);
            if i >= statements.len() {
                break;
            }
            // Each served line is a `statement` slice on the worker's
            // timeline plus an async slice on the tenant's trace track.
            cmcc_obs::trace::record(
                cmcc_obs::trace::TraceKind::AsyncBegin,
                cmcc_obs::trace::TraceOp::Statement,
                tenant as u64,
            );
            let span = cmcc_obs::trace::scope(cmcc_obs::trace::TraceOp::Statement, i as u64);
            match serve_one(&mut handle, tenant, i, &statements[i], &exec_opts, opts) {
                Ok(()) => served += 1,
                Err(e) => errors.push(format!("statement {}: {e}", i + 1)),
            }
            drop(span);
            cmcc_obs::trace::record(
                cmcc_obs::trace::TraceKind::AsyncEnd,
                cmcc_obs::trace::TraceOp::Statement,
                tenant as u64,
            );
        }
        (
            served,
            errors,
            cmcc_obs::thread_snapshot().delta(&before),
            wall.elapsed().as_nanos() as u64,
        )
    };
    type Share = (usize, Vec<String>, cmcc_obs::RunReport, u64);
    let shares: Vec<Share> = if opts.quota <= 1 {
        vec![drain(session)]
    } else {
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..opts.quota)
                .map(|_| {
                    let handle = session.clone();
                    scope.spawn(|| drain(handle))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("quota worker panicked"))
                .collect()
        })
    };
    for (served, errors, report, wall_ns) in shares {
        stats.statements += served;
        stats.runs += (served * opts.iters) as u64;
        stats.wall_ns += wall_ns;
        stats.errors.extend(errors);
        stats.plan_builds += report.get(Counter::PlanBuilds);
        stats.cache_hits += report.get(Counter::PlanCacheHits);
        stats.cache_misses += report.get(Counter::PlanCacheMisses);
        stats.kernelized_steps += report.get(Counter::KernelizedSteps);
        stats.interpreted_steps += report.get(Counter::InterpretedSteps);
        stats.scalar_steps += report.get(Counter::ScalarSteps);
    }
    stats
}

/// `--serve`: stencil-as-a-service over a statement batch. Every tenant
/// thread clones one session handle and runs the whole batch, so tenants
/// race on a cold cache for the same plans — the per-fingerprint build
/// lock must make total plan builds equal cache misses (exactly one
/// build per distinct plan), and the driver fails the run if it does not.
fn serve_batch(
    source: &str,
    cfg: &MachineConfig,
    opts: &Options,
) -> Result<ExitCode, Box<dyn std::error::Error>> {
    let statements: Vec<String> = source
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('!'))
        .map(String::from)
        .collect();
    if statements.is_empty() {
        return Err("no statements to serve".into());
    }
    // Serve always runs the flight recorder: the per-tenant latency and
    // lease-contention attribution below are distilled from its events.
    cmcc_obs::trace::set_trace_enabled(true);
    let session = Session::with_config_and_mirror_pool(cfg.clone(), opts.mirror_pool)?;
    let tenants: Vec<TenantStats> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..opts.workers)
            .map(|w| {
                let handle = session.clone();
                let statements = &statements;
                scope.spawn(move || serve_tenant(w, handle, statements, opts))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("tenant thread panicked"))
            .collect()
    });

    let cache = session.plan_cache_stats();
    let leases = session.lease_stats();
    let total_builds: u64 = tenants.iter().map(|t| t.plan_builds).sum();
    let build_once = total_builds == cache.misses;
    let drained = leases.live == 0 && leases.queued == 0;
    let mut failed = !build_once || !drained;

    // Lease-contention attribution: pair the batch's flight-recorder
    // events into slices and split each tenant's wall time into blocked
    // (lease time-to-grant) vs executing. The conflicted-wait count must
    // agree with the lease table's own conflict counter — a structural
    // cross-check between two independent observers — unless the ring
    // overflowed and dropped events.
    let slices = pair_slices(&cmcc_obs::trace::threads(), 0);
    let hists = phase_hists(&slices);
    let mut time_to_grant = cmcc_obs::hist::Histogram::new();
    let mut conflicted_waits: u64 = 0;
    let mut tenant_stmt: Vec<cmcc_obs::hist::Histogram> = (0..opts.workers)
        .map(|_| cmcc_obs::hist::Histogram::new())
        .collect();
    let mut tenant_blocked = vec![0u64; opts.workers];
    let mut tenant_executing = vec![0u64; opts.workers];
    for s in &slices {
        let w = s.tenant.map(|t| t as usize).filter(|&t| t < opts.workers);
        match s.op {
            cmcc_obs::trace::TraceOp::LeaseAcquire => {
                time_to_grant.record(s.dur_ns);
                if s.end_arg == 1 {
                    conflicted_waits += 1;
                }
                if let Some(w) = w {
                    tenant_blocked[w] += s.dur_ns;
                }
            }
            cmcc_obs::trace::TraceOp::Execute => {
                if let Some(w) = w {
                    tenant_executing[w] += s.dur_ns;
                }
            }
            cmcc_obs::trace::TraceOp::Statement => {
                if let Some(w) = w {
                    tenant_stmt[w].record(s.dur_ns);
                }
            }
            _ => {}
        }
    }
    let trace_drops = cmcc_obs::trace::total_drops();
    let waits_consistent = trace_drops > 0 || conflicted_waits == leases.conflicts;
    let split_ok = tenants
        .iter()
        .all(|t| tenant_blocked[t.tenant] + tenant_executing[t.tenant] <= t.wall_ns);
    if !waits_consistent || !split_ok {
        failed = true;
    }

    println!(
        "serve: {} tenants (quota {}) x {} statements x {} iters ({}x{} per node, {} nodes)",
        opts.workers,
        opts.quota,
        statements.len(),
        opts.iters,
        opts.subgrid.0,
        opts.subgrid.1,
        session.machine().node_count(),
    );
    for t in &tenants {
        println!(
            "  tenant {}: {} statements, {} runs, plan_builds={}, cache_hits={}, \
             kernel mix: kernelized={} interpreted={} scalar={}",
            t.tenant,
            t.statements,
            t.runs,
            t.plan_builds,
            t.cache_hits,
            t.kernelized_steps,
            t.interpreted_steps,
            t.scalar_steps,
        );
        let h = &tenant_stmt[t.tenant];
        println!(
            "    latency: statements n={} p50={}ns p95={}ns p99={}ns max={}ns; \
             blocked {}ns + executing {}ns <= wall {}ns",
            h.count(),
            h.percentile(50.0),
            h.percentile(95.0),
            h.percentile(99.0),
            h.max(),
            tenant_blocked[t.tenant],
            tenant_executing[t.tenant],
            t.wall_ns,
        );
        for e in &t.errors {
            failed = true;
            eprintln!("  tenant {}: SERVE FAILED: {e}", t.tenant);
        }
    }
    let occupancy: Vec<String> = cache
        .shard_occupancy
        .iter()
        .map(|n| n.to_string())
        .collect();
    let shard_ev: Vec<String> = cache
        .shard_evictions
        .iter()
        .map(|n| n.to_string())
        .collect();
    println!(
        "serve totals: plan cache {} hits / {} misses / {} evictions (capacity {}), \
         build-once {}",
        cache.hits,
        cache.misses,
        cache.evictions,
        cache.capacity,
        if build_once {
            "OK (builds == misses)".to_owned()
        } else {
            format!(
                "VIOLATED ({total_builds} builds != {} misses)",
                cache.misses
            )
        },
    );
    println!(
        "  shards: occupancy [{}] evictions [{}] shared_in_flight={}",
        occupancy.join(" "),
        shard_ev.join(" "),
        cache.shared_in_flight,
    );
    println!(
        "  leases: {} region grants, {} conflicts (exclusive fallback), \
         peak {} concurrent executes, drained {}",
        leases.region_grants,
        leases.conflicts,
        leases.peak_concurrent,
        if drained {
            "OK (0 live, 0 queued)".to_owned()
        } else {
            format!("VIOLATED ({} live, {} queued)", leases.live, leases.queued)
        },
    );
    println!(
        "  lease wait: n={} p50={}ns p95={}ns p99={}ns max={}ns, {} conflicted, \
         attribution {}",
        time_to_grant.count(),
        time_to_grant.percentile(50.0),
        time_to_grant.percentile(95.0),
        time_to_grant.percentile(99.0),
        time_to_grant.max(),
        conflicted_waits,
        if waits_consistent {
            "OK (trace waits == lease conflicts)".to_owned()
        } else {
            format!(
                "VIOLATED ({conflicted_waits} traced waits != {} lease conflicts)",
                leases.conflicts
            )
        },
    );
    if !split_ok {
        eprintln!("  SERVE FAILED: a tenant's blocked + executing time exceeds its wall time");
    }
    if trace_drops > 0 {
        println!("  trace: {trace_drops} events dropped (ring overflow)");
    }

    if opts.profile == Some(ProfileMode::Json) {
        let tenant_json: Vec<String> = tenants
            .iter()
            .map(|t| {
                format!(
                    concat!(
                        "{{\"tenant\":{},\"statements\":{},\"runs\":{},",
                        "\"plan_builds\":{},\"cache_hits\":{},\"cache_misses\":{},",
                        "\"kernelized_steps\":{},\"interpreted_steps\":{},",
                        "\"scalar_steps\":{},\"latency\":{},\"blocked_ns\":{},",
                        "\"executing_ns\":{},\"wall_ns\":{},\"errors\":{}}}"
                    ),
                    t.tenant,
                    t.statements,
                    t.runs,
                    t.plan_builds,
                    t.cache_hits,
                    t.cache_misses,
                    t.kernelized_steps,
                    t.interpreted_steps,
                    t.scalar_steps,
                    tenant_stmt[t.tenant].summary_json(),
                    tenant_blocked[t.tenant],
                    tenant_executing[t.tenant],
                    t.wall_ns,
                    t.errors.len(),
                )
            })
            .collect();
        println!(
            concat!(
                "{{\"schema\":\"cmcc-serve-v3\",\"workers\":{},\"quota\":{},",
                "\"statements\":{},",
                "\"iters\":{},\"build_once\":{},\"drained\":{},\"tenants\":[{}],",
                "\"plan_cache\":{{\"hits\":{},\"misses\":{},\"evictions\":{},",
                "\"capacity\":{},\"shards\":[{}],\"shard_evictions\":[{}],",
                "\"shared_in_flight\":{}}},",
                "\"leases\":{{\"region_grants\":{},\"conflicts\":{},",
                "\"peak_concurrent\":{},\"live\":{}}},",
                "\"latency\":{{\"phases\":{},\"lease\":{{\"time_to_grant\":{},",
                "\"conflicted_waits\":{},\"waits_consistent\":{}}}}},",
                "\"trace_drops\":{}}}"
            ),
            opts.workers,
            opts.quota,
            statements.len(),
            opts.iters,
            build_once,
            drained,
            tenant_json.join(","),
            cache.hits,
            cache.misses,
            cache.evictions,
            cache.capacity,
            occupancy.join(","),
            shard_ev.join(","),
            cache.shared_in_flight,
            leases.region_grants,
            leases.conflicts,
            leases.peak_concurrent,
            leases.live,
            latency_phases_json(&hists),
            time_to_grant.summary_json(),
            conflicted_waits,
            waits_consistent,
            trace_drops,
        );
    }

    write_trace_file(opts)?;
    Ok(if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    })
}
