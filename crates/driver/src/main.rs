//! `cmcc` — the command-line driver.
//!
//! Compiles a Fortran program unit (a sequence of array assignment
//! statements, optionally flagged with `!CMF$ STENCIL` directives) the way
//! the paper's third implementation would: every statement is a stencil
//! candidate, flagged failures produce warnings, and compiled statements
//! get a per-width kernel report. With `--run`, each compiled stencil is
//! also executed on the simulated 16-node CM-2 test board against random
//! data, verified against the reference evaluator, and timed.
//!
//! ```text
//! USAGE:
//!   cmcc [OPTIONS] <file.f90 | ->
//!
//! OPTIONS:
//!   --run              execute each compiled stencil (verify + time)
//!   --iters N          iterations per stencil for --run (default 1);
//!                      the execution plan is built once and replayed,
//!                      reporting first-iteration vs steady-state time
//!   --subgrid RxC      per-node subgrid for --run (default 64x64)
//!   --threads N        host threads for node execution (default: all cores)
//!   --engine E         scalar | lockstep: fast-mode interpreter for --run.
//!                      lockstep implies fast (functional) execution — the
//!                      cycle model needs the scalar path — so cycle counts
//!                      are reported as 0 and only wall-clock timing applies
//!   --full-machine     extrapolate rates to 2,048 nodes
//!   --pictogram        draw each recognized stencil
//!   --dump-kernel      print the widest kernel's microcode listing
//!   -h, --help         this text
//! ```

use cmcc_cm2::config::MachineConfig;
use cmcc_cm2::exec::{ExecEngine, ExecMode};
use cmcc_cm2::machine::Machine;
use cmcc_core::compiler::Compiler;
use cmcc_core::pictogram::render_stencil;
use cmcc_core::program::{compile_program, UnitOutcome};
use cmcc_core::recognize::CoeffSpec;
use cmcc_core::unparse::unparse_spec;
use cmcc_runtime::array::CmArray;
use cmcc_runtime::convolve::ExecOptions;
use cmcc_runtime::plan::{ExecutionPlan, PlanLifetime, StencilBinding};
use cmcc_runtime::reference::{reference_convolve_multi, CoeffValue};
use cmcc_testkit::Rng;
use std::io::Read;
use std::process::ExitCode;

struct Options {
    path: String,
    run: bool,
    iters: usize,
    subgrid: (usize, usize),
    threads: Option<usize>,
    engine: Option<ExecEngine>,
    full_machine: bool,
    pictogram: bool,
    dump_kernel: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: cmcc [--run] [--iters N] [--subgrid RxC] [--threads N] \
         [--engine scalar|lockstep] [--full-machine] \
         [--pictogram] [--dump-kernel] <file.f90 | ->"
    );
    std::process::exit(2);
}

fn parse_args() -> Options {
    let mut opts = Options {
        path: String::new(),
        run: false,
        iters: 1,
        subgrid: (64, 64),
        threads: None,
        engine: None,
        full_machine: false,
        pictogram: false,
        dump_kernel: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--run" => opts.run = true,
            "--full-machine" => opts.full_machine = true,
            "--pictogram" => opts.pictogram = true,
            "--dump-kernel" => opts.dump_kernel = true,
            "--subgrid" => {
                let Some(spec) = args.next() else { usage() };
                let Some((r, c)) = spec.split_once('x') else {
                    usage()
                };
                match (r.parse(), c.parse()) {
                    (Ok(r), Ok(c)) => opts.subgrid = (r, c),
                    _ => usage(),
                }
            }
            "--threads" => {
                let Some(n) = args.next() else { usage() };
                match n.parse::<usize>() {
                    Ok(n) if n > 0 => opts.threads = Some(n),
                    _ => usage(),
                }
            }
            "--engine" => {
                let Some(e) = args.next() else { usage() };
                match e.as_str() {
                    "scalar" => opts.engine = Some(ExecEngine::Scalar),
                    "lockstep" => opts.engine = Some(ExecEngine::Lockstep),
                    _ => usage(),
                }
            }
            "--iters" => {
                let Some(n) = args.next() else { usage() };
                match n.parse::<usize>() {
                    Ok(n) if n > 0 => opts.iters = n,
                    _ => usage(),
                }
            }
            "-h" | "--help" => usage(),
            "-" if opts.path.is_empty() => opts.path = "-".to_owned(),
            other if opts.path.is_empty() && !other.starts_with('-') => {
                opts.path = other.to_owned();
            }
            _ => usage(),
        }
    }
    if opts.path.is_empty() {
        usage();
    }
    opts
}

fn main() -> ExitCode {
    let opts = parse_args();
    let source = if opts.path == "-" {
        let mut buf = String::new();
        if std::io::stdin().read_to_string(&mut buf).is_err() {
            eprintln!("cmcc: failed to read stdin");
            return ExitCode::FAILURE;
        }
        buf
    } else {
        match std::fs::read_to_string(&opts.path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cmcc: cannot read `{}`: {e}", opts.path);
                return ExitCode::FAILURE;
            }
        }
    };

    let cfg = MachineConfig::test_board_16();
    let compiler = Compiler::new(cfg.clone());
    let units = match compile_program(&compiler, &source) {
        Ok(units) => units,
        Err(e) => {
            eprint!("{}", e.render(&source));
            return ExitCode::FAILURE;
        }
    };

    let mut warnings = 0;
    let mut compiled_count = 0;
    for (i, unit) in units.iter().enumerate() {
        println!("--- statement {} ---", i + 1);
        println!("  {}", unit.statement);
        match &unit.outcome {
            UnitOutcome::Stencil(compiled) => {
                compiled_count += 1;
                let stencil = compiled.stencil();
                println!(
                    "  compiled: {} taps ({} flops/point), borders {}, widths {:?}",
                    stencil.taps().len(),
                    stencil.useful_flops_per_point(),
                    stencil.borders(),
                    compiled.widths(),
                );
                for k in compiled.kernels() {
                    println!(
                        "    width {}: {} registers, rings {:?}, unroll x{}",
                        k.width, k.info.registers_used, k.info.ring_sizes, k.info.unroll
                    );
                }
                if opts.pictogram {
                    for line in render_stencil(stencil).lines() {
                        println!("    {line}");
                    }
                }
                if opts.dump_kernel {
                    let widest = &compiled.kernels()[0];
                    println!("  microcode listing (width {}, northward):", widest.width);
                    for line in widest.north.disassemble().lines() {
                        println!("    {line}");
                    }
                }
                if opts.run {
                    if let Err(e) = run_compiled(compiled, &cfg, &opts) {
                        eprintln!("  RUN FAILED: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            UnitOutcome::Flagged(warning) => {
                warnings += 1;
                println!("  {warning}");
                for line in warning.rendered.lines() {
                    println!("    {line}");
                }
            }
            UnitOutcome::Generic { reason } => {
                println!("  left to generic code ({reason})");
            }
        }
    }
    println!(
        "\n{} statements: {compiled_count} compiled, {warnings} warnings",
        units.len()
    );
    if warnings > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

/// Executes one compiled stencil on random data, checks it against the
/// reference evaluator, and prints the measured rate.
fn run_compiled(
    compiled: &cmcc_core::compiler::CompiledStencil,
    cfg: &MachineConfig,
    opts: &Options,
) -> Result<(), Box<dyn std::error::Error>> {
    let mut machine = Machine::new(cfg.clone())?;
    let rows = opts.subgrid.0 * machine.grid().rows();
    let cols = opts.subgrid.1 * machine.grid().cols();
    let mut rng = Rng::new(0xCC);
    let spec = compiled.spec();

    let mut fill = |machine: &mut Machine| -> Result<CmArray, Box<dyn std::error::Error>> {
        let a = CmArray::new(machine, rows, cols)?;
        let data: Vec<f32> = (0..rows * cols).map(|_| rng.f32_in(-1.0, 1.0)).collect();
        a.scatter(machine, &data);
        Ok(a)
    };
    let sources: Vec<CmArray> = (0..spec.sources.len().max(1))
        .map(|_| fill(&mut machine))
        .collect::<Result<_, _>>()?;
    let named = spec
        .coeffs
        .iter()
        .filter(|c| matches!(c, CoeffSpec::Named(_)))
        .count();
    let coeffs: Vec<CmArray> = (0..named)
        .map(|_| fill(&mut machine))
        .collect::<Result<_, _>>()?;
    let r = CmArray::new(&mut machine, rows, cols)?;

    let source_refs: Vec<&CmArray> = sources.iter().collect();
    let coeff_refs: Vec<&CmArray> = coeffs.iter().collect();
    let mut exec_opts = match opts.threads {
        Some(n) => ExecOptions::default().with_threads(n),
        None => ExecOptions::default(),
    };
    if let Some(engine) = opts.engine {
        // The lockstep engine is functional-only: the cycle-accurate
        // pipeline model runs node by node on the scalar path.
        exec_opts = exec_opts.with_engine(engine);
        if engine == ExecEngine::Lockstep {
            exec_opts.mode = ExecMode::Fast;
        }
    }

    // Compile-once/run-many: the plan (halo buffers, exchange program,
    // resolved schedule) is built on the first iteration only; later
    // iterations replay it.
    let build_start = std::time::Instant::now();
    let binding = StencilBinding::new(compiled, &r, &source_refs, &coeff_refs)?;
    let mark = machine.alloc_mark();
    let mut plan = ExecutionPlan::build(&mut machine, &binding, &exec_opts, PlanLifetime::Scoped)?;
    let m = plan.execute(&mut machine)?;
    let first_iter = build_start.elapsed();
    let steady_start = std::time::Instant::now();
    for _ in 1..opts.iters {
        let again = plan.execute(&mut machine)?;
        if again != m {
            return Err("iterations disagree on a fixed input (nondeterminism?)".into());
        }
    }
    let steady_total = steady_start.elapsed();
    machine.release_to(mark);

    // Verify against the golden model.
    let source_hosts: Vec<Vec<f32>> = sources.iter().map(|a| a.gather(&machine)).collect();
    let source_slices: Vec<&[f32]> = source_hosts.iter().map(Vec::as_slice).collect();
    let coeff_hosts: Vec<Vec<f32>> = coeffs.iter().map(|a| a.gather(&machine)).collect();
    let mut host_iter = coeff_hosts.iter();
    let values: Vec<CoeffValue<'_>> = spec
        .coeffs
        .iter()
        .map(|c| match c {
            CoeffSpec::Named(_) => CoeffValue::Array(host_iter.next().expect("counted")),
            CoeffSpec::Literal(v) => CoeffValue::Literal(*v),
        })
        .collect();
    let want = reference_convolve_multi(compiled.stencil(), rows, cols, &source_slices, &values);
    let got = r.gather(&machine);
    let exact = got
        .iter()
        .zip(&want)
        .all(|(a, b)| a.to_bits() == b.to_bits());
    if !exact {
        return Err(format!(
            "results diverge from the reference evaluator for `{}`",
            unparse_spec(spec)
        )
        .into());
    }

    if exec_opts.mode == ExecMode::Fast {
        // Functional engines skip the pipeline model, so there is no
        // cycle count to convert into a rate — report wall-clock only.
        let engine = match exec_opts.engine {
            ExecEngine::Scalar => "scalar",
            ExecEngine::Lockstep if plan.uses_lane_resident() => "lockstep, lane-resident",
            ExecEngine::Lockstep => "lockstep",
        };
        print!(
            "    ran {}x{} ({}x{} per node): functional ({engine}) on {} nodes",
            rows,
            cols,
            opts.subgrid.0,
            opts.subgrid.1,
            machine.node_count(),
        );
    } else {
        print!(
            "    ran {}x{} ({}x{} per node): {} cycles, {:.1} Mflops on {} nodes",
            rows,
            cols,
            opts.subgrid.0,
            opts.subgrid.1,
            m.cycles.total(),
            m.mflops(cfg),
            machine.node_count(),
        );
        if opts.full_machine {
            print!(
                " -> {:.2} Gflops on 2,048 nodes",
                m.extrapolate(2048).gflops(cfg)
            );
        }
    }
    println!(" [verified bit-exact]");
    if opts.iters > 1 {
        let steady_per_iter = steady_total / (opts.iters - 1) as u32;
        println!(
            "    {} iterations: first {:.3} ms (plan build + run), steady-state {:.3} ms/iter",
            opts.iters,
            first_iter.as_secs_f64() * 1e3,
            steady_per_iter.as_secs_f64() * 1e3,
        );
    }
    Ok(())
}
