//! The 1989 hand-coded library-routine baseline.
//!
//! The 1989 Gordon Bell Prize code's inner loops "were handled by library
//! routines that were carefully coded at a low level ... general enough
//! to be used by many users, but each library routine performs a fixed
//! pattern of computation" (§1). This module models that library:
//!
//! * it offers exactly **one** routine, the nine-point cross (the seismic
//!   kernel's pattern) — any other stencil gets
//!   [`HandLibError::NoSuchRoutine`], which is the paper's motivation for
//!   compiling arbitrary patterns from Fortran;
//! * it predates the slicewise compiler, so every word moved between
//!   memory and the floating-point chip pays the **fieldwise
//!   transposition** overhead the interface chip imposed on
//!   processorwise data (§3);
//! * it uses the **older** grid primitive (one direction at a time) and
//!   processes fixed width-4 strips without the half-strip split.
//!
//! Functionally exact; the cycle model's constants are documented below
//! and produce ≈5 Gflops full-machine for the nine-point cross —
//! bracketing the 1989 prize figure of 5.6 Gflops.

use cmcc_cm2::machine::Machine;
use cmcc_cm2::timing::{CycleBreakdown, Measurement};
use cmcc_core::offset::Offset;
use cmcc_core::recognize::{CoeffSpec, StencilSpec};
use cmcc_runtime::array::CmArray;
use cmcc_runtime::error::RuntimeError;
use cmcc_runtime::halo::{ExchangePrimitive, HaloBuffer};
use cmcc_runtime::reference::{reference_convolve, CoeffValue};
use std::fmt;

/// Fixed strip width of the hand-coded routine.
const HAND_WIDTH: u64 = 4;

/// Issue cycles per multiply-add, fieldwise era: the streamed coefficient
/// word crosses the interface chip *and* is transposed from the
/// bit-serial processorwise layout (batches of 32), doubling the
/// calibrated slicewise-era cost of 2.
const FIELDWISE_MAC_CYCLES: u64 = 4;

/// Cycles per load/store, fieldwise era: single transfer plus
/// transposition.
const FIELDWISE_MEM_CYCLES: u64 = 3;

/// Sequencer cycles of loop overhead per line.
const LINE_OVERHEAD: u64 = 2;

/// Per-strip startup (no half-strip split: one startup per strip).
const STRIP_STARTUP: u64 = 60;

/// Front-end cycles per library call.
const CALL_OVERHEAD: u64 = 3000;

/// Errors from the fixed-function library.
#[derive(Debug, Clone, PartialEq)]
pub enum HandLibError {
    /// The library has no routine for this stencil pattern.
    NoSuchRoutine {
        /// Why the pattern did not match.
        reason: String,
    },
    /// Argument trouble, as for the compiled path.
    Runtime(RuntimeError),
}

impl fmt::Display for HandLibError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HandLibError::NoSuchRoutine { reason } => {
                write!(
                    f,
                    "no hand-coded library routine for this pattern: {reason}"
                )
            }
            HandLibError::Runtime(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for HandLibError {}

impl From<RuntimeError> for HandLibError {
    fn from(e: RuntimeError) -> Self {
        HandLibError::Runtime(e)
    }
}

/// The nine-point cross: center plus ±1 and ±2 along each axis — the
/// pattern of the 1989 seismic code ("a nine-point cross stencil", §7).
pub fn nine_point_cross_offsets() -> Vec<Offset> {
    vec![
        Offset::new(-2, 0),
        Offset::new(-1, 0),
        Offset::new(0, -2),
        Offset::new(0, -1),
        Offset::new(0, 0),
        Offset::new(0, 1),
        Offset::new(0, 2),
        Offset::new(1, 0),
        Offset::new(2, 0),
    ]
}

/// Applies the library's nine-point-cross routine.
///
/// # Errors
///
/// [`HandLibError::NoSuchRoutine`] unless `spec` is exactly a nine-point
/// cross with one coefficient array per tap; argument errors otherwise as
/// for the compiled path.
pub fn handlib_convolve(
    machine: &mut Machine,
    spec: &StencilSpec,
    result: &CmArray,
    source: &CmArray,
    coeffs: &[&CmArray],
) -> Result<Measurement, HandLibError> {
    // Pattern check: the routine is fixed.
    let mut want = nine_point_cross_offsets();
    want.sort();
    let mut got: Vec<Offset> = spec.stencil.taps().iter().map(|t| t.offset).collect();
    got.sort();
    if got != want || !spec.stencil.bias().is_empty() {
        return Err(HandLibError::NoSuchRoutine {
            reason: format!(
                "the library supports only the nine-point cross; statement has {} taps and {} bias terms",
                spec.stencil.taps().len(),
                spec.stencil.bias().len()
            ),
        });
    }

    if !result.same_shape(source) {
        return Err(RuntimeError::ShapeMismatch {
            what: "result and source shapes differ".to_owned(),
        }
        .into());
    }
    let named = spec
        .coeffs
        .iter()
        .filter(|c| matches!(c, CoeffSpec::Named(_)))
        .count();
    if coeffs.len() != named {
        return Err(RuntimeError::WrongCoeffCount {
            expected: named,
            got: coeffs.len(),
        }
        .into());
    }

    // Functional result.
    let x_host = source.gather(machine);
    let coeff_host: Vec<Vec<f32>> = coeffs.iter().map(|a| a.gather(machine)).collect();
    let mut host_iter = coeff_host.iter();
    let values: Vec<CoeffValue<'_>> = spec
        .coeffs
        .iter()
        .map(|c| match c {
            CoeffSpec::Named(_) => CoeffValue::Array(host_iter.next().expect("count checked")),
            CoeffSpec::Literal(v) => CoeffValue::Literal(*v),
        })
        .collect();
    let out = reference_convolve(
        &spec.stencil,
        source.rows(),
        source.cols(),
        &x_host,
        &values,
    );
    result.scatter(machine, &out);

    // Cycle model.
    let cfg = machine.config().clone();
    let sub_rows = source.sub_rows() as u64;
    let sub_cols = source.sub_cols() as u64;
    let comm = HaloBuffer::exchange_cost(
        &cfg,
        source.sub_rows(),
        source.sub_cols(),
        2,
        false,
        ExchangePrimitive::OldPerDirection,
    );
    // Width-4 strips, whole-row register rings over the 8-column bounding
    // box, one startup per strip, every memory word transposed.
    let strips = sub_cols.div_ceil(HAND_WIDTH);
    let loads_per_line = HAND_WIDTH + 4; // bounding-box row: w + east/west arms
    let macs_per_line = HAND_WIDTH * 9; // 4 results × 9-step chains (pairs keep both threads busy)
    let line_cycles = macs_per_line * FIELDWISE_MAC_CYCLES
        + (loads_per_line + HAND_WIDTH) * FIELDWISE_MEM_CYCLES
        + LINE_OVERHEAD;
    let compute = strips * (STRIP_STARTUP + sub_rows * line_cycles);
    let frontend = CALL_OVERHEAD + strips * u64::from(cfg.frontend_dispatch_cycles);

    Ok(Measurement {
        useful_flops: spec.stencil.useful_flops_per_point()
            * (source.rows() * source.cols()) as u64,
        cycles: CycleBreakdown {
            comm,
            compute,
            frontend,
        },
        nodes: machine.node_count(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmcc_cm2::config::MachineConfig;
    use cmcc_core::patterns::PaperPattern;

    #[test]
    fn star9_is_the_nine_point_cross() {
        let spec = PaperPattern::Star9.spec().unwrap();
        let mut got: Vec<Offset> = spec.stencil.taps().iter().map(|t| t.offset).collect();
        got.sort();
        let mut want = nine_point_cross_offsets();
        want.sort();
        assert_eq!(got, want);
    }

    #[test]
    fn computes_the_cross_exactly() {
        let mut m = Machine::new(MachineConfig::tiny_4()).unwrap();
        let spec = PaperPattern::Star9.spec().unwrap();
        let x = CmArray::new(&mut m, 8, 8).unwrap();
        x.fill_with(&mut m, |r, c| (r * 8 + c) as f32 * 0.5);
        let coeffs: Vec<CmArray> = (0..9)
            .map(|i| {
                let a = CmArray::new(&mut m, 8, 8).unwrap();
                a.fill(&mut m, 0.1 * (i + 1) as f32);
                a
            })
            .collect();
        let refs: Vec<&CmArray> = coeffs.iter().collect();
        let r = CmArray::new(&mut m, 8, 8).unwrap();
        handlib_convolve(&mut m, &spec, &r, &x, &refs).unwrap();

        let x_host = x.gather(&m);
        let hosts: Vec<Vec<f32>> = coeffs.iter().map(|a| a.gather(&m)).collect();
        let values: Vec<CoeffValue<'_>> = hosts.iter().map(|h| CoeffValue::Array(h)).collect();
        let want = reference_convolve(&spec.stencil, 8, 8, &x_host, &values);
        assert_eq!(r.gather(&m), want);
    }

    #[test]
    fn rejects_other_patterns() {
        let mut m = Machine::new(MachineConfig::tiny_4()).unwrap();
        let spec = PaperPattern::Cross5.spec().unwrap();
        let x = CmArray::new(&mut m, 8, 8).unwrap();
        let r = CmArray::new(&mut m, 8, 8).unwrap();
        let coeffs: Vec<CmArray> = (0..5)
            .map(|_| CmArray::new(&mut m, 8, 8).unwrap())
            .collect();
        let refs: Vec<&CmArray> = coeffs.iter().collect();
        let err = handlib_convolve(&mut m, &spec, &r, &x, &refs).unwrap_err();
        assert!(matches!(err, HandLibError::NoSuchRoutine { .. }));
        assert!(err.to_string().contains("nine-point"));
    }

    #[test]
    fn lands_between_slicewise_and_compiled() {
        // The ordering the paper's history implies: generic ≈4 Gflops <
        // hand library ≈5.6 Gflops < compiler >10 Gflops (full machine).
        let cfg = MachineConfig {
            node_memory_words: 1 << 21,
            ..MachineConfig::tiny_4()
        };
        let mut m = Machine::new(cfg).unwrap();
        let spec = PaperPattern::Star9.spec().unwrap();
        let x = CmArray::new(&mut m, 512, 512).unwrap();
        let r = CmArray::new(&mut m, 512, 512).unwrap();
        let coeffs: Vec<CmArray> = (0..9)
            .map(|_| CmArray::new(&mut m, 512, 512).unwrap())
            .collect();
        let refs: Vec<&CmArray> = coeffs.iter().collect();
        let hand = handlib_convolve(&mut m, &spec, &r, &x, &refs)
            .unwrap()
            .extrapolate(2048);
        let gflops = hand.gflops(m.config());
        assert!(
            (4.0..7.0).contains(&gflops),
            "hand library full-machine rate {gflops} Gflops outside the ~5.6 Gflops band"
        );
    }

    #[test]
    fn coefficient_count_checked() {
        let mut m = Machine::new(MachineConfig::tiny_4()).unwrap();
        let spec = PaperPattern::Star9.spec().unwrap();
        let x = CmArray::new(&mut m, 8, 8).unwrap();
        let r = CmArray::new(&mut m, 8, 8).unwrap();
        let err = handlib_convolve(&mut m, &spec, &r, &x, &[]).unwrap_err();
        assert!(matches!(
            err,
            HandLibError::Runtime(RuntimeError::WrongCoeffCount { .. })
        ));
    }
}
