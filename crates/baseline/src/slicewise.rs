//! The generic "slicewise CM Fortran" baseline.
//!
//! Before the convolution compiler, the CM Fortran compiler's slicewise
//! target model "routinely allows Fortran users to achieve execution
//! rates of around 4 gigaflops" (§3). Generic code evaluates the stencil
//! statement term by term: every `CSHIFT` materializes a whole shifted
//! temporary (an in-memory copy plus grid communication for the
//! boundary-crossing slab), and every multiply / add is a separate
//! elementwise vector operation that reloads its operands from memory —
//! no register reuse across terms, which is precisely the waste the
//! convolution compiler eliminates.
//!
//! The baseline is *functionally* exact (it computes the same result,
//! via the reference evaluator's semantics applied on-node) and carries a
//! per-operation cycle model documented constant by constant.

use cmcc_cm2::machine::Machine;
use cmcc_cm2::news::{news_exchange_cycles, ExchangeShape};
use cmcc_cm2::timing::{CycleBreakdown, Measurement};
use cmcc_core::recognize::{CoeffSpec, StencilSpec};
use cmcc_core::stencil::CoeffRef;
use cmcc_runtime::array::CmArray;
use cmcc_runtime::error::RuntimeError;
use cmcc_runtime::reference::{reference_convolve, CoeffValue};

/// Cycles to copy one word memory-to-memory during a `CSHIFT`
/// materialization (read + write through the node's memory port,
/// pipelined).
const SHIFT_COPY_CYCLES_PER_ELEM: u64 = 1;

/// Cycles per element of an elementwise vector operation: two operand
/// loads and one result store through the 32-bit memory path, at one
/// word per cycle, with the arithmetic overlapped.
const VECTOR_OP_CYCLES_PER_ELEM: u64 = 3;

/// Front-end cycles to dispatch one elemental operation (shift, multiply,
/// or add) — each is a separate run-time call in generic code.
const ELEMENTAL_DISPATCH_CYCLES: u64 = 1200;

/// Evaluates `spec` the way generic slicewise CM Fortran would, writing
/// the (exact) result into `result` and returning the modeled
/// measurement.
///
/// `coeffs` binds the named coefficients exactly as
/// [`cmcc_runtime::convolve()`] does.
///
/// # Errors
///
/// Shape mismatches and coefficient-count mismatches, as for the
/// compiled path.
pub fn slicewise_convolve(
    machine: &mut Machine,
    spec: &StencilSpec,
    result: &CmArray,
    source: &CmArray,
    coeffs: &[&CmArray],
) -> Result<Measurement, RuntimeError> {
    let stencil = &spec.stencil;
    if !result.same_shape(source) {
        return Err(RuntimeError::ShapeMismatch {
            what: "result and source shapes differ".to_owned(),
        });
    }
    let named = spec
        .coeffs
        .iter()
        .filter(|c| matches!(c, CoeffSpec::Named(_)))
        .count();
    if coeffs.len() != named {
        return Err(RuntimeError::WrongCoeffCount {
            expected: named,
            got: coeffs.len(),
        });
    }
    for arr in coeffs {
        if !arr.same_shape(source) {
            return Err(RuntimeError::ShapeMismatch {
                what: "coefficient shape differs from source".to_owned(),
            });
        }
    }

    // --- Functional result (exact, reference semantics). ---
    let x_host = source.gather(machine);
    let coeff_host: Vec<Vec<f32>> = coeffs.iter().map(|a| a.gather(machine)).collect();
    let mut host_iter = coeff_host.iter();
    let values: Vec<CoeffValue<'_>> = spec
        .coeffs
        .iter()
        .map(|c| match c {
            CoeffSpec::Named(_) => CoeffValue::Array(host_iter.next().expect("count checked")),
            CoeffSpec::Literal(v) => CoeffValue::Literal(*v),
        })
        .collect();
    let out = reference_convolve(stencil, source.rows(), source.cols(), &x_host, &values);
    result.scatter(machine, &out);

    // --- Cycle model. ---
    let cfg = machine.config();
    let n = (source.sub_rows() * source.sub_cols()) as u64;
    let mut compute: u64 = 0;
    let mut comm: u64 = 0;
    let mut ops: u64 = 0;
    for (i, tap) in stencil.taps().iter().enumerate() {
        // Materialize the shifted temporary: one whole-subgrid copy per
        // shifted axis plus the boundary-crossing communication.
        let dr = tap.offset.drow.unsigned_abs() as usize;
        let dc = tap.offset.dcol.unsigned_abs() as usize;
        if dr > 0 {
            compute += SHIFT_COPY_CYCLES_PER_ELEM * n;
            comm += news_exchange_cycles(
                cfg,
                ExchangeShape {
                    north: dr * source.sub_cols(),
                    ..ExchangeShape::default()
                },
            );
            ops += 1;
        }
        if dc > 0 {
            compute += SHIFT_COPY_CYCLES_PER_ELEM * n;
            comm += news_exchange_cycles(
                cfg,
                ExchangeShape {
                    east: dc * source.sub_rows(),
                    ..ExchangeShape::default()
                },
            );
            ops += 1;
        }
        // The multiply (skipped for unit coefficients — generic code just
        // uses the shifted temporary directly).
        if matches!(tap.coeff, CoeffRef::Array(_)) {
            compute += VECTOR_OP_CYCLES_PER_ELEM * n;
            ops += 1;
        }
        // Accumulate into the result (the first term stores instead).
        if i > 0 {
            compute += VECTOR_OP_CYCLES_PER_ELEM * n;
            ops += 1;
        }
    }
    for _ in stencil.bias() {
        compute += VECTOR_OP_CYCLES_PER_ELEM * n;
        ops += 1;
    }

    Ok(Measurement {
        useful_flops: stencil.useful_flops_per_point() * (source.rows() * source.cols()) as u64,
        cycles: CycleBreakdown {
            comm,
            compute,
            frontend: ELEMENTAL_DISPATCH_CYCLES * ops.max(1),
        },
        nodes: machine.node_count(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmcc_cm2::config::MachineConfig;
    use cmcc_core::compiler::Compiler;
    use cmcc_core::patterns::PaperPattern;
    use cmcc_runtime::convolve::{convolve, ExecOptions};

    fn setup(pattern: PaperPattern) -> (Machine, StencilSpec, CmArray, CmArray, Vec<CmArray>) {
        let mut m = Machine::new(MachineConfig::tiny_4()).unwrap();
        let spec = pattern.spec().unwrap();
        let x = CmArray::new(&mut m, 8, 8).unwrap();
        x.fill_with(&mut m, |r, c| ((r * 13 + c * 7) % 11) as f32 - 5.0);
        let n = spec.coeffs.len();
        let coeffs: Vec<CmArray> = (0..n)
            .map(|i| {
                let a = CmArray::new(&mut m, 8, 8).unwrap();
                a.fill_with(&mut m, move |r, c| ((r + c + i) % 5) as f32 * 0.25);
                a
            })
            .collect();
        let r = CmArray::new(&mut m, 8, 8).unwrap();
        (m, spec, x, r, coeffs)
    }

    #[test]
    fn matches_the_compiled_path_functionally() {
        let (mut m, spec, x, r, coeffs) = setup(PaperPattern::Square9);
        let refs: Vec<&CmArray> = coeffs.iter().collect();
        slicewise_convolve(&mut m, &spec, &r, &x, &refs).unwrap();
        let slicewise_out = r.gather(&m);

        let compiled = Compiler::new(m.config().clone())
            .compile_assignment(&PaperPattern::Square9.fortran())
            .unwrap();
        convolve(&mut m, &compiled, &r, &x, &refs, &ExecOptions::default()).unwrap();
        assert_eq!(slicewise_out, r.gather(&m));
    }

    #[test]
    fn is_substantially_slower_than_the_compiled_path() {
        let (mut m, spec, x, r, coeffs) = setup(PaperPattern::Cross5);
        let refs: Vec<&CmArray> = coeffs.iter().collect();
        let slice = slicewise_convolve(&mut m, &spec, &r, &x, &refs).unwrap();

        let compiled = Compiler::new(m.config().clone())
            .compile_assignment(&PaperPattern::Cross5.fortran())
            .unwrap();
        let fast = convolve(&mut m, &compiled, &r, &x, &refs, &ExecOptions::default()).unwrap();
        // On tiny subgrids overheads dominate everything; compare the
        // per-element compute models.
        assert!(
            slice.cycles.compute > fast.cycles.compute,
            "slicewise {} vs compiled {}",
            slice.cycles.compute,
            fast.cycles.compute
        );
    }

    #[test]
    fn rate_lands_near_four_gigaflops_at_scale() {
        // The §3 figure: generic slicewise code ≈ 4 Gflops on a full
        // machine. Model a 256×256 subgrid per node.
        let cfg = MachineConfig {
            node_memory_words: 1 << 21,
            ..MachineConfig::tiny_4()
        };
        let mut m = Machine::new(cfg).unwrap();
        let spec = PaperPattern::Cross5.spec().unwrap();
        let x = CmArray::new(&mut m, 512, 512).unwrap();
        let r = CmArray::new(&mut m, 512, 512).unwrap();
        let coeffs: Vec<CmArray> = (0..5)
            .map(|_| CmArray::new(&mut m, 512, 512).unwrap())
            .collect();
        let refs: Vec<&CmArray> = coeffs.iter().collect();
        let meas = slicewise_convolve(&mut m, &spec, &r, &x, &refs).unwrap();
        let full = meas.extrapolate(2048);
        let gflops = full.gflops(m.config());
        assert!(
            (2.5..6.0).contains(&gflops),
            "slicewise full-machine rate {gflops} Gflops outside the ~4 Gflops band"
        );
    }

    #[test]
    fn unit_taps_skip_the_multiply() {
        let mut m = Machine::new(MachineConfig::tiny_4()).unwrap();
        let with_mult = cmcc_core::recognize::recognize(
            &cmcc_front::parser::parse_assignment("R = C1 * CSHIFT(X, 1, 1) + C2 * X").unwrap(),
        )
        .unwrap();
        let without = cmcc_core::recognize::recognize(
            &cmcc_front::parser::parse_assignment("R = CSHIFT(X, 1, 1) + X").unwrap(),
        )
        .unwrap();
        let x = CmArray::new(&mut m, 8, 8).unwrap();
        let r = CmArray::new(&mut m, 8, 8).unwrap();
        let c1 = CmArray::new(&mut m, 8, 8).unwrap();
        let c2 = CmArray::new(&mut m, 8, 8).unwrap();
        let a = slicewise_convolve(&mut m, &with_mult, &r, &x, &[&c1, &c2]).unwrap();
        let b = slicewise_convolve(&mut m, &without, &r, &x, &[]).unwrap();
        assert!(a.cycles.compute > b.cycles.compute);
    }

    #[test]
    fn argument_validation() {
        let (mut m, spec, x, r, coeffs) = setup(PaperPattern::Cross5);
        let refs: Vec<&CmArray> = coeffs[..3].iter().collect();
        assert!(matches!(
            slicewise_convolve(&mut m, &spec, &r, &x, &refs),
            Err(RuntimeError::WrongCoeffCount {
                expected: 5,
                got: 3
            })
        ));
    }
}
