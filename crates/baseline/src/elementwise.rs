//! Generic elementwise array operations, as the CM Fortran compiler would
//! emit them.
//!
//! The Gordon Bell seismic code's main loop is "a stencil pattern, adding
//! in the tenth term, and then performing two assignment statements to
//! shift the time-step data into the correct variables for the next
//! iteration" (§7). The tenth term and those copies are ordinary
//! elementwise CM Fortran — generic vector code, not compiled stencils —
//! so they are modeled here with the slicewise cost constants.

use cmcc_cm2::machine::Machine;
use cmcc_cm2::timing::{CycleBreakdown, Measurement};
use cmcc_runtime::array::CmArray;
use cmcc_runtime::error::RuntimeError;

/// Cycles per element of a fused elementwise multiply-add
/// (`dst += a * b`): three operand loads and one store through the
/// memory path at one word per cycle.
const MULTIPLY_ADD_CYCLES_PER_ELEM: u64 = 4;

/// Cycles per element of an array copy (`dst = src`): one load and one
/// store.
const COPY_CYCLES_PER_ELEM: u64 = 2;

/// Front-end cycles to dispatch one elementwise operation.
const DISPATCH_CYCLES: u64 = 1200;

fn check_shapes(args: &[&CmArray]) -> Result<(), RuntimeError> {
    let first = args[0];
    for a in &args[1..] {
        if !a.same_shape(first) {
            return Err(RuntimeError::ShapeMismatch {
                what: "elementwise operands must share one shape".to_owned(),
            });
        }
    }
    Ok(())
}

fn measure(
    machine: &Machine,
    flops_per_elem: u64,
    cycles_per_elem: u64,
    n_global: u64,
    n_sub: u64,
) -> Measurement {
    Measurement {
        useful_flops: flops_per_elem * n_global,
        cycles: CycleBreakdown {
            comm: 0,
            compute: cycles_per_elem * n_sub,
            frontend: DISPATCH_CYCLES,
        },
        nodes: machine.node_count(),
    }
}

/// `dst += a * b`, elementwise: 2 useful flops per element.
///
/// # Errors
///
/// [`RuntimeError::ShapeMismatch`] if shapes differ.
pub fn elementwise_multiply_add(
    machine: &mut Machine,
    dst: &CmArray,
    a: &CmArray,
    b: &CmArray,
) -> Result<Measurement, RuntimeError> {
    check_shapes(&[dst, a, b])?;
    let mut out = dst.gather(machine);
    let av = a.gather(machine);
    let bv = b.gather(machine);
    for i in 0..out.len() {
        out[i] += av[i] * bv[i];
    }
    dst.scatter(machine, &out);
    let n_global = (dst.rows() * dst.cols()) as u64;
    let n_sub = (dst.sub_rows() * dst.sub_cols()) as u64;
    Ok(measure(
        machine,
        2,
        MULTIPLY_ADD_CYCLES_PER_ELEM,
        n_global,
        n_sub,
    ))
}

/// `dst = src`, elementwise: zero useful flops (pure data motion — the
/// cost the seismic code's 3×-unrolled variant eliminates).
///
/// # Errors
///
/// [`RuntimeError::ShapeMismatch`] if shapes differ.
pub fn elementwise_copy(
    machine: &mut Machine,
    dst: &CmArray,
    src: &CmArray,
) -> Result<Measurement, RuntimeError> {
    check_shapes(&[dst, src])?;
    let data = src.gather(machine);
    dst.scatter(machine, &data);
    let n_sub = (dst.sub_rows() * dst.sub_cols()) as u64;
    Ok(measure(machine, 0, COPY_CYCLES_PER_ELEM, 0, n_sub))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmcc_cm2::config::MachineConfig;

    fn machine() -> Machine {
        Machine::new(MachineConfig::tiny_4()).unwrap()
    }

    #[test]
    fn multiply_add_computes_and_counts() {
        let mut m = machine();
        let d = CmArray::new(&mut m, 4, 4).unwrap();
        let a = CmArray::new(&mut m, 4, 4).unwrap();
        let b = CmArray::new(&mut m, 4, 4).unwrap();
        d.fill(&mut m, 1.0);
        a.fill(&mut m, 2.0);
        b.fill(&mut m, 3.0);
        let meas = elementwise_multiply_add(&mut m, &d, &a, &b).unwrap();
        assert_eq!(d.get(&m, 2, 2), 7.0);
        assert_eq!(meas.useful_flops, 2 * 16);
        assert!(meas.cycles.compute > 0);
    }

    #[test]
    fn copy_moves_data_without_flops() {
        let mut m = machine();
        let d = CmArray::new(&mut m, 4, 4).unwrap();
        let s = CmArray::new(&mut m, 4, 4).unwrap();
        s.fill_with(&mut m, |r, c| (r + 10 * c) as f32);
        let meas = elementwise_copy(&mut m, &d, &s).unwrap();
        assert_eq!(d.gather(&m), s.gather(&m));
        assert_eq!(meas.useful_flops, 0);
        assert!(meas.cycles.compute > 0);
    }

    #[test]
    fn shape_mismatch_rejected() {
        let mut m = machine();
        let d = CmArray::new(&mut m, 4, 4).unwrap();
        let s = CmArray::new(&mut m, 4, 8).unwrap();
        assert!(elementwise_copy(&mut m, &d, &s).is_err());
    }
}
