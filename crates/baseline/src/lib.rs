//! Baseline comparators for the Connection Machine Convolution Compiler.
//!
//! The paper's performance story is a three-step ladder:
//!
//! 1. **Generic slicewise CM Fortran** (§3): "around 4 gigaflops" — each
//!    `CSHIFT` materializes a temporary and each multiply/add is a
//!    separate elementwise operation ([`slicewise`]);
//! 2. **The 1989 hand-coded library routine** (§1): 5.6 Gflops in the
//!    1989 Gordon Bell run — fast inner loops but a *fixed* pattern
//!    repertoire, fieldwise data format, and the old per-direction grid
//!    primitive ([`handlib`]);
//! 3. **The convolution compiler** (this project's `cmcc-core` +
//!    `cmcc-runtime`): the same Fortran statement compiled to >10 Gflops.
//!
//! Both baselines are functionally exact (they compute the same result
//! arrays) and carry documented per-operation cycle models, so benchmark
//! comparisons share one accounting scheme.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod elementwise;
pub mod handlib;
pub mod slicewise;

pub use elementwise::{elementwise_copy, elementwise_multiply_add};
pub use handlib::{handlib_convolve, nine_point_cross_offsets, HandLibError};
pub use slicewise::slicewise_convolve;
