//! Halo (temporary-storage) management and the three-step exchange.
//!
//! "Interprocessor communication for an entire stencil computation is
//! performed at the beginning all at once. First, temporary storage is
//! allocated to hold data from neighboring subgrids ... Second, data is
//! exchanged with all four neighbors. ... The third step is to exchange
//! data for the corners" (§5.1). The subgrid is padded "on all four sides
//! by the largest of the four border widths" because the four-neighbor
//! primitive makes the extra padding free, and the corner step "may be
//! omitted" for patterns that need no diagonal data.
//!
//! This implementation keeps the padded buffer contiguous in node memory,
//! so the kernels address halo data with the same stride as interior data.
//! (The paper's temporary storage was arranged as separate pieces, which
//! is what made half-strip boundary handling delicate; the contiguous
//! layout is a simplification that preserves all the costs we model —
//! see DESIGN.md.)

use crate::array::CmArray;
use crate::error::RuntimeError;
use cmcc_cm2::config::MachineConfig;
use cmcc_cm2::exec::FieldLayout;
use cmcc_cm2::grid::{Direction, NodeGrid, NodeId};
use cmcc_cm2::machine::Machine;
use cmcc_cm2::memory::Field;
use cmcc_cm2::news::{
    corner_exchange_cycles, news_exchange_cycles, old_exchange_cycles, ExchangeShape,
};
use cmcc_core::stencil::Boundary;

/// Which grid-communication primitive prices the exchange (the data moved
/// is identical; §4.1 describes the new primitive's advantage).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ExchangePrimitive {
    /// The paper's new microcoded primitive: all four neighbors at once.
    #[default]
    News,
    /// The older primitive: one direction at a time.
    OldPerDirection,
}

/// A padded per-node buffer holding a subgrid plus its halo ring.
#[derive(Debug, Clone, Copy)]
pub struct HaloBuffer {
    field: Field,
    pad: usize,
    sub_rows: usize,
    sub_cols: usize,
}

impl HaloBuffer {
    /// Allocates a `(sub_rows + 2·pad) × (sub_cols + 2·pad)` buffer on
    /// every node.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::SubgridTooSmall`] when the halo is deeper than the
    /// subgrid (one exchange could not fill it), or
    /// [`RuntimeError::OutOfMemory`].
    pub fn new(
        machine: &mut Machine,
        sub_rows: usize,
        sub_cols: usize,
        pad: usize,
    ) -> Result<Self, RuntimeError> {
        if pad > sub_rows || pad > sub_cols {
            return Err(RuntimeError::SubgridTooSmall {
                pad,
                sub_rows,
                sub_cols,
            });
        }
        let field = machine.alloc_field((sub_rows + 2 * pad) * (sub_cols + 2 * pad))?;
        Ok(HaloBuffer {
            field,
            pad,
            sub_rows,
            sub_cols,
        })
    }

    /// Like [`HaloBuffer::new`], but allocated from the persistent arena
    /// so the buffer outlives per-call `alloc_mark` scopes — the form an
    /// [`crate::plan::ExecutionPlan`] owns. Must be returned with
    /// [`HaloBuffer::release`].
    ///
    /// # Errors
    ///
    /// As [`HaloBuffer::new`].
    pub fn new_persistent(
        machine: &mut Machine,
        sub_rows: usize,
        sub_cols: usize,
        pad: usize,
    ) -> Result<Self, RuntimeError> {
        if pad > sub_rows || pad > sub_cols {
            return Err(RuntimeError::SubgridTooSmall {
                pad,
                sub_rows,
                sub_cols,
            });
        }
        let field = machine.alloc_field_persistent((sub_rows + 2 * pad) * (sub_cols + 2 * pad))?;
        Ok(HaloBuffer {
            field,
            pad,
            sub_rows,
            sub_cols,
        })
    }

    /// Wraps an already-allocated `field` in halo-buffer addressing —
    /// no allocation, no ownership. Temporal plans use this to give
    /// their scratch states (plain persistent fields) halo geometry so
    /// fill programs and strip layouts can be built over them.
    ///
    /// # Panics
    ///
    /// Panics when `field` is not exactly
    /// `(sub_rows + 2·pad) × (sub_cols + 2·pad)` words.
    pub(crate) fn over(field: Field, sub_rows: usize, sub_cols: usize, pad: usize) -> Self {
        assert_eq!(
            field.len(),
            (sub_rows + 2 * pad) * (sub_cols + 2 * pad),
            "field length does not match the padded shape"
        );
        HaloBuffer {
            field,
            pad,
            sub_rows,
            sub_cols,
        }
    }

    /// Returns a persistently allocated buffer to the arena.
    ///
    /// # Panics
    ///
    /// Panics if the buffer was not created with
    /// [`HaloBuffer::new_persistent`].
    pub fn release(self, machine: &mut Machine) {
        machine.free_field_persistent(self.field);
    }

    /// The underlying field.
    pub fn field(&self) -> Field {
        self.field
    }

    /// Halo depth.
    pub fn pad(&self) -> usize {
        self.pad
    }

    /// Address arithmetic: logical subgrid coordinates, halo at negative
    /// offsets.
    pub fn layout(&self) -> FieldLayout {
        FieldLayout {
            base: self.field.base(),
            row_stride: self.sub_cols + 2 * self.pad,
            row_offset: self.pad as i64,
            col_offset: self.pad as i64,
        }
    }

    /// Words of temporary storage per node (the space cost of padding,
    /// §5.1: "There is a cost in temporary memory space").
    pub fn words(&self) -> usize {
        self.field.len()
    }

    fn addr(&self, padded_row: usize, padded_col: usize) -> usize {
        self.field.base() + padded_row * (self.sub_cols + 2 * self.pad) + padded_col
    }

    /// Copies each node's subgrid of `src` into the buffer interior.
    ///
    /// SIMD addressing makes the copy plan node-independent, so the
    /// addresses are computed once and replayed on every node.
    pub fn fill_interior(&self, machine: &mut Machine, src: &CmArray) -> usize {
        assert_eq!(src.sub_rows(), self.sub_rows);
        assert_eq!(src.sub_cols(), self.sub_cols);
        let src_layout = src.layout();
        let src0 = src_layout.addr(0, 0);
        let src_stride = src_layout.row_stride;
        let dst0 = self.addr(self.pad, self.pad);
        let dst_stride = self.sub_cols + 2 * self.pad;
        let (rows, cols) = (self.sub_rows, self.sub_cols);
        let _t = cmcc_obs::trace::scope(
            cmcc_obs::trace::TraceOp::InteriorRefresh,
            (rows * cols) as u64,
        );
        let mut nodes = 0;
        for (_, mem) in machine.par_nodes_mut() {
            for lr in 0..rows {
                mem.copy_within(src0 + lr * src_stride, dst0 + lr * dst_stride, cols);
            }
            nodes += 1;
        }
        let words = rows * cols * nodes;
        cmcc_obs::add(cmcc_obs::Counter::InteriorRefreshWords, words as u64);
        words
    }

    /// Performs the halo exchange and returns the communication cycles
    /// charged.
    ///
    /// Step one exchanges edge sections with the four NEWS neighbors
    /// simultaneously; step two (skipped when `need_corners` is false)
    /// exchanges the four corner sections with diagonal neighbors. With
    /// [`Boundary::ZeroFill`], halo regions beyond the global array edge
    /// are zeroed afterward instead of keeping the torus-wrapped data.
    pub fn exchange(
        &self,
        machine: &mut Machine,
        boundary: Boundary,
        need_corners: bool,
        primitive: ExchangePrimitive,
    ) -> u64 {
        self.exchange_with_fill(machine, boundary, 0.0, need_corners, primitive)
    }

    /// [`HaloBuffer::exchange`] with an explicit end-off fill value
    /// (Fortran's `EOSHIFT(…, BOUNDARY=v)`); meaningful only under
    /// [`Boundary::ZeroFill`].
    ///
    /// Builds and immediately runs an [`ExchangeProgram`]; callers that
    /// exchange repeatedly (cached execution plans) build the program
    /// once and run it per iteration instead.
    pub fn exchange_with_fill(
        &self,
        machine: &mut Machine,
        boundary: Boundary,
        fill: f32,
        need_corners: bool,
        primitive: ExchangePrimitive,
    ) -> u64 {
        let program = ExchangeProgram::new(
            self,
            machine.grid(),
            machine.config(),
            boundary,
            fill,
            need_corners,
            primitive,
        );
        program.run(machine)
    }

    /// Predicted exchange cost in cycles without performing any data
    /// movement — used by the baselines and cost ablations.
    pub fn exchange_cost(
        cfg: &MachineConfig,
        sub_rows: usize,
        sub_cols: usize,
        pad: usize,
        need_corners: bool,
        primitive: ExchangePrimitive,
    ) -> u64 {
        if pad == 0 {
            return 0;
        }
        let shape = ExchangeShape {
            north: pad * sub_cols,
            south: pad * sub_cols,
            east: pad * sub_rows,
            west: pad * sub_rows,
        };
        let mut cycles = match primitive {
            ExchangePrimitive::News => news_exchange_cycles(cfg, shape),
            ExchangePrimitive::OldPerDirection => old_exchange_cycles(cfg, shape),
        };
        if need_corners {
            cycles += corner_exchange_cycles(cfg, pad * pad);
        }
        cycles
    }
}

/// One node-to-node copy of a contiguous word run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct CopyOp {
    from: NodeId,
    src: usize,
    to: NodeId,
    dst: usize,
    len: usize,
}

/// A fully precomputed halo exchange: every neighbor lookup, address
/// computation, and cycle charge done once, leaving only data movement
/// per run.
///
/// The paper performs "interprocessor communication for an entire stencil
/// computation … at the beginning all at once" (§5.1); an
/// `ExchangeProgram` is that step compiled ahead of time for a fixed
/// (buffer, grid, boundary, primitive) so iterative workloads replay it
/// without rebuilding. Every copy reads subgrid interior and writes the
/// halo ring — disjoint regions — so the recorded order is immaterial to
/// the result; it nevertheless preserves the order
/// [`HaloBuffer::exchange_with_fill`] historically used, keeping the two
/// paths step-for-step identical.
#[derive(Debug, Clone, PartialEq)]
pub struct ExchangeProgram {
    copies: Vec<CopyOp>,
    /// Global-edge fill spans `(node, addr, len)`, written after the
    /// copies (EOSHIFT semantics). Overlapping spans all write `fill`.
    fills: Vec<(NodeId, usize, usize)>,
    fill: f32,
    cycles: u64,
    /// Machine-total words moved by the NEWS edge step (the prefix of
    /// `copies` built before the corner step) — `words_moved()` minus
    /// this is the corner traffic.
    edge_words: usize,
}

impl ExchangeProgram {
    /// Compiles the exchange for `halo` on `grid`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        halo: &HaloBuffer,
        grid: NodeGrid,
        cfg: &MachineConfig,
        boundary: Boundary,
        fill: f32,
        need_corners: bool,
        primitive: ExchangePrimitive,
    ) -> Self {
        let p = halo.pad;
        let mut copies = Vec::new();
        let mut fills = Vec::new();
        let mut cycles = 0;
        let mut edge_words = 0;
        if p > 0 {
            // Step one: edge sections from the four NEWS neighbors.
            for node in grid.iter() {
                let north = grid.neighbor(node, Direction::North);
                let south = grid.neighbor(node, Direction::South);
                let west = grid.neighbor(node, Direction::West);
                let east = grid.neighbor(node, Direction::East);
                // North halo rows 0..p come from the north neighbor's
                // last p subgrid rows; south likewise mirrored.
                for i in 0..p {
                    copies.push(CopyOp {
                        from: north,
                        src: halo.addr(halo.sub_rows + i, p),
                        to: node,
                        dst: halo.addr(i, p),
                        len: halo.sub_cols,
                    });
                    copies.push(CopyOp {
                        from: south,
                        src: halo.addr(p + i, p),
                        to: node,
                        dst: halo.addr(p + halo.sub_rows + i, p),
                        len: halo.sub_cols,
                    });
                }
                // West halo columns come from the west neighbor's last p
                // columns; east likewise.
                for lr in 0..halo.sub_rows {
                    copies.push(CopyOp {
                        from: west,
                        src: halo.addr(p + lr, halo.sub_cols),
                        to: node,
                        dst: halo.addr(p + lr, 0),
                        len: p,
                    });
                    copies.push(CopyOp {
                        from: east,
                        src: halo.addr(p + lr, p),
                        to: node,
                        dst: halo.addr(p + lr, p + halo.sub_cols),
                        len: p,
                    });
                }
            }
            let shape = ExchangeShape {
                north: p * halo.sub_cols,
                south: p * halo.sub_cols,
                east: p * halo.sub_rows,
                west: p * halo.sub_rows,
            };
            cycles = match primitive {
                ExchangePrimitive::News => news_exchange_cycles(cfg, shape),
                ExchangePrimitive::OldPerDirection => old_exchange_cycles(cfg, shape),
            };
            edge_words = copies.iter().map(|c| c.len).sum();

            // Step two: corner sections from the four diagonal neighbors.
            if need_corners {
                for node in grid.iter() {
                    for (vert, horiz) in [
                        (Direction::North, Direction::West),
                        (Direction::North, Direction::East),
                        (Direction::South, Direction::West),
                        (Direction::South, Direction::East),
                    ] {
                        let from = grid.diagonal_neighbor(node, vert, horiz);
                        // My NW corner halo holds the diagonal neighbor's
                        // SE interior corner, and so on.
                        let (dst_r0, src_r0) = match vert {
                            Direction::North => (0, halo.sub_rows),
                            _ => (p + halo.sub_rows, p),
                        };
                        let (dst_c0, src_c0) = match horiz {
                            Direction::West => (0, halo.sub_cols),
                            _ => (p + halo.sub_cols, p),
                        };
                        for i in 0..p {
                            copies.push(CopyOp {
                                from,
                                src: halo.addr(src_r0 + i, src_c0),
                                to: node,
                                dst: halo.addr(dst_r0 + i, dst_c0),
                                len: p,
                            });
                        }
                    }
                }
                cycles += corner_exchange_cycles(cfg, p * p);
            }

            // Global-edge fill spans (EOSHIFT): full-width strips so
            // corner blocks beyond either boundary are covered too.
            if boundary == Boundary::ZeroFill {
                fills = boundary_fill_spans(halo, grid);
            }
        }
        ExchangeProgram {
            copies,
            fills,
            fill,
            cycles,
            edge_words,
        }
    }

    /// The communication cycles one run charges.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Total words one run copies between nodes, summed over the whole
    /// machine (boundary fill spans excluded) — the data-movement cost a
    /// steady-state iteration pays for this exchange.
    pub fn words_moved(&self) -> usize {
        self.copies.iter().map(|c| c.len).sum()
    }

    /// Machine-total words the NEWS edge step of one run copies.
    pub fn edge_words(&self) -> usize {
        self.edge_words
    }

    /// Machine-total words the diagonal corner step of one run copies
    /// (zero when corners are skipped).
    pub fn corner_words(&self) -> usize {
        self.words_moved() - self.edge_words
    }

    /// Executes the exchange and returns the cycles charged.
    pub fn run(&self, machine: &mut Machine) -> u64 {
        let _t = cmcc_obs::trace::scope(
            cmcc_obs::trace::TraceOp::HaloExchange,
            self.words_moved() as u64,
        );
        cmcc_obs::add(cmcc_obs::Counter::HaloExchanges, 1);
        cmcc_obs::add(cmcc_obs::Counter::ExchangeEdgeWords, self.edge_words as u64);
        cmcc_obs::add(
            cmcc_obs::Counter::ExchangeCornerWords,
            self.corner_words() as u64,
        );
        for op in &self.copies {
            machine.copy_region(op.from, op.src, op.to, op.dst, op.len);
        }
        for &(node, addr, len) in &self.fills {
            machine.mem_mut(node).fill_range(addr, len, self.fill);
        }
        self.cycles
    }
}

/// The `(node, addr, len)` spans of `halo` that lie beyond the global
/// array edge — the region a [`Boundary::ZeroFill`] exchange overwrites
/// with the fill value after its copies. Full-width strips on the
/// north/south edges so corner blocks beyond either boundary are
/// covered too; the overlap is harmless (every span writes the same
/// value).
fn boundary_fill_spans(halo: &HaloBuffer, grid: NodeGrid) -> Vec<(NodeId, usize, usize)> {
    let p = halo.pad;
    let mut fills = Vec::new();
    if p == 0 {
        return fills;
    }
    let padded_cols = halo.sub_cols + 2 * p;
    for node in grid.iter() {
        let (gr, gc) = grid.coords(node);
        if gr == 0 {
            for r in 0..p {
                fills.push((node, halo.addr(r, 0), padded_cols));
            }
        }
        if gr == grid.rows() - 1 {
            for r in 0..p {
                fills.push((node, halo.addr(p + halo.sub_rows + r, 0), padded_cols));
            }
        }
        if gc == 0 {
            for r in 0..halo.sub_rows + 2 * p {
                fills.push((node, halo.addr(r, 0), p));
            }
        }
        if gc == grid.cols() - 1 {
            for r in 0..halo.sub_rows + 2 * p {
                fills.push((node, halo.addr(r, p + halo.sub_cols), p));
            }
        }
    }
    fills
}

/// A precomputed batch of constant-value node-memory fills: the
/// beyond-global-edge frame of one padded buffer.
///
/// Temporal tiling needs this as a *standalone* step: each fused inner
/// step writes its whole extended region — including positions beyond
/// the global edge, which under [`Boundary::ZeroFill`] must read as the
/// fill value in the next step. Running the fill program after every
/// non-final step restores that invariant (under [`Boundary::Circular`]
/// the span list is empty and nothing needs restoring — the margin
/// recomputes the wrapped values bit-identically).
#[derive(Debug, Clone, PartialEq)]
pub struct FillProgram {
    fills: Vec<(NodeId, usize, usize)>,
    fill: f32,
}

impl FillProgram {
    /// The beyond-global-edge fill frame of `halo` under `boundary`:
    /// empty for [`Boundary::Circular`], the beyond-edge spans under
    /// [`Boundary::ZeroFill`].
    pub fn boundary(halo: &HaloBuffer, grid: NodeGrid, boundary: Boundary, fill: f32) -> Self {
        let fills = match boundary {
            Boundary::ZeroFill => boundary_fill_spans(halo, grid),
            Boundary::Circular => Vec::new(),
        };
        FillProgram { fills, fill }
    }

    /// Whether one run writes anything at all.
    pub fn is_empty(&self) -> bool {
        self.fills.is_empty()
    }

    /// Executes the fills against node memory.
    pub fn run(&self, machine: &mut Machine) {
        for &(node, addr, len) in &self.fills {
            machine.mem_mut(node).fill_range(addr, len, self.fill);
        }
    }
}

/// A [`FillProgram`] translated onto a lane mirror — the same spans
/// addressed in lane words, for plans whose fused steps never leave the
/// mirror.
#[derive(Debug, Clone, PartialEq)]
pub struct LaneFillProgram {
    fills: Vec<(usize, usize, usize)>,
    fill: f32,
}

impl LaneFillProgram {
    /// Translates `program`'s spans into the lane word space of `view`.
    /// Returns `None` when any span is not fully inside one viewed range.
    pub fn translate(program: &FillProgram, view: &cmcc_cm2::lane::LaneView) -> Option<Self> {
        let fills = program
            .fills
            .iter()
            .map(|&(node, addr, len)| {
                let (word, range) = view.locate(addr)?;
                if addr + len > range.node_base + range.len {
                    return None;
                }
                Some((node.0, word, len))
            })
            .collect::<Option<Vec<_>>>()?;
        Some(LaneFillProgram {
            fills,
            fill: program.fill,
        })
    }

    /// Executes the fills on the mirror.
    pub fn run(&self, mirror: &mut cmcc_cm2::lane::LaneMirror) {
        for &(node, word, len) in &self.fills {
            mirror.fill_lane_run(node, word, len, self.fill);
        }
    }
}

/// A batch of lane-domain copies of one contiguous word run: node
/// `from0 + i` to node `to0 + i` for every `i < count`, all sharing the
/// same source and destination word runs.
///
/// Halo exchanges emit the same word run for every node along an edge,
/// with source and destination lanes each advancing by one node — so
/// translate-time coalescing turns per-node scalar copies into whole
/// lane sub-slice moves ([`cmcc_cm2::lane::LaneMirror::copy_lane_span`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct LaneSpanCopy {
    from0: usize,
    to0: usize,
    count: usize,
    src: usize,
    dst: usize,
    len: usize,
}

/// An [`ExchangeProgram`] translated onto a [`LaneMirror`]: every copy's
/// node-memory addresses mapped through a [`LaneView`] into lane words,
/// so the halo exchange moves words directly between lane columns of the
/// mirror and never touches `NodeMemory`.
///
/// This is the communication half of the lane-resident steady state: an
/// iterative workload keeps its operands in the mirror across time steps,
/// and the exchange — including the skippable corner step, which is baked
/// into the source program's copy list — runs in the same address space
/// the kernels execute in. Cycle accounting is inherited unchanged from
/// the source program, so `Measurement`s are identical to the node-domain
/// path.
///
/// [`LaneMirror`]: cmcc_cm2::lane::LaneMirror
/// [`LaneView`]: cmcc_cm2::lane::LaneView
#[derive(Debug, Clone, PartialEq)]
pub struct LaneExchangeProgram {
    copies: Vec<LaneSpanCopy>,
    /// Global-edge fill spans `(node, lane word, len)`, written after the
    /// copies (EOSHIFT semantics), as in [`ExchangeProgram`].
    fills: Vec<(usize, usize, usize)>,
    fill: f32,
    cycles: u64,
    /// Edge-step words, inherited verbatim from the source program.
    edge_words: usize,
}

impl LaneExchangeProgram {
    /// Translates `program`'s copies and fills into the lane word space
    /// of `view`.
    ///
    /// Returns `None` when any copied or filled run is not fully inside
    /// one viewed range — then the caller must keep the node-domain
    /// exchange. (For a plan that mirrors its halo buffers whole, every
    /// run maps; the guard only matters for hand-built views.)
    pub fn translate(program: &ExchangeProgram, view: &cmcc_cm2::lane::LaneView) -> Option<Self> {
        let map_run = |addr: usize, len: usize| -> Option<usize> {
            let (word, range) = view.locate(addr)?;
            if addr + len > range.node_base + range.len {
                return None;
            }
            Some(word)
        };
        // Exchange copies commute: every source run is interior words
        // (never written by the exchange) and every destination run is
        // a halo word written exactly once, so the copy list can be
        // reordered freely. The source program walks nodes in the outer
        // loop; regrouping by word run first lines up the adjacent-node
        // copies of one edge direction so the coalescing pass below can
        // batch them into spans.
        let mut mapped = Vec::with_capacity(program.copies.len());
        for op in &program.copies {
            let src = map_run(op.src, op.len)?;
            let dst = map_run(op.dst, op.len)?;
            mapped.push((src, dst, op));
        }
        mapped.sort_by_key(|&(src, dst, op)| (src, dst, op.len, op.from.0));
        let mut copies: Vec<LaneSpanCopy> = Vec::new();
        for (src, dst, op) in mapped {
            // Coalesce with the previous batch when the word runs match
            // and both lanes advance by exactly one node.
            if let Some(last) = copies.last_mut() {
                if last.src == src
                    && last.dst == dst
                    && last.len == op.len
                    && op.from.0 == last.from0 + last.count
                    && op.to.0 == last.to0 + last.count
                {
                    last.count += 1;
                    continue;
                }
            }
            copies.push(LaneSpanCopy {
                from0: op.from.0,
                to0: op.to.0,
                count: 1,
                src,
                dst,
                len: op.len,
            });
        }
        let fills = program
            .fills
            .iter()
            .map(|&(node, addr, len)| Some((node.0, map_run(addr, len)?, len)))
            .collect::<Option<Vec<_>>>()?;
        Some(LaneExchangeProgram {
            copies,
            fills,
            fill: program.fill,
            cycles: program.cycles,
            edge_words: program.edge_words,
        })
    }

    /// The communication cycles one run charges (the source program's).
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Total words one run copies between lane columns, summed over the
    /// whole machine — identical to the source program's
    /// [`ExchangeProgram::words_moved`].
    pub fn words_moved(&self) -> usize {
        self.copies.iter().map(|c| c.count * c.len).sum()
    }

    /// Number of batched span copies one run issues (each moving
    /// `count × len` words); always at most the source program's copy
    /// count, and strictly fewer whenever coalescing found a run of
    /// adjacent nodes.
    pub fn span_count(&self) -> usize {
        self.copies.len()
    }

    /// Machine-total words the NEWS edge step of one run copies.
    pub fn edge_words(&self) -> usize {
        self.edge_words
    }

    /// Machine-total words the diagonal corner step of one run copies
    /// (zero when corners are skipped).
    pub fn corner_words(&self) -> usize {
        self.words_moved() - self.edge_words
    }

    /// Executes the exchange on the mirror and returns the cycles
    /// charged.
    ///
    /// # Panics
    ///
    /// Panics if a node index or lane word is outside the mirror — the
    /// mirror must have been shaped for the same machine and view the
    /// program was translated against.
    pub fn run(&self, mirror: &mut cmcc_cm2::lane::LaneMirror) -> u64 {
        let _t = cmcc_obs::trace::scope(
            cmcc_obs::trace::TraceOp::HaloExchange,
            self.words_moved() as u64,
        );
        cmcc_obs::add(cmcc_obs::Counter::HaloExchanges, 1);
        cmcc_obs::add(cmcc_obs::Counter::ExchangeEdgeWords, self.edge_words as u64);
        cmcc_obs::add(
            cmcc_obs::Counter::ExchangeCornerWords,
            self.corner_words() as u64,
        );
        for op in &self.copies {
            mirror.copy_lane_span(op.from0, op.to0, op.count, op.src, op.dst, op.len);
        }
        for &(node, word, len) in &self.fills {
            mirror.fill_lane_run(node, word, len, self.fill);
        }
        self.cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmcc_cm2::config::MachineConfig;

    /// 2×2 nodes, 4×4 global array (2×2 subgrids), filled with
    /// `10·r + c`.
    fn setup(pad: usize) -> (Machine, CmArray, HaloBuffer) {
        let mut m = Machine::new(MachineConfig::tiny_4()).unwrap();
        let a = CmArray::new(&mut m, 4, 4).unwrap();
        a.fill_with(&mut m, |r, c| (10 * r + c) as f32);
        let h = HaloBuffer::new(&mut m, 2, 2, pad).unwrap();
        h.fill_interior(&mut m, &a);
        (m, a, h)
    }

    /// Reads the halo buffer of `node` at logical subgrid coordinates
    /// (halo at negatives).
    fn read(m: &Machine, h: &HaloBuffer, node: cmcc_cm2::grid::NodeId, r: i64, c: i64) -> f32 {
        m.mem(node).read(h.layout().addr(r, c))
    }

    #[test]
    fn interior_is_copied() {
        let (m, _, h) = setup(1);
        let n = m.grid().id(1, 1); // global rows 2..4, cols 2..4
        assert_eq!(read(&m, &h, n, 0, 0), 22.0);
        assert_eq!(read(&m, &h, n, 1, 1), 33.0);
    }

    #[test]
    fn circular_exchange_wraps_the_torus() {
        let (mut m, _, h) = setup(1);
        h.exchange(&mut m, Boundary::Circular, true, ExchangePrimitive::News);
        let n00 = m.grid().id(0, 0); // global rows 0..2, cols 0..2
                                     // North halo of node (0,0) wraps to global row 3.
        assert_eq!(read(&m, &h, n00, -1, 0), 30.0);
        assert_eq!(read(&m, &h, n00, -1, 1), 31.0);
        // West halo wraps to global column 3.
        assert_eq!(read(&m, &h, n00, 0, -1), 3.0);
        // South halo is global row 2.
        assert_eq!(read(&m, &h, n00, 2, 0), 20.0);
        // East halo is global column 2.
        assert_eq!(read(&m, &h, n00, 1, 2), 12.0);
        // NW corner wraps both ways: global (3, 3).
        assert_eq!(read(&m, &h, n00, -1, -1), 33.0);
        // SE corner: global (2, 2).
        assert_eq!(read(&m, &h, n00, 2, 2), 22.0);
    }

    #[test]
    fn skipping_corners_leaves_them_unwritten() {
        let (mut m, _, h) = setup(1);
        h.exchange(&mut m, Boundary::Circular, false, ExchangePrimitive::News);
        let n00 = m.grid().id(0, 0);
        // Edges arrive…
        assert_eq!(read(&m, &h, n00, -1, 0), 30.0);
        // …but the corner stays at its initial zero.
        assert_eq!(read(&m, &h, n00, -1, -1), 0.0);
    }

    #[test]
    fn zero_fill_clears_global_edges_only() {
        let (mut m, _, h) = setup(1);
        h.exchange(&mut m, Boundary::ZeroFill, true, ExchangePrimitive::News);
        let n00 = m.grid().id(0, 0);
        // Global north edge: zeros.
        assert_eq!(read(&m, &h, n00, -1, 0), 0.0);
        assert_eq!(read(&m, &h, n00, -1, -1), 0.0);
        // Interior-facing halos keep real data.
        assert_eq!(read(&m, &h, n00, 2, 0), 20.0);
        assert_eq!(read(&m, &h, n00, 1, 2), 12.0);
        // SE corner faces the interior diagonal: real data.
        assert_eq!(read(&m, &h, n00, 2, 2), 22.0);
        // Node (1,1): its south and east halos are global edges.
        let n11 = m.grid().id(1, 1);
        assert_eq!(read(&m, &h, n11, 2, 0), 0.0);
        assert_eq!(read(&m, &h, n11, 0, 2), 0.0);
        assert_eq!(read(&m, &h, n11, -1, -1), 11.0);
    }

    #[test]
    fn pad_two_exchanges_two_deep() {
        let mut m = Machine::new(MachineConfig::tiny_4()).unwrap();
        let a = CmArray::new(&mut m, 8, 8).unwrap();
        a.fill_with(&mut m, |r, c| (10 * r + c) as f32);
        let h = HaloBuffer::new(&mut m, 4, 4, 2).unwrap();
        h.fill_interior(&mut m, &a);
        h.exchange(&mut m, Boundary::Circular, true, ExchangePrimitive::News);
        let n00 = m.grid().id(0, 0);
        assert_eq!(read(&m, &h, n00, -2, 0), 60.0); // global row 6
        assert_eq!(read(&m, &h, n00, -1, 3), 73.0); // row 7, col 3
        assert_eq!(read(&m, &h, n00, 0, -2), 6.0); // col 6
        assert_eq!(read(&m, &h, n00, -2, -2), 66.0); // corner (6, 6)
        assert_eq!(read(&m, &h, n00, 5, 5), 55.0); // SE corner block
    }

    #[test]
    fn halo_deeper_than_subgrid_rejected() {
        let mut m = Machine::new(MachineConfig::tiny_4()).unwrap();
        assert!(matches!(
            HaloBuffer::new(&mut m, 2, 8, 3),
            Err(RuntimeError::SubgridTooSmall { .. })
        ));
    }

    #[test]
    fn cost_model_matches_primitives() {
        let cfg = MachineConfig::test_board_16();
        let news = HaloBuffer::exchange_cost(&cfg, 64, 64, 1, false, ExchangePrimitive::News);
        let old =
            HaloBuffer::exchange_cost(&cfg, 64, 64, 1, false, ExchangePrimitive::OldPerDirection);
        assert!(old > news);
        let with_corners =
            HaloBuffer::exchange_cost(&cfg, 64, 64, 1, true, ExchangePrimitive::News);
        assert!(with_corners > news);
        assert_eq!(
            HaloBuffer::exchange_cost(&cfg, 64, 64, 0, true, ExchangePrimitive::News),
            0
        );
    }

    #[test]
    fn lane_exchange_matches_node_exchange() {
        use cmcc_cm2::lane::{LaneMirror, LaneView};
        for (boundary, corners) in [
            (Boundary::Circular, true),
            (Boundary::Circular, false),
            (Boundary::ZeroFill, true),
            (Boundary::ZeroFill, false),
        ] {
            // Node-domain reference.
            let (mut node_m, _, h) = setup(1);
            let program = ExchangeProgram::new(
                &h,
                node_m.grid(),
                node_m.config(),
                boundary,
                0.5,
                corners,
                ExchangePrimitive::News,
            );
            let node_cycles = program.run(&mut node_m);

            // Lane-domain: an identical machine, with the exchange
            // running purely on the mirror (two thread groups, so copies
            // cross a group boundary).
            let (mut lane_m, _, h2) = setup(1);
            let view = LaneView::new(&[(h2.field().base(), h2.field().len(), true)]).unwrap();
            let lane = LaneExchangeProgram::translate(&program, &view)
                .expect("a whole-buffer view maps every run");
            assert_eq!(lane.words_moved(), program.words_moved());
            assert_eq!(lane.cycles(), program.cycles());
            // Translate-time coalescing must have batched adjacent-node
            // copies: the edge steps walk whole board rows/columns, so
            // strictly fewer spans than source copies.
            assert!(
                lane.span_count() < program.copies.len(),
                "no spans coalesced: {} spans from {} copies",
                lane.span_count(),
                program.copies.len()
            );
            let mut mirror = LaneMirror::new();
            {
                let (_, mems) = lane_m.exec_parts_mut();
                mirror.ensure(view.words(), mems.len(), 2);
                mirror.gather(&view, mems);
                assert_eq!(lane.run(&mut mirror), node_cycles);
                mirror.scatter(&view, mems);
            }
            for node in node_m.grid().iter() {
                assert_eq!(
                    node_m.mem(node).field(h.field()),
                    lane_m.mem(node).field(h2.field()),
                    "halo of {node} diverged ({boundary:?}, corners={corners})"
                );
            }
        }
    }

    #[test]
    fn lane_exchange_translation_requires_whole_runs() {
        use cmcc_cm2::lane::LaneView;
        let (m, _, h) = setup(1);
        let program = ExchangeProgram::new(
            &h,
            m.grid(),
            m.config(),
            Boundary::Circular,
            0.0,
            true,
            ExchangePrimitive::News,
        );
        assert!(program.words_moved() > 0);
        // A view that splits the halo buffer mid-run cannot host the
        // exchange: some copy's word run crosses the seam.
        let base = h.field().base();
        let len = h.field().len();
        let split = LaneView::new(&[(base, 10, true), (base + 10, len - 10, true)]).unwrap();
        assert!(LaneExchangeProgram::translate(&program, &split).is_none());
    }

    #[test]
    fn fill_program_writes_exactly_the_beyond_edge_frame() {
        use cmcc_cm2::lane::{LaneMirror, LaneView};
        // Poison the whole padded buffer, run the fill program, and
        // check that beyond-global-edge positions (and only those) were
        // overwritten — on nodes at every board position.
        let (mut m, _, h) = setup(1);
        for node in m.grid().iter() {
            let base = h.field().base();
            m.mem_mut(node).fill_range(base, h.field().len(), -9.0);
        }
        let program = FillProgram::boundary(&h, m.grid(), Boundary::ZeroFill, 7.5);
        assert!(!program.is_empty());
        program.run(&mut m);
        let grid = m.grid();
        for node in grid.iter() {
            let (gr, gc) = grid.coords(node);
            for r in -1..3_i64 {
                for c in -1..3_i64 {
                    let beyond = (r < 0 && gr == 0)
                        || (r >= 2 && gr == grid.rows() - 1)
                        || (c < 0 && gc == 0)
                        || (c >= 2 && gc == grid.cols() - 1);
                    let want = if beyond { 7.5 } else { -9.0 };
                    assert_eq!(
                        read(&m, &h, node, r, c),
                        want,
                        "node {node} logical ({r}, {c})"
                    );
                }
            }
        }
        // Circular has nothing to restore.
        assert!(FillProgram::boundary(&h, grid, Boundary::Circular, 7.5).is_empty());

        // The lane translation writes the same words.
        let (mut lane_m, _, h2) = setup(1);
        for node in lane_m.grid().iter() {
            let base = h2.field().base();
            lane_m
                .mem_mut(node)
                .fill_range(base, h2.field().len(), -9.0);
        }
        let view = LaneView::new(&[(h2.field().base(), h2.field().len(), true)]).unwrap();
        let lane = LaneFillProgram::translate(&program, &view).expect("whole-buffer view maps");
        let mut mirror = LaneMirror::new();
        {
            let (_, mems) = lane_m.exec_parts_mut();
            mirror.ensure(view.words(), mems.len(), 2);
            mirror.gather(&view, mems);
            lane.run(&mut mirror);
            mirror.scatter(&view, mems);
        }
        for node in m.grid().iter() {
            assert_eq!(
                m.mem(node).field(h.field()),
                lane_m.mem(node).field(h2.field()),
                "lane fill diverged on {node}"
            );
        }
    }

    #[test]
    fn exchange_cost_agrees_with_exchange() {
        let (mut m, _, h) = setup(1);
        let charged = h.exchange(&mut m, Boundary::Circular, true, ExchangePrimitive::News);
        let predicted =
            HaloBuffer::exchange_cost(m.config(), 2, 2, 1, true, ExchangePrimitive::News);
        assert_eq!(charged, predicted);
    }
}
