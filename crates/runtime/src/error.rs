//! Run-time library errors.

use cmcc_cm2::exec::HazardError;
use cmcc_cm2::memory::OutOfMemory;
use std::error::Error;
use std::fmt;

/// Anything the run-time library can refuse or fail at.
#[derive(Debug, Clone, PartialEq)]
pub enum RuntimeError {
    /// The global array shape does not divide evenly over the node grid.
    IndivisibleShape {
        /// Requested global rows.
        rows: usize,
        /// Requested global columns.
        cols: usize,
        /// Node grid rows.
        grid_rows: usize,
        /// Node grid columns.
        grid_cols: usize,
    },
    /// Arrays passed to one stencil call have different shapes.
    ShapeMismatch {
        /// Description of the offending argument.
        what: String,
    },
    /// The subgrid is smaller than the halo the stencil needs, so a
    /// single exchange with the four neighbors cannot provide all the
    /// border data.
    SubgridTooSmall {
        /// Halo padding required.
        pad: usize,
        /// Subgrid rows.
        sub_rows: usize,
        /// Subgrid columns.
        sub_cols: usize,
    },
    /// The caller supplied the wrong number of coefficient arrays.
    WrongCoeffCount {
        /// Arrays expected (named coefficients in the statement).
        expected: usize,
        /// Arrays supplied.
        got: usize,
    },
    /// The caller supplied the wrong number of source arrays for a
    /// (possibly multi-source) stencil.
    WrongSourceCount {
        /// Sources the statement shifts.
        expected: usize,
        /// Sources supplied.
        got: usize,
    },
    /// Node memory exhausted.
    OutOfMemory(OutOfMemory),
    /// The compiled kernel tripped the simulator's pipeline hazard
    /// detector — a compiler bug surfaced at run time.
    Hazard(HazardError),
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::IndivisibleShape {
                rows,
                cols,
                grid_rows,
                grid_cols,
            } => write!(
                f,
                "array shape {rows}x{cols} does not divide over the {grid_rows}x{grid_cols} node grid"
            ),
            RuntimeError::ShapeMismatch { what } => write!(f, "shape mismatch: {what}"),
            RuntimeError::SubgridTooSmall {
                pad,
                sub_rows,
                sub_cols,
            } => write!(
                f,
                "subgrid {sub_rows}x{sub_cols} is smaller than the {pad}-deep halo the stencil needs"
            ),
            RuntimeError::WrongCoeffCount { expected, got } => write!(
                f,
                "stencil call expected {expected} coefficient arrays, got {got}"
            ),
            RuntimeError::WrongSourceCount { expected, got } => write!(
                f,
                "stencil call expected {expected} source arrays, got {got}"
            ),
            RuntimeError::OutOfMemory(e) => e.fmt(f),
            RuntimeError::Hazard(e) => e.fmt(f),
        }
    }
}

impl Error for RuntimeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RuntimeError::OutOfMemory(e) => Some(e),
            RuntimeError::Hazard(e) => Some(e),
            _ => None,
        }
    }
}

impl From<OutOfMemory> for RuntimeError {
    fn from(e: OutOfMemory) -> Self {
        RuntimeError::OutOfMemory(e)
    }
}

impl From<HazardError> for RuntimeError {
    fn from(e: HazardError) -> Self {
        RuntimeError::Hazard(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = RuntimeError::IndivisibleShape {
            rows: 5,
            cols: 4,
            grid_rows: 2,
            grid_cols: 2,
        };
        assert!(e.to_string().contains("5x4"));
        let e = RuntimeError::SubgridTooSmall {
            pad: 3,
            sub_rows: 2,
            sub_cols: 8,
        };
        assert!(e.to_string().contains("halo"));
        let e = RuntimeError::WrongCoeffCount {
            expected: 5,
            got: 4,
        };
        assert!(e.to_string().contains("5"));
    }

    #[test]
    fn conversions_carry_sources() {
        let oom = OutOfMemory {
            requested: 10,
            available: 5,
        };
        let e = RuntimeError::from(oom);
        assert!(std::error::Error::source(&e).is_some());
    }
}
