//! Distributed arrays: global 2-D arrays divided into per-node subgrids.
//!
//! "All the arrays involved in the stencil computation — source, result,
//! and coefficient — are of the same size and shape. They are expected to
//! be divided up among the nodes in the same manner. The nodes themselves
//! are arranged in a two-dimensional grid; each node contains a
//! two-dimensional subgrid of each array" (§5, Figure 1). A 256×256 array
//! on a 4×4 node grid gives every node a 64×64 subgrid.

use crate::error::RuntimeError;
use cmcc_cm2::exec::FieldLayout;
use cmcc_cm2::grid::NodeId;
use cmcc_cm2::machine::Machine;
use cmcc_cm2::memory::Field;

/// A global 2-D `f32` array distributed across the machine's node grid in
/// Figure 1 style: node `(R, C)` holds the block of rows
/// `R·sub_rows .. (R+1)·sub_rows` and columns `C·sub_cols .. (C+1)·sub_cols`.
///
/// # Examples
///
/// ```
/// use cmcc_cm2::{Machine, MachineConfig};
/// use cmcc_runtime::array::CmArray;
///
/// let mut machine = Machine::new(MachineConfig::tiny_4())?;
/// let a = CmArray::new(&mut machine, 8, 8)?;
/// a.fill_with(&mut machine, |r, c| (r * 8 + c) as f32);
/// assert_eq!(a.get(&machine, 3, 5), 29.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy)]
pub struct CmArray {
    field: Field,
    rows: usize,
    cols: usize,
    sub_rows: usize,
    sub_cols: usize,
}

impl CmArray {
    /// Allocates a `rows × cols` array across `machine`.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::IndivisibleShape`] when the global shape
    /// does not divide evenly over the node grid, or
    /// [`RuntimeError::OutOfMemory`] when node memory is exhausted.
    pub fn new(machine: &mut Machine, rows: usize, cols: usize) -> Result<Self, RuntimeError> {
        let grid = machine.grid();
        if rows == 0
            || cols == 0
            || !rows.is_multiple_of(grid.rows())
            || !cols.is_multiple_of(grid.cols())
        {
            return Err(RuntimeError::IndivisibleShape {
                rows,
                cols,
                grid_rows: grid.rows(),
                grid_cols: grid.cols(),
            });
        }
        let sub_rows = rows / grid.rows();
        let sub_cols = cols / grid.cols();
        let field = machine.alloc_field(sub_rows * sub_cols)?;
        Ok(CmArray {
            field,
            rows,
            cols,
            sub_rows,
            sub_cols,
        })
    }

    /// Global rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Global columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Rows per node subgrid.
    pub fn sub_rows(&self) -> usize {
        self.sub_rows
    }

    /// Columns per node subgrid.
    pub fn sub_cols(&self) -> usize {
        self.sub_cols
    }

    /// Whether `other` has the same global and subgrid shape.
    pub fn same_shape(&self, other: &CmArray) -> bool {
        self.rows == other.rows && self.cols == other.cols
    }

    /// The backing field (same address on every node).
    pub fn field(&self) -> Field {
        self.field
    }

    /// Address arithmetic for this array's subgrid on any node.
    pub fn layout(&self) -> FieldLayout {
        FieldLayout {
            base: self.field.base(),
            row_stride: self.sub_cols,
            row_offset: 0,
            col_offset: 0,
        }
    }

    /// The node owning global element `(r, c)` and the element's
    /// subgrid-local coordinates.
    ///
    /// # Panics
    ///
    /// Panics if `(r, c)` is outside the array.
    pub fn locate(&self, machine: &Machine, r: usize, c: usize) -> (NodeId, usize, usize) {
        assert!(
            r < self.rows && c < self.cols,
            "({r}, {c}) outside {}x{}",
            self.rows,
            self.cols
        );
        let node = machine.grid().id(r / self.sub_rows, c / self.sub_cols);
        (node, r % self.sub_rows, c % self.sub_cols)
    }

    /// Reads global element `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn get(&self, machine: &Machine, r: usize, c: usize) -> f32 {
        let (node, lr, lc) = self.locate(machine, r, c);
        machine
            .mem(node)
            .read(self.field.addr(lr * self.sub_cols + lc))
    }

    /// Writes global element `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn set(&self, machine: &mut Machine, r: usize, c: usize, value: f32) {
        machine.note_host_write();
        let (node, lr, lc) = self.locate(machine, r, c);
        let addr = self.field.addr(lr * self.sub_cols + lc);
        machine.mem_mut(node).write(addr, value);
    }

    /// Scatters a row-major host buffer into the distributed array.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn scatter(&self, machine: &mut Machine, data: &[f32]) {
        assert_eq!(
            data.len(),
            self.rows * self.cols,
            "host buffer length mismatch"
        );
        machine.note_host_write();
        let grid = machine.grid();
        for (node, mem) in machine.par_nodes_mut() {
            let (gr, gc) = grid.coords(node);
            let sub = mem.field_mut(self.field);
            for lr in 0..self.sub_rows {
                let global_row = gr * self.sub_rows + lr;
                let src = global_row * self.cols + gc * self.sub_cols;
                sub[lr * self.sub_cols..(lr + 1) * self.sub_cols]
                    .copy_from_slice(&data[src..src + self.sub_cols]);
            }
        }
    }

    /// Gathers the distributed array into a row-major host buffer.
    pub fn gather(&self, machine: &Machine) -> Vec<f32> {
        let mut out = vec![0.0; self.rows * self.cols];
        for node in machine.grid().iter() {
            let (gr, gc) = machine.grid().coords(node);
            let sub = machine.mem(node).field(self.field);
            for lr in 0..self.sub_rows {
                let global_row = gr * self.sub_rows + lr;
                let dst = global_row * self.cols + gc * self.sub_cols;
                out[dst..dst + self.sub_cols]
                    .copy_from_slice(&sub[lr * self.sub_cols..(lr + 1) * self.sub_cols]);
            }
        }
        out
    }

    /// Fills every element with `value`.
    pub fn fill(&self, machine: &mut Machine, value: f32) {
        machine.note_host_write();
        for (_, mem) in machine.par_nodes_mut() {
            mem.fill_field(self.field, value);
        }
    }

    /// Fills element `(r, c)` with `f(r, c)` (global coordinates).
    pub fn fill_with(&self, machine: &mut Machine, f: impl Fn(usize, usize) -> f32) {
        let data: Vec<f32> = (0..self.rows * self.cols)
            .map(|i| f(i / self.cols, i % self.cols))
            .collect();
        self.scatter(machine, &data);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmcc_cm2::config::MachineConfig;

    fn machine() -> Machine {
        Machine::new(MachineConfig::tiny_4()).unwrap()
    }

    #[test]
    fn scatter_gather_round_trips() {
        let mut m = machine();
        let a = CmArray::new(&mut m, 6, 8).unwrap();
        let data: Vec<f32> = (0..48).map(|i| i as f32 * 0.5).collect();
        a.scatter(&mut m, &data);
        assert_eq!(a.gather(&m), data);
    }

    #[test]
    fn figure_1_block_layout() {
        // A 256×256 array on a 4×4 grid: node (3, 2) holds rows 192..256,
        // columns 128..192 — "A(193:256, 129:192)" in Fortran's 1-based
        // notation (Figure 1).
        let mut m = Machine::new(MachineConfig::test_board_16()).unwrap();
        let a = CmArray::new(&mut m, 256, 256).unwrap();
        assert_eq!(a.sub_rows(), 64);
        assert_eq!(a.sub_cols(), 64);
        let (node, lr, lc) = a.locate(&m, 192, 128);
        assert_eq!(node, m.grid().id(3, 2));
        assert_eq!((lr, lc), (0, 0));
    }

    #[test]
    fn get_set_align_with_scatter() {
        let mut m = machine();
        let a = CmArray::new(&mut m, 4, 4).unwrap();
        a.set(&mut m, 3, 1, 7.5);
        let host = a.gather(&m);
        assert_eq!(host[3 * 4 + 1], 7.5);
        assert_eq!(a.get(&m, 3, 1), 7.5);
    }

    #[test]
    fn fill_with_uses_global_coordinates() {
        let mut m = machine();
        let a = CmArray::new(&mut m, 4, 6).unwrap();
        a.fill_with(&mut m, |r, c| (10 * r + c) as f32);
        assert_eq!(a.get(&m, 2, 5), 25.0);
        assert_eq!(a.get(&m, 0, 0), 0.0);
    }

    #[test]
    fn indivisible_shapes_rejected() {
        let mut m = machine();
        assert!(matches!(
            CmArray::new(&mut m, 5, 4),
            Err(RuntimeError::IndivisibleShape { .. })
        ));
        assert!(matches!(
            CmArray::new(&mut m, 4, 7),
            Err(RuntimeError::IndivisibleShape { .. })
        ));
        assert!(CmArray::new(&mut m, 0, 4).is_err());
    }

    #[test]
    fn distinct_arrays_do_not_alias() {
        let mut m = machine();
        let a = CmArray::new(&mut m, 4, 4).unwrap();
        let b = CmArray::new(&mut m, 4, 4).unwrap();
        a.fill(&mut m, 1.0);
        b.fill(&mut m, 2.0);
        assert_eq!(a.get(&m, 0, 0), 1.0);
        assert_eq!(b.get(&m, 0, 0), 2.0);
        assert!(a.same_shape(&b));
    }

    #[test]
    fn layout_matches_get() {
        let mut m = machine();
        let a = CmArray::new(&mut m, 4, 4).unwrap();
        a.set(&mut m, 1, 1, 9.0); // node (0,0) local (1,1)
        let layout = a.layout();
        let node = m.grid().id(0, 0);
        assert_eq!(m.mem(node).read(layout.addr(1, 1)), 9.0);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn out_of_bounds_get_panics() {
        let mut m = machine();
        let a = CmArray::new(&mut m, 4, 4).unwrap();
        let _ = a.get(&m, 4, 0);
    }
}
