//! Three-dimensional arrays and the outer plane loop.
//!
//! The paper's run-time library "provides the outer loop structure for
//! strip-mining and for handling multidimensional arrays" (§1): the
//! compiled kernels are two-dimensional, and higher-rank arrays are
//! processed plane by plane. A [`CmVolume`] is a stack of distributed
//! planes; [`convolve_volume`] runs a compiled kernel over every plane.
//!
//! Third-dimension stencil terms compose with the multi-source extension:
//! a 3-D stencil like the 7-point Laplacian is written as a fused 2-D
//! multi-source statement over the planes above and below
//! (`R = CD*CSHIFT(PDOWN,1,0) + … + CU*CSHIFT(PUP,1,0)`), and
//! `plane_offsets` binds kernel source *s* to the plane `p + offsets[s]`.
//! The depth boundary follows the stencil's own discipline: circular for
//! `CSHIFT` statements, zero planes for `EOSHIFT`.

use crate::array::CmArray;
use crate::convolve::ExecOptions;
use crate::error::RuntimeError;
use crate::plan::{ExecutionPlan, PlanLifetime, StencilBinding};
use cmcc_cm2::machine::Machine;
use cmcc_cm2::timing::Measurement;
use cmcc_core::compiler::CompiledStencil;
use cmcc_core::stencil::Boundary;

/// A distributed 3-D `f32` array: `depth` planes of `rows × cols`, each
/// plane divided over the node grid like a [`CmArray`].
#[derive(Debug, Clone)]
pub struct CmVolume {
    planes: Vec<CmArray>,
    rows: usize,
    cols: usize,
}

impl CmVolume {
    /// Allocates a `depth × rows × cols` volume.
    ///
    /// # Errors
    ///
    /// As [`CmArray::new`], per plane.
    pub fn new(
        machine: &mut Machine,
        depth: usize,
        rows: usize,
        cols: usize,
    ) -> Result<Self, RuntimeError> {
        assert!(depth > 0, "a volume needs at least one plane");
        let planes = (0..depth)
            .map(|_| CmArray::new(machine, rows, cols))
            .collect::<Result<_, _>>()?;
        Ok(CmVolume { planes, rows, cols })
    }

    /// Number of planes.
    pub fn depth(&self) -> usize {
        self.planes.len()
    }

    /// Rows per plane.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Columns per plane.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// One plane.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn plane(&self, p: usize) -> &CmArray {
        &self.planes[p]
    }

    /// Fills element `(p, r, c)` with `f(p, r, c)`.
    pub fn fill_with(&self, machine: &mut Machine, f: impl Fn(usize, usize, usize) -> f32) {
        for (p, plane) in self.planes.iter().enumerate() {
            plane.fill_with(machine, |r, c| f(p, r, c));
        }
    }

    /// Gathers the volume into a host buffer, plane-major.
    pub fn gather(&self, machine: &Machine) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.depth() * self.rows * self.cols);
        for plane in &self.planes {
            out.extend(plane.gather(machine));
        }
        out
    }

    /// Whether `other` has the same shape.
    pub fn same_shape(&self, other: &CmVolume) -> bool {
        self.depth() == other.depth() && self.rows == other.rows && self.cols == other.cols
    }
}

/// Applies a compiled (possibly multi-source) 2-D kernel across every
/// plane of a volume: kernel source `s` reads the plane at
/// `p + plane_offsets[s]`. Pass `&[0]` for an ordinary single-source
/// stencil applied plane by plane.
///
/// The depth boundary follows the stencil's boundary discipline:
/// `CSHIFT` statements wrap circularly in depth, `EOSHIFT` statements
/// read zero planes beyond the ends.
///
/// Returns the summed measurement over all planes.
///
/// # Errors
///
/// [`RuntimeError::WrongSourceCount`] if `plane_offsets` does not match
/// the kernel's source count; otherwise as [`crate::convolve_multi`], per plane.
pub fn convolve_volume(
    machine: &mut Machine,
    compiled: &CompiledStencil,
    result: &CmVolume,
    source: &CmVolume,
    plane_offsets: &[i32],
    coeffs: &[&CmVolume],
    opts: &ExecOptions,
) -> Result<Measurement, RuntimeError> {
    let expected = compiled.stencil().source_count().max(1);
    if plane_offsets.len() != expected {
        return Err(RuntimeError::WrongSourceCount {
            expected,
            got: plane_offsets.len(),
        });
    }
    if !result.same_shape(source) {
        return Err(RuntimeError::ShapeMismatch {
            what: "result and source volumes differ in shape".to_owned(),
        });
    }
    for c in coeffs {
        if !c.same_shape(source) {
            return Err(RuntimeError::ShapeMismatch {
                what: "coefficient volume differs in shape".to_owned(),
            });
        }
    }

    let depth = source.depth() as i64;
    // A shared zero plane backs out-of-range depth reads under EOSHIFT
    // semantics. Allocated only when some plane needs it.
    let needs_zero = compiled.stencil().boundary() == Boundary::ZeroFill
        && plane_offsets.iter().any(|&o| o != 0);
    let mark = machine.alloc_mark();
    let outcome = (|| {
        let zero_plane = if needs_zero {
            let plane = CmArray::new(machine, source.rows(), source.cols())?;
            if compiled.stencil().fill() != 0.0 {
                plane.fill(machine, compiled.stencil().fill());
            }
            Some(plane)
        } else {
            None
        };
        // One plan serves the whole volume: every plane has the same
        // shape, so plane `p` is a rebind — a pure address shift — rather
        // than a fresh round of allocation and schedule building.
        let mut plan: Option<ExecutionPlan> = None;
        let mut total: Option<Measurement> = None;
        for p in 0..depth {
            let sources: Vec<&CmArray> = plane_offsets
                .iter()
                .map(|&off| {
                    let q = p + i64::from(off);
                    match compiled.stencil().boundary() {
                        Boundary::Circular => source.plane(q.rem_euclid(depth) as usize),
                        Boundary::ZeroFill => {
                            if (0..depth).contains(&q) {
                                source.plane(q as usize)
                            } else {
                                zero_plane.as_ref().expect("zero plane allocated")
                            }
                        }
                    }
                })
                .collect();
            let coeff_planes: Vec<&CmArray> = coeffs.iter().map(|c| c.plane(p as usize)).collect();
            let result_plane = result.plane(p as usize);
            let m = match &mut plan {
                None => {
                    let binding =
                        StencilBinding::new(compiled, result_plane, &sources, &coeff_planes)?;
                    let mut built =
                        ExecutionPlan::build(machine, &binding, opts, PlanLifetime::Scoped)?;
                    let m = built.execute(machine)?;
                    plan = Some(built);
                    m
                }
                Some(plan) => {
                    plan.rebind(result_plane, &sources, &coeff_planes)?;
                    plan.execute(machine)?
                }
            };
            total = Some(match total {
                None => m,
                Some(t) => t.combine(&m),
            });
        }
        Ok(total.expect("volumes have at least one plane"))
    })();
    machine.release_to(mark);
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::{reference_convolve_multi, CoeffValue};
    use cmcc_cm2::config::MachineConfig;
    use cmcc_core::compiler::Compiler;

    fn machine() -> Machine {
        Machine::new(MachineConfig::tiny_4()).unwrap()
    }

    /// The 7-point 3-D Laplacian-style stencil as a fused multi-source
    /// statement: PD = plane below, P = this plane, PU = plane above.
    const SEVEN_POINT_3D: &str = "R = 0.1 * CSHIFT(PD, 1, 0) \
                                    + 0.15 * CSHIFT(P, 1, -1) \
                                    + 0.15 * CSHIFT(P, 2, -1) \
                                    + 0.2 * P \
                                    + 0.15 * CSHIFT(P, 2, +1) \
                                    + 0.15 * CSHIFT(P, 1, +1) \
                                    + 0.1 * CSHIFT(PU, 1, 0)";

    #[test]
    fn seven_point_3d_matches_per_plane_reference() {
        let mut m = machine();
        let compiled = Compiler::new(m.config().clone())
            .compile_assignment_extended(SEVEN_POINT_3D)
            .unwrap();
        assert_eq!(compiled.spec().sources, vec!["PD", "P", "PU"]);

        let (depth, rows, cols) = (5usize, 8usize, 8usize);
        let x = CmVolume::new(&mut m, depth, rows, cols).unwrap();
        let r = CmVolume::new(&mut m, depth, rows, cols).unwrap();
        x.fill_with(&mut m, |p, i, j| {
            ((p * 19 + i * 7 + j * 3) % 23) as f32 * 0.4 - 4.0
        });

        convolve_volume(
            &mut m,
            &compiled,
            &r,
            &x,
            &[-1, 0, 1],
            &[],
            &ExecOptions::default(),
        )
        .unwrap();

        // Host reference: per output plane, evaluate the fused 2-D
        // stencil against the wrapped neighbor planes.
        let host_planes: Vec<Vec<f32>> = (0..depth).map(|p| x.plane(p).gather(&m)).collect();
        let values: Vec<CoeffValue<'_>> = compiled
            .spec()
            .coeffs
            .iter()
            .map(|c| match c {
                cmcc_core::recognize::CoeffSpec::Literal(v) => CoeffValue::Literal(*v),
                cmcc_core::recognize::CoeffSpec::Named(_) => unreachable!("all literal"),
            })
            .collect();
        for p in 0..depth {
            let below = &host_planes[(p + depth - 1) % depth];
            let here = &host_planes[p];
            let above = &host_planes[(p + 1) % depth];
            let want = reference_convolve_multi(
                compiled.stencil(),
                rows,
                cols,
                &[below, here, above],
                &values,
            );
            let got = r.plane(p).gather(&m);
            for (g, w) in got.iter().zip(&want) {
                assert_eq!(g.to_bits(), w.to_bits(), "plane {p}");
            }
        }
    }

    #[test]
    fn zero_fill_depth_boundary() {
        let mut m = machine();
        // Pure depth shift: R(p) = X(p+1), zero beyond the last plane.
        let compiled = Compiler::new(m.config().clone())
            .compile_assignment_extended("R = 1.0 * EOSHIFT(PU, 1, 0)")
            .unwrap();
        let (depth, rows, cols) = (3usize, 4usize, 4usize);
        let x = CmVolume::new(&mut m, depth, rows, cols).unwrap();
        let r = CmVolume::new(&mut m, depth, rows, cols).unwrap();
        x.fill_with(&mut m, |p, _, _| (p + 1) as f32);

        convolve_volume(
            &mut m,
            &compiled,
            &r,
            &x,
            &[1],
            &[],
            &ExecOptions::default(),
        )
        .unwrap();
        assert_eq!(r.plane(0).get(&m, 0, 0), 2.0);
        assert_eq!(r.plane(1).get(&m, 2, 2), 3.0);
        assert_eq!(r.plane(2).get(&m, 1, 3), 0.0, "beyond the last plane");
    }

    #[test]
    fn plane_by_plane_single_source() {
        let mut m = machine();
        let compiled = Compiler::new(m.config().clone())
            .compile_assignment("R = 0.5 * CSHIFT(X, 2, 1) + 0.5 * X")
            .unwrap();
        let (depth, rows, cols) = (2usize, 4usize, 4usize);
        let x = CmVolume::new(&mut m, depth, rows, cols).unwrap();
        let r = CmVolume::new(&mut m, depth, rows, cols).unwrap();
        x.fill_with(&mut m, |p, _, c| (p * 10 + c) as f32);
        let meas = convolve_volume(
            &mut m,
            &compiled,
            &r,
            &x,
            &[0],
            &[],
            &ExecOptions::default(),
        )
        .unwrap();
        // Each plane averaged with its east neighbor (circular).
        assert_eq!(r.plane(0).get(&m, 0, 0), 0.5);
        assert_eq!(r.plane(1).get(&m, 0, 3), 0.5 * 13.0 + 0.5 * 10.0);
        // Measurement sums over planes.
        assert_eq!(
            meas.useful_flops,
            2 * (rows * cols) as u64 * compiled.stencil().useful_flops_per_point()
        );
    }

    #[test]
    fn wrong_offset_count_rejected() {
        let mut m = machine();
        let compiled = Compiler::new(m.config().clone())
            .compile_assignment("R = 1.0 * X")
            .unwrap();
        let x = CmVolume::new(&mut m, 2, 4, 4).unwrap();
        let r = CmVolume::new(&mut m, 2, 4, 4).unwrap();
        let err = convolve_volume(
            &mut m,
            &compiled,
            &r,
            &x,
            &[0, 1],
            &[],
            &ExecOptions::default(),
        )
        .unwrap_err();
        assert!(matches!(err, RuntimeError::WrongSourceCount { .. }));
    }

    #[test]
    fn temporaries_are_released_across_planes() {
        let mut m = machine();
        let compiled = Compiler::new(m.config().clone())
            .compile_assignment_extended("R = 1.0 * EOSHIFT(PU, 1, 0)")
            .unwrap();
        let x = CmVolume::new(&mut m, 3, 4, 4).unwrap();
        let r = CmVolume::new(&mut m, 3, 4, 4).unwrap();
        let before = m.alloc_mark();
        convolve_volume(
            &mut m,
            &compiled,
            &r,
            &x,
            &[1],
            &[],
            &ExecOptions::default(),
        )
        .unwrap();
        assert_eq!(m.alloc_mark(), before);
    }
}
