//! Run-time library for the Connection Machine Convolution Compiler.
//!
//! The paper splits the system four ways; this crate is the run-time
//! library's share: "allocating temporary memory space, performing
//! interprocessor communication, and providing the outer levels of
//! iteration" (§5). It owns:
//!
//! * [`mod@array`] — distributed arrays divided into node subgrids
//!   (Figure 1);
//! * [`halo`] — temporary-storage allocation and the three-step halo
//!   exchange (four neighbors simultaneously, corners when needed);
//! * [`strips`] — strip mining with widest-first shaving and half-strip
//!   splitting;
//! * [`mod@convolve`] — the stencil-call entry point tying compiler output to
//!   the simulated machine, returning the paper's accounting
//!   (useful flops, cycles by phase);
//! * [`plan`] — the compile → bind → plan → execute pipeline:
//!   [`plan::ExecutionPlan`] captures every per-call decision (halo
//!   buffers, exchange programs, constant pages, pre-resolved kernel
//!   schedules) once, so iterative applications replay only data movement
//!   and arithmetic;
//! * [`mod@reference`] — a host-side golden model with Fortran
//!   `CSHIFT`/`EOSHIFT` semantics, matched bit for bit by compiled
//!   execution.
//!
//! # Examples
//!
//! ```
//! use cmcc_cm2::{Machine, MachineConfig};
//! use cmcc_core::Compiler;
//! use cmcc_runtime::{convolve, CmArray, ExecOptions};
//!
//! let mut machine = Machine::new(MachineConfig::tiny_4())?;
//! let compiled = Compiler::new(machine.config().clone())
//!     .compile_assignment("R = 0.5 * CSHIFT(X, 1, -1) + 0.5 * CSHIFT(X, 1, +1)")?;
//! let x = CmArray::new(&mut machine, 8, 8)?;
//! let r = CmArray::new(&mut machine, 8, 8)?;
//! x.fill_with(&mut machine, |row, _| row as f32);
//! let measurement = convolve(&mut machine, &compiled, &r, &x, &[], &ExecOptions::default())?;
//! // Interior rows average their neighbors.
//! assert_eq!(r.get(&machine, 3, 0), 3.0);
//! assert!(measurement.mflops(machine.config()) > 0.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod array;
pub mod convolve;
pub mod error;
pub mod halo;
pub mod legacy;
pub mod plan;
pub mod reference;
pub mod strips;
pub mod volume;

pub use array::CmArray;
pub use cmcc_cm2::exec::ExecEngine;
pub use convolve::{convolve, convolve_multi, ExecOptions};
pub use error::RuntimeError;
pub use halo::{ExchangePrimitive, ExchangeProgram, HaloBuffer};
pub use plan::{
    CompiledPlan, ExecutionPlan, LeaseRange, PlanInstance, PlanLifetime, StencilBinding,
};
pub use reference::{reference_convolve, reference_convolve_multi, CoeffValue};
pub use strips::{full_strip, halfstrips, plan_strips, HalfStrip, Strip};
pub use volume::{convolve_volume, CmVolume};
