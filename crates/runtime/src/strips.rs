//! Strip mining: dividing a subgrid into kernel-width strips and
//! half-strips.
//!
//! "Once the necessary data has been brought into each node from its
//! neighboring nodes, the subgrid for that node is logically partitioned
//! into strips of width w. ... The strips are then further divided in
//! half; the basic microcode loop processes one half-strip, working from
//! the edge of the subgrid to the center" (§5.2). The width of each strip
//! is the widest for which a kernel exists, subject to the columns that
//! remain: "a subgrid one of whose axes is of length 21 might be
//! processed as two strips of width 8, one strip of width 4, and one
//! strip of width 1" (§5.3).

use cmcc_core::compiler::CompiledStencil;
use cmcc_core::regalloc::Walk;

/// One vertical strip of the subgrid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Strip {
    /// First column of the strip.
    pub col0: usize,
    /// Strip width (a compiled kernel width).
    pub width: usize,
}

/// One half of a strip, with its processing direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HalfStrip {
    /// Row of the first line processed.
    pub start_row: usize,
    /// Lines in this half.
    pub lines: usize,
    /// Direction of travel (both halves move edge → center).
    pub walk: Walk,
}

/// Shaves `sub_cols` columns into strips using the compiled widths.
///
/// # Panics
///
/// Panics if the compiled stencil has no width-1 kernel and the columns
/// cannot be covered (the default compiler always attempts width 1).
pub fn plan_strips(compiled: &CompiledStencil, sub_cols: usize) -> Vec<Strip> {
    let mut strips = Vec::new();
    let mut col0 = 0;
    while col0 < sub_cols {
        let remaining = sub_cols - col0;
        let kernel = compiled
            .widest_kernel_for(remaining)
            .unwrap_or_else(|| panic!("no kernel narrow enough for {remaining} columns"));
        strips.push(Strip {
            col0,
            width: kernel.width,
        });
        col0 += kernel.width;
    }
    strips
}

/// Splits `sub_rows` into the two half-strips. The bottom half starts at
/// the south edge and walks north; the top half starts at the north edge
/// and walks south; both end at the center.
pub fn halfstrips(sub_rows: usize) -> Vec<HalfStrip> {
    if sub_rows == 0 {
        return Vec::new();
    }
    if sub_rows == 1 {
        return vec![HalfStrip {
            start_row: 0,
            lines: 1,
            walk: Walk::North,
        }];
    }
    let top_lines = sub_rows / 2;
    let bottom_lines = sub_rows - top_lines;
    vec![
        HalfStrip {
            start_row: sub_rows - 1,
            lines: bottom_lines,
            walk: Walk::North,
        },
        HalfStrip {
            start_row: 0,
            lines: top_lines,
            walk: Walk::South,
        },
    ]
}

/// A single full-length strip pass (the half-strip ablation's
/// alternative): one startup, the whole strip walked north from the
/// south edge.
pub fn full_strip(sub_rows: usize) -> Vec<HalfStrip> {
    if sub_rows == 0 {
        return Vec::new();
    }
    vec![HalfStrip {
        start_row: sub_rows - 1,
        lines: sub_rows,
        walk: Walk::North,
    }]
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmcc_core::compiler::Compiler;
    use cmcc_core::patterns::PaperPattern;

    #[test]
    fn paper_example_21_columns() {
        // §5.3: "two strips of width 8, one strip of width 4, and one
        // strip of width 1."
        let c = Compiler::default()
            .compile_assignment(&PaperPattern::Cross5.fortran())
            .unwrap();
        let strips = plan_strips(&c, 21);
        let widths: Vec<usize> = strips.iter().map(|s| s.width).collect();
        assert_eq!(widths, vec![8, 8, 4, 1]);
        assert_eq!(strips[2].col0, 16);
    }

    #[test]
    fn paper_example_diamond_21_columns() {
        // §5.3: without a width-8 kernel, "five strips of width 4 and a
        // strip of width 1."
        let c = Compiler::default()
            .compile_assignment(&PaperPattern::Diamond13.fortran())
            .unwrap();
        let widths: Vec<usize> = plan_strips(&c, 21).iter().map(|s| s.width).collect();
        assert_eq!(widths, vec![4, 4, 4, 4, 4, 1]);
    }

    #[test]
    fn strips_tile_the_subgrid_exactly() {
        let c = Compiler::default()
            .compile_assignment(&PaperPattern::Cross5.fortran())
            .unwrap();
        for cols in 1..=40 {
            let strips = plan_strips(&c, cols);
            let covered: usize = strips.iter().map(|s| s.width).sum();
            assert_eq!(covered, cols);
            let mut expect = 0;
            for s in &strips {
                assert_eq!(s.col0, expect);
                expect += s.width;
            }
        }
    }

    #[test]
    fn halfstrips_cover_all_rows_from_the_edges() {
        let halves = halfstrips(64);
        assert_eq!(halves.len(), 2);
        assert_eq!(halves[0].start_row, 63);
        assert_eq!(halves[0].lines, 32);
        assert_eq!(halves[0].walk, Walk::North);
        assert_eq!(halves[1].start_row, 0);
        assert_eq!(halves[1].lines, 32);
        assert_eq!(halves[1].walk, Walk::South);
    }

    #[test]
    fn odd_rows_put_the_extra_line_in_the_bottom_half() {
        let halves = halfstrips(7);
        assert_eq!(halves[0].lines, 4);
        assert_eq!(halves[1].lines, 3);
        // Bottom half: rows 6,5,4,3; top half: rows 0,1,2 — disjoint and
        // complete.
        let mut seen = [false; 7];
        for h in &halves {
            for i in 0..h.lines {
                let r = (h.start_row as i64 + i as i64 * h.walk.row_step() as i64) as usize;
                assert!(!seen[r], "row {r} processed twice");
                seen[r] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn single_row_subgrid_has_one_half() {
        assert_eq!(halfstrips(1).len(), 1);
        assert!(halfstrips(0).is_empty());
    }

    #[test]
    fn full_strip_is_one_pass() {
        let f = full_strip(10);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].lines, 10);
        assert_eq!(f[0].start_row, 9);
    }
}
